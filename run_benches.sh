#!/bin/bash
# Runs every bench binary, logging to bench_logs/<name>.log, then
# concatenates everything into bench_output.txt.
cd /root/repo/build/bench
for b in bench_table1_datasets bench_table2_overall bench_fig3_ablation \
         bench_table4_slide_modes bench_fig6_noise bench_fig4_alpha \
         bench_table3_sfs bench_table5_depth bench_fig5_seqlen_hidden \
         bench_fig7_filters bench_complexity; do
  echo "=== $b start $(date +%H:%M:%S) ==="
  ./$b > /root/repo/bench_logs/$b.log 2>&1
  echo "=== $b done  $(date +%H:%M:%S) rc=$? ==="
done
