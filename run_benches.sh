#!/bin/bash
# Runs bench binaries, logging to bench_logs/<name>.log.
#
# Usage:
#   ./run_benches.sh            # the main paper-table suite
#   ./run_benches.sh wave2      # companion benches added after the main suite
#   ./run_benches.sh all        # everything, kernels included
#   ./run_benches.sh kernels    # just the compute-kernel scaling bench
#   ./run_benches.sh NAME...    # any explicit list of bench binaries

set -u
cd /root/repo/build/bench || exit 1
mkdir -p /root/repo/bench_logs

MAIN="bench_table1_datasets bench_table2_overall bench_fig3_ablation \
      bench_table4_slide_modes bench_fig6_noise bench_fig4_alpha \
      bench_table3_sfs bench_table5_depth bench_fig5_seqlen_hidden \
      bench_fig7_filters bench_complexity"
WAVE2="bench_table4_slide_modes bench_ablation_mixing bench_sampled_metrics"
KERNELS="bench_kernels"
SERVING="bench_serving"
CLUSTER="bench_cluster"

case "${1:-main}" in
  main)    BENCHES="$MAIN" ;;
  wave2)   BENCHES="$WAVE2" ;;
  kernels) BENCHES="$KERNELS" ;;
  serving) BENCHES="$SERVING" ;;
  cluster) BENCHES="$CLUSTER" ;;
  all)     BENCHES="$MAIN $WAVE2 $KERNELS $SERVING $CLUSTER" ;;
  *)       BENCHES="$*" ;;
esac

FAILED=0
for b in $BENCHES; do
  echo "=== $b start $(date +%H:%M:%S) ==="
  ./$b > /root/repo/bench_logs/$b.log 2>&1
  rc=$?
  echo "=== $b done  $(date +%H:%M:%S) rc=$rc ==="
  # bench_kernels exits nonzero when a per-arm CRC bit-identity or
  # packed-rfft quality gate fails; surface that instead of swallowing it.
  if [ $rc -ne 0 ]; then FAILED=1; fi
done
exit $FAILED
