#!/bin/bash
# Second wave: reruns and companion benches added after the main suite.
cd /root/repo/build/bench
for b in bench_table4_slide_modes bench_ablation_mixing bench_sampled_metrics; do
  echo "=== $b start $(date +%H:%M:%S) ==="
  ./$b > /root/repo/bench_logs/$b.log 2>&1
  echo "=== $b done  $(date +%H:%M:%S) rc=$? ==="
done
