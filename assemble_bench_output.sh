#!/bin/bash
# Concatenates every bench log into bench_output.txt in the canonical
# table/figure order (equivalent to `for b in build/bench/*; do $b; done`,
# which regenerates it from scratch).
cd /root/repo
out=bench_output.txt
: > $out
for b in bench_table1_datasets bench_table2_overall bench_fig3_ablation \
         bench_table3_sfs bench_table4_slide_modes bench_fig4_alpha \
         bench_fig5_seqlen_hidden bench_table5_depth bench_fig6_noise \
         bench_fig7_filters bench_ablation_mixing bench_sampled_metrics \
         bench_spectrum_analysis bench_complexity bench_kernels; do
  if [ -f bench_logs/$b.log ]; then
    echo "==================== $b ====================" >> $out
    cat bench_logs/$b.log >> $out
    echo >> $out
  fi
done
wc -l $out
