#include "core/contrastive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"

namespace slime {
namespace core {
namespace {

using autograd::Param;
using autograd::Variable;

TEST(NormalizeRowsTest, RowsHaveUnitNorm) {
  Rng rng(1);
  Variable x = Param(Tensor::Randn({4, 6}, &rng, 3.0f));
  Variable y = NormalizeRows(x);
  for (int64_t r = 0; r < 4; ++r) {
    double norm = 0.0;
    for (int64_t j = 0; j < 6; ++j) {
      const double v = y.value().At({r, j});
      norm += v * v;
    }
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  }
}

TEST(NormalizeRowsTest, Gradcheck) {
  Rng rng(2);
  Variable x = Param(Tensor::Randn({3, 4}, &rng));
  const auto result = autograd::CheckGradients(
      [](const std::vector<Variable>& in) {
        Rng wrng(7);
        Tensor w = Tensor::Randn({3, 4}, &wrng);
        return autograd::Sum(autograd::MulConst(NormalizeRows(in[0]), w));
      },
      {x});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(InfoNceTest, PerfectAlignmentBeatsRandom) {
  Rng rng(3);
  const Tensor h = Tensor::Randn({8, 16}, &rng);
  // Aligned views: identical representations.
  Variable aligned =
      InfoNceLoss(Param(h.Clone()), Param(h.Clone()), 0.5f);
  // Random views.
  Variable random = InfoNceLoss(Param(Tensor::Randn({8, 16}, &rng)),
                                Param(Tensor::Randn({8, 16}, &rng)), 0.5f);
  EXPECT_LT(aligned.value()[0], random.value()[0]);
}

TEST(InfoNceTest, RandomPairsNearLogNumNegatives) {
  // With random high-dimensional views all similarities are ~0, so the
  // loss approaches log(2B - 1).
  Rng rng(4);
  const int64_t b = 16;
  Variable loss = InfoNceLoss(Param(Tensor::Randn({b, 256}, &rng)),
                              Param(Tensor::Randn({b, 256}, &rng)), 1.0f);
  EXPECT_NEAR(loss.value()[0], std::log(2.0 * b - 1.0), 0.35);
}

TEST(InfoNceTest, LowerTemperatureSharpensAlignedLoss) {
  Rng rng(5);
  const Tensor h = Tensor::Randn({8, 16}, &rng);
  Variable t1 = InfoNceLoss(Param(h.Clone()), Param(h.Clone()), 1.0f);
  Variable t01 = InfoNceLoss(Param(h.Clone()), Param(h.Clone()), 0.1f);
  // With perfectly aligned positives, a sharper temperature reduces the
  // loss (positives dominate the partition function).
  EXPECT_LT(t01.value()[0], t1.value()[0]);
}

TEST(InfoNceTest, GradientsPullViewsTogether) {
  // One gradient step on the views should increase the cosine similarity
  // of each positive pair.
  Rng rng(6);
  Variable h1 = Param(Tensor::Randn({4, 8}, &rng));
  Variable h2 = Param(Tensor::Randn({4, 8}, &rng));
  auto cosine = [](const Tensor& a, const Tensor& b, int64_t row) {
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      const double x = a.At({row, j});
      const double y = b.At({row, j});
      dot += x * y;
      na += x * x;
      nb += y * y;
    }
    return dot / std::sqrt(na * nb);
  };
  std::vector<double> before(4);
  for (int64_t r = 0; r < 4; ++r) {
    before[r] = cosine(h1.value(), h2.value(), r);
  }
  InfoNceLoss(h1, h2, 0.5f).Backward();
  // Manual SGD step.
  for (auto* v : {&h1, &h2}) {
    Tensor& val = v->mutable_value();
    const Tensor& g = v->grad();
    for (int64_t i = 0; i < val.numel(); ++i) val[i] -= 0.5f * g[i];
  }
  double improved = 0;
  for (int64_t r = 0; r < 4; ++r) {
    if (cosine(h1.value(), h2.value(), r) > before[r]) ++improved;
  }
  EXPECT_GE(improved, 3);
}

TEST(InfoNceTest, Gradcheck) {
  Rng rng(8);
  Variable h1 = Param(Tensor::Randn({3, 5}, &rng));
  Variable h2 = Param(Tensor::Randn({3, 5}, &rng));
  const auto result = autograd::CheckGradients(
      [](const std::vector<Variable>& in) {
        return InfoNceLoss(in[0], in[1], 0.5f);
      },
      {h1, h2}, 1e-3, 3e-2);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(InfoNceTest, SymmetricInViews) {
  Rng rng(9);
  const Tensor a = Tensor::Randn({5, 7}, &rng);
  const Tensor b = Tensor::Randn({5, 7}, &rng);
  Variable l1 = InfoNceLoss(Param(a.Clone()), Param(b.Clone()), 0.7f);
  Variable l2 = InfoNceLoss(Param(b.Clone()), Param(a.Clone()), 0.7f);
  EXPECT_NEAR(l1.value()[0], l2.value()[0], 1e-5);
}

}  // namespace
}  // namespace core
}  // namespace slime
