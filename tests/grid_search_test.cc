#include "train/grid_search.h"

#include <gtest/gtest.h>

#include "core/slime4rec.h"
#include "data/synthetic.h"
#include "models/model_factory.h"

namespace slime {
namespace train {
namespace {

data::SplitDataset TinySplit() {
  data::SyntheticConfig config;
  config.name = "grid-tiny";
  config.num_users = 80;
  config.num_items = 30;
  config.num_categories = 3;
  config.num_clusters = 3;
  config.min_len = 6;
  config.max_len = 10;
  config.seed = 21;
  return data::SplitDataset(data::GenerateSynthetic(config), 3);
}

TrainConfig FastConfig() {
  TrainConfig t;
  t.max_epochs = 3;
  t.patience = 3;
  t.batch_size = 64;
  return t;
}

core::Slime4RecConfig BaseConfig(const data::SplitDataset& split) {
  core::Slime4RecConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = 8;
  c.hidden_dim = 8;
  c.num_layers = 2;
  c.seed = 5;
  return c;
}

TEST(GridSearchTest, PicksHighestValidationCandidate) {
  const data::SplitDataset split = TinySplit();
  const auto grid =
      SlimeAlphaGrid(BaseConfig(split), {0.25, 0.5, 1.0});
  const GridSearchResult r = GridSearch(grid, split, FastConfig());
  ASSERT_EQ(r.valid_ndcg10.size(), 3u);
  double best = -1.0;
  size_t best_idx = 0;
  for (size_t i = 0; i < 3; ++i) {
    if (r.valid_ndcg10[i] > best) {
      best = r.valid_ndcg10[i];
      best_idx = i;
    }
  }
  EXPECT_EQ(r.best_index, best_idx);
  EXPECT_EQ(r.best_label, grid[best_idx].label);
}

TEST(GridSearchTest, DeterministicAcrossRuns) {
  const data::SplitDataset split = TinySplit();
  const auto grid = SlimeAlphaGrid(BaseConfig(split), {0.5, 1.0});
  const GridSearchResult a = GridSearch(grid, split, FastConfig());
  const GridSearchResult b = GridSearch(grid, split, FastConfig());
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_EQ(a.valid_ndcg10, b.valid_ndcg10);
}

TEST(GridSearchTest, MixedModelGrid) {
  // The grid is model-agnostic: compare entirely different architectures.
  const data::SplitDataset split = TinySplit();
  models::ModelConfig mc;
  mc.num_items = split.num_items();
  mc.num_users = split.num_users();
  mc.max_len = 8;
  mc.hidden_dim = 8;
  mc.num_layers = 1;
  std::vector<GridPoint> grid;
  for (const std::string name : {"BPR-MF", "FMLP-Rec"}) {
    grid.push_back({name, [name, mc]() {
                      return models::CreateModel(name, mc);
                    }});
  }
  const GridSearchResult r = GridSearch(grid, split, FastConfig());
  EXPECT_LT(r.best_index, 2u);
  EXPECT_FALSE(r.best_label.empty());
}

}  // namespace
}  // namespace train
}  // namespace slime
