#include "train/trainer.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/model_factory.h"

namespace slime {
namespace train {
namespace {

data::SplitDataset TinySplit() {
  data::SyntheticConfig config;
  config.name = "trainer-tiny";
  config.num_users = 120;
  config.num_items = 40;
  config.num_categories = 4;
  config.num_clusters = 4;
  config.min_len = 6;
  config.max_len = 12;
  config.noise_prob = 0.05;
  config.seed = 77;
  return data::SplitDataset(data::GenerateSynthetic(config), 3);
}

models::ModelConfig TinyModelConfig(const data::SplitDataset& split) {
  models::ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = 8;
  c.hidden_dim = 16;
  c.num_layers = 2;
  c.dropout = 0.1f;
  c.emb_dropout = 0.1f;
  c.seed = 5;
  return c;
}

TrainConfig FastTrainConfig(int64_t epochs) {
  TrainConfig t;
  t.max_epochs = epochs;
  t.batch_size = 64;
  t.lr = 5e-3f;
  t.patience = 100;  // effectively off
  t.seed = 31;
  return t;
}

TEST(EvaluateTest, UntrainedModelIsNearRandom) {
  const data::SplitDataset split = TinySplit();
  auto model = models::CreateModel("SASRec", TinyModelConfig(split));
  const metrics::RankingMetrics m = Evaluate(model.get(), split, false);
  // Random ranking over 40 items: HR@10 ~ 0.25. An untrained (but
  // structured) model should be loosely in that band, certainly below 0.6.
  EXPECT_LT(m.hr10, 0.6);
  EXPECT_GE(m.hr10, 0.0);
}

TEST(EvaluateTest, RestoresTrainingFlag) {
  const data::SplitDataset split = TinySplit();
  auto model = models::CreateModel("SASRec", TinyModelConfig(split));
  model->SetTraining(true);
  Evaluate(model.get(), split, false);
  EXPECT_TRUE(model->training());
  model->SetTraining(false);
  Evaluate(model.get(), split, true);
  EXPECT_FALSE(model->training());
}

TEST(TrainerTest, TrainingImprovesOverUntrained) {
  const data::SplitDataset split = TinySplit();
  auto model = models::CreateModel("FMLP-Rec", TinyModelConfig(split));
  const metrics::RankingMetrics before =
      Evaluate(model.get(), split, true);
  Trainer trainer(FastTrainConfig(6));
  const TrainResult result = trainer.Fit(model.get(), split).value();
  EXPECT_GT(result.test.ndcg10, before.ndcg10);
  EXPECT_GT(result.test.hr10, 0.2);  // far above the random ~0.25/2 band
  EXPECT_GE(result.best_epoch, 1);
  EXPECT_LE(result.best_epoch, result.epochs_run);
}

TEST(TrainerTest, EarlyStoppingHaltsBeforeMaxEpochs) {
  const data::SplitDataset split = TinySplit();
  auto model = models::CreateModel("GRU4Rec", TinyModelConfig(split));
  TrainConfig t = FastTrainConfig(60);
  t.patience = 1;
  t.lr = 0.05f;  // aggressive: validation degrades quickly after the peak
  Trainer trainer(t);
  const TrainResult result = trainer.Fit(model.get(), split).value();
  EXPECT_LT(result.epochs_run, 60);
}

TEST(TrainerTest, BestParametersRestoredForTest) {
  // After Fit, the model must score the test set identically to the stored
  // result (i.e. the restored snapshot is what was evaluated).
  const data::SplitDataset split = TinySplit();
  auto model = models::CreateModel("SASRec", TinyModelConfig(split));
  Trainer trainer(FastTrainConfig(4));
  const TrainResult result = trainer.Fit(model.get(), split).value();
  const metrics::RankingMetrics re_eval =
      Evaluate(model.get(), split, true);
  EXPECT_DOUBLE_EQ(result.test.ndcg10, re_eval.ndcg10);
  EXPECT_DOUBLE_EQ(result.test.hr5, re_eval.hr5);
}

TEST(TrainerTest, DuoRecTrainsWithPositives) {
  const data::SplitDataset split = TinySplit();
  models::ModelConfig c = TinyModelConfig(split);
  c.cl_weight = 0.1f;
  auto model = models::CreateModel("DuoRec", c);
  Trainer trainer(FastTrainConfig(3));
  const TrainResult result = trainer.Fit(model.get(), split).value();
  EXPECT_GT(result.test.hr10, 0.0);
  EXPECT_GT(result.final_train_loss, 0.0);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  const data::SplitDataset split = TinySplit();
  TrainResult r1;
  TrainResult r2;
  {
    auto model = models::CreateModel("FMLP-Rec", TinyModelConfig(split));
    r1 = Trainer(FastTrainConfig(2)).Fit(model.get(), split).value();
  }
  {
    auto model = models::CreateModel("FMLP-Rec", TinyModelConfig(split));
    r2 = Trainer(FastTrainConfig(2)).Fit(model.get(), split).value();
  }
  EXPECT_DOUBLE_EQ(r1.test.ndcg10, r2.test.ndcg10);
  EXPECT_DOUBLE_EQ(r1.final_train_loss, r2.final_train_loss);
}

TEST(TrainConfigTest, BenchScaleDefaultsToOne) {
  // (Environment-dependent: only checked when the variable is unset.)
  if (std::getenv("SLIME_BENCH_SCALE") == nullptr) {
    EXPECT_DOUBLE_EQ(TrainConfig::BenchScale(), 1.0);
  }
}

}  // namespace
}  // namespace train
}  // namespace slime
