#include "models/model_factory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/batcher.h"
#include "models/cl4srec.h"
#include "models/coserec.h"
#include "models/most_pop.h"
#include "data/synthetic.h"
#include "optim/adam.h"
#include "train/trainer.h"

namespace slime {
namespace models {
namespace {

ModelConfig SmallConfig() {
  ModelConfig c;
  c.num_items = 20;
  c.num_users = 10;
  c.max_len = 8;
  c.hidden_dim = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.dropout = 0.1f;
  c.emb_dropout = 0.1f;
  c.seed = 13;
  return c;
}

data::Batch SmallBatch() {
  data::Batch b;
  b.size = 4;
  b.max_len = 8;
  b.user_ids = {0, 1, 2, 3};
  b.targets = {5, 7, 2, 9};
  b.raw_prefixes = {{1, 2, 3}, {4, 5, 6, 7}, {1}, {8, 9, 10, 11, 12}};
  for (const auto& raw : b.raw_prefixes) {
    const auto padded = data::PadTruncate(raw, 8);
    b.input_ids.insert(b.input_ids.end(), padded.begin(), padded.end());
    b.positive_input_ids.insert(b.positive_input_ids.end(), padded.begin(),
                                padded.end());
  }
  return b;
}

class AllModelsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModelsTest, ConstructsAndReportsName) {
  auto model = CreateModel(GetParam(), SmallConfig());
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), GetParam());
  EXPECT_GT(model->ParameterCount(), 0);
}

TEST_P(AllModelsTest, LossIsFiniteScalarAndBackpropagates) {
  auto model = CreateModel(GetParam(), SmallConfig());
  autograd::Variable loss = model->Loss(SmallBatch());
  ASSERT_EQ(loss.numel(), 1);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  EXPECT_GT(loss.value()[0], 0.0f);
  loss.Backward();
  int64_t with_grad = 0;
  for (const auto& p : model->Parameters()) {
    if (p.has_grad()) ++with_grad;
  }
  EXPECT_GT(with_grad, 0);
}

TEST_P(AllModelsTest, ScoreAllHasItemPlusPadColumns) {
  auto model = CreateModel(GetParam(), SmallConfig());
  model->SetTraining(false);
  const Tensor scores = model->ScoreAll(SmallBatch());
  EXPECT_EQ(scores.shape(), (std::vector<int64_t>{4, 21}));
  for (int64_t i = 0; i < scores.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(scores[i]));
  }
}

TEST_P(AllModelsTest, TenAdamStepsReduceLoss) {
  ModelConfig c = SmallConfig();
  c.dropout = 0.0f;
  c.emb_dropout = 0.0f;
  auto model = CreateModel(GetParam(), c);
  optim::Adam adam(model->Parameters(), {.lr = 0.02f});
  const data::Batch b = SmallBatch();
  // Average a few evaluations because some models are stochastic
  // (BERT4Rec masking, ContrastVAE sampling, CL4SRec augmentation).
  auto avg_loss = [&] {
    double sum = 0.0;
    for (int i = 0; i < 4; ++i) sum += model->Loss(b).value()[0];
    return sum / 4;
  };
  const double initial = avg_loss();
  for (int step = 0; step < 12; ++step) {
    autograd::Variable loss = model->Loss(b);
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(avg_loss(), initial);
}

INSTANTIATE_TEST_SUITE_P(Zoo, AllModelsTest,
                         ::testing::ValuesIn(AllModelNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(ModelFactoryTest, AllNamesHasElevenModels) {
  EXPECT_EQ(AllModelNames().size(), 11u);
}

TEST(ModelFactoryTest, PositivesOnlyForDuoRecAndSlime) {
  for (const auto& name : AllModelNames()) {
    auto model = CreateModel(name, SmallConfig());
    const bool expected = name == "DuoRec" || name == "SLIME4Rec";
    EXPECT_EQ(model->needs_positives(), expected) << name;
  }
}

TEST(AugmentTest, CropKeepsContiguousSubsequence) {
  Rng rng(1);
  const std::vector<int64_t> seq = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (int i = 0; i < 20; ++i) {
    const auto out = augment::Crop(seq, 0.5, &rng);
    ASSERT_EQ(out.size(), 5u);
    // Contiguity: consecutive ascending values from the source.
    for (size_t j = 1; j < out.size(); ++j) {
      EXPECT_EQ(out[j], out[j - 1] + 1);
    }
  }
}

TEST(AugmentTest, MaskReplacesWithPadToken) {
  Rng rng(2);
  const std::vector<int64_t> seq(100, 7);
  const auto out = augment::Mask(seq, 0.4, &rng);
  int64_t zeros = 0;
  for (int64_t v : out) {
    EXPECT_TRUE(v == 0 || v == 7);
    if (v == 0) ++zeros;
  }
  EXPECT_NEAR(zeros / 100.0, 0.4, 0.15);
}

TEST(AugmentTest, ReorderIsPermutationOfWindow) {
  Rng rng(3);
  const std::vector<int64_t> seq = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto out = augment::Reorder(seq, 0.5, &rng);
  ASSERT_EQ(out.size(), seq.size());
  auto sorted_in = seq;
  auto sorted_out = out;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);  // multiset preserved
}

TEST(AugmentTest, SingleItemSequencesSurviveAllOps) {
  Rng rng(4);
  const std::vector<int64_t> seq = {3};
  EXPECT_EQ(augment::Crop(seq, 0.5, &rng).size(), 1u);
  EXPECT_EQ(augment::Reorder(seq, 0.5, &rng), seq);
}

TEST(CoSeRecTest, CorrelationsFromTrainingData) {
  // Items 1 and 2 always co-occur; item 3 co-occurs with nothing else more
  // strongly.
  data::InteractionDataset dataset(
      "corr", {{1, 2, 1, 2, 1, 2}, {1, 2, 1, 2, 5, 4}, {3, 4, 3, 4, 3, 4}},
      5);
  data::SplitDataset split(dataset, 0);
  ModelConfig c = SmallConfig();
  c.num_items = 5;
  CoSeRec model(c);
  model.Prepare(split);
  EXPECT_EQ(model.MostCorrelated(1), 2);
  EXPECT_EQ(model.MostCorrelated(2), 1);
  EXPECT_EQ(model.MostCorrelated(3), 4);
}

TEST(CoSeRecTest, UnknownItemHasNoCorrelation) {
  ModelConfig c = SmallConfig();
  CoSeRec model(c);
  EXPECT_EQ(model.MostCorrelated(3), 0);  // Prepare() never called
}

TEST(Bert4RecTest, ScoreDropsMaskColumn) {
  auto model = CreateModel("BERT4Rec", SmallConfig());
  model->SetTraining(false);
  const Tensor scores = model->ScoreAll(SmallBatch());
  // num_items + 1 columns (pad included, [MASK] excluded).
  EXPECT_EQ(scores.size(1), 21);
}

}  // namespace
}  // namespace models
}  // namespace slime

namespace slime {
namespace models {
namespace {

TEST(PerPositionLossTest, SasRecTrainsWithSeq2SeqObjective) {
  ModelConfig c = SmallConfig();
  c.per_position_loss = true;
  c.dropout = 0.0f;
  c.emb_dropout = 0.0f;
  SasRec model(c);
  optim::Adam adam(model.Parameters(), {.lr = 0.02f});
  const data::Batch b = SmallBatch();
  const float initial = model.Loss(b).value()[0];
  for (int step = 0; step < 12; ++step) {
    autograd::Variable loss = model.Loss(b);
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(model.Loss(b).value()[0], initial);
}

TEST(PerPositionLossTest, MatchesLastPositionWhenOnlyOneValidLabel) {
  // A length-1 history: the only supervised position is the last one, so
  // both objectives coincide.
  ModelConfig c = SmallConfig();
  c.dropout = 0.0f;
  c.emb_dropout = 0.0f;
  ModelConfig c2 = c;
  c2.per_position_loss = true;
  SasRec last(c);
  SasRec per(c2);
  data::Batch b;
  b.size = 1;
  b.max_len = c.max_len;
  b.user_ids = {0};
  b.targets = {5};
  b.raw_prefixes = {{3}};
  b.input_ids = data::PadTruncate({3}, c.max_len);
  last.SetTraining(false);
  per.SetTraining(false);
  EXPECT_NEAR(last.Loss(b).value()[0], per.Loss(b).value()[0], 1e-5);
}

TEST(PerPositionLossTest, FrequencyModelsRejectIt) {
  ModelConfig c = SmallConfig();
  c.per_position_loss = true;
  EXPECT_DEATH(CreateModel("FMLP-Rec", c), "non-causal");
  EXPECT_DEATH(CreateModel("SLIME4Rec", c), "non-causal");
}

}  // namespace
}  // namespace models
}  // namespace slime

namespace slime {
namespace models {
namespace {

TEST(MostPopTest, ScoresAreTrainingFrequencies) {
  data::InteractionDataset dataset(
      "pop", {{1, 1, 1, 2, 9}, {1, 2, 2, 3, 9}}, 9);
  data::SplitDataset split(dataset, 0);
  ModelConfig c = SmallConfig();
  c.num_items = 9;
  MostPop model(c);
  model.Prepare(split);
  // Training regions: {1,1,1} and {1,2,2}.
  EXPECT_EQ(model.Frequency(1), 4);
  EXPECT_EQ(model.Frequency(2), 2);
  EXPECT_EQ(model.Frequency(9), 0);  // only in held-out positions
  const Tensor scores = model.ScoreAll(SmallBatch());
  EXPECT_FLOAT_EQ(scores.At({0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(scores.At({0, 2}), 2.0f);
}

TEST(MostPopTest, TrainableZooModelsBeatPopularityOnSequentialData) {
  // The sanity floor in action: a trained FMLP-Rec must out-rank MostPop
  // on data whose targets are chain successors, not popular items.
  data::SyntheticConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 60;
  cfg.num_categories = 6;
  cfg.num_clusters = 3;
  cfg.min_len = 6;
  cfg.max_len = 12;
  cfg.noise_prob = 0.05;
  cfg.seed = 33;
  const data::SplitDataset split(data::GenerateSynthetic(cfg), 4);
  ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = 16;
  c.hidden_dim = 16;
  c.num_layers = 1;
  train::TrainConfig tc;
  tc.max_epochs = 6;
  tc.patience = 6;
  tc.lr = 5e-3f;
  auto pop = CreateModel("MostPop", c);
  auto fmlp = CreateModel("FMLP-Rec", c);
  train::Trainer trainer(tc);
  const auto pop_result = trainer.Fit(pop.get(), split).value();
  const auto fmlp_result = trainer.Fit(fmlp.get(), split).value();
  EXPECT_GT(fmlp_result.test.ndcg10, pop_result.test.ndcg10);
}

TEST(LrScheduleTest, WarmupAndDecayTrainWithoutDivergence) {
  data::InteractionDataset dataset(
      "lr", {{1, 2, 3, 4, 5, 6}, {2, 3, 4, 5, 6, 7}}, 8);
  data::SplitDataset split(dataset, 0);
  ModelConfig c = SmallConfig();
  c.num_items = 8;
  auto model = CreateModel("SASRec", c);
  train::TrainConfig tc;
  tc.max_epochs = 4;
  tc.patience = 4;
  tc.warmup_epochs = 2;
  tc.lr_decay = 0.5f;
  train::Trainer trainer(tc);
  const auto r = trainer.Fit(model.get(), split).value();
  EXPECT_GT(r.final_train_loss, 0.0);
  EXPECT_TRUE(std::isfinite(r.final_train_loss));
}

}  // namespace
}  // namespace models
}  // namespace slime
