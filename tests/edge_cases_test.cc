// Edge cases and failure-injection tests across module boundaries: odd
// sequence lengths (Bluestein path inside a full model), minimum-size
// configurations, degenerate batches, and adversarial loader inputs.

#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>
#include <fstream>

#include "core/slime4rec.h"
#include "data/batcher.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "models/model_factory.h"
#include "optim/adam.h"
#include "train/trainer.h"

namespace slime {
namespace {

data::Batch MakeBatch(int64_t size, int64_t max_len, int64_t num_items,
                      uint64_t seed) {
  data::Batch b;
  b.size = size;
  b.max_len = max_len;
  Rng rng(seed);
  for (int64_t i = 0; i < size; ++i) {
    b.user_ids.push_back(i);
    b.targets.push_back(rng.UniformInt(1, num_items));
    std::vector<int64_t> raw;
    const int64_t len = rng.UniformInt(1, max_len);
    for (int64_t j = 0; j < len; ++j) {
      raw.push_back(rng.UniformInt(1, num_items));
    }
    b.raw_prefixes.push_back(raw);
    const auto padded = data::PadTruncate(raw, max_len);
    b.input_ids.insert(b.input_ids.end(), padded.begin(), padded.end());
    b.positive_input_ids.insert(b.positive_input_ids.end(), padded.begin(),
                                padded.end());
  }
  return b;
}

TEST(EdgeCaseTest, SlimeWithOddMaxLenUsesBluesteinEndToEnd) {
  // N = 25 and 75 are paper-candidate lengths that are not powers of two;
  // the whole train/score path must work through the Bluestein FFT.
  for (const int64_t n : {25, 75}) {
    core::Slime4RecConfig c;
    c.num_items = 30;
    c.num_users = 8;
    c.max_len = n;
    c.hidden_dim = 8;
    c.num_layers = 2;
    c.mixer.alpha = 0.5;
    c.seed = 3;
    core::Slime4Rec model(c);
    const data::Batch b = MakeBatch(4, n, 30, 11);
    autograd::Variable loss = model.Loss(b);
    EXPECT_TRUE(std::isfinite(loss.value()[0])) << "n=" << n;
    loss.Backward();
    optim::Adam adam(model.Parameters(), {.lr = 0.01f});
    adam.Step();
    model.SetTraining(false);
    const Tensor scores = model.ScoreAll(b);
    for (int64_t i = 0; i < scores.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(scores[i])) << "n=" << n;
    }
  }
}

TEST(EdgeCaseTest, BatchOfOne) {
  core::Slime4RecConfig c;
  c.num_items = 10;
  c.num_users = 2;
  c.max_len = 8;
  c.hidden_dim = 8;
  c.num_layers = 1;
  core::Slime4Rec model(c);
  const data::Batch b = MakeBatch(1, 8, 10, 5);
  EXPECT_TRUE(std::isfinite(model.Loss(b).value()[0]));
}

TEST(EdgeCaseTest, SingleLayerSingleHeadModels) {
  models::ModelConfig c;
  c.num_items = 12;
  c.num_users = 4;
  c.max_len = 4;   // minimal but > 1
  c.hidden_dim = 4;
  c.num_layers = 1;
  c.num_heads = 1;
  for (const auto& name : models::AllModelNames()) {
    auto model = models::CreateModel(name, c);
    const data::Batch b = MakeBatch(2, 4, 12, 7);
    EXPECT_TRUE(std::isfinite(model->Loss(b).value()[0])) << name;
  }
}

TEST(EdgeCaseTest, HiddenDimOne) {
  // d = 1 stresses LayerNorm (zero variance per row) and the filters.
  core::Slime4RecConfig c;
  c.num_items = 6;
  c.num_users = 2;
  c.max_len = 8;
  c.hidden_dim = 1;
  c.num_layers = 1;
  core::Slime4Rec model(c);
  const data::Batch b = MakeBatch(2, 8, 6, 9);
  EXPECT_TRUE(std::isfinite(model.Loss(b).value()[0]));
}

TEST(EdgeCaseTest, AllUsersSameTarget) {
  // Degenerate contrastive batch: every "negative" shares the anchor's
  // target. The loss must stay finite (the diagonal mask still leaves
  // 2B-2 negatives).
  core::Slime4RecConfig c;
  c.num_items = 10;
  c.num_users = 4;
  c.max_len = 8;
  c.hidden_dim = 8;
  c.num_layers = 1;
  core::Slime4Rec model(c);
  data::Batch b = MakeBatch(4, 8, 10, 13);
  for (auto& t : b.targets) t = 5;
  EXPECT_TRUE(std::isfinite(model.Loss(b).value()[0]));
}

TEST(EdgeCaseTest, LoaderSurvivesGarbageBytes) {
  // Fuzz-ish: random binary junk must produce a clean Status, never UB.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::string path = ::testing::TempDir() + "/slime_fuzz.bin";
    {
      std::ofstream out(path, std::ios::binary);
      const int64_t len = rng.UniformInt(0, 200);
      for (int64_t i = 0; i < len; ++i) {
        const char c = static_cast<char>(rng.Uniform(256));
        out.write(&c, 1);
      }
    }
    const Result<data::InteractionDataset> r =
        data::LoadSequenceFile(path, "fuzz");
    if (r.ok()) {
      // If it happened to parse, invariants must hold.
      EXPECT_GE(r.value().num_items(), 1);
    } else {
      EXPECT_FALSE(r.status().message().empty());
    }
    std::remove(path.c_str());
  }
}

TEST(EdgeCaseTest, TrainerOnMinimalSplit) {
  // Three users of length 3 — the smallest viable leave-one-out dataset.
  data::InteractionDataset dataset("mini",
                                   {{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}, 5);
  data::SplitDataset split(dataset, 0);
  models::ModelConfig c;
  c.num_items = 5;
  c.num_users = 3;
  c.max_len = 4;
  c.hidden_dim = 4;
  c.num_layers = 1;
  auto model = models::CreateModel("FMLP-Rec", c);
  train::TrainConfig tc;
  tc.max_epochs = 2;
  tc.batch_size = 2;
  train::Trainer trainer(tc);
  const train::TrainResult r = trainer.Fit(model.get(), split).value();
  EXPECT_GE(r.test.hr10, 0.0);
  EXPECT_LE(r.test.hr10, 1.0);
}

TEST(EdgeCaseTest, MaxLenLongerThanAnySequence) {
  // Heavy left padding: max_len 64 with length-2 histories.
  core::Slime4RecConfig c;
  c.num_items = 10;
  c.num_users = 2;
  c.max_len = 64;
  c.hidden_dim = 8;
  c.num_layers = 1;
  core::Slime4Rec model(c);
  data::Batch b;
  b.size = 2;
  b.max_len = 64;
  b.user_ids = {0, 1};
  b.targets = {3, 4};
  b.raw_prefixes = {{1, 2}, {5}};
  for (const auto& raw : b.raw_prefixes) {
    const auto padded = data::PadTruncate(raw, 64);
    b.input_ids.insert(b.input_ids.end(), padded.begin(), padded.end());
    b.positive_input_ids.insert(b.positive_input_ids.end(), padded.begin(),
                                padded.end());
  }
  EXPECT_TRUE(std::isfinite(model.Loss(b).value()[0]));
}

TEST(EdgeCaseTest, GeneratorExtremeNoiseStillValid) {
  data::SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.noise_prob = 1.0;  // pure noise
  cfg.seed = 23;
  const data::InteractionDataset d = data::GenerateSynthetic(cfg);
  EXPECT_EQ(d.num_users(), 30);
  for (const auto& seq : d.sequences()) {
    for (int64_t v : seq) {
      EXPECT_GE(v, 1);
      EXPECT_LE(v, cfg.num_items);
    }
  }
}

TEST(EdgeCaseTest, GeneratorSingleUserSingleCategory) {
  data::SyntheticConfig cfg;
  cfg.num_users = 1;
  cfg.num_items = 5;
  cfg.num_categories = 1;
  cfg.num_clusters = 1;
  cfg.min_tracks = 1;
  cfg.max_tracks = 1;
  cfg.seed = 29;
  const data::InteractionDataset d = data::GenerateSynthetic(cfg);
  EXPECT_EQ(d.num_users(), 1);
  EXPECT_GE(d.sequences()[0].size(), 5u);
}

}  // namespace
}  // namespace slime
