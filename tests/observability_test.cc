// Tests for slime::obs: the metrics registry (handles, histograms, integer
// percentiles, noop path), request tracing (span trees under a FakeClock),
// the JSONL/table exporters, the training telemetry sink (including
// crash-safe flushing through a FaultInjectionEnv), the CostEwma
// compare-exchange loop, and the compute-layer instrumentation.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "compute/thread_pool.h"
#include "io/env.h"
#include "observability/export.h"
#include "observability/metrics.h"
#include "observability/telemetry.h"
#include "observability/trace.h"
#include "serving/clock.h"
#include "serving/cost_ewma.h"

namespace slime {
namespace obs {
namespace {

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistryTest, CountersAndGaugesRoundTrip) {
  MetricsRegistry registry;
  Counter c = registry.counter("test.count");
  Gauge g = registry.gauge("test.level");
  EXPECT_TRUE(c.attached());
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(4);
  g.Set(17);
  g.Add(-2);
  EXPECT_EQ(c.value(), 5);
  EXPECT_EQ(g.value(), 15);

  // Same name returns a handle over the same storage.
  Counter c2 = registry.counter("test.count");
  c2.Increment(10);
  EXPECT_EQ(c.value(), 15);
}

TEST(MetricsRegistryTest, DetachedHandlesAreNoOps) {
  Counter c;  // default-constructed = detached
  Gauge g;
  Histogram h;
  c.Increment(3);
  g.Set(9);
  h.Observe(100);
  EXPECT_FALSE(c.attached());
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0);
}

TEST(MetricsRegistryTest, NoopRegistryHandsOutDetachedHandles) {
  NoopRegistry noop;
  EXPECT_FALSE(noop.enabled());
  Counter c = noop.counter("x");
  Gauge g = noop.gauge("y");
  Histogram h = noop.histogram("z");
  EXPECT_FALSE(c.attached());
  EXPECT_FALSE(g.attached());
  EXPECT_FALSE(h.attached());
  c.Increment(100);
  h.Observe(5);
  EXPECT_EQ(c.value(), 0);
  const MetricsSnapshot snap = noop.Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("b").Increment(2);
  registry.counter("a").Increment(1);
  registry.counter("c").Increment(3);
  registry.gauge("z").Set(26);
  registry.gauge("m").Set(13);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[1].name, "b");
  EXPECT_EQ(snap.counters[2].name, "c");
  EXPECT_EQ(snap.counters[2].value, 3);
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].name, "m");
  EXPECT_EQ(snap.gauges[1].name, "z");
}

TEST(MetricsRegistryTest, CounterIncrementsSurviveThreads) {
  MetricsRegistry registry;
  Counter c = registry.counter("threads.count");
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), 40000);
}

// --- Histogram ------------------------------------------------------------

TEST(HistogramTest, CountsSumMinMax) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("h", {10, 100, 1000});
  h.Observe(5);
  h.Observe(50);
  h.Observe(500);
  h.Observe(5000);  // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 5555);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramValue& hv = snap.histograms[0];
  EXPECT_EQ(hv.min, 5);
  EXPECT_EQ(hv.max, 5000);
  ASSERT_EQ(hv.buckets.size(), 4u);
  EXPECT_EQ(hv.buckets[0], 1);
  EXPECT_EQ(hv.buckets[1], 1);
  EXPECT_EQ(hv.buckets[2], 1);
  EXPECT_EQ(hv.buckets[3], 1);  // overflow
}

TEST(HistogramTest, PercentilesUseIntegerRanks) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("h", {10, 20, 30, 40});
  // 100 observations: 50 in (0,10], 30 in (10,20], 15 in (20,30],
  // 5 in (30,40].
  for (int i = 0; i < 50; ++i) h.Observe(7);
  for (int i = 0; i < 30; ++i) h.Observe(15);
  for (int i = 0; i < 15; ++i) h.Observe(25);
  for (int i = 0; i < 5; ++i) h.Observe(35);
  const HistogramValue hv = registry.Snapshot().histograms[0];
  // rank(p50) = 50 -> first bucket (cumulative 50 >= 50); its upper bound
  // is 10.
  EXPECT_EQ(hv.p50, 10);
  // rank(p95) = 95 -> third bucket (50+30+15 = 95).
  EXPECT_EQ(hv.p95, 30);
  // rank(p99) = 99 -> fourth bucket (95 + 5 = 100 >= 99); clamped to the
  // observed max, 35.
  EXPECT_EQ(hv.p99, 35);
}

TEST(HistogramTest, PercentileClampsToObservedRange) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("h", {1000});
  h.Observe(3);
  h.Observe(4);
  const HistogramValue hv = registry.Snapshot().histograms[0];
  // Both land in the (0,1000] bucket, but the percentile must not report
  // 1000 when the largest observation was 4.
  EXPECT_EQ(hv.p50, 4);
  EXPECT_EQ(hv.p99, 4);
  EXPECT_EQ(hv.min, 3);
  EXPECT_EQ(hv.max, 4);
}

TEST(HistogramTest, OverflowBucketReportsMax) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("h", {10});
  h.Observe(100000);
  const HistogramValue hv = registry.Snapshot().histograms[0];
  EXPECT_EQ(hv.p50, 100000);
  EXPECT_EQ(hv.p99, 100000);
}

TEST(HistogramTest, EmptyHistogramPercentilesAreZero) {
  MetricsRegistry registry;
  registry.histogram("h");
  const HistogramValue hv = registry.Snapshot().histograms[0];
  EXPECT_EQ(hv.count, 0);
  EXPECT_EQ(hv.p50, 0);
  EXPECT_EQ(hv.p99, 0);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<int64_t>& bounds =
      MetricsRegistry::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 8u);
  EXPECT_EQ(bounds[0], 1000);  // 1us floor for nanosecond latencies
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(HistogramTest, IdenticalObservationsSnapshotIdentically) {
  // Determinism guarantee: two registries fed the same observation
  // multiset (in different orders, from different thread counts) snapshot
  // bit-identically.
  MetricsRegistry a, b;
  Histogram ha = a.histogram("h");
  Histogram hb = b.histogram("h");
  const std::vector<int64_t> values = {900, 3000, 70000, 3000, 12, 900};
  for (int64_t v : values) ha.Observe(v);
  std::vector<std::thread> workers;
  for (int64_t v : values) {
    workers.emplace_back([&hb, v] { hb.Observe(v); });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(SnapshotToJsonl(a.Snapshot()), SnapshotToJsonl(b.Snapshot()));
}

// --- Tracing --------------------------------------------------------------

TEST(TraceTest, BuildsSpanTreeWithFakeClockTimes) {
  serving::FakeClock clock(1000);
  Tracer tracer(&clock);
  TraceBuilder trace = tracer.StartTrace("request");
  clock.Advance(10);
  {
    TraceSpan forward(trace, "forward");
    clock.Advance(100);
    {
      TraceSpan fft(trace, "fft");
      clock.Advance(7);
      fft.Annotate("bins", "17");
    }
    forward.Annotate("tier", "full");
  }
  clock.Advance(3);
  trace.Finish();

  const std::vector<Trace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 1u);
  const Trace& t = traces[0];
  EXPECT_EQ(t.id, 1);
  ASSERT_EQ(t.spans.size(), 3u);

  EXPECT_EQ(t.spans[0].name, "request");
  EXPECT_EQ(t.spans[0].parent, -1);
  EXPECT_EQ(t.spans[0].depth, 0);
  EXPECT_EQ(t.spans[0].start_nanos, 1000);
  EXPECT_EQ(t.spans[0].end_nanos, 1120);

  EXPECT_EQ(t.spans[1].name, "forward");
  EXPECT_EQ(t.spans[1].parent, 0);
  EXPECT_EQ(t.spans[1].depth, 1);
  EXPECT_EQ(t.spans[1].start_nanos, 1010);
  EXPECT_EQ(t.spans[1].end_nanos, 1117);
  ASSERT_EQ(t.spans[1].annotations.size(), 1u);
  EXPECT_EQ(t.spans[1].annotations[0].first, "tier");
  EXPECT_EQ(t.spans[1].annotations[0].second, "full");

  EXPECT_EQ(t.spans[2].name, "fft");
  EXPECT_EQ(t.spans[2].parent, 1);
  EXPECT_EQ(t.spans[2].depth, 2);
  EXPECT_EQ(t.spans[2].duration_nanos(), 7);
}

TEST(TraceTest, DisabledBuilderIsANoOp) {
  TraceBuilder trace;  // no tracer
  EXPECT_FALSE(trace.enabled());
  const int32_t s = trace.BeginSpan("x");
  EXPECT_EQ(s, -1);
  trace.Annotate(s, "k", "v");
  trace.EndSpan(s);
  trace.Finish();  // must not crash
}

TEST(TraceTest, FinishClosesOpenSpans) {
  serving::FakeClock clock(0);
  Tracer tracer(&clock);
  TraceBuilder trace = tracer.StartTrace("request");
  trace.BeginSpan("left-open");
  clock.Advance(42);
  trace.Finish();
  const std::vector<Trace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 1u);
  for (const SpanRecord& s : traces[0].spans) {
    EXPECT_EQ(s.end_nanos, 42) << s.name;
  }
}

TEST(TraceTest, MovedFromBuilderIsSpent) {
  serving::FakeClock clock(0);
  Tracer tracer(&clock);
  TraceBuilder a = tracer.StartTrace("request");
  TraceBuilder b = std::move(a);
  EXPECT_FALSE(a.enabled());  // NOLINT(bugprone-use-after-move): the point
  EXPECT_TRUE(b.enabled());
  a.Finish();  // no-op, must not record a second trace
  b.Finish();
  EXPECT_EQ(tracer.Traces().size(), 1u);
}

TEST(TraceTest, RingEvictsOldestTraces) {
  serving::FakeClock clock(0);
  Tracer tracer(&clock, /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    TraceBuilder t = tracer.StartTrace("r");
    t.Finish();
  }
  const std::vector<Trace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].id, 3);  // ids 1 and 2 evicted
  EXPECT_EQ(traces[2].id, 5);
}

// --- Exporters ------------------------------------------------------------

TEST(ExportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ExportTest, SnapshotJsonlOneObjectPerLine) {
  MetricsRegistry registry;
  registry.counter("serving.requests").Increment(12);
  registry.gauge("serving.health").Set(1);
  Histogram h = registry.histogram("serving.request_nanos", {1000, 2000});
  h.Observe(500);
  h.Observe(1500);
  const std::string jsonl = SnapshotToJsonl(registry.Snapshot());
  EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":\"serving.requests\","
                       "\"value\":12}\n"),
            std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"gauge\",\"name\":\"serving.health\","
                       "\"value\":1}\n"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"bounds\":[1000,2000]"), std::string::npos);
  EXPECT_NE(jsonl.find("\"buckets\":[1,1,0]"), std::string::npos);
  // Every line is a complete object.
  size_t lines = 0;
  for (char ch : jsonl) lines += ch == '\n';
  EXPECT_EQ(lines, 3u);
}

TEST(ExportTest, SnapshotTableMentionsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("c.one").Increment();
  registry.gauge("g.two").Set(2);
  registry.histogram("h.three").Observe(3);
  const std::string table = SnapshotToTable(registry.Snapshot());
  EXPECT_NE(table.find("c.one"), std::string::npos);
  EXPECT_NE(table.find("g.two"), std::string::npos);
  EXPECT_NE(table.find("h.three"), std::string::npos);
}

TEST(ExportTest, TraceJsonlCarriesSpansAndAnnotations) {
  serving::FakeClock clock(100);
  Tracer tracer(&clock);
  TraceBuilder trace = tracer.StartTrace("request");
  const int32_t s = trace.BeginSpan("forward");
  trace.Annotate(s, "tier", "fallback");
  clock.Advance(50);
  trace.EndSpan(s);
  trace.Finish();
  const std::string jsonl = TracesToJsonl(tracer.Traces());
  EXPECT_NE(jsonl.find("\"type\":\"trace\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"forward\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"tier\":\"fallback\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"parent\":-1"), std::string::npos);
  EXPECT_EQ(jsonl.back(), '\n');

  const std::string table = TraceToTable(tracer.Traces()[0]);
  EXPECT_NE(table.find("request"), std::string::npos);
  EXPECT_NE(table.find("forward"), std::string::npos);
}

// --- TrainingTelemetry ----------------------------------------------------

EpochRecord MakeEpoch(int64_t epoch) {
  EpochRecord e;
  e.model = "TestModel";
  e.epoch = epoch;
  e.loss = 1.25;
  e.lr = 1e-3;
  e.grad_norm = 0.5;
  e.batches = 4;
  e.valid.ndcg10 = 0.125;
  e.improved = epoch == 1;
  e.wall_nanos = 1000;
  return e;
}

TEST(TrainingTelemetryTest, AccumulatesRecordsInMemory) {
  TrainingTelemetry telemetry(/*echo=*/false);
  telemetry.OnResume({"TestModel", "/tmp/ckpt", 3, 0.25});
  telemetry.OnEpoch(MakeEpoch(4));
  telemetry.OnRollback({"TestModel", 5, 4, 1e-3, 5e-4, 1, 2});
  telemetry.OnEpoch(MakeEpoch(5));
  FitSummaryRecord summary;
  summary.model = "TestModel";
  summary.epochs_run = 5;
  telemetry.OnFitSummary(summary);

  ASSERT_EQ(telemetry.epochs().size(), 2u);
  EXPECT_EQ(telemetry.epochs()[1].epoch, 5);
  ASSERT_EQ(telemetry.rollbacks().size(), 1u);
  EXPECT_EQ(telemetry.rollbacks()[0].rollback_index, 1);

  const std::string& jsonl = telemetry.jsonl();
  EXPECT_NE(jsonl.find("\"type\":\"resume\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"epoch\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"rollback\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"fit_summary\""), std::string::npos);
  EXPECT_TRUE(telemetry.status().ok());
}

TEST(TrainingTelemetryTest, PersistsJsonlCrashSafely) {
  const std::string path = ::testing::TempDir() + "/telemetry.jsonl";
  io::FaultInjectionEnv env;
  TrainingTelemetry telemetry(/*echo=*/false, path, &env);
  telemetry.OnEpoch(MakeEpoch(1));
  // Each record rewrote the file; it is complete on disk right now.
  const Result<std::string> first = env.ReadFile(path);
  ASSERT_TRUE(first.ok());
  EXPECT_NE(first.value().find("\"epoch\":1"), std::string::npos);

  telemetry.OnEpoch(MakeEpoch(2));
  const Result<std::string> second = env.ReadFile(path);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value().find("\"epoch\":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TrainingTelemetryTest, FlushFailureIsStickyButNonFatal) {
  const std::string path = ::testing::TempDir() + "/telemetry_fail.jsonl";
  std::remove(path.c_str());
  io::FaultInjectionEnv env;
  TrainingTelemetry telemetry(/*echo=*/false, path, &env);
  env.ArmFault(io::FaultInjectionEnv::Fault::kFailWrite, 1);
  telemetry.OnEpoch(MakeEpoch(1));  // must not throw
  EXPECT_FALSE(telemetry.status().ok());
  // Later records still accumulate in memory.
  telemetry.OnEpoch(MakeEpoch(2));
  EXPECT_EQ(telemetry.epochs().size(), 2u);
  EXPECT_FALSE(telemetry.status().ok()) << "first failure must stick";
  std::remove(path.c_str());
}

TEST(TrainingTelemetryTest, FailedRenameLeavesNoTornFile) {
  const std::string path = ::testing::TempDir() + "/telemetry_rename.jsonl";
  std::remove(path.c_str());
  io::FaultInjectionEnv env;
  TrainingTelemetry telemetry(/*echo=*/false, path, &env);
  telemetry.OnEpoch(MakeEpoch(1));
  ASSERT_TRUE(env.FileExists(path));
  const std::string before = env.ReadFile(path).value();
  env.ArmFault(io::FaultInjectionEnv::Fault::kFailRename, 1);
  telemetry.OnEpoch(MakeEpoch(2));
  EXPECT_FALSE(telemetry.status().ok());
  // The destination still holds the last complete log.
  EXPECT_EQ(env.ReadFile(path).value(), before);
  std::remove(path.c_str());
}

// --- CostEwma -------------------------------------------------------------

TEST(CostEwmaTest, FirstObservationSeedsThenQuarterBlends) {
  serving::CostEwma ewma;
  EXPECT_EQ(ewma.value(), 0);
  ewma.Observe(1000);
  EXPECT_EQ(ewma.value(), 1000);
  ewma.Observe(2000);
  EXPECT_EQ(ewma.value(), (1000 * 3 + 2000) / 4);
  ewma.Observe(-5);  // clamped to 0
  EXPECT_EQ(ewma.value(), (1250 * 3 + 0) / 4);
}

TEST(CostEwmaTest, ConcurrentObservationsStayInRange) {
  // Regression for the non-atomic load/store RMW this type replaced: under
  // concurrent updates every intermediate value must remain a convex blend
  // of observations, i.e. inside [min, max] of everything observed. Run
  // under TSan this also proves the CAS loop is race-free.
  serving::CostEwma ewma;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  constexpr int64_t kLo = 1000;
  constexpr int64_t kHi = 9000;
  std::atomic<bool> ok{true};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ewma.Observe(kLo + (t * 2654435761u + i * 40503u) % (kHi - kLo));
        const int64_t v = ewma.value();
        if (v < kLo / 2 || v > kHi) ok = false;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(ok.load());
  EXPECT_GE(ewma.value(), kLo / 2);
  EXPECT_LE(ewma.value(), kHi);
}

// --- Compute-layer instrumentation ---------------------------------------

TEST(ComputeMetricsTest, ParallelForCountsRegionsAndChunks) {
  MetricsRegistry registry;
  compute::SetMetricsRegistry(&registry);
  compute::ComputeContext single_thread(1);
  std::atomic<int64_t> total{0};
  compute::ParallelFor(0, 100, 10, [&](int64_t lo, int64_t hi) {
    total.fetch_add(hi - lo);
  });
  compute::SetMetricsRegistry(nullptr);
  EXPECT_EQ(total.load(), 100);
  const MetricsSnapshot snap = registry.Snapshot();
  int64_t regions = 0, chunks = 0;
  for (const MetricValue& c : snap.counters) {
    if (c.name == "compute.regions") regions = c.value;
    if (c.name == "compute.chunks") chunks = c.value;
  }
  EXPECT_EQ(regions, 1);
  EXPECT_EQ(chunks, 10);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "compute.region_nanos");
  EXPECT_EQ(snap.histograms[0].count, 1);
}

TEST(ComputeMetricsTest, DetachAfterResetIsInert) {
  MetricsRegistry registry;
  compute::SetMetricsRegistry(&registry);
  compute::SetMetricsRegistry(nullptr);
  compute::ComputeContext single_thread(1);
  compute::ParallelFor(0, 10, 1, [](int64_t, int64_t) {});
  int64_t regions = -1;
  for (const MetricValue& c : registry.Snapshot().counters) {
    if (c.name == "compute.regions") regions = c.value;
  }
  EXPECT_EQ(regions, 0);
}

}  // namespace
}  // namespace obs
}  // namespace slime
