#include "compute/kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "compute/thread_pool.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace compute {
namespace {

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.UniformFloat() * 2.0f - 1.0f;
  return v;
}

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    const int64_t num_chunks = 103;
    std::vector<std::atomic<int>> hits(num_chunks);
    for (auto& h : hits) h = 0;
    pool.Run(num_chunks, [&](int64_t c) { hits[c].fetch_add(1); });
    for (int64_t c = 0; c < num_chunks; ++c) EXPECT_EQ(hits[c].load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<int64_t> sum{0};
    pool.Run(17, [&](int64_t c) { sum.fetch_add(c); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ParallelForTest, CoversRangeOnceForAnyGrain) {
  for (int threads : {1, 3, 8}) {
    ComputeContext ctx(threads);
    for (int64_t grain : {1, 7, 64, 1000}) {
      const int64_t n = 257;
      std::vector<int> hits(n, 0);
      ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) ++hits[i];
      });
      for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1);
    }
  }
}

TEST(ParallelForTest, EmptyAndNegativeRangesAreNoOps) {
  int calls = 0;
  ParallelFor(5, 5, 16, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 3, 16, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  ComputeContext ctx(4);
  std::vector<int> hits(64, 0);
  ParallelFor(0, 4, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t outer = lo; outer < hi; ++outer) {
      // Nested region must not deadlock and must still cover its range.
      ParallelFor(0, 16, 4, [&](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) ++hits[outer * 16 + i];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelSumTest, BitIdenticalAcrossThreadCounts) {
  const auto v = RandomVec(100000, 7);
  double ref = 0.0;
  {
    ComputeContext ctx(1);
    ref = SumKernel(v.data(), static_cast<int64_t>(v.size()));
  }
  for (int threads : {2, 4, 8}) {
    ComputeContext ctx(threads);
    const double got = SumKernel(v.data(), static_cast<int64_t>(v.size()));
    EXPECT_EQ(ref, got) << "threads=" << threads;
  }
}

TEST(ParallelSumTest, DotBitIdenticalAcrossThreadCounts) {
  const auto a = RandomVec(70001, 11);
  const auto b = RandomVec(70001, 13);
  double ref = 0.0;
  {
    ComputeContext ctx(1);
    ref = DotKernel(a.data(), b.data(), 70001);
  }
  for (int threads : {2, 8}) {
    ComputeContext ctx(threads);
    EXPECT_EQ(ref, DotKernel(a.data(), b.data(), 70001));
  }
}

TEST(KernelsTest, AllFiniteDetectsNanAndInf) {
  auto v = RandomVec(50000, 3);
  ComputeContext ctx(4);
  EXPECT_TRUE(AllFiniteKernel(v.data(), 50000));
  v[49999] = std::nanf("");
  EXPECT_FALSE(AllFiniteKernel(v.data(), 50000));
  v[49999] = 0.0f;
  v[123] = INFINITY;
  EXPECT_FALSE(AllFiniteKernel(v.data(), 50000));
}

/// Naive triple-loop reference matmul in double precision.
std::vector<float> NaiveMatMul(const std::vector<float>& a,
                               const std::vector<float>& b, int64_t m,
                               int64_t k, int64_t n, bool trans_a,
                               bool trans_b) {
  std::vector<float> c(m * n, 0.0f);
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a[kk * m + i] : a[i * k + kk];
        const float bv = trans_b ? b[j * k + kk] : b[kk * n + j];
        acc += double(av) * bv;
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  return c;
}

TEST(KernelsTest, MatMulFamilyMatchesNaiveReference) {
  const int64_t m = 17, k = 23, n = 31;
  const auto a = RandomVec(m * k, 21);
  const auto b = RandomVec(k * n, 22);
  const auto bt = RandomVec(n * k, 23);
  const auto at = RandomVec(k * m, 24);
  ComputeContext ctx(4);

  std::vector<float> c(m * n, 0.0f);
  MatMulKernel(a.data(), b.data(), c.data(), m, k, n);
  auto ref = NaiveMatMul(a, b, m, k, n, false, false);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  std::fill(c.begin(), c.end(), 0.0f);
  MatMulTransBKernel(a.data(), bt.data(), c.data(), m, k, n);
  ref = NaiveMatMul(a, bt, m, k, n, false, true);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  std::fill(c.begin(), c.end(), 0.0f);
  MatMulTransAKernel(at.data(), b.data(), c.data(), k, m, n);
  ref = NaiveMatMul(at, b, m, k, n, true, false);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(KernelsTest, MatMulBitIdenticalAcrossThreadCounts) {
  const int64_t m = 64, k = 64, n = 64;
  const auto a = RandomVec(m * k, 31);
  const auto b = RandomVec(k * n, 32);
  std::vector<float> ref(m * n, 0.0f);
  {
    ComputeContext ctx(1);
    MatMulKernel(a.data(), b.data(), ref.data(), m, k, n);
  }
  for (int threads : {2, 5, 8}) {
    ComputeContext ctx(threads);
    std::vector<float> c(m * n, 0.0f);
    MatMulKernel(a.data(), b.data(), c.data(), m, k, n);
    EXPECT_EQ(std::memcmp(ref.data(), c.data(), ref.size() * sizeof(float)),
              0)
        << "threads=" << threads;
  }
}

TEST(KernelsTest, BatchMatMulSplitsAcrossItemBoundaries) {
  const int64_t batch = 3, m = 5, k = 7, n = 9;
  const auto a = RandomVec(batch * m * k, 41);
  const auto b = RandomVec(batch * k * n, 42);
  ComputeContext ctx(8);
  std::vector<float> c(batch * m * n, 0.0f);
  BatchMatMulKernel(a.data(), b.data(), c.data(), batch, m, k, n);
  for (int64_t bi = 0; bi < batch; ++bi) {
    const auto ref = NaiveMatMul(
        std::vector<float>(a.begin() + bi * m * k,
                           a.begin() + (bi + 1) * m * k),
        std::vector<float>(b.begin() + bi * k * n,
                           b.begin() + (bi + 1) * k * n),
        m, k, n, false, false);
    for (int64_t i = 0; i < m * n; ++i)
      EXPECT_NEAR(c[bi * m * n + i], ref[i], 1e-4f);
  }
}

TEST(KernelsTest, ComplexMulMatchesUnfusedComposition) {
  const int64_t repeats = 6, block = 37;
  const int64_t total = repeats * block;
  const auto ar = RandomVec(total, 51);
  const auto ai = RandomVec(total, 52);
  const auto br = RandomVec(block, 53);
  const auto bi = RandomVec(block, 54);
  ComputeContext ctx(4);
  std::vector<float> out_re(total), out_im(total);
  ComplexMulKernel(ar.data(), ai.data(), br.data(), bi.data(), out_re.data(),
                   out_im.data(), repeats, block);
  for (int64_t f = 0; f < total; ++f) {
    const int64_t j = f % block;
    // Exact float equality: the fused expression performs the same three
    // rounded operations as the unfused Sub(Mul, Mul) composition.
    EXPECT_EQ(out_re[f], ar[f] * br[j] - ai[f] * bi[j]);
    EXPECT_EQ(out_im[f], ar[f] * bi[j] + ai[f] * br[j]);
  }
}

TEST(ComputeContextTest, RestoresThreadCount) {
  const int before = NumThreads();
  {
    ComputeContext ctx(3);
    EXPECT_EQ(NumThreads(), 3);
    {
      ComputeContext inner(1);
      EXPECT_EQ(NumThreads(), 1);
    }
    EXPECT_EQ(NumThreads(), 3);
  }
  EXPECT_EQ(NumThreads(), before);
}

TEST(ThreadConfigTest, ParseThreadCountAcceptsValidValues) {
  EXPECT_EQ(ParseThreadCount("1").value(), 1);
  EXPECT_EQ(ParseThreadCount("8").value(), 8);
  EXPECT_EQ(ParseThreadCount(std::to_string(kMaxThreadCount)).value(),
            kMaxThreadCount);
}

TEST(ThreadConfigTest, ParseThreadCountRejectsMalformedInput) {
  for (const char* bad : {"", "abc", "4x", "x4", " 8", "3.5"}) {
    const auto r = ParseThreadCount(bad);
    ASSERT_FALSE(r.ok()) << "\"" << bad << "\"";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  }
}

TEST(ThreadConfigTest, ParseThreadCountRejectsOutOfRangeValues) {
  for (const char* bad : {"0", "-3", "-99999999999999999999"}) {
    const auto r = ParseThreadCount(bad);
    ASSERT_FALSE(r.ok()) << "\"" << bad << "\"";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  }
  // Above the cap, including values that overflow long.
  const auto over = ParseThreadCount(std::to_string(kMaxThreadCount + 1));
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("maximum"), std::string::npos);
  const auto huge = ParseThreadCount("99999999999999999999");
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.status().message().find("maximum"), std::string::npos);
}

TEST(DispatchTest, SwapAndRestore) {
  static int calls = 0;
  calls = 0;
  KernelTable table;
  table.sum = [](const float*, int64_t) {
    ++calls;
    return 42.0;
  };
  const KernelTable previous = SetDispatch(table);
  Tensor t = Tensor::Ones({10});
  EXPECT_EQ(ops::SumAll(t), 42.0f);
  EXPECT_EQ(calls, 1);
  SetDispatch(previous);
  EXPECT_FLOAT_EQ(ops::SumAll(t), 10.0f);
  EXPECT_EQ(calls, 1);
}

TEST(ShapeErrorDeathTest, MatMulRankErrorAbortsInAllBuilds) {
  Tensor a({2, 3, 4});
  Tensor b({4, 5});
  EXPECT_DEATH(ops::MatMul(a, b), "rank-2");
}

TEST(ShapeErrorDeathTest, MatMulInnerDimMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({4, 5});
  EXPECT_DEATH(ops::MatMul(a, b), "inner dimension mismatch");
  EXPECT_DEATH(ops::MatMulTransB(a, b), "inner dimension mismatch");
  Tensor at({4, 2});
  EXPECT_DEATH(ops::MatMulTransA(at, Tensor({3, 5})),
               "inner dimension mismatch");
}

TEST(ShapeErrorDeathTest, BatchMatMulMismatchesAbort) {
  Tensor a({2, 3, 4});
  Tensor b({3, 4, 5});
  EXPECT_DEATH(ops::BatchMatMul(a, b), "batch mismatch");
  Tensor c({2, 7, 5});
  EXPECT_DEATH(ops::BatchMatMul(a, c), "inner dimension mismatch");
  EXPECT_DEATH(ops::BatchMatMul(Tensor({2, 3}), c), "rank-3");
}

TEST(ShapeErrorDeathTest, BroadcastMismatchNamesBothShapes) {
  Tensor a({2, 3});
  Tensor b({4, 3});
  EXPECT_DEATH(ops::Add(a, b), "incompatible broadcast");
}

}  // namespace
}  // namespace compute
}  // namespace slime
