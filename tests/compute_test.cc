#include "compute/kernels.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "compute/backend.h"
#include "compute/thread_pool.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace compute {
namespace {

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.UniformFloat() * 2.0f - 1.0f;
  return v;
}

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    const int64_t num_chunks = 103;
    std::vector<std::atomic<int>> hits(num_chunks);
    for (auto& h : hits) h = 0;
    pool.Run(num_chunks, [&](int64_t c) { hits[c].fetch_add(1); });
    for (int64_t c = 0; c < num_chunks; ++c) EXPECT_EQ(hits[c].load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<int64_t> sum{0};
    pool.Run(17, [&](int64_t c) { sum.fetch_add(c); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ParallelForTest, CoversRangeOnceForAnyGrain) {
  for (int threads : {1, 3, 8}) {
    ComputeContext ctx(threads);
    for (int64_t grain : {1, 7, 64, 1000}) {
      const int64_t n = 257;
      std::vector<int> hits(n, 0);
      ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) ++hits[i];
      });
      for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1);
    }
  }
}

TEST(ParallelForTest, EmptyAndNegativeRangesAreNoOps) {
  int calls = 0;
  ParallelFor(5, 5, 16, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 3, 16, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  ComputeContext ctx(4);
  std::vector<int> hits(64, 0);
  ParallelFor(0, 4, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t outer = lo; outer < hi; ++outer) {
      // Nested region must not deadlock and must still cover its range.
      ParallelFor(0, 16, 4, [&](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) ++hits[outer * 16 + i];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelSumTest, BitIdenticalAcrossThreadCounts) {
  const auto v = RandomVec(100000, 7);
  double ref = 0.0;
  {
    ComputeContext ctx(1);
    ref = SumKernel(v.data(), static_cast<int64_t>(v.size()));
  }
  for (int threads : {2, 4, 8}) {
    ComputeContext ctx(threads);
    const double got = SumKernel(v.data(), static_cast<int64_t>(v.size()));
    EXPECT_EQ(ref, got) << "threads=" << threads;
  }
}

TEST(ParallelSumTest, DotBitIdenticalAcrossThreadCounts) {
  const auto a = RandomVec(70001, 11);
  const auto b = RandomVec(70001, 13);
  double ref = 0.0;
  {
    ComputeContext ctx(1);
    ref = DotKernel(a.data(), b.data(), 70001);
  }
  for (int threads : {2, 8}) {
    ComputeContext ctx(threads);
    EXPECT_EQ(ref, DotKernel(a.data(), b.data(), 70001));
  }
}

TEST(KernelsTest, AllFiniteDetectsNanAndInf) {
  auto v = RandomVec(50000, 3);
  ComputeContext ctx(4);
  EXPECT_TRUE(AllFiniteKernel(v.data(), 50000));
  v[49999] = std::nanf("");
  EXPECT_FALSE(AllFiniteKernel(v.data(), 50000));
  v[49999] = 0.0f;
  v[123] = INFINITY;
  EXPECT_FALSE(AllFiniteKernel(v.data(), 50000));
}

/// Naive triple-loop reference matmul in double precision.
std::vector<float> NaiveMatMul(const std::vector<float>& a,
                               const std::vector<float>& b, int64_t m,
                               int64_t k, int64_t n, bool trans_a,
                               bool trans_b) {
  std::vector<float> c(m * n, 0.0f);
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a[kk * m + i] : a[i * k + kk];
        const float bv = trans_b ? b[j * k + kk] : b[kk * n + j];
        acc += double(av) * bv;
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  return c;
}

TEST(KernelsTest, MatMulFamilyMatchesNaiveReference) {
  const int64_t m = 17, k = 23, n = 31;
  const auto a = RandomVec(m * k, 21);
  const auto b = RandomVec(k * n, 22);
  const auto bt = RandomVec(n * k, 23);
  const auto at = RandomVec(k * m, 24);
  ComputeContext ctx(4);

  std::vector<float> c(m * n, 0.0f);
  MatMulKernel(a.data(), b.data(), c.data(), m, k, n);
  auto ref = NaiveMatMul(a, b, m, k, n, false, false);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  std::fill(c.begin(), c.end(), 0.0f);
  MatMulTransBKernel(a.data(), bt.data(), c.data(), m, k, n);
  ref = NaiveMatMul(a, bt, m, k, n, false, true);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  std::fill(c.begin(), c.end(), 0.0f);
  MatMulTransAKernel(at.data(), b.data(), c.data(), k, m, n);
  ref = NaiveMatMul(at, b, m, k, n, true, false);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(KernelsTest, MatMulBitIdenticalAcrossThreadCounts) {
  const int64_t m = 64, k = 64, n = 64;
  const auto a = RandomVec(m * k, 31);
  const auto b = RandomVec(k * n, 32);
  std::vector<float> ref(m * n, 0.0f);
  {
    ComputeContext ctx(1);
    MatMulKernel(a.data(), b.data(), ref.data(), m, k, n);
  }
  for (int threads : {2, 5, 8}) {
    ComputeContext ctx(threads);
    std::vector<float> c(m * n, 0.0f);
    MatMulKernel(a.data(), b.data(), c.data(), m, k, n);
    EXPECT_EQ(std::memcmp(ref.data(), c.data(), ref.size() * sizeof(float)),
              0)
        << "threads=" << threads;
  }
}

TEST(KernelsTest, BatchMatMulSplitsAcrossItemBoundaries) {
  const int64_t batch = 3, m = 5, k = 7, n = 9;
  const auto a = RandomVec(batch * m * k, 41);
  const auto b = RandomVec(batch * k * n, 42);
  ComputeContext ctx(8);
  std::vector<float> c(batch * m * n, 0.0f);
  BatchMatMulKernel(a.data(), b.data(), c.data(), batch, m, k, n);
  for (int64_t bi = 0; bi < batch; ++bi) {
    const auto ref = NaiveMatMul(
        std::vector<float>(a.begin() + bi * m * k,
                           a.begin() + (bi + 1) * m * k),
        std::vector<float>(b.begin() + bi * k * n,
                           b.begin() + (bi + 1) * k * n),
        m, k, n, false, false);
    for (int64_t i = 0; i < m * n; ++i)
      EXPECT_NEAR(c[bi * m * n + i], ref[i], 1e-4f);
  }
}

TEST(KernelsTest, ComplexMulMatchesUnfusedComposition) {
  const int64_t repeats = 6, block = 37;
  const int64_t total = repeats * block;
  const auto ar = RandomVec(total, 51);
  const auto ai = RandomVec(total, 52);
  const auto br = RandomVec(block, 53);
  const auto bi = RandomVec(block, 54);
  ComputeContext ctx(4);
  std::vector<float> out_re(total), out_im(total);
  ComplexMulKernel(ar.data(), ai.data(), br.data(), bi.data(), out_re.data(),
                   out_im.data(), repeats, block);
  for (int64_t f = 0; f < total; ++f) {
    const int64_t j = f % block;
    // Exact float equality: the fused expression performs the same three
    // rounded operations as the unfused Sub(Mul, Mul) composition.
    EXPECT_EQ(out_re[f], ar[f] * br[j] - ai[f] * bi[j]);
    EXPECT_EQ(out_im[f], ar[f] * bi[j] + ai[f] * br[j]);
  }
}

TEST(ComputeContextTest, RestoresThreadCount) {
  const int before = NumThreads();
  {
    ComputeContext ctx(3);
    EXPECT_EQ(NumThreads(), 3);
    {
      ComputeContext inner(1);
      EXPECT_EQ(NumThreads(), 1);
    }
    EXPECT_EQ(NumThreads(), 3);
  }
  EXPECT_EQ(NumThreads(), before);
}

TEST(ThreadConfigTest, ParseThreadCountAcceptsValidValues) {
  EXPECT_EQ(ParseThreadCount("1").value(), 1);
  EXPECT_EQ(ParseThreadCount("8").value(), 8);
  EXPECT_EQ(ParseThreadCount(std::to_string(kMaxThreadCount)).value(),
            kMaxThreadCount);
}

TEST(ThreadConfigTest, ParseThreadCountRejectsMalformedInput) {
  for (const char* bad : {"", "abc", "4x", "x4", " 8", "3.5"}) {
    const auto r = ParseThreadCount(bad);
    ASSERT_FALSE(r.ok()) << "\"" << bad << "\"";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  }
}

TEST(ThreadConfigTest, ParseThreadCountRejectsOutOfRangeValues) {
  for (const char* bad : {"0", "-3", "-99999999999999999999"}) {
    const auto r = ParseThreadCount(bad);
    ASSERT_FALSE(r.ok()) << "\"" << bad << "\"";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  }
  // Above the cap, including values that overflow long.
  const auto over = ParseThreadCount(std::to_string(kMaxThreadCount + 1));
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("maximum"), std::string::npos);
  const auto huge = ParseThreadCount("99999999999999999999");
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.status().message().find("maximum"), std::string::npos);
}

TEST(DispatchTest, SwapAndRestore) {
  static int calls = 0;
  calls = 0;
  KernelTable table;
  table.sum = [](const float*, int64_t) {
    ++calls;
    return 42.0;
  };
  const KernelTable previous = SetDispatch(table);
  Tensor t = Tensor::Ones({10});
  EXPECT_EQ(ops::SumAll(t), 42.0f);
  EXPECT_EQ(calls, 1);
  SetDispatch(previous);
  EXPECT_FLOAT_EQ(ops::SumAll(t), 10.0f);
  EXPECT_EQ(calls, 1);
}

TEST(ShapeErrorDeathTest, MatMulRankErrorAbortsInAllBuilds) {
  Tensor a({2, 3, 4});
  Tensor b({4, 5});
  EXPECT_DEATH(ops::MatMul(a, b), "rank-2");
}

TEST(ShapeErrorDeathTest, MatMulInnerDimMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({4, 5});
  EXPECT_DEATH(ops::MatMul(a, b), "inner dimension mismatch");
  EXPECT_DEATH(ops::MatMulTransB(a, b), "inner dimension mismatch");
  Tensor at({4, 2});
  EXPECT_DEATH(ops::MatMulTransA(at, Tensor({3, 5})),
               "inner dimension mismatch");
}

TEST(ShapeErrorDeathTest, BatchMatMulMismatchesAbort) {
  Tensor a({2, 3, 4});
  Tensor b({3, 4, 5});
  EXPECT_DEATH(ops::BatchMatMul(a, b), "batch mismatch");
  Tensor c({2, 7, 5});
  EXPECT_DEATH(ops::BatchMatMul(a, c), "inner dimension mismatch");
  EXPECT_DEATH(ops::BatchMatMul(Tensor({2, 3}), c), "rank-3");
}

TEST(ShapeErrorDeathTest, BroadcastMismatchNamesBothShapes) {
  Tensor a({2, 3});
  Tensor b({4, 3});
  EXPECT_DEATH(ops::Add(a, b), "incompatible broadcast");
}

// ---- Rowwise / elementwise kernels added for the backend seam.

TEST(KernelsTest, SoftmaxRowsMatchesReferenceAndBackwardIdentity) {
  const int64_t rows = 5, d = 13;  // d not divisible by the SIMD width
  const auto x = RandomVec(rows * d, 61);
  ComputeContext ctx(4);
  std::vector<float> y(rows * d);
  SoftmaxRowsKernel(x.data(), y.data(), rows, d);
  for (int64_t r = 0; r < rows; ++r) {
    double mx = x[r * d];
    for (int64_t j = 1; j < d; ++j) mx = std::max<double>(mx, x[r * d + j]);
    double z = 0.0;
    for (int64_t j = 0; j < d; ++j) z += std::exp(double(x[r * d + j]) - mx);
    double sum = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double ref = std::exp(double(x[r * d + j]) - mx) / z;
      EXPECT_NEAR(y[r * d + j], ref, 1e-6);
      sum += y[r * d + j];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  // Backward: dx = y * (g - <g, y>); with g = 1 the bracket vanishes, so
  // dx must be ~0 (softmax is shift-invariant).
  std::vector<float> g(rows * d, 1.0f), dx(rows * d, -1.0f);
  SoftmaxRowsBwdKernel(y.data(), g.data(), dx.data(), rows, d);
  for (const float v : dx) EXPECT_NEAR(v, 0.0f, 1e-6f);
}

TEST(KernelsTest, GeluMatchesErfReferenceAndFiniteDifference) {
  const auto x = RandomVec(97, 62);
  ComputeContext ctx(2);
  std::vector<float> y(x.size());
  GeluKernel(x.data(), y.data(), static_cast<int64_t>(x.size()));
  for (size_t i = 0; i < x.size(); ++i) {
    const double ref =
        0.5 * double(x[i]) * (1.0 + std::erf(double(x[i]) / std::sqrt(2.0)));
    EXPECT_NEAR(y[i], ref, 1e-6);
  }
  // Backward against a central finite difference of the forward.
  std::vector<float> g(x.size(), 1.0f), dx(x.size());
  GeluBwdKernel(x.data(), g.data(), dx.data(),
                static_cast<int64_t>(x.size()));
  for (size_t i = 0; i < x.size(); i += 7) {
    const double h = 1e-4;
    const double xp = double(x[i]) + h, xm = double(x[i]) - h;
    const double fp = 0.5 * xp * (1.0 + std::erf(xp / std::sqrt(2.0)));
    const double fm = 0.5 * xm * (1.0 + std::erf(xm / std::sqrt(2.0)));
    EXPECT_NEAR(dx[i], (fp - fm) / (2 * h), 1e-3);
  }
}

TEST(KernelsTest, LayerNormNormalizesRowsAndParamGradsSum) {
  const int64_t rows = 4, d = 11;
  const auto x = RandomVec(rows * d, 63);
  std::vector<float> gamma(d, 2.0f), beta(d, 0.5f);
  std::vector<float> y(rows * d), xhat(rows * d), inv_std(rows);
  ComputeContext ctx(4);
  LayerNormKernel(x.data(), gamma.data(), beta.data(), y.data(), xhat.data(),
                  inv_std.data(), rows, d, 1e-5f);
  for (int64_t r = 0; r < rows; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t j = 0; j < d; ++j) mean += xhat[r * d + j];
    for (int64_t j = 0; j < d; ++j)
      var += double(xhat[r * d + j]) * xhat[r * d + j];
    EXPECT_NEAR(mean / d, 0.0, 1e-5);  // xhat is standardised per row
    EXPECT_NEAR(var / d, 1.0, 1e-3);
    for (int64_t j = 0; j < d; ++j)
      EXPECT_NEAR(y[r * d + j], 2.0f * xhat[r * d + j] + 0.5f, 1e-5f);
  }
  // Parameter grads: dbeta = sum_r g, dgamma = sum_r g * xhat.
  const auto g = RandomVec(rows * d, 64);
  std::vector<float> dgamma(d, 0.0f), dbeta(d, 0.0f);
  LayerNormParamBwdKernel(g.data(), xhat.data(), dgamma.data(), dbeta.data(),
                          rows, d);
  for (int64_t j = 0; j < d; ++j) {
    double sb = 0.0, sg = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
      sb += g[r * d + j];
      sg += double(g[r * d + j]) * xhat[r * d + j];
    }
    EXPECT_NEAR(dbeta[j], sb, 1e-5);
    EXPECT_NEAR(dgamma[j], sg, 1e-5);
  }
  // dgamma may be null when only dbeta is needed.
  std::vector<float> dbeta2(d, 0.0f);
  LayerNormParamBwdKernel(g.data(), xhat.data(), nullptr, dbeta2.data(), rows,
                          d);
  for (int64_t j = 0; j < d; ++j) EXPECT_EQ(dbeta2[j], dbeta[j]);
}

TEST(KernelsTest, AdamStepMatchesScalarReference) {
  const int64_t n = 29;
  auto w = RandomVec(n, 65);
  auto m = RandomVec(n, 66);
  auto v = RandomVec(n, 67);
  for (auto& x : v) x = std::abs(x);  // second moment is non-negative
  const auto g = RandomVec(n, 68);
  auto wr = w, mr = m, vr = v;
  AdamStepParams p;
  p.lr = 0.01f;
  p.bias_corr1 = 0.5f;
  p.bias_corr2 = 0.25f;
  p.weight_decay = 0.1f;
  ComputeContext ctx(4);
  AdamStepKernel(w.data(), m.data(), v.data(), g.data(), n, p);
  for (int64_t i = 0; i < n; ++i) {
    mr[i] = p.beta1 * mr[i] + (1.0f - p.beta1) * g[i];
    vr[i] = p.beta2 * vr[i] + (1.0f - p.beta2) * g[i] * g[i];
    const float mhat = mr[i] / p.bias_corr1;
    const float vhat = vr[i] / p.bias_corr2;
    float update = mhat / (std::sqrt(vhat) + p.eps);
    update += p.weight_decay * wr[i];
    wr[i] -= p.lr * update;
    EXPECT_NEAR(w[i], wr[i], 1e-6f) << i;
    EXPECT_NEAR(m[i], mr[i], 1e-7f) << i;
    EXPECT_NEAR(v[i], vr[i], 1e-7f) << i;
  }
}

TEST(KernelsTest, GatherScatterAccumulatesDuplicateIds) {
  const int64_t vocab = 7, d = 5;
  const auto w = RandomVec(vocab * d, 71);
  const std::vector<int64_t> ids = {3, 0, 3, 6, 3};  // duplicates on row 3
  ComputeContext ctx(4);
  std::vector<float> out(ids.size() * d, -1.0f);
  GatherRowsKernel(w.data(), ids.data(), out.data(),
                   static_cast<int64_t>(ids.size()), d);
  for (size_t i = 0; i < ids.size(); ++i)
    for (int64_t j = 0; j < d; ++j)
      EXPECT_EQ(out[i * d + j], w[ids[i] * d + j]);
  const auto g = RandomVec(ids.size() * d, 72);
  std::vector<float> acc(vocab * d, 0.0f);
  ScatterAddRowsKernel(g.data(), ids.data(), acc.data(),
                       static_cast<int64_t>(ids.size()), d);
  std::vector<float> ref(vocab * d, 0.0f);
  for (size_t i = 0; i < ids.size(); ++i)
    for (int64_t j = 0; j < d; ++j) ref[ids[i] * d + j] += g[i * d + j];
  for (int64_t i = 0; i < vocab * d; ++i) EXPECT_EQ(acc[i], ref[i]);
}

TEST(KernelsTest, AxpyScaleAddMatchReference) {
  const int64_t n = 77;  // odd tail
  const auto a = RandomVec(n, 73);
  const auto b = RandomVec(n, 74);
  ComputeContext ctx(4);
  auto out = b;
  AxpyKernel(out.data(), a.data(), 0.5f, n);
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(out[i], b[i] + a[i] * 0.5f);
  auto p = a;
  ScaleKernel(p.data(), -2.0f, n);
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(p[i], a[i] * -2.0f);
  std::vector<float> s(n, 0.0f);
  AddKernel(a.data(), b.data(), s.data(), n);
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(s[i], a[i] + b[i]);
}

TEST(KernelsTest, ZeroLengthBuffersAreNoOps) {
  // Every kernel must tolerate empty work without touching memory.
  float sentinel = 42.0f;
  AxpyKernel(&sentinel, &sentinel, 2.0f, 0);
  ScaleKernel(&sentinel, 2.0f, 0);
  AddKernel(&sentinel, &sentinel, &sentinel, 0);
  GeluKernel(&sentinel, &sentinel, 0);
  SoftmaxRowsKernel(&sentinel, &sentinel, 0, 8);
  MatMulKernel(&sentinel, &sentinel, &sentinel, 0, 0, 0);
  GatherRowsKernel(&sentinel, nullptr, &sentinel, 0, 4);
  ScatterAddRowsKernel(&sentinel, nullptr, &sentinel, 0, 4);
  AdamStepParams p;
  AdamStepKernel(&sentinel, &sentinel, &sentinel, &sentinel, 0, p);
  EXPECT_EQ(sentinel, 42.0f);
}

// ---- Kernel backend registry (scalar / simd tiers).

/// Restores the default scalar backend when a test body returns.
struct BackendGuard {
  ~BackendGuard() { SetKernelBackend("scalar").value(); }
};

bool SimdAvailable() {
  return SimdBackendCompiled() && CpuSupportsAvx2Fma();
}

TEST(BackendTest, ParseAcceptsKnownNamesAndRejectsUnknown) {
  EXPECT_EQ(ParseKernelBackend("auto").value(), "auto");
  EXPECT_EQ(ParseKernelBackend("scalar").value(), "scalar");
  EXPECT_EQ(ParseKernelBackend("simd").value(), "simd");
  for (const char* bad : {"", "neon", "avx512", "Scalar", " simd"}) {
    const auto r = ParseKernelBackend(bad);
    ASSERT_FALSE(r.ok()) << "\"" << bad << "\"";
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
    EXPECT_NE(r.status().message().find("valid: auto, scalar, simd"),
              std::string::npos);
  }
}

TEST(BackendTest, AutoResolvesToConcreteTier) {
  BackendGuard guard;
  const auto r = SetKernelBackend("auto");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value() == "scalar" || r.value() == "simd");
  EXPECT_EQ(r.value(), ActiveKernelBackend());
  EXPECT_EQ(r.value() == "simd", SimdAvailable());
}

TEST(BackendTest, BackendIdsAreStable) {
  EXPECT_EQ(KernelBackendId("scalar"), 0);
  EXPECT_EQ(KernelBackendId("simd"), 1);
  EXPECT_EQ(KernelBackendId("anything-else"), -1);
}

TEST(BackendTest, AvailableBackendsAlwaysIncludeScalar) {
  const auto avail = AvailableKernelBackends();
  ASSERT_FALSE(avail.empty());
  bool has_scalar = false;
  for (const auto& b : avail) has_scalar |= (b == "scalar");
  EXPECT_TRUE(has_scalar);
}

TEST(BackendTest, DisableAvx2KillSwitchForcesScalarFallback) {
  BackendGuard guard;
  ::setenv("SLIME_DISABLE_AVX2", "1", 1);
  EXPECT_FALSE(CpuSupportsAvx2Fma());
  const auto autod = SetKernelBackend("auto");
  ASSERT_TRUE(autod.ok());
  EXPECT_EQ(autod.value(), "scalar");
  const auto simd = SetKernelBackend("simd");
  ASSERT_FALSE(simd.ok());
  EXPECT_EQ(simd.status().code(), Status::Code::kUnavailable);
  ::unsetenv("SLIME_DISABLE_AVX2");
}

// ---- Cross-tier agreement and within-tier determinism for the SIMD
// backend. Skipped (not failed) on hosts that cannot run it.

TEST(SimdBackendTest, MatMulFamilyMatchesNaiveReference) {
  if (!SimdAvailable()) GTEST_SKIP() << "simd backend unavailable";
  BackendGuard guard;
  SetKernelBackend("simd").value();
  // 31 columns: one 16-wide tile, one 8-wide strip, 7 scalar tail columns.
  const int64_t m = 17, k = 23, n = 31;
  const auto a = RandomVec(m * k, 81);
  const auto b = RandomVec(k * n, 82);
  const auto bt = RandomVec(n * k, 83);
  const auto at = RandomVec(k * m, 84);
  ComputeContext ctx(4);
  const KernelTable& kt = Dispatch();

  std::vector<float> c(m * n, 0.0f);
  kt.matmul(a.data(), b.data(), c.data(), m, k, n);
  auto ref = NaiveMatMul(a, b, m, k, n, false, false);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  std::fill(c.begin(), c.end(), 0.0f);
  kt.matmul_trans_b(a.data(), bt.data(), c.data(), m, k, n);
  ref = NaiveMatMul(a, bt, m, k, n, false, true);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);

  std::fill(c.begin(), c.end(), 0.0f);
  kt.matmul_trans_a(at.data(), b.data(), c.data(), k, m, n);
  ref = NaiveMatMul(at, b, m, k, n, true, false);
  for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4f);
}

TEST(SimdBackendTest, MatMulBitIdenticalAcrossThreadCounts) {
  if (!SimdAvailable()) GTEST_SKIP() << "simd backend unavailable";
  BackendGuard guard;
  SetKernelBackend("simd").value();
  const int64_t m = 33, k = 47, n = 70;  // non-divisible everything
  const auto a = RandomVec(m * k, 85);
  const auto b = RandomVec(k * n, 86);
  std::vector<float> ref(m * n, 0.0f);
  {
    ComputeContext ctx(1);
    Dispatch().matmul(a.data(), b.data(), ref.data(), m, k, n);
  }
  for (int threads : {2, 5, 8}) {
    ComputeContext ctx(threads);
    std::vector<float> c(m * n, 0.0f);
    Dispatch().matmul(a.data(), b.data(), c.data(), m, k, n);
    EXPECT_EQ(std::memcmp(ref.data(), c.data(), ref.size() * sizeof(float)),
              0)
        << "threads=" << threads;
  }
}

TEST(SimdBackendTest, UnalignedOperandsMatchAlignedResults) {
  if (!SimdAvailable()) GTEST_SKIP() << "simd backend unavailable";
  BackendGuard guard;
  SetKernelBackend("simd").value();
  const int64_t m = 9, k = 21, n = 24;
  const auto a = RandomVec(m * k, 87);
  const auto b = RandomVec(k * n, 88);
  ComputeContext ctx(2);
  std::vector<float> aligned(m * n, 0.0f);
  Dispatch().matmul(a.data(), b.data(), aligned.data(), m, k, n);
  // Same operands shifted one float off any 32-byte boundary: loadu paths
  // must produce the identical bits.
  std::vector<float> abuf(m * k + 1), bbuf(k * n + 1), cbuf(m * n + 1, 0.0f);
  std::copy(a.begin(), a.end(), abuf.begin() + 1);
  std::copy(b.begin(), b.end(), bbuf.begin() + 1);
  Dispatch().matmul(abuf.data() + 1, bbuf.data() + 1, cbuf.data() + 1, m, k,
                    n);
  EXPECT_EQ(std::memcmp(aligned.data(), cbuf.data() + 1,
                        aligned.size() * sizeof(float)),
            0);
}

TEST(SimdBackendTest, ElementwiseTailsAndNaNParityWithScalar) {
  if (!SimdAvailable()) GTEST_SKIP() << "simd backend unavailable";
  BackendGuard guard;
  const int64_t n = 13;  // below one SIMD width plus tail
  auto a = RandomVec(n, 89);
  auto base = RandomVec(n, 90);
  a[3] = std::nanf("");  // NaN must propagate identically
  a[7] = 1e-39f;         // denormal must survive (no flush-to-zero)
  base[7] = 0.0f;        // ... so the denormal IS the result in slot 7
  ComputeContext ctx(1);
  auto scalar_out = base;
  SetKernelBackend("scalar").value();
  Dispatch().axpy(scalar_out.data(), a.data(), 1.0f, n);
  auto simd_out = base;
  SetKernelBackend("simd").value();
  Dispatch().axpy(simd_out.data(), a.data(), 1.0f, n);
  // axpy is one multiply-add per element in both tiers; FMA of scale 1.0f
  // rounds identically, so the bits must match — including the NaN slot
  // and the denormal.
  EXPECT_EQ(std::memcmp(scalar_out.data(), simd_out.data(),
                        simd_out.size() * sizeof(float)),
            0);
  EXPECT_TRUE(std::isnan(simd_out[3]));
  EXPECT_EQ(simd_out[7], 1e-39f);  // denormal survived, not flushed
}

TEST(SimdBackendTest, AdamStepAgreesWithScalarWithinTolerance) {
  if (!SimdAvailable()) GTEST_SKIP() << "simd backend unavailable";
  BackendGuard guard;
  const int64_t n = 29;
  const auto g = RandomVec(n, 91);
  auto w0 = RandomVec(n, 92);
  auto m0 = RandomVec(n, 93);
  auto v0 = RandomVec(n, 94);
  for (auto& x : v0) x = std::abs(x);
  AdamStepParams p;
  p.bias_corr1 = 0.5f;
  p.bias_corr2 = 0.25f;
  ComputeContext ctx(1);
  auto ws = w0, ms = m0, vs = v0;
  SetKernelBackend("scalar").value();
  Dispatch().adam_step(ws.data(), ms.data(), vs.data(), g.data(), n, p);
  auto wv = w0, mv = m0, vv = v0;
  SetKernelBackend("simd").value();
  Dispatch().adam_step(wv.data(), mv.data(), vv.data(), g.data(), n, p);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ws[i], wv[i], 1e-6f) << i;
    EXPECT_NEAR(ms[i], mv[i], 1e-7f) << i;
    EXPECT_NEAR(vs[i], vv[i], 1e-7f) << i;
  }
}

}  // namespace
}  // namespace compute
}  // namespace slime
