#include "state/state_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/macros.h"
#include "io/atomic_write.h"
#include "io/checkpoint.h"
#include "io/env.h"
#include "models/recommender.h"
#include "observability/metrics.h"
#include "serving/model_server.h"
#include "state/wal.h"
#include "tensor/tensor.h"

namespace slime {
namespace state {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Returns a state dir guaranteed to start empty (TempDir persists across
/// test runs; stale WAL/snapshot files would change recovery).
std::string FreshStateDir(const std::string& name) {
  const std::string dir = TempPath(name);
  io::Env* env = io::Env::Default();
  for (const char* file : {"/state.wal", "/state.snapshot",
                           "/state.wal.tmp", "/state.snapshot.tmp"}) {
    (void)env->RemoveFile(dir + file);
  }
  return dir;
}

StateStoreOptions Opts(const std::string& dir, SyncMode sync,
                       io::Env* env = nullptr) {
  StateStoreOptions o;
  o.dir = dir;
  o.sync = sync;
  o.snapshot_every_records = 0;  // explicit Compact() only, unless a test opts in
  o.env = env;
  return o;
}

std::unique_ptr<StateStore> MustOpen(const StateStoreOptions& options) {
  Result<std::unique_ptr<StateStore>> store = StateStore::Open(options);
  SLIME_CHECK_MSG(store.ok(), store.status().ToString());
  return std::move(store.value());
}

// --- WriteAheadLog -------------------------------------------------------

TEST(WalTest, AppendScanRoundTrip) {
  io::Env* env = io::Env::Default();
  const std::string path = TempPath("wal_roundtrip.wal");
  (void)env->RemoveFile(path);
  WriteAheadLog wal(path, env);
  ASSERT_TRUE(wal.Append(1, "alpha").ok());
  ASSERT_TRUE(wal.Append(2, "").ok());
  ASSERT_TRUE(wal.Append(3, "gamma-with-longer-payload").ok());
  ASSERT_TRUE(wal.Sync().ok());

  WalScanReport report;
  Result<std::vector<WalRecord>> records =
      WriteAheadLog::Scan(env, path, &report);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value()[0].payload, "alpha");
  EXPECT_EQ(records.value()[1].payload, "");
  EXPECT_EQ(records.value()[2].payload, "gamma-with-longer-payload");
  EXPECT_EQ(records.value()[2].seq, 3u);
  EXPECT_FALSE(report.torn);
  EXPECT_EQ(report.bytes_truncated, 0);
  EXPECT_TRUE(report.tail_status.ok());
}

TEST(WalTest, MissingFileIsEmptyLog) {
  WalScanReport report;
  Result<std::vector<WalRecord>> records = WriteAheadLog::Scan(
      io::Env::Default(), TempPath("wal_never_written.wal"), &report);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records.value().empty());
  EXPECT_FALSE(report.torn);
}

// The heart of the recovery contract: for EVERY possible tear offset, the
// scan recovers exactly the complete frames before the tear and accounts
// for every dropped byte.
TEST(WalTest, TornTailAtEveryByteOffsetTruncatesExactly) {
  io::Env* env = io::Env::Default();
  const std::string full = WriteAheadLog::EncodeFrame(1, "first-payload") +
                           WriteAheadLog::EncodeFrame(2, "second") +
                           WriteAheadLog::EncodeFrame(3, "third-x");
  const size_t f1 = WriteAheadLog::EncodeFrame(1, "first-payload").size();
  const size_t f2 = f1 + WriteAheadLog::EncodeFrame(2, "second").size();
  const std::string path = TempPath("wal_torn.wal");
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    ASSERT_TRUE(env->WriteFile(path, full.substr(0, cut)).ok());
    WalScanReport report;
    Result<std::vector<WalRecord>> records =
        WriteAheadLog::Scan(env, path, &report);
    ASSERT_TRUE(records.ok()) << "cut=" << cut;
    const size_t want_records = cut >= full.size() ? 3 : cut >= f2 ? 2
                                : cut >= f1       ? 1
                                                  : 0;
    EXPECT_EQ(records.value().size(), want_records) << "cut=" << cut;
    const size_t valid = want_records == 3   ? full.size()
                         : want_records == 2 ? f2
                         : want_records == 1 ? f1
                                             : 0;
    EXPECT_EQ(report.bytes_truncated, static_cast<int64_t>(cut - valid))
        << "cut=" << cut;
    EXPECT_EQ(report.torn, cut != valid) << "cut=" << cut;
    EXPECT_EQ(report.tail_status.ok(), cut == valid) << "cut=" << cut;
  }
}

TEST(WalTest, BitFlipAtEveryOffsetNeverYieldsWrongRecords) {
  io::Env* env = io::Env::Default();
  const std::string full = WriteAheadLog::EncodeFrame(1, "payload-one") +
                           WriteAheadLog::EncodeFrame(2, "payload-two");
  const std::string path = TempPath("wal_bitflip.wal");
  for (size_t i = 0; i < full.size(); ++i) {
    std::string mutated = full;
    mutated[i] ^= 0x20;
    ASSERT_TRUE(env->WriteFile(path, mutated).ok());
    WalScanReport report;
    Result<std::vector<WalRecord>> records =
        WriteAheadLog::Scan(env, path, &report);
    ASSERT_TRUE(records.ok()) << "flip=" << i;
    // Every recovered record must be one of the two originals: a flip can
    // cost records (truncation) but never fabricate or alter one.
    for (const WalRecord& rec : records.value()) {
      if (rec.seq == 1) {
        EXPECT_EQ(rec.payload, "payload-one") << "flip=" << i;
      } else {
        EXPECT_EQ(rec.seq, 2u) << "flip=" << i;
        EXPECT_EQ(rec.payload, "payload-two") << "flip=" << i;
      }
    }
    EXPECT_TRUE(report.torn) << "flip=" << i;
  }
}

TEST(WalTest, SequenceGapTruncatesAtTheGap) {
  io::Env* env = io::Env::Default();
  const std::string path = TempPath("wal_gap.wal");
  ASSERT_TRUE(env->WriteFile(path, WriteAheadLog::EncodeFrame(1, "a") +
                                       WriteAheadLog::EncodeFrame(2, "b") +
                                       WriteAheadLog::EncodeFrame(4, "d"))
                  .ok());
  WalScanReport report;
  Result<std::vector<WalRecord>> records =
      WriteAheadLog::Scan(env, path, &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.value().size(), 2u);
  EXPECT_TRUE(report.torn);
  EXPECT_FALSE(report.tail_status.ok());
}

// --- StateStore basics ---------------------------------------------------

TEST(StateStoreTest, ParseSyncMode) {
  EXPECT_TRUE(ParseSyncMode("always").ok());
  EXPECT_TRUE(ParseSyncMode("group").ok());
  EXPECT_TRUE(ParseSyncMode("none").ok());
  Result<SyncMode> bad = ParseSyncMode("sometimes");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kInvalidArgument);
}

TEST(StateStoreTest, AppendHistoryVersionAndReopen) {
  const std::string dir = FreshStateDir("store_basic");
  auto store = MustOpen(Opts(dir, SyncMode::kAlways));
  EXPECT_EQ(store->num_users(), 0);
  EXPECT_TRUE(store->History(7).empty());
  EXPECT_EQ(store->UserVersion(7), 0);

  Result<AppendAck> a1 = store->Append(7, {1, 2, 3});
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1.value().seq, 1u);
  EXPECT_TRUE(a1.value().durable);
  EXPECT_EQ(a1.value().version, 1);
  Result<AppendAck> a2 = store->Append(7, {4});
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2.value().version, 2);
  ASSERT_TRUE(store->Append(9, {5, 6}).ok());

  EXPECT_EQ(store->History(7), (std::vector<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(store->History(9), (std::vector<int64_t>{5, 6}));
  EXPECT_EQ(store->num_users(), 2);
  EXPECT_EQ(store->last_seq(), 3u);

  // A second process opening the same dir recovers the identical state.
  auto reopened = MustOpen(Opts(dir, SyncMode::kAlways));
  EXPECT_EQ(reopened->History(7), (std::vector<int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(reopened->History(9), (std::vector<int64_t>{5, 6}));
  EXPECT_EQ(reopened->UserVersion(7), 2);
  EXPECT_EQ(reopened->last_seq(), 3u);
  EXPECT_EQ(reopened->recovery().wal_records_replayed, 3);
  EXPECT_FALSE(reopened->recovery().wal_torn);
}

TEST(StateStoreTest, EmptyAppendIsRejected) {
  auto store = MustOpen(Opts(FreshStateDir("store_empty_append"),
                             SyncMode::kNone));
  Result<AppendAck> ack = store->Append(1, {});
  ASSERT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().code(), Status::Code::kInvalidArgument);
}

TEST(StateStoreTest, CompactThenReopenReplaysSnapshotPlusTail) {
  const std::string dir = FreshStateDir("store_compact");
  auto store = MustOpen(Opts(dir, SyncMode::kAlways));
  ASSERT_TRUE(store->Append(1, {10, 11}).ok());
  ASSERT_TRUE(store->Append(2, {20}).ok());
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_EQ(store->wal_records(), 0);
  EXPECT_TRUE(io::Env::Default()->FileExists(dir + "/state.snapshot"));
  // Post-compaction appends land in the (fresh) WAL tail.
  ASSERT_TRUE(store->Append(1, {12}).ok());

  auto reopened = MustOpen(Opts(dir, SyncMode::kAlways));
  EXPECT_TRUE(reopened->recovery().snapshot_loaded);
  EXPECT_EQ(reopened->recovery().snapshot_seq, 2u);
  EXPECT_EQ(reopened->recovery().wal_records_replayed, 1);
  EXPECT_EQ(reopened->History(1), (std::vector<int64_t>{10, 11, 12}));
  EXPECT_EQ(reopened->History(2), (std::vector<int64_t>{20}));
  EXPECT_EQ(reopened->UserVersion(1), 2);
  EXPECT_EQ(reopened->last_seq(), 3u);
}

TEST(StateStoreTest, AutoCompactionTriggersAtThreshold) {
  StateStoreOptions opts = Opts(FreshStateDir("store_autocompact"),
                                SyncMode::kNone);
  opts.snapshot_every_records = 3;
  auto store = MustOpen(opts);
  ASSERT_TRUE(store->Append(1, {1}).ok());
  ASSERT_TRUE(store->Append(1, {2}).ok());
  EXPECT_EQ(store->wal_records(), 2);
  ASSERT_TRUE(store->Append(1, {3}).ok());  // third record trips the snapshot
  EXPECT_EQ(store->wal_records(), 0);
  EXPECT_TRUE(io::Env::Default()->FileExists(opts.dir + "/state.snapshot"));
}

TEST(StateStoreTest, MaxHistoryPerUserTrimsOldest) {
  StateStoreOptions opts = Opts(FreshStateDir("store_trim"), SyncMode::kNone);
  opts.max_history_per_user = 4;
  auto store = MustOpen(opts);
  ASSERT_TRUE(store->Append(1, {1, 2, 3}).ok());
  ASSERT_TRUE(store->Append(1, {4, 5, 6}).ok());
  EXPECT_EQ(store->History(1), (std::vector<int64_t>{3, 4, 5, 6}));
  // The trim is part of the replayed state machine: recovery agrees.
  ASSERT_TRUE(store->Sync().ok());
  auto reopened = MustOpen(opts);
  EXPECT_EQ(reopened->History(1), (std::vector<int64_t>{3, 4, 5, 6}));
}

TEST(StateStoreTest, GroupCommitSyncsEveryNthAppend) {
  io::FaultInjectionEnv env;
  StateStoreOptions opts =
      Opts(FreshStateDir("store_group"), SyncMode::kGroup, &env);
  opts.group_commit_every = 3;
  auto store = MustOpen(opts);
  const int64_t baseline = env.syncs_seen();
  Result<AppendAck> a1 = store->Append(1, {1});
  Result<AppendAck> a2 = store->Append(1, {2});
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_FALSE(a1.value().durable);
  EXPECT_FALSE(a2.value().durable);
  EXPECT_EQ(env.syncs_seen(), baseline);  // no barrier yet
  Result<AppendAck> a3 = store->Append(1, {3});
  ASSERT_TRUE(a3.ok());
  EXPECT_TRUE(a3.value().durable);  // third append runs the group barrier
  EXPECT_EQ(env.syncs_seen(), baseline + 1);
  // Explicit barrier flushes a partial group.
  ASSERT_TRUE(store->Append(1, {4}).ok());
  ASSERT_TRUE(store->Sync().ok());
  EXPECT_EQ(env.syncs_seen(), baseline + 2);
  // And an empty group is a no-op.
  ASSERT_TRUE(store->Sync().ok());
  EXPECT_EQ(env.syncs_seen(), baseline + 2);
}

TEST(StateStoreTest, FailedSyncBarrierRefusesTheAck) {
  io::FaultInjectionEnv env;
  auto store = MustOpen(
      Opts(FreshStateDir("store_failsync"), SyncMode::kAlways, &env));
  ASSERT_TRUE(store->Append(1, {1}).ok());
  env.ArmFault(io::FaultInjectionEnv::Fault::kFailSync);
  Result<AppendAck> refused = store->Append(1, {2});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kIOError);
  // The event was not accepted: the in-memory state does not include it.
  EXPECT_EQ(store->History(1), (std::vector<int64_t>{1}));
  EXPECT_EQ(store->UserVersion(1), 1);
  // The store remains usable once the fault clears.
  Result<AppendAck> next = store->Append(1, {3});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(store->History(1), (std::vector<int64_t>{1, 3}));
  // A refused event is expunged by the next compaction (its WAL bytes are
  // covered by snapshot_seq), so recovery converges to the refused-free
  // state.
  ASSERT_TRUE(store->Compact().ok());
  auto reopened = MustOpen(
      Opts(TempPath("store_failsync"), SyncMode::kAlways, &env));
  EXPECT_EQ(reopened->History(1), (std::vector<int64_t>{1, 3}));
}

TEST(StateStoreTest, CorruptSnapshotFailsOpenTyped) {
  const std::string dir = FreshStateDir("store_badsnap");
  {
    auto store = MustOpen(Opts(dir, SyncMode::kAlways));
    ASSERT_TRUE(store->Append(1, {1, 2}).ok());
    ASSERT_TRUE(store->Compact().ok());
  }
  io::Env* env = io::Env::Default();
  Result<std::string> bytes = env->ReadFile(dir + "/state.snapshot");
  ASSERT_TRUE(bytes.ok());
  std::string mutated = bytes.value();
  mutated[mutated.size() / 2] ^= 0x01;
  ASSERT_TRUE(env->WriteFile(dir + "/state.snapshot", mutated).ok());
  Result<std::unique_ptr<StateStore>> reopened =
      StateStore::Open(Opts(dir, SyncMode::kAlways));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), Status::Code::kCorruption);
}

// --- Kill-at-any-byte property tests -------------------------------------

/// For every crash offset b inside the victim record's frame: recovery
/// yields exactly the acked set; the victim survives only when its frame
/// landed completely (b == frame size), in which case the log is clean.
TEST(StateStoreKillTest, KillAtAnyByteDuringWalAppendLosesOnlyTheVictim) {
  // Event payload: u64 user_id + u32 count + count * i64 items.
  const size_t frame_size = WriteAheadLog::kFrameHeader + 8 + 4 + 8;
  for (size_t b = 0; b <= frame_size; ++b) {
    io::FaultInjectionEnv env;
    const std::string dir =
        FreshStateDir("kill_append_" + std::to_string(b));
    StateStoreOptions opts = Opts(dir, SyncMode::kAlways, &env);
    {
      auto store = MustOpen(opts);
      ASSERT_TRUE(store->Append(1, {10, 11}).ok());
      ASSERT_TRUE(store->Append(2, {20}).ok());
      ASSERT_TRUE(store->Append(1, {12}).ok());
      // The acked set is now {seq 1..3}. Kill the process after exactly b
      // bytes of the victim's frame reach the file.
      env.set_torn_tail_bytes(static_cast<int64_t>(b));
      env.ArmFault(io::FaultInjectionEnv::Fault::kCrashDuringWrite);
      EXPECT_THROW((void)store->Append(5, {99}), io::InjectedCrash);
      // The store object dies with the process.
    }
    env.set_torn_tail_bytes(-1);
    env.Disarm();
    auto recovered = MustOpen(opts);
    // Zero acked loss, at every crash offset.
    EXPECT_EQ(recovered->History(1), (std::vector<int64_t>{10, 11, 12}))
        << "b=" << b;
    EXPECT_EQ(recovered->History(2), (std::vector<int64_t>{20})) << "b=" << b;
    const bool victim_survived = b == frame_size;
    EXPECT_EQ(recovered->History(5),
              victim_survived ? std::vector<int64_t>{99}
                              : std::vector<int64_t>{})
        << "b=" << b;
    EXPECT_EQ(recovered->last_seq(), victim_survived ? 4u : 3u) << "b=" << b;
    // Exact loss accounting: precisely the b torn bytes, typed.
    const RecoveryReport& report = recovered->recovery();
    if (b == 0 || victim_survived) {
      EXPECT_FALSE(report.wal_torn) << "b=" << b;
      EXPECT_TRUE(report.tail_status.ok()) << "b=" << b;
    } else {
      EXPECT_TRUE(report.wal_torn) << "b=" << b;
      EXPECT_EQ(report.wal_bytes_truncated, static_cast<int64_t>(b))
          << "b=" << b;
      EXPECT_EQ(report.tail_status.code(), Status::Code::kCorruption)
          << "b=" << b;
    }
    // Recovery repaired the log: a second recovery is clean and identical.
    auto again = MustOpen(opts);
    EXPECT_FALSE(again->recovery().wal_torn) << "b=" << b;
    EXPECT_EQ(again->History(1), recovered->History(1)) << "b=" << b;
    EXPECT_EQ(again->last_seq(), recovered->last_seq()) << "b=" << b;
  }
}

/// Crash the snapshot staging write at every byte offset: the WAL still
/// holds everything, so recovery must reproduce the full acked set with
/// zero loss, every time.
TEST(StateStoreKillTest, KillAtAnyByteDuringCompactionLosesNothing) {
  // Probe the snapshot file size once (staged bytes = envelope size).
  size_t snapshot_size = 0;
  {
    const std::string dir = FreshStateDir("kill_compact_probe");
    auto store = MustOpen(Opts(dir, SyncMode::kAlways));
    ASSERT_TRUE(store->Append(1, {10, 11}).ok());
    ASSERT_TRUE(store->Append(2, {20}).ok());
    ASSERT_TRUE(store->Compact().ok());
    Result<std::string> bytes =
        io::Env::Default()->ReadFile(dir + "/state.snapshot");
    ASSERT_TRUE(bytes.ok());
    snapshot_size = bytes.value().size();
    ASSERT_GT(snapshot_size, 0u);
  }
  for (size_t b = 0; b <= snapshot_size; ++b) {
    io::FaultInjectionEnv env;
    StateStoreOptions opts =
        Opts(FreshStateDir("kill_compact_" + std::to_string(b)),
             SyncMode::kAlways, &env);
    {
      auto store = MustOpen(opts);
      ASSERT_TRUE(store->Append(1, {10, 11}).ok());
      ASSERT_TRUE(store->Append(2, {20}).ok());
      env.set_torn_tail_bytes(static_cast<int64_t>(b));
      env.ArmFault(io::FaultInjectionEnv::Fault::kCrashDuringWrite);
      EXPECT_THROW((void)store->Compact(), io::InjectedCrash);
    }
    env.set_torn_tail_bytes(-1);
    env.Disarm();
    auto recovered = MustOpen(opts);
    EXPECT_EQ(recovered->History(1), (std::vector<int64_t>{10, 11}))
        << "b=" << b;
    EXPECT_EQ(recovered->History(2), (std::vector<int64_t>{20})) << "b=" << b;
    EXPECT_EQ(recovered->last_seq(), 2u) << "b=" << b;
    // The crash hit the staged .tmp; the published snapshot never existed.
    EXPECT_FALSE(recovered->recovery().snapshot_loaded) << "b=" << b;
  }
}

/// Crash between the published snapshot and the WAL truncation: recovery
/// must not double-apply the records the snapshot already covers.
TEST(StateStoreKillTest, KillBetweenSnapshotAndWalResetDoesNotDoubleApply) {
  io::FaultInjectionEnv env;
  StateStoreOptions opts =
      Opts(FreshStateDir("kill_reset"), SyncMode::kAlways, &env);
  {
    auto store = MustOpen(opts);
    ASSERT_TRUE(store->Append(1, {10, 11}).ok());
    ASSERT_TRUE(store->Append(2, {20}).ok());
    // Compaction's write-kind ops: 1 = snapshot .tmp stage, 2 = WAL reset.
    env.ArmFault(io::FaultInjectionEnv::Fault::kCrashDuringWrite, 2);
    EXPECT_THROW((void)store->Compact(), io::InjectedCrash);
  }
  env.Disarm();
  auto recovered = MustOpen(opts);
  EXPECT_TRUE(recovered->recovery().snapshot_loaded);
  EXPECT_EQ(recovered->recovery().wal_records_replayed, 0);
  EXPECT_EQ(recovered->History(1), (std::vector<int64_t>{10, 11}));
  EXPECT_EQ(recovered->History(2), (std::vector<int64_t>{20}));
  EXPECT_EQ(recovered->last_seq(), 2u);
}

TEST(StateStoreKillTest, FailedSnapshotRenameKeepsServingAndRecovers) {
  io::FaultInjectionEnv env;
  StateStoreOptions opts =
      Opts(FreshStateDir("fail_rename"), SyncMode::kAlways, &env);
  auto store = MustOpen(opts);
  ASSERT_TRUE(store->Append(1, {10}).ok());
  env.ArmFault(io::FaultInjectionEnv::Fault::kFailRename);
  EXPECT_FALSE(store->Compact().ok());
  // The store keeps serving and the WAL still covers the state.
  ASSERT_TRUE(store->Append(1, {11}).ok());
  EXPECT_EQ(store->History(1), (std::vector<int64_t>{10, 11}));
  auto recovered = MustOpen(opts);
  EXPECT_EQ(recovered->History(1), (std::vector<int64_t>{10, 11}));
}

/// A lying disk: the append "succeeds" (and syncs) but only a prefix hit
/// the platter. Recovery must detect the torn tail, lose exactly the lied-
/// about event, and report the loss typed.
TEST(StateStoreKillTest, SilentTornTailIsDetectedAndAccounted) {
  io::FaultInjectionEnv env;
  StateStoreOptions opts =
      Opts(FreshStateDir("silent_torn"), SyncMode::kAlways, &env);
  uint64_t acked_seq = 0;
  {
    auto store = MustOpen(opts);
    ASSERT_TRUE(store->Append(1, {10, 11}).ok());
    acked_seq = store->last_seq();
    env.set_torn_tail_bytes(7);
    env.ArmFault(io::FaultInjectionEnv::Fault::kTornTailWrite);
    Result<AppendAck> lied = store->Append(2, {20});
    ASSERT_TRUE(lied.ok());  // the env lied; the store cannot know
  }
  env.set_torn_tail_bytes(-1);
  auto recovered = MustOpen(opts);
  EXPECT_EQ(recovered->History(1), (std::vector<int64_t>{10, 11}));
  EXPECT_TRUE(recovered->History(2).empty());
  EXPECT_EQ(recovered->last_seq(), acked_seq);
  EXPECT_TRUE(recovered->recovery().wal_torn);
  EXPECT_EQ(recovered->recovery().wal_bytes_truncated, 7);
  EXPECT_EQ(recovered->recovery().tail_status.code(),
            Status::Code::kCorruption);
}

// --- Per-user digests (anti-entropy) -------------------------------------

/// The digest is an incremental fold over every item ever appended: the
/// store's value must equal folding ExtendItemDigest over the appends by
/// hand, and items_total must count appends monotonically (not history
/// length).
TEST(DigestTest, DigestIsTheIncrementalFoldOverAppendedItems) {
  auto store = MustOpen(Opts(FreshStateDir("digest_fold"), SyncMode::kNone));
  EXPECT_EQ(store->Digest(1).items_total, 0u);
  EXPECT_EQ(store->Digest(1).crc, 0u);
  const std::vector<int64_t> a = {10, 11};
  const std::vector<int64_t> b = {12};
  ASSERT_TRUE(store->Append(1, a).ok());
  ASSERT_TRUE(store->Append(1, b).ok());
  uint32_t crc = 0;
  crc = ExtendItemDigest(crc, a.data(), a.size());
  crc = ExtendItemDigest(crc, b.data(), b.size());
  const UserDigest d = store->Digest(1);
  EXPECT_EQ(d.user_id, 1u);
  EXPECT_EQ(d.items_total, 3u);
  EXPECT_EQ(d.crc, crc);
  // One-shot and incremental folds agree (the repair path relies on this
  // to pre-verify a suffix before appending it).
  const std::vector<int64_t> all = {10, 11, 12};
  EXPECT_EQ(ExtendItemDigest(0, all.data(), all.size()), crc);
}

/// Two replicas that saw the same appends report the same digest even if
/// their WAL seqs differ — the digest is replica-comparable.
TEST(DigestTest, DigestIgnoresReplicaLocalSequencing) {
  auto a = MustOpen(Opts(FreshStateDir("digest_seq_a"), SyncMode::kNone));
  auto b = MustOpen(Opts(FreshStateDir("digest_seq_b"), SyncMode::kNone));
  // Replica b has extra traffic for other users, skewing its seqs.
  ASSERT_TRUE(b->Append(9, {1}).ok());
  ASSERT_TRUE(b->Append(9, {2}).ok());
  ASSERT_TRUE(a->Append(1, {10, 11}).ok());
  ASSERT_TRUE(b->Append(1, {10, 11}).ok());
  EXPECT_NE(a->last_seq(), b->last_seq());
  EXPECT_EQ(a->Digest(1), b->Digest(1));
}

TEST(DigestTest, TailItemsReturnsTheSuffix) {
  auto store = MustOpen(Opts(FreshStateDir("digest_tail"), SyncMode::kNone));
  ASSERT_TRUE(store->Append(1, {10, 11, 12}).ok());
  EXPECT_EQ(store->TailItems(1, 0), (std::vector<int64_t>{}));
  EXPECT_EQ(store->TailItems(1, 2), (std::vector<int64_t>{11, 12}));
  EXPECT_EQ(store->TailItems(1, 3), (std::vector<int64_t>{10, 11, 12}));
  // Asking for more than is retained returns what remains, not padding —
  // the repair path detects a too-deep trim from the short length.
  EXPECT_EQ(store->TailItems(1, 99), (std::vector<int64_t>{10, 11, 12}));
  EXPECT_EQ(store->TailItems(42, 5), (std::vector<int64_t>{}));
}

TEST(DigestTest, EnumerateDigestsIsOrderedAndFilterable) {
  auto store = MustOpen(Opts(FreshStateDir("digest_enum"), SyncMode::kNone));
  ASSERT_TRUE(store->Append(3, {30}).ok());
  ASSERT_TRUE(store->Append(1, {10}).ok());
  ASSERT_TRUE(store->Append(2, {20}).ok());
  const std::vector<UserDigest> all = store->EnumerateDigests();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].user_id, 1u);
  EXPECT_EQ(all[1].user_id, 2u);
  EXPECT_EQ(all[2].user_id, 3u);
  const std::vector<UserDigest> odd = store->EnumerateDigests(
      [](uint64_t user) { return user % 2 == 1; });
  ASSERT_EQ(odd.size(), 2u);
  EXPECT_EQ(odd[0].user_id, 1u);
  EXPECT_EQ(odd[1].user_id, 3u);
}

/// max_history trimming keeps the digest: the digest covers every item
/// ever appended, so a trimmed store and an untrimmed store that saw the
/// same appends agree — and the digest survives reopen (it rides in the
/// snapshot because it cannot be recomputed from a trimmed history).
TEST(DigestTest, DigestSurvivesTrimCompactionAndReopen) {
  StateStoreOptions trimmed_opts =
      Opts(FreshStateDir("digest_trim"), SyncMode::kAlways);
  trimmed_opts.max_history_per_user = 2;
  auto reference =
      MustOpen(Opts(FreshStateDir("digest_trim_ref"), SyncMode::kNone));
  UserDigest expected;
  {
    auto trimmed = MustOpen(trimmed_opts);
    for (int64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(trimmed->Append(1, {100 + i}).ok());
      ASSERT_TRUE(reference->Append(1, {100 + i}).ok());
    }
    EXPECT_EQ(trimmed->History(1), (std::vector<int64_t>{103, 104}));
    expected = reference->Digest(1);
    EXPECT_EQ(trimmed->Digest(1), expected);
    // Compact so recovery comes from the snapshot alone: the digest can
    // only survive if it was persisted.
    ASSERT_TRUE(trimmed->Compact().ok());
  }
  auto reopened = MustOpen(trimmed_opts);
  EXPECT_EQ(reopened->History(1), (std::vector<int64_t>{103, 104}));
  EXPECT_EQ(reopened->Digest(1), expected);
}

/// digest(recovered) == digest(never-crashed) at every crash offset inside
/// the victim frame: WAL recovery replays the digest fold exactly.
TEST(DigestTest, DigestIdenticalAfterKillAtAnyByteWalRecovery) {
  // Reference store that never crashes, holding only the acked set.
  auto reference =
      MustOpen(Opts(FreshStateDir("digest_kill_ref"), SyncMode::kNone));
  ASSERT_TRUE(reference->Append(1, {10, 11}).ok());
  ASSERT_TRUE(reference->Append(2, {20}).ok());
  ASSERT_TRUE(reference->Append(1, {12}).ok());
  const size_t frame_size = WriteAheadLog::kFrameHeader + 8 + 4 + 8;
  for (size_t b = 0; b < frame_size; ++b) {
    io::FaultInjectionEnv env;
    StateStoreOptions opts =
        Opts(FreshStateDir("digest_kill_" + std::to_string(b)),
             SyncMode::kAlways, &env);
    {
      auto store = MustOpen(opts);
      ASSERT_TRUE(store->Append(1, {10, 11}).ok());
      ASSERT_TRUE(store->Append(2, {20}).ok());
      ASSERT_TRUE(store->Append(1, {12}).ok());
      env.set_torn_tail_bytes(static_cast<int64_t>(b));
      env.ArmFault(io::FaultInjectionEnv::Fault::kCrashDuringWrite);
      EXPECT_THROW((void)store->Append(5, {99}), io::InjectedCrash);
    }
    env.set_torn_tail_bytes(-1);
    env.Disarm();
    auto recovered = MustOpen(opts);
    EXPECT_EQ(recovered->Digest(1), reference->Digest(1)) << "b=" << b;
    EXPECT_EQ(recovered->Digest(2), reference->Digest(2)) << "b=" << b;
    // The victim never acked; its digest must be absent, not partial.
    EXPECT_EQ(recovered->Digest(5).items_total, 0u) << "b=" << b;
    EXPECT_EQ(recovered->Digest(5).crc, 0u) << "b=" << b;
  }
}

/// digest(recovered) == digest(never-crashed) when the crash lands inside
/// the snapshot staging write: recovery falls back to the WAL and replays
/// the same fold.
TEST(DigestTest, DigestIdenticalAfterKillDuringCompaction) {
  auto reference =
      MustOpen(Opts(FreshStateDir("digest_compact_ref"), SyncMode::kNone));
  ASSERT_TRUE(reference->Append(1, {10, 11}).ok());
  ASSERT_TRUE(reference->Append(2, {20}).ok());
  for (size_t b = 0; b < 24; ++b) {
    io::FaultInjectionEnv env;
    StateStoreOptions opts =
        Opts(FreshStateDir("digest_compact_" + std::to_string(b)),
             SyncMode::kAlways, &env);
    {
      auto store = MustOpen(opts);
      ASSERT_TRUE(store->Append(1, {10, 11}).ok());
      ASSERT_TRUE(store->Append(2, {20}).ok());
      env.set_torn_tail_bytes(static_cast<int64_t>(b));
      env.ArmFault(io::FaultInjectionEnv::Fault::kCrashDuringWrite);
      EXPECT_THROW((void)store->Compact(), io::InjectedCrash);
    }
    env.set_torn_tail_bytes(-1);
    env.Disarm();
    auto recovered = MustOpen(opts);
    EXPECT_EQ(recovered->Digest(1), reference->Digest(1)) << "b=" << b;
    EXPECT_EQ(recovered->Digest(2), reference->Digest(2)) << "b=" << b;
  }
}

/// A pre-digest (v1) snapshot must fail open with a typed error rather
/// than decode with silently-zero digests that would defeat repair.
TEST(DigestTest, StaleSnapshotVersionFailsOpenTyped) {
  const std::string dir = FreshStateDir("digest_stale_snap");
  {
    auto store = MustOpen(Opts(dir, SyncMode::kAlways));
    ASSERT_TRUE(store->Append(1, {1, 2}).ok());
    ASSERT_TRUE(store->Compact().ok());
  }
  io::Env* env = io::Env::Default();
  Result<std::string> bytes = env->ReadFile(dir + "/state.snapshot");
  ASSERT_TRUE(bytes.ok());
  std::string mutated = bytes.value();
  ASSERT_EQ(mutated.substr(0, 4), "SST2");
  mutated[3] = '1';  // regress the magic to the digest-less v1 layout
  ASSERT_TRUE(env->WriteFile(dir + "/state.snapshot", mutated).ok());
  Result<std::unique_ptr<StateStore>> reopened =
      StateStore::Open(Opts(dir, SyncMode::kAlways));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), Status::Code::kCorruption);
}

// --- ModelServer session serving ----------------------------------------

class SessionModel : public models::SequentialRecommender {
 public:
  explicit SessionModel(const models::ModelConfig& config)
      : SequentialRecommender(config) {
    shift_ = RegisterParameter(
        "shift", autograd::Variable(Tensor::Scalar(0.0f),
                                    /*requires_grad=*/true));
  }
  autograd::Variable Loss(const data::Batch& batch) override {
    (void)batch;
    return shift_;
  }
  Tensor ScoreAll(const data::Batch& batch) override {
    ++calls_;
    const int64_t cols = config_.num_items + 1;
    Tensor scores = Tensor::Zeros({batch.size, cols});
    float* out = scores.data();
    for (int64_t b = 0; b < batch.size; ++b) {
      for (int64_t j = 0; j < cols; ++j) {
        out[b * cols + j] = static_cast<float>(j);
      }
    }
    return scores;
  }
  std::string name() const override { return "Session"; }
  int64_t calls() const { return calls_; }

 private:
  autograd::Variable shift_;
  int64_t calls_ = 0;
};

models::ModelConfig TinyConfig() {
  models::ModelConfig c;
  c.num_items = 10;
  c.num_users = 4;
  c.max_len = 8;
  c.hidden_dim = 4;
  c.num_layers = 1;
  return c;
}

serving::ServeRequest SessionRequest() {
  serving::ServeRequest request;
  request.options.top_k = 3;
  request.options.exclude_seen = false;
  return request;
}

int64_t CounterValue(const obs::MetricsRegistry& registry,
                     const std::string& name) {
  for (const auto& c : registry.Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST(SessionServingTest, ServeSessionReadsLiveStateAndCaches) {
  obs::MetricsRegistry metrics;
  serving::ModelServerOptions options;
  options.metrics = &metrics;
  serving::ModelServer server(options);
  auto model = std::make_unique<SessionModel>(TinyConfig());
  SessionModel* model_ptr = model.get();
  ASSERT_TRUE(server.Start(std::move(model)).ok());

  // Stateless server: session APIs refuse, typed.
  EXPECT_EQ(server.ServeSession(1, SessionRequest()).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(server.AppendEvent(1, {1}).status().code(),
            Status::Code::kInvalidArgument);

  StateStoreOptions sopts =
      Opts(FreshStateDir("session_store"), SyncMode::kAlways);
  sopts.metrics = &metrics;
  server.AttachStateStore(MustOpen(sopts));
  ASSERT_NE(server.state_store(), nullptr);

  // Unknown user: typed NotFound, not an empty ranking.
  EXPECT_EQ(server.ServeSession(1, SessionRequest()).status().code(),
            Status::Code::kNotFound);

  ASSERT_TRUE(server.AppendEvent(1, {3, 4}).ok());
  Result<serving::ServeResponse> first =
      server.ServeSession(1, SessionRequest());
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().items.size(), 3u);
  const int64_t calls_after_first = model_ptr->calls();
  EXPECT_EQ(CounterValue(metrics, "state.session_misses"), 1);

  // Same user, unchanged state: served from cache, no forward pass.
  Result<serving::ServeResponse> second =
      server.ServeSession(1, SessionRequest());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(model_ptr->calls(), calls_after_first);
  EXPECT_EQ(CounterValue(metrics, "state.session_hits"), 1);

  // An append invalidates the cached entry; the next session recomputes.
  ASSERT_TRUE(server.AppendEvent(1, {5}).ok());
  EXPECT_EQ(CounterValue(metrics, "state.session_invalidations"), 1);
  Result<serving::ServeResponse> third =
      server.ServeSession(1, SessionRequest());
  ASSERT_TRUE(third.ok());
  EXPECT_GT(model_ptr->calls(), calls_after_first);
  EXPECT_EQ(CounterValue(metrics, "state.session_misses"), 2);

  // Different ranking options bypass the cached entry too.
  serving::ServeRequest top5 = SessionRequest();
  top5.options.top_k = 5;
  Result<serving::ServeResponse> fourth = server.ServeSession(1, top5);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth.value().items.size(), 5u);
  EXPECT_EQ(CounterValue(metrics, "state.session_misses"), 3);
}

TEST(SessionServingTest, ReloadStateFromDiskRecoversDurableState) {
  serving::ModelServerOptions options;
  serving::ModelServer server(options);
  ASSERT_TRUE(server.Start(std::make_unique<SessionModel>(TinyConfig())).ok());
  StateStoreOptions sopts =
      Opts(FreshStateDir("session_reload"), SyncMode::kAlways);
  server.AttachStateStore(MustOpen(sopts));
  ASSERT_TRUE(server.AppendEvent(1, {3, 4}).ok());
  ASSERT_TRUE(server.ServeSession(1, SessionRequest()).ok());
  ASSERT_TRUE(server.ReloadStateFromDisk().ok());
  EXPECT_EQ(server.state_store()->History(1), (std::vector<int64_t>{3, 4}));
  ASSERT_TRUE(server.ServeSession(1, SessionRequest()).ok());
}

// --- Cluster state -------------------------------------------------------

TEST(ClusterStateTest, ReplicatedAppendsSurviveShardKillAndRecoverOnRestore) {
  cluster::ClusterOptions options;
  options.num_shards = 3;
  options.replication = 2;
  options.state_dir = FreshStateDir("cluster_state");
  options.state_sync = SyncMode::kAlways;
  // Clear per-shard files from previous runs.
  for (int64_t s = 0; s < options.num_shards; ++s) {
    FreshStateDir("cluster_state/shard_" + std::to_string(s));
  }
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  cluster::ClusterServer cluster(
      options, [] { return std::make_unique<SessionModel>(TinyConfig()); });
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t user = 42;
  const std::vector<int64_t> replicas =
      cluster.ring().Replicas(cluster.ring().SegmentOf(user));
  ASSERT_EQ(replicas.size(), 2u);
  const int64_t primary = replicas[0];
  const int64_t secondary = replicas[1];

  // A replicated write lands on both replicas and says so in the ack.
  Result<AppendAck> a1 = cluster.AppendEvent(user, {3, 4});
  ASSERT_TRUE(a1.ok());
  EXPECT_TRUE(a1.value().durable);
  EXPECT_EQ(a1.value().replica_acks, 2);
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(cluster.shard_server(secondary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4}));

  // Kill the primary: appends keep acking via the survivor; session serving
  // fails over.
  cluster.KillShard(primary);
  Result<AppendAck> a2 = cluster.AppendEvent(user, {5});
  ASSERT_TRUE(a2.ok());
  // The ack is honest about the blast radius: one replica short of R.
  EXPECT_EQ(a2.value().replica_acks, 1);
  EXPECT_EQ(CounterValue(metrics, "cluster.state.underreplicated_appends"),
            1);
  Result<serving::ServeResponse> served =
      cluster.ServeSession(user, SessionRequest());
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(cluster.shard_server(secondary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4, 5}));

  // Restore: the revived shard recovers exactly its own durable prefix.
  // Anti-entropy (hinted handoff, repair_on_restore) is opt-in and off
  // here, so the append it missed while dead lives only on the survivor —
  // see the ClusterAntiEntropyTest suite for the repair paths.
  ASSERT_TRUE(cluster.RestoreShard(primary).ok());
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4}));
  EXPECT_EQ(CounterValue(metrics, "cluster.state_appends"), 2);

  // A stateless cluster refuses the session APIs, typed.
  cluster::ClusterOptions stateless = options;
  stateless.state_dir.clear();
  stateless.metrics = nullptr;
  cluster::ClusterServer plain(
      stateless, [] { return std::make_unique<SessionModel>(TinyConfig()); });
  ASSERT_TRUE(plain.Start().ok());
  EXPECT_EQ(plain.AppendEvent(user, {1}).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(plain.ServeSession(user, SessionRequest()).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(ClusterStateTest, StateSurvivesRollingReload) {
  const std::string ckpt = TempPath("cluster_state_reload.ckpt");
  {
    SessionModel model(TinyConfig());
    ASSERT_TRUE(io::SaveCheckpoint(model, ckpt).ok());
  }
  cluster::ClusterOptions options;
  options.num_shards = 2;
  options.replication = 2;
  options.state_dir = FreshStateDir("cluster_state_rr");
  options.state_sync = SyncMode::kGroup;
  for (int64_t s = 0; s < options.num_shards; ++s) {
    FreshStateDir("cluster_state_rr/shard_" + std::to_string(s));
  }
  cluster::ClusterServer cluster(
      options, [] { return std::make_unique<SessionModel>(TinyConfig()); });
  ASSERT_TRUE(cluster.Start().ok());
  const uint64_t user = 7;
  ASSERT_TRUE(cluster.AppendEvent(user, {2, 3}).ok());
  ASSERT_TRUE(cluster.RollingReload(ckpt).ok());
  // Model generations swapped; the per-shard stores were untouched.
  for (int64_t s = 0; s < options.num_shards; ++s) {
    EXPECT_EQ(cluster.shard_server(s)->state_store()->History(user),
              (std::vector<int64_t>{2, 3}));
  }
  ASSERT_TRUE(cluster.ServeSession(user, SessionRequest()).ok());
}

// --- Cluster anti-entropy ------------------------------------------------

/// Stateful 3-shard R=2 cluster with a fresh state tree; anti-entropy
/// flags stay at their defaults (off) so each test arms exactly what it
/// exercises.
cluster::ClusterOptions AntiEntropyClusterOptions(const std::string& name) {
  cluster::ClusterOptions options;
  options.num_shards = 3;
  options.replication = 2;
  options.state_dir = FreshStateDir(name);
  options.state_sync = SyncMode::kAlways;
  for (int64_t s = 0; s < options.num_shards; ++s) {
    FreshStateDir(name + "/shard_" + std::to_string(s));
  }
  return options;
}

cluster::ClusterServer::ModelFactory SessionFactory() {
  return [] { return std::make_unique<SessionModel>(TinyConfig()); };
}

TEST(ClusterAntiEntropyTest, HintedHandoffReplaysMissedAppendsOnRestore) {
  cluster::ClusterOptions options = AntiEntropyClusterOptions("ae_handoff");
  options.hinted_handoff = true;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  cluster::ClusterServer cluster(options, SessionFactory());
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t user = 42;
  const std::vector<int64_t> replicas =
      cluster.ring().Replicas(cluster.ring().SegmentOf(user));
  const int64_t primary = replicas[0];
  const int64_t secondary = replicas[1];
  ASSERT_TRUE(cluster.AppendEvent(user, {3, 4}).ok());

  cluster.KillShard(primary);
  ASSERT_TRUE(cluster.AppendEvent(user, {5}).ok());
  ASSERT_TRUE(cluster.AppendEvent(user, {6}).ok());
  EXPECT_EQ(cluster.hints_pending(), 2);
  const cluster::ClusterStats mid = cluster.stats();
  EXPECT_EQ(mid.underreplicated_appends, 2);
  EXPECT_EQ(mid.hints_queued, 2);
  EXPECT_EQ(mid.hints_dropped, 0);

  // Restore replays the backlog in origin order before the shard takes
  // traffic: the revived replica holds the full acked history, exactly.
  ASSERT_TRUE(cluster.RestoreShard(primary).ok());
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4, 5, 6}));
  EXPECT_EQ(cluster.hints_pending(), 0);
  const cluster::ClusterStats after = cluster.stats();
  EXPECT_EQ(after.hints_replayed, 2);
  EXPECT_EQ(after.hints_dropped, 0);
  EXPECT_EQ(after.hints_pending, 0);
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->Digest(user),
            cluster.shard_server(secondary)->state_store()->Digest(user));
  EXPECT_EQ(CounterValue(metrics, "cluster.repair.hints_replayed"), 2);
}

TEST(ClusterAntiEntropyTest, RepairOnRestoreBackfillsWithoutHints) {
  cluster::ClusterOptions options = AntiEntropyClusterOptions("ae_sweep");
  options.repair_on_restore = true;  // no hinted handoff: sweep-only heal
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  cluster::ClusterServer cluster(options, SessionFactory());
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t user = 42;
  const std::vector<int64_t> replicas =
      cluster.ring().Replicas(cluster.ring().SegmentOf(user));
  const int64_t primary = replicas[0];
  const int64_t secondary = replicas[1];
  ASSERT_TRUE(cluster.AppendEvent(user, {3, 4}).ok());
  cluster.KillShard(primary);
  ASSERT_TRUE(cluster.AppendEvent(user, {5}).ok());
  ASSERT_TRUE(cluster.AppendEvent(user, {6}).ok());
  EXPECT_EQ(cluster.hints_pending(), 0);  // handoff off: nothing queued

  // The post-restore sweep digest-diffs the revived shard against its
  // peers and back-fills the missing suffix through the durable path.
  ASSERT_TRUE(cluster.RestoreShard(primary).ok());
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4, 5, 6}));
  const cluster::ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.repair_users_repaired, 1);
  EXPECT_EQ(stats.repair_items_transferred, 2);
  EXPECT_EQ(stats.repair_conflicts, 0);
  // The serving layer exposes the same digest the repair compared.
  Result<UserDigest> dp =
      cluster.shard_server(primary)->UserStateDigest(user);
  Result<UserDigest> ds =
      cluster.shard_server(secondary)->UserStateDigest(user);
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(dp.value(), ds.value());
  EXPECT_EQ(CounterValue(metrics, "cluster.repair.items_transferred"), 2);
}

TEST(ClusterAntiEntropyTest, DropNewestOverflowKeepsPrefixAndSweepHeals) {
  cluster::ClusterOptions options = AntiEntropyClusterOptions("ae_dropnew");
  options.hinted_handoff = true;
  options.handoff.max_hints_per_shard = 1;
  options.handoff.overflow = cluster::HintOverflowPolicy::kDropNewest;
  options.repair_on_restore = true;
  cluster::ClusterServer cluster(options, SessionFactory());
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t user = 42;
  const int64_t primary =
      cluster.ring().Replicas(cluster.ring().SegmentOf(user))[0];
  ASSERT_TRUE(cluster.AppendEvent(user, {3, 4}).ok());
  cluster.KillShard(primary);
  ASSERT_TRUE(cluster.AppendEvent(user, {5}).ok());
  ASSERT_TRUE(cluster.AppendEvent(user, {6}).ok());
  ASSERT_TRUE(cluster.AppendEvent(user, {7}).ok());
  // Exact overflow accounting: one admitted, two refused.
  EXPECT_EQ(cluster.hints_pending(), 1);
  EXPECT_EQ(cluster.stats().hints_dropped, 2);

  // kDropNewest keeps the OLDEST hints, so the replayed backlog is a
  // prefix of the missed stream — exactly the shape the digest sweep can
  // finish healing (suffix transfer), with zero conflicts.
  ASSERT_TRUE(cluster.RestoreShard(primary).ok());
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4, 5, 6, 7}));
  const cluster::ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.hints_replayed, 1);
  EXPECT_EQ(stats.repair_items_transferred, 2);
  EXPECT_EQ(stats.repair_conflicts, 0);
}

TEST(ClusterAntiEntropyTest, DropOldestOverflowHoleIsAConflictNotAGuess) {
  cluster::ClusterOptions options = AntiEntropyClusterOptions("ae_dropold");
  options.hinted_handoff = true;
  options.handoff.max_hints_per_shard = 1;
  options.handoff.overflow = cluster::HintOverflowPolicy::kDropOldest;
  options.repair_on_restore = true;
  cluster::ClusterServer cluster(options, SessionFactory());
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t user = 42;
  const std::vector<int64_t> replicas =
      cluster.ring().Replicas(cluster.ring().SegmentOf(user));
  const int64_t primary = replicas[0];
  const int64_t secondary = replicas[1];
  ASSERT_TRUE(cluster.AppendEvent(user, {3, 4}).ok());
  cluster.KillShard(primary);
  ASSERT_TRUE(cluster.AppendEvent(user, {5}).ok());
  ASSERT_TRUE(cluster.AppendEvent(user, {6}).ok());
  ASSERT_TRUE(cluster.AppendEvent(user, {7}).ok());
  EXPECT_EQ(cluster.hints_pending(), 1);
  EXPECT_EQ(cluster.stats().hints_dropped, 2);

  // kDropOldest keeps only the NEWEST hint, so replay leaves a hole in
  // the middle of the stream. The sweep must refuse to paper over it:
  // the suffix no longer extends the revived replica's digest, so this
  // is a counted conflict and both histories are left untouched — repair
  // never fabricates a merge.
  ASSERT_TRUE(cluster.RestoreShard(primary).ok());
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4, 7}));
  EXPECT_EQ(cluster.shard_server(secondary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4, 5, 6, 7}));
  const cluster::ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.hints_replayed, 1);
  EXPECT_EQ(stats.repair_conflicts, 1);
  EXPECT_EQ(stats.repair_items_transferred, 0);
}

TEST(ClusterAntiEntropyTest, RestoreStaysDeadWhenStateRecoveryFails) {
  cluster::ClusterOptions options = AntiEntropyClusterOptions("ae_badsnap");
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  cluster::ClusterServer cluster(options, SessionFactory());
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t user = 42;
  const int64_t primary =
      cluster.ring().Replicas(cluster.ring().SegmentOf(user))[0];
  ASSERT_TRUE(cluster.AppendEvent(user, {3, 4}).ok());
  cluster.KillShard(primary);

  // Plant a corrupt snapshot in the dead shard's state dir: the reload
  // that RestoreShard runs must fail typed, and the shard must STAY DEAD
  // instead of rejoining with empty state and serving wrong answers.
  const std::string snapshot = options.state_dir + "/shard_" +
                               std::to_string(primary) + "/state.snapshot";
  ASSERT_TRUE(io::Env::Default()->WriteFile(snapshot, "not-a-snapshot").ok());
  const Status refused = cluster.RestoreShard(primary);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), Status::Code::kUnavailable);
  EXPECT_EQ(cluster.shard_liveness(primary), cluster::ShardLiveness::kDown);
  EXPECT_EQ(cluster.stats().restore_failures, 1);
  EXPECT_EQ(CounterValue(metrics, "cluster.state.restore_failures"), 1);
  // Traffic keeps flowing through the survivor meanwhile.
  ASSERT_TRUE(cluster.AppendEvent(user, {5}).ok());
  ASSERT_TRUE(cluster.ServeSession(user, SessionRequest()).ok());

  // Clearing the corruption lets a later restore succeed normally.
  ASSERT_TRUE(io::Env::Default()->RemoveFile(snapshot).ok());
  ASSERT_TRUE(cluster.RestoreShard(primary).ok());
  EXPECT_NE(cluster.shard_liveness(primary), cluster::ShardLiveness::kDown);
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4}));
}

TEST(ClusterAntiEntropyTest, ReadRepairCountsAndHealsServeTimeDivergence) {
  cluster::ClusterOptions options = AntiEntropyClusterOptions("ae_readrep");
  options.read_repair = true;
  options.read_repair_heal = true;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  cluster::ClusterServer cluster(options, SessionFactory());
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t user = 42;
  const std::vector<int64_t> replicas =
      cluster.ring().Replicas(cluster.ring().SegmentOf(user));
  const int64_t primary = replicas[0];
  const int64_t secondary = replicas[1];
  ASSERT_TRUE(cluster.AppendEvent(user, {3, 4}).ok());
  // Manufacture divergence: the primary misses one append while dead and
  // comes back without handoff or a restore sweep (both off here).
  cluster.KillShard(primary);
  ASSERT_TRUE(cluster.AppendEvent(user, {5}).ok());
  ASSERT_TRUE(cluster.RestoreShard(primary).ok());
  ASSERT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4}));

  // Serving the user observes the divergence and heals it inline.
  ASSERT_TRUE(cluster.ServeSession(user, SessionRequest()).ok());
  EXPECT_EQ(cluster.stats().read_divergence, 1);
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4, 5}));
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->Digest(user),
            cluster.shard_server(secondary)->state_store()->Digest(user));
  // Converged: further serves see no divergence.
  ASSERT_TRUE(cluster.ServeSession(user, SessionRequest()).ok());
  EXPECT_EQ(cluster.stats().read_divergence, 1);
  EXPECT_EQ(CounterValue(metrics, "cluster.repair.read_divergence"), 1);
}

TEST(ClusterAntiEntropyTest, RepairSegmentIsIdempotentAndScoped) {
  cluster::ClusterOptions options = AntiEntropyClusterOptions("ae_segment");
  cluster::ClusterServer cluster(options, SessionFactory());
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t user = 42;
  const int64_t segment = cluster.ring().SegmentOf(user);
  const int64_t primary = cluster.ring().Replicas(segment)[0];
  ASSERT_TRUE(cluster.AppendEvent(user, {3, 4}).ok());
  cluster.KillShard(primary);
  ASSERT_TRUE(cluster.AppendEvent(user, {5}).ok());
  ASSERT_TRUE(cluster.RestoreShard(primary).ok());

  // An explicit segment sweep heals the lagging replica; running it again
  // finds nothing (idempotent), and a foreign segment transfers nothing.
  Result<cluster::RepairStats> first = cluster.RepairSegment(segment);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().users_repaired, 1);
  EXPECT_EQ(first.value().items_transferred, 1);
  EXPECT_EQ(cluster.shard_server(primary)->state_store()->History(user),
            (std::vector<int64_t>{3, 4, 5}));
  Result<cluster::RepairStats> second = cluster.RepairSegment(segment);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().users_repaired, 0);
  EXPECT_EQ(second.value().items_transferred, 0);
  Result<cluster::RepairStats> foreign = cluster.RepairSegment(
      (segment + 1) % cluster.ring().num_segments());
  ASSERT_TRUE(foreign.ok());
  EXPECT_EQ(foreign.value().items_transferred, 0);
  // Out-of-range and stateless clusters are refused, typed.
  EXPECT_EQ(cluster.RepairSegment(-1).status().code(),
            Status::Code::kInvalidArgument);
  cluster::ClusterOptions stateless = options;
  stateless.state_dir.clear();
  cluster::ClusterServer plain(stateless, SessionFactory());
  ASSERT_TRUE(plain.Start().ok());
  EXPECT_EQ(plain.RepairSegment(segment).status().code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace state
}  // namespace slime
