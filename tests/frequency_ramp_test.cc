#include "core/frequency_ramp.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

namespace slime {
namespace core {
namespace {

TEST(FrequencyRampTest, AlphaOneCoversFullSpectrumEveryLayer) {
  // The FMLP-Rec degenerate case noted below Eq. 20: alpha = 1 => step = 0
  // and every layer's dynamic window is the whole spectrum.
  const FrequencyRamp ramp(17, 4, 1.0, SlideDirection::kHighToLow,
                           SlideDirection::kHighToLow);
  EXPECT_DOUBLE_EQ(ramp.step(), 0.0);
  for (int64_t l = 0; l < 4; ++l) {
    const FilterWindow w = ramp.DynamicWindow(l);
    EXPECT_EQ(w.begin, 0);
    EXPECT_EQ(w.end, 17);
  }
}

TEST(FrequencyRampTest, HighToLowStartsAtTopAndEndsAtBottom) {
  const int64_t m = 26;  // N = 50
  const FrequencyRamp ramp(m, 4, 0.25, SlideDirection::kHighToLow,
                           SlideDirection::kHighToLow);
  // Layer 0 ends at the highest bin (Eq. 18 with l = 0: j = M).
  EXPECT_EQ(ramp.DynamicWindow(0).end, m);
  // Layer L-1 starts at bin 0 (i = M(1-a) - (L-1)step = 0).
  EXPECT_EQ(ramp.DynamicWindow(3).begin, 0);
}

TEST(FrequencyRampTest, LowToHighIsLayerReversedHighToLow) {
  // The paper: sigma_->(omega) = inverse(sigma_<-(omega)).
  const FrequencyRamp fwd(26, 4, 0.3, SlideDirection::kHighToLow,
                          SlideDirection::kHighToLow);
  const FrequencyRamp rev(26, 4, 0.3, SlideDirection::kLowToHigh,
                          SlideDirection::kLowToHigh);
  for (int64_t l = 0; l < 4; ++l) {
    EXPECT_EQ(fwd.DynamicWindow(l).begin, rev.DynamicWindow(3 - l).begin);
    EXPECT_EQ(fwd.DynamicWindow(l).end, rev.DynamicWindow(3 - l).end);
    EXPECT_EQ(fwd.StaticWindow(l).begin, rev.StaticWindow(3 - l).begin);
    EXPECT_EQ(fwd.StaticWindow(l).end, rev.StaticWindow(3 - l).end);
  }
}

TEST(FrequencyRampTest, SingleLayerCoversEverything) {
  const FrequencyRamp ramp(9, 1, 0.5, SlideDirection::kHighToLow,
                           SlideDirection::kHighToLow);
  EXPECT_EQ(ramp.StaticWindow(0).begin, 0);
  EXPECT_EQ(ramp.StaticWindow(0).end, 9);
  EXPECT_DOUBLE_EQ(ramp.step(), 0.0);
}

TEST(FrequencyRampTest, WindowMaskMatchesWindow) {
  const FrequencyRamp ramp(8, 2, 0.5, SlideDirection::kHighToLow,
                           SlideDirection::kHighToLow);
  const FilterWindow w = ramp.DynamicWindow(0);
  const Tensor mask = ramp.WindowMask(w);
  EXPECT_EQ(mask.shape(), (std::vector<int64_t>{8, 1}));
  for (int64_t bin = 0; bin < 8; ++bin) {
    EXPECT_FLOAT_EQ(mask[bin], w.Contains(bin) ? 1.0f : 0.0f);
  }
}

// Property sweep over (M, L, alpha).
class RampPropertyTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, double>> {
};

TEST_P(RampPropertyTest, StaticWindowsPartitionTheSpectrum) {
  // Eq. 22-24 with beta = 1/L: the L static windows cover [0, M) exactly —
  // the "recapture all frequencies" guarantee the paper claims for the SFS
  // module — and are disjoint whenever a disjoint nonempty partition is
  // possible (L <= M; with more layers than bins the >=1-bin guarantee
  // forces overlaps instead of empty windows).
  const auto [m, layers, alpha] = GetParam();
  const FrequencyRamp ramp(m, layers, alpha, SlideDirection::kHighToLow,
                           SlideDirection::kHighToLow);
  std::set<int64_t> covered;
  for (int64_t l = 0; l < layers; ++l) {
    const FilterWindow w = ramp.StaticWindow(l);
    EXPECT_GT(w.size(), 0) << "empty window at layer " << l << " (m=" << m
                           << ", L=" << layers << ")";
    for (int64_t bin = w.begin; bin < w.end; ++bin) {
      const bool fresh = covered.insert(bin).second;
      if (layers <= m) {
        EXPECT_TRUE(fresh) << "bin " << bin << " covered twice (m=" << m
                           << ", L=" << layers << ")";
      }
    }
  }
  EXPECT_EQ(static_cast<int64_t>(covered.size()), m);
}

// Regression for the StaticWindow empty-window bug: sweep both directions
// over (num_bins, num_layers) in {1..16} x {1..8}, including every L > M
// combination the old rounding collapsed to begin == end. Every layer must
// keep at least one in-range bin, the union must cover the spectrum, and
// for L <= M the partition must stay exactly disjoint.
TEST(FrequencyRampTest, StaticWindowNeverEmptyAcrossFullSweep) {
  for (const SlideDirection dir :
       {SlideDirection::kHighToLow, SlideDirection::kLowToHigh}) {
    for (int64_t m = 1; m <= 16; ++m) {
      for (int64_t layers = 1; layers <= 8; ++layers) {
        const FrequencyRamp ramp(m, layers, 0.5, dir, dir);
        std::set<int64_t> covered;
        int64_t total_bins = 0;
        for (int64_t l = 0; l < layers; ++l) {
          const FilterWindow w = ramp.StaticWindow(l);
          EXPECT_GE(w.begin, 0);
          EXPECT_LE(w.end, m);
          EXPECT_GT(w.size(), 0)
              << "empty window: m=" << m << " L=" << layers << " l=" << l
              << " dir=" << ToString(dir);
          total_bins += w.size();
          for (int64_t bin = w.begin; bin < w.end; ++bin) covered.insert(bin);
        }
        EXPECT_EQ(static_cast<int64_t>(covered.size()), m)
            << "coverage gap: m=" << m << " L=" << layers;
        if (layers <= m) {
          // Disjoint: total size == distinct bins == m.
          EXPECT_EQ(total_bins, m)
              << "overlap despite L <= M: m=" << m << " L=" << layers;
        }
      }
    }
  }
}

TEST_P(RampPropertyTest, DynamicWindowsAreValidAndSized) {
  const auto [m, layers, alpha] = GetParam();
  const FrequencyRamp ramp(m, layers, alpha, SlideDirection::kHighToLow,
                           SlideDirection::kHighToLow);
  for (int64_t l = 0; l < layers; ++l) {
    const FilterWindow w = ramp.DynamicWindow(l);
    EXPECT_GE(w.begin, 0);
    EXPECT_LE(w.end, m);
    EXPECT_GT(w.size(), 0);
    // Window size ~ alpha * M (within rounding).
    EXPECT_NEAR(static_cast<double>(w.size()), alpha * m, 1.5);
  }
}

TEST_P(RampPropertyTest, DynamicWindowsSlideMonotonically) {
  // In the <- ordering, deeper layers cover lower frequencies.
  const auto [m, layers, alpha] = GetParam();
  const FrequencyRamp ramp(m, layers, alpha, SlideDirection::kHighToLow,
                           SlideDirection::kHighToLow);
  for (int64_t l = 1; l < layers; ++l) {
    EXPECT_LE(ramp.DynamicWindow(l).end, ramp.DynamicWindow(l - 1).end);
    EXPECT_LE(ramp.DynamicWindow(l).begin, ramp.DynamicWindow(l - 1).begin);
  }
}

TEST_P(RampPropertyTest, DynamicUnionCoversSpectrumWhenAlphaAtLeastBeta) {
  // When alpha >= 1/L consecutive windows overlap or abut, so the union of
  // dynamic windows covers all bins (no SFS needed for coverage); this is
  // the contrapositive of the paper's alpha < 1/L gap analysis
  // (Sec. III-B3).
  const auto [m, layers, alpha] = GetParam();
  if (alpha < 1.0 / static_cast<double>(layers)) {
    GTEST_SKIP() << "gap regime";
  }
  const FrequencyRamp ramp(m, layers, alpha, SlideDirection::kHighToLow,
                           SlideDirection::kHighToLow);
  std::set<int64_t> covered;
  for (int64_t l = 0; l < layers; ++l) {
    const FilterWindow w = ramp.DynamicWindow(l);
    for (int64_t bin = w.begin; bin < w.end; ++bin) covered.insert(bin);
  }
  EXPECT_EQ(static_cast<int64_t>(covered.size()), m);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RampPropertyTest,
    ::testing::Combine(
        // M values for N in {8, 25, 32, 50, 64, 75, 100}.
        ::testing::Values<int64_t>(5, 13, 17, 26, 33, 38, 51),
        ::testing::Values<int64_t>(1, 2, 4, 8),
        ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.8, 1.0)));

TEST(FrequencyRampTest, GapExistsWhenAlphaBelowBeta) {
  // The paper's motivating case for SFS: with alpha < 1/L the dynamic
  // windows leave uncovered bins between steps.
  const int64_t m = 26;
  const int64_t layers = 8;
  const double alpha = 0.05;  // < 1/8
  const FrequencyRamp ramp(m, layers, alpha, SlideDirection::kHighToLow,
                           SlideDirection::kHighToLow);
  std::set<int64_t> covered;
  for (int64_t l = 0; l < layers; ++l) {
    const FilterWindow w = ramp.DynamicWindow(l);
    for (int64_t bin = w.begin; bin < w.end; ++bin) covered.insert(bin);
  }
  EXPECT_LT(static_cast<int64_t>(covered.size()), m);
}

TEST(FrequencyRampTest, DirectionToString) {
  EXPECT_STREQ(ToString(SlideDirection::kHighToLow), "<-");
  EXPECT_STREQ(ToString(SlideDirection::kLowToHigh), "->");
}

}  // namespace
}  // namespace core
}  // namespace slime
