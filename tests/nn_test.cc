#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "tensor/tensor_ops.h"
#include "autograd/ops.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/feed_forward.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"

namespace slime {
namespace nn {
namespace {

using autograd::Param;
using autograd::Sum;
using autograd::Variable;

TEST(ModuleTest, ParameterRegistrationIsRecursive) {
  Rng rng(1);
  FeedForward ffn(8, 0.1f, &rng);
  // w1 (w+b) + w2 (w+b) = 4 parameter tensors.
  EXPECT_EQ(ffn.Parameters().size(), 4u);
  const auto named = ffn.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "w1.weight");
  EXPECT_EQ(named[1].first, "w1.bias");
}

TEST(ModuleTest, SetTrainingPropagates) {
  Rng rng(2);
  FeedForward ffn(4, 0.5f, &rng);
  EXPECT_TRUE(ffn.training());
  ffn.SetTraining(false);
  EXPECT_FALSE(ffn.training());
}

TEST(ModuleTest, ParameterCountIsExact) {
  Rng rng(3);
  Linear lin(5, 7, &rng);
  EXPECT_EQ(lin.ParameterCount(), 5 * 7 + 7);
  Linear nobias(5, 7, &rng, /*use_bias=*/false);
  EXPECT_EQ(nobias.ParameterCount(), 5 * 7);
}

TEST(LinearTest, KnownAffineMap) {
  Rng rng(4);
  Linear lin(2, 2, &rng);
  // Overwrite with known weights.
  lin.Parameters()[0].mutable_value() =
      Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  lin.Parameters()[1].mutable_value() = Tensor::FromVector({2}, {10, 20});
  Variable x = Param(Tensor::FromVector({1, 2}, {1, 1}));
  Variable y = lin.Forward(x);
  EXPECT_FLOAT_EQ(y.value()[0], 1 + 3 + 10);
  EXPECT_FLOAT_EQ(y.value()[1], 2 + 4 + 20);
}

TEST(LinearTest, ThreeDInputKeepsLeadingDims) {
  Rng rng(5);
  Linear lin(4, 6, &rng);
  Variable x = Param(Tensor::Randn({2, 3, 4}, &rng));
  Variable y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 3, 6}));
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(6);
  Linear lin(3, 2, &rng);
  Variable x = Param(Tensor::Randn({4, 3}, &rng));
  Sum(lin.Forward(x)).Backward();
  for (const auto& p : lin.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(EmbeddingTest, LookupMatchesRows) {
  Rng rng(7);
  Embedding emb(5, 3, &rng);
  Variable e = emb.Forward({2, 0, 2}, {3});
  EXPECT_EQ(e.shape(), (std::vector<int64_t>{3, 3}));
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(e.value()[j], emb.weight().value().At({2, j}));
    EXPECT_FLOAT_EQ(e.value()[3 + j], emb.weight().value().At({0, j}));
    EXPECT_FLOAT_EQ(e.value()[6 + j], e.value()[j]);
  }
}

TEST(LayerNormTest, NormalizesLastDim) {
  LayerNorm ln(4);
  Variable x = Param(Tensor::FromVector({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40}));
  Variable y = ln.Forward(x);
  // With gamma=1, beta=0 every row has mean 0 and variance 1.
  for (int64_t r = 0; r < 2; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int64_t i = 0; i < 4; ++i) mean += y.value()[r * 4 + i];
    mean /= 4;
    for (int64_t i = 0; i < 4; ++i) {
      const double c = y.value()[r * 4 + i] - mean;
      var += c * c;
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(DropoutTest, EvalModePassesThrough) {
  Rng rng(8);
  Dropout drop(0.9f);
  drop.SetTraining(false);
  Variable x = Param(Tensor::Ones({100}));
  Variable y = drop.Forward(x, &rng);
  for (int64_t i = 0; i < 100; ++i) EXPECT_FLOAT_EQ(y.value()[i], 1.0f);
}

TEST(FeedForwardTest, ShapePreservedAndNonLinear) {
  Rng rng(9);
  FeedForward ffn(6, 0.0f, &rng);
  ffn.SetTraining(false);
  Variable x = Param(Tensor::Randn({2, 5, 6}, &rng));
  Variable y = ffn.Forward(x, &rng);
  EXPECT_EQ(y.shape(), x.shape());
  // Non-linearity: f(2x) != 2*f(x) in general.
  Variable x2 = Param(ops::MulScalar(x.value(), 2.0f));
  Variable y2 = ffn.Forward(x2, &rng);
  double diff = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    diff += std::abs(y2.value()[i] - 2.0f * y.value()[i]);
  }
  EXPECT_GT(diff / y.numel(), 1e-4);
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  const Tensor mask = CausalMask(4);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      if (j > i) {
        EXPECT_LT(mask.At({i, j}), -1e8f);
      } else {
        EXPECT_FLOAT_EQ(mask.At({i, j}), 0.0f);
      }
    }
  }
}

TEST(AttentionTest, OutputShapeAndGradients) {
  Rng rng(10);
  MultiHeadSelfAttention attn(8, 2, 0.0f, &rng);
  attn.SetTraining(false);
  Variable x = Param(Tensor::Randn({2, 5, 8}, &rng));
  Variable y = attn.Forward(x, true, Tensor(), &rng);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 5, 8}));
  Sum(y).Backward();
  for (const auto& p : attn.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(AttentionTest, CausalityFuturePositionDoesNotAffectPast) {
  Rng rng(11);
  MultiHeadSelfAttention attn(4, 1, 0.0f, &rng);
  attn.SetTraining(false);
  Tensor base = Tensor::Randn({1, 4, 4}, &rng);
  Variable y1 = attn.Forward(Param(base.Clone()), true, Tensor(), &rng);
  // Perturb the last position only.
  Tensor mod = base.Clone();
  for (int64_t j = 0; j < 4; ++j) mod.At({0, 3, j}) += 5.0f;
  Variable y2 = attn.Forward(Param(mod), true, Tensor(), &rng);
  // Outputs at positions 0..2 must be identical; position 3 must change.
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(y1.value().At({0, t, j}), y2.value().At({0, t, j}), 1e-5);
    }
  }
  double last_diff = 0.0;
  for (int64_t j = 0; j < 4; ++j) {
    last_diff += std::abs(y1.value().At({0, 3, j}) - y2.value().At({0, 3, j}));
  }
  EXPECT_GT(last_diff, 1e-3);
}

TEST(AttentionTest, BidirectionalSeesFuture) {
  Rng rng(12);
  MultiHeadSelfAttention attn(4, 1, 0.0f, &rng);
  attn.SetTraining(false);
  Tensor base = Tensor::Randn({1, 4, 4}, &rng);
  Variable y1 = attn.Forward(Param(base.Clone()), false, Tensor(), &rng);
  Tensor mod = base.Clone();
  for (int64_t j = 0; j < 4; ++j) mod.At({0, 3, j}) += 5.0f;
  Variable y2 = attn.Forward(Param(mod), false, Tensor(), &rng);
  double first_diff = 0.0;
  for (int64_t j = 0; j < 4; ++j) {
    first_diff +=
        std::abs(y1.value().At({0, 0, j}) - y2.value().At({0, 0, j}));
  }
  EXPECT_GT(first_diff, 1e-4);
}

TEST(GruTest, ShapesAndLastState) {
  Rng rng(13);
  Gru gru(3, 5, &rng);
  Variable x = Param(Tensor::Randn({2, 4, 3}, &rng));
  Variable all = gru.Forward(x);
  EXPECT_EQ(all.shape(), (std::vector<int64_t>{2, 4, 5}));
  Variable last = gru.ForwardLast(x);
  EXPECT_EQ(last.shape(), (std::vector<int64_t>{2, 5}));
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_FLOAT_EQ(last.value().At({b, j}), all.value().At({b, 3, j}));
    }
  }
}

TEST(GruTest, GradientsFlowThroughTime) {
  Rng rng(14);
  Gru gru(2, 3, &rng);
  Variable x = Param(Tensor::Randn({1, 6, 2}, &rng));
  Sum(gru.ForwardLast(x)).Backward();
  EXPECT_TRUE(x.has_grad());
  // The earliest timestep must receive gradient through the recurrence.
  double early = 0.0;
  for (int64_t j = 0; j < 2; ++j) {
    early += std::abs(x.grad().At({0, 0, j}));
  }
  EXPECT_GT(early, 0.0);
  for (const auto& p : gru.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(GruTest, GradcheckThroughRecurrence) {
  Rng rng(15);
  Gru gru(2, 2, &rng);
  Variable x = Param(Tensor::Randn({1, 3, 2}, &rng, 0.5f));
  auto params = gru.Parameters();
  std::vector<Variable> inputs = {x};
  const auto result = autograd::CheckGradients(
      [&gru](const std::vector<Variable>& in) {
        return Sum(gru.ForwardLast(in[0]));
      },
      inputs, 1e-3, 3e-2);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(ConvTest, HorizontalBankOutputDim) {
  Rng rng(16);
  HorizontalConvBank bank(6, {2, 3}, 4, &rng);
  EXPECT_EQ(bank.output_dim(), 8);
  Variable x = Param(Tensor::Randn({3, 7, 6}, &rng));
  Variable y = bank.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 8}));
}

TEST(ConvTest, VerticalConvMatchesManualWeightedSum) {
  Rng rng(17);
  VerticalConv vert(3, 1, &rng);
  vert.Parameters()[0].mutable_value() =
      Tensor::FromVector({1, 3}, {1, 2, 3});
  Variable x = Param(Tensor::FromVector({1, 3, 2}, {1, 0, 0, 1, 1, 1}));
  Variable y = vert.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{1, 2}));
  // column 0: 1*1 + 2*0 + 3*1 = 4; column 1: 1*0 + 2*1 + 3*1 = 5.
  EXPECT_FLOAT_EQ(y.value()[0], 4.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 5.0f);
}

TEST(InitTest, XavierBoundsRespected) {
  Rng rng(18);
  const Tensor w = XavierUniform({64, 64}, &rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::abs(w[i]), bound);
  }
}

}  // namespace
}  // namespace nn
}  // namespace slime
