#include "metrics/ranking.h"

#include <gtest/gtest.h>

#include <cmath>

namespace slime {
namespace metrics {
namespace {

TEST(RankingTest, RankOneIsPerfect) {
  RankingAccumulator acc;
  acc.AddRank(1);
  EXPECT_DOUBLE_EQ(acc.HrAt(5), 1.0);
  EXPECT_DOUBLE_EQ(acc.HrAt(10), 1.0);
  EXPECT_DOUBLE_EQ(acc.NdcgAt(5), 1.0);
  EXPECT_DOUBLE_EQ(acc.NdcgAt(10), 1.0);
}

TEST(RankingTest, RankOutsideTopTenScoresZero) {
  RankingAccumulator acc;
  acc.AddRank(11);
  EXPECT_DOUBLE_EQ(acc.HrAt(10), 0.0);
  EXPECT_DOUBLE_EQ(acc.NdcgAt(10), 0.0);
}

TEST(RankingTest, RankBetweenFiveAndTen) {
  RankingAccumulator acc;
  acc.AddRank(7);
  EXPECT_DOUBLE_EQ(acc.HrAt(5), 0.0);
  EXPECT_DOUBLE_EQ(acc.HrAt(10), 1.0);
  EXPECT_DOUBLE_EQ(acc.NdcgAt(5), 0.0);
  EXPECT_NEAR(acc.NdcgAt(10), 1.0 / std::log2(8.0), 1e-12);
}

TEST(RankingTest, AveragesOverUsers) {
  RankingAccumulator acc;
  acc.AddRank(1);
  acc.AddRank(3);
  acc.AddRank(20);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_NEAR(acc.HrAt(5), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.NdcgAt(5), (1.0 + 1.0 / std::log2(4.0)) / 3.0, 1e-12);
}

TEST(RankingTest, AddComputesRankFromScores) {
  // Scores for 4 items (+pad col 0). Target 2 has the 2nd-highest score.
  Tensor scores = Tensor::FromVector({1, 5}, {99.0f, 0.1f, 0.5f, 0.9f, 0.2f});
  RankingAccumulator acc;
  acc.Add(scores, {2});
  EXPECT_EQ(acc.count(), 1);
  EXPECT_NEAR(acc.NdcgAt(5), 1.0 / std::log2(3.0), 1e-6);
}

TEST(RankingTest, PaddingColumnIsExcluded) {
  // Column 0 has a huge score but must not affect the rank.
  Tensor scores = Tensor::FromVector({1, 3}, {1e9f, 2.0f, 1.0f});
  RankingAccumulator acc;
  acc.Add(scores, {1});
  EXPECT_DOUBLE_EQ(acc.NdcgAt(5), 1.0);  // rank 1 among real items
}

TEST(RankingTest, TiesResolveInTargetsFavour) {
  Tensor scores = Tensor::FromVector({1, 4}, {0.0f, 1.0f, 1.0f, 1.0f});
  RankingAccumulator acc;
  acc.Add(scores, {2});
  EXPECT_DOUBLE_EQ(acc.NdcgAt(5), 1.0);
}

TEST(RankingTest, BatchOfUsers) {
  Tensor scores = Tensor::FromVector(
      {2, 4}, {0.0f, 3.0f, 2.0f, 1.0f,   // target 1 -> rank 1
               0.0f, 3.0f, 2.0f, 1.0f});  // target 3 -> rank 3
  RankingAccumulator acc;
  acc.Add(scores, {1, 3});
  EXPECT_EQ(acc.count(), 2);
  EXPECT_DOUBLE_EQ(acc.HrAt(5), 1.0);
  EXPECT_NEAR(acc.NdcgAt(5), (1.0 + 1.0 / std::log2(4.0)) / 2.0, 1e-12);
}

TEST(RankingTest, EmptyAccumulatorIsZero) {
  RankingAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.HrAt(5), 0.0);
  EXPECT_DOUBLE_EQ(acc.NdcgAt(10), 0.0);
}

TEST(RankingTest, SummaryFormat) {
  RankingAccumulator acc;
  acc.AddRank(1);
  EXPECT_EQ(acc.Summary(),
            "HR@5 1.0000  NDCG@5 1.0000  HR@10 1.0000  NDCG@10 1.0000");
}

TEST(RankingTest, MetricsBundleCopiesAccumulator) {
  RankingAccumulator acc;
  acc.AddRank(2);
  const RankingMetrics m = RankingMetrics::From(acc);
  EXPECT_DOUBLE_EQ(m.hr5, 1.0);
  EXPECT_NEAR(m.ndcg5, 1.0 / std::log2(3.0), 1e-12);
}

}  // namespace
}  // namespace metrics
}  // namespace slime

namespace slime {
namespace metrics {
namespace {

TEST(RankingTest, MrrIsMeanReciprocalRank) {
  RankingAccumulator acc;
  acc.AddRank(1);
  acc.AddRank(4);
  acc.AddRank(20);
  EXPECT_NEAR(acc.Mrr(), (1.0 + 0.25 + 0.05) / 3.0, 1e-12);
}

TEST(RankingTest, MrrEmptyIsZero) {
  RankingAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Mrr(), 0.0);
}

}  // namespace
}  // namespace metrics
}  // namespace slime
