#include "core/filter_mixer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "fft/fft.h"
#include "fft/spectral_ops.h"

namespace slime {
namespace core {
namespace {

using autograd::Param;
using autograd::Sum;
using autograd::Variable;

FilterMixerOptions DefaultOptions() {
  FilterMixerOptions o;
  o.alpha = 0.4;
  o.gamma = 0.5;
  return o;
}

TEST(LearnableFilterTest, ApplyMatchesManualComplexProduct) {
  Rng rng(1);
  LearnableFilter filter(3, 2, &rng);
  Variable re = Param(Tensor::Randn({1, 3, 2}, &rng));
  Variable im = Param(Tensor::Randn({1, 3, 2}, &rng));
  const fft::SpectralPair out = filter.Apply({re, im}, Tensor());
  const Tensor& wre = filter.weight_re().value();
  const Tensor& wim = filter.weight_im().value();
  for (int64_t i = 0; i < 6; ++i) {
    const float xr = re.value()[i];
    const float xi = im.value()[i];
    EXPECT_NEAR(out.re.value()[i], xr * wre[i] - xi * wim[i], 1e-5);
    EXPECT_NEAR(out.im.value()[i], xr * wim[i] + xi * wre[i], 1e-5);
  }
}

TEST(LearnableFilterTest, MaskZeroesOutsideWindow) {
  Rng rng(2);
  LearnableFilter filter(4, 1, &rng);
  Variable re = Param(Tensor::Ones({1, 4, 1}));
  Variable im = Param(Tensor::Ones({1, 4, 1}));
  Tensor mask = Tensor::FromVector({4, 1}, {0, 1, 1, 0});
  const fft::SpectralPair out = filter.Apply({re, im}, mask);
  EXPECT_FLOAT_EQ(out.re.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(out.im.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(out.re.value()[3], 0.0f);
  EXPECT_NE(out.re.value()[1], 0.0f);
}

TEST(LearnableFilterTest, AmplitudeIsComplexModulus) {
  Rng rng(3);
  LearnableFilter filter(2, 2, &rng);
  const Tensor amp = filter.Amplitude();
  const Tensor& wre = filter.weight_re().value();
  const Tensor& wim = filter.weight_im().value();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(amp[i], std::sqrt(wre[i] * wre[i] + wim[i] * wim[i]), 1e-6);
  }
}

TEST(FilterMixerLayerTest, ShapePreservedAndGradientsFlow) {
  Rng rng(4);
  FilterMixerLayer layer(8, 4, 2, 0, DefaultOptions(), 0.0f, &rng);
  layer.SetTraining(false);
  Variable x = Param(Tensor::Randn({2, 8, 4}, &rng));
  Variable y = layer.Forward(x, &rng);
  EXPECT_EQ(y.shape(), x.shape());
  Sum(y).Backward();
  EXPECT_TRUE(x.has_grad());
  for (const auto& p : layer.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(FilterMixerLayerTest, AblationVariantsHaveExpectedParameters) {
  Rng rng(5);
  FilterMixerOptions both = DefaultOptions();
  FilterMixerOptions no_static = DefaultOptions();
  no_static.use_static = false;
  FilterMixerOptions no_dynamic = DefaultOptions();
  no_dynamic.use_dynamic = false;
  FilterMixerLayer l_both(8, 4, 2, 0, both, 0.0f, &rng);
  FilterMixerLayer l_d(8, 4, 2, 0, no_static, 0.0f, &rng);
  FilterMixerLayer l_s(8, 4, 2, 0, no_dynamic, 0.0f, &rng);
  // Each LearnableFilter has 2 tensors; layer norm has 2 more.
  EXPECT_EQ(l_both.Parameters().size(), 6u);
  EXPECT_EQ(l_d.Parameters().size(), 4u);
  EXPECT_EQ(l_s.Parameters().size(), 4u);
}

TEST(FilterMixerLayerTest, WindowsFollowRampStructure) {
  Rng rng(6);
  FilterMixerOptions o = DefaultOptions();
  o.alpha = 0.25;
  const int64_t n = 16;
  const int64_t m = fft::RfftBins(n);
  FilterMixerLayer top(n, 4, 4, 0, o, 0.0f, &rng);
  FilterMixerLayer bottom(n, 4, 4, 3, o, 0.0f, &rng);
  // Mode-4 default: layer 0 ends at the top of the spectrum, the deepest
  // layer starts at DC.
  EXPECT_EQ(top.dynamic_window().end, m);
  EXPECT_EQ(bottom.dynamic_window().begin, 0);
}

TEST(FilterMixerLayerTest, FullSpectrumDisablesMasks) {
  Rng rng(7);
  FilterMixerOptions o;
  o.alpha = 1.0;
  o.use_static = false;
  o.full_spectrum = true;
  FilterMixerLayer layer(8, 4, 2, 1, o, 0.0f, &rng);
  const int64_t m = fft::RfftBins(8);
  EXPECT_EQ(layer.dynamic_window().begin, 0);
  EXPECT_EQ(layer.dynamic_window().end, m);
}

TEST(FilterMixerLayerTest, OnlyWindowFrequenciesPassTheDynamicBranch) {
  // Build a layer whose dynamic window excludes high bins and disable the
  // static branch; a pure high-frequency tone must be filtered down to the
  // residual path only (the filtered component contributes nothing).
  Rng rng(8);
  const int64_t n = 16;
  FilterMixerOptions o;
  o.alpha = 0.25;  // layer 1 of 2 covers low bins only
  o.use_static = false;
  FilterMixerLayer layer(n, 1, 2, 1, o, 0.0f, &rng);
  layer.SetTraining(false);
  const FilterWindow w = layer.dynamic_window();
  // Find a frequency outside the window.
  int64_t out_bin = -1;
  for (int64_t k = 1; k < fft::RfftBins(n) - 1; ++k) {
    if (!w.Contains(k)) {
      out_bin = k;
      break;
    }
  }
  ASSERT_GE(out_bin, 0);
  Tensor x({1, n, 1});
  for (int64_t t = 0; t < n; ++t) {
    x.data()[t] = std::cos(2.0 * M_PI * out_bin * t / n);
  }
  // With the tone fully outside the window, irfft(filtered spectrum) == 0,
  // so the layer output equals LayerNorm(x + 0) = LayerNorm(x).
  Variable y = layer.Forward(Param(x.Clone()), &rng);
  // Compare against a LayerNorm of x alone using the layer's own norm
  // parameters (fresh LN has gamma=1, beta=0).
  nn::LayerNorm ln(1);
  // d == 1 makes LayerNorm degenerate (variance 0 -> output beta = 0), so
  // instead verify the invariant differently: the filtered time signal is
  // zero. Recompute it manually.
  const fft::SpectralPair spec = fft::Rfft(Param(x.Clone()));
  Tensor mask({fft::RfftBins(n), 1});
  for (int64_t k = 0; k < fft::RfftBins(n); ++k) {
    mask.data()[k] = w.Contains(k) ? 1.0f : 0.0f;
  }
  const fft::SpectralPair masked = fft::MaskSpectrum(spec, mask);
  Variable filtered = fft::Irfft(masked, n);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(filtered.value()[i], 0.0f, 1e-4);
  }
  (void)y;
}

TEST(FilterMixerBlockTest, ShapeAndGradients) {
  Rng rng(9);
  FilterMixerBlock block(8, 4, 2, 0, DefaultOptions(), 0.1f, &rng);
  Variable x = Param(Tensor::Randn({2, 8, 4}, &rng));
  Variable y = block.Forward(x, &rng);
  EXPECT_EQ(y.shape(), x.shape());
  Sum(y).Backward();
  for (const auto& p : block.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(FilterMixerBlockTest, EvalDeterministicTrainStochastic) {
  Rng rng(10);
  FilterMixerBlock block(8, 4, 2, 0, DefaultOptions(), 0.5f, &rng);
  Variable x = Param(Tensor::Randn({1, 8, 4}, &rng));
  block.SetTraining(false);
  Variable e1 = block.Forward(x, &rng);
  Variable e2 = block.Forward(x, &rng);
  for (int64_t i = 0; i < e1.numel(); ++i) {
    EXPECT_FLOAT_EQ(e1.value()[i], e2.value()[i]);
  }
  block.SetTraining(true);
  Variable t1 = block.Forward(x, &rng);
  Variable t2 = block.Forward(x, &rng);
  double diff = 0.0;
  for (int64_t i = 0; i < t1.numel(); ++i) {
    diff += std::abs(t1.value()[i] - t2.value()[i]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(FilterMixerLayerTest, MaskedAmplitudeZeroOutsideWindows) {
  Rng rng(11);
  FilterMixerOptions o = DefaultOptions();
  o.alpha = 0.3;
  FilterMixerLayer layer(16, 4, 4, 1, o, 0.0f, &rng);
  const Tensor damp = layer.MaskedDynamicAmplitude();
  const FilterWindow w = layer.dynamic_window();
  const int64_t m = fft::RfftBins(16);
  ASSERT_EQ(damp.shape(), (std::vector<int64_t>{m, 4}));
  for (int64_t k = 0; k < m; ++k) {
    for (int64_t j = 0; j < 4; ++j) {
      if (!w.Contains(k)) {
        EXPECT_FLOAT_EQ(damp.At({k, j}), 0.0f);
      }
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace slime
