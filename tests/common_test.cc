#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "tensor/tensor.h"

namespace slime {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, FormatFloatDecimals) {
  EXPECT_EQ(FormatFloat(0.123456, 4), "0.1235");
  EXPECT_EQ(FormatFloat(2.0, 1), "2.0");
  EXPECT_EQ(FormatFloat(-0.5, 2), "-0.50");
}

TEST(StringUtilTest, JoinWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad(Status::NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(3);
  const std::vector<double> weights = {0.0, 9.0, 1.0};
  int64_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[0], 0);  // zero weight never drawn
  EXPECT_NEAR(static_cast<double>(counts[1]) / 5000.0, 0.9, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.Shuffle(&shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngTest, SeedResetsStream) {
  Rng rng(9);
  const uint64_t first = rng.NextUint64();
  rng.NextUint64();
  rng.Seed(9);
  EXPECT_EQ(rng.NextUint64(), first);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, TensorShapeMismatchAborts) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "reshape numel mismatch");
}

TEST(CheckDeathTest, OutOfRangeFlatIndexAborts) {
  Tensor t = Tensor::Zeros({3});
  EXPECT_DEATH(t[5], "SLIME_CHECK failed");
}

TEST(CheckDeathTest, CheckMacrosFormatValues) {
  EXPECT_DEATH(SLIME_CHECK_EQ(1, 2), "\\(1 vs 2\\)");
}

TEST(CheckDeathTest, UniformZeroAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.Uniform(0), "SLIME_CHECK failed");
}

}  // namespace
}  // namespace slime
