// The cross-subsystem chaos harness, driven as a unit test: one seeded
// pipeline run composes dataset corruption, injected io faults, a
// mid-checkpoint kill + resume, a NaN divergence window, deadline pressure
// on serving and a corrupted hot reload. The three invariants:
//
//   1. No crash/hang/UB — the pipeline returns (ASan/UBSan cover the UB
//      half in CI, where this test runs under both sanitizer jobs).
//   2. Every injected fault surfaces as a typed Status / InjectedCrash /
//      recorded rollback (typed_failures == faults_injected).
//   3. Recovery is exact: repair-mode quarantine counts match the planted
//      corruptions and the resumed run is bit-identical to the unfaulted
//      baseline (folded into invariants_ok by the harness).

#include "chaos/harness.h"

#include <gtest/gtest.h>

#include <string>

#include "compute/thread_pool.h"

namespace slime {
namespace chaos {
namespace {

ChaosOptions Options(uint64_t seed) {
  ChaosOptions o;
  o.seed = seed;
  o.work_dir = ::testing::TempDir();
  o.epochs = 4;
  return o;
}

TEST(ChaosPipelineTest, AllInvariantsHoldAcrossSeeds) {
  for (const uint64_t seed : {11ull, 29ull}) {
    const Result<ChaosResult> r = RunChaosPipeline(Options(seed));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const ChaosResult& result = r.value();
    EXPECT_TRUE(result.invariants_ok)
        << "seed " << seed << ": " << result.failure << "\n"
        << result.EventLog();
    EXPECT_GT(result.faults_injected, 0) << "seed " << seed;
    EXPECT_EQ(result.typed_failures, result.faults_injected)
        << "seed " << seed << "\n"
        << result.EventLog();
    // The quarantine saw the planted dataset corruption.
    EXPECT_GT(result.quarantine.total_errors(), 0);
    // The kill + resume runs left telemetry behind.
    EXPECT_NE(result.telemetry_jsonl.find("\"resume\""), std::string::npos);
  }
}

TEST(ChaosPipelineTest, SameSeedRunsAreBitIdentical) {
  const ChaosOptions options = Options(17);
  const Result<ChaosResult> first = RunChaosPipeline(options);
  const Result<ChaosResult> second = RunChaosPipeline(options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first.value().EventLog(), second.value().EventLog());
  EXPECT_EQ(first.value().telemetry_jsonl, second.value().telemetry_jsonl);
  EXPECT_EQ(first.value().quarantine.ToJsonl(),
            second.value().quarantine.ToJsonl());
}

TEST(ChaosPipelineTest, EventLogIsIdenticalAcrossComputeThreadCounts) {
  // The pipeline (state-store recoveries included) must be a pure function
  // of the seed, independent of compute-pool width.
  const ChaosOptions options = Options(23);
  std::string baseline;
  for (const int threads : {1, 2, 8}) {
    compute::SetNumThreads(threads);
    const Result<ChaosResult> r = RunChaosPipeline(options);
    ASSERT_TRUE(r.ok()) << "threads " << threads << ": "
                        << r.status().ToString();
    EXPECT_TRUE(r.value().invariants_ok)
        << "threads " << threads << ": " << r.value().failure;
    if (baseline.empty()) {
      baseline = r.value().EventLog();
    } else {
      EXPECT_EQ(r.value().EventLog(), baseline) << "threads " << threads;
    }
  }
  compute::SetNumThreads(0);  // restore the default pool
}

TEST(ChaosPipelineTest, DifferentSeedsScheduleDifferentFaults) {
  const Result<ChaosResult> a = RunChaosPipeline(Options(5));
  const Result<ChaosResult> b = RunChaosPipeline(Options(6));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().EventLog(), b.value().EventLog());
}

TEST(ChaosPipelineTest, RejectsUnusableOptions) {
  ChaosOptions no_dir;
  no_dir.work_dir.clear();
  EXPECT_EQ(RunChaosPipeline(no_dir).status().code(),
            Status::Code::kInvalidArgument);

  ChaosOptions short_run = Options(1);
  short_run.epochs = 2;
  EXPECT_EQ(RunChaosPipeline(short_run).status().code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace chaos
}  // namespace slime
