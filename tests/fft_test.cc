#include "fft/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <thread>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "fft/spectral_ops.h"

namespace slime {
namespace fft {
namespace {

using autograd::Param;
using autograd::Sum;
using autograd::Variable;

std::vector<std::complex<double>> RandomComplex(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> v(n);
  for (auto& c : v) c = {rng.Gaussian(), rng.Gaussian()};
  return v;
}

class FftSizeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const int64_t n = GetParam();
  const auto input = RandomComplex(n, 1000 + n);
  std::vector<std::complex<double>> fast = input;
  Fft(&fast, false);
  std::vector<std::complex<double>> naive;
  NaiveDft(input, &naive, false);
  for (int64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), naive[k].real(), 1e-8 * n) << "bin " << k;
    EXPECT_NEAR(fast[k].imag(), naive[k].imag(), 1e-8 * n) << "bin " << k;
  }
}

TEST_P(FftSizeTest, InverseRoundTrip) {
  const int64_t n = GetParam();
  const auto input = RandomComplex(n, 2000 + n);
  std::vector<std::complex<double>> buf = input;
  Fft(&buf, false);
  Fft(&buf, true);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(buf[i].real() / n, input[i].real(), 1e-9 * n);
    EXPECT_NEAR(buf[i].imag() / n, input[i].imag(), 1e-9 * n);
  }
}

TEST_P(FftSizeTest, ParsevalHolds) {
  const int64_t n = GetParam();
  const auto input = RandomComplex(n, 3000 + n);
  double time_energy = 0.0;
  for (const auto& c : input) time_energy += std::norm(c);
  std::vector<std::complex<double>> buf = input;
  Fft(&buf, false);
  double freq_energy = 0.0;
  for (const auto& c : buf) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-8 * n);
}

// Powers of two exercise Radix2; other sizes exercise Bluestein. 25, 50,
// 75, 100 are the paper's candidate sequence lengths (Sec. IV-D).
INSTANTIATE_TEST_SUITE_P(AllSizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 25,
                                           32, 50, 64, 75, 100, 128));

TEST(RfftBinsTest, MatchesStandardDefinition) {
  EXPECT_EQ(RfftBins(1), 1);
  EXPECT_EQ(RfftBins(2), 2);
  EXPECT_EQ(RfftBins(8), 5);
  EXPECT_EQ(RfftBins(25), 13);
  EXPECT_EQ(RfftBins(50), 26);   // paper Eq. 13 for even N: N/2 + 1
  EXPECT_EQ(RfftBins(100), 51);
}

class RfftSizeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(RfftSizeTest, ConjugateSymmetryRecoversSignal) {
  // irfft(rfft(x)) == x for any real x: the half spectrum holds the full
  // information (Sec. II-B of the paper).
  const int64_t n = GetParam();
  Rng rng(4000 + n);
  std::vector<float> x(n);
  for (auto& v : x) v = rng.Gaussian();
  const int64_t m = RfftBins(n);
  std::vector<float> re(m);
  std::vector<float> im(m);
  RfftForward(x.data(), n, re.data(), im.data());
  std::vector<float> recovered(n);
  IrfftForward(re.data(), im.data(), n, recovered.data());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(recovered[i], x[i], 1e-4) << "n=" << n << " i=" << i;
  }
}

TEST_P(RfftSizeTest, DcBinIsSumOfSignal) {
  const int64_t n = GetParam();
  Rng rng(5000 + n);
  std::vector<float> x(n);
  double sum = 0.0;
  for (auto& v : x) {
    v = rng.Gaussian();
    sum += v;
  }
  const int64_t m = RfftBins(n);
  std::vector<float> re(m);
  std::vector<float> im(m);
  RfftForward(x.data(), n, re.data(), im.data());
  EXPECT_NEAR(re[0], sum, 1e-3);
  EXPECT_NEAR(im[0], 0.0, 1e-4);
}

TEST_P(RfftSizeTest, RfftAdjointIsTransposeOfForward) {
  // <F x, g> == <x, F^T g> for random x, g (the defining property of the
  // adjoint, which is what backward must implement).
  const int64_t n = GetParam();
  const int64_t m = RfftBins(n);
  Rng rng(6000 + n);
  std::vector<float> x(n);
  for (auto& v : x) v = rng.Gaussian();
  std::vector<float> g_re(m);
  std::vector<float> g_im(m);
  for (auto& v : g_re) v = rng.Gaussian();
  for (auto& v : g_im) v = rng.Gaussian();
  std::vector<float> fx_re(m);
  std::vector<float> fx_im(m);
  RfftForward(x.data(), n, fx_re.data(), fx_im.data());
  std::vector<float> ftg(n);
  RfftAdjoint(g_re.data(), g_im.data(), n, ftg.data());
  double lhs = 0.0;
  for (int64_t k = 0; k < m; ++k) {
    lhs += double(fx_re[k]) * g_re[k] + double(fx_im[k]) * g_im[k];
  }
  double rhs = 0.0;
  for (int64_t i = 0; i < n; ++i) rhs += double(x[i]) * ftg[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

TEST_P(RfftSizeTest, IrfftAdjointIsTransposeOfForward) {
  const int64_t n = GetParam();
  const int64_t m = RfftBins(n);
  Rng rng(7000 + n);
  std::vector<float> re(m);
  std::vector<float> im(m);
  for (auto& v : re) v = rng.Gaussian();
  for (auto& v : im) v = rng.Gaussian();
  std::vector<float> g(n);
  for (auto& v : g) v = rng.Gaussian();
  std::vector<float> x(n);
  IrfftForward(re.data(), im.data(), n, x.data());
  std::vector<float> gt_re(m);
  std::vector<float> gt_im(m);
  IrfftAdjoint(g.data(), n, gt_re.data(), gt_im.data());
  double lhs = 0.0;
  for (int64_t i = 0; i < n; ++i) lhs += double(x[i]) * g[i];
  double rhs = 0.0;
  for (int64_t k = 0; k < m; ++k) {
    rhs += double(re[k]) * gt_re[k] + double(im[k]) * gt_im[k];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(AllSizes, RfftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12, 16, 25, 32,
                                           50, 64, 75, 100));

TEST(SpectralOpsTest, RfftShapes) {
  Rng rng(1);
  Variable x = Param(Tensor::Randn({2, 8, 3}, &rng));
  const SpectralPair s = Rfft(x);
  EXPECT_EQ(s.re.shape(), (std::vector<int64_t>{2, 5, 3}));
  EXPECT_EQ(s.im.shape(), (std::vector<int64_t>{2, 5, 3}));
}

TEST(SpectralOpsTest, RfftIrfftRoundTripBatched) {
  Rng rng(2);
  Variable x = Param(Tensor::Randn({3, 10, 4}, &rng));
  Variable y = Irfft(Rfft(x), 10);
  ASSERT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y.value()[i], x.value()[i], 1e-4);
  }
}

TEST(SpectralOpsTest, RfftGradcheck) {
  Rng rng(3);
  Variable x = Param(Tensor::Randn({2, 6, 2}, &rng, 0.5f));
  const auto result = autograd::CheckGradients(
      [](const std::vector<Variable>& in) {
        const SpectralPair s = Rfft(in[0]);
        // Use both components with distinct weights so each adjoint path
        // is exercised.
        Rng wrng(99);
        Tensor w1 = Tensor::Randn({2, 4, 2}, &wrng);
        Tensor w2 = Tensor::Randn({2, 4, 2}, &wrng);
        return autograd::Add(Sum(autograd::MulConst(s.re, w1)),
                             Sum(autograd::MulConst(s.im, w2)));
      },
      {x});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(SpectralOpsTest, IrfftGradcheck) {
  Rng rng(4);
  Variable re = Param(Tensor::Randn({2, 4, 2}, &rng, 0.5f));
  Variable im = Param(Tensor::Randn({2, 4, 2}, &rng, 0.5f));
  const auto result = autograd::CheckGradients(
      [](const std::vector<Variable>& in) {
        Rng wrng(98);
        Tensor w = Tensor::Randn({2, 6, 2}, &wrng);
        return Sum(autograd::MulConst(Irfft({in[0], in[1]}, 6), w));
      },
      {re, im});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(SpectralOpsTest, FilterPipelineGradcheck) {
  // The exact op composition of the paper's filter step (Eq. 21):
  // irfft(mask . (rfft(x) . W)).
  Rng rng(5);
  Variable x = Param(Tensor::Randn({1, 6, 2}, &rng, 0.5f));
  Variable wre = Param(Tensor::Randn({4, 2}, &rng, 0.5f));
  Variable wim = Param(Tensor::Randn({4, 2}, &rng, 0.5f));
  Tensor mask = Tensor::FromVector({4, 1}, {0, 1, 1, 0});
  const auto result = autograd::CheckGradients(
      [mask](const std::vector<Variable>& in) {
        const SpectralPair s = Rfft(in[0]);
        const SpectralPair filtered =
            MaskSpectrum(ComplexMul(s, {in[1], in[2]}), mask);
        return Sum(Irfft(filtered, 6));
      },
      {x, wre, wim});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(SpectralOpsTest, ComplexMulMatchesManual) {
  // (1 + 2i) * (3 + 4i) = -5 + 10i.
  Variable ar = Param(Tensor::FromVector({1, 1, 1}, {1}));
  Variable ai = Param(Tensor::FromVector({1, 1, 1}, {2}));
  Variable br = Param(Tensor::FromVector({1, 1, 1}, {3}));
  Variable bi = Param(Tensor::FromVector({1, 1, 1}, {4}));
  const SpectralPair p = ComplexMul({ar, ai}, {br, bi});
  EXPECT_FLOAT_EQ(p.re.value()[0], -5.0f);
  EXPECT_FLOAT_EQ(p.im.value()[0], 10.0f);
}

TEST(SpectralOpsTest, MixSpectraConvexCombination) {
  Variable a = Param(Tensor::FromVector({1, 1, 1}, {1}));
  Variable b = Param(Tensor::FromVector({1, 1, 1}, {3}));
  const SpectralPair mixed = MixSpectra({a, a}, {b, b}, 0.25f);
  EXPECT_FLOAT_EQ(mixed.re.value()[0], 1.5f);
  EXPECT_FLOAT_EQ(mixed.im.value()[0], 1.5f);
}

TEST(SpectralOpsTest, PureToneConcentratesInOneBin) {
  // x_t = cos(2 pi k t / N) has energy only in bin k.
  const int64_t n = 16;
  const int64_t k = 3;
  Tensor x({1, n, 1});
  for (int64_t t = 0; t < n; ++t) {
    x.data()[t] = std::cos(2.0 * M_PI * k * t / n);
  }
  const SpectralPair s = Rfft(Param(x));
  const int64_t m = RfftBins(n);
  for (int64_t bin = 0; bin < m; ++bin) {
    const float re = s.re.value()[bin];
    const float im = s.im.value()[bin];
    const float amp = std::sqrt(re * re + im * im);
    if (bin == k) {
      EXPECT_NEAR(amp, n / 2.0, 1e-3);
    } else {
      EXPECT_NEAR(amp, 0.0, 1e-3) << "bin " << bin;
    }
  }
}

}  // namespace
}  // namespace fft
}  // namespace slime

namespace slime {
namespace fft {
namespace {

class VerticalPlanTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(VerticalPlanTest, AgreesWithScalarReferenceForwardAndInverse) {
  const int64_t n = GetParam();
  const int64_t d = 3;
  Rng rng(8000 + n);
  std::vector<float> re(n * d);
  std::vector<float> im(n * d);
  for (auto& v : re) v = rng.Gaussian();
  for (auto& v : im) v = rng.Gaussian();
  for (const bool inverse : {false, true}) {
    std::vector<float> vre = re;
    std::vector<float> vim = im;
    GetVerticalPlan(n).Transform(vre.data(), vim.data(), d, inverse);
    for (int64_t f = 0; f < d; ++f) {
      std::vector<std::complex<double>> col(n);
      for (int64_t t = 0; t < n; ++t) {
        col[t] = {re[t * d + f], im[t * d + f]};
      }
      Fft(&col, inverse);
      for (int64_t t = 0; t < n; ++t) {
        EXPECT_NEAR(vre[t * d + f], col[t].real(), 2e-3 * n)
            << "n=" << n << " inv=" << inverse << " t=" << t;
        EXPECT_NEAR(vim[t * d + f], col[t].imag(), 2e-3 * n);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, VerticalPlanTest,
                         ::testing::Values(1, 2, 4, 8, 16, 25, 32, 50, 64,
                                           75, 100, 128));

// ---------------------------------------------------------------------------
// VerticalRfftPlan: the packed half-spectrum fast path (ISSUE 9 tentpole).
// The size list deliberately straddles every boundary of the mirror
// classification k < (n+1)/2: n=1 (no mirrored bins), n=2 (DC+Nyquist only),
// odd n (no Nyquist), pow2 and Bluestein lengths.
// ---------------------------------------------------------------------------

class VerticalRfftPlanTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(VerticalRfftPlanTest, ForwardMatchesNaiveDft) {
  const int64_t n = GetParam();
  const int64_t d = 3;
  const int64_t m = RfftBins(n);
  Rng rng(9000 + n);
  std::vector<float> x(n * d);
  for (auto& v : x) v = rng.Gaussian();
  std::vector<float> re(m * d);
  std::vector<float> im(m * d);
  GetVerticalRfftPlan(n).Forward(x.data(), d, re.data(), im.data());
  for (int64_t f = 0; f < d; ++f) {
    std::vector<std::complex<double>> col(n);
    for (int64_t t = 0; t < n; ++t) col[t] = {x[t * d + f], 0.0};
    std::vector<std::complex<double>> naive;
    NaiveDft(col, &naive, false);
    for (int64_t k = 0; k < m; ++k) {
      EXPECT_NEAR(re[k * d + f], naive[k].real(), 1e-4 * std::max<int64_t>(n, 8))
          << "n=" << n << " k=" << k;
      EXPECT_NEAR(im[k * d + f], naive[k].imag(), 1e-4 * std::max<int64_t>(n, 8))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST_P(VerticalRfftPlanTest, ForwardMatchesScalarReference) {
  const int64_t n = GetParam();
  const int64_t d = 4;
  const int64_t m = RfftBins(n);
  Rng rng(9100 + n);
  std::vector<float> x(n * d);
  for (auto& v : x) v = rng.Gaussian();
  std::vector<float> re(m * d);
  std::vector<float> im(m * d);
  GetVerticalRfftPlan(n).Forward(x.data(), d, re.data(), im.data());
  std::vector<float> col(n);
  std::vector<float> sre(m);
  std::vector<float> sim(m);
  for (int64_t f = 0; f < d; ++f) {
    for (int64_t t = 0; t < n; ++t) col[t] = x[t * d + f];
    RfftForward(col.data(), n, sre.data(), sim.data());
    for (int64_t k = 0; k < m; ++k) {
      EXPECT_NEAR(re[k * d + f], sre[k], 2e-3) << "n=" << n << " k=" << k;
      EXPECT_NEAR(im[k * d + f], sim[k], 2e-3) << "n=" << n << " k=" << k;
    }
  }
}

TEST_P(VerticalRfftPlanTest, InverseMatchesScalarReference) {
  // Random half spectra, including nonzero DC/Nyquist imaginary parts: the
  // plan must ignore them exactly like IrfftForward does.
  const int64_t n = GetParam();
  const int64_t d = 4;
  const int64_t m = RfftBins(n);
  Rng rng(9200 + n);
  std::vector<float> re(m * d);
  std::vector<float> im(m * d);
  for (auto& v : re) v = rng.Gaussian();
  for (auto& v : im) v = rng.Gaussian();
  std::vector<float> x(n * d);
  GetVerticalRfftPlan(n).Inverse(re.data(), im.data(), d, x.data(),
                                 1.0f / static_cast<float>(n));
  std::vector<float> cre(m);
  std::vector<float> cim(m);
  std::vector<float> sx(n);
  for (int64_t f = 0; f < d; ++f) {
    for (int64_t k = 0; k < m; ++k) {
      cre[k] = re[k * d + f];
      cim[k] = im[k * d + f];
    }
    IrfftForward(cre.data(), cim.data(), n, sx.data());
    for (int64_t t = 0; t < n; ++t) {
      EXPECT_NEAR(x[t * d + f], sx[t], 2e-3) << "n=" << n << " t=" << t;
    }
  }
}

TEST_P(VerticalRfftPlanTest, RoundTripRecoversSignal) {
  const int64_t n = GetParam();
  const int64_t d = 5;
  const int64_t m = RfftBins(n);
  Rng rng(9300 + n);
  std::vector<float> x(n * d);
  for (auto& v : x) v = rng.Gaussian();
  std::vector<float> re(m * d);
  std::vector<float> im(m * d);
  const VerticalRfftPlan& plan = GetVerticalRfftPlan(n);
  ASSERT_EQ(plan.n(), n);
  ASSERT_EQ(plan.bins(), m);
  plan.Forward(x.data(), d, re.data(), im.data());
  std::vector<float> back(n * d);
  plan.Inverse(re.data(), im.data(), d, back.data(),
               1.0f / static_cast<float>(n));
  for (int64_t i = 0; i < n * d; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-4) << "n=" << n << " i=" << i;
  }
}

TEST_P(VerticalRfftPlanTest, InverseIgnoresDcAndNyquistImaginary) {
  // The irfft operator contract: x = Re(...) kills the DC and (even n)
  // Nyquist imaginary inputs, so perturbing them must not change a single
  // output bit. This is what makes the exact-adjoint routing sound
  // (MATH_NOTES.md section 8).
  const int64_t n = GetParam();
  const int64_t d = 2;
  const int64_t m = RfftBins(n);
  Rng rng(9400 + n);
  std::vector<float> re(m * d);
  std::vector<float> im(m * d, 0.0f);
  for (auto& v : re) v = rng.Gaussian();
  const VerticalRfftPlan& plan = GetVerticalRfftPlan(n);
  std::vector<float> x0(n * d);
  plan.Inverse(re.data(), im.data(), d, x0.data(), 1.0f);
  for (int64_t f = 0; f < d; ++f) {
    im[f] = 42.0f;  // DC imaginary
    if (n % 2 == 0 && n > 1) im[(m - 1) * d + f] = -17.0f;  // Nyquist
  }
  std::vector<float> x1(n * d);
  plan.Inverse(re.data(), im.data(), d, x1.data(), 1.0f);
  for (int64_t i = 0; i < n * d; ++i) {
    EXPECT_EQ(x0[i], x1[i]) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, VerticalRfftPlanTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 50, 64,
                                           75, 100, 128));

TEST(VerticalRfftPlanTest, PlanCachesSurviveConcurrentFirstUse) {
  // Race the process-wide plan caches on purpose (this test runs under TSan
  // in CI): many threads request overlapping lengths and immediately use
  // the returned plans.
  const int64_t lengths[] = {6, 9, 20, 27, 33};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t, &lengths]() {
      for (int64_t n : lengths) {
        const int64_t m = RfftBins(n);
        const int64_t d = 2;
        std::vector<float> x(n * d, 0.25f * static_cast<float>(t + 1));
        std::vector<float> re(m * d);
        std::vector<float> im(m * d);
        const VerticalRfftPlan& plan = GetVerticalRfftPlan(n);
        plan.Forward(x.data(), d, re.data(), im.data());
        std::vector<float> back(n * d);
        plan.Inverse(re.data(), im.data(), d, back.data(),
                     1.0f / static_cast<float>(n));
        for (int64_t i = 0; i < n * d; ++i) {
          EXPECT_NEAR(back[i], x[i], 1e-4);
        }
        std::vector<float> cre(n * d, 1.0f);
        std::vector<float> cim(n * d, 0.0f);
        GetVerticalPlan(n).Transform(cre.data(), cim.data(), d, false);
      }
    });
  }
  for (auto& th : threads) th.join();
}

// ---------------------------------------------------------------------------
// Path-parity tests for the autograd ops: the packed path and the
// full-complex reference must implement the same linear operator, forward
// and backward, for every boundary size.
// ---------------------------------------------------------------------------

class SpectralPathTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SpectralPathTest, ForwardAgreesAcrossPaths) {
  const int64_t n = GetParam();
  Rng rng(9500 + n);
  Tensor xt = Tensor::Randn({2, n, 3}, &rng);
  RfftPathGuard packed(RfftPath::kPacked);
  const SpectralPair sp = Rfft(Param(xt.Clone()));
  Variable yp = Irfft(sp, n);
  SpectralPair sr;
  Variable yr;
  {
    RfftPathGuard reference(RfftPath::kFullComplex);
    sr = Rfft(Param(xt.Clone()));
    yr = Irfft(sr, n);
  }
  for (int64_t i = 0; i < sp.re.numel(); ++i) {
    EXPECT_NEAR(sp.re.value()[i], sr.re.value()[i], 2e-3) << "n=" << n;
    EXPECT_NEAR(sp.im.value()[i], sr.im.value()[i], 2e-3) << "n=" << n;
  }
  for (int64_t i = 0; i < yp.numel(); ++i) {
    EXPECT_NEAR(yp.value()[i], yr.value()[i], 2e-3) << "n=" << n;
  }
}

TEST_P(SpectralPathTest, RfftAdjointIdentityOnBothPaths) {
  // <F x, g> == <x, F^T g> through the actual autograd backward, so the op
  // adjoint (not just the plan) is what is being checked.
  const int64_t n = GetParam();
  const int64_t m = RfftBins(n);
  for (const RfftPath path : {RfftPath::kPacked, RfftPath::kFullComplex}) {
    RfftPathGuard guard(path);
    Rng rng(9600 + n);
    Variable x = Param(Tensor::Randn({1, n, 2}, &rng));
    Tensor g_re = Tensor::Randn({1, m, 2}, &rng);
    Tensor g_im = Tensor::Randn({1, m, 2}, &rng);
    const SpectralPair s = Rfft(x);
    Variable loss = autograd::Add(Sum(autograd::MulConst(s.re, g_re)),
                                  Sum(autograd::MulConst(s.im, g_im)));
    loss.Backward();
    double lhs = 0.0;
    for (int64_t i = 0; i < s.re.numel(); ++i) {
      lhs += double(s.re.value()[i]) * g_re[i] +
             double(s.im.value()[i]) * g_im[i];
    }
    double rhs = 0.0;
    for (int64_t i = 0; i < x.numel(); ++i) {
      rhs += double(x.value()[i]) * x.grad()[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)))
        << "n=" << n << " packed=" << (path == RfftPath::kPacked);
  }
}

TEST_P(SpectralPathTest, IrfftAdjointIdentityOnBothPaths) {
  const int64_t n = GetParam();
  const int64_t m = RfftBins(n);
  for (const RfftPath path : {RfftPath::kPacked, RfftPath::kFullComplex}) {
    RfftPathGuard guard(path);
    Rng rng(9700 + n);
    Variable re = Param(Tensor::Randn({1, m, 2}, &rng));
    Variable im = Param(Tensor::Randn({1, m, 2}, &rng));
    Tensor g = Tensor::Randn({1, n, 2}, &rng);
    Variable y = Irfft({re, im}, n);
    Sum(autograd::MulConst(y, g)).Backward();
    double lhs = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i) {
      lhs += double(y.value()[i]) * g[i];
    }
    double rhs = 0.0;
    for (int64_t i = 0; i < re.numel(); ++i) {
      rhs += double(re.value()[i]) * re.grad()[i] +
             double(im.value()[i]) * im.grad()[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)))
        << "n=" << n << " packed=" << (path == RfftPath::kPacked);
  }
}

TEST_P(SpectralPathTest, GradcheckOnBothPaths) {
  const int64_t n = GetParam();
  const int64_t m = RfftBins(n);
  for (const RfftPath path : {RfftPath::kPacked, RfftPath::kFullComplex}) {
    RfftPathGuard guard(path);
    Rng rng(9800 + n);
    Variable x = Param(Tensor::Randn({1, n, 2}, &rng, 0.5f));
    const auto result = autograd::CheckGradients(
        [n, m](const std::vector<Variable>& in) {
          const SpectralPair s = Rfft(in[0]);
          Rng wrng(97);
          Tensor w1 = Tensor::Randn({1, m, 2}, &wrng);
          Tensor w2 = Tensor::Randn({1, m, 2}, &wrng);
          Tensor w3 = Tensor::Randn({1, n, 2}, &wrng);
          const SpectralPair weighted{autograd::MulConst(s.re, w1),
                                      autograd::MulConst(s.im, w2)};
          return Sum(autograd::MulConst(Irfft(weighted, n), w3));
        },
        {x});
    EXPECT_TRUE(result.ok)
        << "n=" << n << " packed=" << (path == RfftPath::kPacked) << " "
        << result.message;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, SpectralPathTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 50, 64));

}  // namespace
}  // namespace fft
}  // namespace slime
