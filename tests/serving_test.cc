#include "serving/recommendation_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "compute/thread_pool.h"
#include "core/slime4rec.h"
#include "models/model_factory.h"

namespace slime {
namespace serving {
namespace {

core::Slime4RecConfig SmallConfig() {
  core::Slime4RecConfig c;
  c.num_items = 25;
  c.num_users = 5;
  c.max_len = 8;
  c.hidden_dim = 8;
  c.num_layers = 1;
  c.mixer.alpha = 1.0;
  c.seed = 19;
  return c;
}

TEST(ServingTest, ReturnsKRankedItems) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  RecommendOptions options;
  options.top_k = 5;
  const auto recs = service.Recommend({1, 2, 3}, options).value();
  ASSERT_EQ(recs.size(), 5u);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].score, recs[i].score);  // descending
  }
  std::set<int64_t> unique;
  for (const auto& r : recs) {
    EXPECT_GE(r.item, 1);
    EXPECT_LE(r.item, 25);
    unique.insert(r.item);
  }
  EXPECT_EQ(unique.size(), recs.size());
}

TEST(ServingTest, ExcludeSeenFiltersHistory) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  const std::vector<int64_t> history = {4, 9, 17};
  RecommendOptions options;
  options.top_k = 22;
  const auto recs = service.Recommend(history, options).value();
  // 25 items - 3 seen = 22 remain.
  ASSERT_EQ(recs.size(), 22u);
  for (const auto& r : recs) {
    EXPECT_TRUE(std::find(history.begin(), history.end(), r.item) ==
                history.end());
  }
}

TEST(ServingTest, ExcludeSeenOffKeepsHistoryItems) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  RecommendOptions options;
  options.top_k = 25;
  options.exclude_seen = false;
  const auto recs = service.Recommend({4, 9, 17}, options).value();
  EXPECT_EQ(recs.size(), 25u);
}

TEST(ServingTest, ExplicitBlocklistApplies) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  RecommendOptions options;
  options.top_k = 25;
  options.exclude_seen = false;
  options.exclude_items = {1, 2, 3, 4, 5};
  const auto recs = service.Recommend({10}, options).value();
  EXPECT_EQ(recs.size(), 20u);
  for (const auto& r : recs) {
    EXPECT_GT(r.item, 5);
  }
}

TEST(ServingTest, BatchMatchesSingleRequests) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  const std::vector<std::vector<int64_t>> histories = {{1, 2}, {7, 8, 9}};
  RecommendOptions options;
  options.top_k = 4;
  const auto batched = service.RecommendBatch(histories, options).value();
  ASSERT_EQ(batched.size(), 2u);
  for (size_t i = 0; i < histories.size(); ++i) {
    const auto single = service.Recommend(histories[i], options).value();
    ASSERT_EQ(single.size(), batched[i].size());
    for (size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(single[j].item, batched[i][j].item) << i << "," << j;
      EXPECT_NEAR(single[j].score, batched[i][j].score, 1e-4);
    }
  }
}

TEST(ServingTest, RestoresTrainingMode) {
  core::Slime4Rec model(SmallConfig());
  model.SetTraining(true);
  RecommendationService service(&model);
  RecommendOptions options;
  options.top_k = 3;
  ASSERT_TRUE(service.Recommend({1}, options).ok());
  EXPECT_TRUE(model.training());
}

TEST(ServingTest, LongHistoryTruncatedToMostRecent) {
  // Histories longer than max_len must not crash and should use the most
  // recent items (PadTruncate semantics).
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  std::vector<int64_t> history;
  for (int i = 0; i < 40; ++i) history.push_back(1 + (i % 25));
  RecommendOptions options;
  options.top_k = 3;
  // The 40-item history covers the whole catalogue; keep seen items so
  // candidates remain.
  options.exclude_seen = false;
  const auto recs = service.Recommend(history, options).value();
  EXPECT_EQ(recs.size(), 3u);
}

TEST(ServingTest, WorksWithEveryZooModel) {
  models::ModelConfig c;
  c.num_items = 15;
  c.num_users = 4;
  c.max_len = 8;
  c.hidden_dim = 8;
  c.num_layers = 1;
  c.num_heads = 2;
  for (const auto& name : models::AllModelNames()) {
    auto model = models::CreateModel(name, c);
    RecommendationService service(model.get());
    RecommendOptions options;
    options.top_k = 3;
    const auto recs = service.Recommend({3, 5}, options).value();
    EXPECT_EQ(recs.size(), 3u) << name;
  }
}

TEST(ServingTest, TopKFromScoresTieBreaksByItemId) {
  std::vector<float> row = {0.0f, 1.0f, 1.0f, 1.0f};
  std::vector<bool> excluded(4, false);
  const auto recs = TopKFromScores(row.data(), 3, 2, excluded);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 1);
  EXPECT_EQ(recs[1].item, 2);
}

TEST(ServingTest, TopKAllEqualScoresYieldAscendingItemIds) {
  // A fully tied score row must come back as ascending item ids, not in
  // whatever order partial_sort visited them.
  std::vector<float> row(26, 7.5f);
  std::vector<bool> excluded(26, false);
  const auto recs = TopKFromScores(row.data(), 25, 6, excluded);
  ASSERT_EQ(recs.size(), 6u);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(recs[i].item, i + 1);
  }
}

TEST(ServingTest, TopKTieBreakRespectsExclusions) {
  std::vector<float> row = {0.0f, 1.0f, 2.0f, 2.0f, 2.0f, 1.0f};
  std::vector<bool> excluded = {false, false, false, true, false, false};
  const auto recs = TopKFromScores(row.data(), 5, 5, excluded);
  ASSERT_EQ(recs.size(), 4u);  // item 3 excluded
  EXPECT_EQ(recs[0].item, 2);  // score-2 tie: lowest surviving id first
  EXPECT_EQ(recs[1].item, 4);
  EXPECT_EQ(recs[2].item, 1);  // score-1 tie: id 1 before id 5
  EXPECT_EQ(recs[3].item, 5);
}

TEST(ServingTest, RankingsBitIdenticalAcrossThreadCounts) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  const std::vector<std::vector<int64_t>> histories = {
      {1, 2, 3}, {4, 5}, {6, 7, 8, 9, 10}, {11}};
  RecommendOptions options;
  options.top_k = 10;
  auto run = [&](int threads) {
    compute::ComputeContext ctx(threads);
    return service.RecommendBatch(histories, options).value();
  };
  const auto base = run(1);
  for (const int threads : {2, 8}) {
    const auto other = run(threads);
    ASSERT_EQ(other.size(), base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      ASSERT_EQ(other[i].size(), base[i].size()) << threads;
      for (size_t j = 0; j < base[i].size(); ++j) {
        EXPECT_EQ(other[i][j].item, base[i][j].item) << threads;
        // Exact float equality on purpose: the contract is bit-identity.
        EXPECT_EQ(other[i][j].score, base[i][j].score) << threads;
      }
    }
  }
}

// --- Untrusted-input hardening -------------------------------------------

TEST(ServingValidationTest, RejectsOutOfCatalogueItemIds) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  for (const int64_t bad : {int64_t{0}, int64_t{-3}, int64_t{26},
                            int64_t{1000000}}) {
    const auto r = service.Recommend({1, bad, 2});
    ASSERT_FALSE(r.ok()) << "item " << bad;
    EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
    EXPECT_NE(r.status().message().find(std::to_string(bad)),
              std::string::npos)
        << r.status().message();
  }
}

TEST(ServingValidationTest, RejectsEmptyHistory) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  const auto single = service.Recommend({});
  ASSERT_FALSE(single.ok());
  EXPECT_EQ(single.status().code(), Status::Code::kInvalidArgument);
  // A batch with one empty history among valid ones is rejected whole.
  const auto batch = service.RecommendBatch({{1, 2}, {}, {3}});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(batch.status().message().find("history 1"), std::string::npos)
      << batch.status().message();
}

TEST(ServingValidationTest, EmptyBatchYieldsEmptyResult) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  const auto r = service.RecommendBatch({});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(ServingValidationTest, RejectsNonPositiveTopK) {
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  RecommendOptions options;
  options.top_k = 0;
  const auto r = service.Recommend({1, 2}, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(ServingValidationTest, OutOfRangeBlocklistEntriesIgnored) {
  // The blocklist is operator configuration, not user input: out-of-range
  // entries (e.g. for items not in this shard) are skipped, not an error.
  core::Slime4Rec model(SmallConfig());
  RecommendationService service(&model);
  RecommendOptions options;
  options.top_k = 25;
  options.exclude_seen = false;
  options.exclude_items = {-5, 0, 26, 9999};
  const auto recs = service.Recommend({10}, options).value();
  EXPECT_EQ(recs.size(), 25u);
}

}  // namespace
}  // namespace serving
}  // namespace slime
