#!/bin/sh
# End-to-end smoke test of the slime4rec_cli binary: generate -> stats ->
# train+save -> evaluate (checkpoint round-trip) -> recommend.
set -e
CLI="$1"
TMP="${TMPDIR:-/tmp}/slime_cli_test_$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

"$CLI" generate --preset beauty-sim --scale 0.08 --out "$TMP/data.txt"
"$CLI" stats --data "$TMP/data.txt" | grep -q users
"$CLI" train --data "$TMP/data.txt" --epochs 2 --save "$TMP/m.ckpt" \
    > "$TMP/train.log"
grep -q "^test" "$TMP/train.log"
"$CLI" evaluate --data "$TMP/data.txt" --load "$TMP/m.ckpt" > "$TMP/eval.log"
# The evaluate metrics must match the post-training test metrics exactly
# (checkpoint round-trip determinism).
TRAIN_LINE=$(grep '^test' "$TMP/train.log" | tr -s ' ')
EVAL_LINE=$(grep '^test' "$TMP/eval.log" | tr -s ' ')
[ "$TRAIN_LINE" = "$EVAL_LINE" ] || { echo "metric mismatch:"; echo "$TRAIN_LINE"; echo "$EVAL_LINE"; exit 1; }
"$CLI" recommend --data "$TMP/data.txt" --load "$TMP/m.ckpt" --user 0 --topk 3 | grep -q top-3
# Error paths: bad preset and missing file must fail cleanly.
if "$CLI" generate --preset not-a-preset --out "$TMP/x.txt" 2>/dev/null; then
  echo "expected bad preset to fail"; exit 1
fi
if "$CLI" stats --data /nonexistent/file.txt 2>/dev/null; then
  echo "expected missing file to fail"; exit 1
fi
echo "cli_test OK"
