#!/bin/sh
# End-to-end smoke test of the slime4rec_cli binary: generate -> stats ->
# train+save -> evaluate (checkpoint round-trip) -> recommend.
set -e
CLI="$1"
TMP="${TMPDIR:-/tmp}/slime_cli_test_$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

"$CLI" generate --preset beauty-sim --scale 0.08 --out "$TMP/data.txt"
"$CLI" stats --data "$TMP/data.txt" | grep -q users
"$CLI" train --data "$TMP/data.txt" --epochs 2 --save "$TMP/m.ckpt" \
    > "$TMP/train.log"
grep -q "^test" "$TMP/train.log"
"$CLI" evaluate --data "$TMP/data.txt" --load "$TMP/m.ckpt" > "$TMP/eval.log"
# The evaluate metrics must match the post-training test metrics exactly
# (checkpoint round-trip determinism).
TRAIN_LINE=$(grep '^test' "$TMP/train.log" | tr -s ' ')
EVAL_LINE=$(grep '^test' "$TMP/eval.log" | tr -s ' ')
[ "$TRAIN_LINE" = "$EVAL_LINE" ] || { echo "metric mismatch:"; echo "$TRAIN_LINE"; echo "$EVAL_LINE"; exit 1; }
"$CLI" recommend --data "$TMP/data.txt" --load "$TMP/m.ckpt" --user 0 --topk 3 | grep -q top-3
# Fault tolerance: an interrupted run resumed from its snapshot must end
# with exactly the metrics of an uninterrupted run of the same length.
"$CLI" train --data "$TMP/data.txt" --epochs 4 > "$TMP/full.log"
FULL_LINE=$(grep '^test' "$TMP/full.log" | tr -s ' ')
"$CLI" train --data "$TMP/data.txt" --epochs 2 \
    --checkpoint-dir "$TMP/ckpts" --checkpoint-every 1 > /dev/null
[ -f "$TMP/ckpts/train_state.slt" ] || { echo "no snapshot written"; exit 1; }
[ -f "$TMP/ckpts/best_model.ckpt" ] || { echo "no best model written"; exit 1; }
"$CLI" train --data "$TMP/data.txt" --epochs 4 \
    --checkpoint-dir "$TMP/ckpts" --resume "$TMP/ckpts" > "$TMP/resume.log"
grep -q "resumed from" "$TMP/resume.log"
RESUME_LINE=$(grep '^test' "$TMP/resume.log" | tr -s ' ')
[ "$FULL_LINE" = "$RESUME_LINE" ] || { echo "resume metric mismatch:"; echo "$FULL_LINE"; echo "$RESUME_LINE"; exit 1; }
# Resuming from a directory with no snapshot must fail cleanly.
if "$CLI" train --data "$TMP/data.txt" --epochs 2 \
    --resume "$TMP/empty_ckpts" 2>/dev/null >/dev/null; then
  echo "expected resume from missing snapshot to fail"; exit 1
fi
# Serving: the model server answers traffic from the trained checkpoint.
"$CLI" serve --data "$TMP/data.txt" --load "$TMP/m.ckpt" --requests 8 \
    > "$TMP/serve.log"
grep -q "health: serving" "$TMP/serve.log"
grep -q "requests ok 8" "$TMP/serve.log"
# Hot reload halfway through traffic must install and keep serving.
"$CLI" serve --data "$TMP/data.txt" --load "$TMP/m.ckpt" --requests 8 \
    --reload "$TMP/m.ckpt" > "$TMP/serve_reload.log"
grep -q "installed" "$TMP/serve_reload.log"
grep -q "requests ok 8" "$TMP/serve_reload.log"
# Observability: --metrics-out writes JSONL with self-describing lines.
"$CLI" train --data "$TMP/data.txt" --epochs 2 \
    --metrics-out "$TMP/train_metrics.jsonl" > /dev/null
[ -s "$TMP/train_metrics.jsonl" ] || { echo "no train metrics"; exit 1; }
grep -q '^{"type":"epoch"' "$TMP/train_metrics.jsonl"
grep -q '"type":"fit_summary"' "$TMP/train_metrics.jsonl"
grep -q '"type":"counter","name":"compute.regions"' "$TMP/train_metrics.jsonl"
# Every line is a JSON object with a leading type field.
if grep -vq '^{"type":"' "$TMP/train_metrics.jsonl"; then
  echo "malformed train metrics line"; exit 1
fi
"$CLI" serve --data "$TMP/data.txt" --load "$TMP/m.ckpt" --requests 8 \
    --metrics-out "$TMP/serve_metrics.jsonl" > "$TMP/serve_obs.log"
grep -q "requests ok 8" "$TMP/serve_obs.log"
grep -q '"type":"counter","name":"serving.requests","value":8' \
    "$TMP/serve_metrics.jsonl"
grep -q '"type":"histogram","name":"serving.request_nanos"' \
    "$TMP/serve_metrics.jsonl"
grep -q '"type":"trace"' "$TMP/serve_metrics.jsonl"
grep -q '"type":"gauge","name":"serving.health","value":1' \
    "$TMP/serve_metrics.jsonl"
if grep -vq '^{"type":"' "$TMP/serve_metrics.jsonl"; then
  echo "malformed serve metrics line"; exit 1
fi
# Cluster mode: --shards boots a replicated fleet behind the same flag
# surface; --reload becomes a rolling per-shard reload.
"$CLI" serve --data "$TMP/data.txt" --load "$TMP/m.ckpt" --requests 8 \
    --shards 3 --replication 2 --reload "$TMP/m.ckpt" \
    --metrics-out "$TMP/cluster_metrics.jsonl" > "$TMP/serve_cluster.log"
grep -q "cluster health: serving (3 shards, replication 2)" \
    "$TMP/serve_cluster.log"
grep -q "rolling reload .* installed on all shards" "$TMP/serve_cluster.log"
grep -q "requests ok 8" "$TMP/serve_cluster.log"
grep -q '"type":"counter","name":"cluster.requests","value":8' \
    "$TMP/cluster_metrics.jsonl"
grep -q '"type":"gauge","name":"cluster.health","value":0' \
    "$TMP/cluster_metrics.jsonl"
# Invalid --threads values must be rejected up front, not crash or hang.
for bad in 0 -3 abc 99999; do
  if "$CLI" stats --data "$TMP/data.txt" --threads "$bad" 2>/dev/null; then
    echo "expected --threads $bad to fail"; exit 1
  fi
done
# Kernel backend selection: explicit scalar works everywhere, auto resolves
# to a concrete tier, and unknown names are rejected naming the valid set.
"$CLI" evaluate --data "$TMP/data.txt" --load "$TMP/m.ckpt" \
    --kernel-backend scalar > "$TMP/backend_scalar.log"
grep -q "kernel backend: scalar" "$TMP/backend_scalar.log"
"$CLI" evaluate --data "$TMP/data.txt" --load "$TMP/m.ckpt" \
    --kernel-backend auto > "$TMP/backend_auto.log"
grep -Eq "kernel backend: (scalar|simd)" "$TMP/backend_auto.log"
# On hosts without AVX2 (simulated by the SLIME_DISABLE_AVX2 kill switch)
# auto must fall back to scalar and an explicit simd request must fail.
SLIME_DISABLE_AVX2=1 "$CLI" evaluate --data "$TMP/data.txt" \
    --load "$TMP/m.ckpt" --kernel-backend auto > "$TMP/backend_fb.log"
grep -q "kernel backend: scalar" "$TMP/backend_fb.log"
if SLIME_DISABLE_AVX2=1 "$CLI" evaluate --data "$TMP/data.txt" \
    --load "$TMP/m.ckpt" --kernel-backend simd 2>/dev/null >/dev/null; then
  echo "expected simd on a non-AVX2 host to fail"; exit 1
fi
# The environment variable selects the backend when no flag is given.
SLIME_KERNEL_BACKEND=scalar "$CLI" evaluate --data "$TMP/data.txt" \
    --load "$TMP/m.ckpt" > "$TMP/backend_env.log"
grep -q "kernel backend: scalar" "$TMP/backend_env.log"
if "$CLI" stats --data "$TMP/data.txt" --kernel-backend neon \
    2>"$TMP/badbackend.err"; then
  echo "expected unknown kernel backend to fail"; exit 1
fi
grep -q "valid: auto, scalar, simd" "$TMP/badbackend.err"
# Validated ingestion: a corrupt dataset fails under the default strict
# policy naming the offending line, loads under --data-policy repair, and
# --quarantine-out captures the damage as JSONL.
cp "$TMP/data.txt" "$TMP/corrupt.txt"
printf '3 oops 5\n' >> "$TMP/corrupt.txt"
if "$CLI" stats --data "$TMP/corrupt.txt" 2>"$TMP/strict.err"; then
  echo "expected strict load of corrupt data to fail"; exit 1
fi
grep -q "non-numeric token at line" "$TMP/strict.err"
"$CLI" stats --data "$TMP/corrupt.txt" --data-policy repair \
    --quarantine-out "$TMP/quarantine.jsonl" > "$TMP/repair.log"
grep -q users "$TMP/repair.log"
grep -q "quarantined" "$TMP/repair.log"
grep -q '"type":"quarantine_summary"' "$TMP/quarantine.jsonl"
grep -q '"non_numeric_token":1' "$TMP/quarantine.jsonl"
grep -q '"token":"oops"' "$TMP/quarantine.jsonl"
if grep -vq '^{"type":"' "$TMP/quarantine.jsonl"; then
  echo "malformed quarantine line"; exit 1
fi
# An unknown policy is rejected up front.
if "$CLI" stats --data "$TMP/data.txt" --data-policy lenient 2>/dev/null; then
  echo "expected unknown data policy to fail"; exit 1
fi
# Durable streaming state: append-events persists an event log that a
# second invocation recovers from disk.
printf '1 11 12 13\n2 21 22\n' > "$TMP/events.txt"
"$CLI" append-events --state-dir "$TMP/state" --events "$TMP/events.txt" \
    --compact 1 > "$TMP/append.log"
grep -q "state recovered: 0 record(s) replayed" "$TMP/append.log"
grep -q "appended 2 event(s) (5 item(s)); 2 user(s), last_seq 2" \
    "$TMP/append.log"
grep -q "compacted: snapshot covers 2 user(s)" "$TMP/append.log"
printf '1 14\n' > "$TMP/events2.txt"
"$CLI" append-events --state-dir "$TMP/state" --events "$TMP/events2.txt" \
    > "$TMP/append2.log"
grep -q "2 user(s), sync group" "$TMP/append2.log"
grep -q "last_seq 3" "$TMP/append2.log"
# A torn WAL tail (garbage appended to the log) is detected, truncated and
# accounted during recovery — never served.
printf 'garbage-tail' >> "$TMP/state/state.wal"
"$CLI" append-events --state-dir "$TMP/state" --events "$TMP/events2.txt" \
    > "$TMP/append3.log"
grep -q "torn tail repaired" "$TMP/append3.log"
# Serving with --state-dir streams session traffic through the store and
# compacts on shutdown; a rerun recovers the users from the snapshot.
"$CLI" serve --data "$TMP/data.txt" --load "$TMP/m.ckpt" --requests 8 \
    --state-dir "$TMP/serve_state" --state-sync always > "$TMP/serve_state.log"
grep -q "state recovered: 0 record(s) replayed" "$TMP/serve_state.log"
grep -q "compaction ok" "$TMP/serve_state.log"
grep -q "requests ok 8" "$TMP/serve_state.log"
"$CLI" serve --data "$TMP/data.txt" --load "$TMP/m.ckpt" --requests 8 \
    --state-dir "$TMP/serve_state" > "$TMP/serve_state2.log"
grep -q "8 user(s), sync group" "$TMP/serve_state2.log"
grep -q "requests ok 8" "$TMP/serve_state2.log"
# Cluster mode shards the store: one directory per shard, replicated appends.
"$CLI" serve --data "$TMP/data.txt" --load "$TMP/m.ckpt" --requests 8 \
    --shards 2 --state-dir "$TMP/cluster_state" > "$TMP/serve_cstate.log"
grep -q "state shard 0 recovered" "$TMP/serve_cstate.log"
grep -q "state shard 1 recovered" "$TMP/serve_cstate.log"
grep -q "replicated append(s) across 2 shard store(s)" "$TMP/serve_cstate.log"
[ -f "$TMP/cluster_state/shard_0/state.wal" ] || { echo "no shard 0 wal"; exit 1; }
# Anti-entropy: --repair-on-restore / --read-repair arm hinted handoff,
# the post-restore digest sweep, and serve-path divergence healing; the
# run reports the anti-entropy counters (all zero without a shard kill).
"$CLI" serve --data "$TMP/data.txt" --load "$TMP/m.ckpt" --requests 8 \
    --shards 2 --state-dir "$TMP/cluster_state" --repair-on-restore 1 \
    --read-repair 1 > "$TMP/serve_ae.log"
grep -q "anti-entropy: 0 underreplicated append(s), 0 hint(s) queued" \
    "$TMP/serve_ae.log"
grep -q "requests ok 8" "$TMP/serve_ae.log"
# Offline repair: plant divergence by appending one extra event into shard
# 0's store only, then the `repair` sweep back-fills the lagging replica
# through the durable append path and a second sweep is a no-op.
printf '1 99\n' > "$TMP/diverge.txt"
"$CLI" append-events --state-dir "$TMP/cluster_state/shard_0" \
    --events "$TMP/diverge.txt" > /dev/null
"$CLI" repair --state-dir "$TMP/cluster_state" --shards 2 > "$TMP/repair1.log"
grep -q "1 repaired, 1 item(s) transferred, 0 conflict(s)" "$TMP/repair1.log"
"$CLI" repair --state-dir "$TMP/cluster_state" --shards 2 > "$TMP/repair2.log"
grep -q "0 repaired, 0 item(s) transferred, 0 conflict(s)" "$TMP/repair2.log"
# A single-shard fleet has nothing to repair against; reject up front.
if "$CLI" repair --state-dir "$TMP/cluster_state" --shards 1 2>/dev/null; then
  echo "expected repair with --shards 1 to fail"; exit 1
fi
# An unknown sync mode is rejected up front naming the valid set.
if "$CLI" append-events --state-dir "$TMP/state" --events "$TMP/events.txt" \
    --state-sync sometimes 2>"$TMP/badsync.err"; then
  echo "expected unknown state sync mode to fail"; exit 1
fi
grep -q "valid: always, group, none" "$TMP/badsync.err"
# Error paths: bad preset and missing file must fail cleanly.
if "$CLI" generate --preset not-a-preset --out "$TMP/x.txt" 2>/dev/null; then
  echo "expected bad preset to fail"; exit 1
fi
if "$CLI" stats --data /nonexistent/file.txt 2>/dev/null; then
  echo "expected missing file to fail"; exit 1
fi
echo "cli_test OK"
