#include "analysis/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "fft/fft.h"

namespace slime {
namespace analysis {
namespace {

TEST(SpectrumTest, NormalizedSumsToOne) {
  const data::InteractionDataset d = data::GenerateSynthetic(
      data::BeautySimConfig(0.1));
  const SpectrumProfile p = ComputeSpectrumProfile(d, 16);
  double sum = 0.0;
  for (double v : p.normalized) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(static_cast<int64_t>(p.amplitude.size()), fft::RfftBins(16));
}

TEST(SpectrumTest, BandsPartitionNonDcEnergy) {
  const data::InteractionDataset d = data::GenerateSynthetic(
      data::SportsSimConfig(0.1));
  const SpectrumProfile p = ComputeSpectrumProfile(d, 32);
  EXPECT_NEAR(p.low_band + p.mid_band + p.high_band, 1.0, 1e-9);
  EXPECT_GE(p.entropy, 0.0);
}

TEST(SpectrumTest, DeterministicForSeed) {
  const data::InteractionDataset d = data::GenerateSynthetic(
      data::YelpSimConfig(0.1));
  const SpectrumProfile a = ComputeSpectrumProfile(d, 16, 8, 7);
  const SpectrumProfile b = ComputeSpectrumProfile(d, 16, 8, 7);
  EXPECT_EQ(a.amplitude, b.amplitude);
}

TEST(SpectrumTest, PeriodicDataConcentratesEnergyAtItsFrequency) {
  // A dataset where every user alternates between two items with period 2
  // puts its non-DC energy at the Nyquist region.
  std::vector<std::vector<int64_t>> seqs;
  for (int u = 0; u < 50; ++u) {
    std::vector<int64_t> s;
    for (int t = 0; t < 16; ++t) s.push_back(1 + (t % 2));
    seqs.push_back(s);
  }
  const data::InteractionDataset d("alternating", seqs, 2);
  // Raw codes: smoothing would average the two co-occurring items into
  // near-identical codes and push the signal to DC.
  const SpectrumProfile p =
      ComputeSpectrumProfile(d, 16, 16, 13, /*smooth_codes=*/false);
  // Alternation = the highest representable frequency: high band dominates.
  EXPECT_GT(p.high_band, 0.8);
  // And the spectrum is highly concentrated: low entropy.
  EXPECT_LT(p.entropy, 1.0);
}

TEST(SpectrumTest, RandomDataHasScatteredSpectrum) {
  Rng rng(5);
  std::vector<std::vector<int64_t>> seqs;
  for (int u = 0; u < 50; ++u) {
    std::vector<int64_t> s;
    for (int t = 0; t < 16; ++t) s.push_back(rng.UniformInt(1, 50));
    seqs.push_back(s);
  }
  const data::InteractionDataset d("random", seqs, 50);
  const SpectrumProfile p =
      ComputeSpectrumProfile(d, 16, 16, 13, /*smooth_codes=*/false);
  // White-ish: entropy near log(num non-DC bins) = log(8) = 2.08.
  EXPECT_GT(p.entropy, 1.8);
}

TEST(SpectrumTest, DensePresetMoreScatteredThanSparsePresets) {
  // The Sec. IV-G1 claim on our presets: ml1m-sim (many tracks, diverse
  // periods) has a more scattered spectrum than beauty-sim.
  const SpectrumProfile beauty = ComputeSpectrumProfile(
      data::GenerateSynthetic(data::BeautySimConfig(0.1)), 32);
  const SpectrumProfile ml1m = ComputeSpectrumProfile(
      data::GenerateSynthetic(data::Ml1mSimConfig(0.1)), 32);
  EXPECT_GT(ml1m.entropy, beauty.entropy);
}

}  // namespace
}  // namespace analysis
}  // namespace slime
