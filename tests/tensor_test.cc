#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"

namespace slime {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.size(-1), 3);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ScalarRankZero) {
  Tensor s = Tensor::Scalar(3.5f);
  EXPECT_EQ(s.dim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_FLOAT_EQ(s[0], 3.5f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ((t.At({0, 0})), 1.0f);
  EXPECT_FLOAT_EQ((t.At({0, 1})), 2.0f);
  EXPECT_FLOAT_EQ((t.At({1, 0})), 3.0f);
  EXPECT_FLOAT_EQ((t.At({1, 1})), 4.0f);
}

TEST(TensorTest, CopySharesStorageCloneDoesNot) {
  Tensor a = Tensor::Ones({4});
  Tensor b = a;
  b[0] = 7.0f;
  EXPECT_FLOAT_EQ(a[0], 7.0f);
  EXPECT_TRUE(a.SharesStorage(b));
  Tensor c = a.Clone();
  c[1] = 9.0f;
  EXPECT_FLOAT_EQ(a[1], 1.0f);
  EXPECT_FALSE(a.SharesStorage(c));
}

TEST(TensorTest, ReshapeInfersExtent) {
  Tensor t = Tensor::Zeros({2, 6});
  Tensor r = t.Reshape({3, -1});
  EXPECT_EQ(r.size(0), 3);
  EXPECT_EQ(r.size(1), 4);
  EXPECT_TRUE(t.SharesStorage(r));
}

TEST(TensorOpsTest, AddSameShape) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = ops::Add(a, b);
  EXPECT_EQ(c.ToVector(), (std::vector<float>{11, 22, 33}));
}

TEST(TensorOpsTest, BroadcastRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = ops::Add(a, b);
  EXPECT_EQ(c.ToVector(), (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(TensorOpsTest, BroadcastColumnVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 1}, {100, 200});
  Tensor c = ops::Mul(a, b);
  EXPECT_EQ(c.ToVector(),
            (std::vector<float>{100, 200, 300, 800, 1000, 1200}));
}

TEST(TensorOpsTest, ReduceToColumn) {
  Tensor g = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = ops::ReduceTo(g, {2, 1});
  EXPECT_EQ(r.ToVector(), (std::vector<float>{6, 15}));
}

TEST(TensorOpsTest, ReduceToRow) {
  Tensor g = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = ops::ReduceTo(g, {3});
  EXPECT_EQ(r.ToVector(), (std::vector<float>{5, 7, 9}));
}

TEST(TensorOpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_EQ(c.ToVector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(TensorOpsTest, MatMulTransBMatchesMatMul) {
  Rng rng(1);
  Tensor a = Tensor::Randn({4, 5}, &rng);
  Tensor b = Tensor::Randn({6, 5}, &rng);
  Tensor expected = ops::MatMul(a, ops::TransposeLastTwo(b));
  Tensor got = ops::MatMulTransB(a, b);
  ASSERT_TRUE(expected.SameShape(got));
  for (int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(expected[i], got[i], 1e-5);
  }
}

TEST(TensorOpsTest, MatMulTransAMatchesMatMul) {
  Rng rng(2);
  Tensor a = Tensor::Randn({5, 4}, &rng);
  Tensor b = Tensor::Randn({5, 6}, &rng);
  Tensor expected = ops::MatMul(ops::TransposeLastTwo(a), b);
  Tensor got = ops::MatMulTransA(a, b);
  ASSERT_TRUE(expected.SameShape(got));
  for (int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(expected[i], got[i], 1e-5);
  }
}

TEST(TensorOpsTest, BatchMatMul) {
  Rng rng(3);
  Tensor a = Tensor::Randn({3, 2, 4}, &rng);
  Tensor b = Tensor::Randn({3, 4, 5}, &rng);
  Tensor c = ops::BatchMatMul(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{3, 2, 5}));
  // Check one batch element against the 2-D kernel.
  Tensor a1({2, 4});
  Tensor b1({4, 5});
  std::copy(a.data() + 8, a.data() + 16, a1.data());
  std::copy(b.data() + 20, b.data() + 40, b1.data());
  Tensor c1 = ops::MatMul(a1, b1);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(c[10 + i], c1[i], 1e-5);
  }
}

TEST(TensorOpsTest, SumAxisMiddle) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = ops::SumAxis(a, 1, false);
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<float>{4, 6, 12, 14}));
  Tensor k = ops::SumAxis(a, 1, true);
  EXPECT_EQ(k.shape(), (std::vector<int64_t>{2, 1, 2}));
}

TEST(TensorOpsTest, TransposeLastTwoBatched) {
  Tensor a = Tensor::FromVector({2, 2, 3}, {1, 2, 3, 4, 5, 6,
                                            7, 8, 9, 10, 11, 12});
  Tensor t = ops::TransposeLastTwo(a);
  EXPECT_EQ(t.shape(), (std::vector<int64_t>{2, 3, 2}));
  EXPECT_FLOAT_EQ((t.At({0, 0, 1})), 4.0f);
  EXPECT_FLOAT_EQ((t.At({1, 2, 0})), 9.0f);
}

TEST(TensorOpsTest, DotAndNorm) {
  Tensor a = Tensor::FromVector({3}, {3, 4, 0});
  EXPECT_DOUBLE_EQ(ops::Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(ops::Norm(a), 5.0);
}

TEST(RngTest, DeterministicStreams) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(7);
    EXPECT_LT(v, 7u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

}  // namespace
}  // namespace slime
