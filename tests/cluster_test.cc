#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/retry.h"
#include "cluster/ring.h"
#include "common/macros.h"
#include "compute/thread_pool.h"
#include "io/checkpoint.h"
#include "models/recommender.h"
#include "observability/export.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "tensor/tensor.h"

namespace slime {
namespace cluster {
namespace {

using serving::FakeClock;
using serving::kNanosPerMilli;
using serving::kNanosPerSecond;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Same deterministic stand-in as the model-server tests: scores depend
/// only on the checkpointed "shift" parameter, and an optional latency
/// script advances a FakeClock inside ScoreAll to simulate slow inference.
class ScriptedModel : public models::SequentialRecommender {
 public:
  ScriptedModel(const models::ModelConfig& config, float shift,
                FakeClock* clock = nullptr,
                std::vector<int64_t> latencies = {})
      : SequentialRecommender(config),
        clock_(clock),
        latencies_(std::move(latencies)) {
    shift_ = RegisterParameter(
        "shift", autograd::Variable(Tensor::Scalar(shift),
                                    /*requires_grad=*/true));
  }

  autograd::Variable Loss(const data::Batch& batch) override {
    (void)batch;
    return shift_;
  }

  Tensor ScoreAll(const data::Batch& batch) override {
    const size_t call = static_cast<size_t>(calls_++);
    if (clock_ != nullptr && !latencies_.empty()) {
      clock_->Advance(latencies_[std::min(latencies_.size() - 1, call)]);
    }
    const float shift = shift_.value().data()[0];
    const int64_t cols = config_.num_items + 1;
    Tensor scores = Tensor::Zeros({batch.size, cols});
    float* out = scores.data();
    for (int64_t b = 0; b < batch.size; ++b) {
      for (int64_t j = 0; j < cols; ++j) {
        out[b * cols + j] = std::fmod(static_cast<float>(j) + shift,
                                      static_cast<float>(cols));
      }
    }
    return scores;
  }

  std::string name() const override { return "Scripted"; }

 private:
  autograd::Variable shift_;
  FakeClock* clock_;
  std::vector<int64_t> latencies_;
  int64_t calls_ = 0;
};

models::ModelConfig TinyConfig() {
  models::ModelConfig c;
  c.num_items = 10;
  c.num_users = 4;
  c.max_len = 8;
  c.hidden_dim = 4;
  c.num_layers = 1;
  return c;
}

ClusterServer::ModelFactory TinyFactory() {
  return [] { return std::make_unique<ScriptedModel>(TinyConfig(), 0.0f); };
}

serving::ServeRequest TinyRequest() {
  serving::ServeRequest request;
  request.history = {1, 2};
  request.options.top_k = 3;
  request.options.exclude_seen = false;
  return request;
}

std::vector<int64_t> Items(const std::vector<serving::Recommendation>& recs) {
  std::vector<int64_t> items;
  items.reserve(recs.size());
  for (const auto& r : recs) items.push_back(r.item);
  return items;
}

/// Finds a user key whose replica list is exactly `want` (in order).
uint64_t KeyRoutedTo(const ShardRing& ring, const std::vector<int64_t>& want) {
  for (uint64_t key = 0; key < 100000; ++key) {
    if (ring.Route(key) == want) return key;
  }
  SLIME_CHECK_MSG(false, "no key found for requested route");
  return 0;
}

// --- ShardRing -----------------------------------------------------------

TEST(ShardRingTest, SameOptionsSameRouting) {
  RingOptions options;
  options.num_shards = 5;
  options.replication = 3;
  ShardRing a(options);
  ShardRing b(options);
  for (uint64_t key = 0; key < 2000; ++key) {
    EXPECT_EQ(a.SegmentOf(key), b.SegmentOf(key));
    EXPECT_EQ(a.Route(key), b.Route(key));
  }
  // A different seed reshuffles at least some placements.
  options.seed ^= 0xdeadbeefull;
  ShardRing c(options);
  int64_t moved = 0;
  for (uint64_t key = 0; key < 2000; ++key) {
    if (a.Route(key) != c.Route(key)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(ShardRingTest, ReplicasAreDistinctAndComplete) {
  RingOptions options;
  options.num_shards = 4;
  options.replication = 2;
  ShardRing ring(options);
  EXPECT_EQ(ring.num_segments(),
            options.num_shards * options.vnodes_per_shard);
  for (int64_t seg = 0; seg < ring.num_segments(); ++seg) {
    const std::vector<int64_t>& replicas = ring.Replicas(seg);
    ASSERT_EQ(static_cast<int64_t>(replicas.size()), ring.replication());
    std::set<int64_t> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), replicas.size()) << "segment " << seg;
    for (int64_t shard : replicas) {
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, options.num_shards);
    }
  }
}

TEST(ShardRingTest, KeysSpreadAcrossAllShards) {
  RingOptions options;
  options.num_shards = 4;
  options.replication = 2;
  ShardRing ring(options);
  std::vector<int64_t> primaries(static_cast<size_t>(options.num_shards), 0);
  const int64_t keys = 20000;
  for (uint64_t key = 0; key < static_cast<uint64_t>(keys); ++key) {
    ++primaries[static_cast<size_t>(ring.Route(key)[0])];
  }
  for (int64_t shard = 0; shard < options.num_shards; ++shard) {
    // Loose balance bound: every shard owns a real slice of the keyspace
    // (uniform would be 25%; vnode placement keeps it within a few x).
    EXPECT_GT(primaries[static_cast<size_t>(shard)], keys / 20)
        << "shard " << shard;
  }
}

TEST(ShardRingTest, ReplicationClampedToFleet) {
  RingOptions options;
  options.num_shards = 2;
  options.replication = 5;
  ShardRing ring(options);
  EXPECT_EQ(ring.replication(), 2);
}

TEST(ShardRingTest, SharesSegmentMatchesSegmentLists) {
  RingOptions options;
  options.num_shards = 4;
  options.replication = 2;
  ShardRing ring(options);
  for (int64_t a = 0; a < options.num_shards; ++a) {
    const std::vector<int64_t> segs_a = ring.SegmentsOfShard(a);
    for (int64_t b = 0; b < options.num_shards; ++b) {
      const std::vector<int64_t> segs_b = ring.SegmentsOfShard(b);
      bool intersect = false;
      for (int64_t s : segs_a) {
        if (std::find(segs_b.begin(), segs_b.end(), s) != segs_b.end()) {
          intersect = true;
        }
      }
      EXPECT_EQ(ring.SharesSegment(a, b), intersect) << a << " vs " << b;
    }
  }
}

// --- RetryPolicy ---------------------------------------------------------

TEST(RetryPolicyTest, ExponentialBackoffGrowsAndCaps) {
  RetryOptions options;
  options.initial_backoff_nanos = 1 * kNanosPerMilli;
  options.backoff_multiplier = 2.0;
  options.max_backoff_nanos = 4 * kNanosPerMilli;
  options.jitter = 0.0;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.BackoffNanos(0, nullptr), 1 * kNanosPerMilli);
  EXPECT_EQ(policy.BackoffNanos(1, nullptr), 2 * kNanosPerMilli);
  EXPECT_EQ(policy.BackoffNanos(2, nullptr), 4 * kNanosPerMilli);
  EXPECT_EQ(policy.BackoffNanos(5, nullptr), 4 * kNanosPerMilli);  // capped
}

TEST(RetryPolicyTest, JitterIsBoundedAndSeedDeterministic) {
  RetryOptions options;
  options.initial_backoff_nanos = 10 * kNanosPerMilli;
  options.jitter = 0.25;
  RetryPolicy policy(options);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 64; ++i) {
    const int64_t wait_a = policy.BackoffNanos(0, &a);
    const int64_t wait_b = policy.BackoffNanos(0, &b);
    EXPECT_EQ(wait_a, wait_b);  // same seed, same jitter stream
    EXPECT_GE(wait_a, static_cast<int64_t>(10 * kNanosPerMilli * 0.75) - 1);
    EXPECT_LE(wait_a, static_cast<int64_t>(10 * kNanosPerMilli * 1.25) + 1);
  }
}

TEST(RetryPolicyTest, HonorsServerRetryAfterHint) {
  RetryOptions options;
  options.initial_backoff_nanos = 1 * kNanosPerMilli;
  options.jitter = 0.0;
  RetryPolicy policy(options);
  const Status shed = Status::ResourceExhausted("rate limited")
                          .WithRetryAfter(30 * kNanosPerMilli);
  const RetryDecision d = policy.Next(
      /*attempt=*/0, shed, /*same_shard=*/true,
      /*remaining_budget_nanos=*/kNanosPerSecond, /*rng=*/nullptr);
  ASSERT_TRUE(d.retry);
  // Backoff alone would be 1ms; the server said 30ms, so wait 30ms.
  EXPECT_EQ(d.wait_nanos, 30 * kNanosPerMilli);
}

TEST(RetryPolicyTest, ImmediateFailoverOnTransportErrorToOtherShard) {
  RetryPolicy policy(RetryOptions{});
  const RetryDecision d = policy.Next(
      /*attempt=*/0, Status::Unavailable("refused"), /*same_shard=*/false,
      /*remaining_budget_nanos=*/kNanosPerSecond, /*rng=*/nullptr);
  ASSERT_TRUE(d.retry);
  EXPECT_EQ(d.wait_nanos, 0);
  EXPECT_STREQ(d.reason, "failover");
}

TEST(RetryPolicyTest, RefusesWhenBudgetCannotCoverWaitPlusAttempt) {
  RetryOptions options;
  options.initial_backoff_nanos = 10 * kNanosPerMilli;
  options.jitter = 0.0;
  options.min_attempt_budget_nanos = 2 * kNanosPerMilli;
  RetryPolicy policy(options);
  const RetryDecision d = policy.Next(
      /*attempt=*/0, Status::ResourceExhausted("shed"), /*same_shard=*/true,
      /*remaining_budget_nanos=*/11 * kNanosPerMilli, /*rng=*/nullptr);
  EXPECT_FALSE(d.retry);
  EXPECT_STREQ(d.reason, "budget");
}

TEST(RetryPolicyTest, PermanentFailuresAndAttemptCapAreTerminal) {
  RetryPolicy policy(RetryOptions{});  // max_attempts = 3
  const RetryDecision permanent = policy.Next(
      0, Status::InvalidArgument("bad request"), true, kNanosPerSecond,
      nullptr);
  EXPECT_FALSE(permanent.retry);
  EXPECT_STREQ(permanent.reason, "permanent");
  const RetryDecision exhausted = policy.Next(
      2, Status::Unavailable("down"), false, kNanosPerSecond, nullptr);
  EXPECT_FALSE(exhausted.retry);
  EXPECT_STREQ(exhausted.reason, "attempts");
}

TEST(HedgeDelayTrackerTest, InitialDelayThenWindowPercentile) {
  HedgeOptions options;
  options.window = 100;
  options.min_samples = 10;
  options.percentile = 0.95;
  options.initial_delay_nanos = 77 * kNanosPerMilli;
  options.min_delay_nanos = 0;
  HedgeDelayTracker tracker(options);
  EXPECT_EQ(tracker.DelayNanos(), 77 * kNanosPerMilli);
  for (int64_t v = 1; v <= 100; ++v) tracker.Observe(v);
  // Nearest-rank p95 of {1..100} is 95.
  EXPECT_EQ(tracker.DelayNanos(), 95);
}

// --- ClusterServer -------------------------------------------------------

ClusterOptions TinyClusterOptions() {
  ClusterOptions options;
  options.num_shards = 4;
  options.replication = 2;
  options.retry.jitter = 0.0;  // exact waits in unit tests
  options.hedge.enabled = false;
  options.default_deadline_nanos = 50 * kNanosPerMilli;
  return options;
}

TEST(ClusterServerTest, HealthyClusterServesEveryKey) {
  FakeClock clock;
  ClusterServer cluster(TinyClusterOptions(), TinyFactory(), &clock);
  ASSERT_TRUE(cluster.Start().ok());
  EXPECT_EQ(cluster.health(), ClusterHealth::kServing);

  for (uint64_t key = 0; key < 64; ++key) {
    const auto result = cluster.Serve(key, TinyRequest());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tier, serving::ServeTier::kFullModel);
    // Scripted shift 0: scores are j mod 11, so top-3 is {10, 9, 8} on
    // every shard — routing must not change the answer.
    EXPECT_EQ(Items(result.value().items), (std::vector<int64_t>{10, 9, 8}));
  }
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.requests, 64);
  EXPECT_EQ(stats.served, 64);
  EXPECT_EQ(stats.attempts, 64);  // one attempt each, no retries
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.typed_failures, 0);
}

TEST(ClusterServerTest, KilledShardFailsOverWithZeroLoss) {
  FakeClock clock;
  ClusterServer cluster(TinyClusterOptions(), TinyFactory(), &clock);
  ASSERT_TRUE(cluster.Start().ok());
  cluster.KillShard(1);
  EXPECT_EQ(cluster.health(), ClusterHealth::kDegraded);
  EXPECT_EQ(cluster.shard_liveness(1), ShardLiveness::kDown);

  int64_t routed_to_dead_primary = 0;
  for (uint64_t key = 0; key < 128; ++key) {
    if (cluster.ring().Route(key)[0] == 1) ++routed_to_dead_primary;
    const auto result = cluster.Serve(key, TinyRequest());
    ASSERT_TRUE(result.ok()) << "key " << key << ": "
                             << result.status().ToString();
    EXPECT_EQ(Items(result.value().items), (std::vector<int64_t>{10, 9, 8}));
  }
  ASSERT_GT(routed_to_dead_primary, 0) << "test vacuous: no key hit shard 1";
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.served, 128);  // zero loss
  EXPECT_EQ(stats.typed_failures, 0);
  EXPECT_GT(stats.failovers, 0);
  // After enough consecutive refusals the dead shard is ejected, so later
  // requests stop paying the failed first attempt.
  EXPECT_GE(stats.ejections, 1);
  EXPECT_EQ(cluster.shard_liveness(1), ShardLiveness::kDown);
  EXPECT_LT(stats.attempts, stats.requests + routed_to_dead_primary + 8);
}

TEST(ClusterServerTest, DeadSegmentReturnsTypedUnavailable) {
  FakeClock clock;
  ClusterServer cluster(TinyClusterOptions(), TinyFactory(), &clock);
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t key = KeyRoutedTo(cluster.ring(), {0, 1});
  cluster.KillShard(0);
  cluster.KillShard(1);
  EXPECT_EQ(cluster.health(), ClusterHealth::kUnavailable);

  const auto result = cluster.Serve(key, TinyRequest());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kUnavailable)
      << result.status().ToString();
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.typed_failures, 1);
  EXPECT_EQ(stats.unavailable, 1);

  // Keys whose segments kept a live replica still get answers: degraded,
  // not dark, for the rest of the keyspace.
  const uint64_t live_key = KeyRoutedTo(cluster.ring(), {2, 3});
  EXPECT_TRUE(cluster.Serve(live_key, TinyRequest()).ok());
}

TEST(ClusterServerTest, RetryWaitsAtLeastServerRetryAfterHint) {
  // Single shard, token bucket of one: the second request is shed with an
  // exact refill hint. The cluster client must sleep through that hint
  // (not its own shorter backoff) before re-admission succeeds.
  ClusterOptions options;
  options.num_shards = 1;
  options.replication = 1;
  options.retry.jitter = 0.0;
  options.retry.initial_backoff_nanos = 1 * kNanosPerMilli;
  options.retry.max_attempts = 3;
  options.hedge.enabled = false;
  options.shard.admission.tokens_per_second = 1.0;  // refill hint = 1s
  options.shard.admission.burst = 1.0;
  FakeClock clock;
  ClusterServer cluster(options, TinyFactory(), &clock);
  ASSERT_TRUE(cluster.Start().ok());

  serving::ServeRequest request = TinyRequest();
  request.deadline_nanos = 3 * kNanosPerSecond;
  ASSERT_TRUE(cluster.Serve(1, request).ok());  // drains the only token

  const int64_t before = clock.NowNanos();
  const auto result = cluster.Serve(2, request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The shed carried retry_after ~= 1s (one token at 1 tps); the retried
  // request may not be re-issued before the hint elapses.
  EXPECT_GE(clock.NowNanos() - before, kNanosPerSecond);
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.retries, 1);
  EXPECT_EQ(stats.backoff_waits, 1);
  EXPECT_EQ(stats.served, 2);
}

TEST(ClusterServerTest, EjectionThenProbationThenReinstatement) {
  ClusterOptions options = TinyClusterOptions();
  options.num_shards = 2;
  options.replication = 2;
  options.health.ejection_failures = 3;
  options.health.ejection_nanos = 100 * kNanosPerMilli;
  options.health.reinstate_successes = 2;
  FakeClock clock;
  ClusterServer cluster(options, TinyFactory(), &clock);
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t key = KeyRoutedTo(cluster.ring(), {0, 1});
  cluster.KillShard(0);
  serving::ServeRequest request = TinyRequest();
  // Three failed first-attempts eject the dead primary.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.Serve(key, request).ok());
  }
  EXPECT_EQ(cluster.stats().ejections, 1);
  EXPECT_EQ(cluster.shard_liveness(0), ShardLiveness::kDown);

  // Restore does NOT reinstate: the shard must sit out its window first.
  cluster.RestoreShard(0);
  EXPECT_EQ(cluster.shard_liveness(0), ShardLiveness::kEjected);
  EXPECT_EQ(cluster.health(), ClusterHealth::kDegraded);

  clock.Advance(101 * kNanosPerMilli);
  EXPECT_EQ(cluster.shard_liveness(0), ShardLiveness::kProbation);
  EXPECT_EQ(cluster.health(), ClusterHealth::kDegraded) << "probation is "
                                                           "not yet healthy";

  // Two successes through the probing shard reinstate it.
  ASSERT_TRUE(cluster.Serve(key, request).ok());
  EXPECT_EQ(cluster.shard_liveness(0), ShardLiveness::kProbation);
  ASSERT_TRUE(cluster.Serve(key, request).ok());
  EXPECT_EQ(cluster.shard_liveness(0), ShardLiveness::kHealthy);
  EXPECT_EQ(cluster.stats().reinstatements, 1);
  EXPECT_EQ(cluster.health(), ClusterHealth::kServing);
}

TEST(ClusterServerTest, FlappingShardBacksOffExponentially) {
  // A shard that fails exactly as it re-enters rotation must not whip the
  // cluster between serving and degraded at the flap frequency: each
  // probation failure doubles the ejection window (up to the cap).
  ClusterOptions options = TinyClusterOptions();
  options.num_shards = 2;
  options.replication = 2;
  options.health.ejection_failures = 1;  // eject on first refusal
  options.health.ejection_nanos = 100 * kNanosPerMilli;
  options.health.ejection_backoff = 2.0;
  options.health.max_ejection_nanos = 800 * kNanosPerMilli;
  FakeClock clock;
  ClusterServer cluster(options, TinyFactory(), &clock);
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t key = KeyRoutedTo(cluster.ring(), {0, 1});
  cluster.KillShard(0);
  serving::ServeRequest request = TinyRequest();

  // Flap loop: wait out the window, probe (fails — still dead), re-eject.
  int64_t expected_window = 100 * kNanosPerMilli;
  for (int flap = 0; flap < 3; ++flap) {
    ASSERT_TRUE(cluster.Serve(key, request).ok());  // replica answers
    EXPECT_EQ(cluster.stats().ejections, flap + 1);
    clock.Advance(expected_window - kNanosPerMilli);
    // Still inside the (growing) window: the shard must not be probed yet.
    EXPECT_EQ(cluster.shard_liveness(0), ShardLiveness::kDown);
    clock.Advance(2 * kNanosPerMilli);
    expected_window = std::min(2 * expected_window, 800 * kNanosPerMilli);
  }
  // Three flaps took >= 100+200+400ms of enforced quiet time — the
  // oscillation slows down instead of tracking the flap frequency.
  EXPECT_GE(clock.NowNanos(), 700 * kNanosPerMilli);
  EXPECT_EQ(cluster.stats().reinstatements, 0);
}

TEST(ClusterServerTest, HedgeAbandonsSlowPrimaryAndWinsOnReplica) {
  ClusterOptions options;
  options.num_shards = 2;
  options.replication = 2;
  options.retry.jitter = 0.0;
  options.hedge.enabled = true;
  options.hedge.initial_delay_nanos = 10 * kNanosPerMilli;
  options.hedge.min_samples = 1000;  // pin the initial delay for the test
  options.default_deadline_nanos = 200 * kNanosPerMilli;
  FakeClock clock;
  obs::Tracer tracer(&clock);
  options.tracer = &tracer;

  // Shard 0's model takes 50ms per pass; shard 1 is instant. Start() boots
  // shards in order, so instance 0 lands on shard 0.
  int64_t created = 0;
  auto factory = [&clock, &created]() {
    const int64_t idx = created++;
    std::vector<int64_t> latencies;
    if (idx == 0) latencies = {50 * kNanosPerMilli};
    return std::unique_ptr<models::SequentialRecommender>(
        std::make_unique<ScriptedModel>(TinyConfig(), 0.0f, &clock,
                                        latencies));
  };
  ClusterServer cluster(options, factory, &clock);
  ASSERT_TRUE(cluster.Start().ok());

  const uint64_t key = KeyRoutedTo(cluster.ring(), {0, 1});
  const auto result = cluster.Serve(key, TinyRequest());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().tier, serving::ServeTier::kFullModel);
  EXPECT_EQ(Items(result.value().items), (std::vector<int64_t>{10, 9, 8}));

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.hedges, 1);
  EXPECT_EQ(stats.hedge_wins, 1);
  EXPECT_EQ(stats.served, 1);
  // The abandoned primary is slow, not broken: no health penalty.
  EXPECT_EQ(stats.ejections, 0);
  EXPECT_EQ(cluster.shard_liveness(0), ShardLiveness::kHealthy);

  // The trace records the hedged attempt and the winning replica.
  const std::string jsonl = obs::TracesToJsonl(tracer.Traces());
  EXPECT_NE(jsonl.find("\"outcome\":\"hedged\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"hedge\":\"true\""), std::string::npos) << jsonl;
}

TEST(ClusterServerTest, CallerCancelIsPermanentNotRetried) {
  FakeClock clock;
  ClusterServer cluster(TinyClusterOptions(), TinyFactory(), &clock);
  ASSERT_TRUE(cluster.Start().ok());
  serving::ServeRequest request = TinyRequest();
  request.cancel = [] { return true; };  // client already hung up
  const auto result = cluster.Serve(7, request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kAborted);
  EXPECT_EQ(cluster.stats().attempts, 1);  // no retry, no hedge
}

TEST(ClusterServerTest, ReloadWavesNeverPairCoReplicatedShards) {
  FakeClock clock;
  ClusterOptions options = TinyClusterOptions();
  options.num_shards = 6;
  options.replication = 3;
  ClusterServer cluster(options, TinyFactory(), &clock);
  ASSERT_TRUE(cluster.Start().ok());

  const auto waves = cluster.ReloadWaves();
  std::set<int64_t> covered;
  for (const auto& wave : waves) {
    for (size_t i = 0; i < wave.size(); ++i) {
      covered.insert(wave[i]);
      for (size_t j = i + 1; j < wave.size(); ++j) {
        EXPECT_FALSE(cluster.ring().SharesSegment(wave[i], wave[j]))
            << "wave holds two replicas of one segment: " << wave[i]
            << " and " << wave[j];
      }
    }
  }
  EXPECT_EQ(covered.size(), static_cast<size_t>(options.num_shards));
}

TEST(ClusterServerTest, RollingReloadSwapsEveryShardWithLiveTraffic) {
  FakeClock clock;
  ClusterServer cluster(TinyClusterOptions(), TinyFactory(), &clock);
  ASSERT_TRUE(cluster.Start().ok());

  const std::string path = TempPath("cluster_rolling.ckpt");
  {
    ScriptedModel next(TinyConfig(), 3.0f);
    ASSERT_TRUE(io::SaveCheckpoint(next, path).ok());
  }

  // Traffic between waves must keep succeeding against the mixed fleet.
  int64_t waves_seen = 0;
  const Status status = cluster.RollingReload(
      path, [&cluster, &waves_seen](int64_t wave) {
        (void)wave;
        ++waves_seen;
        for (uint64_t key = 0; key < 8; ++key) {
          SLIME_CHECK(cluster.Serve(key, TinyRequest()).ok());
        }
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(waves_seen, 0);
  EXPECT_EQ(cluster.health(), ClusterHealth::kServing);
  for (int64_t s = 0; s < cluster.num_shards(); ++s) {
    EXPECT_EQ(cluster.shard_server(s)->generation(), 2) << "shard " << s;
    EXPECT_EQ(cluster.shard_server(s)->stats().reloads, 1);
  }
  // Shift 3 reorders the ranking: new top-3 is {7, 6, 5}
  // (scores (j + 3) mod 11, argmax j = 7).
  const auto result = cluster.Serve(3, TinyRequest());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Items(result.value().items), (std::vector<int64_t>{7, 6, 5}));
}

// --- Determinism ---------------------------------------------------------

/// A fixed chaos-flavoured scenario: mixed traffic, a mid-run shard kill,
/// a whole-segment blackout probe, restore, window expiry, reinstatement,
/// and a rolling reload — everything timed on the FakeClock. Returns a
/// byte-signature of every outcome plus the metrics/trace exports.
std::string RunClusterScenario(int threads, const std::string& reload_path) {
  compute::ComputeContext ctx(threads);
  FakeClock clock;
  obs::MetricsRegistry registry;
  obs::Tracer tracer(&clock);
  ClusterOptions options;
  options.num_shards = 4;
  options.replication = 2;
  options.seed = 0xfeed5eedull;
  options.retry.jitter = 0.25;  // jitter ON: must still be deterministic
  options.hedge.enabled = true;
  options.hedge.min_samples = 4;
  options.health.ejection_failures = 2;
  options.health.ejection_nanos = 40 * kNanosPerMilli;
  options.metrics = &registry;
  options.tracer = &tracer;
  ClusterServer cluster(options, TinyFactory(), &clock);
  SLIME_CHECK(cluster.Start().ok());

  std::ostringstream sig;
  serving::ServeRequest request = TinyRequest();
  const auto serve = [&](uint64_t key) {
    const auto result = cluster.Serve(key, request);
    sig << "key " << key << " ";
    if (result.ok()) {
      sig << ToString(result.value().tier) << " gen "
          << result.value().generation << " [";
      for (const serving::Recommendation& rec : result.value().items) {
        sig << rec.item << ":" << rec.score << " ";
      }
      sig << "]";
    } else {
      sig << "error " << result.status().ToString();
    }
    sig << " health " << ToString(cluster.health()) << "\n";
  };

  for (uint64_t key = 0; key < 24; ++key) serve(key);
  cluster.KillShard(2);
  for (uint64_t key = 24; key < 48; ++key) serve(key);
  cluster.KillShard(3);  // segments replicated on {2,3} are now dark
  for (uint64_t key = 48; key < 64; ++key) serve(key);
  serve(KeyRoutedTo(cluster.ring(), {2, 3}));  // typed kUnavailable probe
  cluster.RestoreShard(2);
  cluster.RestoreShard(3);
  clock.Advance(500 * kNanosPerMilli);  // windows expire → probation
  for (uint64_t key = 64; key < 96; ++key) serve(key);
  SLIME_CHECK(cluster.RollingReload(reload_path).ok());
  for (uint64_t key = 96; key < 112; ++key) serve(key);

  const ClusterStats stats = cluster.stats();
  sig << "requests " << stats.requests << " served " << stats.served
      << " attempts " << stats.attempts << " retries " << stats.retries
      << " failovers " << stats.failovers << " backoffs "
      << stats.backoff_waits << " hedges " << stats.hedges << " wins "
      << stats.hedge_wins << " ejections " << stats.ejections
      << " reinstatements " << stats.reinstatements << " typed "
      << stats.typed_failures << " unavailable " << stats.unavailable
      << " health " << ToString(cluster.health()) << "\n";
  sig << obs::SnapshotToJsonl(registry.Snapshot());
  sig << obs::TracesToJsonl(tracer.Traces());
  return sig.str();
}

TEST(ClusterDeterminismTest, ScenarioIsBitIdenticalAcrossThreadCounts) {
  const std::string path = TempPath("cluster_determinism.ckpt");
  {
    ScriptedModel next(TinyConfig(), 3.0f);
    ASSERT_TRUE(io::SaveCheckpoint(next, path).ok());
  }
  const std::string base = RunClusterScenario(1, path);
  // The scenario must actually exercise the machinery it claims to pin.
  EXPECT_NE(base.find("error Unavailable"), std::string::npos) << base;
  EXPECT_NE(base.find("health degraded"), std::string::npos) << base;
  EXPECT_NE(base.find("gen 2"), std::string::npos) << base;
  EXPECT_NE(base.find("\"type\":\"trace\""), std::string::npos) << base;
  EXPECT_EQ(base, RunClusterScenario(1, path));
  EXPECT_EQ(base, RunClusterScenario(2, path));
  EXPECT_EQ(base, RunClusterScenario(8, path));
}

}  // namespace
}  // namespace cluster
}  // namespace slime
