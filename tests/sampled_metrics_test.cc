#include "metrics/sampled_ranking.h"

#include <gtest/gtest.h>

namespace slime {
namespace metrics {
namespace {

TEST(SampledRankingTest, PerfectModelStillPerfect) {
  // Target has the top score: rank 1 regardless of sampling.
  Tensor scores({1, 101});
  for (int64_t j = 1; j <= 100; ++j) scores.data()[j] = -static_cast<float>(j);
  Rng rng(1);
  SampledRankingAccumulator acc(50, &rng);
  acc.Add(scores, {1});
  EXPECT_DOUBLE_EQ(acc.HrAt(10), 1.0);
  EXPECT_DOUBLE_EQ(acc.NdcgAt(10), 1.0);
}

TEST(SampledRankingTest, SamplingInflatesMetrics) {
  // Target ranks 40th of 200 items under full ranking (HR@10 = 0), but
  // against only 20 sampled negatives it often lands in the top 10.
  const int64_t items = 200;
  Tensor scores({1, items + 1});
  for (int64_t j = 1; j <= items; ++j) {
    scores.data()[j] = static_cast<float>(items - j);  // item 1 best
  }
  const int64_t target = 40;
  RankingAccumulator full;
  full.Add(scores, {target});
  EXPECT_DOUBLE_EQ(full.HrAt(10), 0.0);

  Rng rng(7);
  SampledRankingAccumulator sampled(20, &rng);
  for (int trial = 0; trial < 200; ++trial) {
    sampled.Add(scores, {target});
  }
  EXPECT_GT(sampled.HrAt(10), 0.5);  // hugely inflated
}

TEST(SampledRankingTest, ExpectedRankMatchesHypergeometricMean) {
  // With uniformly random negatives, E[#above] = n * (better / (V - 1)).
  // Target with 49 better items of 199 total and 50 negatives: E ~ 12.4.
  const int64_t items = 200;
  Tensor scores({1, items + 1});
  for (int64_t j = 1; j <= items; ++j) {
    scores.data()[j] = static_cast<float>(items - j);
  }
  const int64_t target = 50;  // 49 better
  Rng rng(11);
  SampledRankingAccumulator sampled(50, &rng);
  double rank_sum = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    SampledRankingAccumulator one(50, &rng);
    one.Add(scores, {target});
    // Recover the rank from NDCG is awkward; instead accumulate into the
    // shared accumulator and compare the hit rates below.
    sampled.Add(scores, {target});
    (void)one;
  }
  (void)rank_sum;
  // E[#above] = 50 * 49/199 = 12.31 -> HR@10 is the probability that at
  // most 9 of the 50 draws land among the 49 better items; this is small.
  EXPECT_LT(sampled.HrAt(10), 0.45);
  EXPECT_GT(sampled.HrAt(10), 0.02);
}

TEST(SampledRankingTest, DeterministicGivenSeed) {
  Rng rng1(5);
  Rng rng2(5);
  Tensor scores({2, 50});
  Rng srng(3);
  for (int64_t i = 0; i < scores.numel(); ++i) {
    scores.data()[i] = srng.Gaussian();
  }
  SampledRankingAccumulator a(10, &rng1);
  SampledRankingAccumulator b(10, &rng2);
  a.Add(scores, {3, 7});
  b.Add(scores, {3, 7});
  EXPECT_DOUBLE_EQ(a.NdcgAt(10), b.NdcgAt(10));
}

}  // namespace
}  // namespace metrics
}  // namespace slime
