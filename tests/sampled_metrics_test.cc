#include "metrics/sampled_ranking.h"

#include <gtest/gtest.h>

#include <vector>

namespace slime {
namespace metrics {
namespace {

TEST(SampledRankingTest, PerfectModelStillPerfect) {
  // Target has the top score: rank 1 regardless of sampling.
  Tensor scores({1, 101});
  for (int64_t j = 1; j <= 100; ++j) scores.data()[j] = -static_cast<float>(j);
  Rng rng(1);
  SampledRankingAccumulator acc(50, &rng);
  acc.Add(scores, {1});
  EXPECT_DOUBLE_EQ(acc.HrAt(10), 1.0);
  EXPECT_DOUBLE_EQ(acc.NdcgAt(10), 1.0);
}

TEST(SampledRankingTest, SamplingInflatesMetrics) {
  // Target ranks 40th of 200 items under full ranking (HR@10 = 0), but
  // against only 20 sampled negatives it often lands in the top 10.
  const int64_t items = 200;
  Tensor scores({1, items + 1});
  for (int64_t j = 1; j <= items; ++j) {
    scores.data()[j] = static_cast<float>(items - j);  // item 1 best
  }
  const int64_t target = 40;
  RankingAccumulator full;
  full.Add(scores, {target});
  EXPECT_DOUBLE_EQ(full.HrAt(10), 0.0);

  Rng rng(7);
  SampledRankingAccumulator sampled(20, &rng);
  for (int trial = 0; trial < 200; ++trial) {
    sampled.Add(scores, {target});
  }
  EXPECT_GT(sampled.HrAt(10), 0.5);  // hugely inflated
}

TEST(SampledRankingTest, ExpectedRankMatchesHypergeometricMean) {
  // With uniformly random negatives, E[#above] = n * (better / (V - 1)).
  // Target with 49 better items of 199 total and 50 negatives: E ~ 12.4.
  const int64_t items = 200;
  Tensor scores({1, items + 1});
  for (int64_t j = 1; j <= items; ++j) {
    scores.data()[j] = static_cast<float>(items - j);
  }
  const int64_t target = 50;  // 49 better
  Rng rng(11);
  SampledRankingAccumulator sampled(50, &rng);
  double rank_sum = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    SampledRankingAccumulator one(50, &rng);
    one.Add(scores, {target});
    // Recover the rank from NDCG is awkward; instead accumulate into the
    // shared accumulator and compare the hit rates below.
    sampled.Add(scores, {target});
    (void)one;
  }
  (void)rank_sum;
  // E[#above] = 50 * 49/199 = 12.31 -> HR@10 is the probability that at
  // most 9 of the 50 draws land among the 49 better items; this is small.
  EXPECT_LT(sampled.HrAt(10), 0.45);
  EXPECT_GT(sampled.HrAt(10), 0.02);
}

/// The rejection sampler exactly as it was before the stamp-buffer rewrite
/// (per-row vector<bool>, draw-until-fresh). The sparse path must consume
/// the identical RNG draw sequence, so for any seed the sampled metrics
/// are byte-for-byte what the old code produced.
double LegacyRejectionNdcg10(const Tensor& scores,
                             const std::vector<int64_t>& targets,
                             int64_t num_negatives, uint64_t seed) {
  Rng rng(seed);
  RankingAccumulator acc;
  const int64_t cols = scores.size(1);
  const float* p = scores.data();
  for (int64_t i = 0; i < scores.size(0); ++i) {
    const int64_t t = targets[i];
    const float target_score = p[i * cols + t];
    std::vector<bool> used(cols, false);
    used[t] = true;
    int64_t above = 0;
    int64_t drawn = 0;
    while (drawn < num_negatives) {
      const int64_t neg = rng.UniformInt(1, cols - 1);
      if (used[neg]) continue;
      used[neg] = true;
      ++drawn;
      if (p[i * cols + neg] > target_score) ++above;
    }
    acc.AddRank(above + 1);
  }
  return acc.NdcgAt(10);
}

TEST(SampledRankingTest, SparsePathPinnedToLegacySampler) {
  // Regression for the sampler rewrite: the sparse path (num_negatives
  // <= (cols-2)/2) must reproduce the legacy rejection sampler's RNG draw
  // sequence exactly — identical metrics, not just statistically similar.
  const int64_t items = 60;
  Tensor scores({3, items + 1});
  Rng srng(19);
  for (int64_t i = 0; i < scores.numel(); ++i) {
    scores.data()[i] = srng.Gaussian();
  }
  const std::vector<int64_t> targets = {4, 17, 60};
  for (const uint64_t seed : {1u, 5u, 23u, 99u}) {
    for (const int64_t negs : {1, 10, 29}) {  // 29 == (61-2)/2, still sparse
      Rng rng(seed);
      SampledRankingAccumulator acc(negs, &rng);
      acc.Add(scores, targets);
      EXPECT_DOUBLE_EQ(acc.NdcgAt(10),
                       LegacyRejectionNdcg10(scores, targets, negs, seed))
          << "seed=" << seed << " negs=" << negs;
    }
  }
}

TEST(SampledRankingTest, DensePathAllNegativesMatchesFullRanking) {
  // num_negatives == cols - 2 samples every non-target item, so the
  // Fisher–Yates path must reproduce the full-ranking metrics exactly.
  // Under the old rejection sampler this configuration was the worst-case
  // coupon collector; now it is exactly cols - 2 draws.
  const int64_t items = 40;
  Tensor scores({4, items + 1});
  Rng srng(31);
  for (int64_t i = 0; i < scores.numel(); ++i) {
    scores.data()[i] = srng.Gaussian();
  }
  const std::vector<int64_t> targets = {1, 13, 27, 40};
  RankingAccumulator full;
  full.Add(scores, targets);
  Rng rng(2);
  SampledRankingAccumulator dense(items - 1, &rng);  // cols-2 = items-1
  dense.Add(scores, targets);
  EXPECT_DOUBLE_EQ(dense.NdcgAt(10), full.NdcgAt(10));
  EXPECT_DOUBLE_EQ(dense.HrAt(5), full.HrAt(5));
  EXPECT_DOUBLE_EQ(dense.HrAt(10), full.HrAt(10));
}

TEST(SampledRankingTest, DensePathIsUnbiasedAcrossTrials) {
  // Statistical check either side of the sparse/dense threshold: both
  // samplers draw uniform negative subsets, so their hit rates over many
  // trials must agree within noise.
  const int64_t items = 30;  // cols = 31, threshold (cols-2)/2 = 14
  Tensor scores({1, items + 1});
  for (int64_t j = 1; j <= items; ++j) {
    scores.data()[j] = static_cast<float>(items - j);
  }
  const int64_t target = 10;  // 9 better items
  Rng rng_sparse(3), rng_dense(3);
  SampledRankingAccumulator sparse(14, &rng_sparse);
  SampledRankingAccumulator dense(15, &rng_dense);
  for (int trial = 0; trial < 600; ++trial) {
    sparse.Add(scores, {target});
    dense.Add(scores, {target});
  }
  // E[#above] = negs * 9/29; HR@5 is P(at most 4 better drawn). The two
  // samplers differ by one negative, so the rates are close.
  EXPECT_NEAR(sparse.HrAt(5), dense.HrAt(5), 0.15);
  EXPECT_GT(sparse.HrAt(5), 0.05);
  EXPECT_LT(dense.HrAt(5), 0.95);
}

TEST(SampledRankingTest, DeterministicGivenSeed) {
  Rng rng1(5);
  Rng rng2(5);
  Tensor scores({2, 50});
  Rng srng(3);
  for (int64_t i = 0; i < scores.numel(); ++i) {
    scores.data()[i] = srng.Gaussian();
  }
  SampledRankingAccumulator a(10, &rng1);
  SampledRankingAccumulator b(10, &rng2);
  a.Add(scores, {3, 7});
  b.Add(scores, {3, 7});
  EXPECT_DOUBLE_EQ(a.NdcgAt(10), b.NdcgAt(10));
}

}  // namespace
}  // namespace metrics
}  // namespace slime
