#include "data/validation.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "data/loader.h"
#include "io/env.h"
#include "observability/metrics.h"

namespace slime {
namespace data {
namespace {

using io::FaultInjectionEnv;
using io::InjectedCrash;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteRaw(const std::string& path, const std::string& contents) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(contents.data(), 1, contents.size(), f),
            contents.size());
  std::fclose(f);
}

ValidationOptions Strict() {
  ValidationOptions o;
  o.policy = ValidationPolicy::kStrict;
  return o;
}

ValidationOptions Repair() {
  ValidationOptions o;
  o.policy = ValidationPolicy::kRepair;
  return o;
}

// --- Policy parsing -------------------------------------------------------

TEST(ValidationPolicyTest, ParsesStrictAndRepair) {
  EXPECT_EQ(ParseValidationPolicy("strict").value(),
            ValidationPolicy::kStrict);
  EXPECT_EQ(ParseValidationPolicy("repair").value(),
            ValidationPolicy::kRepair);
  EXPECT_EQ(ParseValidationPolicy("lenient").status().code(),
            Status::Code::kInvalidArgument);
}

// --- Strict mode: typed first-error reporting -----------------------------

TEST(StrictValidationTest, OverflowIsReportedAsOutOfRangeNotNonNumeric) {
  // Regression: the istream-based loader set failbit on an out-of-range
  // integer and misreported it as a non-numeric token. from_chars tells
  // the two apart.
  const std::string path = TempPath("val_overflow.txt");
  WriteRaw(path, "1 2 3\n4 99999999999999999999 5\n");
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", Strict());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  EXPECT_NE(r.status().message().find("item id out of range at line 2"),
            std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("99999999999999999999"),
            std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(StrictValidationTest, NamesTheFirstBadLine) {
  const std::string path = TempPath("val_first_line.txt");
  WriteRaw(path, "1 2\n3 4\n5 banana 6\n7 oops\n");
  QuarantineReport report;
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", Strict(), &report);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  EXPECT_NE(r.status().message().find("non-numeric token at line 3"),
            std::string::npos)
      << r.status().message();
  // The report carries the first offender too.
  ASSERT_EQ(report.samples.size(), 1u);
  EXPECT_EQ(report.samples[0].line, 3);
  EXPECT_EQ(report.samples[0].token, "banana");
  std::remove(path.c_str());
}

TEST(StrictValidationTest, NonPositiveIdIsCorruption) {
  const std::string path = TempPath("val_nonpos.txt");
  WriteRaw(path, "1 0 2\n");
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", Strict());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  EXPECT_NE(r.status().message().find("non-positive item id at line 1"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(StrictValidationTest, HugeItemIdHitsVocabCapNotOOM) {
  // "99999999999" fits in int64 but would allocate a ~100-billion-row
  // embedding table downstream; the cap turns it into a typed error.
  const std::string path = TempPath("val_vocab_cap.txt");
  WriteRaw(path, "1 2 99999999999\n");
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", Strict());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted);
  EXPECT_NE(r.status().message().find("max_item_id"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StrictValidationTest, OverlongLineIsResourceExhausted) {
  const std::string path = TempPath("val_long_line.txt");
  std::string line;
  for (int i = 0; i < 2000; ++i) line += "7 ";
  WriteRaw(path, "1 2\n" + line + "\n");
  ValidationOptions o = Strict();
  o.limits.max_line_bytes = 256;
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StrictValidationTest, SequenceLengthCapIsResourceExhausted) {
  const std::string path = TempPath("val_seq_cap.txt");
  WriteRaw(path, "1 2 3 4 5 6 7 8\n");
  ValidationOptions o = Strict();
  o.limits.max_sequence_length = 4;
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted);
  EXPECT_NE(r.status().message().find("max_sequence_length"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(StrictValidationTest, UserCapIsResourceExhaustedUnderBothPolicies) {
  const std::string path = TempPath("val_user_cap.txt");
  WriteRaw(path, "1\n2\n3\n4\n");
  for (ValidationOptions o : {Strict(), Repair()}) {
    o.limits.max_users = 2;
    const Result<InteractionDataset> r =
        LoadSequenceFileValidated(path, "x", o);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted);
    EXPECT_NE(r.status().message().find("max_users"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(StrictValidationTest, FileSizeCapIsResourceExhausted) {
  const std::string path = TempPath("val_file_cap.txt");
  WriteRaw(path, "1 2 3 4 5 6 7 8 9 10\n");
  ValidationOptions o = Strict();
  o.limits.max_file_bytes = 8;
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted);
  EXPECT_NE(r.status().message().find("max_file_bytes"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StrictValidationTest, CrLfAndBlankLinesAreAccepted) {
  const std::string path = TempPath("val_crlf.txt");
  WriteRaw(path, "1 2 3\r\n\r\n4 5\r\n");
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", Strict());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_users(), 2);
  EXPECT_EQ(r.value().sequences()[0], (std::vector<int64_t>{1, 2, 3}));
  std::remove(path.c_str());
}

// --- Repair mode: salvage + exact quarantine accounting -------------------

TEST(RepairValidationTest, CountsMatchPlantedCorruptionsExactly) {
  // One corruption per class, planted deliberately:
  //   line 1: clean
  //   line 2: "banana" (non_numeric), "-3" (non_positive)
  //   line 3: overflow token (item_id_out_of_range), above-cap id
  //   line 4: consecutive repeat 5 5
  //   line 5: entirely garbage -> empty_after_repair
  //   line 6: clean
  const std::string path = TempPath("val_repair_counts.txt");
  WriteRaw(path,
           "1 2 3\n"
           "4 banana 5 -3\n"
           "6 99999999999999999999 7 900000\n"
           "5 5 8\n"
           "zzz ???\n"
           "9 10\n");
  ValidationOptions o = Repair();
  o.limits.max_item_id = 100000;
  o.renumber_sparse_vocab = false;
  QuarantineReport report;
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "repair-test", o, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(report.count(ErrorClass::kNonNumericToken), 3);  // banana zzz ???
  EXPECT_EQ(report.count(ErrorClass::kItemIdOutOfRange), 1);
  EXPECT_EQ(report.count(ErrorClass::kNonPositiveItemId), 1);
  EXPECT_EQ(report.count(ErrorClass::kItemIdAboveCap), 1);
  EXPECT_EQ(report.count(ErrorClass::kConsecutiveRepeat), 1);
  EXPECT_EQ(report.count(ErrorClass::kOverlongLine), 0);
  EXPECT_EQ(report.count(ErrorClass::kOverlongSequence), 0);
  EXPECT_EQ(report.count(ErrorClass::kEmptyAfterRepair), 1);
  EXPECT_EQ(report.total_errors(), 8);

  EXPECT_EQ(report.lines_total, 6);
  EXPECT_EQ(report.lines_kept, 5);
  EXPECT_EQ(report.lines_dropped, 1);
  EXPECT_EQ(report.tokens_total, 18);
  EXPECT_EQ(report.tokens_kept, 11);
  EXPECT_EQ(report.tokens_dropped, 7);

  const auto& seqs = r.value().sequences();
  ASSERT_EQ(seqs.size(), 5u);
  EXPECT_EQ(seqs[0], (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(seqs[1], (std::vector<int64_t>{4, 5}));
  EXPECT_EQ(seqs[2], (std::vector<int64_t>{6, 7}));
  EXPECT_EQ(seqs[3], (std::vector<int64_t>{5, 8}));
  EXPECT_EQ(seqs[4], (std::vector<int64_t>{9, 10}));
  std::remove(path.c_str());
}

TEST(RepairValidationTest, SameFileFailsStrictWithFirstBadLine) {
  // The acceptance-criteria pairing: one file, two policies.
  const std::string path = TempPath("val_pairing.txt");
  WriteRaw(path, "1 2\n3 oops 4\n5\n");
  const Result<InteractionDataset> strict =
      LoadSequenceFileValidated(path, "x", Strict());
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), Status::Code::kCorruption);
  EXPECT_NE(strict.status().message().find("line 2"), std::string::npos);

  QuarantineReport report;
  const Result<InteractionDataset> repaired =
      LoadSequenceFileValidated(path, "x", Repair(), &report);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired.value().num_users(), 3);
  EXPECT_EQ(report.count(ErrorClass::kNonNumericToken), 1);
  std::remove(path.c_str());
}

TEST(RepairValidationTest, OverlongLineIsDroppedWithoutTokenising) {
  const std::string path = TempPath("val_repair_long.txt");
  std::string line;
  for (int i = 0; i < 5000; ++i) line += "7 ";
  WriteRaw(path, "1 2\n" + line + "\n3 4\n");
  ValidationOptions o = Repair();
  o.limits.max_line_bytes = 64;
  QuarantineReport report;
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", o, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_users(), 2);
  EXPECT_EQ(report.count(ErrorClass::kOverlongLine), 1);
  // The dropped line's tokens were never scanned.
  EXPECT_EQ(report.tokens_total, 4);
  std::remove(path.c_str());
}

TEST(RepairValidationTest, SequenceTruncatedAtCap) {
  const std::string path = TempPath("val_repair_trunc.txt");
  WriteRaw(path, "1 2 3 4 5 6\n");
  ValidationOptions o = Repair();
  o.limits.max_sequence_length = 3;
  o.renumber_sparse_vocab = false;
  QuarantineReport report;
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", o, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().sequences()[0], (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(report.count(ErrorClass::kOverlongSequence), 3);
  std::remove(path.c_str());
}

TEST(RepairValidationTest, SparseVocabularyIsRenumberedOrderPreserving) {
  const std::string path = TempPath("val_renumber.txt");
  WriteRaw(path, "5 500 7\n500 9000000 5\n");
  ValidationOptions o = Repair();  // renumber_sparse_vocab defaults on
  QuarantineReport report;
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", o, &report);
  ASSERT_TRUE(r.ok());
  // Kept ids {5, 7, 500, 9000000} -> {1, 2, 3, 4}.
  EXPECT_EQ(r.value().num_items(), 4);
  EXPECT_EQ(r.value().sequences()[0], (std::vector<int64_t>{1, 3, 2}));
  EXPECT_EQ(r.value().sequences()[1], (std::vector<int64_t>{3, 4, 1}));
  EXPECT_TRUE(report.vocab_renumbered);
  EXPECT_EQ(report.max_item_id_seen, 9000000);
  EXPECT_EQ(report.num_items, 4);
  std::remove(path.c_str());
}

TEST(RepairValidationTest, DenseVocabularyIsNotRenumbered) {
  const std::string path = TempPath("val_dense.txt");
  WriteRaw(path, "1 2 3\n3 2 1\n");
  QuarantineReport report;
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", Repair(), &report);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(report.vocab_renumbered);
  EXPECT_EQ(r.value().num_items(), 3);
  std::remove(path.c_str());
}

TEST(RepairValidationTest, AllLinesGarbageIsInvalidArgument) {
  const std::string path = TempPath("val_all_bad.txt");
  WriteRaw(path, "x y\nz\n");
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", Repair());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  std::remove(path.c_str());
}

// --- Metrics + JSONL ------------------------------------------------------

TEST(QuarantineReportTest, MetricsCountersMatchReport) {
  const std::string path = TempPath("val_metrics.txt");
  WriteRaw(path, "1 2 bad\n3 3 4\n");
  obs::MetricsRegistry registry;
  ValidationOptions o = Repair();
  o.metrics = &registry;
  QuarantineReport report;
  ASSERT_TRUE(LoadSequenceFileValidated(path, "x", o, &report).ok());
  EXPECT_EQ(registry.counter("data.loads_ok").value(), 1);
  EXPECT_EQ(registry.counter("data.lines_kept").value(), 2);
  EXPECT_EQ(registry.counter("data.tokens_dropped").value(), 2);
  EXPECT_EQ(
      registry.counter("data.quarantined.non_numeric_token").value(), 1);
  EXPECT_EQ(
      registry.counter("data.quarantined.consecutive_repeat").value(), 1);

  // A failed strict load shows up as data.loads_failed.
  ValidationOptions s = Strict();
  s.metrics = &registry;
  ASSERT_FALSE(LoadSequenceFileValidated(path, "x", s).ok());
  EXPECT_EQ(registry.counter("data.loads_failed").value(), 1);
  std::remove(path.c_str());
}

TEST(QuarantineReportTest, JsonlHasSummaryAndSamples) {
  const std::string path = TempPath("val_jsonl.txt");
  WriteRaw(path, "1 2 bad\n3 4\n");
  QuarantineReport report;
  ASSERT_TRUE(LoadSequenceFileValidated(path, "x", Repair(), &report).ok());
  const std::string jsonl = report.ToJsonl();
  EXPECT_NE(jsonl.find("\"type\":\"quarantine_summary\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"non_numeric_token\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"quarantine_sample\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"token\":\"bad\""), std::string::npos);
  // Every line is a JSON object with a leading type field.
  size_t start = 0;
  while (start < jsonl.size()) {
    EXPECT_EQ(jsonl.compare(start, 9, "{\"type\":\""), 0);
    start = jsonl.find('\n', start) + 1;
  }

  const std::string out = TempPath("val_jsonl_out.jsonl");
  ASSERT_TRUE(WriteQuarantineJsonl(report, out).ok());
  FILE* f = std::fopen(out.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(out.c_str());
  std::remove(path.c_str());
}

TEST(QuarantineReportTest, JsonlWriteFaultLeavesNoDestination) {
  QuarantineReport report;
  report.path = "x";
  const std::string out = TempPath("val_jsonl_fault.jsonl");
  FaultInjectionEnv env;
  env.ArmFault(FaultInjectionEnv::Fault::kShortWrite);
  const Status st = WriteQuarantineJsonl(report, out, &env);
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(env.FileExists(out));
  std::remove((out + ".tmp").c_str());
}

// --- io::Env routing: read faults apply to datasets -----------------------

TEST(ReadFaultTest, InjectedReadFailureIsIOError) {
  const std::string path = TempPath("val_read_fail.txt");
  WriteRaw(path, "1 2 3\n");
  FaultInjectionEnv env;
  ValidationOptions o = Strict();
  o.env = &env;
  env.ArmFault(FaultInjectionEnv::Fault::kFailRead);
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
  EXPECT_NE(r.status().message().find("injected"), std::string::npos);
  // Disarmed: the same load succeeds.
  EXPECT_TRUE(LoadSequenceFileValidated(path, "x", o).ok());
  std::remove(path.c_str());
}

TEST(ReadFaultTest, BitRotOnReadSurfacesAsTypedStatusUnderStrict) {
  // ^0x40 never maps a digit to a digit, so flipping any byte of a
  // digits-and-separators file must produce a Corruption, never a crash
  // or a silently different dataset.
  const std::string path = TempPath("val_read_rot.txt");
  WriteRaw(path, "11 12 13 14\n21 22 23 24\n31 32 33 34\n");
  FaultInjectionEnv env;
  ValidationOptions o = Strict();
  o.env = &env;
  env.ArmFault(FaultInjectionEnv::Fault::kCorruptRead);
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(ReadFaultTest, ShortReadNeverCrashesAndNeverOverReports) {
  const std::string path = TempPath("val_read_short.txt");
  WriteRaw(path, "1 2 3\n4 5 6\n7 8 9\n");
  FaultInjectionEnv env;
  ValidationOptions o = Repair();
  o.env = &env;
  env.ArmFault(FaultInjectionEnv::Fault::kShortRead);
  const Result<InteractionDataset> r =
      LoadSequenceFileValidated(path, "x", o);
  // Half the file is still parseable text; whichever way it goes, the
  // result is a typed Status or a dataset no larger than the original.
  if (r.ok()) {
    EXPECT_LE(r.value().num_users(), 3);
  } else {
    EXPECT_FALSE(r.status().message().empty());
  }
  std::remove(path.c_str());
}

// --- Crash-safe SaveSequenceFile ------------------------------------------

InteractionDataset TwoUserDataset() {
  return InteractionDataset("save-test", {{1, 2, 3}, {2, 3}}, 3);
}

TEST(SaveSequenceFileTest, MidWriteCrashPreservesPreviousDataset) {
  const std::string path = TempPath("val_save_crash.txt");
  FaultInjectionEnv env;
  const InteractionDataset first = TwoUserDataset();
  ASSERT_TRUE(SaveSequenceFile(first, path, &env).ok());

  const InteractionDataset second("save-test", {{3, 1}, {1, 2, 3, 1}}, 3);
  env.ArmFault(FaultInjectionEnv::Fault::kCrashDuringWrite);
  EXPECT_THROW(SaveSequenceFile(second, path, &env), InjectedCrash);

  // The "process" died mid-write: the destination still holds the first
  // dataset in full.
  const Result<InteractionDataset> back = LoadSequenceFile(path, "back");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().sequences(), first.sequences());
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(SaveSequenceFileTest, ShortWriteIsDetectedAndRolledBack) {
  const std::string path = TempPath("val_save_short.txt");
  FaultInjectionEnv env;
  const InteractionDataset first = TwoUserDataset();
  ASSERT_TRUE(SaveSequenceFile(first, path, &env).ok());

  env.ArmFault(FaultInjectionEnv::Fault::kShortWrite);
  const Status st = SaveSequenceFile(first, path, &env);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("short write"), std::string::npos);

  const Result<InteractionDataset> back = LoadSequenceFile(path, "back");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().sequences(), first.sequences());
  std::remove(path.c_str());
}

TEST(SaveSequenceFileTest, RenameFaultLeavesDestinationUntouched) {
  const std::string path = TempPath("val_save_rename.txt");
  FaultInjectionEnv env;
  const InteractionDataset first = TwoUserDataset();
  ASSERT_TRUE(SaveSequenceFile(first, path, &env).ok());
  env.ArmFault(FaultInjectionEnv::Fault::kFailRename);
  ASSERT_FALSE(SaveSequenceFile(first, path, &env).ok());
  ASSERT_TRUE(LoadSequenceFile(path, "back").ok());
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace data
}  // namespace slime
