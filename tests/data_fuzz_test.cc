// Deterministic byte-mutation fuzzing of the two binary-input surfaces:
// the sequence-file loader and the SLM2 checkpoint reader. Every variant
// is derived from a fixed seed, so a failure reproduces exactly; the
// property under test is uniform: adversarial bytes may be rejected or
// (in repair mode) salvaged, but must always come back as a typed Status
// within the configured resource caps — never a crash, hang, or
// unbounded allocation. Runs under ASan/UBSan in CI via the full ctest
// sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/slime4rec.h"
#include "data/validation.h"
#include "io/checkpoint.h"
#include "io/env.h"
#include "state/state_store.h"
#include "state/wal.h"

namespace slime {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Applies one random edit: flip a byte, insert a byte, delete a byte,
// truncate, or duplicate a chunk. Compound damage comes from applying
// this 1-4 times per variant.
void MutateOnce(std::string* bytes, Rng* rng) {
  if (bytes->empty()) {
    bytes->push_back(static_cast<char>(rng->Uniform(256)));
    return;
  }
  const size_t pos = rng->Uniform(bytes->size());
  switch (rng->Uniform(5)) {
    case 0:  // bit/byte flip
      (*bytes)[pos] = static_cast<char>(rng->Uniform(256));
      break;
    case 1:  // insert
      bytes->insert(pos, 1, static_cast<char>(rng->Uniform(256)));
      break;
    case 2:  // delete
      bytes->erase(pos, 1);
      break;
    case 3:  // truncate
      bytes->resize(pos);
      break;
    case 4: {  // duplicate a chunk (models a botched partial rewrite)
      const size_t len =
          std::min(bytes->size() - pos, static_cast<size_t>(16));
      bytes->insert(pos, bytes->substr(pos, len));
      break;
    }
  }
}

std::string MutateVariant(const std::string& base, Rng* rng) {
  std::string bytes = base;
  const int edits = static_cast<int>(rng->UniformInt(1, 4));
  for (int i = 0; i < edits; ++i) MutateOnce(&bytes, rng);
  return bytes;
}

TEST(DataFuzzTest, MutatedSequenceFilesAlwaysReturnTypedStatus) {
  // A well-formed baseline: 16 users over a 40-item vocabulary.
  std::string base;
  Rng gen(101);
  for (int u = 0; u < 16; ++u) {
    const int len = static_cast<int>(gen.UniformInt(3, 10));
    for (int i = 0; i < len; ++i) {
      if (i > 0) base += ' ';
      base += std::to_string(gen.UniformInt(1, 40));
    }
    base += '\n';
  }

  // Tight caps so even a "successful" parse of garbage stays tiny.
  data::ValidationLimits limits;
  limits.max_file_bytes = 1 << 16;
  limits.max_line_bytes = 1 << 12;
  limits.max_users = 256;
  limits.max_sequence_length = 64;
  limits.max_item_id = 10000;

  const std::string path = TempPath("fuzz_seq.txt");
  io::Env* env = io::Env::Default();
  Rng rng(4242);
  for (int trial = 0; trial < 512; ++trial) {
    const std::string bytes = MutateVariant(base, &rng);
    ASSERT_TRUE(env->WriteFile(path, bytes).ok());
    data::ValidationOptions options;
    options.policy = (trial % 2 == 0) ? data::ValidationPolicy::kStrict
                                      : data::ValidationPolicy::kRepair;
    options.limits = limits;
    data::QuarantineReport report;
    const Result<data::InteractionDataset> r =
        data::LoadSequenceFileValidated(path, "fuzz", options, &report);
    if (r.ok()) {
      EXPECT_LE(r.value().num_users(), limits.max_users) << "trial " << trial;
      EXPECT_LE(r.value().num_items(), limits.max_item_id)
          << "trial " << trial;
      for (const auto& seq : r.value().sequences()) {
        EXPECT_LE(static_cast<int64_t>(seq.size()),
                  limits.max_sequence_length);
      }
    } else {
      EXPECT_FALSE(r.status().message().empty()) << "trial " << trial;
    }
    // The accounting invariant holds on every path that parsed lines.
    EXPECT_EQ(report.tokens_kept + report.tokens_dropped,
              report.tokens_total)
        << "trial " << trial;
  }
  std::remove(path.c_str());
}

TEST(DataFuzzTest, MutatedCheckpointsAlwaysReturnTypedStatus) {
  core::Slime4RecConfig config;
  config.num_items = 15;
  config.num_users = 5;
  config.max_len = 8;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.seed = 3;

  const std::string path = TempPath("fuzz_ckpt.bin");
  io::Env* env = io::Env::Default();
  std::string base;
  {
    core::Slime4Rec model(config);
    ASSERT_TRUE(io::SaveCheckpoint(model, path).ok());
    Result<std::string> bytes = env->ReadFile(path);
    ASSERT_TRUE(bytes.ok());
    base = std::move(bytes).value();
  }

  Rng rng(90210);
  int rejected = 0;
  for (int trial = 0; trial < 512; ++trial) {
    const std::string bytes = MutateVariant(base, &rng);
    ASSERT_TRUE(env->WriteFile(path, bytes).ok());
    // A fresh model every time: LoadCheckpoint documents that a failed
    // load may leave partially-copied parameters behind.
    core::Slime4Rec model(config);
    const Status st = io::LoadCheckpoint(&model, path);
    if (!st.ok()) {
      ++rejected;
      EXPECT_FALSE(st.message().empty()) << "trial " << trial;
    }
    // An ok() here means the CRC survived the mutation byte-for-byte —
    // astronomically unlikely but not a bug; the requirement is only
    // "typed Status, no crash".
  }
  // The CRC footer must catch essentially everything.
  EXPECT_GE(rejected, 510);
  std::remove(path.c_str());
}

// True if `got` is a prefix of `want`.
bool IsPrefixOf(const std::vector<int64_t>& got,
                const std::vector<int64_t>& want) {
  if (got.size() > want.size()) return false;
  return std::equal(got.begin(), got.end(), want.begin());
}

TEST(DataFuzzTest, MutatedWalSegmentsRecoverWithoutFabricatedState) {
  // A known event stream: user u accumulates items u*100+1, u*100+2, ...
  // one per append, round-robin over 4 users, 24 events total. The CRC
  // framing must guarantee that recovery from ANY mutation of the WAL
  // yields per-user histories that are prefixes of this stream — damage
  // may cost events (truncation at the first bad frame) but can never
  // fabricate, reorder, or alter one.
  const std::string dir = TempPath("fuzz_wal_dir");
  io::Env* env = io::Env::Default();
  (void)env->RemoveFile(dir + "/state.snapshot");
  std::vector<std::vector<int64_t>> full(4);
  std::string base;
  {
    state::StateStoreOptions options;
    options.dir = dir;
    options.sync = state::SyncMode::kAlways;
    options.snapshot_every_records = 0;
    (void)env->RemoveFile(dir + "/state.wal");
    Result<std::unique_ptr<state::StateStore>> store =
        state::StateStore::Open(options);
    ASSERT_TRUE(store.ok());
    for (int e = 0; e < 24; ++e) {
      const uint64_t user = static_cast<uint64_t>(e % 4);
      const int64_t item = static_cast<int64_t>(user) * 100 + e / 4 + 1;
      full[user].push_back(item);
      ASSERT_TRUE(store.value()->Append(user, {item}).ok());
    }
    Result<std::string> bytes = env->ReadFile(dir + "/state.wal");
    ASSERT_TRUE(bytes.ok());
    base = std::move(bytes).value();
  }

  Rng rng(777);
  for (int trial = 0; trial < 512; ++trial) {
    const std::string bytes = MutateVariant(base, &rng);
    ASSERT_TRUE(env->WriteFile(dir + "/state.wal", bytes).ok());
    state::StateStoreOptions options;
    options.dir = dir;
    options.sync = state::SyncMode::kNone;
    options.snapshot_every_records = 0;
    Result<std::unique_ptr<state::StateStore>> store =
        state::StateStore::Open(options);
    // A damaged WAL never fails recovery: it truncates at the last valid
    // frame, typed and accounted.
    ASSERT_TRUE(store.ok()) << "trial " << trial << ": "
                            << store.status().ToString();
    const state::RecoveryReport& report = store.value()->recovery();
    EXPECT_LE(report.wal_records_replayed, 24) << "trial " << trial;
    EXPECT_GE(report.wal_bytes_truncated, 0) << "trial " << trial;
    EXPECT_EQ(report.wal_torn, !report.tail_status.ok()) << "trial " << trial;
    for (uint64_t u = 0; u < 4; ++u) {
      EXPECT_TRUE(IsPrefixOf(store.value()->History(u), full[u]))
          << "trial " << trial << " user " << u;
    }
    // Recovery repaired the file in place: a second recovery must be clean
    // and byte-identical in outcome.
    Result<std::unique_ptr<state::StateStore>> again =
        state::StateStore::Open(options);
    ASSERT_TRUE(again.ok()) << "trial " << trial;
    EXPECT_FALSE(again.value()->recovery().wal_torn) << "trial " << trial;
    EXPECT_EQ(again.value()->last_seq(), store.value()->last_seq())
        << "trial " << trial;
    for (uint64_t u = 0; u < 4; ++u) {
      EXPECT_EQ(again.value()->History(u), store.value()->History(u))
          << "trial " << trial << " user " << u;
    }
  }
  std::remove((dir + "/state.wal").c_str());
}

TEST(DataFuzzTest, MutatedSnapshotsAlwaysReturnTypedStatus) {
  const std::string dir = TempPath("fuzz_snap_dir");
  io::Env* env = io::Env::Default();
  std::string base;
  {
    state::StateStoreOptions options;
    options.dir = dir;
    options.sync = state::SyncMode::kAlways;
    options.snapshot_every_records = 0;
    (void)env->RemoveFile(dir + "/state.wal");
    (void)env->RemoveFile(dir + "/state.snapshot");
    Result<std::unique_ptr<state::StateStore>> store =
        state::StateStore::Open(options);
    ASSERT_TRUE(store.ok());
    for (int e = 0; e < 12; ++e) {
      ASSERT_TRUE(
          store.value()->Append(static_cast<uint64_t>(e % 3), {e + 1}).ok());
    }
    ASSERT_TRUE(store.value()->Compact().ok());
    Result<std::string> bytes = env->ReadFile(dir + "/state.snapshot");
    ASSERT_TRUE(bytes.ok());
    base = std::move(bytes).value();
  }

  Rng rng(31337);
  int rejected = 0;
  for (int trial = 0; trial < 512; ++trial) {
    const std::string bytes = MutateVariant(base, &rng);
    ASSERT_TRUE(env->WriteFile(dir + "/state.snapshot", bytes).ok());
    state::StateStoreOptions options;
    options.dir = dir;
    options.sync = state::SyncMode::kNone;
    options.snapshot_every_records = 0;
    Result<std::unique_ptr<state::StateStore>> store =
        state::StateStore::Open(options);
    // Unlike the WAL (append-only, truncate-and-continue), a snapshot is
    // load-bearing: serving must not start from silently-drifted state, so
    // a damaged one fails Open with a typed status.
    if (!store.ok()) {
      ++rejected;
      EXPECT_FALSE(store.status().message().empty()) << "trial " << trial;
    }
    // ok() means the envelope CRC survived byte-for-byte — astronomically
    // unlikely, not a bug; the requirement is "typed Status, no crash".
  }
  EXPECT_GE(rejected, 510);
  std::remove((dir + "/state.snapshot").c_str());
  std::remove((dir + "/state.wal").c_str());
}

}  // namespace
}  // namespace slime
