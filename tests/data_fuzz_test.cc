// Deterministic byte-mutation fuzzing of the two binary-input surfaces:
// the sequence-file loader and the SLM2 checkpoint reader. Every variant
// is derived from a fixed seed, so a failure reproduces exactly; the
// property under test is uniform: adversarial bytes may be rejected or
// (in repair mode) salvaged, but must always come back as a typed Status
// within the configured resource caps — never a crash, hang, or
// unbounded allocation. Runs under ASan/UBSan in CI via the full ctest
// sweep.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/slime4rec.h"
#include "data/validation.h"
#include "io/checkpoint.h"
#include "io/env.h"

namespace slime {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Applies one random edit: flip a byte, insert a byte, delete a byte,
// truncate, or duplicate a chunk. Compound damage comes from applying
// this 1-4 times per variant.
void MutateOnce(std::string* bytes, Rng* rng) {
  if (bytes->empty()) {
    bytes->push_back(static_cast<char>(rng->Uniform(256)));
    return;
  }
  const size_t pos = rng->Uniform(bytes->size());
  switch (rng->Uniform(5)) {
    case 0:  // bit/byte flip
      (*bytes)[pos] = static_cast<char>(rng->Uniform(256));
      break;
    case 1:  // insert
      bytes->insert(pos, 1, static_cast<char>(rng->Uniform(256)));
      break;
    case 2:  // delete
      bytes->erase(pos, 1);
      break;
    case 3:  // truncate
      bytes->resize(pos);
      break;
    case 4: {  // duplicate a chunk (models a botched partial rewrite)
      const size_t len =
          std::min(bytes->size() - pos, static_cast<size_t>(16));
      bytes->insert(pos, bytes->substr(pos, len));
      break;
    }
  }
}

std::string MutateVariant(const std::string& base, Rng* rng) {
  std::string bytes = base;
  const int edits = static_cast<int>(rng->UniformInt(1, 4));
  for (int i = 0; i < edits; ++i) MutateOnce(&bytes, rng);
  return bytes;
}

TEST(DataFuzzTest, MutatedSequenceFilesAlwaysReturnTypedStatus) {
  // A well-formed baseline: 16 users over a 40-item vocabulary.
  std::string base;
  Rng gen(101);
  for (int u = 0; u < 16; ++u) {
    const int len = static_cast<int>(gen.UniformInt(3, 10));
    for (int i = 0; i < len; ++i) {
      if (i > 0) base += ' ';
      base += std::to_string(gen.UniformInt(1, 40));
    }
    base += '\n';
  }

  // Tight caps so even a "successful" parse of garbage stays tiny.
  data::ValidationLimits limits;
  limits.max_file_bytes = 1 << 16;
  limits.max_line_bytes = 1 << 12;
  limits.max_users = 256;
  limits.max_sequence_length = 64;
  limits.max_item_id = 10000;

  const std::string path = TempPath("fuzz_seq.txt");
  io::Env* env = io::Env::Default();
  Rng rng(4242);
  for (int trial = 0; trial < 512; ++trial) {
    const std::string bytes = MutateVariant(base, &rng);
    ASSERT_TRUE(env->WriteFile(path, bytes).ok());
    data::ValidationOptions options;
    options.policy = (trial % 2 == 0) ? data::ValidationPolicy::kStrict
                                      : data::ValidationPolicy::kRepair;
    options.limits = limits;
    data::QuarantineReport report;
    const Result<data::InteractionDataset> r =
        data::LoadSequenceFileValidated(path, "fuzz", options, &report);
    if (r.ok()) {
      EXPECT_LE(r.value().num_users(), limits.max_users) << "trial " << trial;
      EXPECT_LE(r.value().num_items(), limits.max_item_id)
          << "trial " << trial;
      for (const auto& seq : r.value().sequences()) {
        EXPECT_LE(static_cast<int64_t>(seq.size()),
                  limits.max_sequence_length);
      }
    } else {
      EXPECT_FALSE(r.status().message().empty()) << "trial " << trial;
    }
    // The accounting invariant holds on every path that parsed lines.
    EXPECT_EQ(report.tokens_kept + report.tokens_dropped,
              report.tokens_total)
        << "trial " << trial;
  }
  std::remove(path.c_str());
}

TEST(DataFuzzTest, MutatedCheckpointsAlwaysReturnTypedStatus) {
  core::Slime4RecConfig config;
  config.num_items = 15;
  config.num_users = 5;
  config.max_len = 8;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.seed = 3;

  const std::string path = TempPath("fuzz_ckpt.bin");
  io::Env* env = io::Env::Default();
  std::string base;
  {
    core::Slime4Rec model(config);
    ASSERT_TRUE(io::SaveCheckpoint(model, path).ok());
    Result<std::string> bytes = env->ReadFile(path);
    ASSERT_TRUE(bytes.ok());
    base = std::move(bytes).value();
  }

  Rng rng(90210);
  int rejected = 0;
  for (int trial = 0; trial < 512; ++trial) {
    const std::string bytes = MutateVariant(base, &rng);
    ASSERT_TRUE(env->WriteFile(path, bytes).ok());
    // A fresh model every time: LoadCheckpoint documents that a failed
    // load may leave partially-copied parameters behind.
    core::Slime4Rec model(config);
    const Status st = io::LoadCheckpoint(&model, path);
    if (!st.ok()) {
      ++rejected;
      EXPECT_FALSE(st.message().empty()) << "trial " << trial;
    }
    // An ok() here means the CRC survived the mutation byte-for-byte —
    // astronomically unlikely but not a bug; the requirement is only
    // "typed Status, no crash".
  }
  // The CRC footer must catch essentially everything.
  EXPECT_GE(rejected, 510);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slime
