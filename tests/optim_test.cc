#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "optim/adam.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace optim {
namespace {

using autograd::Param;
using autograd::Sub;
using autograd::Sum;
using autograd::Variable;

/// Quadratic bowl loss ||x - target||^2.
Variable Quadratic(const Variable& x, const Tensor& target) {
  Variable d = autograd::AddConst(x, ops::MulScalar(target, -1.0f));
  return Sum(autograd::Mul(d, d));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(1);
  Variable x = Param(Tensor::Randn({8}, &rng, 2.0f));
  const Tensor target = Tensor::Randn({8}, &rng);
  Adam adam({x}, {.lr = 0.05f});
  for (int step = 0; step < 400; ++step) {
    Quadratic(x, target).Backward();
    adam.Step();
  }
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(x.value()[i], target[i], 1e-2);
  }
}

TEST(AdamTest, StepClearsGradients) {
  Variable x = Param(Tensor::Ones({3}));
  Adam adam({x});
  Sum(autograd::Mul(x, x)).Backward();
  EXPECT_TRUE(x.has_grad());
  adam.Step();
  EXPECT_FALSE(x.has_grad());
}

TEST(AdamTest, FirstStepMagnitudeIsLr) {
  // With bias correction, the first Adam step has magnitude ~lr regardless
  // of gradient scale.
  Variable x = Param(Tensor::Full({1}, 100.0f));
  Adam adam({x}, {.lr = 0.01f});
  autograd::MulScalar(x, 1000.0f).Backward();
  adam.Step();
  EXPECT_NEAR(x.value()[0], 100.0f - 0.01f, 1e-4);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Variable x = Param(Tensor::Full({1}, 1.0f));
  Adam adam({x}, {.lr = 0.1f, .weight_decay = 1.0f});
  // Zero loss gradient: only decay acts.
  autograd::MulScalar(x, 0.0f).Backward();
  adam.Step();
  EXPECT_LT(x.value()[0], 1.0f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Rng rng(2);
  Variable x = Param(Tensor::Randn({4}, &rng, 2.0f));
  const Tensor target = Tensor::Randn({4}, &rng);
  Sgd sgd({x}, {.lr = 0.05f});
  for (int step = 0; step < 300; ++step) {
    Quadratic(x, target).Backward();
    sgd.Step();
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x.value()[i], target[i], 1e-2);
  }
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  auto run = [](float momentum) {
    Variable x = Param(Tensor::Full({1}, 10.0f));
    const Tensor target = Tensor::Zeros({1});
    Sgd sgd({x}, {.lr = 0.01f, .momentum = momentum});
    for (int step = 0; step < 30; ++step) {
      Quadratic(x, target).Backward();
      sgd.Step();
    }
    return std::abs(x.value()[0]);
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(ClipGradNormTest, LargeGradientsAreScaled) {
  Variable x = Param(Tensor::Full({4}, 1.0f));
  autograd::MulScalar(Sum(autograd::Mul(x, x)), 100.0f).Backward();
  // grad = 200 per element -> norm 400.
  Adam adam({x});
  adam.ClipGradNorm(1.0);
  EXPECT_NEAR(ops::Norm(x.grad()), 1.0, 1e-4);
}

TEST(ClipGradNormTest, SmallGradientsUntouched) {
  Variable x = Param(Tensor::Full({4}, 0.001f));
  Sum(autograd::Mul(x, x)).Backward();
  const Tensor before = x.grad().Clone();
  Adam adam({x});
  adam.ClipGradNorm(10.0);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(x.grad()[i], before[i]);
  }
}

TEST(AdamTest, SharedHandleUpdatesModelParameters) {
  // The optimizer sees the same storage the "model" holds.
  Variable model_param = Param(Tensor::Full({2}, 5.0f));
  Variable opt_handle = model_param;  // copy shares the node
  Adam adam({opt_handle}, {.lr = 0.5f});
  Sum(model_param).Backward();
  adam.Step();
  EXPECT_LT(model_param.value()[0], 5.0f);
}

}  // namespace
}  // namespace optim
}  // namespace slime
