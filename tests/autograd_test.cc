#include "autograd/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.h"
#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace autograd {
namespace {

using Fn = std::function<Variable(const std::vector<Variable>&)>;

void ExpectGradOk(const Fn& fn, std::vector<Variable> inputs,
                  double tol = 2e-2) {
  const GradCheckResult r = CheckGradients(fn, std::move(inputs), 1e-3, tol);
  EXPECT_TRUE(r.ok) << r.message << " (max_abs_err=" << r.max_abs_err
                    << ", max_rel_err=" << r.max_rel_err << ")";
}

Variable RandParam(std::vector<int64_t> shape, uint64_t seed,
                   float scale = 1.0f) {
  Rng rng(seed);
  return Param(Tensor::Randn(std::move(shape), &rng, scale));
}

TEST(AutogradTest, BackwardOnScalarAccumulatesOnes) {
  Variable x = Param(Tensor::Scalar(2.0f));
  Variable y = MulScalar(x, 3.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossUses) {
  Variable x = Param(Tensor::Scalar(2.0f));
  // y = x * x uses x twice: dy/dx = 2x = 4.
  Variable y = Mul(x, x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
}

TEST(AutogradTest, ZeroGradClears) {
  Variable x = Param(Tensor::Scalar(1.0f));
  Variable y = MulScalar(x, 5.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(AutogradTest, ConstantsReceiveNoGradient) {
  Variable c = Constant(Tensor::Scalar(3.0f));
  Variable x = Param(Tensor::Scalar(2.0f));
  Variable y = Mul(c, x);
  y.Backward();
  EXPECT_FALSE(c.has_grad());
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
}

TEST(AutogradTest, DiamondGraphTopologicalOrder) {
  // z = (x*2) + (x*3); dz/dx = 5.
  Variable x = Param(Tensor::Scalar(1.0f));
  Variable a = MulScalar(x, 2.0f);
  Variable b = MulScalar(x, 3.0f);
  Variable z = Add(a, b);
  z.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
}

TEST(AutogradGradcheck, AddBroadcast) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Add(in[0], in[1]));
      },
      {RandParam({2, 3}, 1), RandParam({3}, 2)});
}

TEST(AutogradGradcheck, SubBroadcastColumn) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Sub(in[0], in[1]));
      },
      {RandParam({2, 3}, 3), RandParam({2, 1}, 4)});
}

TEST(AutogradGradcheck, MulBroadcast) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Mul(in[0], in[1]));
      },
      {RandParam({2, 3}, 5), RandParam({1, 3}, 6)});
}

TEST(AutogradGradcheck, DivisionAwayFromZero) {
  Rng rng(7);
  Tensor denom = Tensor::RandUniform({2, 3}, &rng, 1.0f, 2.0f);
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Div(in[0], in[1]));
      },
      {RandParam({2, 3}, 8), Param(denom)});
}

TEST(AutogradGradcheck, MatMul) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(MatMul(in[0], in[1]));
      },
      {RandParam({3, 4}, 9), RandParam({4, 2}, 10)});
}

TEST(AutogradGradcheck, MatMulTransB) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(MatMulTransB(in[0], in[1]));
      },
      {RandParam({3, 4}, 11), RandParam({5, 4}, 12)});
}

TEST(AutogradGradcheck, BatchMatMul) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(BatchMatMul(in[0], in[1]));
      },
      {RandParam({2, 3, 4}, 13), RandParam({2, 4, 2}, 14)});
}

TEST(AutogradGradcheck, BatchMatMulTransB) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(BatchMatMulTransB(in[0], in[1]));
      },
      {RandParam({2, 3, 4}, 15), RandParam({2, 5, 4}, 16)});
}

TEST(AutogradGradcheck, BroadcastMatMul) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(BroadcastMatMul(in[0], in[1]));
      },
      {RandParam({3, 4}, 17), RandParam({2, 4, 5}, 18)});
}

TEST(AutogradGradcheck, UnaryNonlinearities) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Gelu(in[0])); },
      {RandParam({2, 5}, 19)});
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Sigmoid(in[0])); },
      {RandParam({2, 5}, 20)});
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Tanh(in[0])); },
      {RandParam({2, 5}, 21)});
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Exp(in[0])); },
      {RandParam({2, 5}, 22, 0.5f)});
}

TEST(AutogradGradcheck, LogAndSqrtPositiveDomain) {
  Rng rng(23);
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Log(in[0])); },
      {Param(Tensor::RandUniform({2, 4}, &rng, 0.5f, 2.0f))});
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Sqrt(in[0])); },
      {Param(Tensor::RandUniform({2, 4}, &rng, 0.5f, 2.0f))});
}

TEST(AutogradGradcheck, ReluAwayFromKink) {
  Rng rng(24);
  Tensor t = Tensor::Randn({2, 5}, &rng);
  // Keep values away from 0 so finite differences are valid.
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (std::abs(t[i]) < 0.1f) t[i] = 0.5f;
  }
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Sum(Relu(in[0])); },
      {Param(t)});
}

TEST(AutogradGradcheck, ReshapeSliceConcat) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Reshape(in[0], {6, 2}));
      },
      {RandParam({3, 4}, 25)});
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Slice(in[0], 1, 1, 3));
      },
      {RandParam({2, 4, 3}, 26)});
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Concat({in[0], in[1]}, 1));
      },
      {RandParam({2, 3}, 27), RandParam({2, 2}, 28)});
}

TEST(AutogradGradcheck, TransposeLastTwo) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Mul(TransposeLastTwo(in[0]), TransposeLastTwo(in[0])));
      },
      {RandParam({2, 3, 4}, 29)});
}

TEST(AutogradGradcheck, Reductions) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) { return Mean(in[0]); },
      {RandParam({3, 4}, 30)});
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(Mul(SumAxis(in[0], 1, true), SumAxis(in[0], 1, true)));
      },
      {RandParam({2, 3, 2}, 31)});
}

TEST(AutogradGradcheck, SoftmaxAndLogSoftmax) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        // Weighted sum to make the gradient non-uniform.
        Rng rng(100);
        Tensor w = Tensor::Randn({2, 5}, &rng);
        return Sum(MulConst(Softmax(in[0]), w));
      },
      {RandParam({2, 5}, 32)});
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        Rng rng(101);
        Tensor w = Tensor::Randn({2, 5}, &rng);
        return Sum(MulConst(LogSoftmax(in[0]), w));
      },
      {RandParam({2, 5}, 33)});
}

TEST(AutogradGradcheck, CrossEntropy) {
  const std::vector<int64_t> targets = {1, 3, 0};
  ExpectGradOk(
      [targets](const std::vector<Variable>& in) {
        return CrossEntropy(in[0], targets);
      },
      {RandParam({3, 5}, 34)});
}

TEST(AutogradGradcheck, CrossEntropyWithIgnoredRows) {
  const std::vector<int64_t> targets = {1, -100, 2};
  ExpectGradOk(
      [targets](const std::vector<Variable>& in) {
        return CrossEntropy(in[0], targets, -100);
      },
      {RandParam({3, 4}, 35)});
}

TEST(AutogradGradcheck, EmbeddingLookupScatterAdd) {
  const std::vector<int64_t> ids = {0, 2, 2, 1};
  ExpectGradOk(
      [ids](const std::vector<Variable>& in) {
        Rng rng(102);
        Tensor w = Tensor::Randn({2, 2, 3}, &rng);
        return Sum(MulConst(EmbeddingLookup(in[0], ids, {2, 2}), w));
      },
      {RandParam({4, 3}, 36)});
}

TEST(AutogradGradcheck, LayerNormAllInputs) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        Rng rng(103);
        Tensor w = Tensor::Randn({2, 4}, &rng);
        return Sum(MulConst(LayerNorm(in[0], in[1], in[2]), w));
      },
      {RandParam({2, 4}, 37), RandParam({4}, 38, 0.3f),
       RandParam({4}, 39, 0.3f)},
      4e-2);
}

TEST(AutogradGradcheck, MaxPoolAxis1) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(MaxPoolAxis1(in[0]));
      },
      {RandParam({2, 4, 3}, 40)});
}

TEST(AutogradGradcheck, HorizontalConv) {
  ExpectGradOk(
      [](const std::vector<Variable>& in) {
        return Sum(HorizontalConv(in[0], in[1], in[2]));
      },
      {RandParam({2, 5, 3}, 41), RandParam({2, 2, 3}, 42),
       RandParam({2}, 43)});
}

TEST(AutogradTest, CrossEntropyMatchesManual) {
  // Two rows, uniform logits: loss = log(V).
  Variable logits = Param(Tensor::Zeros({2, 4}));
  Variable loss = CrossEntropy(logits, {0, 3});
  EXPECT_NEAR(loss.value()[0], std::log(4.0), 1e-5);
}

TEST(AutogradTest, DropoutEvalIsIdentity) {
  Rng rng(44);
  Variable x = RandParam({3, 3}, 45);
  Variable y = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_EQ(y.node().get(), x.node().get());
}

TEST(AutogradTest, DropoutTrainScalesSurvivors) {
  Rng rng(46);
  Variable x = Param(Tensor::Ones({1000}));
  Variable y = Dropout(x, 0.25f, /*training=*/true, &rng);
  int64_t zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < 1000; ++i) {
    const float v = y.value()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5);
      sum += v;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.25, 0.06);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.1);
}

TEST(AutogradTest, MulConstBackwardUsesMask) {
  Variable x = Param(Tensor::Ones({3}));
  Tensor mask = Tensor::FromVector({3}, {0.0f, 2.0f, 1.0f});
  Variable y = Sum(MulConst(x, mask));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 1.0f);
}

}  // namespace
}  // namespace autograd
}  // namespace slime
