#include "core/slime4rec.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/batcher.h"
#include "optim/adam.h"

namespace slime {
namespace core {
namespace {

Slime4RecConfig SmallConfig() {
  Slime4RecConfig c;
  c.num_items = 20;
  c.num_users = 10;
  c.max_len = 8;
  c.hidden_dim = 16;
  c.num_layers = 2;
  c.dropout = 0.1f;
  c.emb_dropout = 0.1f;
  c.mixer.alpha = 0.5;
  c.seed = 11;
  return c;
}

data::Batch SmallBatch(bool with_positives) {
  data::Batch b;
  b.size = 3;
  b.max_len = 8;
  b.user_ids = {0, 1, 2};
  b.targets = {5, 7, 2};
  b.raw_prefixes = {{1, 2, 3}, {4, 5, 6, 7}, {1}};
  for (const auto& raw : b.raw_prefixes) {
    const auto padded = data::PadTruncate(raw, 8);
    b.input_ids.insert(b.input_ids.end(), padded.begin(), padded.end());
    if (with_positives) {
      b.positive_input_ids.insert(b.positive_input_ids.end(), padded.begin(),
                                  padded.end());
    }
  }
  return b;
}

TEST(Slime4RecTest, EncodeShapes) {
  Slime4Rec model(SmallConfig());
  const data::Batch b = SmallBatch(true);
  autograd::Variable h = model.Encode(b.input_ids, b.size);
  EXPECT_EQ(h.shape(), (std::vector<int64_t>{3, 8, 16}));
  autograd::Variable last = model.EncodeLast(b.input_ids, b.size);
  EXPECT_EQ(last.shape(), (std::vector<int64_t>{3, 16}));
}

TEST(Slime4RecTest, ScoreAllShapeIncludesPaddingColumn) {
  Slime4Rec model(SmallConfig());
  model.SetTraining(false);
  const Tensor scores = model.ScoreAll(SmallBatch(false));
  EXPECT_EQ(scores.shape(), (std::vector<int64_t>{3, 21}));
}

TEST(Slime4RecTest, LossIsFiniteAndBackpropagates) {
  Slime4Rec model(SmallConfig());
  autograd::Variable loss = model.Loss(SmallBatch(true));
  EXPECT_EQ(loss.numel(), 1);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  loss.Backward();
  int64_t with_grad = 0;
  for (const auto& p : model.Parameters()) {
    if (p.has_grad()) ++with_grad;
  }
  // Every parameter participates (embeddings, filters, FFN, norms).
  EXPECT_EQ(with_grad, static_cast<int64_t>(model.Parameters().size()));
}

TEST(Slime4RecTest, ContrastiveTermChangesLoss) {
  Slime4RecConfig with_cl = SmallConfig();
  Slime4RecConfig no_cl = SmallConfig();
  no_cl.use_contrastive = false;
  Slime4Rec m1(with_cl);
  Slime4Rec m2(no_cl);
  // Same seeds -> same parameters; evaluate losses in eval mode so dropout
  // cannot differ.
  m1.SetTraining(false);
  m2.SetTraining(false);
  const data::Batch b = SmallBatch(true);
  const float l1 = m1.Loss(b).value()[0];
  const float l2 = m2.Loss(b).value()[0];
  EXPECT_GT(l1, l2);  // InfoNCE adds a positive term (lambda > 0)
}

TEST(Slime4RecTest, WithoutContrastiveNeedsNoPositives) {
  Slime4RecConfig c = SmallConfig();
  c.use_contrastive = false;
  Slime4Rec model(c);
  EXPECT_FALSE(model.needs_positives());
  autograd::Variable loss = model.Loss(SmallBatch(false));
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
}

TEST(Slime4RecTest, NumLayersMatchesBlocks) {
  Slime4RecConfig c = SmallConfig();
  c.num_layers = 4;
  c.mixer.alpha = 0.2;
  Slime4Rec model(c);
  EXPECT_EQ(model.blocks().size(), 4u);
}

TEST(Slime4RecTest, OverfitsTinyDatasetWithAdam) {
  // Ten steps of Adam on a fixed batch must drive the loss down sharply —
  // the canonical end-to-end learn test for the whole stack (embedding,
  // FFT filters, FFN, CE, contrastive, optimizer).
  Slime4RecConfig c = SmallConfig();
  c.dropout = 0.0f;
  c.emb_dropout = 0.0f;
  Slime4Rec model(c);
  optim::Adam adam(model.Parameters(), {.lr = 0.02f});
  const data::Batch b = SmallBatch(true);
  const float initial = model.Loss(b).value()[0];
  float final_loss = initial;
  for (int step = 0; step < 30; ++step) {
    autograd::Variable loss = model.Loss(b);
    final_loss = loss.value()[0];
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(final_loss, initial * 0.5f);
}

TEST(Slime4RecTest, TrainedModelRanksTargetHigher) {
  Slime4RecConfig c = SmallConfig();
  c.dropout = 0.0f;
  c.emb_dropout = 0.0f;
  Slime4Rec model(c);
  optim::Adam adam(model.Parameters(), {.lr = 0.02f});
  const data::Batch b = SmallBatch(true);
  auto target_rank = [&](int64_t row) {
    model.SetTraining(false);
    const Tensor scores = model.ScoreAll(b);
    model.SetTraining(true);
    const int64_t cols = scores.size(1);
    const float ts = scores.At({row, b.targets[row]});
    int64_t above = 0;
    for (int64_t j = 1; j < cols; ++j) {
      if (scores.At({row, j}) > ts) ++above;
    }
    return above + 1;
  };
  for (int step = 0; step < 40; ++step) {
    autograd::Variable loss = model.Loss(b);
    loss.Backward();
    adam.Step();
  }
  // After overfitting, each target should rank at the very top.
  for (int64_t row = 0; row < b.size; ++row) {
    EXPECT_LE(target_rank(row), 2) << "row " << row;
  }
}

TEST(Slime4RecTest, DeterministicForFixedSeed) {
  Slime4Rec m1(SmallConfig());
  Slime4Rec m2(SmallConfig());
  m1.SetTraining(false);
  m2.SetTraining(false);
  const data::Batch b = SmallBatch(false);
  const Tensor s1 = m1.ScoreAll(b);
  const Tensor s2 = m2.ScoreAll(b);
  for (int64_t i = 0; i < s1.numel(); ++i) {
    EXPECT_FLOAT_EQ(s1[i], s2[i]);
  }
}

TEST(Slime4RecTest, FactoryNameAndConfigRoundTrip) {
  Slime4Rec model(SmallConfig());
  EXPECT_EQ(model.name(), "SLIME4Rec");
  EXPECT_TRUE(model.needs_positives());
  EXPECT_DOUBLE_EQ(model.slime_config().mixer.alpha, 0.5);
}

}  // namespace
}  // namespace core
}  // namespace slime
