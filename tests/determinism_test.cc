// End-to-end determinism of the parallel compute layer: training losses,
// learned parameters, recommendations, and gradcheck must be bit-identical
// at every thread count (the work split is fixed; see compute/thread_pool.h).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "compute/backend.h"
#include "compute/thread_pool.h"
#include "data/synthetic.h"
#include "fft/spectral_ops.h"
#include "models/model_factory.h"
#include "observability/metrics.h"
#include "observability/telemetry.h"
#include "serving/recommendation_service.h"
#include "train/trainer.h"

namespace slime {
namespace {

data::SplitDataset TinySplit() {
  data::SyntheticConfig config;
  config.name = "determinism-tiny";
  config.num_users = 80;
  config.num_items = 30;
  config.num_categories = 3;
  config.num_clusters = 3;
  config.min_len = 6;
  config.max_len = 12;
  config.noise_prob = 0.05;
  config.seed = 99;
  return data::SplitDataset(data::GenerateSynthetic(config), 3);
}

models::ModelConfig TinyModelConfig(const data::SplitDataset& split) {
  models::ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = 8;
  c.hidden_dim = 16;
  c.num_layers = 2;
  c.dropout = 0.1f;
  c.emb_dropout = 0.1f;
  c.seed = 7;
  return c;
}

/// Everything observable from a short training + serving run.
struct RunOutputs {
  double final_loss = 0.0;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<int64_t>> rec_items;
  std::vector<std::vector<float>> rec_scores;
  std::vector<double> epoch_losses;  // only with metrics enabled
};

RunOutputs TrainAndServe(int threads, bool with_metrics = false) {
  compute::ComputeContext ctx(threads);
  // Metrics instrumentation must be invisible to the numerics: the compute
  // counters and telemetry sink observe the run without perturbing it.
  obs::MetricsRegistry registry;
  obs::TrainingTelemetry telemetry(/*echo=*/false);
  if (with_metrics) compute::SetMetricsRegistry(&registry);
  const data::SplitDataset split = TinySplit();
  auto model = models::CreateModel("SLIME4Rec", TinyModelConfig(split));
  train::TrainConfig t;
  t.max_epochs = 2;
  t.batch_size = 32;
  t.lr = 5e-3f;
  t.patience = 100;
  t.seed = 13;
  if (with_metrics) t.telemetry = &telemetry;
  train::Trainer trainer(t);
  const train::TrainResult result = trainer.Fit(model.get(), split).value();

  RunOutputs out;
  out.final_loss = result.final_train_loss;
  for (const auto& e : telemetry.epochs()) out.epoch_losses.push_back(e.loss);
  for (const auto& p : model->Parameters()) {
    out.params.push_back(p.value().ToVector());
  }
  serving::RecommendationService service(model.get());
  serving::RecommendOptions options;
  options.top_k = 10;
  const std::vector<std::vector<int64_t>> histories = {
      {1, 2, 3}, {4, 5, 6, 7, 8}, {9, 10}, {11, 12, 13, 14}};
  const auto recs = service.RecommendBatch(histories, options).value();
  for (const auto& user : recs) {
    std::vector<int64_t> items;
    std::vector<float> scores;
    for (const auto& r : user) {
      items.push_back(r.item);
      scores.push_back(r.score);
    }
    out.rec_items.push_back(std::move(items));
    out.rec_scores.push_back(std::move(scores));
  }
  // Detach before the local registry dies.
  if (with_metrics) compute::SetMetricsRegistry(nullptr);
  return out;
}

void ExpectBitIdentical(const RunOutputs& ref, const RunOutputs& got,
                        const std::string& label) {
  EXPECT_EQ(ref.final_loss, got.final_loss) << label;
  ASSERT_EQ(ref.params.size(), got.params.size());
  for (size_t i = 0; i < ref.params.size(); ++i) {
    ASSERT_EQ(ref.params[i].size(), got.params[i].size());
    EXPECT_EQ(std::memcmp(ref.params[i].data(), got.params[i].data(),
                          ref.params[i].size() * sizeof(float)),
              0)
        << "param " << i << " differs: " << label;
  }
  EXPECT_EQ(ref.rec_items, got.rec_items) << label;
  ASSERT_EQ(ref.rec_scores.size(), got.rec_scores.size());
  for (size_t u = 0; u < ref.rec_scores.size(); ++u) {
    EXPECT_EQ(std::memcmp(ref.rec_scores[u].data(), got.rec_scores[u].data(),
                          ref.rec_scores[u].size() * sizeof(float)),
              0)
        << "scores for user " << u << " differ: " << label;
  }
}

TEST(DeterminismTest, TrainAndServeBitIdenticalAcrossThreadCounts) {
  const RunOutputs ref = TrainAndServe(1);
  ASSERT_FALSE(ref.params.empty());
  for (int threads : {2, 8}) {
    // Scalar loss: exact double equality, not a tolerance (inside the
    // helper).
    ExpectBitIdentical(ref, TrainAndServe(threads),
                       "threads=" + std::to_string(threads));
  }
}

TEST(DeterminismTest, MetricsInstrumentationIsBitInvisible) {
  // The observability layer must not perturb the numerics: runs with the
  // compute registry + telemetry sink attached are bit-identical to the
  // un-instrumented baseline at every thread count, and the telemetry's
  // own per-epoch losses agree exactly across thread counts.
  const RunOutputs ref = TrainAndServe(1, /*with_metrics=*/false);
  RunOutputs first_instrumented;
  for (int threads : {1, 2, 8}) {
    RunOutputs got = TrainAndServe(threads, /*with_metrics=*/true);
    ExpectBitIdentical(
        ref, got, "metrics on, threads=" + std::to_string(threads));
    ASSERT_EQ(got.epoch_losses.size(), 2u);
    if (threads == 1) {
      first_instrumented = got;
    } else {
      EXPECT_EQ(first_instrumented.epoch_losses, got.epoch_losses)
          << "telemetry loss stream differs at threads=" << threads;
    }
  }
}

TEST(DeterminismTest, GradcheckPassesWithPoolActive) {
  compute::ComputeContext ctx(4);
  using autograd::Param;
  using autograd::Sum;
  using autograd::Variable;
  Rng rng(17);
  // The fused complex-multiply op on its broadcast path (B,M,d) * (M,d).
  Variable ar = Param(Tensor::Randn({2, 4, 3}, &rng, 0.5f));
  Variable ai = Param(Tensor::Randn({2, 4, 3}, &rng, 0.5f));
  Variable br = Param(Tensor::Randn({4, 3}, &rng, 0.5f));
  Variable bi = Param(Tensor::Randn({4, 3}, &rng, 0.5f));
  const auto result = autograd::CheckGradients(
      [](const std::vector<Variable>& in) {
        const fft::SpectralPair y =
            fft::ComplexMul({in[0], in[1]}, {in[2], in[3]});
        Rng wrng(5);
        Tensor w1 = Tensor::Randn({2, 4, 3}, &wrng);
        Tensor w2 = Tensor::Randn({2, 4, 3}, &wrng);
        return autograd::Add(Sum(autograd::MulConst(y.re, w1)),
                             Sum(autograd::MulConst(y.im, w2)));
      },
      {ar, ai, br, bi});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(DeterminismTest, GradcheckLayerNormWithPoolActive) {
  compute::ComputeContext ctx(4);
  using autograd::Param;
  using autograd::Sum;
  using autograd::Variable;
  Rng rng(23);
  Variable x = Param(Tensor::Randn({3, 5}, &rng));
  Variable gamma = Param(Tensor::Ones({5}));
  Variable beta = Param(Tensor::Zeros({5}));
  const auto result = autograd::CheckGradients(
      [](const std::vector<Variable>& in) {
        Variable y = autograd::LayerNorm(in[0], in[1], in[2], 1e-5f);
        return Sum(autograd::Mul(y, y));
      },
      {x, gamma, beta});
  EXPECT_TRUE(result.ok) << result.message;
}

// ---- Kernel-backend determinism: bit-identity is a *within-backend*
// contract (each tier at any thread count); across tiers FMA contraction
// shifts the last ulp, so equivalence is gated by gradcheck and top-K
// ranking agreement instead (see docs/KERNELS.md).

/// Restores the default scalar backend when a test body returns.
struct BackendGuard {
  ~BackendGuard() { compute::SetKernelBackend("scalar").value(); }
};

bool SimdAvailable() {
  return compute::SimdBackendCompiled() && compute::CpuSupportsAvx2Fma();
}

TEST(BackendDeterminismTest, EachBackendBitIdenticalAcrossThreadCounts) {
  BackendGuard guard;
  for (const auto& backend : compute::AvailableKernelBackends()) {
    compute::SetKernelBackend(backend).value();
    const RunOutputs ref = TrainAndServe(1);
    ASSERT_FALSE(ref.params.empty());
    for (int threads : {2, 8}) {
      compute::SetKernelBackend(backend).value();
      ExpectBitIdentical(
          ref, TrainAndServe(threads),
          backend + " threads=" + std::to_string(threads));
    }
  }
}

TEST(BackendDeterminismTest, CrossBackendRankingAgreement) {
  if (!SimdAvailable()) GTEST_SKIP() << "simd backend unavailable";
  BackendGuard guard;
  // Same training + serving run under each tier. Losses and scores drift
  // by ulps, but the served rankings must agree almost everywhere.
  compute::SetKernelBackend("scalar").value();
  const RunOutputs scalar_run = TrainAndServe(4);
  compute::SetKernelBackend("simd").value();
  const RunOutputs simd_run = TrainAndServe(4);
  ASSERT_EQ(scalar_run.rec_items.size(), simd_run.rec_items.size());
  int64_t overlap = 0, total = 0;
  for (size_t u = 0; u < scalar_run.rec_items.size(); ++u) {
    for (const int64_t item : scalar_run.rec_items[u]) {
      ++total;
      for (const int64_t other : simd_run.rec_items[u]) {
        if (item == other) {
          ++overlap;
          break;
        }
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(double(overlap) / double(total), 0.8)
      << "top-K overlap " << overlap << "/" << total;
  // The loss trajectories should be close in value even though they are
  // not bit-identical.
  EXPECT_NEAR(scalar_run.final_loss, simd_run.final_loss,
              1e-3 * (1.0 + std::abs(scalar_run.final_loss)));
}

TEST(BackendDeterminismTest, GradcheckPassesUnderSimdBackend) {
  if (!SimdAvailable()) GTEST_SKIP() << "simd backend unavailable";
  BackendGuard guard;
  compute::SetKernelBackend("simd").value();
  compute::ComputeContext ctx(4);
  using autograd::Param;
  using autograd::Sum;
  using autograd::Variable;
  Rng rng(29);
  // MatMul + GELU + LayerNorm chain: exercises the SIMD matmul family in
  // both forward and backward passes.
  Variable a = Param(Tensor::Randn({4, 6}, &rng, 0.5f));
  Variable b = Param(Tensor::Randn({6, 5}, &rng, 0.5f));
  Variable gamma = Param(Tensor::Ones({5}));
  Variable beta = Param(Tensor::Zeros({5}));
  const auto result = autograd::CheckGradients(
      [](const std::vector<Variable>& in) {
        Variable y = autograd::MatMul(in[0], in[1]);
        y = autograd::Gelu(y);
        y = autograd::LayerNorm(y, in[2], in[3], 1e-5f);
        return Sum(autograd::Mul(y, y));
      },
      {a, b, gamma, beta});
  EXPECT_TRUE(result.ok) << result.message;
}

// ---- Rfft path determinism (the half-spectrum fast path): the same
// contract as kernel backends. Bit-identity is *within-path* at any thread
// count (the packed plan's work decomposition depends only on shape);
// across paths the two implementations of the same linear operator differ
// by ulps, so equivalence is gated by gradcheck (fft_test) and top-K
// ranking agreement on a trained model here.

TEST(RfftPathDeterminismTest, EachPathBitIdenticalAcrossThreadCounts) {
  for (const fft::RfftPath path :
       {fft::RfftPath::kPacked, fft::RfftPath::kFullComplex}) {
    fft::RfftPathGuard guard(path);
    const RunOutputs ref = TrainAndServe(1);
    ASSERT_FALSE(ref.params.empty());
    const std::string name =
        path == fft::RfftPath::kPacked ? "packed" : "full-complex";
    for (int threads : {2, 8}) {
      ExpectBitIdentical(ref, TrainAndServe(threads),
                         name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(RfftPathDeterminismTest, CrossPathServingRankingAgreement) {
  // One trained model, served under both paths. Unlike cross-backend
  // training runs (where epochs amplify ulp drift), a single forward pass
  // differs only in rounding, so the served rankings must agree almost
  // exactly.
  compute::ComputeContext ctx(4);
  const data::SplitDataset split = TinySplit();
  auto model = models::CreateModel("SLIME4Rec", TinyModelConfig(split));
  train::TrainConfig t;
  t.max_epochs = 2;
  t.batch_size = 32;
  t.lr = 5e-3f;
  t.patience = 100;
  t.seed = 13;
  train::Trainer(t).Fit(model.get(), split).value();
  serving::RecommendationService service(model.get());
  serving::RecommendOptions options;
  options.top_k = 10;
  std::vector<std::vector<int64_t>> histories;
  for (int64_t u = 0; u < 25; ++u) {
    std::vector<int64_t> h;
    for (int64_t j = 0; j < 3 + u % 5; ++j) {
      h.push_back(1 + (u * 7 + j * 3) % (split.num_items() - 1));
    }
    histories.push_back(std::move(h));
  }
  std::vector<std::vector<serving::Recommendation>> packed, reference;
  {
    fft::RfftPathGuard guard(fft::RfftPath::kPacked);
    packed = service.RecommendBatch(histories, options).value();
  }
  {
    fft::RfftPathGuard guard(fft::RfftPath::kFullComplex);
    reference = service.RecommendBatch(histories, options).value();
  }
  ASSERT_EQ(packed.size(), reference.size());
  int64_t overlap = 0, total = 0;
  for (size_t u = 0; u < packed.size(); ++u) {
    for (const auto& r : packed[u]) {
      ++total;
      for (const auto& o : reference[u]) {
        if (r.item == o.item) {
          ++overlap;
          break;
        }
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GE(double(overlap) / double(total), 0.99)
      << "top-K overlap " << overlap << "/" << total;
}

}  // namespace
}  // namespace slime
