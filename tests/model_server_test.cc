#include "serving/model_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "compute/thread_pool.h"
#include "data/dataset.h"
#include "io/checkpoint.h"
#include "io/env.h"
#include "models/recommender.h"
#include "observability/export.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "tensor/tensor.h"
#include "train/trainer.h"

namespace slime {
namespace serving {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A deterministic stand-in model for server chaos tests. Scores depend
/// only on a single checkpointed parameter ("shift"): item j scores
/// fmod(j + shift, num_items + 1), so the top item is num_items - shift
/// and a reload that changes `shift` visibly changes every ranking. A
/// non-finite shift poisons every score, which is exactly what canary
/// validation must catch. When given a FakeClock and a latency script,
/// each ScoreAll call advances the clock by the scripted amount (the last
/// entry repeats), simulating slow inference without wall-clock sleeps.
class ScriptedModel : public models::SequentialRecommender {
 public:
  ScriptedModel(const models::ModelConfig& config, float shift,
                FakeClock* clock = nullptr,
                std::vector<int64_t> latencies = {})
      : SequentialRecommender(config),
        clock_(clock),
        latencies_(std::move(latencies)) {
    shift_ = RegisterParameter(
        "shift", autograd::Variable(Tensor::Scalar(shift),
                                    /*requires_grad=*/true));
  }

  autograd::Variable Loss(const data::Batch& batch) override {
    (void)batch;
    return shift_;
  }

  Tensor ScoreAll(const data::Batch& batch) override {
    // Forward passes are serialised by the server's inference mutex, so a
    // plain counter is race-free even in the multi-threaded chaos tests.
    const size_t call = static_cast<size_t>(calls_++);
    if (clock_ != nullptr && !latencies_.empty()) {
      clock_->Advance(latencies_[std::min(latencies_.size() - 1, call)]);
    }
    const float shift = shift_.value().data()[0];
    const int64_t cols = config_.num_items + 1;
    Tensor scores = Tensor::Zeros({batch.size, cols});
    float* out = scores.data();
    for (int64_t b = 0; b < batch.size; ++b) {
      for (int64_t j = 0; j < cols; ++j) {
        // A non-finite shift propagates as-is; fmod(x, inf-path) would
        // yield NaN anyway but an explicit branch keeps scores at the
        // exact poisoned value.
        out[b * cols + j] =
            std::isfinite(shift)
                ? std::fmod(static_cast<float>(j) + shift,
                            static_cast<float>(cols))
                : shift;
      }
    }
    return scores;
  }

  std::string name() const override { return "Scripted"; }
  int64_t calls() const { return calls_; }

 private:
  autograd::Variable shift_;
  FakeClock* clock_;
  std::vector<int64_t> latencies_;
  int64_t calls_ = 0;
};

models::ModelConfig TinyConfig() {
  models::ModelConfig c;
  c.num_items = 10;
  c.num_users = 4;
  c.max_len = 8;
  c.hidden_dim = 4;
  c.num_layers = 1;
  return c;
}

std::vector<int64_t> Items(const std::vector<Recommendation>& recs) {
  std::vector<int64_t> items;
  items.reserve(recs.size());
  for (const auto& r : recs) items.push_back(r.item);
  return items;
}

RecommendOptions Top3Unfiltered() {
  RecommendOptions o;
  o.top_k = 3;
  o.exclude_seen = false;
  return o;
}

// --- Clock ---------------------------------------------------------------

TEST(ClockTest, FakeClockAdvancesAndSets) {
  FakeClock clock(5);
  EXPECT_EQ(clock.NowNanos(), 5);
  clock.Advance(10);
  EXPECT_EQ(clock.NowNanos(), 15);
  clock.Set(3);
  EXPECT_EQ(clock.NowNanos(), 3);
}

TEST(ClockTest, DefaultClockIsMonotonic) {
  Clock* clock = Clock::Default();
  const int64_t a = clock->NowNanos();
  const int64_t b = clock->NowNanos();
  EXPECT_GE(b, a);
}

// --- Admission control ---------------------------------------------------

TEST(AdmissionTest, InFlightCapShedsAndReleases) {
  FakeClock clock;
  AdmissionOptions options;
  options.max_in_flight = 2;
  AdmissionController admission(options, &clock);
  EXPECT_TRUE(admission.TryAdmit().admitted);
  EXPECT_TRUE(admission.TryAdmit().admitted);
  const AdmissionDecision shed = admission.TryAdmit();
  EXPECT_FALSE(shed.admitted);
  EXPECT_STREQ(shed.limit, "in-flight");
  EXPECT_EQ(shed.retry_after_nanos, options.in_flight_retry_hint_nanos);
  admission.Release();
  EXPECT_TRUE(admission.TryAdmit().admitted);
  EXPECT_EQ(admission.in_flight(), 2);
}

TEST(AdmissionTest, TokenBucketRefillsOnFakeClock) {
  FakeClock clock;
  AdmissionOptions options;
  options.max_in_flight = 100;
  options.tokens_per_second = 2.0;
  options.burst = 1.0;
  AdmissionController admission(options, &clock);
  EXPECT_TRUE(admission.TryAdmit().admitted);  // the one burst token
  admission.Release();
  const AdmissionDecision shed = admission.TryAdmit();
  ASSERT_FALSE(shed.admitted);
  EXPECT_STREQ(shed.limit, "rate");
  // 2 tokens/s from an empty bucket: next token in exactly half a second.
  EXPECT_EQ(shed.retry_after_nanos, kNanosPerSecond / 2);
  clock.Advance(shed.retry_after_nanos);
  EXPECT_TRUE(admission.TryAdmit().admitted);
}

// --- Popularity fallback -------------------------------------------------

TEST(FallbackTest, RanksByCountWithItemIdTieBreak) {
  const auto fallback =
      PopularityFallback::FromCounts({0, 5, 2, 5});  // items 1..3
  ASSERT_TRUE(fallback.Available());
  EXPECT_EQ(fallback.num_items(), 3);
  const auto top = fallback.Recommend({2}, Top3Unfiltered());
  EXPECT_EQ(Items(top), (std::vector<int64_t>{1, 3, 2}));
}

TEST(FallbackTest, HonoursExclusionsAndIgnoresOutOfRangeHistory) {
  const auto fallback = PopularityFallback::FromCounts({0, 5, 2, 5});
  RecommendOptions options;
  options.top_k = 3;
  // Out-of-range ids in the history must not crash the last-resort tier.
  const auto top = fallback.Recommend({1, 999, -7, 0}, options);
  EXPECT_EQ(Items(top), (std::vector<int64_t>{3, 2}));
}

TEST(FallbackTest, DefaultConstructedIsUnavailable) {
  const PopularityFallback fallback;
  EXPECT_FALSE(fallback.Available());
  EXPECT_EQ(fallback.num_items(), 0);
}

TEST(FallbackTest, FromSplitCountsTrainingRegionOnly) {
  const data::InteractionDataset dataset(
      "toy",
      {{1, 1, 2, 9, 10}, {2, 2, 9, 10}},  // last 2 per user = valid/test
      10);
  const data::SplitDataset split(dataset);
  const auto fallback = PopularityFallback::FromSplit(split);
  RecommendOptions options;
  options.top_k = 4;
  options.exclude_seen = false;
  // Train regions: {1,1,2} and {2,2}: counts 1->2, 2->3; items 9/10 are
  // held-out targets and must score as never-seen.
  const auto top = fallback.Recommend({1}, options);
  EXPECT_EQ(Items(top), (std::vector<int64_t>{2, 1, 3, 4}));
}

// --- Canary export -------------------------------------------------------

TEST(CanaryTest, ExportPicksLongestTrainRegionsTiesByUserId) {
  const data::InteractionDataset dataset("toy",
                                         {{1, 2, 1, 2, 3},     // region len 3
                                          {1, 2, 3},           // region len 1
                                          {2, 3, 2, 3, 4},     // region len 3
                                          {1, 2, 3, 4, 5, 6}},  // len 4
                                         6);
  const data::SplitDataset split(dataset);
  const auto two = train::ExportCanarySet(split, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], (std::vector<int64_t>{1, 2, 3, 4}));  // user 3
  EXPECT_EQ(two[1], (std::vector<int64_t>{1, 2, 1}));     // user 0 beats 2
  const auto all = train::ExportCanarySet(split, 10);
  ASSERT_EQ(all.size(), 4u);  // k capped at the user count
  EXPECT_EQ(all[2], (std::vector<int64_t>{2, 3, 2}));
  EXPECT_EQ(all[3], (std::vector<int64_t>{1}));
}

// --- Server lifecycle ----------------------------------------------------

TEST(ModelServerTest, UnavailableBeforeStartAndWhileDraining) {
  FakeClock clock;
  ModelServer server(ModelServerOptions{}, nullptr, &clock);
  EXPECT_EQ(server.health(), HealthState::kStarting);
  ServeRequest request;
  request.history = {1, 2};
  const auto before = server.Serve(request);
  ASSERT_FALSE(before.ok());
  EXPECT_EQ(before.status().code(), Status::Code::kUnavailable);

  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f)).ok());
  EXPECT_EQ(server.health(), HealthState::kServing);
  server.BeginDrain();
  EXPECT_EQ(server.health(), HealthState::kDraining);
  const auto draining = server.Serve(request);
  ASSERT_FALSE(draining.ok());
  EXPECT_EQ(draining.status().code(), Status::Code::kUnavailable);
}

TEST(ModelServerTest, StartRejectsModelFailingCanaries) {
  FakeClock clock;
  ModelServer server(ModelServerOptions{}, nullptr, &clock);
  server.set_canary_requests({{1, 2, 3}});
  const Status status = server.Start(std::make_unique<ScriptedModel>(
      TinyConfig(), std::numeric_limits<float>::infinity()));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kAborted);
  EXPECT_NE(status.message().find("non-finite"), std::string::npos)
      << status.message();
  EXPECT_EQ(server.health(), HealthState::kStarting);
  EXPECT_EQ(server.stats().rollbacks, 1);
  EXPECT_EQ(server.generation(), 0);
}

TEST(ModelServerTest, ServesFullTierWhenHealthy) {
  FakeClock clock;
  ModelServer server(ModelServerOptions{}, nullptr, &clock);
  server.set_canary_requests({{1, 2, 3}});
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f)).ok());
  ServeRequest request;
  request.history = {1, 2, 3};
  request.options = Top3Unfiltered();
  const auto response = server.Serve(request).value();
  EXPECT_EQ(response.tier, ServeTier::kFullModel);
  EXPECT_TRUE(response.complete);
  EXPECT_EQ(response.generation, 1);
  // shift = 0: score of item j is j, so the top items are 10, 9, 8.
  EXPECT_EQ(Items(response.items), (std::vector<int64_t>{10, 9, 8}));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.served, 1);
  EXPECT_EQ(stats.full_model_served, 1);
  EXPECT_EQ(stats.deadline_exceeded, 0);
  EXPECT_EQ(server.health(), HealthState::kServing);
}

TEST(ModelServerTest, InvalidRequestFailsInsteadOfFallingBack) {
  FakeClock clock;
  ModelServer server(ModelServerOptions{}, nullptr, &clock);
  server.set_fallback(PopularityFallback::FromCounts({0, 3, 2, 1}));
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f)).ok());
  ServeRequest request;
  request.history = {999};  // out of catalogue
  const auto response = server.Serve(request);
  ASSERT_FALSE(response.ok());
  // Bad input is a client error, never silently served by the fallback.
  EXPECT_EQ(response.status().code(), Status::Code::kInvalidArgument);
}

// --- Degradation ladder --------------------------------------------------

TEST(ModelServerLadderTest, DeadlineDropsToFallbackThenRecovers) {
  FakeClock clock;
  ModelServerOptions options;
  options.default_deadline_nanos = 50 * kNanosPerMilli;
  options.recovery_full_responses = 2;
  ModelServer server(options, nullptr, &clock);
  server.set_fallback(PopularityFallback::FromCounts(
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  // First forward pass takes 100 ms (double the deadline); later ones are
  // instantaneous.
  ASSERT_TRUE(server
                  .Start(std::make_unique<ScriptedModel>(
                      TinyConfig(), 0.0f, &clock,
                      std::vector<int64_t>{100 * kNanosPerMilli, 0}))
                  .ok());

  ServeRequest request;
  request.history = {1, 2, 3};
  request.options = Top3Unfiltered();

  // Request 1: the slow pass blows the deadline mid-flight; the popularity
  // fallback rescues the user and the server marks itself degraded.
  const auto first = server.Serve(request).value();
  EXPECT_EQ(first.tier, ServeTier::kPopularityFallback);
  EXPECT_EQ(Items(first.items), (std::vector<int64_t>{10, 9, 8}));
  EXPECT_EQ(server.health(), HealthState::kDegraded);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.fallback_served, 1);
  EXPECT_EQ(stats.deadline_exceeded, 1);
  // The blown pass trained the full-tier cost estimate.
  EXPECT_EQ(stats.full_cost_estimate_nanos, 100 * kNanosPerMilli);

  // Request 2: the 50 ms budget is below the 100 ms estimate, so the full
  // tier is skipped outright and the truncated-history retry (estimate
  // still at the floor) serves within budget.
  const auto second = server.Serve(request).value();
  EXPECT_EQ(second.tier, ServeTier::kTruncatedHistory);
  EXPECT_EQ(Items(second.items), (std::vector<int64_t>{10, 9, 8}));
  EXPECT_EQ(server.stats().fast_path_served, 1);
  EXPECT_EQ(server.health(), HealthState::kDegraded);

  // Requests 3-4: a generous budget clears the estimate gate, the model is
  // fast again, and two consecutive full-tier responses restore kServing.
  request.deadline_nanos = 400 * kNanosPerMilli;
  const auto third = server.Serve(request).value();
  EXPECT_EQ(third.tier, ServeTier::kFullModel);
  EXPECT_EQ(server.health(), HealthState::kDegraded);  // 1 of 2 needed
  const auto fourth = server.Serve(request).value();
  EXPECT_EQ(fourth.tier, ServeTier::kFullModel);
  EXPECT_EQ(server.health(), HealthState::kServing);
  // The estimate decays (3/4 old + 1/4 new) as fast passes accumulate.
  EXPECT_LT(server.stats().full_cost_estimate_nanos, 100 * kNanosPerMilli);
}

TEST(ModelServerLadderTest, DeadlineWithoutFallbackIsDeadlineExceeded) {
  FakeClock clock;
  ModelServerOptions options;
  options.default_deadline_nanos = 50 * kNanosPerMilli;
  ModelServer server(options, nullptr, &clock);
  ASSERT_TRUE(server
                  .Start(std::make_unique<ScriptedModel>(
                      TinyConfig(), 0.0f, &clock,
                      std::vector<int64_t>{100 * kNanosPerMilli}))
                  .ok());
  ServeRequest request;
  request.history = {1, 2, 3};
  const auto response = server.Serve(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(server.stats().deadline_exceeded, 1);
  EXPECT_EQ(server.stats().served, 0);
}

TEST(ModelServerLadderTest, ShedBurstDegradesThenRecovers) {
  FakeClock clock;
  ModelServerOptions options;
  options.admission.tokens_per_second = 1.0;
  options.admission.burst = 1.0;
  options.recovery_full_responses = 1;
  ModelServer server(options, nullptr, &clock);
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f)).ok());

  ServeRequest request;
  request.history = {1, 2};
  request.options = Top3Unfiltered();
  ASSERT_TRUE(server.Serve(request).ok());  // consumes the burst token
  const auto shed = server.Serve(request);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), Status::Code::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("retry after"), std::string::npos)
      << shed.status().message();
  EXPECT_EQ(server.health(), HealthState::kDegraded);
  EXPECT_EQ(server.stats().shed, 1);

  clock.Advance(kNanosPerSecond);  // bucket refills
  const auto recovered = server.Serve(request).value();
  EXPECT_EQ(recovered.tier, ServeTier::kFullModel);
  EXPECT_EQ(server.health(), HealthState::kServing);
}

// --- Validated hot reload ------------------------------------------------

ModelServer::ModelFactory TinyFactory() {
  return [] { return std::make_unique<ScriptedModel>(TinyConfig(), 0.0f); };
}

TEST(ModelServerReloadTest, ValidReloadSwapsModelAndGeneration) {
  FakeClock clock;
  const std::string path = TempPath("ms_reload_ok.ckpt");
  {
    ScriptedModel next(TinyConfig(), 3.0f);
    ASSERT_TRUE(io::SaveCheckpoint(next, path).ok());
  }
  ModelServer server(ModelServerOptions{}, TinyFactory(), &clock);
  server.set_canary_requests({{1, 2, 3}});
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f)).ok());
  EXPECT_EQ(server.generation(), 1);

  ServeRequest request;
  request.history = {1, 2};
  request.options = Top3Unfiltered();
  EXPECT_EQ(Items(server.Serve(request).value().items),
            (std::vector<int64_t>{10, 9, 8}));

  ASSERT_TRUE(server.Reload(path).ok());
  EXPECT_EQ(server.generation(), 2);
  EXPECT_EQ(server.stats().reloads, 1);
  // shift = 3: item 7 now scores 10, item 6 scores 9, item 5 scores 8.
  const auto after = server.Serve(request).value();
  EXPECT_EQ(after.generation, 2);
  EXPECT_EQ(Items(after.items), (std::vector<int64_t>{7, 6, 5}));
}

TEST(ModelServerReloadTest, CorruptCheckpointRollsBackToLiveModel) {
  FakeClock clock;
  const std::string path = TempPath("ms_reload_corrupt.ckpt");
  {
    ScriptedModel next(TinyConfig(), 3.0f);
    ASSERT_TRUE(io::SaveCheckpoint(next, path).ok());
  }
  // Flip one payload byte: the CRC-32 check must refuse the file.
  io::Env* env = io::Env::Default();
  std::string bytes = env->ReadFile(path).value();
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(env->WriteFile(path, bytes).ok());

  ModelServer server(ModelServerOptions{}, TinyFactory(), &clock);
  server.set_canary_requests({{1, 2, 3}});
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f)).ok());
  const Status status = server.Reload(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kCorruption) << status.ToString();
  EXPECT_EQ(server.stats().rollbacks, 1);
  EXPECT_EQ(server.stats().reloads, 0);
  EXPECT_EQ(server.generation(), 1);
  // The previous model keeps serving, untouched.
  ServeRequest request;
  request.history = {1, 2};
  request.options = Top3Unfiltered();
  EXPECT_EQ(Items(server.Serve(request).value().items),
            (std::vector<int64_t>{10, 9, 8}));
  EXPECT_EQ(server.health(), HealthState::kServing);
}

TEST(ModelServerReloadTest, CanaryFailureRollsBackToLiveModel) {
  FakeClock clock;
  // The checkpoint loads cleanly (CRC is fine) but holds a poisoned
  // parameter; only canary validation can catch this class of bad model.
  const std::string path = TempPath("ms_reload_poison.ckpt");
  {
    ScriptedModel poisoned(TinyConfig(),
                           std::numeric_limits<float>::infinity());
    ASSERT_TRUE(io::SaveCheckpoint(poisoned, path).ok());
  }
  ModelServer server(ModelServerOptions{}, TinyFactory(), &clock);
  server.set_canary_requests({{1, 2, 3}});
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f)).ok());
  const Status status = server.Reload(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kAborted);
  EXPECT_NE(status.message().find("rolled back"), std::string::npos)
      << status.message();
  EXPECT_EQ(server.stats().rollbacks, 1);
  EXPECT_EQ(server.generation(), 1);
  ServeRequest request;
  request.history = {1, 2};
  request.options = Top3Unfiltered();
  EXPECT_EQ(Items(server.Serve(request).value().items),
            (std::vector<int64_t>{10, 9, 8}));
}

TEST(ModelServerReloadTest, ReloadBeforeStartIsRejected) {
  FakeClock clock;
  ModelServer server(ModelServerOptions{}, TinyFactory(), &clock);
  const Status status = server.Reload(TempPath("ms_never_written.ckpt"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
}

// --- Concurrent-use guard ------------------------------------------------

TEST(ModelUseGuardDeathTest, CatchesServingDuringTraining) {
  ScriptedModel model(TinyConfig(), 0.0f);
  models::ModelUseGuard guard(&model, "training");
  RecommendationService service(&model);
  EXPECT_DEATH((void)service.Recommend({1, 2}), "concurrent model use");
}

// --- Determinism ---------------------------------------------------------

/// Runs a fixed chaos scenario (slow pass, budget-skipped pass, recovery,
/// hot reload) and returns a full signature of every observable outcome.
std::string RunScenario(int threads, const std::string& reload_path) {
  compute::ComputeContext ctx(threads);
  FakeClock clock;
  // External registry + tracer: all serving metrics (including the
  // request-latency histograms) and all span times are FakeClock-driven,
  // so their JSONL exports belong in the determinism signature.
  obs::MetricsRegistry registry;
  obs::Tracer tracer(&clock);
  ModelServerOptions options;
  options.default_deadline_nanos = 50 * kNanosPerMilli;
  options.recovery_full_responses = 2;
  options.metrics = &registry;
  options.tracer = &tracer;
  ModelServer server(options, TinyFactory(), &clock);
  // No canaries here: a canary forward pass at Start/Reload would consume
  // scripted latency entries and shift the scenario.
  server.set_fallback(PopularityFallback::FromCounts(
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  SLIME_CHECK(server
                  .Start(std::make_unique<ScriptedModel>(
                      TinyConfig(), 0.0f, &clock,
                      std::vector<int64_t>{100 * kNanosPerMilli, 0}))
                  .ok());

  std::ostringstream sig;
  BatchServeRequest batch;
  batch.histories = {{1, 2, 3}, {4, 5}, {6, 7, 8, 9}};
  batch.options.top_k = 4;
  batch.options.exclude_seen = false;
  for (int round = 0; round < 6; ++round) {
    if (round == 4) {
      SLIME_CHECK(server.Reload(reload_path).ok());
    }
    batch.deadline_nanos =
        round >= 2 ? 400 * kNanosPerMilli : 50 * kNanosPerMilli;
    const auto result = server.ServeBatch(batch);
    SLIME_CHECK(result.ok());
    const BatchServeResponse& response = result.value();
    sig << "round " << round << " gen " << response.generation
        << " deadline_hit " << response.deadline_hit << "\n";
    for (const ServeResponse& r : response.responses) {
      sig << "  " << ToString(r.tier) << " [";
      for (const Recommendation& rec : r.items) {
        sig << rec.item << ":" << rec.score << " ";
      }
      sig << "]\n";
    }
  }
  const ServerStats stats = server.stats();
  sig << "served " << stats.served << " fallback " << stats.fallback_served
      << " fast " << stats.fast_path_served << " full "
      << stats.full_model_served << " deadline " << stats.deadline_exceeded
      << " full_est " << stats.full_cost_estimate_nanos << " fast_est "
      << stats.fast_cost_estimate_nanos << " health "
      << ToString(server.health()) << "\n";
  sig << obs::SnapshotToJsonl(registry.Snapshot());
  sig << obs::TracesToJsonl(tracer.Traces());
  return sig.str();
}

TEST(ModelServerDeterminismTest, ScenarioIsBitIdenticalAcrossThreadCounts) {
  const std::string path = TempPath("ms_determinism.ckpt");
  {
    ScriptedModel next(TinyConfig(), 3.0f);
    ASSERT_TRUE(io::SaveCheckpoint(next, path).ok());
  }
  const std::string base = RunScenario(1, path);
  // The scenario exercises every tier; make sure it is not trivially empty.
  EXPECT_NE(base.find("popularity-fallback"), std::string::npos) << base;
  EXPECT_NE(base.find("truncated-history"), std::string::npos) << base;
  EXPECT_NE(base.find("full-model"), std::string::npos) << base;
  // The signature now folds in the registry snapshot and trace JSONL, so
  // this also proves metrics and span times (all FakeClock-driven) are
  // bit-identical across thread counts and across repeated runs.
  EXPECT_NE(base.find("\"type\":\"histogram\""), std::string::npos) << base;
  EXPECT_NE(base.find("\"type\":\"trace\""), std::string::npos) << base;
  EXPECT_EQ(base, RunScenario(1, path));
  EXPECT_EQ(base, RunScenario(2, path));
  EXPECT_EQ(base, RunScenario(8, path));
}

// --- Observability wiring -------------------------------------------------

TEST(ModelServerObservabilityTest, StatsAreThinViewsOverRegistry) {
  FakeClock clock;
  obs::MetricsRegistry registry;
  ModelServerOptions options;
  options.metrics = &registry;
  ModelServer server(options, nullptr, &clock);
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f))
          .ok());
  ServeRequest request;
  request.history = {1, 2, 3};
  request.options = Top3Unfiltered();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(server.Serve(request).ok());

  // The ServerStats accessor and the registry must agree: same storage.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.served, 3);
  EXPECT_EQ(stats.full_model_served, 3);
  int64_t reg_requests = -1, reg_full = -1, reg_health = -1;
  const obs::MetricsSnapshot snap = registry.Snapshot();
  for (const obs::MetricValue& c : snap.counters) {
    if (c.name == "serving.requests") reg_requests = c.value;
    if (c.name == "serving.tier.full_served") reg_full = c.value;
  }
  for (const obs::MetricValue& g : snap.gauges) {
    if (g.name == "serving.health") reg_health = g.value;
  }
  EXPECT_EQ(reg_requests, 3);
  EXPECT_EQ(reg_full, 3);
  EXPECT_EQ(reg_health, static_cast<int64_t>(HealthState::kServing));
  // The request-latency histogram saw every request.
  bool found_hist = false;
  for (const obs::HistogramValue& h : snap.histograms) {
    if (h.name == "serving.request_nanos") {
      found_hist = true;
      EXPECT_EQ(h.count, 3);
    }
  }
  EXPECT_TRUE(found_hist);
}

TEST(ModelServerObservabilityTest, NoopRegistryServesNormallyReadsZeros) {
  // Injecting the NoopRegistry turns instrumentation off: serving must be
  // fully functional while every stats field reads zero (the documented
  // trade of the disabled path).
  FakeClock clock;
  obs::NoopRegistry noop;
  ModelServerOptions options;
  options.metrics = &noop;
  ModelServer server(options, nullptr, &clock);
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f))
          .ok());
  ServeRequest request;
  request.history = {1, 2, 3};
  request.options = Top3Unfiltered();
  const auto response = server.Serve(request).value();
  EXPECT_EQ(response.tier, ServeTier::kFullModel);
  EXPECT_EQ(Items(response.items).size(), 3u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 0);
  EXPECT_EQ(stats.served, 0);
  EXPECT_TRUE(noop.Snapshot().counters.empty());
}

TEST(ModelServerObservabilityTest, LadderTraceAnnotatesDowngrades) {
  // The deadline-blown ladder request must leave a complete trace: the
  // full-model span marked cancelled and the fallback span recording the
  // downgrade, all timed by the FakeClock.
  FakeClock clock;
  obs::Tracer tracer(&clock);
  ModelServerOptions options;
  options.default_deadline_nanos = 50 * kNanosPerMilli;
  options.tracer = &tracer;
  ModelServer server(options, nullptr, &clock);
  server.set_fallback(PopularityFallback::FromCounts(
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  ASSERT_TRUE(server
                  .Start(std::make_unique<ScriptedModel>(
                      TinyConfig(), 0.0f, &clock,
                      std::vector<int64_t>{100 * kNanosPerMilli, 0}))
                  .ok());
  ServeRequest request;
  request.history = {1, 2, 3};
  request.options = Top3Unfiltered();
  const auto response = server.Serve(request).value();
  ASSERT_EQ(response.tier, ServeTier::kPopularityFallback);

  const std::vector<obs::Trace> traces = tracer.Traces();
  ASSERT_EQ(traces.size(), 1u);
  const obs::Trace& t = traces[0];
  ASSERT_FALSE(t.spans.empty());
  EXPECT_EQ(t.spans[0].name, "request");
  EXPECT_EQ(t.spans[0].parent, -1);
  // The 100 ms scripted pass is inside the trace.
  EXPECT_EQ(t.spans[0].duration_nanos(), 100 * kNanosPerMilli);
  bool saw_cancelled = false, saw_fallback_downgrade = false;
  bool saw_admit = false, saw_snapshot = false;
  for (const obs::SpanRecord& s : t.spans) {
    if (s.name == "admit") saw_admit = true;
    if (s.name == "snapshot") saw_snapshot = true;
    for (const auto& [key, value] : s.annotations) {
      if (s.name == "forward.full" && key == "cancelled") {
        saw_cancelled = value == "deadline";
      }
      if (s.name == "fallback" && key == "downgraded") {
        saw_fallback_downgrade = true;
      }
    }
  }
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_snapshot);
  EXPECT_TRUE(saw_cancelled);
  EXPECT_TRUE(saw_fallback_downgrade);
}

// --- Reload racing live traffic (the TSan chaos test) --------------------

TEST(ModelServerChaosTest, ReloadRacingRequestsNeverServesPartialModel) {
  FakeClock clock;
  const std::string ckpt_a = TempPath("ms_race_a.ckpt");
  const std::string ckpt_b = TempPath("ms_race_b.ckpt");
  {
    ScriptedModel a(TinyConfig(), 0.0f);
    ScriptedModel b(TinyConfig(), 3.0f);
    ASSERT_TRUE(io::SaveCheckpoint(a, ckpt_a).ok());
    ASSERT_TRUE(io::SaveCheckpoint(b, ckpt_b).ok());
  }
  ModelServerOptions options;
  options.admission.max_in_flight = 8;
  ModelServer server(options, TinyFactory(), &clock);
  server.set_canary_requests({{1, 2, 3}});
  ASSERT_TRUE(server.StartFromCheckpoint(ckpt_a).ok());

  // Start() installed generation 1 from checkpoint A, and the reloader
  // below alternates B, A, B, ... — so odd generations are always model A
  // (top items 10,9,8) and even generations model B (7,6,5). Any other
  // ranking would mean a request observed a half-loaded model.
  const std::vector<int64_t> expected_a = {10, 9, 8};
  const std::vector<int64_t> expected_b = {7, 6, 5};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> errors{0};
  auto reader = [&] {
    ServeRequest request;
    request.history = {1, 2};
    request.options = Top3Unfiltered();
    for (int i = 0; i < 200; ++i) {
      const auto response = server.Serve(request);
      if (!response.ok()) {
        errors.fetch_add(1);
        continue;
      }
      const auto& expected =
          response.value().generation % 2 == 1 ? expected_a : expected_b;
      if (Items(response.value().items) != expected) mismatches.fetch_add(1);
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(server.Reload(i % 2 == 0 ? ckpt_b : ckpt_a).ok());
  }
  r1.join();
  r2.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(server.stats().rollbacks, 0);
  EXPECT_EQ(server.stats().reloads, 20);
  EXPECT_EQ(server.generation(), 21);
  EXPECT_EQ(server.health(), HealthState::kServing);
}

// --- Drain, external cancel, typed shed hints ----------------------------

/// Scripted model that fires a hook on its first forward pass — used to
/// flip server state from *inside* an in-flight request.
class HookOnScoreModel : public ScriptedModel {
 public:
  HookOnScoreModel(const models::ModelConfig& config,
                   std::function<void()> hook)
      : ScriptedModel(config, 0.0f), hook_(std::move(hook)) {}

  Tensor ScoreAll(const data::Batch& batch) override {
    if (!fired_) {
      fired_ = true;
      hook_();
    }
    return ScriptedModel::ScoreAll(batch);
  }

 private:
  std::function<void()> hook_;
  bool fired_ = false;
};

TEST(ModelServerTest, DrainRejectsNewWhileInFlightCompletes) {
  FakeClock clock;
  ModelServer server(ModelServerOptions{}, nullptr, &clock);
  // BeginDrain fires from inside this request's own forward pass — the
  // tightest possible "drain begins while a request is in flight".
  ASSERT_TRUE(server
                  .Start(std::make_unique<HookOnScoreModel>(
                      TinyConfig(), [&server] { server.BeginDrain(); }))
                  .ok());

  ServeRequest request;
  request.history = {1, 2};
  request.options = Top3Unfiltered();
  // The in-flight request completes at full fidelity on its snapshot:
  // drain only flips the state flag, it interrupts nothing.
  const auto inflight = server.Serve(request);
  ASSERT_TRUE(inflight.ok()) << inflight.status().ToString();
  EXPECT_EQ(inflight.value().tier, ServeTier::kFullModel);
  EXPECT_EQ(Items(inflight.value().items), (std::vector<int64_t>{10, 9, 8}));
  EXPECT_EQ(server.health(), HealthState::kDraining);

  // Every subsequent request is rejected up front with a typed status,
  // before admission — no slot consumed, no shed counted.
  const auto rejected = server.Serve(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Status::Code::kUnavailable);
  EXPECT_NE(rejected.status().message().find("draining"), std::string::npos)
      << rejected.status().message();
  EXPECT_EQ(server.stats().requests, 1);
  EXPECT_EQ(server.stats().shed, 0);
}

TEST(ModelServerTest, ExternalCancelAbortsInsteadOfDegrading) {
  FakeClock clock;
  ModelServer server(ModelServerOptions{}, nullptr, &clock);
  server.set_fallback(PopularityFallback::FromCounts(
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f)).ok());

  ServeRequest request;
  request.history = {1, 2};
  request.options = Top3Unfiltered();
  request.cancel = [] { return true; };  // caller already gone
  const auto result = server.Serve(request);
  ASSERT_FALSE(result.ok());
  // A deadline overrun would have degraded down to the fallback; an
  // external cancel must abort outright — nobody wants the answer.
  EXPECT_EQ(result.status().code(), Status::Code::kAborted);
  EXPECT_EQ(server.stats().fallback_served, 0);
  EXPECT_EQ(server.stats().served, 0);
}

TEST(ModelServerTest, ShedStatusCarriesTypedRetryAfterHint) {
  FakeClock clock;
  ModelServerOptions options;
  options.admission.tokens_per_second = 1.0;
  options.admission.burst = 1.0;
  ModelServer server(options, nullptr, &clock);
  ASSERT_TRUE(
      server.Start(std::make_unique<ScriptedModel>(TinyConfig(), 0.0f)).ok());

  ServeRequest request;
  request.history = {1, 2};
  request.options = Top3Unfiltered();
  ASSERT_TRUE(server.Serve(request).ok());  // drains the single token
  const auto shed = server.Serve(request);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), Status::Code::kResourceExhausted);
  // The machine-readable twin of the message's retry-after text: at 1
  // token/s with an empty bucket the next token is ~1s out. This is the
  // hint cluster::RetryPolicy sleeps on.
  EXPECT_GE(shed.status().retry_after_nanos(),
            kNanosPerSecond - kNanosPerMilli);
  EXPECT_LE(shed.status().retry_after_nanos(),
            kNanosPerSecond + kNanosPerMilli);
}

// --- Health hysteresis under flapping ------------------------------------

TEST(ModelServerHealthTest, FlappingStaysDegradedThroughHysteresisWindow) {
  FakeClock clock;
  ModelServerOptions options;
  options.default_deadline_nanos = 50 * kNanosPerMilli;
  options.recovery_full_responses = 4;  // the hysteresis window
  ModelServer server(options, nullptr, &clock);
  server.set_fallback(PopularityFallback::FromCounts(
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
  // Pass latencies alternate blown/instant: the server flaps between
  // serving a request at full tier and blowing the deadline.
  ASSERT_TRUE(server
                  .Start(std::make_unique<ScriptedModel>(
                      TinyConfig(), 0.0f, &clock,
                      std::vector<int64_t>{100 * kNanosPerMilli, 0,
                                           100 * kNanosPerMilli, 0}))
                  .ok());

  ServeRequest tight;
  tight.history = {1, 2, 3};
  tight.options = Top3Unfiltered();
  ServeRequest roomy = tight;
  roomy.deadline_nanos = 400 * kNanosPerMilli;

  // Flap 1: blown pass → fallback → kDegraded.
  EXPECT_EQ(server.Serve(tight).value().tier,
            ServeTier::kPopularityFallback);
  EXPECT_EQ(server.health(), HealthState::kDegraded);
  // One good full-tier response must NOT flip health back to kServing —
  // that is exactly the oscillation the hysteresis window forbids.
  EXPECT_EQ(server.Serve(roomy).value().tier, ServeTier::kFullModel);
  EXPECT_EQ(server.health(), HealthState::kDegraded);
  // Flap 2: blown again (full tier is estimate-gated out at 50 ms, the
  // truncated retry eats the slow pass) → recovery progress resets.
  EXPECT_EQ(server.Serve(tight).value().tier,
            ServeTier::kPopularityFallback);
  EXPECT_EQ(server.health(), HealthState::kDegraded);
  // Recovery: kServing only after the full hysteresis window of
  // consecutive full-tier responses, never sooner.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.Serve(roomy).value().tier, ServeTier::kFullModel)
        << "request " << i;
    EXPECT_EQ(server.health(), HealthState::kDegraded) << "request " << i;
  }
  EXPECT_EQ(server.Serve(roomy).value().tier, ServeTier::kFullModel);
  EXPECT_EQ(server.health(), HealthState::kServing);
}

}  // namespace
}  // namespace serving
}  // namespace slime
