#include <gtest/gtest.h>

#include "bench_util/experiment.h"
#include "bench_util/paper_values.h"
#include "bench_util/table_printer.h"

namespace slime {
namespace bench {
namespace {

/// Shared small split so the whole file trains on one dataset.
const data::SplitDataset& SmallSplit() {
  static const data::SplitDataset* split =
      new data::SplitDataset(BuildSplit(data::BeautySimConfig(0.25)));
  return *split;
}

train::TrainConfig FastConfig() {
  train::TrainConfig t = DefaultTrainConfig();
  t.max_epochs = 10;
  t.patience = 3;
  return t;
}

TEST(IntegrationTest, SlimeBeatsNonSequentialBaseline) {
  // The headline ordering of Table II at miniature scale: the frequency
  // model with contrastive learning clearly beats BPR-MF, which ignores
  // order entirely.
  const auto& split = SmallSplit();
  const models::ModelConfig mc = DefaultModelConfig(split);
  const ExperimentResult slime =
      RunModel("SLIME4Rec", split, mc, DefaultMixerOptions(split.name()),
               FastConfig());
  const ExperimentResult bpr =
      RunModel("BPR-MF", split, mc, {}, FastConfig());
  // At miniature scale (300 users) the margin is smaller than the paper's
  // full-size gap, but the ordering must hold decisively.
  EXPECT_GT(slime.test.ndcg10, bpr.test.ndcg10 * 1.1);
  EXPECT_GT(slime.test.hr10, 0.1);
}

TEST(IntegrationTest, SequentialSignalIsLearned) {
  // Any sequential neural model should beat random ranking (HR@10 on ~400
  // items would be ~0.025 at random).
  const auto& split = SmallSplit();
  const ExperimentResult fmlp =
      RunModel("FMLP-Rec", split, DefaultModelConfig(split), {},
               FastConfig());
  EXPECT_GT(fmlp.test.hr10, 0.08);
}

TEST(IntegrationTest, ResultsAreReproducible) {
  const auto& split = SmallSplit();
  train::TrainConfig t = FastConfig();
  t.max_epochs = 2;
  const models::ModelConfig mc = DefaultModelConfig(split);
  const auto mixer = DefaultMixerOptions(split.name());
  const ExperimentResult r1 = RunModel("SLIME4Rec", split, mc, mixer, t);
  const ExperimentResult r2 = RunModel("SLIME4Rec", split, mc, mixer, t);
  EXPECT_DOUBLE_EQ(r1.test.ndcg10, r2.test.ndcg10);
  EXPECT_DOUBLE_EQ(r1.test.hr5, r2.test.hr5);
}

TEST(BenchUtilTest, DefaultConfigsFollowDataset) {
  const auto& split = SmallSplit();
  const models::ModelConfig mc = DefaultModelConfig(split);
  EXPECT_EQ(mc.num_items, split.num_items());
  EXPECT_EQ(mc.max_len, 32);
  EXPECT_DOUBLE_EQ(DefaultMixerOptions("beauty-sim").alpha, 0.4);
  EXPECT_DOUBLE_EQ(DefaultMixerOptions("clothing-sim").alpha, 0.8);
  EXPECT_DOUBLE_EQ(DefaultMixerOptions("sports-sim").alpha, 0.3);
}

TEST(BenchUtilTest, TablePrinterAlignsColumns) {
  TablePrinter table({"Model", "HR@5"});
  table.AddRow({"SLIME4Rec", "0.0621"});
  table.AddSeparator();
  table.AddRow({"X", "1"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("| Model     | HR@5   |"), std::string::npos);
  EXPECT_NE(s.find("| SLIME4Rec | 0.0621 |"), std::string::npos);
}

TEST(BenchUtilTest, PaperValuesLookups) {
  const PaperMetrics* m = Table2Value("Beauty", "SLIME4Rec");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->hr5, 0.0621);
  EXPECT_EQ(Table2Value("Beauty", "NotAModel"), nullptr);
  EXPECT_EQ(PaperDatasetName("ml1m-sim"), "ML-1M");
  const PaperDatasetStats* s = Table1Stats("ML-1M");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->users, 6041);
  const PaperModeMetrics* mode = Table4Value(4, "Yelp");
  ASSERT_NE(mode, nullptr);
  EXPECT_DOUBLE_EQ(mode->hr5, 0.0516);
}

TEST(BenchUtilTest, PaperTable2OrderingSlimeWinsEverywhere) {
  // Internal consistency of the transcribed table: SLIME4Rec is the best
  // model on every dataset and metric (the paper's bold row).
  for (const auto& dataset : Table2Datasets()) {
    const PaperMetrics* slime = Table2Value(dataset, "SLIME4Rec");
    ASSERT_NE(slime, nullptr);
    for (const auto& model : models::AllModelNames()) {
      if (model == "SLIME4Rec") continue;
      const PaperMetrics* other = Table2Value(dataset, model);
      ASSERT_NE(other, nullptr) << dataset << "/" << model;
      EXPECT_GT(slime->hr5, other->hr5) << dataset << "/" << model;
      EXPECT_GT(slime->hr10, other->hr10) << dataset << "/" << model;
      EXPECT_GT(slime->ndcg10, other->ndcg10) << dataset << "/" << model;
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace slime
