// Fault-tolerance integration tests: crash-safe saves under injected I/O
// faults, kill-and-resume bit-for-bit equivalence, and divergence rollback.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/slime4rec.h"
#include "data/synthetic.h"
#include "io/checkpoint.h"
#include "io/env.h"
#include "models/model_factory.h"
#include "observability/telemetry.h"
#include "train/train_state.h"
#include "train/trainer.h"

namespace slime {
namespace {

using io::Env;
using io::FaultInjectionEnv;
using io::InjectedCrash;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::Slime4RecConfig SmallModelConfig(uint64_t seed) {
  core::Slime4RecConfig c;
  c.num_items = 15;
  c.num_users = 5;
  c.max_len = 8;
  c.hidden_dim = 8;
  c.num_layers = 2;
  c.mixer.alpha = 0.5;
  c.seed = seed;
  return c;
}

bool ParamsEqual(const nn::Module& a, const nn::Module& b) {
  const auto pa = a.NamedParameters();
  const auto pb = b.NamedParameters();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].first != pb[i].first) return false;
    const Tensor& ta = pa[i].second.value();
    const Tensor& tb = pb[i].second.value();
    if (ta.numel() != tb.numel()) return false;
    for (int64_t j = 0; j < ta.numel(); ++j) {
      if (ta[j] != tb[j]) return false;
    }
  }
  return true;
}

// --- Injected save faults -------------------------------------------------

class SaveFaultTest
    : public ::testing::TestWithParam<FaultInjectionEnv::Fault> {};

// Every injected fault must surface as a non-OK Status with a descriptive
// message, and the previous checkpoint at the destination must survive.
TEST_P(SaveFaultTest, FailedSavePreservesPreviousCheckpoint) {
  const std::string path = TempPath("ft_save_fault.bin");
  FaultInjectionEnv env;
  core::Slime4Rec good(SmallModelConfig(3));
  ASSERT_TRUE(io::SaveCheckpoint(good, path, &env).ok());

  core::Slime4Rec other(SmallModelConfig(99));  // different weights
  ASSERT_FALSE(ParamsEqual(good, other));
  env.ArmFault(GetParam());
  const Status st = io::SaveCheckpoint(other, path, &env);
  ASSERT_FALSE(st.ok()) << "fault was swallowed";
  EXPECT_FALSE(st.message().empty());

  // The destination still holds the previous good checkpoint.
  core::Slime4Rec reloaded(SmallModelConfig(7));
  ASSERT_TRUE(io::LoadCheckpoint(&reloaded, path, &env).ok());
  EXPECT_TRUE(ParamsEqual(good, reloaded));

  // With the fault disarmed the same save succeeds.
  ASSERT_TRUE(io::SaveCheckpoint(other, path, &env).ok());
  core::Slime4Rec reloaded2(SmallModelConfig(7));
  ASSERT_TRUE(io::LoadCheckpoint(&reloaded2, path, &env).ok());
  EXPECT_TRUE(ParamsEqual(other, reloaded2));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, SaveFaultTest,
    ::testing::Values(FaultInjectionEnv::Fault::kFailWrite,
                      FaultInjectionEnv::Fault::kShortWrite,
                      FaultInjectionEnv::Fault::kCorruptAfterWrite,
                      FaultInjectionEnv::Fault::kFailRename));

TEST(SaveFaultMessageTest, ShortWriteIsDetectedNotSilent) {
  // kShortWrite reports success from WriteFile; only the save path's
  // read-back verification can catch it.
  const std::string path = TempPath("ft_short_write.bin");
  FaultInjectionEnv env;
  core::Slime4Rec model(SmallModelConfig(3));
  env.ArmFault(FaultInjectionEnv::Fault::kShortWrite);
  const Status st = io::SaveCheckpoint(model, path, &env);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("short write"), std::string::npos)
      << st.message();
  EXPECT_FALSE(env.FileExists(path));  // nothing was renamed into place
  std::remove(path.c_str());
}

TEST(SaveFaultMessageTest, PostWriteCorruptionIsDetected) {
  const std::string path = TempPath("ft_bitrot.bin");
  FaultInjectionEnv env;
  core::Slime4Rec model(SmallModelConfig(3));
  env.ArmFault(FaultInjectionEnv::Fault::kCorruptAfterWrite);
  const Status st = io::SaveCheckpoint(model, path, &env);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
  EXPECT_NE(st.message().find("corruption"), std::string::npos)
      << st.message();
  std::remove(path.c_str());
}

TEST(SaveFaultMessageTest, CrashDuringWriteLeavesNoDestination) {
  const std::string path = TempPath("ft_crash_write.bin");
  FaultInjectionEnv env;
  core::Slime4Rec model(SmallModelConfig(3));
  env.ArmFault(FaultInjectionEnv::Fault::kCrashDuringWrite);
  EXPECT_THROW(io::SaveCheckpoint(model, path, &env), InjectedCrash);
  // The "process" died mid-write: only a partial temp file may exist; the
  // destination was never created, so a restart sees no checkpoint rather
  // than a corrupt one.
  EXPECT_FALSE(env.FileExists(path));
  std::remove((path + ".tmp").c_str());
}

// --- TrainState snapshot format -------------------------------------------

train::TrainState MakeState() {
  train::TrainState s;
  s.epoch = 3;
  s.base_lr = 0.0025f;
  s.rollbacks = 1;
  s.best_valid = 0.4375;
  s.best_epoch = 2;
  s.since_best = 1;
  s.final_train_loss = 1.625;
  s.best_metrics.hr10 = 0.5;
  s.best_metrics.ndcg10 = 0.4375;
  Rng rng(123);
  rng.Gaussian();  // populate the cached-gaussian half of the state
  s.batch_rng = rng.state();
  s.model_rng = Rng(77).state();
  s.batch_order = {2, 0, 3, 1};
  s.params.emplace_back("w", Tensor::FromVector({2, 2}, {1, 2, 3, 4}));
  s.params.emplace_back("b", Tensor::FromVector({2}, {-1, 0.5}));
  s.adam_step = 42;
  s.adam_m = {Tensor::FromVector({2, 2}, {0, 1, 0, 1}),
              Tensor::FromVector({2}, {2, 2})};
  s.adam_v = {Tensor::FromVector({2, 2}, {1, 1, 1, 1}),
              Tensor::FromVector({2}, {3, 3})};
  s.best_params = {Tensor::FromVector({2, 2}, {9, 8, 7, 6}),
                   Tensor::FromVector({2}, {5, 4})};
  return s;
}

TEST(TrainStateTest, RoundTripPreservesEveryField) {
  const std::string path = TempPath("ft_state_roundtrip.slt");
  const train::TrainState s = MakeState();
  ASSERT_TRUE(train::SaveTrainState(s, path).ok());
  Result<train::TrainState> loaded = train::LoadTrainState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const train::TrainState& t = loaded.value();
  EXPECT_EQ(t.epoch, s.epoch);
  EXPECT_EQ(t.base_lr, s.base_lr);
  EXPECT_EQ(t.rollbacks, s.rollbacks);
  EXPECT_EQ(t.best_valid, s.best_valid);
  EXPECT_EQ(t.best_epoch, s.best_epoch);
  EXPECT_EQ(t.since_best, s.since_best);
  EXPECT_EQ(t.final_train_loss, s.final_train_loss);
  EXPECT_EQ(t.best_metrics.ndcg10, s.best_metrics.ndcg10);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t.batch_rng.s[i], s.batch_rng.s[i]);
  EXPECT_EQ(t.batch_rng.have_cached_gaussian, s.batch_rng.have_cached_gaussian);
  EXPECT_EQ(t.batch_rng.cached_gaussian, s.batch_rng.cached_gaussian);
  EXPECT_EQ(t.batch_order, s.batch_order);
  ASSERT_EQ(t.params.size(), s.params.size());
  EXPECT_EQ(t.params[0].first, "w");
  EXPECT_EQ(t.params[1].second[1], 0.5f);
  EXPECT_EQ(t.adam_step, s.adam_step);
  ASSERT_EQ(t.adam_m.size(), 2u);
  ASSERT_EQ(t.best_params.size(), 2u);
  EXPECT_EQ(t.best_params[0][0], 9.0f);
  // Restored RNG streams continue identically.
  Rng a(1);
  Rng b(1);
  a.set_state(t.batch_rng);
  b.set_state(s.batch_rng);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
    EXPECT_EQ(a.Gaussian(), b.Gaussian());
  }
  std::remove(path.c_str());
}

TEST(TrainStateTest, FlippedByteIsCorruption) {
  const std::string path = TempPath("ft_state_flip.slt");
  ASSERT_TRUE(train::SaveTrainState(MakeState(), path).ok());
  Env* env = Env::Default();
  std::string bytes = env->ReadFile(path).value();
  bytes[bytes.size() / 3] ^= 0x10;
  ASSERT_TRUE(env->WriteFile(path, bytes).ok());
  const Result<train::TrainState> r = train::LoadTrainState(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(TrainStateTest, MissingSnapshotIsIOError) {
  const Result<train::TrainState> r =
      train::LoadTrainState(TempPath("ft_no_such_snapshot.slt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

TEST(TrainStateTest, ResolveResumePathMapsDirectoryToSnapshot) {
  EXPECT_EQ(train::ResolveResumePath("/tmp/ckpts"),
            train::SnapshotPath("/tmp/ckpts"));
  const std::string file = TempPath("ft_resolve_file.slt");
  ASSERT_TRUE(train::SaveTrainState(MakeState(), file).ok());
  EXPECT_EQ(train::ResolveResumePath(file), file);
  std::remove(file.c_str());
}

// --- Kill-and-resume ------------------------------------------------------

data::SplitDataset TinySplit() {
  data::SyntheticConfig config;
  config.name = "ft-tiny";
  config.num_users = 100;
  config.num_items = 30;
  config.num_categories = 4;
  config.num_clusters = 4;
  config.min_len = 6;
  config.max_len = 12;
  config.noise_prob = 0.05;
  config.seed = 77;
  return data::SplitDataset(data::GenerateSynthetic(config), 3);
}

models::ModelConfig TinyModelConfig(const data::SplitDataset& split) {
  models::ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = 8;
  c.hidden_dim = 16;
  c.num_layers = 1;
  c.dropout = 0.1f;  // exercises the model RNG stream across resume
  c.emb_dropout = 0.1f;
  c.seed = 5;
  return c;
}

train::TrainConfig FtTrainConfig(int64_t epochs) {
  train::TrainConfig t;
  t.max_epochs = epochs;
  t.batch_size = 64;
  t.lr = 5e-3f;
  t.patience = 100;
  t.seed = 31;
  return t;
}

TEST(KillAndResumeTest, ResumedRunMatchesUninterruptedBitForBit) {
  const data::SplitDataset split = TinySplit();

  // Uninterrupted baseline.
  train::TrainResult baseline;
  {
    auto model = models::CreateModel("FMLP-Rec", TinyModelConfig(split));
    baseline =
        train::Trainer(FtTrainConfig(5)).Fit(model.get(), split).value();
  }

  // The same run, killed by an injected crash while writing a snapshot.
  const std::string dir = ::testing::TempDir();
  const std::string snapshot = train::SnapshotPath(dir);
  std::remove(snapshot.c_str());
  std::remove(train::BestModelPath(dir).c_str());
  FaultInjectionEnv env;
  {
    auto model = models::CreateModel("FMLP-Rec", TinyModelConfig(split));
    train::TrainConfig tc = FtTrainConfig(5);
    tc.checkpoint_dir = dir;
    tc.checkpoint_every = 1;
    tc.env = &env;
    // Epoch 1 writes the snapshot and (having improved) the best-model
    // checkpoint; crash on a later write so at least one epoch is on disk.
    env.ArmFault(FaultInjectionEnv::Fault::kCrashDuringWrite, 4);
    train::Trainer trainer(tc);
    EXPECT_THROW(trainer.Fit(model.get(), split).value(), InjectedCrash);
  }
  ASSERT_TRUE(env.FileExists(snapshot)) << "no completed snapshot survived";
  env.Disarm();

  // Resume in a fresh process: new model object, state comes entirely from
  // the snapshot.
  train::TrainResult resumed;
  {
    auto model = models::CreateModel("FMLP-Rec", TinyModelConfig(split));
    train::TrainConfig tc = FtTrainConfig(5);
    tc.checkpoint_dir = dir;
    tc.env = &env;
    tc.resume_from = dir;
    resumed = train::Trainer(tc).Fit(model.get(), split).value();
  }

  EXPECT_EQ(resumed.best_epoch, baseline.best_epoch);
  EXPECT_EQ(resumed.epochs_run, baseline.epochs_run);
  EXPECT_DOUBLE_EQ(resumed.final_train_loss, baseline.final_train_loss);
  EXPECT_DOUBLE_EQ(resumed.valid.ndcg10, baseline.valid.ndcg10);
  EXPECT_DOUBLE_EQ(resumed.valid.hr10, baseline.valid.hr10);
  EXPECT_DOUBLE_EQ(resumed.test.ndcg10, baseline.test.ndcg10);
  EXPECT_DOUBLE_EQ(resumed.test.hr5, baseline.test.hr5);
  EXPECT_DOUBLE_EQ(resumed.test.mrr, baseline.test.mrr);

  std::remove(snapshot.c_str());
  std::remove(train::BestModelPath(dir).c_str());
}

TEST(KillAndResumeTest, SnapshotIOErrorsSurfaceFromFit) {
  // A failed snapshot save must abort Fit with the underlying Status, not
  // train on pretending the checkpoint exists.
  const data::SplitDataset split = TinySplit();
  auto model = models::CreateModel("SASRec", TinyModelConfig(split));
  FaultInjectionEnv env;
  train::TrainConfig tc = FtTrainConfig(3);
  tc.checkpoint_dir = ::testing::TempDir();
  tc.env = &env;
  env.ArmFault(FaultInjectionEnv::Fault::kFailWrite, 1);
  const Result<train::TrainResult> r =
      train::Trainer(tc).Fit(model.get(), split);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

// --- Divergence rollback --------------------------------------------------

/// Wraps a real model and replaces the loss with NaN for a window of Loss()
/// calls. The call counter deliberately ignores rollbacks (like a transient
/// hardware fault would), so a finite window heals after a rollback while an
/// unbounded window keeps diverging.
class PoisonModel : public models::SequentialRecommender {
 public:
  PoisonModel(std::shared_ptr<models::SequentialRecommender> inner,
              int64_t poison_from, int64_t poison_count)
      : SequentialRecommender(inner->config()),
        poison_from_(poison_from),
        poison_count_(poison_count) {
    inner_ = RegisterModule("inner", std::move(inner));
  }

  autograd::Variable Loss(const data::Batch& batch) override {
    ++calls_;
    if (calls_ >= poison_from_ && calls_ < poison_from_ + poison_count_) {
      return autograd::Constant(
          Tensor::Full({1}, std::numeric_limits<float>::quiet_NaN()));
    }
    return inner_->Loss(batch);
  }

  Tensor ScoreAll(const data::Batch& batch) override {
    return inner_->ScoreAll(batch);
  }

  std::string name() const override { return "Poison"; }

 private:
  std::shared_ptr<models::SequentialRecommender> inner_;
  int64_t poison_from_;
  int64_t poison_count_;
  int64_t calls_ = 0;
};

TEST(DivergenceTest, TransientNaNRollsBackAndRecovers) {
  const data::SplitDataset split = TinySplit();
  models::ModelConfig c = TinyModelConfig(split);
  c.dropout = 0.0f;  // keep the wrapped model free of RNG coupling
  c.emb_dropout = 0.0f;
  PoisonModel model(models::CreateModel("SASRec", c), /*poison_from=*/3,
                    /*poison_count=*/1);
  train::TrainConfig tc = FtTrainConfig(3);
  tc.max_rollbacks = 2;
  const Result<train::TrainResult> r =
      train::Trainer(tc).Fit(&model, split);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rollbacks, 1);
  EXPECT_EQ(r.value().epochs_run, 3);
  EXPECT_GT(r.value().test.hr10, 0.0);
}

TEST(DivergenceTest, RollbackRestartsLrScheduleFromHalvedBase) {
  // Rollback x lr-schedule interaction: after a divergence rollback the
  // warmup/decay schedule must be re-evaluated on the *halved* base rate
  // for every subsequent epoch — not resume mid-schedule on the old base.
  // One batch per epoch (batch_size >> dataset) makes the PoisonModel's
  // Loss-call counter count epochs, so exactly epoch 3's first attempt
  // diverges.
  const data::SplitDataset split = TinySplit();
  models::ModelConfig c = TinyModelConfig(split);
  c.dropout = 0.0f;
  c.emb_dropout = 0.0f;
  PoisonModel model(models::CreateModel("SASRec", c), /*poison_from=*/3,
                    /*poison_count=*/1);
  train::TrainConfig tc = FtTrainConfig(5);
  tc.batch_size = 100000;  // single batch per epoch
  tc.max_rollbacks = 2;
  tc.warmup_epochs = 2;
  tc.lr_decay = 0.9f;
  obs::TrainingTelemetry telemetry(/*echo=*/false);
  tc.telemetry = &telemetry;
  const Result<train::TrainResult> r =
      train::Trainer(tc).Fit(&model, split);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rollbacks, 1);

  // The rollback halves the base rate exactly once.
  ASSERT_EQ(telemetry.rollbacks().size(), 1u);
  const obs::RollbackRecord& rb = telemetry.rollbacks()[0];
  EXPECT_EQ(rb.diverged_epoch, 3);
  EXPECT_EQ(rb.rollback_to_epoch, 2);
  const float base0 = tc.lr;
  EXPECT_EQ(rb.old_base_lr, static_cast<double>(base0));
  EXPECT_EQ(rb.new_base_lr, static_cast<double>(base0 * 0.5f));

  // Expected per-epoch rates, replicating the trainer's float arithmetic:
  // warmup over epochs 1-2 on the original base; epoch 3 retries on the
  // halved base with decay_epochs = 0; epochs 4-5 decay from there.
  const float half = base0 * 0.5f;
  const float expected[] = {
      base0 * (1.0f / 2.0f),
      base0 * (2.0f / 2.0f),
      half,
      half * std::pow(0.9f, 1.0f),
      half * std::pow(0.9f, 2.0f),
  };
  ASSERT_EQ(telemetry.epochs().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const obs::EpochRecord& e = telemetry.epochs()[i];
    EXPECT_EQ(e.epoch, i + 1);
    EXPECT_EQ(e.lr, static_cast<double>(expected[i]))
        << "epoch " << i + 1 << " lr off-schedule after rollback";
    EXPECT_EQ(e.batches, 1);
  }
}

TEST(DivergenceTest, PersistentNaNAbortsAfterMaxRollbacks) {
  const data::SplitDataset split = TinySplit();
  models::ModelConfig c = TinyModelConfig(split);
  c.dropout = 0.0f;
  c.emb_dropout = 0.0f;
  PoisonModel model(models::CreateModel("SASRec", c), /*poison_from=*/1,
                    /*poison_count=*/1 << 30);
  train::TrainConfig tc = FtTrainConfig(5);
  tc.max_rollbacks = 2;
  const Result<train::TrainResult> r =
      train::Trainer(tc).Fit(&model, split);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kAborted);
  EXPECT_NE(r.status().message().find("diverged"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("2 rollback"), std::string::npos)
      << r.status().message();
}

}  // namespace
}  // namespace slime
