#include "io/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/slime4rec.h"
#include "data/batcher.h"
#include "models/model_factory.h"
#include "nn/linear.h"

namespace slime {
namespace io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::Slime4RecConfig SmallConfig() {
  core::Slime4RecConfig c;
  c.num_items = 15;
  c.num_users = 5;
  c.max_len = 8;
  c.hidden_dim = 8;
  c.num_layers = 2;
  c.mixer.alpha = 0.5;
  c.seed = 3;
  return c;
}

data::Batch OneBatch() {
  data::Batch b;
  b.size = 2;
  b.max_len = 8;
  b.user_ids = {0, 1};
  b.targets = {3, 7};
  b.raw_prefixes = {{1, 2}, {4, 5, 6}};
  for (const auto& raw : b.raw_prefixes) {
    const auto padded = data::PadTruncate(raw, 8);
    b.input_ids.insert(b.input_ids.end(), padded.begin(), padded.end());
  }
  return b;
}

TEST(CheckpointTest, RoundTripRestoresExactScores) {
  const std::string path = TempPath("ckpt_roundtrip.bin");
  core::Slime4RecConfig config = SmallConfig();
  Tensor scores_before;
  {
    core::Slime4Rec model(config);
    model.SetTraining(false);
    scores_before = model.ScoreAll(OneBatch());
    ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  }
  {
    config.seed = 999;  // different init, must be fully overwritten
    core::Slime4Rec model(config);
    ASSERT_TRUE(LoadCheckpoint(&model, path).ok());
    model.SetTraining(false);
    const Tensor scores_after = model.ScoreAll(OneBatch());
    ASSERT_TRUE(scores_before.SameShape(scores_after));
    for (int64_t i = 0; i < scores_before.numel(); ++i) {
      EXPECT_FLOAT_EQ(scores_before[i], scores_after[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsIOError) {
  core::Slime4Rec model(SmallConfig());
  const Status st = LoadCheckpoint(&model, "/nonexistent/x.bin");
  EXPECT_EQ(st.code(), Status::Code::kIOError);
}

TEST(CheckpointTest, BadMagicIsCorruption) {
  const std::string path = TempPath("ckpt_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE we are not a checkpoint";
  }
  core::Slime4Rec model(SmallConfig());
  const Status st = LoadCheckpoint(&model, path);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedFileIsCorruption) {
  const std::string path = TempPath("ckpt_truncated.bin");
  core::Slime4Rec model(SmallConfig());
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  core::Slime4Rec fresh(SmallConfig());
  const Status st = LoadCheckpoint(&fresh, path);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ArchitectureMismatchIsInvalidArgument) {
  const std::string path = TempPath("ckpt_mismatch.bin");
  core::Slime4Rec model(SmallConfig());
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  // Different layer count -> different parameter set.
  core::Slime4RecConfig other = SmallConfig();
  other.num_layers = 4;
  other.mixer.alpha = 0.25;
  core::Slime4Rec wrong(other);
  const Status st = LoadCheckpoint(&wrong, path);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchIsInvalidArgument) {
  const std::string path = TempPath("ckpt_shape.bin");
  Rng rng(1);
  nn::Linear small(4, 4, &rng);
  ASSERT_TRUE(SaveCheckpoint(small, path).ok());
  nn::Linear big(8, 8, &rng);
  const Status st = LoadCheckpoint(&big, path);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("shape mismatch"), std::string::npos);
  std::remove(path.c_str());
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointTest, FlippedPayloadByteIsCorruption) {
  // A single bit flip anywhere in the file must be caught by the CRC
  // footer, not silently loaded as slightly-wrong weights.
  const std::string path = TempPath("ckpt_bitflip.bin");
  core::Slime4Rec model(SmallConfig());
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  std::string bytes = ReadAll(path);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteAll(path, bytes);
  core::Slime4Rec fresh(SmallConfig());
  const Status st = LoadCheckpoint(&fresh, path);
  EXPECT_EQ(st.code(), Status::Code::kCorruption);
  EXPECT_NE(st.message().find("CRC"), std::string::npos) << st.message();
  std::remove(path.c_str());
}

TEST(CheckpointTest, TrailingGarbageIsCorruption) {
  const std::string path = TempPath("ckpt_trailing.bin");
  core::Slime4Rec model(SmallConfig());
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  WriteAll(path, ReadAll(path) + "junk appended after the footer");
  core::Slime4Rec fresh(SmallConfig());
  EXPECT_EQ(LoadCheckpoint(&fresh, path).code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LegacySlm1FileStillLoads) {
  // Files written before the CRC footer (magic "SLM1", same entry layout,
  // no checksum) must keep loading: users have old checkpoints on disk.
  const std::string path = TempPath("ckpt_legacy.bin");
  core::Slime4RecConfig config = SmallConfig();
  core::Slime4Rec model(config);
  {
    std::ofstream out(path, std::ios::binary);
    out.write("SLM1", 4);
    const auto params = model.NamedParameters();
    const uint64_t count = params.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& [name, variable] : params) {
      const Tensor& value = variable.value();
      const auto name_len = static_cast<uint32_t>(name.size());
      out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
      out.write(name.data(), static_cast<std::streamsize>(name.size()));
      const auto rank = static_cast<uint32_t>(value.dim());
      out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
      for (int64_t d : value.shape()) {
        out.write(reinterpret_cast<const char*>(&d), sizeof(d));
      }
      out.write(reinterpret_cast<const char*>(value.data()),
                static_cast<std::streamsize>(value.numel() * sizeof(float)));
    }
    ASSERT_TRUE(static_cast<bool>(out));
  }
  config.seed = 1234;  // different init, must be fully overwritten
  core::Slime4Rec fresh(config);
  ASSERT_TRUE(LoadCheckpoint(&fresh, path).ok());
  const auto p1 = model.NamedParameters();
  const auto p2 = fresh.NamedParameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    for (int64_t j = 0; j < p1[i].second.numel(); ++j) {
      ASSERT_FLOAT_EQ(p1[i].second.value()[j], p2[i].second.value()[j])
          << p1[i].first;
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, NewFilesCarryV2MagicAndNoTempResidue) {
  const std::string path = TempPath("ckpt_v2magic.bin");
  core::Slime4Rec model(SmallConfig());
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  const std::string bytes = ReadAll(path);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 4), "SLM2");
  // The staging file must be gone after a successful atomic save.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(CheckpointTest, AllElevenModelsRoundTrip) {
  // Serialisation must cover every model's parameter structure.
  for (const auto& name : models::AllModelNames()) {
    models::ModelConfig c;
    c.num_items = 12;
    c.num_users = 6;
    c.max_len = 8;
    c.hidden_dim = 8;
    c.num_layers = 1;
    c.num_heads = 2;
    c.seed = 17;
    auto model = models::CreateModel(name, c);
    const std::string path = TempPath("ckpt_zoo.bin");
    ASSERT_TRUE(SaveCheckpoint(*model, path).ok()) << name;
    auto model2 = models::CreateModel(name, c);
    ASSERT_TRUE(LoadCheckpoint(model2.get(), path).ok()) << name;
    const auto p1 = model->NamedParameters();
    const auto p2 = model2->NamedParameters();
    ASSERT_EQ(p1.size(), p2.size()) << name;
    for (size_t i = 0; i < p1.size(); ++i) {
      for (int64_t j = 0; j < p1[i].second.numel(); ++j) {
        ASSERT_FLOAT_EQ(p1[i].second.value()[j], p2[i].second.value()[j])
            << name << " " << p1[i].first;
      }
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace io
}  // namespace slime
