// Property-style sweeps over the autograd op library: random shapes and
// seeds, checking gradients against finite differences and algebraic
// identities that must hold for any input.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace autograd {
namespace {

class BroadcastShapeSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int>> {};

TEST_P(BroadcastShapeSweep, MulGradcheckAllBroadcastDirections) {
  const auto [rows, cols, variant] = GetParam();
  Rng rng(1000 + rows * 31 + cols * 7 + variant);
  std::vector<int64_t> b_shape;
  switch (variant) {
    case 0:
      b_shape = {rows, cols};  // same shape
      break;
    case 1:
      b_shape = {cols};  // row vector
      break;
    default:
      b_shape = {rows, 1};  // column vector
      break;
  }
  Variable a = Param(Tensor::Randn({rows, cols}, &rng));
  Variable b = Param(Tensor::Randn(b_shape, &rng));
  const auto result = CheckGradients(
      [](const std::vector<Variable>& in) {
        return Sum(Mul(in[0], in[1]));
      },
      {a, b});
  EXPECT_TRUE(result.ok) << result.message;
}

TEST_P(BroadcastShapeSweep, AddThenReduceMatchesManualSum) {
  const auto [rows, cols, variant] = GetParam();
  (void)variant;
  Rng rng(2000 + rows * 13 + cols);
  const Tensor a = Tensor::Randn({rows, cols}, &rng);
  const Tensor b = Tensor::Randn({cols}, &rng);
  const Tensor c = ops::Add(a, b);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < cols; ++j) {
      EXPECT_NEAR(c.At({r, j}), a.At({r, j}) + b[j], 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastShapeSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 5),
                       ::testing::Values<int64_t>(1, 3, 7),
                       ::testing::Values(0, 1, 2)));

class MatmulShapeSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(MatmulShapeSweep, ForwardMatchesNaiveTripleLoop) {
  const auto [m, k, n] = GetParam();
  Rng rng(3000 + m * 100 + k * 10 + n);
  const Tensor a = Tensor::Randn({m, k}, &rng);
  const Tensor b = Tensor::Randn({k, n}, &rng);
  const Tensor c = ops::MatMul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += double(a.At({i, kk})) * b.At({kk, j});
      }
      EXPECT_NEAR(c.At({i, j}), acc, 1e-4) << m << "x" << k << "x" << n;
    }
  }
}

TEST_P(MatmulShapeSweep, TransposeVariantsAgree) {
  const auto [m, k, n] = GetParam();
  Rng rng(4000 + m * 100 + k * 10 + n);
  const Tensor a = Tensor::Randn({m, k}, &rng);
  const Tensor b = Tensor::Randn({k, n}, &rng);
  const Tensor reference = ops::MatMul(a, b);
  const Tensor via_tb = ops::MatMulTransB(a, ops::TransposeLastTwo(b));
  const Tensor via_ta = ops::MatMulTransA(ops::TransposeLastTwo(a), b);
  for (int64_t i = 0; i < reference.numel(); ++i) {
    EXPECT_NEAR(reference[i], via_tb[i], 1e-4);
    EXPECT_NEAR(reference[i], via_ta[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapeSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 3, 8),
                       ::testing::Values<int64_t>(1, 4, 9),
                       ::testing::Values<int64_t>(1, 2, 7)));

TEST(AutogradIdentityTest, SoftmaxRowsSumToOneAnyShape) {
  Rng rng(7);
  for (const auto& shape :
       std::vector<std::vector<int64_t>>{{3, 5}, {2, 3, 4}, {1, 9}}) {
    Variable x = Param(Tensor::Randn(shape, &rng, 2.0f));
    const Tensor y = Softmax(x).value();
    const int64_t d = shape.back();
    const int64_t rows = y.numel() / d;
    for (int64_t r = 0; r < rows; ++r) {
      double sum = 0.0;
      for (int64_t j = 0; j < d; ++j) sum += y[r * d + j];
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

TEST(AutogradIdentityTest, LogSoftmaxIsLogOfSoftmax) {
  Rng rng(8);
  Variable x = Param(Tensor::Randn({4, 6}, &rng, 3.0f));
  const Tensor soft = Softmax(x).value();
  const Tensor log_soft = LogSoftmax(x).value();
  for (int64_t i = 0; i < soft.numel(); ++i) {
    EXPECT_NEAR(log_soft[i], std::log(soft[i]), 1e-4);
  }
}

TEST(AutogradIdentityTest, SoftmaxInvariantToRowShift) {
  Rng rng(9);
  const Tensor x = Tensor::Randn({2, 5}, &rng);
  const Tensor shifted = ops::AddScalar(x, 123.0f);
  const Tensor a = Softmax(Param(x.Clone())).value();
  const Tensor b = Softmax(Param(shifted)).value();
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-5);
  }
}

TEST(AutogradIdentityTest, GeluBetweenZeroAndIdentity) {
  Rng rng(10);
  Variable x = Param(Tensor::Randn({100}, &rng, 2.0f));
  const Tensor y = Gelu(x).value();
  for (int64_t i = 0; i < 100; ++i) {
    const float v = x.value()[i];
    if (v >= 0) {
      EXPECT_GE(y[i], 0.0f);
      EXPECT_LE(y[i], v + 1e-6f);
    } else {
      EXPECT_LE(y[i], 0.0f);
      EXPECT_GE(y[i], v - 1e-6f);
    }
  }
}

TEST(AutogradIdentityTest, CrossEntropyAtLeastLogOfInverseConfidence) {
  // CE of a perfectly confident correct prediction approaches 0; of a
  // uniform prediction equals log(V).
  Tensor confident = Tensor::Zeros({1, 6});
  confident.At({0, 2}) = 50.0f;
  EXPECT_NEAR(CrossEntropy(Param(confident), {2}).value()[0], 0.0f, 1e-4);
  EXPECT_NEAR(CrossEntropy(Param(Tensor::Zeros({1, 6})), {2}).value()[0],
              std::log(6.0), 1e-5);
}

TEST(AutogradIdentityTest, ConcatSliceRoundTrip) {
  Rng rng(11);
  Variable a = Param(Tensor::Randn({2, 3}, &rng));
  Variable b = Param(Tensor::Randn({2, 4}, &rng));
  Variable cat = Concat({a, b}, 1);
  Variable a2 = Slice(cat, 1, 0, 3);
  Variable b2 = Slice(cat, 1, 3, 7);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a2.value()[i], a.value()[i]);
  }
  for (int64_t i = 0; i < b.numel(); ++i) {
    EXPECT_FLOAT_EQ(b2.value()[i], b.value()[i]);
  }
}

}  // namespace
}  // namespace autograd
}  // namespace slime
