#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <unordered_set>

#include "data/batcher.h"
#include "data/dataset.h"
#include "data/loader.h"
#include "data/synthetic.h"

namespace slime {
namespace data {
namespace {

InteractionDataset TinyDataset() {
  return InteractionDataset("tiny",
                            {{1, 2, 3, 4, 5},
                             {2, 3, 4},
                             {5, 4, 3, 2, 1, 5, 4},
                             {1, 2}},
                            /*num_items=*/5);
}

TEST(PadTruncateTest, LeftPadsShortSequences) {
  EXPECT_EQ(PadTruncate({7, 8}, 5), (std::vector<int64_t>{0, 0, 0, 7, 8}));
}

TEST(PadTruncateTest, KeepsMostRecentWhenTruncating) {
  // Eq. 1: keep the final N items.
  EXPECT_EQ(PadTruncate({1, 2, 3, 4, 5}, 3), (std::vector<int64_t>{3, 4, 5}));
}

TEST(PadTruncateTest, ExactLengthUnchanged) {
  EXPECT_EQ(PadTruncate({1, 2, 3}, 3), (std::vector<int64_t>{1, 2, 3}));
}

TEST(DatasetTest, StatsMatchHandComputation) {
  const DatasetStats s = TinyDataset().Stats();
  EXPECT_EQ(s.num_users, 4);
  EXPECT_EQ(s.num_items, 5);
  EXPECT_EQ(s.num_actions, 5 + 3 + 7 + 2);
  EXPECT_DOUBLE_EQ(s.avg_length, 17.0 / 4.0);
  EXPECT_DOUBLE_EQ(s.sparsity, 1.0 - 17.0 / 20.0);
}

TEST(DatasetTest, FiveCoreFilterDropsShortUsers) {
  const InteractionDataset filtered =
      TinyDataset().FilterMinInteractions(5);
  EXPECT_EQ(filtered.num_users(), 2);  // lengths 5 and 7 survive
}

TEST(DatasetTest, NoiseInjectionPreservesEvalTargets) {
  Rng rng(42);
  const InteractionDataset original = TinyDataset();
  const InteractionDataset noisy = original.InjectNoise(1.0, &rng);
  const auto& orig = original.sequences();
  const auto& seqs = noisy.sequences();
  for (size_t u = 0; u < seqs.size(); ++u) {
    if (orig[u].size() < 3) continue;
    const size_t n = orig[u].size();
    EXPECT_EQ(seqs[u][n - 1], orig[u][n - 1]);  // test target
    EXPECT_EQ(seqs[u][n - 2], orig[u][n - 2]);  // validation target
  }
}

TEST(DatasetTest, NoiseInjectionZeroEpsilonIsIdentity) {
  Rng rng(1);
  const InteractionDataset noisy = TinyDataset().InjectNoise(0.0, &rng);
  EXPECT_EQ(noisy.sequences(), TinyDataset().sequences());
}

TEST(DatasetTest, NoiseInjectionFullEpsilonReplacesEveryTrainingItem) {
  // With a large vocabulary the replacement draw virtually never equals
  // the original id, so epsilon=1 must change every training-region item.
  const int64_t vocab = 100000;
  const InteractionDataset original(
      "full-noise", {{1, 2, 3, 4, 5, 6, 7, 8}, {9, 10, 11, 12}}, vocab);
  Rng rng(7);
  const InteractionDataset noisy = original.InjectNoise(1.0, &rng);
  for (size_t u = 0; u < original.sequences().size(); ++u) {
    const auto& before = original.sequences()[u];
    const auto& after = noisy.sequences()[u];
    for (size_t i = 0; i + 2 < before.size(); ++i) {
      EXPECT_NE(after[i], before[i]) << "user " << u << " pos " << i;
      EXPECT_GE(after[i], 1);
      EXPECT_LE(after[i], vocab);
    }
    EXPECT_EQ(after[before.size() - 2], before[before.size() - 2]);
    EXPECT_EQ(after[before.size() - 1], before[before.size() - 1]);
  }
}

TEST(DatasetTest, NoiseInjectionLengthThreeTouchesOnlyFirstItem) {
  const int64_t vocab = 100000;
  const InteractionDataset original("len3", {{41, 42, 43}}, vocab);
  Rng rng(11);
  const InteractionDataset noisy = original.InjectNoise(1.0, &rng);
  const auto& seq = noisy.sequences()[0];
  EXPECT_NE(seq[0], 41);  // only training-region position
  EXPECT_EQ(seq[1], 42);  // validation target
  EXPECT_EQ(seq[2], 43);  // test target
}

TEST(DatasetTest, NoiseInjectionSkipsSequencesShorterThanThree) {
  // With <3 items there is no training region at all: the whole sequence
  // is the validation + test targets and must come back bit-identical.
  const InteractionDataset original("short", {{5}, {6, 7}}, 100000);
  Rng rng(13);
  const InteractionDataset noisy = original.InjectNoise(1.0, &rng);
  EXPECT_EQ(noisy.sequences(), original.sequences());
}

TEST(SplitTest, LeaveOneOutTargets) {
  const SplitDataset split(TinyDataset(), 0);
  // Users with >= 3 interactions: the first three.
  EXPECT_EQ(split.num_users(), 3);
  EXPECT_EQ(split.test_targets()[0], 5);
  EXPECT_EQ(split.valid_targets()[0], 4);
  EXPECT_EQ(split.train_region()[0], (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(split.TestInput(0), (std::vector<int64_t>{1, 2, 3, 4}));
}

TEST(SplitTest, TrainSamplesArePrefixNextPairs) {
  const SplitDataset split(TinyDataset(), 0);
  // User 0 region {1,2,3} -> samples ({1},2), ({1,2},3).
  int found = 0;
  for (const auto& s : split.train_samples()) {
    if (s.user == 0) {
      ++found;
      EXPECT_EQ(s.prefix.back() + 1, s.target);  // chain 1,2,3
    }
  }
  EXPECT_EQ(found, 2);
}

TEST(SplitTest, PrefixCapKeepsMostRecent) {
  const SplitDataset all(TinyDataset(), 0);
  const SplitDataset capped(TinyDataset(), 2);
  EXPECT_GT(all.train_samples().size(), capped.train_samples().size());
  // User 2 (region length 5) contributes exactly 2 capped samples with the
  // longest prefixes.
  int64_t count = 0;
  size_t max_prefix = 0;
  for (const auto& s : capped.train_samples()) {
    if (s.user == 2) {
      ++count;
      max_prefix = std::max(max_prefix, s.prefix.size());
    }
  }
  EXPECT_EQ(count, 2);
  EXPECT_EQ(max_prefix, 4u);
}

TEST(SplitTest, SameTargetPositiveHasSameTarget) {
  const SplitDataset split(TinyDataset(), 0);
  Rng rng(3);
  for (int64_t i = 0; i < static_cast<int64_t>(split.train_samples().size());
       ++i) {
    const int64_t j = split.SameTargetPositive(i, &rng);
    EXPECT_EQ(split.train_samples()[i].target,
              split.train_samples()[j].target);
  }
}

TEST(BatcherTest, BatchShapesAndPadding) {
  const SplitDataset split(TinyDataset(), 0);
  Rng rng(4);
  TrainBatcher batcher(&split, 3, 4, false, &rng);
  const auto batches = batcher.Epoch();
  int64_t total = 0;
  for (const auto& b : batches) {
    total += b.size;
    EXPECT_EQ(static_cast<int64_t>(b.input_ids.size()), b.size * 4);
    EXPECT_EQ(static_cast<int64_t>(b.targets.size()), b.size);
    EXPECT_TRUE(b.positive_input_ids.empty());
  }
  EXPECT_EQ(total, static_cast<int64_t>(split.train_samples().size()));
}

TEST(BatcherTest, PositivesProducedOnRequest) {
  const SplitDataset split(TinyDataset(), 0);
  Rng rng(5);
  TrainBatcher batcher(&split, 2, 4, true, &rng);
  for (const auto& b : batcher.Epoch()) {
    EXPECT_EQ(b.positive_input_ids.size(), b.input_ids.size());
  }
}

TEST(BatcherTest, EpochsShuffleDifferently) {
  const SplitDataset split(TinyDataset(), 0);
  Rng rng(6);
  TrainBatcher batcher(&split, 100, 4, false, &rng);
  const auto e1 = batcher.Epoch();
  const auto e2 = batcher.Epoch();
  ASSERT_EQ(e1.size(), 1u);
  EXPECT_NE(e1[0].targets, e2[0].targets);
}

TEST(BatcherTest, EvalBatchesCoverAllUsers) {
  const SplitDataset split(TinyDataset(), 0);
  const auto valid = MakeEvalBatches(split, false, 2, 4);
  int64_t users = 0;
  for (const auto& b : valid) users += b.size;
  EXPECT_EQ(users, split.num_users());
  // Validation target of user 0 is 4; test input includes it.
  EXPECT_EQ(valid[0].targets[0], 4);
  const auto test = MakeEvalBatches(split, true, 2, 4);
  EXPECT_EQ(test[0].targets[0], 5);
  // Test input ends with the validation item.
  EXPECT_EQ(test[0].input_ids[3], 4);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig config;
  config.num_users = 50;
  config.seed = 9;
  const InteractionDataset a = GenerateSynthetic(config);
  const InteractionDataset b = GenerateSynthetic(config);
  EXPECT_EQ(a.sequences(), b.sequences());
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig config;
  config.num_users = 50;
  config.seed = 10;
  const InteractionDataset a = GenerateSynthetic(config);
  config.seed = 11;
  const InteractionDataset b = GenerateSynthetic(config);
  EXPECT_NE(a.sequences(), b.sequences());
}

TEST(SyntheticTest, RespectsLengthBoundsAndItemRange) {
  SyntheticConfig config;
  config.num_users = 100;
  config.min_len = 6;
  config.max_len = 12;
  const InteractionDataset d = GenerateSynthetic(config);
  EXPECT_EQ(d.num_users(), 100);
  for (const auto& seq : d.sequences()) {
    EXPECT_GE(seq.size(), 6u);
    EXPECT_LE(seq.size(), 12u);
    for (int64_t v : seq) {
      EXPECT_GE(v, 1);
      EXPECT_LE(v, config.num_items);
    }
  }
}

TEST(SyntheticTest, PresetsMirrorPaperOrdering) {
  // Relative dataset character from Table I: ml1m-sim is the dense preset
  // with the longest sequences; clothing-sim has the shortest sequences and
  // the most items (sparsest).
  const auto presets = AllPresets(0.25);
  ASSERT_EQ(presets.size(), 5u);
  DatasetStats stats[5];
  for (int i = 0; i < 5; ++i) {
    stats[i] = GenerateSynthetic(presets[i]).Stats();
  }
  const int kBeauty = 0;
  const int kClothing = 1;
  const int kMl1m = 3;
  EXPECT_GT(stats[kMl1m].avg_length, 2 * stats[kBeauty].avg_length);
  EXPECT_LT(stats[kMl1m].sparsity, stats[kBeauty].sparsity);
  EXPECT_LT(stats[kClothing].avg_length, stats[kMl1m].avg_length);
  EXPECT_GT(stats[kClothing].sparsity, stats[kMl1m].sparsity);
}

TEST(SyntheticTest, MarkovStructureIsLearnable) {
  // With strong markov_strength and zero noise, consecutive same-category
  // items frequently follow the +1 successor chain: the signature pattern
  // the sequence models should learn.
  SyntheticConfig config;
  config.num_users = 200;
  config.noise_prob = 0.0;
  config.markov_strength = 1.0;
  config.min_tracks = 1;
  config.max_tracks = 1;  // single track: pure chain
  config.periods = {1};
  const InteractionDataset d = GenerateSynthetic(config);
  int64_t chain = 0;
  int64_t total = 0;
  for (const auto& seq : d.sequences()) {
    for (size_t i = 1; i < seq.size(); ++i) {
      ++total;
      if (seq[i] == seq[i - 1] + 1) ++chain;
    }
  }
  // Chains wrap at category boundaries, so the rate is high but not 1.
  EXPECT_GT(static_cast<double>(chain) / total, 0.8);
}

TEST(LoaderTest, RoundTripThroughFile) {
  const InteractionDataset d = TinyDataset();
  const std::string path = ::testing::TempDir() + "/slime_loader_test.txt";
  ASSERT_TRUE(SaveSequenceFile(d, path).ok());
  const Result<InteractionDataset> loaded = LoadSequenceFile(path, "tiny");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().sequences(), d.sequences());
  EXPECT_EQ(loaded.value().num_items(), 5);
  std::remove(path.c_str());
}

TEST(LoaderTest, MissingFileReportsIOError) {
  const Result<InteractionDataset> r =
      LoadSequenceFile("/nonexistent/nope.txt", "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

TEST(LoaderTest, CorruptTokenReportsCorruption) {
  const std::string path = ::testing::TempDir() + "/slime_corrupt_test.txt";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1 2 banana 3\n", f);
    std::fclose(f);
  }
  const Result<InteractionDataset> r = LoadSequenceFile(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(StatusTest, ToStringFormatsCodeAndMessage) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_EQ(Status::NotFound("thing").ToString(), "NotFound: thing");
}

}  // namespace
}  // namespace data
}  // namespace slime
