// Domain scenario 4 — noisy interaction logs: demonstrates the paper's
// robustness claim (Sec. IV-H) as an application. Injects increasing
// amounts of random-item noise into the training region and watches the
// frequency-filter model hold up while a pure time-domain model degrades.
//
//   ./examples/noise_robustness

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

int main() {
  using namespace slime;
  using namespace slime::bench;

  const data::SyntheticConfig preset = data::BeautySimConfig(0.25);
  train::TrainConfig tc = BenchTrainConfig();
  tc.max_epochs = 8;

  TablePrinter table(
      {"noise", "SLIME4Rec HR@10", "SASRec HR@10"});
  for (const double eps : {0.0, 0.15, 0.3}) {
    Rng rng(99);
    const data::InteractionDataset noisy =
        data::GenerateSynthetic(preset).FilterMinInteractions(5).InjectNoise(
            eps, &rng);
    const data::SplitDataset split(noisy, 4);
    const models::ModelConfig mc = DefaultModelConfig(split);
    const core::FilterMixerOptions mixer = DefaultMixerOptions("beauty-sim");
    const ExperimentResult slime =
        RunSlimeVariant(MakeSlimeConfig(mc, mixer), split, tc);
    const ExperimentResult sas = RunModel("SASRec", split, mc, mixer, tc);
    table.AddRow({Fmt4(eps).substr(0, 4), Fmt4(slime.test.hr10),
                  Fmt4(sas.test.hr10)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\nThe slide filters attenuate the uniform noise in the\n"
              "frequency domain; attention weights every (noisy) item in\n"
              "the time domain.\n");
  return 0;
}
