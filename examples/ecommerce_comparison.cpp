// Domain scenario 1 — sparse e-commerce sessions (the paper's Amazon
// Beauty/Clothing/Sports motivation): users buy high-frequency items
// (clothes-like, short period tracks) interleaved with low-frequency items
// (electronics-like, long period tracks), plus noise. Compares the
// frequency-domain models (FMLP-Rec, SLIME4Rec) against the strongest
// attention baselines (SASRec, DuoRec) on this workload.
//
//   ./examples/ecommerce_comparison

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

int main() {
  using namespace slime;
  using namespace slime::bench;

  // The Figure-1 story, explicit: two-track users (one period-1 "clothing"
  // track, one period-6 "electronics" track) with 20% noise.
  data::SyntheticConfig config = data::BeautySimConfig(0.3);
  config.name = "ecommerce-sessions";
  config.min_tracks = 2;
  config.max_tracks = 2;
  config.periods = {1, 6};
  config.noise_prob = 0.2;
  const data::SplitDataset split = BuildSplit(config);
  std::printf("e-commerce scenario: %lld users x %lld items, two interest\n"
              "tracks per user (periods 1 and 6), 20%% noise\n\n",
              static_cast<long long>(split.num_users()),
              static_cast<long long>(split.num_items()));

  train::TrainConfig tc = BenchTrainConfig();
  TablePrinter table({"Model", "HR@5", "NDCG@5", "HR@10", "NDCG@10",
                      "train sec"});
  for (const std::string name :
       {"SASRec", "DuoRec", "FMLP-Rec", "SLIME4Rec"}) {
    models::ModelConfig mc = DefaultModelConfig(split);
    const ExperimentResult r = RunModel(
        name, split, mc, DefaultMixerOptions("beauty-sim"), tc);
    table.AddRow({name, Fmt4(r.test.hr5), Fmt4(r.test.ndcg5),
                  Fmt4(r.test.hr10), Fmt4(r.test.ndcg10),
                  Fmt4(r.seconds).substr(0, 5)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\nWith cleanly separated behavioural frequencies, the\n"
              "frequency-selective models can isolate each track where\n"
              "time-domain attention sees one entangled sequence.\n");
  return 0;
}
