// Domain scenario 3 — bring your own data: writes a dataset to the plain
// text format of the SASRec/FMLP-Rec reference repositories, loads it back
// through the Status-returning loader, and trains SLIME4Rec on it.
// Demonstrates the file round-trip, error handling, and that nothing in
// the pipeline is tied to the synthetic generator.
//
//   ./examples/custom_dataset [path]

#include <cstdio>
#include <string>

#include "core/slime4rec.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace slime;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/slime4rec_custom_dataset.txt";

  // Pretend this file came from your own logs: one user per line,
  // space-separated 1-based item ids in chronological order.
  {
    const data::InteractionDataset synthetic =
        data::GenerateSynthetic(data::YelpSimConfig(0.2));
    const Status st = data::SaveSequenceFile(synthetic, path);
    if (!st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote example data to %s\n", path.c_str());
  }

  // Load with full error reporting.
  Result<data::InteractionDataset> loaded =
      data::LoadSequenceFile(path, "my-dataset");
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const data::InteractionDataset dataset =
      std::move(loaded).value().FilterMinInteractions(5);
  const data::DatasetStats stats = dataset.Stats();
  std::printf("loaded: %lld users, %lld items, sparsity %.2f%%\n",
              static_cast<long long>(stats.num_users),
              static_cast<long long>(stats.num_items),
              100.0 * stats.sparsity);

  const data::SplitDataset split(dataset, 4);
  core::Slime4RecConfig config;
  config.num_items = split.num_items();
  config.num_users = split.num_users();
  config.max_len = 32;
  config.hidden_dim = 32;
  config.num_layers = 2;
  config.mixer.alpha = 0.5;
  core::Slime4Rec model(config);

  train::TrainConfig tc;
  tc.max_epochs = 6;
  tc.patience = 2;
  train::Trainer trainer(tc);
  const train::TrainResult result = trainer.Fit(&model, split).value();
  std::printf("trained on the loaded file: HR@10 %.4f, NDCG@10 %.4f\n",
              result.test.hr10, result.test.ndcg10);
  std::remove(path.c_str());
  return 0;
}
