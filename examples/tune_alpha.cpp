// Domain scenario 5 — hyper-parameter tuning the paper's way: "all these
// parameters are tuned on the validation set" (Sec. IV-D). Runs a small
// validation-based grid search over the dynamic filter size ratio alpha
// and reports the winner's held-out test metrics.
//
//   ./examples/tune_alpha

#include <cstdio>

#include "data/synthetic.h"
#include "train/grid_search.h"

int main() {
  using namespace slime;
  const data::SplitDataset split(
      data::GenerateSynthetic(data::SportsSimConfig(0.2))
          .FilterMinInteractions(5),
      4);

  core::Slime4RecConfig base;
  base.num_items = split.num_items();
  base.num_users = split.num_users();
  base.max_len = 32;
  base.hidden_dim = 32;
  base.num_layers = 2;
  base.dropout = 0.4f;
  base.emb_dropout = 0.4f;
  base.cl_temperature = 0.2f;

  train::TrainConfig tc;
  tc.max_epochs = 8;
  tc.patience = 8;
  tc.lr = 2e-3f;

  std::printf("grid-searching alpha on validation NDCG@10 (%lld users)\n",
              static_cast<long long>(split.num_users()));
  const auto grid =
      train::SlimeAlphaGrid(base, {0.2, 0.4, 0.6, 0.8, 1.0});
  const train::GridSearchResult result =
      train::GridSearch(grid, split, tc, /*verbose=*/true);
  std::printf("\nwinner: %s  ->  test HR@10 %.4f, NDCG@10 %.4f\n",
              result.best_label.c_str(), result.best_test.hr10,
              result.best_test.ndcg10);
  std::printf("(the paper reports per-dataset optima: 0.4 Beauty, 0.8 "
              "Clothing, 0.3 Sports)\n");
  return 0;
}
