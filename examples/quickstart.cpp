// Quickstart: generate a small dataset, train SLIME4Rec, evaluate it, and
// produce top-K recommendations for one user — the 60-second tour of the
// public API.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/slime4rec.h"
#include "data/batcher.h"
#include "data/synthetic.h"
#include "train/trainer.h"

int main() {
  using namespace slime;

  // 1. Data: a synthetic e-commerce-style dataset (users interleave
  //    several periodic "interest tracks"; see data/synthetic.h), 5-core
  //    filtered and split leave-one-out.
  data::SyntheticConfig data_config = data::BeautySimConfig(/*scale=*/0.25);
  const data::InteractionDataset dataset =
      data::GenerateSynthetic(data_config).FilterMinInteractions(5);
  const data::SplitDataset split(dataset, /*max_prefixes_per_user=*/4);
  const data::DatasetStats stats = dataset.Stats();
  std::printf("dataset: %lld users, %lld items, %.1f avg interactions\n",
              static_cast<long long>(stats.num_users),
              static_cast<long long>(stats.num_items), stats.avg_length);

  // 2. Model: SLIME4Rec with the paper's mode-4 frequency ramp.
  core::Slime4RecConfig config;
  config.num_items = split.num_items();
  config.num_users = split.num_users();
  config.max_len = 32;
  config.hidden_dim = 32;
  config.num_layers = 2;
  config.mixer.alpha = 0.4;  // dynamic filter covers 40% of the spectrum
  config.use_contrastive = true;
  core::Slime4Rec model(config);
  std::printf("model: %s with %lld parameters\n", model.name().c_str(),
              static_cast<long long>(model.ParameterCount()));

  // 3. Train: Adam + early stopping on validation NDCG@10.
  train::TrainConfig tc;
  tc.max_epochs = 10;
  tc.patience = 3;
  tc.verbose = true;
  train::Trainer trainer(tc);
  const train::TrainResult result = trainer.Fit(&model, split).value();
  std::printf("\ntest metrics:  HR@5 %.4f  NDCG@5 %.4f  HR@10 %.4f  "
              "NDCG@10 %.4f  (best epoch %lld)\n",
              result.test.hr5, result.test.ndcg5, result.test.hr10,
              result.test.ndcg10, static_cast<long long>(result.best_epoch));

  // 4. Recommend: score every item for user 0's history and print the
  //    top 5.
  model.SetTraining(false);
  data::Batch batch;
  batch.size = 1;
  batch.max_len = config.max_len;
  batch.user_ids = {0};
  batch.targets = {split.test_targets()[0]};
  const std::vector<int64_t> history = split.TestInput(0);
  batch.raw_prefixes = {history};
  const std::vector<int64_t> padded =
      data::PadTruncate(history, config.max_len);
  batch.input_ids = padded;
  const Tensor scores = model.ScoreAll(batch);
  std::printf("\nuser 0 history (most recent last):");
  for (int64_t v : history) std::printf(" %lld", static_cast<long long>(v));
  std::printf("\ntop-5 recommendations:");
  std::vector<std::pair<float, int64_t>> ranked;
  for (int64_t item = 1; item <= split.num_items(); ++item) {
    ranked.emplace_back(scores[item], item);
  }
  std::partial_sort(ranked.begin(), ranked.begin() + 5, ranked.end(),
                    std::greater<>());
  for (int i = 0; i < 5; ++i) {
    std::printf(" %lld(%.2f)", static_cast<long long>(ranked[i].second),
                ranked[i].first);
  }
  std::printf("\nheld-out ground truth: %lld\n",
              static_cast<long long>(split.test_targets()[0]));
  return 0;
}
