// Domain scenario 2 — a dense media-consumption workload (the paper's
// ML-1M): long histories, many concurrent interest tracks with diverse
// periods. Demonstrates the paper's depth claim (Sec. IV-G4): the slide
// filter mixer keeps improving (or at least holds) as layers stack,
// because each layer owns a frequency band, while depth alone does not
// help the attention baseline.
//
//   ./examples/dense_media_depth

#include <cstdio>

#include "bench_util/experiment.h"
#include "bench_util/table_printer.h"

int main() {
  using namespace slime;
  using namespace slime::bench;

  const data::SplitDataset split =
      BuildSplit(data::Ml1mSimConfig(/*scale=*/0.25));
  std::printf("dense media scenario (ml1m-sim): %lld users, %lld items, "
              "long multi-track histories\n\n",
              static_cast<long long>(split.num_users()),
              static_cast<long long>(split.num_items()));

  train::TrainConfig tc = BenchTrainConfig();
  TablePrinter table({"L", "SLIME4Rec NDCG@10", "DuoRec NDCG@10"});
  for (const int64_t layers : {2, 4}) {
    models::ModelConfig mc = DefaultModelConfig(split);
    mc.num_layers = layers;
    core::FilterMixerOptions mixer = DefaultMixerOptions("ml1m-sim");
    const ExperimentResult slime =
        RunSlimeVariant(MakeSlimeConfig(mc, mixer), split, tc);
    const ExperimentResult duo = RunModel("DuoRec", split, mc, mixer, tc);
    table.AddRow({"L=" + std::to_string(layers), Fmt4(slime.test.ndcg10),
                  Fmt4(duo.test.ndcg10)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\nPer the paper, SLIME4Rec dominates DuoRec at every depth\n"
              "on the dense dataset, where diverse spectra reward\n"
              "frequency-band specialisation across layers.\n");
  return 0;
}
