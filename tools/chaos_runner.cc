// Standalone chaos harness driver.
//
//   chaos_runner --seed S [--work-dir DIR] [--epochs N]
//                [--quarantine-out FILE] [--telemetry-out FILE]
//                [--repair-out FILE] [--echo]
//
// Runs the full load -> train -> checkpoint -> kill -> resume -> serve
// pipeline twice with the same seed and verifies the two event logs are
// bit-identical, then checks the pipeline invariants (no crash, every
// fault surfaced as a typed Status, recovery bit-identical to the
// unfaulted baseline). Exit code 0 = all invariants held.
//
// CI runs this and uploads the quarantine + telemetry + repair-report
// JSONL artifacts.

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/harness.h"
#include "data/validation.h"
#include "io/env.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: chaos_runner [--seed S] [--work-dir DIR] [--epochs N]\n"
      "                    [--quarantine-out FILE] [--telemetry-out FILE]\n"
      "                    [--repair-out FILE] [--echo]\n");
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "chaos_runner: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  std::string work_dir = "/tmp/slime4rec_chaos";
  int64_t epochs = 4;
  std::string quarantine_out;
  std::string telemetry_out;
  std::string repair_out;
  bool echo = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--work-dir") {
      work_dir = next();
    } else if (arg == "--epochs") {
      epochs = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--quarantine-out") {
      quarantine_out = next();
    } else if (arg == "--telemetry-out") {
      telemetry_out = next();
    } else if (arg == "--repair-out") {
      repair_out = next();
    } else if (arg == "--echo") {
      echo = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      Usage();
      return 2;
    }
  }

  // EEXIST is fine: the pipeline rewrites every file it touches.
  ::mkdir(work_dir.c_str(), 0755);

  slime::chaos::ChaosOptions options;
  options.seed = seed;
  options.work_dir = work_dir;
  options.epochs = epochs;
  options.echo = echo;

  std::printf("chaos_runner: seed %llu, run 1/2\n",
              static_cast<unsigned long long>(seed));
  const slime::Result<slime::chaos::ChaosResult> first =
      slime::chaos::RunChaosPipeline(options);
  if (!first.ok()) return Fail(first.status().ToString());

  std::printf("chaos_runner: seed %llu, run 2/2 (reproducibility check)\n",
              static_cast<unsigned long long>(seed));
  const slime::Result<slime::chaos::ChaosResult> second =
      slime::chaos::RunChaosPipeline(options);
  if (!second.ok()) return Fail(second.status().ToString());

  const slime::chaos::ChaosResult& result = first.value();
  if (result.EventLog() != second.value().EventLog()) {
    return Fail("same-seed runs produced different event logs");
  }
  if (result.telemetry_jsonl != second.value().telemetry_jsonl) {
    return Fail("same-seed runs produced different telemetry");
  }
  if (result.repair_report_jsonl != second.value().repair_report_jsonl) {
    return Fail("same-seed runs produced different repair reports");
  }

  if (!quarantine_out.empty()) {
    const slime::Status st =
        slime::data::WriteQuarantineJsonl(result.quarantine, quarantine_out);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("chaos_runner: quarantine report -> %s\n",
                quarantine_out.c_str());
  }
  if (!telemetry_out.empty()) {
    const slime::Status st = slime::io::Env::Default()->WriteFile(
        telemetry_out, result.telemetry_jsonl);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("chaos_runner: training telemetry -> %s\n",
                telemetry_out.c_str());
  }
  if (!repair_out.empty()) {
    const slime::Status st = slime::io::Env::Default()->WriteFile(
        repair_out, result.repair_report_jsonl);
    if (!st.ok()) return Fail(st.ToString());
    std::printf("chaos_runner: repair report -> %s\n", repair_out.c_str());
  }

  std::printf(
      "chaos_runner: %zu events, %lld faults injected, %lld typed "
      "failures, runs bit-identical\n",
      result.events.size(),
      static_cast<long long>(result.faults_injected),
      static_cast<long long>(result.typed_failures));
  if (!result.invariants_ok) {
    return Fail("invariant violated: " + result.failure);
  }
  std::printf("chaos_runner: all invariants held\n");
  return 0;
}
