// slime4rec — command-line interface to the library.
//
// Subcommands:
//   stats      --data FILE
//   generate   --preset NAME --scale S --out FILE [--seed N]
//   train      --data FILE [--model NAME] [--epochs N] [--alpha A]
//              [--layers L] [--hidden D] [--max-len N] [--save CKPT]
//              [--checkpoint-dir DIR] [--checkpoint-every N]
//              [--resume DIR_OR_SNAPSHOT] [--metrics-out FILE]
//   evaluate   --data FILE --load CKPT [--model NAME] [...model flags]
//   recommend  --data FILE --load CKPT --user U [--topk K] [...model flags]
//   serve      --data FILE --load CKPT [--requests N] [--deadline-ms D]
//              [--max-inflight M] [--rate QPS] [--burst B]
//              [--fast-path-len n] [--canaries C] [--reload CKPT2]
//              [--metrics-out FILE] [--shards N] [--replication R]
//              [--state-dir DIR] [--state-sync always|group|none]
//   append-events --state-dir DIR --events FILE
//              [--state-sync always|group|none] [--compact 1]
//   repair     --state-dir DIR --shards N [--replication R] [--vnodes V]
//              [--ring-seed S] [--state-sync always|group|none]
//
// With --state-dir, `serve` opens the durable per-user state store (WAL +
// snapshot, see docs/STATE.md), streams each traffic user's history into
// it as append events, and serves from live state (ServeSession) instead
// of request-supplied histories. `append-events` is the offline
// ingestion/backfill path: it replays a plain-text event file (one
// "user item item..." line per event) into the store and prints the
// recovery report, so a crash-repaired WAL is visible.
//
// With --shards N (N >= 2) `serve` boots a replicated in-process cluster
// (src/cluster/) instead of a single server: user keys route by consistent
// hash, failed shards are retried on replicas, and --reload performs a
// rolling per-shard reload. See docs/CLUSTER.md. With --state-dir,
// --repair-on-restore 1 turns on hinted handoff plus the digest repair
// sweep after a shard restore, and --read-repair 1 turns on serve-path
// divergence detection and healing (docs/CLUSTER.md "Anti-entropy").
//
// `repair` is the offline counterpart: it opens the per-shard state
// directories a cluster `serve` run left behind (DIR/shard_<i>), rebuilds
// the same consistent-hash ring, and runs the digest-based anti-entropy
// sweep across every segment's replica set — back-filling missed suffixes
// through the normal durable append path and reporting conflicts it will
// not auto-resolve. Ring flags must match the serve run that wrote the
// stores (same --shards, --replication, --vnodes, --ring-seed), or the
// segment->replica mapping will not line up.
//
// --metrics-out writes a JSONL observability log (see
// docs/OBSERVABILITY.md): training telemetry plus compute-layer metrics
// for `train`, the serving metrics snapshot plus request traces for
// `serve`.
//
// Dataset files use the plain-text format of data/loader.h (one user per
// line, chronological 1-based item ids). Every command taking --data also
// accepts --data-policy strict|repair (validated ingestion, see
// docs/DATA.md) and --quarantine-out FILE (JSONL quarantine report).

#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/table_printer.h"
#include "cluster/cluster.h"
#include "cluster/repair.h"
#include "cluster/ring.h"
#include "common/string_util.h"
#include "compute/backend.h"
#include "compute/thread_pool.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "data/validation.h"
#include "io/checkpoint.h"
#include "io/env.h"
#include "models/model_factory.h"
#include "observability/export.h"
#include "observability/metrics.h"
#include "observability/telemetry.h"
#include "observability/trace.h"
#include "serving/model_server.h"
#include "state/state_store.h"
#include "train/trainer.h"

namespace slime {
namespace cli {
namespace {

/// Minimal --key value flag parser; flags may appear in any order.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", key.c_str());
        std::exit(2);
      }
      values_[key] = argv[++i];
    }
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  std::string Require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

/// Loads --data under the policy selected by --data-policy (strict by
/// default; repair salvages corrupt files and quarantines the damage).
/// With --quarantine-out the per-load quarantine report is written as
/// JSONL regardless of policy.
data::InteractionDataset LoadOrDie(const Flags& flags) {
  const std::string path = flags.Require("data");
  const Result<data::ValidationPolicy> policy =
      data::ParseValidationPolicy(flags.Get("data-policy", "strict"));
  if (!policy.ok()) {
    std::fprintf(stderr, "invalid --data-policy: %s\n",
                 policy.status().message().c_str());
    std::exit(2);
  }
  data::ValidationOptions options;
  options.policy = policy.value();
  data::QuarantineReport report;
  Result<data::InteractionDataset> r =
      data::LoadSequenceFileValidated(path, path, options, &report);
  const std::string quarantine_out = flags.Get("quarantine-out");
  if (!quarantine_out.empty()) {
    const Status qs = data::WriteQuarantineJsonl(report, quarantine_out);
    if (!qs.ok()) {
      std::fprintf(stderr, "error writing quarantine report: %s\n",
                   qs.ToString().c_str());
      std::exit(1);
    }
    std::printf("wrote quarantine report to %s\n", quarantine_out.c_str());
  }
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  if (report.total_errors() > 0) {
    std::printf("repair: quarantined %lld offence(s), dropped %lld line(s)%s\n",
                static_cast<long long>(report.total_errors()),
                static_cast<long long>(report.lines_dropped),
                report.vocab_renumbered ? ", vocabulary renumbered" : "");
  }
  return std::move(r).value();
}

models::ModelConfig ConfigFromFlags(const Flags& flags,
                                    const data::SplitDataset& split) {
  models::ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = flags.GetInt("max-len", 32);
  c.hidden_dim = flags.GetInt("hidden", 32);
  c.num_layers = flags.GetInt("layers", 2);
  c.num_heads = flags.GetInt("heads", 2);
  c.dropout = static_cast<float>(flags.GetDouble("dropout", 0.2));
  c.emb_dropout = c.dropout;
  c.cl_weight = static_cast<float>(flags.GetDouble("cl-weight", 0.1));
  c.cl_temperature =
      static_cast<float>(flags.GetDouble("cl-temperature", 0.5));
  c.seed = flags.GetInt("seed", 7);
  return c;
}

std::unique_ptr<models::SequentialRecommender> BuildModel(
    const Flags& flags, const data::SplitDataset& split) {
  const std::string name = flags.Get("model", "SLIME4Rec");
  core::FilterMixerOptions mixer;
  mixer.alpha = flags.GetDouble("alpha", 0.4);
  mixer.gamma = flags.GetDouble("gamma", 0.5);
  return models::CreateModel(name, ConfigFromFlags(flags, split), mixer);
}

void PrintMetrics(const char* label, const metrics::RankingMetrics& m) {
  std::printf("%s  HR@5 %.4f  NDCG@5 %.4f  HR@10 %.4f  NDCG@10 %.4f\n",
              label, m.hr5, m.ndcg5, m.hr10, m.ndcg10);
}

int CmdStats(const Flags& flags) {
  const data::InteractionDataset dataset =
      LoadOrDie(flags);
  const data::DatasetStats s = dataset.Stats();
  bench::TablePrinter table({"users", "items", "actions", "avg len",
                             "sparsity"});
  table.AddRow({std::to_string(s.num_users), std::to_string(s.num_items),
                std::to_string(s.num_actions), FormatFloat(s.avg_length, 2),
                FormatFloat(100.0 * s.sparsity, 2) + "%"});
  table.Print();
  return 0;
}

int CmdGenerate(const Flags& flags) {
  const std::string preset = flags.Get("preset", "beauty-sim");
  const double scale = flags.GetDouble("scale", 1.0);
  data::SyntheticConfig config;
  bool found = false;
  for (const auto& p : data::AllPresets(scale)) {
    if (p.name == preset) {
      config = p;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr,
                 "unknown preset '%s' (beauty-sim, clothing-sim, sports-sim, "
                 "ml1m-sim, yelp-sim)\n",
                 preset.c_str());
    return 2;
  }
  config.seed = flags.GetInt("seed", config.seed);
  const data::InteractionDataset dataset = data::GenerateSynthetic(config);
  const Status st = data::SaveSequenceFile(dataset, flags.Require("out"));
  if (!st.ok()) return Fail(st);
  std::printf("wrote %lld sequences to %s\n",
              static_cast<long long>(dataset.num_users()),
              flags.Get("out").c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  const data::InteractionDataset dataset =
      LoadOrDie(flags).FilterMinInteractions(5);
  const data::SplitDataset split(dataset,
                                 flags.GetInt("max-prefixes", 4));
  auto model = BuildModel(flags, split);
  std::printf("training %s (%lld parameters) on %s: %lld users, %lld "
              "items\n",
              model->name().c_str(),
              static_cast<long long>(model->ParameterCount()),
              flags.Get("data").c_str(),
              static_cast<long long>(split.num_users()),
              static_cast<long long>(split.num_items()));
  train::TrainConfig tc;
  tc.max_epochs = flags.GetInt("epochs", 20);
  tc.patience = flags.GetInt("patience", 3);
  tc.batch_size = flags.GetInt("batch", 128);
  tc.lr = static_cast<float>(flags.GetDouble("lr", 1e-3));
  tc.verbose = true;
  tc.checkpoint_dir = flags.Get("checkpoint-dir");
  tc.checkpoint_every = flags.GetInt("checkpoint-every", 1);
  tc.resume_from = flags.Get("resume");
  if (!tc.checkpoint_dir.empty()) {
    // Best effort; an unwritable directory surfaces as a snapshot IOError.
    ::mkdir(tc.checkpoint_dir.c_str(), 0755);
  }
  // Telemetry sink: echoes the classic per-epoch console lines and, with
  // --metrics-out, persists the JSONL log crash-safely after every epoch.
  const std::string metrics_out = flags.Get("metrics-out");
  obs::TrainingTelemetry telemetry(/*echo=*/true, metrics_out,
                                   io::Env::Default());
  tc.telemetry = &telemetry;
  obs::MetricsRegistry registry;
  if (!metrics_out.empty()) compute::SetMetricsRegistry(&registry);
  train::Trainer trainer(tc);
  Result<train::TrainResult> fit = trainer.Fit(model.get(), split);
  if (!metrics_out.empty()) compute::SetMetricsRegistry(nullptr);
  if (!fit.ok()) return Fail(fit.status());
  const train::TrainResult result = std::move(fit).value();
  PrintMetrics("valid(best)", result.valid);
  PrintMetrics("test       ", result.test);
  const std::string ckpt = flags.Get("save");
  if (!ckpt.empty()) {
    const Status st = io::SaveCheckpoint(*model, ckpt);
    if (!st.ok()) return Fail(st);
    std::printf("saved checkpoint to %s\n", ckpt.c_str());
  }
  if (!metrics_out.empty()) {
    if (!telemetry.status().ok()) return Fail(telemetry.status());
    // Final write: the telemetry records plus the compute-layer snapshot.
    const Status ws = io::Env::Default()->WriteFile(
        metrics_out,
        telemetry.jsonl() + obs::SnapshotToJsonl(registry.Snapshot()));
    if (!ws.ok()) return Fail(ws);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  const data::InteractionDataset dataset =
      LoadOrDie(flags).FilterMinInteractions(5);
  const data::SplitDataset split(dataset, flags.GetInt("max-prefixes", 4));
  auto model = BuildModel(flags, split);
  const Status st = io::LoadCheckpoint(model.get(), flags.Require("load"));
  if (!st.ok()) return Fail(st);
  PrintMetrics("valid", train::Evaluate(model.get(), split, false));
  PrintMetrics("test ", train::Evaluate(model.get(), split, true));
  return 0;
}

int CmdRecommend(const Flags& flags) {
  const data::InteractionDataset dataset =
      LoadOrDie(flags).FilterMinInteractions(5);
  const data::SplitDataset split(dataset, 4);
  auto model = BuildModel(flags, split);
  const Status st = io::LoadCheckpoint(model.get(), flags.Require("load"));
  if (!st.ok()) return Fail(st);
  const int64_t user = flags.GetInt("user", 0);
  if (user < 0 || user >= split.num_users()) {
    std::fprintf(stderr, "user %lld out of range [0, %lld)\n",
                 static_cast<long long>(user),
                 static_cast<long long>(split.num_users()));
    return 2;
  }
  const int64_t topk = flags.GetInt("topk", 10);
  model->SetTraining(false);
  data::Batch batch;
  batch.size = 1;
  batch.max_len = model->config().max_len;
  batch.user_ids = {user};
  batch.targets = {split.test_targets()[user]};
  const std::vector<int64_t> history = split.TestInput(user);
  batch.raw_prefixes = {history};
  batch.input_ids = data::PadTruncate(history, batch.max_len);
  const Tensor scores = model->ScoreAll(batch);
  std::printf("history:");
  for (int64_t v : history) std::printf(" %lld", static_cast<long long>(v));
  std::printf("\ntop-%lld:", static_cast<long long>(topk));
  std::vector<std::pair<float, int64_t>> ranked;
  for (int64_t item = 1; item <= split.num_items(); ++item) {
    ranked.emplace_back(scores[item], item);
  }
  const int64_t k = std::min<int64_t>(topk, split.num_items());
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    std::greater<>());
  for (int64_t i = 0; i < k; ++i) {
    std::printf(" %lld", static_cast<long long>(ranked[i].second));
  }
  std::printf("\n");
  return 0;
}

/// Parses --state-sync (default "group") or exits with the valid set.
state::SyncMode SyncModeOrDie(const Flags& flags) {
  const Result<state::SyncMode> mode =
      state::ParseSyncMode(flags.Get("state-sync", "group"));
  if (!mode.ok()) {
    std::fprintf(stderr, "invalid --state-sync: %s\n",
                 mode.status().message().c_str());
    std::exit(2);
  }
  return mode.value();
}

/// Opens the state store at --state-dir and prints its recovery report —
/// the first thing an operator wants after a crash: what was replayed and
/// whether a torn WAL tail was repaired (with exact byte accounting).
Result<std::unique_ptr<state::StateStore>> OpenStateStore(
    const Flags& flags, obs::MetricsRegistry* metrics, obs::Tracer* tracer) {
  state::StateStoreOptions sopts;
  sopts.dir = flags.Require("state-dir");
  sopts.sync = SyncModeOrDie(flags);
  sopts.metrics = metrics;
  sopts.tracer = tracer;
  Result<std::unique_ptr<state::StateStore>> store =
      state::StateStore::Open(sopts);
  if (!store.ok()) return store;
  const state::RecoveryReport& rec = store.value()->recovery();
  std::printf("state recovered: %lld record(s) replayed, %lld byte(s) "
              "truncated, %lld user(s), sync %s%s\n",
              static_cast<long long>(rec.wal_records_replayed),
              static_cast<long long>(rec.wal_bytes_truncated),
              static_cast<long long>(rec.users),
              state::SyncModeName(sopts.sync),
              rec.wal_torn ? " (torn tail repaired)" : "");
  return store;
}

/// `append-events --state-dir DIR --events FILE`: offline ingestion into
/// the durable state store. Each non-blank line of the events file is one
/// append: a user id followed by one or more item ids.
int CmdAppendEvents(const Flags& flags) {
  Result<std::unique_ptr<state::StateStore>> opened =
      OpenStateStore(flags, nullptr, nullptr);
  if (!opened.ok()) return Fail(opened.status());
  std::unique_ptr<state::StateStore> store = std::move(opened.value());

  const std::string events_path = flags.Require("events");
  const Result<std::string> text = io::Env::Default()->ReadFile(events_path);
  if (!text.ok()) return Fail(text.status());
  int64_t appended = 0;
  int64_t total_items = 0;
  int64_t line_no = 0;
  for (const std::string& raw : Split(text.value(), '\n')) {
    ++line_no;
    const std::string line = Trim(raw);
    if (line.empty()) continue;
    uint64_t user = 0;
    std::vector<int64_t> items;
    bool first = true;
    for (const std::string& token : Split(line, ' ')) {
      if (token.empty()) continue;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0' || (first && v < 0)) {
        return Fail(Status::InvalidArgument(
            events_path + ":" + std::to_string(line_no) +
            ": bad token '" + token + "' (want: user item [item ...])"));
      }
      if (first) {
        user = static_cast<uint64_t>(v);
        first = false;
      } else {
        items.push_back(v);
      }
    }
    const Result<state::AppendAck> ack = store->Append(user, items);
    if (!ack.ok()) {
      std::fprintf(stderr, "%s:%lld: ", events_path.c_str(),
                   static_cast<long long>(line_no));
      return Fail(ack.status());
    }
    ++appended;
    total_items += static_cast<int64_t>(items.size());
  }
  const Status synced = store->Sync();
  if (!synced.ok()) return Fail(synced);
  if (flags.GetInt("compact", 0) != 0) {
    const Status cs = store->Compact();
    if (!cs.ok()) return Fail(cs);
    std::printf("compacted: snapshot covers %lld user(s), WAL truncated\n",
                static_cast<long long>(store->num_users()));
  }
  std::printf("appended %lld event(s) (%lld item(s)); %lld user(s), "
              "last_seq %llu\n",
              static_cast<long long>(appended),
              static_cast<long long>(total_items),
              static_cast<long long>(store->num_users()),
              static_cast<unsigned long long>(store->last_seq()));
  return 0;
}

/// `repair --state-dir DIR --shards N`: offline anti-entropy sweep over
/// the per-shard state stores a cluster `serve` run wrote. Rebuilds the
/// serve run's consistent-hash ring, and for every segment elects the
/// most-advanced replica per user (by monotone append count) and
/// back-fills the others' missing suffixes through the normal durable
/// append path — after verifying the suffix extends the lagging digest to
/// exactly the leading one. Equal-length-but-different histories are
/// conflicts: counted and left untouched, never overwritten.
int CmdRepair(const Flags& flags) {
  const std::string state_dir = flags.Require("state-dir");
  const int64_t shards = flags.GetInt("shards", 2);
  if (shards < 2 || shards > 64) {
    std::fprintf(stderr, "--shards must be in [2,64] for repair\n");
    return 2;
  }
  cluster::RingOptions ropts;
  ropts.num_shards = shards;
  ropts.replication = flags.GetInt("replication", 2);
  ropts.vnodes_per_shard = flags.GetInt("vnodes", 16);
  ropts.seed = static_cast<uint64_t>(
      flags.GetInt("ring-seed", 0x5eedc105ll));
  const cluster::ShardRing ring(ropts);

  // Same per-shard directory layout `serve --shards N --state-dir DIR`
  // uses; every store's crash recovery runs (and is reported) on open.
  std::vector<std::unique_ptr<state::StateStore>> stores;
  for (int64_t s = 0; s < shards; ++s) {
    state::StateStoreOptions sopts;
    sopts.dir = state_dir + "/shard_" + std::to_string(s);
    sopts.sync = SyncModeOrDie(flags);
    Result<std::unique_ptr<state::StateStore>> store =
        state::StateStore::Open(sopts);
    if (!store.ok()) return Fail(store.status());
    const state::RecoveryReport& rec = store.value()->recovery();
    std::printf("shard %lld: %lld user(s), %lld record(s) replayed%s\n",
                static_cast<long long>(s),
                static_cast<long long>(rec.users),
                static_cast<long long>(rec.wal_records_replayed),
                rec.wal_torn ? " (torn tail repaired)" : "");
    stores.push_back(std::move(store.value()));
  }

  cluster::RepairStats total;
  int64_t segments_diverged = 0;
  for (int64_t seg = 0; seg < ring.num_segments(); ++seg) {
    const std::vector<int64_t>& replicas = ring.Replicas(seg);
    if (replicas.size() < 2) continue;
    std::vector<uint64_t> users;
    for (const int64_t shard : replicas) {
      for (const state::UserDigest& d :
           stores[static_cast<size_t>(shard)]->EnumerateDigests(
               [&ring, seg](uint64_t u) {
                 return ring.SegmentOf(u) == seg;
               })) {
        users.push_back(d.user_id);
      }
    }
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
    const int64_t diverged_before = total.users_diverged;
    for (const uint64_t user : users) {
      // Elect the most-advanced replica, then pull the others up to it.
      state::StateStore* ahead =
          stores[static_cast<size_t>(replicas[0])].get();
      for (size_t i = 1; i < replicas.size(); ++i) {
        state::StateStore* other =
            stores[static_cast<size_t>(replicas[i])].get();
        if (other->Digest(user).items_total >
            ahead->Digest(user).items_total) {
          ahead = other;
        }
      }
      for (const int64_t shard : replicas) {
        state::StateStore* other = stores[static_cast<size_t>(shard)].get();
        if (other == ahead) continue;
        const Status st = cluster::RepairUser(ahead, other, user, &total);
        if (!st.ok()) return Fail(st);
      }
    }
    if (total.users_diverged != diverged_before) ++segments_diverged;
  }
  for (const std::unique_ptr<state::StateStore>& store : stores) {
    const Status synced = store->Sync();
    if (!synced.ok()) return Fail(synced);
  }
  std::printf("repair: %lld segment(s) swept (%lld diverged), %lld user "
              "pair(s) scanned, %lld repaired, %lld item(s) transferred, "
              "%lld conflict(s)\n",
              static_cast<long long>(ring.num_segments()),
              static_cast<long long>(segments_diverged),
              static_cast<long long>(total.users_scanned),
              static_cast<long long>(total.users_repaired),
              static_cast<long long>(total.items_transferred),
              static_cast<long long>(total.conflicts));
  return total.conflicts == 0 ? 0 : 1;
}

/// `serve --shards N` (N >= 2): the same traffic against a replicated
/// ClusterServer instead of a single ModelServer. Each request routes by
/// user key through the consistent-hash ring; --reload becomes a rolling
/// per-shard reload that never takes two replicas of a segment down.
int CmdServeCluster(const Flags& flags, const data::SplitDataset& split,
                    int64_t shards) {
  cluster::ClusterOptions opts;
  opts.num_shards = shards;
  opts.replication = flags.GetInt("replication", 2);
  if (shards > 64 || opts.replication < 1) {
    std::fprintf(stderr, "--shards must be in [1,64], --replication >= 1\n");
    return 2;
  }
  opts.default_deadline_nanos = static_cast<int64_t>(
      flags.GetDouble("deadline-ms", 50.0) * serving::kNanosPerMilli);
  opts.shard.admission.max_in_flight = flags.GetInt("max-inflight", 64);
  opts.shard.admission.tokens_per_second = flags.GetDouble("rate", 0.0);
  opts.shard.admission.burst = flags.GetDouble("burst", 32.0);
  opts.shard.fast_path_history_len = flags.GetInt("fast-path-len", 8);
  const std::string state_dir = flags.Get("state-dir");
  if (!state_dir.empty()) {
    opts.state_dir = state_dir;
    opts.state_sync = SyncModeOrDie(flags);
    // Anti-entropy is opt-in (docs/CLUSTER.md): --repair-on-restore turns
    // on hinted handoff for appends that miss a dead replica plus the
    // digest repair sweep after RestoreShard; --read-repair adds serve-path
    // divergence detection and healing.
    if (flags.GetInt("repair-on-restore", 0) != 0) {
      opts.hinted_handoff = true;
      opts.repair_on_restore = true;
    }
    if (flags.GetInt("read-repair", 0) != 0) {
      opts.read_repair = true;
      opts.read_repair_heal = true;
    }
  }

  const std::string metrics_out = flags.Get("metrics-out");
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  if (!metrics_out.empty()) {
    opts.metrics = &registry;
    opts.tracer = &tracer;
    compute::SetMetricsRegistry(&registry);
  }

  cluster::ClusterServer fleet(
      opts, [&flags, &split] { return BuildModel(flags, split); });
  fleet.set_canary_requests(
      train::ExportCanarySet(split, flags.GetInt("canaries", 8)));
  fleet.set_fallback(serving::PopularityFallback::FromSplit(split));
  const Status start = fleet.StartFromCheckpoint(flags.Require("load"));
  if (!start.ok()) return Fail(start);
  if (!state_dir.empty()) {
    for (int64_t s = 0; s < shards; ++s) {
      const state::RecoveryReport& rec =
          fleet.shard_server(s)->state_store()->recovery();
      std::printf("state shard %lld recovered: %lld record(s), %lld "
                  "user(s)%s\n",
                  static_cast<long long>(s),
                  static_cast<long long>(rec.wal_records_replayed),
                  static_cast<long long>(rec.users),
                  rec.wal_torn ? " (torn tail repaired)" : "");
    }
  }

  serving::RecommendOptions ropts;
  ropts.top_k = flags.GetInt("topk", 10);
  const int64_t requests = flags.GetInt("requests", 32);
  const std::string reload = flags.Get("reload");
  int64_t ok_count = 0, shed_count = 0, deadline_count = 0, other_err = 0;
  int64_t state_appends = 0;
  std::vector<bool> streamed(static_cast<size_t>(split.num_users()), false);
  for (int64_t i = 0; i < requests; ++i) {
    if (!reload.empty() && i == requests / 2) {
      const Status rs = fleet.RollingReload(reload);
      std::printf("rolling reload %s: %s\n", reload.c_str(),
                  rs.ok() ? "installed on all shards" : rs.ToString().c_str());
    }
    const int64_t user = i % split.num_users();
    serving::ServeRequest req;
    req.options = ropts;
    const Result<serving::ServeResponse> r =
        [&]() -> Result<serving::ServeResponse> {
      if (state_dir.empty()) {
        req.history = split.TestInput(user);
        return fleet.Serve(static_cast<uint64_t>(i), req);
      }
      // Stream each user's history in as a replicated append the first
      // time they show up, then serve from live state.
      if (!streamed[static_cast<size_t>(user)]) {
        const Result<state::AppendAck> ack = fleet.AppendEvent(
            static_cast<uint64_t>(user), split.TestInput(user));
        if (!ack.ok()) return ack.status();
        streamed[static_cast<size_t>(user)] = true;
        ++state_appends;
      }
      return fleet.ServeSession(static_cast<uint64_t>(user), req);
    }();
    if (r.ok()) {
      ++ok_count;
    } else if (r.status().code() == Status::Code::kResourceExhausted) {
      ++shed_count;
    } else if (r.status().code() == Status::Code::kDeadlineExceeded) {
      ++deadline_count;
    } else {
      ++other_err;
    }
  }

  const cluster::ClusterStats stats = fleet.stats();
  std::printf("cluster health: %s (%lld shards, replication %lld)\n",
              cluster::ToString(fleet.health()),
              static_cast<long long>(fleet.num_shards()),
              static_cast<long long>(fleet.ring().replication()));
  bench::TablePrinter table({"served", "attempts", "retries", "failovers",
                             "hedges", "hedge_wins", "ejections", "typed"});
  table.AddRow({std::to_string(stats.served), std::to_string(stats.attempts),
                std::to_string(stats.retries),
                std::to_string(stats.failovers), std::to_string(stats.hedges),
                std::to_string(stats.hedge_wins),
                std::to_string(stats.ejections),
                std::to_string(stats.typed_failures)});
  table.Print();
  if (!state_dir.empty()) {
    std::printf("state: %lld replicated append(s) across %lld shard "
                "store(s)\n",
                static_cast<long long>(state_appends),
                static_cast<long long>(shards));
  }
  if (opts.hinted_handoff || opts.read_repair) {
    std::printf("anti-entropy: %lld underreplicated append(s), %lld "
                "hint(s) queued, %lld replayed, %lld dropped, %lld user(s) "
                "repaired, %lld conflict(s)\n",
                static_cast<long long>(stats.underreplicated_appends),
                static_cast<long long>(stats.hints_queued),
                static_cast<long long>(stats.hints_replayed),
                static_cast<long long>(stats.hints_dropped),
                static_cast<long long>(stats.repair_users_repaired),
                static_cast<long long>(stats.repair_conflicts));
  }
  std::printf("requests ok %lld, shed %lld, deadline %lld, errors %lld\n",
              static_cast<long long>(ok_count),
              static_cast<long long>(shed_count),
              static_cast<long long>(deadline_count),
              static_cast<long long>(other_err));
  if (!metrics_out.empty()) {
    compute::SetMetricsRegistry(nullptr);
    const Status ws = io::Env::Default()->WriteFile(
        metrics_out, obs::SnapshotToJsonl(registry.Snapshot()) +
                         obs::TracesToJsonl(tracer.Traces()));
    if (!ws.ok()) return Fail(ws);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return other_err == 0 ? 0 : 1;
}

int CmdServe(const Flags& flags) {
  const data::InteractionDataset dataset =
      LoadOrDie(flags).FilterMinInteractions(5);
  const data::SplitDataset split(dataset, 4);

  const int64_t shards = flags.GetInt("shards", 1);
  if (shards > 1) return CmdServeCluster(flags, split, shards);

  serving::ModelServerOptions opts;
  opts.default_deadline_nanos = static_cast<int64_t>(
      flags.GetDouble("deadline-ms", 50.0) * serving::kNanosPerMilli);
  opts.admission.max_in_flight = flags.GetInt("max-inflight", 64);
  opts.admission.tokens_per_second = flags.GetDouble("rate", 0.0);
  opts.admission.burst = flags.GetDouble("burst", 32.0);
  opts.fast_path_history_len = flags.GetInt("fast-path-len", 8);

  // Declared before the server so its handles never outlive the registry.
  const std::string metrics_out = flags.Get("metrics-out");
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  if (!metrics_out.empty()) {
    opts.metrics = &registry;
    opts.tracer = &tracer;
    compute::SetMetricsRegistry(&registry);
  }

  serving::ModelServer server(
      opts, [&flags, &split] { return BuildModel(flags, split); });
  server.set_canary_requests(
      train::ExportCanarySet(split, flags.GetInt("canaries", 8)));
  server.set_fallback(serving::PopularityFallback::FromSplit(split));
  const Status start = server.StartFromCheckpoint(flags.Require("load"));
  if (!start.ok()) return Fail(start);
  const std::string state_dir = flags.Get("state-dir");
  if (!state_dir.empty()) {
    Result<std::unique_ptr<state::StateStore>> store = OpenStateStore(
        flags, metrics_out.empty() ? nullptr : &registry,
        metrics_out.empty() ? nullptr : &tracer);
    if (!store.ok()) return Fail(store.status());
    server.AttachStateStore(std::move(store.value()));
  }

  serving::RecommendOptions ropts;
  ropts.top_k = flags.GetInt("topk", 10);
  const int64_t requests = flags.GetInt("requests", 32);
  const std::string reload = flags.Get("reload");
  int64_t ok_count = 0, shed_count = 0, deadline_count = 0, other_err = 0;
  int64_t state_appends = 0;
  std::vector<bool> streamed(static_cast<size_t>(split.num_users()), false);
  for (int64_t i = 0; i < requests; ++i) {
    // Demonstrate validated hot reload halfway through the traffic; a
    // rollback (bad checkpoint) is reported but traffic keeps flowing on
    // the previous model.
    if (!reload.empty() && i == requests / 2) {
      const Status rs = server.Reload(reload);
      std::printf("reload %s: %s\n", reload.c_str(),
                  rs.ok() ? "installed" : rs.ToString().c_str());
    }
    const int64_t user = i % split.num_users();
    serving::ServeRequest req;
    req.options = ropts;
    const Result<serving::ServeResponse> r =
        [&]() -> Result<serving::ServeResponse> {
      if (state_dir.empty()) {
        req.history = split.TestInput(user);
        return server.Serve(req);
      }
      // Stream each user's history in as an append the first time they
      // show up, then serve from the store's live state.
      if (!streamed[static_cast<size_t>(user)]) {
        const Result<state::AppendAck> ack = server.AppendEvent(
            static_cast<uint64_t>(user), split.TestInput(user));
        if (!ack.ok()) return ack.status();
        streamed[static_cast<size_t>(user)] = true;
        ++state_appends;
      }
      return server.ServeSession(static_cast<uint64_t>(user), req);
    }();
    if (r.ok()) {
      ++ok_count;
    } else if (r.status().code() == Status::Code::kResourceExhausted) {
      ++shed_count;
    } else if (r.status().code() == Status::Code::kDeadlineExceeded) {
      ++deadline_count;
    } else {
      ++other_err;
    }
  }
  if (!state_dir.empty()) {
    // Fold the streamed events into a durable snapshot before exit, so the
    // next boot recovers from the snapshot instead of a long WAL replay.
    const Status compacted = server.state_store()->Compact();
    std::printf("state: %lld append(s), %lld user(s), last_seq %llu, "
                "compaction %s\n",
                static_cast<long long>(state_appends),
                static_cast<long long>(server.state_store()->num_users()),
                static_cast<unsigned long long>(
                    server.state_store()->last_seq()),
                compacted.ok() ? "ok" : compacted.ToString().c_str());
  }

  const serving::ServerStats stats = server.stats();
  std::printf("health: %s\n", serving::ToString(server.health()));
  bench::TablePrinter table({"served", "shed", "deadline", "full", "fast",
                             "fallback", "reloads", "rollbacks"});
  table.AddRow({std::to_string(stats.served), std::to_string(stats.shed),
                std::to_string(stats.deadline_exceeded),
                std::to_string(stats.full_model_served),
                std::to_string(stats.fast_path_served),
                std::to_string(stats.fallback_served),
                std::to_string(stats.reloads),
                std::to_string(stats.rollbacks)});
  table.Print();
  std::printf("requests ok %lld, shed %lld, deadline %lld, errors %lld\n",
              static_cast<long long>(ok_count),
              static_cast<long long>(shed_count),
              static_cast<long long>(deadline_count),
              static_cast<long long>(other_err));
  if (!metrics_out.empty()) {
    compute::SetMetricsRegistry(nullptr);
    const Status ws = io::Env::Default()->WriteFile(
        metrics_out, obs::SnapshotToJsonl(registry.Snapshot()) +
                         obs::TracesToJsonl(tracer.Traces()));
    if (!ws.ok()) return Fail(ws);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return other_err == 0 ? 0 : 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: slime4rec_cli "
      "<stats|generate|train|evaluate|recommend|serve|append-events|repair>"
      " [--flag value ...]\n"
      "  global    [--threads N]  compute threads (default: "
      "SLIME_NUM_THREADS or hardware)\n"
      "            [--kernel-backend auto|scalar|simd]  kernel tier "
      "(default: SLIME_KERNEL_BACKEND or scalar; auto picks simd on "
      "AVX2/FMA hosts)\n"
      "  any --data command also takes [--data-policy strict|repair] "
      "[--quarantine-out FILE]\n"
      "  stats     --data FILE\n"
      "  generate  --preset beauty-sim --scale 0.5 --out FILE\n"
      "  train     --data FILE [--model SLIME4Rec] [--epochs 20] "
      "[--alpha 0.4] [--save CKPT]\n"
      "            [--checkpoint-dir DIR] [--checkpoint-every 1] "
      "[--resume DIR] [--metrics-out FILE]\n"
      "  evaluate  --data FILE --load CKPT [--model ...]\n"
      "  recommend --data FILE --load CKPT --user 0 [--topk 10]\n"
      "  serve     --data FILE --load CKPT [--requests 32] "
      "[--deadline-ms 50]\n"
      "            [--max-inflight 64] [--rate QPS] [--burst 32] "
      "[--fast-path-len 8]\n"
      "            [--canaries 8] [--reload CKPT2] [--metrics-out FILE]\n"
      "            [--shards 1] [--replication 2]   (cluster mode when "
      "--shards >= 2)\n"
      "            [--state-dir DIR] [--state-sync always|group|none]  "
      "(durable session state, docs/STATE.md)\n"
      "            [--repair-on-restore 1] [--read-repair 1]  "
      "(anti-entropy, docs/CLUSTER.md)\n"
      "  append-events --state-dir DIR --events FILE "
      "[--state-sync group] [--compact 1]\n"
      "  repair    --state-dir DIR --shards N [--replication 2] "
      "[--vnodes 16] [--ring-seed S]\n"
      "            (offline digest anti-entropy over a cluster's shard "
      "state dirs)\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Flags flags(argc, argv, 2);
  // --threads overrides SLIME_NUM_THREADS (which overrides the hardware
  // default). Pin --threads 1 for paper-exact single-thread runs. The
  // value is untrusted input: reject garbage up front instead of spawning
  // a million workers or silently running single-threaded.
  const std::string threads_flag = flags.Get("threads");
  if (!threads_flag.empty()) {
    const Result<int> threads = compute::ParseThreadCount(threads_flag);
    if (!threads.ok()) {
      std::fprintf(stderr, "invalid --threads: %s\n",
                   threads.status().message().c_str());
      return 2;
    }
    compute::SetNumThreads(threads.value());
  }
  // --kernel-backend overrides SLIME_KERNEL_BACKEND. Same validation
  // posture as --threads: unknown names are rejected with the valid set
  // instead of silently computing on the wrong tier.
  const std::string backend_flag = flags.Get("kernel-backend");
  if (!backend_flag.empty()) {
    const Result<std::string> backend =
        compute::SetKernelBackend(backend_flag);
    if (!backend.ok()) {
      std::fprintf(stderr, "invalid --kernel-backend: %s\n",
                   backend.status().message().c_str());
      return 2;
    }
  }
  if (cmd == "train" || cmd == "serve" || cmd == "evaluate" ||
      cmd == "recommend") {
    std::printf("kernel backend: %s\n",
                compute::ActiveKernelBackend().c_str());
  }
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  if (cmd == "recommend") return CmdRecommend(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "append-events") return CmdAppendEvents(flags);
  if (cmd == "repair") return CmdRepair(flags);
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace slime

int main(int argc, char** argv) { return slime::cli::Main(argc, argv); }
