#ifndef SLIME4REC_SERVING_MODEL_SERVER_H_
#define SLIME4REC_SERVING_MODEL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "io/env.h"
#include "models/recommender.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "serving/admission.h"
#include "serving/clock.h"
#include "serving/cost_ewma.h"
#include "serving/fallback.h"
#include "serving/recommendation_service.h"
#include "state/state_store.h"

namespace slime {
namespace serving {

/// Operational state of a ModelServer.
enum class HealthState {
  kStarting,   // constructed, no validated model installed yet
  kServing,    // healthy: requests served by the full model
  kDegraded,   // recent requests shed or served below the full-model tier
  kDraining,   // shutting down: no new requests admitted
};
const char* ToString(HealthState state);

/// Which rung of the degradation ladder produced a response.
enum class ServeTier {
  kFullModel,           // full history through the live model
  kTruncatedHistory,    // last-n-items retry through the live model
  kPopularityFallback,  // model-free popularity ranking
};
const char* ToString(ServeTier tier);

/// Tuning knobs; every time value is in nanoseconds on the server's Clock.
struct ModelServerOptions {
  /// Per-request time budget when the request doesn't carry its own.
  int64_t default_deadline_nanos = 50 * kNanosPerMilli;
  /// Load-shedding policy (in-flight cap + token bucket).
  AdmissionOptions admission;
  /// `n` for the truncated-history retry tier: the request is re-attempted
  /// with only the last n history items. (With this library's fixed-length
  /// padding the model FLOPs are unchanged; the tier bounds per-user
  /// preprocessing for very long histories and, more importantly, is the
  /// bounded second attempt between "full fidelity" and "give up to the
  /// popularity ranker".)
  int64_t fast_path_history_len = 8;
  /// A model tier is only attempted while the remaining budget is at
  /// least max(this floor, the tier's observed-cost EWMA); below that the
  /// request drops down the ladder instead of starting a forward pass that
  /// the latency history says is doomed. This is what makes the middle
  /// tier reachable: a tight-but-alive budget skips the full pass and
  /// goes straight to the cheaper retry.
  int64_t min_model_budget_nanos = kNanosPerMilli;
  /// When the deadline fires with no fallback available: `true` returns
  /// whatever completed (uncompleted users flagged via
  /// ServeResponse::complete), `false` fails the whole batch with
  /// DeadlineExceeded.
  bool allow_partial_on_deadline = true;
  /// Consecutive fully-served (all users at the full-model tier) requests
  /// needed to leave kDegraded.
  int64_t recovery_full_responses = 8;
  /// Top-K used for canary validation during Start/Reload.
  int64_t canary_top_k = 5;
  /// Metrics registry the server publishes its counters/gauges/histograms
  /// into (names under "serving."). nullptr: the server owns a private
  /// enabled registry, so stats() always works. Pass an obs::NoopRegistry
  /// to disable instrumentation entirely (stats() then reads zeros — the
  /// bench overhead gate runs this configuration).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional per-request tracer (admit → snapshot → tier passes, with
  /// tier-downgrade/shed annotations). nullptr disables tracing — the
  /// default, since traces cost allocations per request.
  obs::Tracer* tracer = nullptr;
};

/// One serving request: a user history plus ranking options and an
/// optional per-request deadline budget.
struct ServeRequest {
  std::vector<int64_t> history;
  RecommendOptions options;
  /// Time budget for this request; 0 uses the server default.
  int64_t deadline_nanos = 0;
  /// Optional caller-side cancellation (client disconnect, or a hedging
  /// cluster client abandoning the slower attempt). Unlike the internal
  /// deadline predicate — which makes the request *degrade* down the
  /// ladder — an external cancel makes it *stop*: the server returns
  /// Status::Aborted without descending to cheaper tiers, because the
  /// caller no longer wants any answer from this attempt. Must be
  /// thread-safe and cheap (it is polled from compute-pool threads).
  CancelFn cancel;
};

/// One served ranking, tagged with the tier that produced it and the model
/// generation that was live (generation 0 = no model involved, i.e. pure
/// fallback before any reload bookkeeping — in practice the generation the
/// request snapshotted).
struct ServeResponse {
  std::vector<Recommendation> items;
  ServeTier tier = ServeTier::kFullModel;
  /// False when the deadline fired before any tier could produce items for
  /// this user (only possible with no fallback configured).
  bool complete = true;
  int64_t generation = 0;
};

struct BatchServeRequest {
  std::vector<std::vector<int64_t>> histories;
  RecommendOptions options;
  int64_t deadline_nanos = 0;
  /// See ServeRequest::cancel.
  CancelFn cancel;
};

struct BatchServeResponse {
  std::vector<ServeResponse> responses;  // one per requested history
  /// True if the deadline cancelled model work at any point (even when the
  /// fallback rescued every user).
  bool deadline_hit = false;
  int64_t generation = 0;
};

/// Cumulative counters since construction (monotone; sampled atomically
/// field-by-field, so cross-field sums may be momentarily inconsistent
/// under concurrent traffic). Since the observability layer landed this is
/// a thin view over the server's registry-backed "serving.*" metrics; with
/// an obs::NoopRegistry injected every field reads 0.
struct ServerStats {
  int64_t requests = 0;           // admitted Serve/ServeBatch calls
  int64_t served = 0;             // user rankings returned, any tier
  int64_t shed = 0;               // calls rejected by admission control
  int64_t deadline_exceeded = 0;  // calls whose deadline cancelled work
  int64_t full_model_served = 0;      // per-user tier counts
  int64_t fast_path_served = 0;
  int64_t fallback_served = 0;
  int64_t reloads = 0;    // validated hot reloads installed
  int64_t rollbacks = 0;  // reload attempts rolled back (load or canary)
  /// EWMA of observed per-tier pass cost (0 until first measured), the
  /// values gating ladder decisions.
  int64_t full_cost_estimate_nanos = 0;
  int64_t fast_cost_estimate_nanos = 0;
};

/// Production-shaped serving shell around RecommendationService:
///
///  - **Deadlines.** Every request runs under a time budget on the
///    injected Clock; a cooperative cancel predicate is threaded through
///    the batch fan-out, and overruns degrade instead of hanging.
///  - **Admission control.** A bounded in-flight budget plus a token
///    bucket shed excess load with Status::ResourceExhausted and a
///    retry-after hint, before the model burns cycles on a request that
///    would miss its deadline anyway.
///  - **Degradation ladder.** full model → truncated-history retry →
///    PopularityFallback; every response is tagged with the tier that
///    served it.
///  - **Validated hot reload.** Reload() loads a checkpoint through the
///    io::Env/CRC-32 machinery into a *shadow* model, replays the canary
///    request set against sanity bounds (finite scores, non-empty top-K),
///    and only then atomically swaps the live shared_ptr — any failure
///    rolls back with the previous model still answering. In-flight
///    requests hold their own snapshot, so a reload can never expose a
///    partially loaded model.
///  - **Health + counters** for observability: kStarting/kServing/
///    kDegraded/kDraining and the ServerStats counters.
///
/// Concurrency: Serve/ServeBatch may be called from any number of threads.
/// Model inference is serialised by an internal mutex (the model object is
/// stateful during a forward pass); parallelism *within* a request comes
/// from the compute pool, which is where CPU time goes anyway, and the
/// admission in-flight cap bounds the queue behind the mutex. With a
/// FakeClock every outcome — tiers, shed decisions, counters, rankings —
/// is bit-identical at any compute thread count.
class ModelServer {
 public:
  /// Builds a fresh, identically-structured model for checkpoint loading
  /// (checkpoints only load into a model of the same architecture).
  using ModelFactory =
      std::function<std::unique_ptr<models::SequentialRecommender>()>;

  /// `clock`/`env` default to the real clock and filesystem; tests inject
  /// FakeClock / FaultInjectionEnv. `factory` may be null if Start() is
  /// used and no checkpoint reloads are needed.
  explicit ModelServer(const ModelServerOptions& options,
                       ModelFactory factory = nullptr,
                       Clock* clock = nullptr, io::Env* env = nullptr);

  /// Canary request set replayed against every candidate model before it
  /// goes live (see train::ExportCanarySet). Without canaries, validation
  /// degrades to the checkpoint CRC check alone. Must be called before
  /// Start/Reload, not concurrently with them.
  void set_canary_requests(std::vector<std::vector<int64_t>> canaries);

  /// Installs the ladder's model-free last tier. Without it, deadline
  /// blowouts can leave requests unserved (ServeResponse::complete =
  /// false, or DeadlineExceeded).
  void set_fallback(PopularityFallback fallback);

  /// Validates `model` against the canary set and goes kServing. On
  /// canary failure the server stays kStarting and keeps no model.
  Status Start(std::unique_ptr<models::SequentialRecommender> model);

  /// factory() + LoadCheckpoint + Start, the usual boot path.
  Status StartFromCheckpoint(const std::string& path);

  Result<ServeResponse> Serve(const ServeRequest& request);
  Result<BatchServeResponse> ServeBatch(const BatchServeRequest& request);

  /// --- Streaming state (ROADMAP item 4; see docs/STATE.md) -------------
  ///
  /// Attaches a durable per-user state store: AppendEvent feeds it,
  /// ServeSession reads live histories out of it. The server owns the
  /// store from here on. Any previously cached session responses are
  /// dropped.
  void AttachStateStore(std::unique_ptr<state::StateStore> store);
  /// The attached store, or nullptr. The pointer stays valid for the
  /// server's lifetime (stores are attached once, at boot).
  state::StateStore* state_store() const { return state_store_.get(); }

  /// Durably appends interaction events for `user_id` (per the store's
  /// SyncMode) and invalidates the user's cached session response — the
  /// next ServeSession recomputes from the updated history. Fails with
  /// InvalidArgument when no store is attached; a failed append (e.g. the
  /// sync barrier could not run) means the event was NOT accepted.
  Result<state::AppendAck> AppendEvent(uint64_t user_id,
                                       const std::vector<int64_t>& items);

  /// Serves a session request: like Serve, but the history is the user's
  /// live state from the store (request.history is ignored). Responses are
  /// cached per user and reused while (user state version, model
  /// generation, ranking options) all match — the cached-inference
  /// stand-in that AppendEvent invalidates. Unknown users fail with a
  /// typed NotFound (append first).
  Result<ServeResponse> ServeSession(uint64_t user_id,
                                     const ServeRequest& request);

  /// Re-runs state recovery from disk, discarding in-memory state and the
  /// session cache — the "restarted process" drill used by
  /// cluster::ClusterServer::RestoreShard. No-op without a store.
  Status ReloadStateFromDisk();

  /// The user's anti-entropy digest from the attached store (zero digest
  /// for an unknown user) — what the cluster's repair sweep and read-
  /// repair compare across replicas without shipping histories. Fails
  /// with InvalidArgument when no store is attached.
  Result<state::UserDigest> UserStateDigest(uint64_t user_id) const;

  /// Validated hot reload; see class comment. Serialised against other
  /// reloads; concurrent requests keep serving the previous model until
  /// the swap. Returns the load/validation error on rollback.
  Status Reload(const std::string& checkpoint_path);

  /// Begins a graceful shutdown: the server transitions to kDraining and
  /// every *subsequent* Serve/ServeBatch call is rejected up front with a
  /// typed Status::Unavailable ("server is draining") before admission —
  /// it consumes no admission slot and touches no model state. Requests
  /// already past the health check keep running to completion on their
  /// model snapshot: BeginDrain only flips the state flag (it takes no
  /// model or inference lock), so nothing in flight is interrupted,
  /// cancelled, or downgraded. kDraining is terminal — there is no
  /// undrain; a cluster restores capacity by routing around the draining
  /// shard (see cluster::ClusterServer). Verified by
  /// ModelServerTest.DrainRejectsNewWhileInFlightCompletes.
  void BeginDrain();

  HealthState health() const;
  ServerStats stats() const;
  /// Monotone counter bumped by every installed model (Start or Reload).
  int64_t generation() const;
  /// The registry the server's "serving.*" metrics live in: the injected
  /// one, or the private registry when options.metrics was null.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct TierOutcome;  // per-tier bookkeeping helper (see .cc)

  std::shared_ptr<models::SequentialRecommender> ModelSnapshot(
      int64_t* generation) const;
  Status ValidateCanaries(models::SequentialRecommender* candidate);
  void Install(std::unique_ptr<models::SequentialRecommender> model);
  void UpdateHealthAfterServe(bool all_full_tier);
  void NoteShed();

  const ModelServerOptions options_;
  ModelFactory factory_;
  Clock* clock_;
  io::Env* env_;
  AdmissionController admission_;
  PopularityFallback fallback_;
  std::vector<std::vector<int64_t>> canaries_;

  mutable std::mutex model_mu_;  // guards model_ + generation_ (swap point)
  std::shared_ptr<models::SequentialRecommender> model_;
  int64_t generation_ = 0;

  std::mutex infer_mu_;   // serialises forward passes (live + canary)
  std::mutex reload_mu_;  // one Start/Reload at a time

  mutable std::mutex state_mu_;  // health state + recovery hysteresis
  HealthState state_ = HealthState::kStarting;
  int64_t consecutive_full_ = 0;

  /// Streaming-state tier. The cache entry is the response computed from
  /// (user state version, model generation, ranking options); any append
  /// or reload changes one of those and the entry stops matching.
  struct SessionCacheEntry {
    int64_t version = 0;
    int64_t generation = 0;
    int64_t top_k = 0;
    bool exclude_seen = false;
    ServeResponse response;
  };
  std::unique_ptr<state::StateStore> state_store_;
  std::mutex session_mu_;  // guards session_cache_
  std::unordered_map<uint64_t, SessionCacheEntry> session_cache_;
  obs::Counter session_hits_;
  obs::Counter session_misses_;
  obs::Counter session_invalidations_;

  /// Registry the counters/gauges/histograms below are handles into: the
  /// injected options.metrics, or the private owned_metrics_ fallback.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;  // may be null (tracing off)

  obs::Counter requests_;
  obs::Counter served_;
  obs::Counter shed_;
  obs::Counter deadline_exceeded_;
  obs::Counter full_model_served_;
  obs::Counter fast_path_served_;
  obs::Counter fallback_served_;
  obs::Counter reloads_;
  obs::Counter rollbacks_;
  /// Mirrors of the cost EWMAs and health state for snapshot export.
  obs::Gauge full_cost_gauge_;
  obs::Gauge fast_cost_gauge_;
  obs::Gauge health_gauge_;
  /// Request and per-tier pass latencies on clock_ (deterministic under a
  /// FakeClock).
  obs::Histogram request_nanos_;
  obs::Histogram full_pass_nanos_;
  obs::Histogram fast_pass_nanos_;

  /// Per-tier observed cost EWMAs, measured on clock_ around each pass
  /// (updates are deterministic under a FakeClock). Integer EWMA with a
  /// CAS loop (see CostEwma) so concurrent observations never lose
  /// updates.
  CostEwma full_cost_estimate_;
  CostEwma fast_cost_estimate_;
};

}  // namespace serving
}  // namespace slime

#endif  // SLIME4REC_SERVING_MODEL_SERVER_H_
