#ifndef SLIME4REC_SERVING_RECOMMENDATION_SERVICE_H_
#define SLIME4REC_SERVING_RECOMMENDATION_SERVICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "models/recommender.h"

namespace slime {
namespace serving {

/// One ranked recommendation.
struct Recommendation {
  int64_t item = 0;
  float score = 0.0f;
};

/// Options for a recommendation request.
struct RecommendOptions {
  int64_t top_k = 10;
  /// Drop items that already appear in the user's history (the common
  /// serving default; evaluation benches do NOT filter, matching the
  /// paper's protocol).
  bool exclude_seen = true;
  /// Optional explicit blocklist (e.g. out-of-stock items).
  std::vector<int64_t> exclude_items;
};

/// Cooperative cancellation predicate: returns true once the caller wants
/// the batch abandoned (typically "deadline passed"). Evaluated from
/// multiple compute-pool threads concurrently, so it must be thread-safe
/// and cheap; a read of an atomic/FakeClock qualifies.
using CancelFn = std::function<bool()>;

/// Result of a cancellable batch call: per-user ranked lists plus which
/// users actually completed before cancellation fired.
struct PartialBatch {
  /// One entry per requested history; `lists[i]` is meaningful only where
  /// `completed[i]` is 1 (skipped users hold an empty vector).
  std::vector<std::vector<Recommendation>> lists;
  std::vector<char> completed;
  /// True if the cancel predicate was observed true at any checkpoint.
  bool cancelled = false;
};

/// Serving wrapper over any trained SequentialRecommender: takes raw user
/// histories, handles padding/truncation and batching, and returns ranked
/// top-K lists. The service switches the model to eval mode for the
/// duration of each call and restores the previous mode afterwards.
///
/// Requests are untrusted input: malformed histories (item ids outside
/// [1, num_items], empty histories) and non-positive top_k are rejected
/// with Status::InvalidArgument rather than crossing into the model, where
/// an out-of-range id would index out of bounds. An empty batch is valid
/// and yields an empty result.
///
/// Thread-safety contract (the fan-out inside RecommendBatch uses the
/// compute pool, but that changes nothing for callers):
///  - A call parallelises *internally* across the compute pool
///    (ScoreAll's kernels plus the per-user top-K extraction), with the
///    deterministic work split of compute::ParallelFor, so results are
///    bit-identical at any thread count.
///  - Calls on the same underlying model must be *externally* serialised:
///    the model object is stateful during inference (training-mode toggle,
///    RNG), so two concurrent calls — or a call racing Trainer::Fit — are
///    data races. A models::ModelUseGuard taken around each call turns a
///    sustained violation into an immediate SLIME_CHECK failure instead of
///    silent corruption. ModelServer provides the serialisation (and
///    admission control) for concurrent callers.
///
/// The model pointer is non-owning; the caller keeps it alive across calls.
class RecommendationService {
 public:
  explicit RecommendationService(models::SequentialRecommender* model);

  /// Top-K for one user history (chronological item ids, 1-based).
  Result<std::vector<Recommendation>> Recommend(
      const std::vector<int64_t>& history,
      const RecommendOptions& options = {}) const;

  /// Batched variant; one ranked list per history.
  Result<std::vector<std::vector<Recommendation>>> RecommendBatch(
      const std::vector<std::vector<int64_t>>& histories,
      const RecommendOptions& options = {}) const;

  /// Batched variant with a cooperative deadline: `cancelled` is checked
  /// before the model forward pass and again before each user's top-K
  /// extraction. Once it returns true, remaining users are skipped (their
  /// `completed` slot stays 0) and the result is returned with
  /// `cancelled = true` — the caller decides whether partial results are
  /// acceptable or the request degrades to a cheaper tier. Validation
  /// failures still surface as a non-OK Result; cancellation does not.
  /// A null `cancelled` behaves exactly like RecommendBatch.
  Result<PartialBatch> RecommendBatchCancellable(
      const std::vector<std::vector<int64_t>>& histories,
      const RecommendOptions& options, const CancelFn& cancelled) const;

  int64_t num_items() const { return model_->config().num_items; }

 private:
  /// Validates one request; non-OK for any malformed history or option.
  Status Validate(const std::vector<std::vector<int64_t>>& histories,
                  const RecommendOptions& options) const;

  models::SequentialRecommender* model_;
};

/// Standalone helper: top-k (item, score) pairs from one score row
/// (column 0 = padding is always excluded), honouring an exclusion mask.
/// Equal scores rank the lower item id first — unconditionally, so a
/// ranking never depends on iteration order, thread count, or the
/// std::partial_sort implementation.
std::vector<Recommendation> TopKFromScores(const float* row,
                                           int64_t num_items, int64_t k,
                                           const std::vector<bool>& excluded);

}  // namespace serving
}  // namespace slime

#endif  // SLIME4REC_SERVING_RECOMMENDATION_SERVICE_H_
