#ifndef SLIME4REC_SERVING_RECOMMENDATION_SERVICE_H_
#define SLIME4REC_SERVING_RECOMMENDATION_SERVICE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "models/recommender.h"

namespace slime {
namespace serving {

/// One ranked recommendation.
struct Recommendation {
  int64_t item = 0;
  float score = 0.0f;
};

/// Options for a recommendation request.
struct RecommendOptions {
  int64_t top_k = 10;
  /// Drop items that already appear in the user's history (the common
  /// serving default; evaluation benches do NOT filter, matching the
  /// paper's protocol).
  bool exclude_seen = true;
  /// Optional explicit blocklist (e.g. out-of-stock items).
  std::vector<int64_t> exclude_items;
};

/// Thin serving wrapper over any trained SequentialRecommender: takes raw
/// user histories, handles padding/truncation and batching, and returns
/// ranked top-K lists. The service switches the model to eval mode for
/// the duration of each call and restores the previous mode afterwards.
///
/// Requests are untrusted input: malformed histories (item ids outside
/// [1, num_items], empty histories) and non-positive top_k are rejected
/// with Status::InvalidArgument rather than crossing into the model, where
/// an out-of-range id would index out of bounds. An empty batch is valid
/// and yields an empty result.
///
/// The model pointer is non-owning; the caller keeps it alive and must
/// not train it concurrently (single-threaded, like the library).
class RecommendationService {
 public:
  explicit RecommendationService(models::SequentialRecommender* model);

  /// Top-K for one user history (chronological item ids, 1-based).
  Result<std::vector<Recommendation>> Recommend(
      const std::vector<int64_t>& history,
      const RecommendOptions& options = {}) const;

  /// Batched variant; one ranked list per history.
  Result<std::vector<std::vector<Recommendation>>> RecommendBatch(
      const std::vector<std::vector<int64_t>>& histories,
      const RecommendOptions& options = {}) const;

  int64_t num_items() const { return model_->config().num_items; }

 private:
  /// Validates one request; non-OK for any malformed history or option.
  Status Validate(const std::vector<std::vector<int64_t>>& histories,
                  const RecommendOptions& options) const;

  models::SequentialRecommender* model_;
};

/// Standalone helper: top-k (item, score) pairs from one score row
/// (column 0 = padding is always excluded), honouring an exclusion mask.
std::vector<Recommendation> TopKFromScores(const float* row,
                                           int64_t num_items, int64_t k,
                                           const std::vector<bool>& excluded);

}  // namespace serving
}  // namespace slime

#endif  // SLIME4REC_SERVING_RECOMMENDATION_SERVICE_H_
