#ifndef SLIME4REC_SERVING_ADMISSION_H_
#define SLIME4REC_SERVING_ADMISSION_H_

#include <cstdint>
#include <mutex>

#include "serving/clock.h"

namespace slime {
namespace serving {

/// Overload policy for one server: how many requests may be in flight at
/// once, and how fast new ones may arrive.
struct AdmissionOptions {
  /// Hard cap on concurrently admitted requests. Requests beyond it are
  /// shed immediately (fail fast beats queueing: a queue under sustained
  /// overload only converts overload into latency for everyone).
  int64_t max_in_flight = 64;
  /// Token-bucket rate limit. 0 disables rate limiting; otherwise each
  /// admitted request consumes one token and tokens refill continuously at
  /// this rate up to `burst`.
  double tokens_per_second = 0.0;
  /// Bucket capacity: the largest instantaneous burst admitted after an
  /// idle period. Must be >= 1 when rate limiting is on.
  double burst = 32.0;
  /// Retry-after hint handed out when shedding on the in-flight cap, where
  /// (unlike an empty token bucket) no exact refill time is computable.
  int64_t in_flight_retry_hint_nanos = kNanosPerMilli;
};

/// Outcome of one admission attempt.
struct AdmissionDecision {
  bool admitted = false;
  /// When not admitted: suggested client back-off. For token exhaustion
  /// this is the exact time until the next token at the configured rate;
  /// for the in-flight cap it is the configured hint.
  int64_t retry_after_nanos = 0;
  /// Which limit rejected the request ("in-flight" or "rate"); nullptr
  /// when admitted.
  const char* limit = nullptr;
};

/// Deterministic admission controller: a bounded in-flight budget plus a
/// token bucket, both driven by the injected Clock, so tests with a
/// FakeClock replay identical shed/admit sequences regardless of thread
/// count or machine speed. Thread-safe; one instance per ModelServer.
class AdmissionController {
 public:
  AdmissionController(const AdmissionOptions& options, Clock* clock);

  /// Tries to admit one request at the current clock time. On success the
  /// caller owes exactly one Release() when the request finishes.
  AdmissionDecision TryAdmit();

  /// Marks one admitted request finished.
  void Release();

  int64_t in_flight() const;

 private:
  const AdmissionOptions options_;
  Clock* clock_;
  mutable std::mutex mu_;
  int64_t in_flight_ = 0;       // guarded by mu_
  double tokens_;               // guarded by mu_
  int64_t last_refill_nanos_;   // guarded by mu_
};

}  // namespace serving
}  // namespace slime

#endif  // SLIME4REC_SERVING_ADMISSION_H_
