#include "serving/admission.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace slime {
namespace serving {

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         Clock* clock)
    : options_(options), clock_(clock) {
  SLIME_CHECK(clock != nullptr);
  SLIME_CHECK_GE(options_.max_in_flight, 1);
  if (options_.tokens_per_second > 0.0) {
    SLIME_CHECK_GE(options_.burst, 1.0);
  }
  tokens_ = options_.burst;
  last_refill_nanos_ = clock_->NowNanos();
}

AdmissionDecision AdmissionController::TryAdmit() {
  std::lock_guard<std::mutex> lk(mu_);
  if (in_flight_ >= options_.max_in_flight) {
    return {false, options_.in_flight_retry_hint_nanos, "in-flight"};
  }
  if (options_.tokens_per_second > 0.0) {
    const int64_t now = clock_->NowNanos();
    // Refill from the last observed time; the clock is monotonic but a
    // FakeClock shared across tests may be Set() backwards, so clamp.
    const int64_t elapsed = std::max<int64_t>(0, now - last_refill_nanos_);
    last_refill_nanos_ = now;
    tokens_ = std::min(
        options_.burst,
        tokens_ + options_.tokens_per_second *
                      (static_cast<double>(elapsed) / kNanosPerSecond));
    if (tokens_ < 1.0) {
      const double deficit_seconds =
          (1.0 - tokens_) / options_.tokens_per_second;
      return {false,
              static_cast<int64_t>(std::ceil(deficit_seconds *
                                             kNanosPerSecond)),
              "rate"};
    }
    tokens_ -= 1.0;
  }
  ++in_flight_;
  return {true, 0, nullptr};
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lk(mu_);
  SLIME_CHECK_GT(in_flight_, 0);
  --in_flight_;
}

int64_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_flight_;
}

}  // namespace serving
}  // namespace slime
