#include "serving/clock.h"

#include <chrono>
#include <thread>

namespace slime {
namespace serving {
namespace {

class SteadyClock : public Clock {
 public:
  int64_t NowNanos() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

void Clock::SleepFor(int64_t nanos) {
  if (nanos <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
}

Clock* Clock::Default() {
  static SteadyClock clock;
  return &clock;
}

}  // namespace serving
}  // namespace slime
