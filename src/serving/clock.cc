#include "serving/clock.h"

#include <chrono>

namespace slime {
namespace serving {
namespace {

class SteadyClock : public Clock {
 public:
  int64_t NowNanos() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

Clock* Clock::Default() {
  static SteadyClock clock;
  return &clock;
}

}  // namespace serving
}  // namespace slime
