#include "serving/fallback.h"

#include <algorithm>

#include "common/macros.h"

namespace slime {
namespace serving {

PopularityFallback PopularityFallback::FromCounts(
    const std::vector<int64_t>& counts) {
  SLIME_CHECK_GE(counts.size(), 2u);  // item 0 is padding; need >= 1 item
  PopularityFallback fallback;
  fallback.scores_.resize(counts.size());
  for (size_t i = 1; i < counts.size(); ++i) {
    fallback.scores_[i] = static_cast<float>(counts[i]);
  }
  fallback.scores_[0] = 0.0f;
  return fallback;
}

PopularityFallback PopularityFallback::FromSplit(
    const data::SplitDataset& split) {
  std::vector<int64_t> counts(split.num_items() + 1, 0);
  for (const auto& region : split.train_region()) {
    for (int64_t item : region) {
      if (item >= 1 && item <= split.num_items()) ++counts[item];
    }
  }
  return FromCounts(counts);
}

std::vector<Recommendation> PopularityFallback::Recommend(
    const std::vector<int64_t>& history,
    const RecommendOptions& options) const {
  SLIME_CHECK(Available());
  const int64_t n = num_items();
  std::vector<bool> excluded(n + 1, false);
  if (options.exclude_seen) {
    for (int64_t item : history) {
      if (item >= 1 && item <= n) excluded[item] = true;
    }
  }
  for (int64_t item : options.exclude_items) {
    if (item >= 1 && item <= n) excluded[item] = true;
  }
  return TopKFromScores(scores_.data(), n, std::max<int64_t>(0, options.top_k),
                        excluded);
}

}  // namespace serving
}  // namespace slime
