#ifndef SLIME4REC_SERVING_COST_EWMA_H_
#define SLIME4REC_SERVING_COST_EWMA_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace slime {
namespace serving {

/// Lock-free integer EWMA of observed tier cost (3/4 old + 1/4 new, first
/// observation adopted whole) — platform-independent arithmetic so ladder
/// decisions replay identically everywhere.
///
/// The predecessor of this class was a plain load/store pair, which is a
/// non-atomic read-modify-write: two requests observing concurrently could
/// interleave (both load the same `old`, the slower store wins and the
/// faster observation is lost entirely). In the server that race was latent
/// — callers held the inference lock — but the estimate is a public,
/// self-contained value and deserves to be correct on its own, so Observe
/// uses a compare_exchange_weak loop: a lost race retries against the
/// updated value instead of overwriting it.
class CostEwma {
 public:
  CostEwma() = default;
  CostEwma(const CostEwma&) = delete;
  CostEwma& operator=(const CostEwma&) = delete;

  /// Folds one observed cost (negative observations clamp to 0) into the
  /// estimate. Safe against concurrent Observe calls from any thread.
  void Observe(int64_t observed) {
    observed = std::max<int64_t>(0, observed);
    int64_t old = estimate_.load(std::memory_order_relaxed);
    int64_t next;
    do {
      next = old == 0 ? observed : (old * 3 + observed) / 4;
    } while (!estimate_.compare_exchange_weak(old, next,
                                              std::memory_order_relaxed));
  }

  /// Current estimate; 0 until the first observation.
  int64_t value() const { return estimate_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> estimate_{0};
};

}  // namespace serving
}  // namespace slime

#endif  // SLIME4REC_SERVING_COST_EWMA_H_
