#include "serving/model_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "io/checkpoint.h"

namespace slime {
namespace serving {
namespace {

/// Releases one admission slot on scope exit.
class AdmissionRelease {
 public:
  explicit AdmissionRelease(AdmissionController* admission)
      : admission_(admission) {}
  ~AdmissionRelease() { admission_->Release(); }
  AdmissionRelease(const AdmissionRelease&) = delete;
  AdmissionRelease& operator=(const AdmissionRelease&) = delete;

 private:
  AdmissionController* admission_;
};

std::string NanosAsMillis(int64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms",
                static_cast<double>(nanos) / kNanosPerMilli);
  return buf;
}

/// Integer EWMA (3/4 old + 1/4 new; first observation adopted whole) —
/// platform-independent arithmetic so ladder decisions replay identically.
void UpdateCostEstimate(std::atomic<int64_t>* estimate, int64_t observed) {
  observed = std::max<int64_t>(0, observed);
  const int64_t old = estimate->load(std::memory_order_relaxed);
  estimate->store(old == 0 ? observed : (old * 3 + observed) / 4,
                  std::memory_order_relaxed);
}

}  // namespace

const char* ToString(HealthState state) {
  switch (state) {
    case HealthState::kStarting:
      return "starting";
    case HealthState::kServing:
      return "serving";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDraining:
      return "draining";
  }
  return "unknown";
}

const char* ToString(ServeTier tier) {
  switch (tier) {
    case ServeTier::kFullModel:
      return "full-model";
    case ServeTier::kTruncatedHistory:
      return "truncated-history";
    case ServeTier::kPopularityFallback:
      return "popularity-fallback";
  }
  return "unknown";
}

ModelServer::ModelServer(const ModelServerOptions& options,
                         ModelFactory factory, Clock* clock, io::Env* env)
    : options_(options),
      factory_(std::move(factory)),
      clock_(clock != nullptr ? clock : Clock::Default()),
      env_(env != nullptr ? env : io::Env::Default()),
      admission_(options.admission, clock_) {
  SLIME_CHECK_GT(options_.default_deadline_nanos, 0);
  SLIME_CHECK_GE(options_.fast_path_history_len, 1);
  SLIME_CHECK_GE(options_.min_model_budget_nanos, 0);
  SLIME_CHECK_GE(options_.recovery_full_responses, 1);
  SLIME_CHECK_GE(options_.canary_top_k, 1);
}

void ModelServer::set_canary_requests(
    std::vector<std::vector<int64_t>> canaries) {
  canaries_ = std::move(canaries);
}

void ModelServer::set_fallback(PopularityFallback fallback) {
  fallback_ = std::move(fallback);
}

std::shared_ptr<models::SequentialRecommender> ModelServer::ModelSnapshot(
    int64_t* generation) const {
  std::lock_guard<std::mutex> lk(model_mu_);
  if (generation != nullptr) *generation = generation_;
  return model_;
}

Status ModelServer::ValidateCanaries(
    models::SequentialRecommender* candidate) {
  RecommendationService service(candidate);
  RecommendOptions options;
  options.top_k = options_.canary_top_k;
  // Canary forward passes share the compute pool (and, in chaos tests, the
  // clock seam) with live traffic; take the inference lock like any other
  // forward pass so the two never interleave on the model-stateful path.
  std::lock_guard<std::mutex> lk(infer_mu_);
  for (size_t i = 0; i < canaries_.size(); ++i) {
    const std::string tag = "canary " + std::to_string(i);
    const Result<std::vector<Recommendation>> ranked =
        service.Recommend(canaries_[i], options);
    if (!ranked.ok()) {
      return Status::Aborted(tag + " failed: " + ranked.status().ToString());
    }
    if (ranked.value().empty()) {
      return Status::Aborted(tag + " returned an empty top-K");
    }
    for (const Recommendation& rec : ranked.value()) {
      if (!std::isfinite(rec.score)) {
        return Status::Aborted(tag + " produced a non-finite score for item " +
                               std::to_string(rec.item));
      }
      if (rec.item < 1 || rec.item > candidate->config().num_items) {
        return Status::Aborted(tag + " ranked out-of-catalogue item " +
                               std::to_string(rec.item));
      }
    }
  }
  return Status::OK();
}

void ModelServer::Install(
    std::unique_ptr<models::SequentialRecommender> model) {
  std::lock_guard<std::mutex> lk(model_mu_);
  model_ = std::move(model);
  ++generation_;
}

Status ModelServer::Start(
    std::unique_ptr<models::SequentialRecommender> model) {
  SLIME_CHECK(model != nullptr);
  std::lock_guard<std::mutex> reload_lk(reload_mu_);
  const Status canary = ValidateCanaries(model.get());
  if (!canary.ok()) {
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return canary;
  }
  Install(std::move(model));
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (state_ == HealthState::kStarting) state_ = HealthState::kServing;
  }
  return Status::OK();
}

Status ModelServer::StartFromCheckpoint(const std::string& path) {
  if (!factory_) {
    return Status::InvalidArgument(
        "StartFromCheckpoint needs a model factory to build the target "
        "architecture");
  }
  std::unique_ptr<models::SequentialRecommender> fresh = factory_();
  SLIME_RETURN_IF_ERROR(io::LoadCheckpoint(fresh.get(), path, env_));
  return Start(std::move(fresh));
}

Status ModelServer::Reload(const std::string& checkpoint_path) {
  std::lock_guard<std::mutex> reload_lk(reload_mu_);
  if (!factory_) {
    return Status::InvalidArgument(
        "Reload needs a model factory to build the shadow model");
  }
  if (ModelSnapshot(nullptr) == nullptr) {
    return Status::InvalidArgument(
        "Reload before Start; use StartFromCheckpoint for the first model");
  }
  // Shadow load: the live model keeps serving while the candidate is
  // loaded and validated off to the side. Any failure below leaves the
  // server exactly as it was (rollback = do nothing).
  std::unique_ptr<models::SequentialRecommender> shadow = factory_();
  const Status loaded = io::LoadCheckpoint(shadow.get(), checkpoint_path, env_);
  if (!loaded.ok()) {
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return loaded;
  }
  const Status canary = ValidateCanaries(shadow.get());
  if (!canary.ok()) {
    rollbacks_.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted("reload of " + checkpoint_path +
                           " rolled back (previous model still serving): " +
                           canary.message());
  }
  Install(std::move(shadow));
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ModelServer::BeginDrain() {
  std::lock_guard<std::mutex> lk(state_mu_);
  state_ = HealthState::kDraining;
}

HealthState ModelServer::health() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return state_;
}

ServerStats ModelServer::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.full_model_served = full_model_served_.load(std::memory_order_relaxed);
  s.fast_path_served = fast_path_served_.load(std::memory_order_relaxed);
  s.fallback_served = fallback_served_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  s.full_cost_estimate_nanos =
      full_cost_estimate_.load(std::memory_order_relaxed);
  s.fast_cost_estimate_nanos =
      fast_cost_estimate_.load(std::memory_order_relaxed);
  return s;
}

int64_t ModelServer::generation() const {
  std::lock_guard<std::mutex> lk(model_mu_);
  return generation_;
}

void ModelServer::UpdateHealthAfterServe(bool all_full_tier) {
  std::lock_guard<std::mutex> lk(state_mu_);
  if (state_ == HealthState::kDraining || state_ == HealthState::kStarting) {
    return;
  }
  if (all_full_tier) {
    if (state_ == HealthState::kDegraded &&
        ++consecutive_full_ >= options_.recovery_full_responses) {
      state_ = HealthState::kServing;
      consecutive_full_ = 0;
    }
  } else {
    consecutive_full_ = 0;
    state_ = HealthState::kDegraded;
  }
}

void ModelServer::NoteShed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(state_mu_);
  if (state_ == HealthState::kServing) state_ = HealthState::kDegraded;
  consecutive_full_ = 0;
}

Result<ServeResponse> ModelServer::Serve(const ServeRequest& request) {
  BatchServeRequest batch;
  batch.histories = {request.history};
  batch.options = request.options;
  batch.deadline_nanos = request.deadline_nanos;
  Result<BatchServeResponse> result = ServeBatch(batch);
  if (!result.ok()) return result.status();
  ServeResponse response = std::move(result.value().responses[0]);
  if (!response.complete) {
    return Status::DeadlineExceeded(
        "deadline exceeded before any tier could serve the request");
  }
  return response;
}

Result<BatchServeResponse> ModelServer::ServeBatch(
    const BatchServeRequest& request) {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (state_ == HealthState::kStarting) {
      return Status::Unavailable("server is starting: no model installed");
    }
    if (state_ == HealthState::kDraining) {
      return Status::Unavailable("server is draining");
    }
  }
  const AdmissionDecision admit = admission_.TryAdmit();
  if (!admit.admitted) {
    NoteShed();
    return Status::ResourceExhausted(
        std::string("shed by ") + admit.limit + " limit; retry after " +
        NanosAsMillis(admit.retry_after_nanos));
  }
  AdmissionRelease release(&admission_);
  requests_.fetch_add(1, std::memory_order_relaxed);

  const int64_t budget = request.deadline_nanos > 0
                             ? request.deadline_nanos
                             : options_.default_deadline_nanos;
  const int64_t deadline = clock_->NowNanos() + budget;
  const CancelFn past_deadline = [this, deadline] {
    return clock_->NowNanos() >= deadline;
  };
  const CancelFn skip_tier = [] { return true; };
  const auto remaining = [this, deadline] {
    return deadline - clock_->NowNanos();
  };

  BatchServeResponse out;
  std::shared_ptr<models::SequentialRecommender> model =
      ModelSnapshot(&out.generation);
  SLIME_CHECK(model != nullptr);
  RecommendationService service(model.get());

  const size_t num_users = request.histories.size();
  out.responses.resize(num_users);
  for (ServeResponse& r : out.responses) r.generation = out.generation;

  // A tier is worth attempting only while the remaining budget covers its
  // observed cost (EWMA; the configured floor before any observation).
  const auto tier_budget = [this](int64_t estimate) {
    return std::max(options_.min_model_budget_nanos, estimate);
  };

  // --- Tier 1: full history through the live model. Even when skipped for
  // budget the call still runs (with an always-true cancel) so input
  // validation always happens and bad requests fail as bad requests, not
  // as fallbacks.
  std::vector<size_t> pending;
  {
    const bool attempt =
        remaining() >=
        tier_budget(full_cost_estimate_.load(std::memory_order_relaxed));
    std::unique_lock<std::mutex> infer_lk(infer_mu_, std::defer_lock);
    if (attempt) infer_lk.lock();
    const int64_t t0 = clock_->NowNanos();
    Result<PartialBatch> tier1 = service.RecommendBatchCancellable(
        request.histories, request.options, attempt ? past_deadline
                                                    : skip_tier);
    if (!tier1.ok()) return tier1.status();
    if (attempt) UpdateCostEstimate(&full_cost_estimate_,
                                    clock_->NowNanos() - t0);
    const PartialBatch& pb = tier1.value();
    out.deadline_hit = pb.cancelled;
    for (size_t i = 0; i < num_users; ++i) {
      if (pb.completed[i]) {
        out.responses[i].items = std::move(tier1.value().lists[i]);
        out.responses[i].tier = ServeTier::kFullModel;
      } else {
        pending.push_back(i);
      }
    }
  }

  // --- Tier 2: truncated-history retry for users tier 1 didn't finish.
  if (!pending.empty() &&
      remaining() >=
          tier_budget(fast_cost_estimate_.load(std::memory_order_relaxed))) {
    std::vector<std::vector<int64_t>> truncated;
    truncated.reserve(pending.size());
    for (size_t i : pending) {
      const std::vector<int64_t>& h = request.histories[i];
      const size_t n = std::min<size_t>(
          h.size(), static_cast<size_t>(options_.fast_path_history_len));
      truncated.emplace_back(h.end() - n, h.end());
    }
    std::lock_guard<std::mutex> infer_lk(infer_mu_);
    const int64_t t0 = clock_->NowNanos();
    Result<PartialBatch> tier2 = service.RecommendBatchCancellable(
        truncated, request.options, past_deadline);
    if (!tier2.ok()) return tier2.status();
    UpdateCostEstimate(&fast_cost_estimate_, clock_->NowNanos() - t0);
    const PartialBatch& pb = tier2.value();
    out.deadline_hit = out.deadline_hit || pb.cancelled;
    std::vector<size_t> still_pending;
    for (size_t j = 0; j < pending.size(); ++j) {
      const size_t i = pending[j];
      if (pb.completed[j]) {
        out.responses[i].items = std::move(tier2.value().lists[j]);
        out.responses[i].tier = ServeTier::kTruncatedHistory;
      } else {
        still_pending.push_back(i);
      }
    }
    pending.swap(still_pending);
  } else if (!pending.empty()) {
    out.deadline_hit = true;  // budget gone before the retry tier
  }

  // --- Tier 3: popularity fallback never needs the model or the budget.
  if (!pending.empty() && fallback_.Available()) {
    for (size_t i : pending) {
      out.responses[i].items =
          fallback_.Recommend(request.histories[i], request.options);
      out.responses[i].tier = ServeTier::kPopularityFallback;
    }
    pending.clear();
  }
  for (size_t i : pending) {
    out.responses[i].complete = false;
    out.responses[i].items.clear();
  }

  // Bookkeeping: tier counters, deadline counter, health hysteresis.
  bool all_full = pending.empty();
  for (const ServeResponse& r : out.responses) {
    if (!r.complete) continue;
    served_.fetch_add(1, std::memory_order_relaxed);
    switch (r.tier) {
      case ServeTier::kFullModel:
        full_model_served_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ServeTier::kTruncatedHistory:
        fast_path_served_.fetch_add(1, std::memory_order_relaxed);
        all_full = false;
        break;
      case ServeTier::kPopularityFallback:
        fallback_served_.fetch_add(1, std::memory_order_relaxed);
        all_full = false;
        break;
    }
  }
  out.deadline_hit = out.deadline_hit || !pending.empty();
  if (out.deadline_hit) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  UpdateHealthAfterServe(all_full && !out.deadline_hit);

  if (!pending.empty()) {
    if (!options_.allow_partial_on_deadline ||
        pending.size() == num_users) {
      return Status::DeadlineExceeded(
          "deadline of " + NanosAsMillis(budget) + " exceeded with " +
          std::to_string(pending.size()) + " of " +
          std::to_string(num_users) +
          " users unserved and no fallback available");
    }
  }
  return out;
}

}  // namespace serving
}  // namespace slime
