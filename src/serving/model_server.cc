#include "serving/model_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "compute/backend.h"
#include "io/checkpoint.h"

namespace slime {
namespace serving {
namespace {

/// Releases one admission slot on scope exit.
class AdmissionRelease {
 public:
  explicit AdmissionRelease(AdmissionController* admission)
      : admission_(admission) {}
  ~AdmissionRelease() { admission_->Release(); }
  AdmissionRelease(const AdmissionRelease&) = delete;
  AdmissionRelease& operator=(const AdmissionRelease&) = delete;

 private:
  AdmissionController* admission_;
};

std::string NanosAsMillis(int64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms",
                static_cast<double>(nanos) / kNanosPerMilli);
  return buf;
}

}  // namespace

const char* ToString(HealthState state) {
  switch (state) {
    case HealthState::kStarting:
      return "starting";
    case HealthState::kServing:
      return "serving";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDraining:
      return "draining";
  }
  return "unknown";
}

const char* ToString(ServeTier tier) {
  switch (tier) {
    case ServeTier::kFullModel:
      return "full-model";
    case ServeTier::kTruncatedHistory:
      return "truncated-history";
    case ServeTier::kPopularityFallback:
      return "popularity-fallback";
  }
  return "unknown";
}

ModelServer::ModelServer(const ModelServerOptions& options,
                         ModelFactory factory, Clock* clock, io::Env* env)
    : options_(options),
      factory_(std::move(factory)),
      clock_(clock != nullptr ? clock : Clock::Default()),
      env_(env != nullptr ? env : io::Env::Default()),
      admission_(options.admission, clock_) {
  SLIME_CHECK_GT(options_.default_deadline_nanos, 0);
  SLIME_CHECK_GE(options_.fast_path_history_len, 1);
  SLIME_CHECK_GE(options_.min_model_budget_nanos, 0);
  SLIME_CHECK_GE(options_.recovery_full_responses, 1);
  SLIME_CHECK_GE(options_.canary_top_k, 1);
  // Metrics: publish into the caller's registry when provided (which may
  // be a NoopRegistry to disable instrumentation), else into a private
  // enabled registry so stats() is always live.
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  tracer_ = options_.tracer;
  requests_ = metrics_->counter("serving.requests");
  served_ = metrics_->counter("serving.served");
  shed_ = metrics_->counter("serving.shed");
  deadline_exceeded_ = metrics_->counter("serving.deadline_exceeded");
  full_model_served_ = metrics_->counter("serving.tier.full_served");
  fast_path_served_ = metrics_->counter("serving.tier.fast_served");
  fallback_served_ = metrics_->counter("serving.tier.fallback_served");
  reloads_ = metrics_->counter("serving.reloads");
  rollbacks_ = metrics_->counter("serving.rollbacks");
  full_cost_gauge_ = metrics_->gauge("serving.cost.full_nanos");
  fast_cost_gauge_ = metrics_->gauge("serving.cost.fast_nanos");
  health_gauge_ = metrics_->gauge("serving.health");
  request_nanos_ = metrics_->histogram("serving.request_nanos");
  full_pass_nanos_ = metrics_->histogram("serving.tier.full_pass_nanos");
  fast_pass_nanos_ = metrics_->histogram("serving.tier.fast_pass_nanos");
  session_hits_ = metrics_->counter("state.session_hits");
  session_misses_ = metrics_->counter("state.session_misses");
  session_invalidations_ = metrics_->counter("state.session_invalidations");
  health_gauge_.Set(static_cast<int64_t>(state_));
  // Which kernel tier this process computes with (0 = scalar, 1 = simd), so
  // fleet dashboards can spot hosts that fell back.
  metrics_->gauge("serving.kernel_backend")
      .Set(compute::KernelBackendId(compute::ActiveKernelBackend()));
}

void ModelServer::set_canary_requests(
    std::vector<std::vector<int64_t>> canaries) {
  canaries_ = std::move(canaries);
}

void ModelServer::set_fallback(PopularityFallback fallback) {
  fallback_ = std::move(fallback);
}

std::shared_ptr<models::SequentialRecommender> ModelServer::ModelSnapshot(
    int64_t* generation) const {
  std::lock_guard<std::mutex> lk(model_mu_);
  if (generation != nullptr) *generation = generation_;
  return model_;
}

Status ModelServer::ValidateCanaries(
    models::SequentialRecommender* candidate) {
  RecommendationService service(candidate);
  RecommendOptions options;
  options.top_k = options_.canary_top_k;
  // Canary forward passes share the compute pool (and, in chaos tests, the
  // clock seam) with live traffic; take the inference lock like any other
  // forward pass so the two never interleave on the model-stateful path.
  std::lock_guard<std::mutex> lk(infer_mu_);
  for (size_t i = 0; i < canaries_.size(); ++i) {
    const std::string tag = "canary " + std::to_string(i);
    const Result<std::vector<Recommendation>> ranked =
        service.Recommend(canaries_[i], options);
    if (!ranked.ok()) {
      return Status::Aborted(tag + " failed: " + ranked.status().ToString());
    }
    if (ranked.value().empty()) {
      return Status::Aborted(tag + " returned an empty top-K");
    }
    for (const Recommendation& rec : ranked.value()) {
      if (!std::isfinite(rec.score)) {
        return Status::Aborted(tag + " produced a non-finite score for item " +
                               std::to_string(rec.item));
      }
      if (rec.item < 1 || rec.item > candidate->config().num_items) {
        return Status::Aborted(tag + " ranked out-of-catalogue item " +
                               std::to_string(rec.item));
      }
    }
  }
  return Status::OK();
}

void ModelServer::Install(
    std::unique_ptr<models::SequentialRecommender> model) {
  std::lock_guard<std::mutex> lk(model_mu_);
  model_ = std::move(model);
  ++generation_;
}

Status ModelServer::Start(
    std::unique_ptr<models::SequentialRecommender> model) {
  SLIME_CHECK(model != nullptr);
  std::lock_guard<std::mutex> reload_lk(reload_mu_);
  const Status canary = ValidateCanaries(model.get());
  if (!canary.ok()) {
    rollbacks_.Increment();
    return canary;
  }
  Install(std::move(model));
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (state_ == HealthState::kStarting) state_ = HealthState::kServing;
    health_gauge_.Set(static_cast<int64_t>(state_));
  }
  return Status::OK();
}

Status ModelServer::StartFromCheckpoint(const std::string& path) {
  if (!factory_) {
    return Status::InvalidArgument(
        "StartFromCheckpoint needs a model factory to build the target "
        "architecture");
  }
  std::unique_ptr<models::SequentialRecommender> fresh = factory_();
  SLIME_RETURN_IF_ERROR(io::LoadCheckpoint(fresh.get(), path, env_));
  return Start(std::move(fresh));
}

Status ModelServer::Reload(const std::string& checkpoint_path) {
  std::lock_guard<std::mutex> reload_lk(reload_mu_);
  if (!factory_) {
    return Status::InvalidArgument(
        "Reload needs a model factory to build the shadow model");
  }
  if (ModelSnapshot(nullptr) == nullptr) {
    return Status::InvalidArgument(
        "Reload before Start; use StartFromCheckpoint for the first model");
  }
  // Shadow load: the live model keeps serving while the candidate is
  // loaded and validated off to the side. Any failure below leaves the
  // server exactly as it was (rollback = do nothing).
  std::unique_ptr<models::SequentialRecommender> shadow = factory_();
  const Status loaded = io::LoadCheckpoint(shadow.get(), checkpoint_path, env_);
  if (!loaded.ok()) {
    rollbacks_.Increment();
    return loaded;
  }
  const Status canary = ValidateCanaries(shadow.get());
  if (!canary.ok()) {
    rollbacks_.Increment();
    return Status::Aborted("reload of " + checkpoint_path +
                           " rolled back (previous model still serving): " +
                           canary.message());
  }
  Install(std::move(shadow));
  reloads_.Increment();
  return Status::OK();
}

void ModelServer::BeginDrain() {
  std::lock_guard<std::mutex> lk(state_mu_);
  state_ = HealthState::kDraining;
  health_gauge_.Set(static_cast<int64_t>(state_));
}

HealthState ModelServer::health() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return state_;
}

ServerStats ModelServer::stats() const {
  ServerStats s;
  s.requests = requests_.value();
  s.served = served_.value();
  s.shed = shed_.value();
  s.deadline_exceeded = deadline_exceeded_.value();
  s.full_model_served = full_model_served_.value();
  s.fast_path_served = fast_path_served_.value();
  s.fallback_served = fallback_served_.value();
  s.reloads = reloads_.value();
  s.rollbacks = rollbacks_.value();
  s.full_cost_estimate_nanos = full_cost_estimate_.value();
  s.fast_cost_estimate_nanos = fast_cost_estimate_.value();
  return s;
}

int64_t ModelServer::generation() const {
  std::lock_guard<std::mutex> lk(model_mu_);
  return generation_;
}

void ModelServer::UpdateHealthAfterServe(bool all_full_tier) {
  std::lock_guard<std::mutex> lk(state_mu_);
  if (state_ == HealthState::kDraining || state_ == HealthState::kStarting) {
    return;
  }
  if (all_full_tier) {
    if (state_ == HealthState::kDegraded &&
        ++consecutive_full_ >= options_.recovery_full_responses) {
      state_ = HealthState::kServing;
      consecutive_full_ = 0;
    }
  } else {
    consecutive_full_ = 0;
    state_ = HealthState::kDegraded;
  }
  health_gauge_.Set(static_cast<int64_t>(state_));
}

void ModelServer::NoteShed() {
  shed_.Increment();
  std::lock_guard<std::mutex> lk(state_mu_);
  if (state_ == HealthState::kServing) state_ = HealthState::kDegraded;
  consecutive_full_ = 0;
  health_gauge_.Set(static_cast<int64_t>(state_));
}

Result<ServeResponse> ModelServer::Serve(const ServeRequest& request) {
  BatchServeRequest batch;
  batch.histories = {request.history};
  batch.options = request.options;
  batch.deadline_nanos = request.deadline_nanos;
  batch.cancel = request.cancel;
  Result<BatchServeResponse> result = ServeBatch(batch);
  if (!result.ok()) return result.status();
  ServeResponse response = std::move(result.value().responses[0]);
  if (!response.complete) {
    return Status::DeadlineExceeded(
        "deadline exceeded before any tier could serve the request");
  }
  return response;
}

Result<BatchServeResponse> ModelServer::ServeBatch(
    const BatchServeRequest& request) {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (state_ == HealthState::kStarting) {
      return Status::Unavailable("server is starting: no model installed");
    }
    if (state_ == HealthState::kDraining) {
      return Status::Unavailable("server is draining");
    }
  }
  // One trace per request (when a tracer is configured): admit →
  // snapshot → tier passes, with shed/downgrade decisions as annotations.
  obs::TraceBuilder trace = tracer_ != nullptr
                                ? tracer_->StartTrace("request")
                                : obs::TraceBuilder();

  const int32_t admit_span = trace.BeginSpan("admit");
  const AdmissionDecision admit = admission_.TryAdmit();
  if (!admit.admitted) {
    trace.Annotate(admit_span, "shed", admit.limit);
    trace.Finish();
    NoteShed();
    // The typed retry_after_nanos mirrors the human-readable hint so a
    // retrying client never has to parse the message.
    return Status::ResourceExhausted(
               std::string("shed by ") + admit.limit + " limit; retry after " +
               NanosAsMillis(admit.retry_after_nanos))
        .WithRetryAfter(admit.retry_after_nanos);
  }
  trace.EndSpan(admit_span);
  AdmissionRelease release(&admission_);
  requests_.Increment();
  const int64_t request_start_nanos = clock_->NowNanos();

  const int64_t budget = request.deadline_nanos > 0
                             ? request.deadline_nanos
                             : options_.default_deadline_nanos;
  const int64_t deadline = clock_->NowNanos() + budget;
  // External cancellation (hedging client, disconnect) is folded into the
  // same cooperative predicate the tiers poll, but its consequence differs:
  // a deadline degrades the request down the ladder, an external cancel
  // aborts it outright (see externally_cancelled checks below).
  const CancelFn& external = request.cancel;
  const auto externally_cancelled = [&external] {
    return external && external();
  };
  const CancelFn past_deadline = [this, deadline, &externally_cancelled] {
    return clock_->NowNanos() >= deadline || externally_cancelled();
  };
  const CancelFn skip_tier = [] { return true; };
  const auto remaining = [this, deadline] {
    return deadline - clock_->NowNanos();
  };

  BatchServeResponse out;
  const int32_t snapshot_span = trace.BeginSpan("snapshot");
  std::shared_ptr<models::SequentialRecommender> model =
      ModelSnapshot(&out.generation);
  trace.EndSpan(snapshot_span);
  SLIME_CHECK(model != nullptr);
  RecommendationService service(model.get());

  const size_t num_users = request.histories.size();
  out.responses.resize(num_users);
  for (ServeResponse& r : out.responses) r.generation = out.generation;

  // A tier is worth attempting only while the remaining budget covers its
  // observed cost (EWMA; the configured floor before any observation).
  const auto tier_budget = [this](int64_t estimate) {
    return std::max(options_.min_model_budget_nanos, estimate);
  };

  // --- Tier 1: full history through the live model. Even when skipped for
  // budget the call still runs (with an always-true cancel) so input
  // validation always happens and bad requests fail as bad requests, not
  // as fallbacks.
  std::vector<size_t> pending;
  {
    const bool attempt =
        remaining() >= tier_budget(full_cost_estimate_.value());
    obs::TraceSpan tier1_span(trace, "forward.full");
    if (!attempt) tier1_span.Annotate("skipped", "budget");
    std::unique_lock<std::mutex> infer_lk(infer_mu_, std::defer_lock);
    if (attempt) infer_lk.lock();
    const int64_t t0 = clock_->NowNanos();
    Result<PartialBatch> tier1 = service.RecommendBatchCancellable(
        request.histories, request.options, attempt ? past_deadline
                                                    : skip_tier);
    if (!tier1.ok()) return tier1.status();
    if (attempt) {
      const int64_t elapsed = clock_->NowNanos() - t0;
      full_cost_estimate_.Observe(elapsed);
      full_cost_gauge_.Set(full_cost_estimate_.value());
      full_pass_nanos_.Observe(elapsed);
    }
    const PartialBatch& pb = tier1.value();
    if (pb.cancelled) {
      tier1_span.Annotate("cancelled", externally_cancelled() ? "caller"
                                                              : "deadline");
    }
    out.deadline_hit = pb.cancelled;
    for (size_t i = 0; i < num_users; ++i) {
      if (pb.completed[i]) {
        out.responses[i].items = std::move(tier1.value().lists[i]);
        out.responses[i].tier = ServeTier::kFullModel;
      } else {
        pending.push_back(i);
      }
    }
  }

  // The caller abandoned the attempt (hedged elsewhere, disconnected):
  // stop outright instead of descending the ladder — no tier below can
  // produce an answer anyone still wants.
  if (externally_cancelled()) {
    trace.Finish();
    return Status::Aborted("request cancelled by caller");
  }

  // --- Tier 2: truncated-history retry for users tier 1 didn't finish.
  if (!pending.empty() &&
      remaining() >= tier_budget(fast_cost_estimate_.value())) {
    obs::TraceSpan tier2_span(trace, "forward.truncated");
    tier2_span.Annotate("downgraded", std::to_string(pending.size()) +
                                          " users");
    std::vector<std::vector<int64_t>> truncated;
    truncated.reserve(pending.size());
    for (size_t i : pending) {
      const std::vector<int64_t>& h = request.histories[i];
      const size_t n = std::min<size_t>(
          h.size(), static_cast<size_t>(options_.fast_path_history_len));
      truncated.emplace_back(h.end() - n, h.end());
    }
    std::lock_guard<std::mutex> infer_lk(infer_mu_);
    const int64_t t0 = clock_->NowNanos();
    Result<PartialBatch> tier2 = service.RecommendBatchCancellable(
        truncated, request.options, past_deadline);
    if (!tier2.ok()) return tier2.status();
    {
      const int64_t elapsed = clock_->NowNanos() - t0;
      fast_cost_estimate_.Observe(elapsed);
      fast_cost_gauge_.Set(fast_cost_estimate_.value());
      fast_pass_nanos_.Observe(elapsed);
    }
    const PartialBatch& pb = tier2.value();
    out.deadline_hit = out.deadline_hit || pb.cancelled;
    std::vector<size_t> still_pending;
    for (size_t j = 0; j < pending.size(); ++j) {
      const size_t i = pending[j];
      if (pb.completed[j]) {
        out.responses[i].items = std::move(tier2.value().lists[j]);
        out.responses[i].tier = ServeTier::kTruncatedHistory;
      } else {
        still_pending.push_back(i);
      }
    }
    pending.swap(still_pending);
  } else if (!pending.empty()) {
    out.deadline_hit = true;  // budget gone before the retry tier
  }
  if (externally_cancelled()) {
    trace.Finish();
    return Status::Aborted("request cancelled by caller");
  }

  // --- Tier 3: popularity fallback never needs the model or the budget.
  if (!pending.empty() && fallback_.Available()) {
    obs::TraceSpan fb_span(trace, "fallback");
    fb_span.Annotate("downgraded", std::to_string(pending.size()) +
                                       " users");
    for (size_t i : pending) {
      out.responses[i].items =
          fallback_.Recommend(request.histories[i], request.options);
      out.responses[i].tier = ServeTier::kPopularityFallback;
    }
    pending.clear();
  }
  for (size_t i : pending) {
    out.responses[i].complete = false;
    out.responses[i].items.clear();
  }

  // Bookkeeping: tier counters, deadline counter, health hysteresis.
  bool all_full = pending.empty();
  for (const ServeResponse& r : out.responses) {
    if (!r.complete) continue;
    served_.Increment();
    switch (r.tier) {
      case ServeTier::kFullModel:
        full_model_served_.Increment();
        break;
      case ServeTier::kTruncatedHistory:
        fast_path_served_.Increment();
        all_full = false;
        break;
      case ServeTier::kPopularityFallback:
        fallback_served_.Increment();
        all_full = false;
        break;
    }
  }
  out.deadline_hit = out.deadline_hit || !pending.empty();
  if (out.deadline_hit) {
    deadline_exceeded_.Increment();
  }
  UpdateHealthAfterServe(all_full && !out.deadline_hit);
  request_nanos_.Observe(clock_->NowNanos() - request_start_nanos);
  trace.Finish();

  if (!pending.empty()) {
    if (!options_.allow_partial_on_deadline ||
        pending.size() == num_users) {
      return Status::DeadlineExceeded(
          "deadline of " + NanosAsMillis(budget) + " exceeded with " +
          std::to_string(pending.size()) + " of " +
          std::to_string(num_users) +
          " users unserved and no fallback available");
    }
  }
  return out;
}

void ModelServer::AttachStateStore(
    std::unique_ptr<state::StateStore> store) {
  std::lock_guard<std::mutex> lock(session_mu_);
  state_store_ = std::move(store);
  session_cache_.clear();
}

Result<state::AppendAck> ModelServer::AppendEvent(
    uint64_t user_id, const std::vector<int64_t>& items) {
  if (state_store_ == nullptr) {
    return Status::InvalidArgument(
        "no state store attached (boot with a state dir)");
  }
  Result<state::AppendAck> ack = state_store_->Append(user_id, items);
  if (!ack.ok()) return ack;
  // The user's history changed: whatever was cached for them is stale.
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    if (session_cache_.erase(user_id) > 0) {
      session_invalidations_.Increment();
    }
  }
  return ack;
}

Result<ServeResponse> ModelServer::ServeSession(uint64_t user_id,
                                                const ServeRequest& request) {
  if (state_store_ == nullptr) {
    return Status::InvalidArgument(
        "no state store attached (boot with a state dir)");
  }
  // Snapshot the version *before* reading the history: an append racing in
  // between makes the cached entry conservatively stale (extra miss), never
  // wrongly fresh.
  const int64_t version = state_store_->UserVersion(user_id);
  const int64_t live_generation = generation();
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    auto it = session_cache_.find(user_id);
    if (it != session_cache_.end() && it->second.version == version &&
        it->second.generation == live_generation &&
        it->second.top_k == request.options.top_k &&
        it->second.exclude_seen == request.options.exclude_seen &&
        request.options.exclude_items.empty()) {
      session_hits_.Increment();
      return it->second.response;
    }
  }
  std::vector<int64_t> history = state_store_->History(user_id);
  if (history.empty()) {
    return Status::NotFound("no state for user " + std::to_string(user_id) +
                            " (append events first)");
  }
  session_misses_.Increment();
  ServeRequest live = request;
  live.history = std::move(history);
  Result<ServeResponse> response = Serve(live);
  if (!response.ok()) return response;
  if (request.options.exclude_items.empty()) {
    SessionCacheEntry entry;
    entry.version = version;
    entry.generation = response.value().generation;
    entry.top_k = request.options.top_k;
    entry.exclude_seen = request.options.exclude_seen;
    entry.response = response.value();
    std::lock_guard<std::mutex> lock(session_mu_);
    session_cache_[user_id] = std::move(entry);
  }
  return response;
}

Result<state::UserDigest> ModelServer::UserStateDigest(
    uint64_t user_id) const {
  if (state_store_ == nullptr) {
    return Status::InvalidArgument(
        "no state store attached (boot with a state dir)");
  }
  return state_store_->Digest(user_id);
}

Status ModelServer::ReloadStateFromDisk() {
  if (state_store_ == nullptr) return Status::OK();
  SLIME_RETURN_IF_ERROR(state_store_->Reload());
  std::lock_guard<std::mutex> lock(session_mu_);
  session_cache_.clear();
  return Status::OK();
}

}  // namespace serving
}  // namespace slime
