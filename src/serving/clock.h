#ifndef SLIME4REC_SERVING_CLOCK_H_
#define SLIME4REC_SERVING_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace slime {
namespace serving {

/// Time seam for the serving layer, mirroring io::Env for the filesystem:
/// production code uses Clock::Default() (the steady clock), tests
/// substitute a FakeClock so deadline pressure, token-bucket refill and
/// retry-after arithmetic are driven deterministically instead of by wall
/// time. All times are nanoseconds on an arbitrary monotonic epoch; only
/// differences are meaningful.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic now, in nanoseconds.
  virtual int64_t NowNanos() = 0;

  /// Blocks until NowNanos() has advanced by at least `nanos` (no-op for
  /// nanos <= 0). Retry back-off and hedge delays go through this seam so
  /// client-side waiting is as injectable as time reading: the default
  /// clock really sleeps, a FakeClock advances itself instead, making
  /// every backoff deterministic and instantaneous in tests.
  virtual void SleepFor(int64_t nanos);

  /// The process-wide default clock (std::chrono::steady_clock).
  static Clock* Default();
};

/// A manually-advanced clock. NowNanos only moves when a test calls
/// Advance/Set, so any code path gated on time is exactly reproducible.
/// Thread-safe: chaos tests advance it from a model seam while requests
/// read it from pool threads.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() override { return now_.load(std::memory_order_acquire); }

  /// "Sleeping" on fake time is just advancing it.
  void SleepFor(int64_t nanos) override {
    if (nanos > 0) Advance(nanos);
  }

  void Advance(int64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_acq_rel);
  }
  void Set(int64_t nanos) { now_.store(nanos, std::memory_order_release); }

 private:
  std::atomic<int64_t> now_;
};

/// Readable literals for deadline/rate configuration.
inline constexpr int64_t kNanosPerMicro = 1000;
inline constexpr int64_t kNanosPerMilli = 1000 * 1000;
inline constexpr int64_t kNanosPerSecond = 1000 * 1000 * 1000;

}  // namespace serving
}  // namespace slime

#endif  // SLIME4REC_SERVING_CLOCK_H_
