#ifndef SLIME4REC_SERVING_FALLBACK_H_
#define SLIME4REC_SERVING_FALLBACK_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "serving/recommendation_service.h"

namespace slime {
namespace serving {

/// Last rung of the degradation ladder: a model-free ranker that orders
/// items by training-data interaction count. O(num_items) per request, no
/// tensor work, no dependence on the (possibly reloading or deadline-blown)
/// model — it can always answer, just not personally. Ties rank lower item
/// id first, matching TopKFromScores, so fallback responses are as
/// deterministic as model responses.
class PopularityFallback {
 public:
  /// An empty fallback; Available() is false and Recommend must not be
  /// called. Lets a ModelServer be configured without one.
  PopularityFallback() = default;

  /// Builds from per-item interaction counts; `counts[i]` is the count for
  /// item id i (index 0, the padding pseudo-item, is ignored).
  static PopularityFallback FromCounts(const std::vector<int64_t>& counts);

  /// Builds from the training regions of a split (the same counts MostPop
  /// uses), so fallback rankings never leak validation/test items.
  static PopularityFallback FromSplit(const data::SplitDataset& split);

  bool Available() const { return !scores_.empty(); }
  /// Catalogue size this fallback was built for (0 when unavailable).
  int64_t num_items() const {
    return scores_.empty() ? 0 : static_cast<int64_t>(scores_.size()) - 1;
  }

  /// Ranked top-K by popularity, honouring exclude_seen / exclude_items
  /// exactly like the model path. History entries outside the catalogue are
  /// ignored rather than rejected: the fallback is the tier that must not
  /// fail.
  std::vector<Recommendation> Recommend(const std::vector<int64_t>& history,
                                        const RecommendOptions& options) const;

 private:
  std::vector<float> scores_;  // (num_items + 1), index 0 unused
};

}  // namespace serving
}  // namespace slime

#endif  // SLIME4REC_SERVING_FALLBACK_H_
