#include "serving/recommendation_service.h"

#include <algorithm>
#include <atomic>
#include <string>

#include "common/macros.h"
#include "compute/thread_pool.h"
#include "data/batcher.h"

namespace slime {
namespace serving {

RecommendationService::RecommendationService(
    models::SequentialRecommender* model)
    : model_(model) {
  SLIME_CHECK(model != nullptr);
}

std::vector<Recommendation> TopKFromScores(
    const float* row, int64_t num_items, int64_t k,
    const std::vector<bool>& excluded) {
  SLIME_CHECK_EQ(static_cast<int64_t>(excluded.size()), num_items + 1);
  std::vector<Recommendation> candidates;
  candidates.reserve(num_items);
  for (int64_t item = 1; item <= num_items; ++item) {
    if (excluded[item]) continue;
    candidates.push_back({item, row[item]});
  }
  const int64_t take = std::min<int64_t>(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end(),
                    [](const Recommendation& a, const Recommendation& b) {
                      return a.score > b.score ||
                             (a.score == b.score && a.item < b.item);
                    });
  candidates.resize(take);
  return candidates;
}

Status RecommendationService::Validate(
    const std::vector<std::vector<int64_t>>& histories,
    const RecommendOptions& options) const {
  if (options.top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive, got " +
                                   std::to_string(options.top_k));
  }
  const int64_t num_items = model_->config().num_items;
  for (size_t i = 0; i < histories.size(); ++i) {
    if (histories[i].empty()) {
      return Status::InvalidArgument("history " + std::to_string(i) +
                                     " is empty; cannot recommend without "
                                     "at least one interaction");
    }
    for (int64_t item : histories[i]) {
      if (item < 1 || item > num_items) {
        return Status::InvalidArgument(
            "history " + std::to_string(i) + " contains item id " +
            std::to_string(item) + " outside the catalogue [1, " +
            std::to_string(num_items) + "]");
      }
    }
  }
  return Status::OK();
}

Result<std::vector<Recommendation>> RecommendationService::Recommend(
    const std::vector<int64_t>& history,
    const RecommendOptions& options) const {
  Result<std::vector<std::vector<Recommendation>>> batch =
      RecommendBatch({history}, options);
  if (!batch.ok()) return batch.status();
  return std::move(batch.value()[0]);
}

Result<std::vector<std::vector<Recommendation>>>
RecommendationService::RecommendBatch(
    const std::vector<std::vector<int64_t>>& histories,
    const RecommendOptions& options) const {
  Result<PartialBatch> partial =
      RecommendBatchCancellable(histories, options, nullptr);
  if (!partial.ok()) return partial.status();
  return std::move(partial.value().lists);
}

Result<PartialBatch> RecommendationService::RecommendBatchCancellable(
    const std::vector<std::vector<int64_t>>& histories,
    const RecommendOptions& options, const CancelFn& cancelled) const {
  SLIME_RETURN_IF_ERROR(Validate(histories, options));
  PartialBatch out;
  if (histories.empty()) return out;  // an empty batch is a no-op
  out.lists.resize(histories.size());
  out.completed.assign(histories.size(), 0);

  const int64_t n = model_->config().max_len;
  const int64_t num_items = model_->config().num_items;

  data::Batch batch;
  batch.size = static_cast<int64_t>(histories.size());
  batch.max_len = n;
  for (const auto& history : histories) {
    batch.user_ids.push_back(0);   // models that use user ids need real ones;
    batch.targets.push_back(1);    // placeholder, unused by ScoreAll
    batch.raw_prefixes.push_back(history);
    const std::vector<int64_t> padded = data::PadTruncate(history, n);
    batch.input_ids.insert(batch.input_ids.end(), padded.begin(),
                           padded.end());
  }

  // The forward pass is the expensive step; skip it entirely when the
  // budget is already gone. (Cancellation cannot fire *inside* ScoreAll —
  // the model has no cancellation seam — so a single slow forward pass
  // overruns by up to one model latency. The ModelServer accounts for that
  // by checking the budget before attempting each ladder tier.)
  if (cancelled && cancelled()) {
    out.cancelled = true;
    return out;
  }

  // Exclusive-use scope: catches a concurrent Trainer::Fit (or a second
  // un-serialised service call) on the same model while we run inference.
  models::ModelUseGuard use(model_, "serving");
  const bool was_training = model_->training();
  model_->SetTraining(false);
  const Tensor scores = model_->ScoreAll(batch);
  model_->SetTraining(was_training);
  SLIME_CHECK_EQ(scores.size(0), batch.size);
  SLIME_CHECK_EQ(scores.size(1), num_items + 1);

  // Fan the per-user top-k extraction across the pool: each user writes one
  // preallocated slot, so the result order (and every ranking) is identical
  // at any thread count. The cancel predicate is re-checked per user; with
  // a FakeClock it only changes between phases, so either every user or no
  // user is skipped and the outcome stays thread-count-independent. Under a
  // real clock, skipping is best-effort (per-user, not per-chunk, so the
  // completed set is a prefix-free union of chunks — callers treat any
  // uncompleted slot as "degrade this user").
  std::atomic<bool> saw_cancel{false};
  compute::ParallelFor(
      0, static_cast<int64_t>(histories.size()),
      compute::GrainForWork(4 * num_items), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          if (cancelled && cancelled()) {
            saw_cancel.store(true, std::memory_order_relaxed);
            continue;
          }
          std::vector<bool> excluded(num_items + 1, false);
          if (options.exclude_seen) {
            for (int64_t item : histories[i]) excluded[item] = true;
          }
          for (int64_t item : options.exclude_items) {
            if (item >= 1 && item <= num_items) excluded[item] = true;
          }
          out.lists[i] = TopKFromScores(scores.data() + i * (num_items + 1),
                                        num_items, options.top_k, excluded);
          out.completed[i] = 1;
        }
      });
  out.cancelled = saw_cancel.load(std::memory_order_relaxed);
  return out;
}

}  // namespace serving
}  // namespace slime
