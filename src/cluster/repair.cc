#include "cluster/repair.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace slime {
namespace cluster {

const char* ToString(HintOverflowPolicy policy) {
  switch (policy) {
    case HintOverflowPolicy::kDropNewest:
      return "drop_newest";
    case HintOverflowPolicy::kDropOldest:
      return "drop_oldest";
  }
  return "unknown";
}

bool HintQueue::Enqueue(int64_t shard, HandoffHint hint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_hints_per_shard <= 0) {
    ++dropped_;
    return false;
  }
  std::deque<HandoffHint>& q = queues_[shard];
  if (static_cast<int64_t>(q.size()) >= options_.max_hints_per_shard) {
    if (options_.overflow == HintOverflowPolicy::kDropNewest) {
      ++dropped_;
      return false;
    }
    q.pop_front();
    ++dropped_;
    --total_pending_;
  }
  q.push_back(std::move(hint));
  ++total_pending_;
  return true;
}

std::vector<HandoffHint> HintQueue::Drain(int64_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(shard);
  if (it == queues_.end()) return {};
  std::vector<HandoffHint> out(it->second.begin(), it->second.end());
  total_pending_ -= static_cast<int64_t>(out.size());
  queues_.erase(it);
  return out;
}

int64_t HintQueue::pending(int64_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(shard);
  return it == queues_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

int64_t HintQueue::total_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pending_;
}

int64_t HintQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void RepairStats::Add(const RepairStats& o) {
  users_scanned += o.users_scanned;
  users_diverged += o.users_diverged;
  users_repaired += o.users_repaired;
  items_transferred += o.items_transferred;
  conflicts += o.conflicts;
}

Status RepairUser(state::StateStore* a, state::StateStore* b,
                  uint64_t user_id, RepairStats* stats) {
  SLIME_CHECK(a != nullptr && b != nullptr && stats != nullptr);
  ++stats->users_scanned;
  const state::UserDigest da = a->Digest(user_id);
  const state::UserDigest db = b->Digest(user_id);
  if (da.items_total == db.items_total && da.crc == db.crc) {
    return Status::OK();  // converged (or both unknown)
  }
  ++stats->users_diverged;
  if (da.items_total == db.items_total) {
    // Same stream length, different bytes: these histories genuinely
    // forked, and no suffix transfer can reconcile them without rewriting
    // one side's acked past — which repair must never do.
    ++stats->conflicts;
    return Status::OK();
  }
  state::StateStore* ahead = da.items_total > db.items_total ? a : b;
  state::StateStore* behind = ahead == a ? b : a;
  const state::UserDigest dahead = ahead == a ? da : db;
  const state::UserDigest dbehind = ahead == a ? db : da;

  const uint64_t need = dahead.items_total - dbehind.items_total;
  const std::vector<int64_t> suffix = ahead->TailItems(user_id, need);
  if (static_cast<uint64_t>(suffix.size()) < need) {
    // The ahead replica already trimmed past the divergence point; the
    // missing events are gone from its retained window and cannot be
    // transferred without fabrication.
    ++stats->conflicts;
    return Status::OK();
  }
  // Pre-verify the splice: the suffix must extend the behind stream to
  // exactly the ahead digest, or the streams diverged earlier than the
  // length gap suggests.
  if (state::ExtendItemDigest(dbehind.crc, suffix.data(), suffix.size()) !=
      dahead.crc) {
    ++stats->conflicts;
    return Status::OK();
  }
  Result<state::AppendAck> ack = behind->Append(user_id, suffix);
  if (!ack.ok()) return ack.status();
  ++stats->users_repaired;
  stats->items_transferred += static_cast<int64_t>(suffix.size());
  return Status::OK();
}

Status SyncStores(state::StateStore* a, state::StateStore* b,
                  const std::function<bool(uint64_t user_id)>& filter,
                  RepairStats* stats) {
  SLIME_CHECK(a != nullptr && b != nullptr && stats != nullptr);
  // Union of both stores' users, ascending: the pass order (and so the
  // repaired stores' bytes) is a pure function of the two states.
  const std::vector<state::UserDigest> da = a->EnumerateDigests(filter);
  const std::vector<state::UserDigest> db = b->EnumerateDigests(filter);
  std::vector<uint64_t> users;
  users.reserve(da.size() + db.size());
  for (const state::UserDigest& d : da) users.push_back(d.user_id);
  for (const state::UserDigest& d : db) users.push_back(d.user_id);
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  for (uint64_t user : users) {
    SLIME_RETURN_IF_ERROR(RepairUser(a, b, user, stats));
  }
  return Status::OK();
}

}  // namespace cluster
}  // namespace slime
