#ifndef SLIME4REC_CLUSTER_REPAIR_H_
#define SLIME4REC_CLUSTER_REPAIR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "state/state_store.h"

namespace slime {
namespace cluster {

/// Anti-entropy building blocks for the replicated state tier
/// (docs/STATE.md "Anti-entropy"): a bounded deterministic hinted-handoff
/// queue, and the digest-diff / suffix-transfer repair core shared by the
/// cluster repair sweep, serve-time read-repair, and the offline CLI
/// `repair` command.
///
/// The one rule everything here obeys: **repair never fabricates**. A
/// behind replica is only ever extended by a suffix whose digest provably
/// reconnects it to the ahead replica's stream, through the normal durable
/// Append path; anything else is a typed, counted conflict left untouched
/// for the operator.

/// What to drop when a dead shard's hint queue is full.
enum class HintOverflowPolicy {
  /// Refuse the incoming hint, keep the oldest backlog. The write itself
  /// is still durable on the replicas that acked it — dropping a hint only
  /// loses the fast replay shortcut; the repair sweep remains the backstop.
  kDropNewest,
  /// Evict the oldest queued hint to admit the newest.
  kDropOldest,
};
const char* ToString(HintOverflowPolicy policy);

struct HandoffOptions {
  /// Per-dead-shard cap on queued hints; <= 0 disables queueing (every
  /// would-be hint is an accounted drop).
  int64_t max_hints_per_shard = 1024;
  HintOverflowPolicy overflow = HintOverflowPolicy::kDropOldest;
};

/// One write a dead replica missed: enough to re-issue it verbatim on
/// restore. `origin_seq` is a cluster-wide monotone enqueue index, so
/// replay order (and therefore the replayed store's bytes) is a pure
/// function of the append order that produced the hints.
struct HandoffHint {
  uint64_t user_key = 0;
  std::vector<int64_t> items;
  uint64_t origin_seq = 0;
};

/// Bounded per-shard hint queues with exact drop accounting. Thread-safe;
/// FIFO per shard in origin_seq order.
class HintQueue {
 public:
  explicit HintQueue(const HandoffOptions& options) : options_(options) {}

  /// Queues `hint` for `shard`. Returns false when the overflow policy
  /// dropped the *incoming* hint (kDropNewest at capacity, or queueing
  /// disabled); a kDropOldest eviction still returns true. Every dropped
  /// hint — incoming or evicted — is counted in dropped().
  bool Enqueue(int64_t shard, HandoffHint hint);
  /// Removes and returns `shard`'s backlog in enqueue order.
  std::vector<HandoffHint> Drain(int64_t shard);

  int64_t pending(int64_t shard) const;
  int64_t total_pending() const;
  int64_t dropped() const;

 private:
  const HandoffOptions options_;
  mutable std::mutex mu_;
  std::map<int64_t, std::deque<HandoffHint>> queues_;
  int64_t total_pending_ = 0;
  int64_t dropped_ = 0;
};

/// Aggregate outcome of a repair pass (one user, one segment, or a whole
/// sweep — the fields add).
struct RepairStats {
  int64_t users_scanned = 0;      // digest pairs compared
  int64_t users_diverged = 0;     // pairs whose digests disagreed
  int64_t users_repaired = 0;     // healed to digest equality
  int64_t items_transferred = 0;  // suffix items appended, total
  /// Diverged but unrepairable by suffix transfer: equal-length streams
  /// with different digests, an ahead replica whose retained history was
  /// trimmed deeper than the gap, or a suffix whose digest does not
  /// reconnect the streams. Counted and left untouched.
  int64_t conflicts = 0;

  void Add(const RepairStats& o);
};

/// Digest-compares one user across two stores and, when exactly one side
/// is behind, appends the missing suffix to it through the normal durable
/// Append path (pre-verified: ExtendItemDigest(behind.crc, suffix) must
/// equal ahead.crc, so a repaired history is an exact suffix extension or
/// nothing happens). Divergence outcomes land in `stats`; the returned
/// Status is non-OK only for real append/IO failures.
Status RepairUser(state::StateStore* a, state::StateStore* b,
                  uint64_t user_id, RepairStats* stats);

/// Runs RepairUser over every user either store knows (restricted to the
/// users `filter` accepts when non-null), in ascending user-id order.
Status SyncStores(state::StateStore* a, state::StateStore* b,
                  const std::function<bool(uint64_t user_id)>& filter,
                  RepairStats* stats);

}  // namespace cluster
}  // namespace slime

#endif  // SLIME4REC_CLUSTER_REPAIR_H_
