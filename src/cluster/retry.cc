#include "cluster/retry.h"

#include <algorithm>
#include <cmath>

namespace slime {
namespace cluster {

RetryPolicy::RetryPolicy(const RetryOptions& options) : options_(options) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.initial_backoff_nanos < 0) options_.initial_backoff_nanos = 0;
  if (options_.backoff_multiplier < 1.0) options_.backoff_multiplier = 1.0;
  if (options_.max_backoff_nanos < options_.initial_backoff_nanos) {
    options_.max_backoff_nanos = options_.initial_backoff_nanos;
  }
  options_.jitter = std::min(std::max(options_.jitter, 0.0), 1.0);
  if (options_.min_attempt_budget_nanos < 0) {
    options_.min_attempt_budget_nanos = 0;
  }
}

int64_t RetryPolicy::BackoffNanos(int64_t attempt, Rng* rng) const {
  double backoff = static_cast<double>(options_.initial_backoff_nanos);
  for (int64_t i = 0; i < attempt; ++i) {
    backoff *= options_.backoff_multiplier;
    if (backoff >= static_cast<double>(options_.max_backoff_nanos)) break;
  }
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff_nanos));
  if (options_.jitter > 0.0 && rng != nullptr) {
    // One draw per decision keeps the jitter stream aligned with the
    // attempt sequence, so a same-seed rerun backs off identically.
    const double factor =
        1.0 + options_.jitter * (2.0 * rng->UniformDouble() - 1.0);
    backoff *= factor;
  }
  return static_cast<int64_t>(backoff);
}

RetryDecision RetryPolicy::Next(int64_t attempt, const Status& failure,
                                bool same_shard,
                                int64_t remaining_budget_nanos,
                                Rng* rng) const {
  RetryDecision decision;
  const Status::Code code = failure.code();
  const bool retryable = code == Status::Code::kUnavailable ||
                         code == Status::Code::kResourceExhausted;
  if (!retryable) {
    decision.reason = "permanent";
    return decision;
  }
  if (attempt + 1 >= options_.max_attempts) {
    decision.reason = "attempts";
    return decision;
  }

  int64_t wait = 0;
  const char* reason = "backoff";
  if (code == Status::Code::kUnavailable && !same_shard) {
    // The shard is unreachable and a replica is next in line: failing over
    // immediately costs the replica nothing and the user no budget.
    wait = 0;
    reason = "failover";
  } else {
    wait = BackoffNanos(attempt, rng);
    if (same_shard && failure.retry_after_nanos() > wait) {
      // The server told us exactly when re-admission can succeed; knocking
      // earlier is a guaranteed shed.
      wait = failure.retry_after_nanos();
    }
  }

  if (wait + options_.min_attempt_budget_nanos > remaining_budget_nanos) {
    decision.reason = "budget";
    return decision;
  }
  decision.retry = true;
  decision.wait_nanos = wait;
  decision.reason = reason;
  return decision;
}

HedgeDelayTracker::HedgeDelayTracker(const HedgeOptions& options)
    : options_(options) {
  if (options_.window < 1) options_.window = 1;
  if (options_.min_samples < 1) options_.min_samples = 1;
  options_.percentile = std::min(std::max(options_.percentile, 0.0), 1.0);
  if (options_.min_delay_nanos < 0) options_.min_delay_nanos = 0;
  window_.reserve(static_cast<size_t>(options_.window));
}

void HedgeDelayTracker::Observe(int64_t latency_nanos) {
  if (latency_nanos < 0) latency_nanos = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int64_t>(window_.size()) < options_.window) {
    window_.push_back(latency_nanos);
  } else {
    window_[next_] = latency_nanos;
  }
  next_ = (next_ + 1) % static_cast<size_t>(options_.window);
  ++seen_;
}

int64_t HedgeDelayTracker::DelayNanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t delay = options_.initial_delay_nanos;
  if (seen_ >= options_.min_samples && !window_.empty()) {
    std::vector<int64_t> sorted = window_;
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank percentile, matching the observability histograms.
    size_t rank = static_cast<size_t>(
        std::ceil(options_.percentile * static_cast<double>(sorted.size())));
    if (rank > 0) --rank;
    if (rank >= sorted.size()) rank = sorted.size() - 1;
    delay = sorted[rank];
  }
  return std::max(delay, options_.min_delay_nanos);
}

int64_t HedgeDelayTracker::samples_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

}  // namespace cluster
}  // namespace slime
