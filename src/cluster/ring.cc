#include "cluster/ring.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace slime {
namespace cluster {

uint64_t ShardRing::Mix(uint64_t x) {
  // splitmix64 finalizer: full-avalanche, invertible, dependency-free.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ShardRing::ShardRing(const RingOptions& options)
    : num_shards_(options.num_shards > 0 ? options.num_shards : 1),
      replication_(options.replication > 0 ? options.replication : 1) {
  if (replication_ > num_shards_) replication_ = num_shards_;
  const int64_t vnodes =
      options.vnodes_per_shard > 0 ? options.vnodes_per_shard : 1;

  // Place every vnode. Ties in the 64-bit hash are possible in principle;
  // sorting (hash, shard, vnode) keeps even that case deterministic.
  struct Point {
    uint64_t hash;
    int64_t shard;
    int64_t vnode;
  };
  std::vector<Point> placed;
  placed.reserve(static_cast<size_t>(num_shards_ * vnodes));
  for (int64_t shard = 0; shard < num_shards_; ++shard) {
    for (int64_t vnode = 0; vnode < vnodes; ++vnode) {
      const uint64_t h =
          Mix(options.seed ^ Mix(static_cast<uint64_t>(shard) * 0x10001ull +
                                 static_cast<uint64_t>(vnode)));
      placed.push_back(Point{h, shard, vnode});
    }
  }
  std::sort(placed.begin(), placed.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.vnode < b.vnode;
  });

  points_.reserve(placed.size());
  for (const Point& p : placed) points_.push_back(p.hash);

  // Replica set of segment i: walk clockwise from its endpoint collecting
  // distinct shards, primary first.
  replicas_.resize(placed.size());
  for (size_t i = 0; i < placed.size(); ++i) {
    std::vector<int64_t>& set = replicas_[i];
    set.reserve(static_cast<size_t>(replication_));
    for (size_t step = 0;
         step < placed.size() &&
         static_cast<int64_t>(set.size()) < replication_;
         ++step) {
      const int64_t shard = placed[(i + step) % placed.size()].shard;
      if (std::find(set.begin(), set.end(), shard) == set.end()) {
        set.push_back(shard);
      }
    }
  }
}

int64_t ShardRing::SegmentOf(uint64_t user_key) const {
  const uint64_t h = Mix(user_key);
  // The owning segment is the first ring point at or after the key's
  // position (clockwise successor), wrapping to point 0 past the end.
  const auto it = std::lower_bound(points_.begin(), points_.end(), h);
  if (it == points_.end()) return 0;
  return static_cast<int64_t>(it - points_.begin());
}

const std::vector<int64_t>& ShardRing::Replicas(int64_t segment) const {
  assert(segment >= 0 && segment < num_segments());
  return replicas_[static_cast<size_t>(segment)];
}

const std::vector<int64_t>& ShardRing::Route(uint64_t user_key) const {
  return Replicas(SegmentOf(user_key));
}

std::vector<int64_t> ShardRing::SegmentsOfShard(int64_t shard) const {
  std::vector<int64_t> out;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const std::vector<int64_t>& set = replicas_[i];
    if (std::find(set.begin(), set.end(), shard) != set.end()) {
      out.push_back(static_cast<int64_t>(i));
    }
  }
  return out;
}

bool ShardRing::SharesSegment(int64_t a, int64_t b) const {
  if (a == b) return true;
  for (const std::vector<int64_t>& set : replicas_) {
    const bool has_a = std::find(set.begin(), set.end(), a) != set.end();
    if (has_a && std::find(set.begin(), set.end(), b) != set.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace cluster
}  // namespace slime
