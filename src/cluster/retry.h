#ifndef SLIME4REC_CLUSTER_RETRY_H_
#define SLIME4REC_CLUSTER_RETRY_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "serving/clock.h"

namespace slime {
namespace cluster {

/// Client-side retry configuration (the gRPC service-config analogue).
struct RetryOptions {
  /// Total attempts per request, including the first. >= 1.
  int64_t max_attempts = 3;
  /// Backoff before retry k (1-based) starts from this and multiplies.
  int64_t initial_backoff_nanos = 2 * serving::kNanosPerMilli;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_nanos = 64 * serving::kNanosPerMilli;
  /// Backoff is scaled by a seeded factor in [1-jitter, 1+jitter] to
  /// decorrelate clients that failed together. 0 disables jitter.
  double jitter = 0.25;
  /// A retry is only issued if, after the backoff wait, at least this much
  /// of the request's deadline budget would remain for the attempt itself.
  /// This is the retry *budget*: waiting is paid for out of the deadline,
  /// and a retry that could not possibly finish is not worth admitting.
  int64_t min_attempt_budget_nanos = 2 * serving::kNanosPerMilli;
};

/// What the policy decided after a failed attempt.
struct RetryDecision {
  bool retry = false;
  /// How long the client must wait before the next attempt (already the
  /// max of jittered backoff and the server's retry-after hint).
  int64_t wait_nanos = 0;
  /// Why not / why: "permanent", "attempts", "budget", "backoff",
  /// "failover". Static strings, safe to log.
  const char* reason = "";
};

/// Deterministic retry policy: pure function of (options, failed attempt
/// index, failure status, remaining deadline budget, rng stream).
///
/// Semantics:
///  - Only kUnavailable and kResourceExhausted are retryable; everything
///    else (bad request, internal corruption, caller cancellation) is a
///    permanent failure that retrying cannot fix.
///  - kUnavailable with a *different* shard available next is an immediate
///    failover: the failed connection tells us nothing about the replica,
///    so no backoff is charged ("failover").
///  - Otherwise the wait is exponential backoff with seeded jitter, raised
///    to the server's typed retry_after_nanos hint when one is attached
///    (Status::WithRetryAfter, produced by admission control): the server
///    knows exactly when its token bucket refills, and re-knocking earlier
///    is guaranteed to be shed again.
///  - The wait is spent from the same deadline budget as the attempts; if
///    wait + min_attempt_budget exceeds what is left, the retry is refused
///    ("budget") and the last failure stands.
class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryOptions& options);

  /// Decide what to do after 0-based attempt `attempt` failed with
  /// `failure`. `same_shard` is true when the next candidate is the shard
  /// that just failed; `remaining_budget_nanos` is deadline - now. `rng`
  /// supplies the jitter stream (one draw per backoff decision).
  RetryDecision Next(int64_t attempt, const Status& failure, bool same_shard,
                     int64_t remaining_budget_nanos, Rng* rng) const;

  /// The jittered exponential backoff for 0-based failed attempt index
  /// `attempt`, before hints and budget are applied.
  int64_t BackoffNanos(int64_t attempt, Rng* rng) const;

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
};

/// Hedging configuration (the "defer to a replica if the primary is slow"
/// tail-tolerance scheme from The Tail at Scale).
struct HedgeOptions {
  bool enabled = true;
  /// The hedge fires when an attempt outlives this percentile of recently
  /// observed attempt latencies.
  double percentile = 0.95;
  /// How many recent latencies inform the percentile.
  int64_t window = 64;
  /// Samples required before the percentile is trusted; until then the
  /// initial delay is used.
  int64_t min_samples = 8;
  int64_t initial_delay_nanos = 20 * serving::kNanosPerMilli;
  /// Floor so a fast-but-noisy window cannot hedge everything.
  int64_t min_delay_nanos = serving::kNanosPerMilli;
};

/// Bounded sliding window of attempt latencies that yields the hedge
/// delay as a percentile. Deterministic given the observation sequence:
/// no decay clocks, just the last `window` samples. Thread-safe.
class HedgeDelayTracker {
 public:
  explicit HedgeDelayTracker(const HedgeOptions& options);

  void Observe(int64_t latency_nanos);

  /// Current hedge delay: percentile of the window once min_samples have
  /// been seen, else the configured initial delay; never below min_delay.
  int64_t DelayNanos() const;

  int64_t samples_seen() const;

 private:
  HedgeOptions options_;
  mutable std::mutex mu_;
  std::vector<int64_t> window_;  // ring buffer, size <= options_.window
  size_t next_ = 0;              // ring cursor
  int64_t seen_ = 0;
};

}  // namespace cluster
}  // namespace slime

#endif  // SLIME4REC_CLUSTER_RETRY_H_
