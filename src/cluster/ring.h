#ifndef SLIME4REC_CLUSTER_RING_H_
#define SLIME4REC_CLUSTER_RING_H_

#include <cstdint>
#include <vector>

namespace slime {
namespace cluster {

/// Layout of a consistent-hash ring over a fixed shard fleet.
struct RingOptions {
  /// Number of shards on the ring. Must be >= 1.
  int64_t num_shards = 4;
  /// Replication factor R: every key is owned by R distinct shards (a
  /// primary plus R-1 replicas). Clamped to num_shards.
  int64_t replication = 2;
  /// Virtual nodes per shard. More vnodes smooth the key distribution and
  /// shrink the keyspace slice that moves when a shard is added; 16 keeps
  /// the per-segment replica tables small while staying within a few
  /// percent of uniform at the fleet sizes this library simulates.
  int64_t vnodes_per_shard = 16;
  /// Seed for the ring's hash placement. Two rings built with identical
  /// options are identical; changing the seed reshuffles every placement,
  /// which is how tests prove routing derives only from (options, key).
  uint64_t seed = 0x517eCA5Eull;
};

/// Deterministic consistent-hash ring with replication.
///
/// Each shard owns vnodes_per_shard pseudo-random points on a 64-bit ring;
/// the arc between consecutive points is a **segment**. A user key hashes
/// onto the ring and is owned by the segment it lands in; the segment's
/// replica set is the first R *distinct* shards found walking clockwise
/// from its endpoint, primary first. This is the classic Chord/Dynamo
/// scheme (the Envoy/Maglev substitution row in DESIGN.md): shard
/// membership changes move only the segments adjacent to the changed
/// shard, and replication follows ring order so a primary's failover
/// target is the same for every key in a segment.
///
/// Everything is precomputed at construction: Route() is a binary search
/// plus a table lookup, makes no allocation, and is safe to call from any
/// number of threads concurrently. Placement derives only from
/// (seed, shard id, vnode index) and routing only from (ring, user key) —
/// no wall-clock, no global state — so a cluster's routing decisions are
/// bit-reproducible across runs and across machines.
class ShardRing {
 public:
  explicit ShardRing(const RingOptions& options);

  int64_t num_shards() const { return num_shards_; }
  /// Effective replication factor (min(options.replication, num_shards)).
  int64_t replication() const { return replication_; }
  /// Number of ring segments (num_shards * vnodes_per_shard).
  int64_t num_segments() const {
    return static_cast<int64_t>(points_.size());
  }

  /// The segment owning `user_key` (index in [0, num_segments())).
  int64_t SegmentOf(uint64_t user_key) const;

  /// Ordered distinct replica shards for a segment: primary first, then
  /// the failover order a router should try. Size == replication().
  const std::vector<int64_t>& Replicas(int64_t segment) const;

  /// Replicas(SegmentOf(user_key)): the routing decision for one key.
  const std::vector<int64_t>& Route(uint64_t user_key) const;

  /// Every segment (by index) whose replica set contains `shard` — the
  /// keyspace that degrades when this shard goes down.
  std::vector<int64_t> SegmentsOfShard(int64_t shard) const;

  /// True if `a` and `b` both replicate at least one common segment (and
  /// so must never be taken down simultaneously by a rolling operation).
  bool SharesSegment(int64_t a, int64_t b) const;

  /// The mixing hash used for both vnode placement and key lookup
  /// (splitmix64 finalizer). Exposed so tests can predict placements.
  static uint64_t Mix(uint64_t x);

 private:
  int64_t num_shards_;
  int64_t replication_;
  /// Ring point hashes, sorted ascending. points_[i] is the clockwise
  /// endpoint of segment i (segment 0 also covers the wrap-around arc).
  std::vector<uint64_t> points_;
  /// replicas_[i]: the distinct shards replicating segment i.
  std::vector<std::vector<int64_t>> replicas_;
};

}  // namespace cluster
}  // namespace slime

#endif  // SLIME4REC_CLUSTER_RING_H_
