#include "cluster/cluster.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/macros.h"

namespace slime {
namespace cluster {
namespace {

std::string JoinInts(const std::vector<int64_t>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

}  // namespace

const char* ToString(ClusterHealth health) {
  switch (health) {
    case ClusterHealth::kServing:
      return "serving";
    case ClusterHealth::kDegraded:
      return "degraded";
    case ClusterHealth::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

const char* ToString(ShardLiveness liveness) {
  switch (liveness) {
    case ShardLiveness::kHealthy:
      return "healthy";
    case ShardLiveness::kEjected:
      return "ejected";
    case ShardLiveness::kProbation:
      return "probation";
    case ShardLiveness::kDown:
      return "down";
  }
  return "unknown";
}

ClusterServer::ClusterServer(const ClusterOptions& options,
                             ModelFactory factory, serving::Clock* clock,
                             io::Env* env)
    : options_(options),
      ring_([&options] {
        RingOptions ring;
        ring.num_shards = options.num_shards;
        ring.replication = options.replication;
        ring.vnodes_per_shard = options.vnodes_per_shard;
        ring.seed = options.seed;
        return ring;
      }()),
      retry_(options.retry),
      hedge_(options.hedge),
      hints_(options.handoff),
      factory_(std::move(factory)),
      clock_(clock != nullptr ? clock : serving::Clock::Default()),
      env_(env != nullptr ? env : io::Env::Default()) {
  SLIME_CHECK_GT(options_.default_deadline_nanos, 0);
  shards_.resize(static_cast<size_t>(ring_.num_shards()));
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  tracer_ = options_.tracer;
  requests_ = metrics_->counter("cluster.requests");
  served_ = metrics_->counter("cluster.served");
  attempts_ = metrics_->counter("cluster.attempts");
  retries_ = metrics_->counter("cluster.retries");
  failovers_ = metrics_->counter("cluster.failovers");
  backoff_waits_ = metrics_->counter("cluster.backoff_waits");
  hedges_ = metrics_->counter("cluster.hedges");
  hedge_wins_ = metrics_->counter("cluster.hedge_wins");
  ejections_ = metrics_->counter("cluster.ejections");
  reinstatements_ = metrics_->counter("cluster.reinstatements");
  typed_failures_ = metrics_->counter("cluster.typed_failures");
  unavailable_ = metrics_->counter("cluster.unavailable");
  state_appends_ = metrics_->counter("cluster.state_appends");
  state_append_failures_ = metrics_->counter("cluster.state_append_failures");
  underreplicated_appends_ =
      metrics_->counter("cluster.state.underreplicated_appends");
  restore_failures_ = metrics_->counter("cluster.state.restore_failures");
  hints_queued_ = metrics_->counter("cluster.repair.hints_queued");
  hints_replayed_ = metrics_->counter("cluster.repair.hints_replayed");
  hints_dropped_ = metrics_->counter("cluster.repair.hints_dropped");
  hint_replay_failures_ =
      metrics_->counter("cluster.repair.hint_replay_failures");
  repair_segments_ = metrics_->counter("cluster.repair.segments");
  repair_users_repaired_ = metrics_->counter("cluster.repair.users_repaired");
  repair_items_ = metrics_->counter("cluster.repair.items_transferred");
  repair_conflicts_ = metrics_->counter("cluster.repair.conflicts");
  read_divergence_ = metrics_->counter("cluster.repair.read_divergence");
  hints_pending_gauge_ = metrics_->gauge("cluster.repair.hints_pending");
  health_gauge_ = metrics_->gauge("cluster.health");
  live_shards_ = metrics_->gauge("cluster.live_shards");
  ejected_shards_ = metrics_->gauge("cluster.ejected_shards");
  request_nanos_ = metrics_->histogram("cluster.request_nanos");
  attempt_nanos_ = metrics_->histogram("cluster.attempt_nanos");
  PublishHealthGauges();
}

void ClusterServer::set_canary_requests(
    std::vector<std::vector<int64_t>> canaries) {
  canaries_ = std::move(canaries);
}

void ClusterServer::set_fallback(serving::PopularityFallback fallback) {
  fallback_ = std::move(fallback);
  has_fallback_ = true;
}

Status ClusterServer::Start() {
  if (factory_ == nullptr) {
    return Status::InvalidArgument("cluster Start requires a model factory");
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    auto server = std::make_unique<serving::ModelServer>(
        options_.shard, factory_, clock_, env_);
    if (!canaries_.empty()) server->set_canary_requests(canaries_);
    if (has_fallback_) server->set_fallback(fallback_);
    Status st = server->Start(factory_());
    if (!st.ok()) return st;
    shards_[s].server = std::move(server);
    SLIME_RETURN_IF_ERROR(AttachShardState(static_cast<int64_t>(s)));
  }
  started_ = true;
  PublishHealthGauges();
  return Status::OK();
}

Status ClusterServer::StartFromCheckpoint(const std::string& path) {
  if (factory_ == nullptr) {
    return Status::InvalidArgument(
        "cluster StartFromCheckpoint requires a model factory");
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    auto server = std::make_unique<serving::ModelServer>(
        options_.shard, factory_, clock_, env_);
    if (!canaries_.empty()) server->set_canary_requests(canaries_);
    if (has_fallback_) server->set_fallback(fallback_);
    Status st = server->StartFromCheckpoint(path);
    if (!st.ok()) return st;
    shards_[s].server = std::move(server);
    SLIME_RETURN_IF_ERROR(AttachShardState(static_cast<int64_t>(s)));
  }
  started_ = true;
  PublishHealthGauges();
  return Status::OK();
}

Status ClusterServer::AttachShardState(int64_t shard) {
  if (options_.state_dir.empty()) return Status::OK();
  state::StateStoreOptions opts;
  opts.dir = options_.state_dir + "/shard_" + std::to_string(shard);
  opts.sync = options_.state_sync;
  opts.snapshot_every_records = options_.state_snapshot_every;
  opts.env = env_;
  // Shards share the cluster's registry/tracer: state.* series aggregate
  // across the fleet, same convention as shared serving.* metrics.
  opts.metrics = options_.shard.metrics;
  opts.tracer = options_.shard.tracer;
  Result<std::unique_ptr<state::StateStore>> store = state::StateStore::Open(opts);
  if (!store.ok()) return store.status();
  shards_[static_cast<size_t>(shard)].server->AttachStateStore(
      std::move(store.value()));
  return Status::OK();
}

ShardLiveness ClusterServer::LivenessLocked(const Shard& s) const {
  if (!s.alive) return ShardLiveness::kDown;
  if (s.reloading) return ShardLiveness::kEjected;
  if (s.ejected) {
    // Window expiry is observed lazily: a reader sees probation as soon
    // as the clock passes the window even before a router mutates state.
    if (clock_->NowNanos() >= s.ejected_until_nanos) {
      return ShardLiveness::kProbation;
    }
    return ShardLiveness::kEjected;
  }
  if (s.probation) return ShardLiveness::kProbation;
  return ShardLiveness::kHealthy;
}

void ClusterServer::RefreshEjections() {
  const int64_t now = clock_->NowNanos();
  for (Shard& s : shards_) {
    if (s.ejected && now >= s.ejected_until_nanos) {
      // Window served: back into preferred rotation, but on trial — only
      // reinstate_successes consecutive successes clear the flag, and one
      // failure re-ejects with a longer window (flap damping).
      s.ejected = false;
      s.probation = true;
      s.consecutive_successes = 0;
    }
  }
}

std::vector<int64_t> ClusterServer::AttemptPlan(
    const std::vector<int64_t>& replicas) {
  std::lock_guard<std::mutex> lock(health_mu_);
  RefreshEjections();
  std::vector<int64_t> plan;
  plan.reserve(replicas.size());
  // Preferred replicas in ring order; ejected/reloading demoted to last
  // resort (still routable — better a suspect shard than no answer). Down
  // shards keep their slot: the router has no oracle for deadness, it
  // learns by the attempt failing fast.
  for (int64_t shard : replicas) {
    const Shard& s = shards_[static_cast<size_t>(shard)];
    if (!(s.ejected || s.reloading)) plan.push_back(shard);
  }
  for (int64_t shard : replicas) {
    const Shard& s = shards_[static_cast<size_t>(shard)];
    if (s.ejected || s.reloading) plan.push_back(shard);
  }
  return plan;
}

Result<serving::ServeResponse> ClusterServer::AttemptShard(
    int64_t shard, uint64_t user_key, bool session,
    const serving::ServeRequest& request, int64_t remaining_nanos,
    int64_t hedge_deadline_nanos) {
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    if (!shards_[static_cast<size_t>(shard)].alive) {
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " refused connection");
    }
  }
  serving::ServeRequest sub = request;
  sub.deadline_nanos = remaining_nanos;
  if (hedge_deadline_nanos > 0) {
    serving::Clock* clock = clock_;
    serving::CancelFn base = request.cancel;
    sub.cancel = [clock, hedge_deadline_nanos, base] {
      return clock->NowNanos() >= hedge_deadline_nanos || (base && base());
    };
  }
  serving::ModelServer* server = shards_[static_cast<size_t>(shard)].server.get();
  if (session) return server->ServeSession(user_key, sub);
  return server->Serve(sub);
}

void ClusterServer::NoteAttemptSuccess(int64_t shard) {
  std::lock_guard<std::mutex> lock(health_mu_);
  Shard& s = shards_[static_cast<size_t>(shard)];
  s.consecutive_failures = 0;
  RefreshEjections();
  if (s.probation) {
    if (++s.consecutive_successes >= options_.health.reinstate_successes) {
      s.probation = false;
      s.ejection_window_nanos = 0;  // full recovery resets the backoff
      reinstatements_.Increment();
    }
  }
}

void ClusterServer::NoteAttemptFailure(int64_t shard, const Status& status) {
  // Only transport failure marks a shard an outlier. Shedding
  // (kResourceExhausted) is load, not shard damage — ejecting for it would
  // shift yet more load onto the replicas; slowness is the hedger's job.
  if (status.code() != Status::Code::kUnavailable) return;
  std::lock_guard<std::mutex> lock(health_mu_);
  Shard& s = shards_[static_cast<size_t>(shard)];
  RefreshEjections();
  s.consecutive_successes = 0;
  ++s.consecutive_failures;
  const HealthOptions& h = options_.health;
  const auto eject = [&] {
    s.ejection_window_nanos =
        s.ejection_window_nanos == 0
            ? h.ejection_nanos
            : std::min(static_cast<int64_t>(
                           static_cast<double>(s.ejection_window_nanos) *
                           h.ejection_backoff),
                       h.max_ejection_nanos);
    s.ejected = true;
    s.probation = false;
    s.consecutive_failures = 0;
    s.ejected_until_nanos = clock_->NowNanos() + s.ejection_window_nanos;
    ejections_.Increment();
  };
  if (s.probation) {
    eject();  // one strike on probation: back out, longer window
  } else if (!s.ejected && s.consecutive_failures >= h.ejection_failures) {
    eject();
  }
}

void ClusterServer::PublishHealthGauges() {
  health_gauge_.Set(static_cast<int64_t>(health()));
  int64_t live = 0;
  int64_t ejected = 0;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    for (const Shard& s : shards_) {
      const ShardLiveness l = LivenessLocked(s);
      if (l == ShardLiveness::kHealthy || l == ShardLiveness::kProbation) {
        ++live;
      }
      if (l == ShardLiveness::kEjected) ++ejected;
    }
  }
  live_shards_.Set(live);
  ejected_shards_.Set(ejected);
}

ClusterHealth ClusterServer::health() const {
  if (!started_) return ClusterHealth::kUnavailable;
  std::lock_guard<std::mutex> lock(health_mu_);
  bool impaired = false;
  for (const Shard& s : shards_) {
    if (LivenessLocked(s) != ShardLiveness::kHealthy) impaired = true;
  }
  // Quorum rule: a segment is dark only when *no* replica is alive —
  // ejected/probation/reloading replicas are still routable, so they keep
  // the segment out of the dark even while the cluster is degraded.
  for (int64_t seg = 0; seg < ring_.num_segments(); ++seg) {
    bool any_alive = false;
    for (int64_t shard : ring_.Replicas(seg)) {
      if (shards_[static_cast<size_t>(shard)].alive) any_alive = true;
    }
    if (!any_alive) return ClusterHealth::kUnavailable;
  }
  return impaired ? ClusterHealth::kDegraded : ClusterHealth::kServing;
}

ShardLiveness ClusterServer::shard_liveness(int64_t shard) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return LivenessLocked(shards_[static_cast<size_t>(shard)]);
}

serving::ModelServer* ClusterServer::shard_server(int64_t shard) {
  return shards_[static_cast<size_t>(shard)].server.get();
}

void ClusterServer::KillShard(int64_t shard) {
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    shards_[static_cast<size_t>(shard)].alive = false;
  }
  PublishHealthGauges();
}

Status ClusterServer::RestoreShard(int64_t shard) {
  // A restored shard is a restarted process: its in-memory state is
  // whatever crash recovery rebuilds from its own durable snapshot + WAL.
  // Recovery runs FIRST, while the shard is still dark — a shard whose
  // recovery fails must stay dead (serving empty or stale state is the
  // silent-drift failure docs/STATE.md gates against), and queued handoff
  // hints replay before the shard takes any traffic.
  Status reloaded =
      shards_[static_cast<size_t>(shard)].server->ReloadStateFromDisk();
  if (!reloaded.ok()) {
    restore_failures_.Increment();
    PublishHealthGauges();
    return Status::Unavailable(
        "shard " + std::to_string(shard) +
        " stays dead: state recovery failed: " + reloaded.ToString());
  }
  if (options_.hinted_handoff) {
    Result<int64_t> replayed = ReplayHints(shard);
    if (!replayed.ok()) {
      // The shard's store refused the replayed writes — treat it like a
      // failed recovery: keep it dead rather than rejoin behind.
      restore_failures_.Increment();
      PublishHealthGauges();
      return replayed.status();
    }
  }
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    Shard& s = shards_[static_cast<size_t>(shard)];
    s.alive = true;
    // Deliberately keep any ejection: the shard earns its way back through
    // window expiry → probation → consecutive successes, so a restore
    // cannot instantly yank traffic onto a host that just flapped.
    s.consecutive_failures = 0;
  }
  if (options_.repair_on_restore && !options_.state_dir.empty()) {
    // Hints cover what was queued; the digest sweep closes the rest
    // (overflow drops, writes that predate the queue). Conflicts are
    // counted by the sweep, and a sweep IO failure is surfaced — the
    // shard is already serving its own durable state, which is safe.
    Result<RepairStats> swept = RepairShard(shard);
    if (!swept.ok()) {
      PublishHealthGauges();
      return swept.status();
    }
  }
  PublishHealthGauges();
  return Status::OK();
}

Result<int64_t> ClusterServer::ReplayHints(int64_t shard) {
  std::vector<HandoffHint> backlog = hints_.Drain(shard);
  serving::ModelServer* server = shards_[static_cast<size_t>(shard)].server.get();
  int64_t replayed = 0;
  for (size_t i = 0; i < backlog.size(); ++i) {
    Result<state::AppendAck> ack =
        server->AppendEvent(backlog[i].user_key, backlog[i].items);
    if (!ack.ok()) {
      // Re-queue the unreplayed remainder (the failed hint was not
      // applied, so the backlog from it onward is still owed).
      for (size_t j = i; j < backlog.size(); ++j) {
        const int64_t dropped_before = hints_.dropped();
        (void)hints_.Enqueue(shard, std::move(backlog[j]));
        hints_dropped_.Increment(hints_.dropped() - dropped_before);
      }
      hint_replay_failures_.Increment();
      hints_pending_gauge_.Set(hints_.total_pending());
      return ack.status();
    }
    ++replayed;
    hints_replayed_.Increment();
  }
  hints_pending_gauge_.Set(hints_.total_pending());
  return replayed;
}

Result<RepairStats> ClusterServer::RepairSegmentFiltered(
    int64_t segment, const std::function<bool(uint64_t)>& filter,
    int64_t include_shard) {
  if (!started_) return Status::Unavailable("cluster is not started");
  if (options_.state_dir.empty()) {
    return Status::InvalidArgument(
        "cluster has no state dir configured (stateless)");
  }
  if (segment < 0 || segment >= ring_.num_segments()) {
    return Status::InvalidArgument("segment " + std::to_string(segment) +
                                   " out of range");
  }
  // Reachable replicas of the segment: alive shards, plus the one being
  // restored (its process is back up, it just has not rejoined rotation).
  // A dead shard is a partitioned process — repair cannot talk to it.
  std::vector<state::StateStore*> stores;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    for (int64_t shard : ring_.Replicas(segment)) {
      if (!shards_[static_cast<size_t>(shard)].alive &&
          shard != include_shard) {
        continue;
      }
      state::StateStore* store =
          shards_[static_cast<size_t>(shard)].server->state_store();
      if (store != nullptr) stores.push_back(store);
    }
  }
  RepairStats total;
  if (stores.size() < 2) return total;  // nothing to compare against
  const std::function<bool(uint64_t)> in_segment =
      [this, segment, &filter](uint64_t user) {
        return ring_.SegmentOf(user) == segment &&
               (!filter || filter(user));
      };
  // Union of the segment's users across all reachable replicas,
  // ascending — the pass order is a pure function of the states.
  std::vector<uint64_t> users;
  for (state::StateStore* store : stores) {
    for (const state::UserDigest& d : store->EnumerateDigests(in_segment)) {
      users.push_back(d.user_id);
    }
  }
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  // Per user: elect the most advanced replica (longest stream; ties keep
  // ring order) and pull every other replica up to it. One directed pass,
  // so every divergent pair is compared — and counted — exactly once.
  for (uint64_t user : users) {
    size_t ahead = 0;
    uint64_t best = stores[0]->Digest(user).items_total;
    for (size_t i = 1; i < stores.size(); ++i) {
      const uint64_t total_i = stores[i]->Digest(user).items_total;
      if (total_i > best) {
        best = total_i;
        ahead = i;
      }
    }
    for (size_t i = 0; i < stores.size(); ++i) {
      if (i == ahead) continue;
      RepairStats stats;
      SLIME_RETURN_IF_ERROR(
          RepairUser(stores[ahead], stores[i], user, &stats));
      total.Add(stats);
    }
  }
  repair_segments_.Increment();
  repair_users_repaired_.Increment(total.users_repaired);
  repair_items_.Increment(total.items_transferred);
  repair_conflicts_.Increment(total.conflicts);
  return total;
}

Result<RepairStats> ClusterServer::RepairSegment(int64_t segment) {
  obs::TraceBuilder trace;
  if (tracer_ != nullptr) trace = tracer_->StartTrace("cluster.repair");
  const int32_t span = trace.BeginSpan("segment");
  trace.Annotate(span, "segment", std::to_string(segment));
  Result<RepairStats> stats =
      RepairSegmentFiltered(segment, nullptr, /*include_shard=*/-1);
  if (stats.ok()) {
    trace.Annotate(span, "repaired",
                   std::to_string(stats.value().users_repaired));
    trace.Annotate(span, "conflicts",
                   std::to_string(stats.value().conflicts));
  }
  trace.EndSpan(span);
  trace.Finish();
  return stats;
}

Result<RepairStats> ClusterServer::RepairShard(int64_t shard) {
  if (shard < 0 || shard >= ring_.num_shards()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range");
  }
  obs::TraceBuilder trace;
  if (tracer_ != nullptr) trace = tracer_->StartTrace("cluster.repair");
  const int32_t span = trace.BeginSpan("shard");
  trace.Annotate(span, "shard", std::to_string(shard));
  RepairStats total;
  for (int64_t segment : ring_.SegmentsOfShard(shard)) {
    Result<RepairStats> stats =
        RepairSegmentFiltered(segment, nullptr, shard);
    if (!stats.ok()) {
      trace.EndSpan(span);
      trace.Finish();
      return stats.status();
    }
    total.Add(stats.value());
  }
  trace.Annotate(span, "repaired", std::to_string(total.users_repaired));
  trace.Annotate(span, "conflicts", std::to_string(total.conflicts));
  trace.EndSpan(span);
  trace.Finish();
  return total;
}

void ClusterServer::ReadRepair(uint64_t user_key) {
  // Divergence check on the serve path: cheap (R digest lookups), and the
  // optional heal goes through the same never-fabricate repair core.
  const int64_t segment = ring_.SegmentOf(user_key);
  std::vector<state::StateStore*> stores;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    for (int64_t shard : ring_.Replicas(segment)) {
      if (!shards_[static_cast<size_t>(shard)].alive) continue;
      state::StateStore* store =
          shards_[static_cast<size_t>(shard)].server->state_store();
      if (store != nullptr) stores.push_back(store);
    }
  }
  if (stores.size() < 2) return;
  bool diverged = false;
  const state::UserDigest first = stores[0]->Digest(user_key);
  for (size_t i = 1; i < stores.size(); ++i) {
    if (stores[i]->Digest(user_key) != first) diverged = true;
  }
  if (!diverged) return;
  read_divergence_.Increment();
  if (!options_.read_repair_heal) return;
  size_t ahead = 0;
  uint64_t best = first.items_total;
  for (size_t i = 1; i < stores.size(); ++i) {
    const uint64_t total_i = stores[i]->Digest(user_key).items_total;
    if (total_i > best) {
      best = total_i;
      ahead = i;
    }
  }
  RepairStats total;
  for (size_t i = 0; i < stores.size(); ++i) {
    if (i == ahead) continue;
    RepairStats stats;
    if (!RepairUser(stores[ahead], stores[i], user_key, &stats).ok()) return;
    total.Add(stats);
  }
  repair_users_repaired_.Increment(total.users_repaired);
  repair_items_.Increment(total.items_transferred);
  repair_conflicts_.Increment(total.conflicts);
}

Result<state::AppendAck> ClusterServer::AppendEvent(
    uint64_t user_key, const std::vector<int64_t>& items) {
  if (!started_) return Status::Unavailable("cluster is not started");
  if (options_.state_dir.empty()) {
    return Status::InvalidArgument(
        "cluster has no state dir configured (stateless)");
  }
  const std::vector<int64_t> replicas =
      ring_.Replicas(ring_.SegmentOf(user_key));
  Result<state::AppendAck> first = Status::Unavailable("no replica attempted");
  bool acked = false;
  int64_t replica_acks = 0;
  std::vector<int64_t> missed;  // replicas that did not take the write
  for (int64_t shard : replicas) {
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      if (!shards_[static_cast<size_t>(shard)].alive) {
        state_append_failures_.Increment();
        missed.push_back(shard);
        continue;  // a partitioned process cannot take the write
      }
    }
    Result<state::AppendAck> ack =
        shards_[static_cast<size_t>(shard)].server->AppendEvent(user_key,
                                                                items);
    if (ack.ok()) {
      ++replica_acks;
      if (!acked) {
        first = std::move(ack);
        acked = true;
      }
    } else {
      state_append_failures_.Increment();
      missed.push_back(shard);
      if (!acked) first = std::move(ack);
    }
  }
  if (acked) {
    state_appends_.Increment();
    first.value().replica_acks = replica_acks;
    if (replica_acks < static_cast<int64_t>(replicas.size())) {
      // The append is acked but under-replicated: the missed replicas have
      // silently forked until anti-entropy closes the gap. The counter
      // makes the window visible; hinted handoff (when on) queues the
      // exact write for replay at restore.
      underreplicated_appends_.Increment();
      if (options_.hinted_handoff) {
        for (int64_t shard : missed) {
          HandoffHint hint;
          hint.user_key = user_key;
          hint.items = items;
          hint.origin_seq =
              hint_seq_.fetch_add(1, std::memory_order_relaxed);
          // The queue accounts drops exactly (a kDropOldest admit still
          // evicts one); mirror its count into the metric by delta.
          const int64_t dropped_before = hints_.dropped();
          if (hints_.Enqueue(shard, std::move(hint))) {
            hints_queued_.Increment();
          }
          hints_dropped_.Increment(hints_.dropped() - dropped_before);
        }
        hints_pending_gauge_.Set(hints_.total_pending());
      }
    }
    return first;
  }
  if (first.status().code() == Status::Code::kInvalidArgument) return first;
  return Status::Unavailable("append for user " + std::to_string(user_key) +
                             " failed on every replica: " +
                             first.status().message());
}

Result<serving::ServeResponse> ClusterServer::Serve(
    uint64_t user_key, const serving::ServeRequest& request) {
  return ServeRouted(user_key, request, /*session=*/false);
}

Result<serving::ServeResponse> ClusterServer::ServeSession(
    uint64_t user_key, const serving::ServeRequest& request) {
  if (options_.state_dir.empty()) {
    return Status::InvalidArgument(
        "cluster has no state dir configured (stateless)");
  }
  return ServeRouted(user_key, request, /*session=*/true);
}

Result<serving::ServeResponse> ClusterServer::ServeRouted(
    uint64_t user_key, const serving::ServeRequest& request, bool session) {
  if (!started_) return Status::Unavailable("cluster is not started");
  const int64_t start = clock_->NowNanos();
  const int64_t budget = request.deadline_nanos > 0
                             ? request.deadline_nanos
                             : options_.default_deadline_nanos;
  const int64_t deadline = start + budget;
  requests_.Increment();
  // Per-request jitter stream: seeded from (cluster seed, request
  // sequence), so a same-seed rerun of the same request order jitters
  // identically and never consults a global RNG.
  const uint64_t seq = static_cast<uint64_t>(
      request_seq_.fetch_add(1, std::memory_order_relaxed));
  Rng rng(ShardRing::Mix(options_.seed) ^ ShardRing::Mix(seq + 0x9e37ull));

  obs::TraceBuilder trace;
  if (tracer_ != nullptr) trace = tracer_->StartTrace("cluster.request");

  const int64_t segment = ring_.SegmentOf(user_key);
  std::vector<int64_t> plan;
  {
    const int32_t route_span = trace.BeginSpan("route");
    plan = AttemptPlan(ring_.Replicas(segment));
    trace.Annotate(route_span, "segment", std::to_string(segment));
    trace.Annotate(route_span, "plan", JoinInts(plan));
    trace.EndSpan(route_span);
  }

  const int64_t max_attempts = retry_.options().max_attempts;
  Result<serving::ServeResponse> out =
      Status::Unavailable("no shard attempted");
  size_t pos = 0;
  bool hedged = false;
  bool next_is_hedge = false;
  for (int64_t attempt = 0; attempt < max_attempts; ++attempt) {
    const bool is_hedge_attempt = next_is_hedge;
    next_is_hedge = false;
    const int64_t shard = plan[pos % plan.size()];
    const int64_t attempt_start = clock_->NowNanos();
    const int64_t remaining = deadline - attempt_start;
    if (remaining <= 0) {
      out = Status::DeadlineExceeded(
          "cluster retry budget exhausted before attempt " +
          std::to_string(attempt));
      break;
    }

    // Arm the hedge: if this attempt outlives the tracked tail latency,
    // abandon it and re-issue to the next replica. Only once per request,
    // only with a replica to hedge to, an attempt slot to spend, and
    // enough budget that the hedged attempt could still finish.
    int64_t hedge_deadline = 0;
    if (options_.hedge.enabled && !hedged && plan.size() > 1 &&
        attempt + 1 < max_attempts) {
      const int64_t delay = hedge_.DelayNanos();
      if (delay + retry_.options().min_attempt_budget_nanos < remaining) {
        hedge_deadline = attempt_start + delay;
      }
    }

    const int32_t span = trace.BeginSpan("attempt");
    trace.Annotate(span, "shard", std::to_string(shard));
    if (is_hedge_attempt) trace.Annotate(span, "hedge", "true");
    Result<serving::ServeResponse> result =
        AttemptShard(shard, user_key, session, request, remaining,
                     hedge_deadline);
    const int64_t elapsed = clock_->NowNanos() - attempt_start;
    attempts_.Increment();

    if (result.ok()) {
      trace.Annotate(span, "outcome", "ok");
      trace.EndSpan(span);
      hedge_.Observe(elapsed);
      attempt_nanos_.Observe(elapsed);
      NoteAttemptSuccess(shard);
      if (is_hedge_attempt) hedge_wins_.Increment();
      out = std::move(result);
      break;
    }

    const Status& st = result.status();
    const bool caller_cancelled = request.cancel && request.cancel();
    const bool hedge_fired = hedge_deadline > 0 &&
                             st.code() == Status::Code::kAborted &&
                             !caller_cancelled &&
                             clock_->NowNanos() >= hedge_deadline;
    if (hedge_fired) {
      // The primary is slow, not broken: re-issue to the next replica
      // without waiting and without dinging the primary's health.
      trace.Annotate(span, "outcome", "hedged");
      trace.EndSpan(span);
      hedges_.Increment();
      hedged = true;
      next_is_hedge = true;
      ++pos;
      out = st;
      continue;
    }

    trace.Annotate(span, "outcome", st.ToString());
    trace.EndSpan(span);
    NoteAttemptFailure(shard, st);
    out = st;
    if (st.code() == Status::Code::kAborted) break;  // caller cancelled

    const int64_t next_shard = plan[(pos + 1) % plan.size()];
    const bool same_shard = next_shard == shard;
    const RetryDecision decision = retry_.Next(
        attempt, st, same_shard, deadline - clock_->NowNanos(), &rng);
    if (!decision.retry) {
      const int32_t give_up = trace.BeginSpan("retry.give_up");
      trace.Annotate(give_up, "reason", decision.reason);
      trace.EndSpan(give_up);
      break;
    }
    retries_.Increment();
    if (!same_shard) failovers_.Increment();
    if (decision.wait_nanos > 0) {
      const int32_t backoff = trace.BeginSpan("backoff");
      trace.Annotate(backoff, "reason", decision.reason);
      trace.Annotate(backoff, "wait_nanos",
                     std::to_string(decision.wait_nanos));
      backoff_waits_.Increment();
      clock_->SleepFor(decision.wait_nanos);
      trace.EndSpan(backoff);
    }
    ++pos;
  }

  trace.Finish();
  request_nanos_.Observe(clock_->NowNanos() - start);
  if (out.ok()) {
    served_.Increment();
    if (session && options_.read_repair) ReadRepair(user_key);
  } else {
    typed_failures_.Increment();
    if (out.status().code() == Status::Code::kUnavailable) {
      unavailable_.Increment();
    }
  }
  PublishHealthGauges();
  return out;
}

std::vector<std::vector<int64_t>> ClusterServer::ReloadWaves() const {
  // Greedy colouring of the co-replication graph: shards sharing a
  // segment get different colours, each colour class is one wave, so no
  // wave ever holds two replicas of any segment.
  const int64_t n = ring_.num_shards();
  std::vector<int64_t> color(static_cast<size_t>(n), -1);
  int64_t num_colors = 0;
  for (int64_t s = 0; s < n; ++s) {
    std::vector<bool> used(static_cast<size_t>(num_colors) + 1, false);
    for (int64_t t = 0; t < s; ++t) {
      if (ring_.SharesSegment(s, t)) used[static_cast<size_t>(color[t])] = true;
    }
    int64_t c = 0;
    while (used[static_cast<size_t>(c)]) ++c;
    color[static_cast<size_t>(s)] = c;
    if (c + 1 > num_colors) num_colors = c + 1;
  }
  std::vector<std::vector<int64_t>> waves(static_cast<size_t>(num_colors));
  for (int64_t s = 0; s < n; ++s) {
    waves[static_cast<size_t>(color[static_cast<size_t>(s)])].push_back(s);
  }
  return waves;
}

Status ClusterServer::RollingReload(
    const std::string& checkpoint_path,
    const std::function<void(int64_t wave)>& between_waves) {
  if (!started_) return Status::Unavailable("cluster is not started");
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  const std::vector<std::vector<int64_t>> waves = ReloadWaves();
  for (size_t w = 0; w < waves.size(); ++w) {
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      for (int64_t s : waves[w]) {
        shards_[static_cast<size_t>(s)].reloading = true;
      }
    }
    PublishHealthGauges();
    Status wave_status = Status::OK();
    for (int64_t s : waves[w]) {
      {
        std::lock_guard<std::mutex> lock(health_mu_);
        // A dead shard has no process to reload; it picks the model up
        // when it is restored and re-bootstrapped by the operator.
        if (!shards_[static_cast<size_t>(s)].alive) continue;
      }
      wave_status = shards_[static_cast<size_t>(s)].server->Reload(
          checkpoint_path);
      if (!wave_status.ok()) break;
    }
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      for (int64_t s : waves[w]) {
        shards_[static_cast<size_t>(s)].reloading = false;
      }
    }
    PublishHealthGauges();
    if (!wave_status.ok()) {
      // The failing shard rolled itself back (ModelServer::Reload is
      // validated); earlier waves keep the new model — both generations
      // passed canary validation, so the mixed fleet stays safe.
      return wave_status;
    }
    if (between_waves) between_waves(static_cast<int64_t>(w));
  }
  return Status::OK();
}

ClusterStats ClusterServer::stats() const {
  ClusterStats stats;
  stats.requests = requests_.value();
  stats.served = served_.value();
  stats.attempts = attempts_.value();
  stats.retries = retries_.value();
  stats.failovers = failovers_.value();
  stats.backoff_waits = backoff_waits_.value();
  stats.hedges = hedges_.value();
  stats.hedge_wins = hedge_wins_.value();
  stats.ejections = ejections_.value();
  stats.reinstatements = reinstatements_.value();
  stats.typed_failures = typed_failures_.value();
  stats.unavailable = unavailable_.value();
  stats.underreplicated_appends = underreplicated_appends_.value();
  stats.restore_failures = restore_failures_.value();
  stats.hints_queued = hints_queued_.value();
  stats.hints_replayed = hints_replayed_.value();
  stats.hints_dropped = hints_dropped_.value();
  stats.hints_pending = hints_.total_pending();
  stats.repair_users_repaired = repair_users_repaired_.value();
  stats.repair_items_transferred = repair_items_.value();
  stats.repair_conflicts = repair_conflicts_.value();
  stats.read_divergence = read_divergence_.value();
  return stats;
}

}  // namespace cluster
}  // namespace slime
