#ifndef SLIME4REC_CLUSTER_CLUSTER_H_
#define SLIME4REC_CLUSTER_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/repair.h"
#include "cluster/retry.h"
#include "cluster/ring.h"
#include "common/status.h"
#include "io/env.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "serving/clock.h"
#include "serving/fallback.h"
#include "serving/model_server.h"
#include "state/state_store.h"

namespace slime {
namespace cluster {

/// Aggregate health of the cluster, derived from per-segment replica
/// liveness (the quorum rule):
///  - kServing: every shard routable.
///  - kDegraded: some shard down/ejected/reloading, but every ring segment
///    still has >= 1 routable replica — requests succeed via failover.
///  - kUnavailable: at least one segment has no routable replica; keys in
///    that segment fail with typed kUnavailable.
enum class ClusterHealth { kServing, kDegraded, kUnavailable };
const char* ToString(ClusterHealth health);

/// Router's view of one shard, for observability and tests.
enum class ShardLiveness {
  kHealthy,    // in rotation, preferred
  kEjected,    // out of preference (routed only as a last resort)
  kProbation,  // ejection window expired; back in rotation, on trial
  kDown,       // administratively killed (chaos) — connection refused
};
const char* ToString(ShardLiveness liveness);

/// Outlier-detection knobs (the Envoy outlier ejection analogue).
struct HealthOptions {
  /// Consecutive transport failures (kUnavailable) before a shard is
  /// ejected from preferred rotation.
  int64_t ejection_failures = 3;
  /// First ejection lasts this long; while ejected the shard is only
  /// routed when every preferred replica has already failed.
  int64_t ejection_nanos = 100 * serving::kNanosPerMilli;
  /// Hysteresis: when the window expires the shard enters *probation* and
  /// must serve this many consecutive successes to be reinstated. A single
  /// failure on probation re-ejects it with the window multiplied by
  /// `ejection_backoff` (capped), so a flapping shard oscillates ever more
  /// slowly instead of whipping the cluster between kServing and
  /// kDegraded at the flap frequency.
  int64_t reinstate_successes = 2;
  double ejection_backoff = 2.0;
  int64_t max_ejection_nanos = 1600 * serving::kNanosPerMilli;
};

/// Everything a ClusterServer needs to build its fleet.
struct ClusterOptions {
  int64_t num_shards = 4;
  /// Replicas per key (primary + R-1 failover targets); clamped to
  /// num_shards by the ring.
  int64_t replication = 2;
  int64_t vnodes_per_shard = 16;
  /// Seeds ring placement and the per-request jitter streams. Two clusters
  /// with equal options, seeds, and request sequences behave identically.
  uint64_t seed = 0x5eedc105ull;
  /// Per-shard ModelServer tuning. `shard.metrics`/`shard.tracer` are
  /// honoured if set (all shards then share them — serving.* series
  /// aggregate across the fleet); when null each shard keeps its own
  /// private registry, and the cluster-level cluster.* series below are
  /// the fleet view.
  serving::ModelServerOptions shard;
  RetryOptions retry;
  HedgeOptions hedge;
  HealthOptions health;
  /// Cluster-level request budget when the request carries none. Retries,
  /// backoff waits and hedges are all paid out of this one budget.
  int64_t default_deadline_nanos = 50 * serving::kNanosPerMilli;
  /// Cluster-level metrics ("cluster.*") and per-request route/retry/hedge
  /// traces. Same null semantics as ModelServerOptions.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Durable per-shard streaming state (ROADMAP item 4; docs/STATE.md).
  /// Empty = stateless cluster (AppendEvent/ServeSession refuse). Shard i
  /// opens its store in `<state_dir>/shard_<i>` at Start; state survives
  /// KillShard (the object is untouched, like a partitioned process) and
  /// RestoreShard re-runs recovery from disk.
  std::string state_dir;
  state::SyncMode state_sync = state::SyncMode::kGroup;
  int64_t state_snapshot_every = 1024;
  /// --- Anti-entropy (docs/STATE.md "Anti-entropy") -------------------
  /// All off by default: the cluster then behaves exactly as before —
  /// a restored shard recovers only its own durable state, and replicas
  /// that missed a write stay behind until an operator intervenes.
  ///
  /// Queue a bounded hint for every replica that misses an acked append
  /// (dead or failing), and replay the backlog to a shard during
  /// RestoreShard, before it re-enters rotation.
  bool hinted_handoff = false;
  HandoffOptions handoff;
  /// After a successful RestoreShard (reload + hint replay), run
  /// RepairShard to digest-diff the restored shard against healthy peers
  /// and back-fill anything hints could not cover (dropped on overflow,
  /// or writes acked before the handoff queue existed).
  bool repair_on_restore = false;
  /// On every successful ServeSession, digest-compare the served user
  /// across the segment's alive replicas and count observed divergence
  /// (cluster.repair.read_divergence).
  bool read_repair = false;
  /// With read_repair: also heal the divergence in the serve path (suffix
  /// transfer through the normal Append path) instead of only counting it.
  bool read_repair_heal = false;
};

/// Cumulative cluster counters (thin view over the "cluster.*" metrics).
struct ClusterStats {
  int64_t requests = 0;       // Serve() calls routed
  int64_t served = 0;         // ok responses returned to callers
  int64_t attempts = 0;       // shard attempts issued (incl. retries/hedges)
  int64_t retries = 0;        // backoff/failover re-attempts
  int64_t failovers = 0;      // re-attempts that switched shard
  int64_t backoff_waits = 0;  // re-attempts that slept on backoff first
  int64_t hedges = 0;         // hedge re-issues (primary abandoned as slow)
  int64_t hedge_wins = 0;     // responses produced by a hedged attempt
  int64_t ejections = 0;      // shards ejected by outlier detection
  int64_t reinstatements = 0; // shards reinstated after probation
  int64_t typed_failures = 0; // non-OK Serve() returns (all typed)
  int64_t unavailable = 0;    //   of which kUnavailable (dead segment)
  // --- anti-entropy (cluster.state.* / cluster.repair.* metrics) ---
  int64_t underreplicated_appends = 0;  // acked with fewer than R replicas
  int64_t restore_failures = 0;   // RestoreShard reloads that failed
  int64_t hints_queued = 0;       // handoff hints admitted
  int64_t hints_replayed = 0;     // hints re-issued on restore
  int64_t hints_dropped = 0;      // hints lost to the overflow policy
  int64_t hints_pending = 0;      // backlog right now (gauge)
  int64_t repair_users_repaired = 0;
  int64_t repair_items_transferred = 0;
  int64_t repair_conflicts = 0;
  int64_t read_divergence = 0;    // divergence observed at serve time
};

/// An in-process replicated serving cluster: N ModelServer shards behind a
/// consistent-hash router with client-side retries, hedging and outlier
/// ejection. The single-node substitution for an Envoy/gRPC-LB fleet (see
/// DESIGN.md): same control-flow skeleton — route → attempt → classify →
/// (backoff | failover | hedge) → attempt — with the network replaced by
/// direct calls and all timing on the injected Clock.
///
/// **Routing.** A user key hashes to a ring segment whose replica set is R
/// distinct shards, primary first (ShardRing). Attempts prefer
/// healthy/probation replicas in ring order; ejected or reloading shards
/// are demoted to last resort, and administratively-down shards fail fast
/// with kUnavailable (the "connection refused" of this in-process world —
/// routing never peeks at the kill switch, it learns through failures,
/// like a real client).
///
/// **Retries.** RetryPolicy: bounded attempts, exponential backoff with
/// seeded jitter, immediate failover on transport failure, the server's
/// typed retry_after hint honoured, and every wait paid from the request
/// deadline (retry budget). Waits go through Clock::SleepFor, so a
/// FakeClock makes them instantaneous and deterministic.
///
/// **Hedging.** When an attempt outlives the tracked p95 of recent attempt
/// latencies (HedgeDelayTracker), the attempt is abandoned via the
/// ServeRequest::cancel seam — the shard returns typed kAborted without
/// descending its degradation ladder — and the request is re-issued to the
/// next replica. Deterministic: the "slow primary" signal is FakeClock
/// time crossing the hedge point, not a wall-clock race; the loser is
/// cancelled cooperatively, never detached.
///
/// **Health.** Consecutive kUnavailable failures eject a shard; expiry
/// leads to probation and hysteresis-gated reinstatement (HealthOptions).
/// Cluster health is the per-segment quorum: kDegraded while every
/// segment keeps >= 1 routable replica, kUnavailable only when some
/// segment is completely dark.
///
/// **Rolling reload.** RollingReload() updates shards in waves that never
/// contain two replicas of the same segment (graph colouring over the
/// ring's co-replication relation), so a hot model rollout never reduces
/// any segment below quorum − 1.
///
/// Thread-safety matches ModelServer: Serve may be called from any number
/// of threads; determinism claims are for a fixed request order (the
/// cluster determinism test drives identical sequences at 1/2/8 compute
/// threads and asserts byte-identical outcomes).
class ClusterServer {
 public:
  using ModelFactory = serving::ModelServer::ModelFactory;

  /// `factory` builds one model instance per shard (and per reload).
  /// `clock`/`env` default to the real clock and filesystem.
  ClusterServer(const ClusterOptions& options, ModelFactory factory,
                serving::Clock* clock = nullptr, io::Env* env = nullptr);

  /// Forwarded to every shard before it starts. Same call-before-Start
  /// contract as ModelServer.
  void set_canary_requests(std::vector<std::vector<int64_t>> canaries);
  void set_fallback(serving::PopularityFallback fallback);

  /// Boots every shard from the factory. Fails if any shard fails.
  Status Start();
  /// Boots every shard from the same checkpoint (factory + load + canary).
  Status StartFromCheckpoint(const std::string& path);

  /// Routes `user_key`, then runs the retry/hedge loop described above.
  /// All request-level knobs (top-k, deadline) ride in `request`;
  /// `request.cancel` composes with the hedging cancel.
  Result<serving::ServeResponse> Serve(uint64_t user_key,
                                       const serving::ServeRequest& request);

  /// --- Streaming state (requires ClusterOptions::state_dir) ------------
  ///
  /// Durably appends events for `user_key` to every *alive* replica of its
  /// segment (a replicated write: a dead replica is a partitioned process
  /// and simply misses the write). Acked when at least one replica acked —
  /// at R=2 an append survives any single shard kill. The returned ack is
  /// the first successful replica's. All replicas dark → typed
  /// kUnavailable.
  Result<state::AppendAck> AppendEvent(uint64_t user_key,
                                       const std::vector<int64_t>& items);

  /// Session-serving twin of Serve: same route → retry/failover/hedge
  /// loop, but each attempted shard answers from its *own* live state for
  /// `user_key` (ModelServer::ServeSession) instead of a caller-supplied
  /// history. `request.history` is ignored.
  Result<serving::ServeResponse> ServeSession(
      uint64_t user_key, const serving::ServeRequest& request);

  /// Hot-reloads every live shard from `checkpoint_path` in co-replication
  ///-safe waves. A shard being reloaded is routed around (demoted like an
  /// ejected shard) for the duration of its wave. `between_waves`, if set,
  /// runs after each wave completes — chaos uses it to drive traffic mid-
  /// rollout. Fails fast on the first shard whose reload is rolled back
  /// (already-updated shards keep the new model; both generations passed
  /// canary validation, so the mixed fleet is safe).
  Status RollingReload(const std::string& checkpoint_path,
                       const std::function<void(int64_t wave)>&
                           between_waves = nullptr);

  /// The wave schedule RollingReload would use: shards grouped so no wave
  /// holds two replicas of any segment. Exposed for tests to verify the
  /// never-two-replicas-down invariant directly.
  std::vector<std::vector<int64_t>> ReloadWaves() const;

  /// Chaos switches. Kill makes the shard refuse every attempt with
  /// kUnavailable (its ModelServer object is untouched — state survives,
  /// as a process surviving a network partition would). Restore lifts the
  /// refusal but NOT the ejection: the shard re-enters rotation through
  /// the normal window-expiry → probation → reinstatement path.
  ///
  /// Restore order matters: state recovery runs first, while the shard is
  /// still dark — a shard whose recovery fails STAYS DEAD (typed status,
  /// cluster.state.restore_failures) instead of rejoining with empty or
  /// stale state. On success, queued handoff hints replay before the
  /// shard takes traffic, and with repair_on_restore a RepairShard sweep
  /// closes whatever gap the hints could not cover.
  void KillShard(int64_t shard);
  Status RestoreShard(int64_t shard);

  /// Anti-entropy sweeps (cluster.repair.* metrics; docs/CLUSTER.md).
  /// RepairSegment digest-diffs one segment's alive replicas pairwise
  /// against the most advanced one and back-fills missing suffixes
  /// through the normal durable Append path — never fabricating: a
  /// transfer happens only when the suffix provably extends the behind
  /// replica's stream to the ahead digest; anything else is a counted
  /// conflict left untouched. RepairShard sweeps every segment the shard
  /// replicates. Both require a stateful cluster.
  Result<RepairStats> RepairSegment(int64_t segment);
  Result<RepairStats> RepairShard(int64_t shard);

  /// Handoff hints currently queued for dead shards (drains to 0 once
  /// every dead shard has been restored).
  int64_t hints_pending() const { return hints_.total_pending(); }

  ClusterHealth health() const;
  ShardLiveness shard_liveness(int64_t shard) const;
  ClusterStats stats() const;
  const ShardRing& ring() const { return ring_; }
  int64_t num_shards() const { return ring_.num_shards(); }
  /// Direct access to one shard's server (tests, per-shard stats).
  serving::ModelServer* shard_server(int64_t shard);
  /// The registry the "cluster.*" metrics live in.
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct Shard {
    std::unique_ptr<serving::ModelServer> server;
    // --- all below guarded by health_mu_ ---
    bool alive = true;      // KillShard/RestoreShard switch
    bool reloading = false; // demoted from rotation during its reload wave
    bool ejected = false;
    bool probation = false;
    int64_t consecutive_failures = 0;
    int64_t consecutive_successes = 0;
    int64_t ejected_until_nanos = 0;
    int64_t ejection_window_nanos = 0;  // current (backed-off) window
  };

  /// Expires ejection windows, then orders `replicas` for attempting:
  /// preferred (healthy/probation, ring order) first, demoted
  /// (ejected/reloading, ring order) last. Down shards stay in place —
  /// the router doesn't know they're down until they refuse.
  std::vector<int64_t> AttemptPlan(const std::vector<int64_t>& replicas);
  /// Shared retry/failover/hedge engine behind Serve and ServeSession;
  /// `session` selects which shard entry point each attempt calls.
  Result<serving::ServeResponse> ServeRouted(
      uint64_t user_key, const serving::ServeRequest& request, bool session);
  /// One attempt against one shard; fails fast with kUnavailable when the
  /// shard is down. `hedge_deadline_nanos` > 0 arms the cancel seam.
  /// `session` routes the attempt through ModelServer::ServeSession for
  /// `user_key` instead of Serve.
  Result<serving::ServeResponse> AttemptShard(
      int64_t shard, uint64_t user_key, bool session,
      const serving::ServeRequest& request, int64_t remaining_nanos,
      int64_t hedge_deadline_nanos);
  /// Opens shard `s`'s state store under options_.state_dir and attaches
  /// it to the shard's server. No-op for a stateless cluster.
  Status AttachShardState(int64_t shard);
  /// Replays shard `s`'s queued handoff hints through its server's normal
  /// Append path (in origin_seq order). Returns the count replayed.
  Result<int64_t> ReplayHints(int64_t shard);
  /// RepairSegment's core, shared with read-repair: heal `segment`'s
  /// alive-replica stores for the users `filter` accepts (all users in
  /// the segment when null). `include_shard` >= 0 additionally treats
  /// that shard as reachable even while marked dead (the restore path
  /// repairs a shard an instant before it rejoins rotation).
  Result<RepairStats> RepairSegmentFiltered(
      int64_t segment, const std::function<bool(uint64_t)>& filter,
      int64_t include_shard);
  /// Read-repair hook: after a successful session serve, digest-compare
  /// `user_key` across its segment's alive replicas; count divergence and
  /// (with read_repair_heal) heal it.
  void ReadRepair(uint64_t user_key);
  void NoteAttemptSuccess(int64_t shard);
  void NoteAttemptFailure(int64_t shard, const Status& status);
  void RefreshEjections();  // health_mu_ must be held
  ShardLiveness LivenessLocked(const Shard& s) const;
  void PublishHealthGauges();  // recomputes cluster.health / live gauges

  const ClusterOptions options_;
  ShardRing ring_;
  RetryPolicy retry_;
  HedgeDelayTracker hedge_;
  HintQueue hints_;
  /// Deterministic hint enqueue index (cluster-wide): replay order is a
  /// pure function of the append order that queued the hints.
  std::atomic<uint64_t> hint_seq_{0};
  ModelFactory factory_;
  serving::Clock* clock_;
  io::Env* env_;
  bool started_ = false;
  std::vector<std::vector<int64_t>> canaries_;
  serving::PopularityFallback fallback_;
  bool has_fallback_ = false;

  mutable std::mutex health_mu_;  // guards Shard flags (not ->server)
  std::vector<Shard> shards_;

  std::mutex reload_mu_;  // one rolling reload at a time
  std::atomic<int64_t> request_seq_{0};  // per-request jitter stream index

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;  // may be null

  obs::Counter requests_;
  obs::Counter served_;
  obs::Counter attempts_;
  obs::Counter retries_;
  obs::Counter failovers_;
  obs::Counter backoff_waits_;
  obs::Counter hedges_;
  obs::Counter hedge_wins_;
  obs::Counter ejections_;
  obs::Counter reinstatements_;
  obs::Counter typed_failures_;
  obs::Counter unavailable_;
  obs::Counter state_appends_;          // cluster-level acked appends
  obs::Counter state_append_failures_;  // per-replica append failures
  obs::Counter underreplicated_appends_;  // acked by fewer than R replicas
  obs::Counter restore_failures_;  // RestoreShard reloads that failed
  obs::Counter hints_queued_;
  obs::Counter hints_replayed_;
  obs::Counter hints_dropped_;
  obs::Counter hint_replay_failures_;
  obs::Counter repair_segments_;        // RepairSegment passes completed
  obs::Counter repair_users_repaired_;
  obs::Counter repair_items_;
  obs::Counter repair_conflicts_;
  obs::Counter read_divergence_;        // read-repair: divergence observed
  obs::Gauge hints_pending_gauge_;
  obs::Gauge health_gauge_;      // ClusterHealth as int
  obs::Gauge live_shards_;       // alive && not ejected/reloading
  obs::Gauge ejected_shards_;
  obs::Histogram request_nanos_;  // end-to-end, incl. waits
  obs::Histogram attempt_nanos_;  // per successful attempt
};

}  // namespace cluster
}  // namespace slime

#endif  // SLIME4REC_CLUSTER_CLUSTER_H_
