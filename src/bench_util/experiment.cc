#include "bench_util/experiment.h"

#include <chrono>

#include "common/string_util.h"

namespace slime {
namespace bench {

data::SplitDataset BuildSplit(const data::SyntheticConfig& config,
                              int64_t max_prefixes_per_user) {
  const data::InteractionDataset dataset =
      data::GenerateSynthetic(config).FilterMinInteractions(5);
  return data::SplitDataset(dataset, max_prefixes_per_user);
}

models::ModelConfig DefaultModelConfig(const data::SplitDataset& split) {
  models::ModelConfig c;
  c.num_items = split.num_items();
  c.num_users = split.num_users();
  c.max_len = split.name() == "ml1m-sim" ? 64 : 32;
  c.hidden_dim = 32;
  c.num_layers = 2;
  c.num_heads = 2;
  // Dropout 0.4 sits inside the paper's searched grid {0.1..0.5} and is
  // applied to every model identically; the InfoNCE temperature follows
  // common contrastive-SR practice.
  c.dropout = 0.4f;
  c.emb_dropout = 0.4f;
  c.cl_weight = 0.1f;
  c.cl_temperature = 0.2f;
  c.seed = 7;
  return c;
}

core::FilterMixerOptions DefaultMixerOptions(
    const std::string& dataset_name) {
  core::FilterMixerOptions o;
  o.gamma = 0.5;
  o.dynamic_direction = core::SlideDirection::kHighToLow;  // mode 4
  o.static_direction = core::SlideDirection::kHighToLow;
  if (dataset_name == "beauty-sim") {
    o.alpha = 0.4;  // Fig. 4 optimum on Beauty
  } else if (dataset_name == "clothing-sim") {
    o.alpha = 0.8;  // Fig. 4 optimum on Clothing
  } else if (dataset_name == "sports-sim") {
    o.alpha = 0.3;  // Fig. 4 optimum on Sports
  } else if (dataset_name == "ml1m-sim") {
    o.alpha = 0.9;  // dense data wants a large receptive field (Sec. IV-G1)
  } else {
    o.alpha = 0.5;
  }
  return o;
}

train::TrainConfig DefaultTrainConfig() {
  train::TrainConfig t;
  t.max_epochs = 30;
  t.batch_size = 128;
  t.lr = 1e-3f;
  t.patience = 3;
  t.max_prefixes_per_user = 4;
  t.grad_clip_norm = 5.0;
  t.seed = 97;
  return t;
}

train::TrainConfig BenchTrainConfig() {
  train::TrainConfig t = DefaultTrainConfig();
  // The benches trade a little convergence for wall-clock: fewer epochs
  // with a slightly hotter learning rate, applied identically to every
  // model so comparisons stay fair.
  // Fixed-budget training (patience >= max_epochs disables early stopping):
  // several baselines plateau for a few epochs before climbing, so a short
  // patience silently undertrains them and distorts the comparison.
  t.max_epochs = 12;
  t.patience = 12;
  t.lr = 2e-3f;
  return t;
}

double BenchDataScale(double base) {
  return base * train::TrainConfig::BenchScale();
}

std::string Fmt4(double v) { return FormatFloat(v, 4); }

namespace {

ExperimentResult RunPrepared(models::SequentialRecommender* model,
                             const data::SplitDataset& split,
                             const train::TrainConfig& train_config) {
  const auto start = std::chrono::steady_clock::now();
  train::Trainer trainer(train_config);
  const train::TrainResult r = trainer.Fit(model, split).value();
  const auto stop = std::chrono::steady_clock::now();
  ExperimentResult out;
  out.test = r.test;
  out.valid = r.valid;
  out.best_epoch = r.best_epoch;
  out.epochs_run = r.epochs_run;
  out.param_count = model->ParameterCount();
  out.seconds =
      std::chrono::duration<double>(stop - start).count();
  return out;
}

}  // namespace

ExperimentResult RunModel(const std::string& model_name,
                          const data::SplitDataset& split,
                          const models::ModelConfig& model_config,
                          const core::FilterMixerOptions& mixer_options,
                          const train::TrainConfig& train_config) {
  std::unique_ptr<models::SequentialRecommender> model =
      models::CreateModel(model_name, model_config, mixer_options);
  train::TrainConfig tc = train_config;
  // Per-model learning rates, mirroring the paper's per-baseline
  // hyper-parameter adoption: the RNN and CNN baselines need a hotter rate
  // to converge within the bench budget (GRU4Rec's original setup uses
  // far larger Adagrad steps than the transformers' Adam 1e-3).
  if (model_name == "GRU4Rec" || model_name == "Caser") {
    tc.lr = train_config.lr * 2.5f;
  }
  return RunPrepared(model.get(), split, tc);
}

ExperimentResult RunModel(const std::string& model_name,
                          const data::SplitDataset& split) {
  return RunModel(model_name, split, DefaultModelConfig(split),
                  DefaultMixerOptions(split.name()), BenchTrainConfig());
}

ExperimentResult RunSlimeVariant(const core::Slime4RecConfig& config,
                                 const data::SplitDataset& split,
                                 const train::TrainConfig& train_config) {
  core::Slime4Rec model(config);
  return RunPrepared(&model, split, train_config);
}

core::Slime4RecConfig MakeSlimeConfig(const models::ModelConfig& base,
                                      const core::FilterMixerOptions& mixer,
                                      bool use_contrastive) {
  core::Slime4RecConfig sc;
  static_cast<models::ModelConfig&>(sc) = base;
  sc.mixer = mixer;
  sc.use_contrastive = use_contrastive;
  return sc;
}

}  // namespace bench
}  // namespace slime
