#ifndef SLIME4REC_BENCH_UTIL_TABLE_PRINTER_H_
#define SLIME4REC_BENCH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace slime {
namespace bench {

/// Fixed-width console table used by every bench binary so the regenerated
/// tables read like the paper's. Columns auto-size to their widest cell.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  /// A horizontal rule between row groups.
  void AddSeparator();

  /// Renders to stdout.
  void Print() const;

  /// Renders to a string (tests).
  std::string ToString() const;

 private:
  size_t num_cols_;
  std::vector<std::vector<std::string>> rows_;  // empty row = separator
};

}  // namespace bench
}  // namespace slime

#endif  // SLIME4REC_BENCH_UTIL_TABLE_PRINTER_H_
