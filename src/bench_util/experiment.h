#ifndef SLIME4REC_BENCH_UTIL_EXPERIMENT_H_
#define SLIME4REC_BENCH_UTIL_EXPERIMENT_H_

#include <memory>
#include <string>

#include "core/slime4rec.h"
#include "data/synthetic.h"
#include "metrics/ranking.h"
#include "models/model_factory.h"
#include "train/trainer.h"

namespace slime {
namespace bench {

/// Outcome of one model-on-dataset run.
struct ExperimentResult {
  metrics::RankingMetrics test;
  metrics::RankingMetrics valid;
  int64_t best_epoch = 0;
  int64_t epochs_run = 0;
  int64_t param_count = 0;
  double seconds = 0.0;
};

/// Generates a preset dataset, applies the paper's 5-core filter and the
/// leave-one-out split.
data::SplitDataset BuildSplit(const data::SyntheticConfig& config,
                              int64_t max_prefixes_per_user = 4);

/// Per-dataset default model hyper-parameters used across the benches
/// (hidden 32, L = 2, N = 32 — 64 for the dense ml1m-sim — dropout 0.4,
/// InfoNCE temperature 0.2; see DESIGN.md, bench harness conventions).
models::ModelConfig DefaultModelConfig(const data::SplitDataset& split);

/// Per-dataset default SLIME4Rec mixer options; alpha follows the paper's
/// Fig. 4 optima (0.4 Beauty, 0.8 Clothing, 0.3 Sports, large for the
/// dense ML-1M).
core::FilterMixerOptions DefaultMixerOptions(const std::string& dataset_name);

/// Default training-loop settings shared by the benches.
train::TrainConfig DefaultTrainConfig();

/// Faster settings used by the table/figure bench binaries (fewer epochs,
/// tighter early stopping); still produces the paper's orderings at the
/// benches' reduced dataset scales.
train::TrainConfig BenchTrainConfig();

/// Dataset scale for a bench: `base` (the bench's own reduction) times the
/// user-controlled SLIME_BENCH_SCALE environment variable.
double BenchDataScale(double base);

/// Formats a metric to the paper's 4-decimal convention.
std::string Fmt4(double v);

/// Trains and evaluates one Table II model on `split` with the default
/// stack; `model_config`/`train_config` may be customised by the caller.
ExperimentResult RunModel(const std::string& model_name,
                          const data::SplitDataset& split,
                          const models::ModelConfig& model_config,
                          const core::FilterMixerOptions& mixer_options,
                          const train::TrainConfig& train_config);

/// Convenience overload with all defaults derived from the split.
ExperimentResult RunModel(const std::string& model_name,
                          const data::SplitDataset& split);

/// Trains an explicitly configured SLIME4Rec variant (ablations, slide
/// modes, alpha sweeps).
ExperimentResult RunSlimeVariant(const core::Slime4RecConfig& config,
                                 const data::SplitDataset& split,
                                 const train::TrainConfig& train_config);

/// Builds a Slime4RecConfig from shared options + mixer options.
core::Slime4RecConfig MakeSlimeConfig(const models::ModelConfig& base,
                                      const core::FilterMixerOptions& mixer,
                                      bool use_contrastive = true);

}  // namespace bench
}  // namespace slime

#endif  // SLIME4REC_BENCH_UTIL_EXPERIMENT_H_
