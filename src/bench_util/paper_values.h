#ifndef SLIME4REC_BENCH_UTIL_PAPER_VALUES_H_
#define SLIME4REC_BENCH_UTIL_PAPER_VALUES_H_

#include <string>
#include <vector>

namespace slime {
namespace bench {

/// Reference numbers transcribed from the paper, printed by the bench
/// binaries next to our measured values so EXPERIMENTS.md can record
/// paper-vs-measured per cell. Dataset keys use the paper's names
/// ("Beauty", "Clothing", "Sports", "ML-1M", "Yelp").

/// One Table II cell (a model on a dataset).
struct PaperMetrics {
  double hr5 = 0.0;
  double hr10 = 0.0;
  double ndcg5 = 0.0;
  double ndcg10 = 0.0;
};

/// Table II: returns nullptr when (dataset, model) is unknown.
const PaperMetrics* Table2Value(const std::string& dataset,
                                const std::string& model);

/// Paper's dataset column order.
std::vector<std::string> Table2Datasets();

/// Maps our synthetic preset names ("beauty-sim", ...) to the paper's
/// dataset names; returns the input unchanged when unknown.
std::string PaperDatasetName(const std::string& sim_name);

/// One Table I column.
struct PaperDatasetStats {
  long long users = 0;
  long long items = 0;
  double avg_length = 0.0;
  long long actions = 0;
  double sparsity = 0.0;  // fraction, e.g. 0.9993
};

/// Table I; nullptr when unknown.
const PaperDatasetStats* Table1Stats(const std::string& dataset);

/// Table IV (slide modes), HR@5 / NDCG@5 only as in the paper.
struct PaperModeMetrics {
  double hr5 = 0.0;
  double ndcg5 = 0.0;
};

/// `mode` in 1..4; nullptr when unknown.
const PaperModeMetrics* Table4Value(int mode, const std::string& dataset);

}  // namespace bench
}  // namespace slime

#endif  // SLIME4REC_BENCH_UTIL_PAPER_VALUES_H_
