#include "bench_util/table_printer.h"

#include <cstdio>
#include <sstream>

#include "common/macros.h"

namespace slime {
namespace bench {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : num_cols_(header.size()) {
  SLIME_CHECK_GT(num_cols_, 0u);
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SLIME_CHECK_EQ(cells.size(), num_cols_);
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(num_cols_, 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (size_t c = 0; c < num_cols_; ++c) {
      s += std::string(widths[c] + 2, '-') + "+";
    }
    return s + "\n";
  };
  std::ostringstream os;
  os << rule();
  bool printed_header = false;
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << rule();
      continue;
    }
    os << "|";
    for (size_t c = 0; c < num_cols_; ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
    if (!printed_header) {
      os << rule();
      printed_header = true;
    }
  }
  os << rule();
  return os.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace bench
}  // namespace slime
