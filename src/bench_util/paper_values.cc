#include "bench_util/paper_values.h"

#include <map>
#include <utility>

namespace slime {
namespace bench {
namespace {

using Table2Map =
    std::map<std::pair<std::string, std::string>, PaperMetrics>;

const Table2Map& Table2() {
  // Transcribed from the paper's Table II (HR@5, HR@10, NDCG@5, NDCG@10).
  // Note: the paper prints Yelp/BPR-MF NDCG@5 as 0.0760, which exceeds its
  // HR@5 and is an evident typo; we reproduce it verbatim.
  static const Table2Map* table = new Table2Map{
      {{"Beauty", "BPR-MF"}, {0.0120, 0.0299, 0.0040, 0.0053}},
      {{"Beauty", "GRU4Rec"}, {0.0164, 0.0365, 0.0086, 0.0142}},
      {{"Beauty", "Caser"}, {0.0259, 0.0418, 0.0127, 0.0253}},
      {{"Beauty", "SASRec"}, {0.0365, 0.0627, 0.0236, 0.0281}},
      {{"Beauty", "BERT4Rec"}, {0.0193, 0.0401, 0.0187, 0.0254}},
      {{"Beauty", "FMLP-Rec"}, {0.0398, 0.0632, 0.0258, 0.0333}},
      {{"Beauty", "CL4SRec"}, {0.0401, 0.0683, 0.0223, 0.0317}},
      {{"Beauty", "ContrastVAE"}, {0.0422, 0.0681, 0.0268, 0.0350}},
      {{"Beauty", "CoSeRec"}, {0.0537, 0.0752, 0.0361, 0.0430}},
      {{"Beauty", "DuoRec"}, {0.0546, 0.0845, 0.0352, 0.0443}},
      {{"Beauty", "SLIME4Rec"}, {0.0621, 0.0910, 0.0396, 0.0489}},

      {{"Clothing", "BPR-MF"}, {0.0067, 0.0094, 0.0052, 0.0069}},
      {{"Clothing", "GRU4Rec"}, {0.0095, 0.0165, 0.0061, 0.0083}},
      {{"Clothing", "Caser"}, {0.0108, 0.0174, 0.0067, 0.0098}},
      {{"Clothing", "SASRec"}, {0.0168, 0.0272, 0.0091, 0.0124}},
      {{"Clothing", "BERT4Rec"}, {0.0125, 0.0208, 0.0075, 0.0102}},
      {{"Clothing", "FMLP-Rec"}, {0.0126, 0.0206, 0.0082, 0.0107}},
      {{"Clothing", "CL4SRec"}, {0.0168, 0.0266, 0.0090, 0.0121}},
      {{"Clothing", "ContrastVAE"}, {0.0161, 0.0247, 0.0105, 0.0133}},
      {{"Clothing", "CoSeRec"}, {0.0175, 0.0279, 0.0095, 0.0131}},
      {{"Clothing", "DuoRec"}, {0.0193, 0.0302, 0.0113, 0.0148}},
      {{"Clothing", "SLIME4Rec"}, {0.0225, 0.0343, 0.0126, 0.0164}},

      {{"Sports", "BPR-MF"}, {0.0092, 0.0188, 0.0040, 0.0051}},
      {{"Sports", "GRU4Rec"}, {0.0137, 0.0274, 0.0096, 0.0137}},
      {{"Sports", "Caser"}, {0.0139, 0.0231, 0.0085, 0.0126}},
      {{"Sports", "SASRec"}, {0.0218, 0.0336, 0.0127, 0.0169}},
      {{"Sports", "BERT4Rec"}, {0.0176, 0.0326, 0.0105, 0.0153}},
      {{"Sports", "FMLP-Rec"}, {0.0218, 0.0344, 0.0144, 0.0185}},
      {{"Sports", "CL4SRec"}, {0.0227, 0.0374, 0.0129, 0.0197}},
      {{"Sports", "ContrastVAE"}, {0.0225, 0.0366, 0.0151, 0.0184}},
      {{"Sports", "CoSeRec"}, {0.0287, 0.0437, 0.0196, 0.0242}},
      {{"Sports", "DuoRec"}, {0.0326, 0.0498, 0.0208, 0.0262}},
      {{"Sports", "SLIME4Rec"}, {0.0373, 0.0565, 0.0243, 0.0305}},

      {{"ML-1M", "BPR-MF"}, {0.0078, 0.0162, 0.0052, 0.0079}},
      {{"ML-1M", "GRU4Rec"}, {0.0763, 0.1658, 0.0385, 0.0671}},
      {{"ML-1M", "Caser"}, {0.0816, 0.1593, 0.0372, 0.0624}},
      {{"ML-1M", "SASRec"}, {0.1087, 0.1904, 0.0638, 0.0910}},
      {{"ML-1M", "BERT4Rec"}, {0.0733, 0.1323, 0.0432, 0.0619}},
      {{"ML-1M", "FMLP-Rec"}, {0.1356, 0.2118, 0.0870, 0.1113}},
      {{"ML-1M", "CL4SRec"}, {0.1147, 0.1975, 0.0662, 0.0928}},
      {{"ML-1M", "ContrastVAE"}, {0.1406, 0.2220, 0.0895, 0.1157}},
      {{"ML-1M", "CoSeRec"}, {0.1262, 0.2212, 0.0761, 0.1021}},
      {{"ML-1M", "DuoRec"}, {0.2038, 0.2946, 0.1390, 0.1680}},
      {{"ML-1M", "SLIME4Rec"}, {0.2237, 0.3156, 0.1567, 0.1864}},

      {{"Yelp", "BPR-MF"}, {0.0127, 0.0245, 0.0760, 0.0119}},
      {{"Yelp", "GRU4Rec"}, {0.0152, 0.0263, 0.0104, 0.0137}},
      {{"Yelp", "Caser"}, {0.0156, 0.0252, 0.0096, 0.0129}},
      {{"Yelp", "SASRec"}, {0.0161, 0.0265, 0.0102, 0.0134}},
      {{"Yelp", "BERT4Rec"}, {0.0186, 0.0291, 0.0118, 0.0171}},
      {{"Yelp", "FMLP-Rec"}, {0.0179, 0.0304, 0.0113, 0.0153}},
      {{"Yelp", "CL4SRec"}, {0.0216, 0.0352, 0.0130, 0.0185}},
      {{"Yelp", "ContrastVAE"}, {0.0177, 0.0294, 0.0113, 0.0147}},
      {{"Yelp", "CoSeRec"}, {0.0241, 0.0395, 0.0151, 0.0205}},
      {{"Yelp", "DuoRec"}, {0.0441, 0.0631, 0.0325, 0.0386}},
      {{"Yelp", "SLIME4Rec"}, {0.0516, 0.0766, 0.0359, 0.0439}},
  };
  return *table;
}

}  // namespace

const PaperMetrics* Table2Value(const std::string& dataset,
                                const std::string& model) {
  const auto it = Table2().find({dataset, model});
  return it == Table2().end() ? nullptr : &it->second;
}

std::vector<std::string> Table2Datasets() {
  return {"Beauty", "Clothing", "Sports", "ML-1M", "Yelp"};
}

std::string PaperDatasetName(const std::string& sim_name) {
  if (sim_name == "beauty-sim") return "Beauty";
  if (sim_name == "clothing-sim") return "Clothing";
  if (sim_name == "sports-sim") return "Sports";
  if (sim_name == "ml1m-sim") return "ML-1M";
  if (sim_name == "yelp-sim") return "Yelp";
  return sim_name;
}

const PaperDatasetStats* Table1Stats(const std::string& dataset) {
  static const std::map<std::string, PaperDatasetStats>* table =
      new std::map<std::string, PaperDatasetStats>{
          {"Beauty", {22363, 12101, 8.9, 198502, 0.9993}},
          {"Clothing", {39387, 23033, 7.1, 278677, 0.9997}},
          {"Sports", {35598, 18357, 8.3, 296337, 0.9995}},
          {"ML-1M", {6041, 3417, 165.5, 999611, 0.9516}},
          {"Yelp", {30499, 20068, 10.4, 317182, 0.9995}},
      };
  const auto it = table->find(dataset);
  return it == table->end() ? nullptr : &it->second;
}

const PaperModeMetrics* Table4Value(int mode, const std::string& dataset) {
  static const std::map<std::pair<int, std::string>, PaperModeMetrics>*
      table = new std::map<std::pair<int, std::string>, PaperModeMetrics>{
          {{1, "Beauty"}, {0.0577, 0.0371}},
          {{1, "Clothing"}, {0.0216, 0.0120}},
          {{1, "Sports"}, {0.0360, 0.0239}},
          {{1, "ML-1M"}, {0.2086, 0.1432}},
          {{1, "Yelp"}, {0.0486, 0.0343}},
          {{2, "Beauty"}, {0.0563, 0.0360}},
          {{2, "Clothing"}, {0.0214, 0.0121}},
          {{2, "Sports"}, {0.0361, 0.0224}},
          {{2, "ML-1M"}, {0.2104, 0.1461}},
          {{2, "Yelp"}, {0.0489, 0.0346}},
          {{3, "Beauty"}, {0.0589, 0.0371}},
          {{3, "Clothing"}, {0.0220, 0.0123}},
          {{3, "Sports"}, {0.0367, 0.0233}},
          {{3, "ML-1M"}, {0.2108, 0.1455}},
          {{3, "Yelp"}, {0.0493, 0.0343}},
          {{4, "Beauty"}, {0.0621, 0.0396}},
          {{4, "Clothing"}, {0.0225, 0.0126}},
          {{4, "Sports"}, {0.0373, 0.0243}},
          {{4, "ML-1M"}, {0.2237, 0.1567}},
          {{4, "Yelp"}, {0.0516, 0.0359}},
      };
  const auto it = table->find({mode, dataset});
  return it == table->end() ? nullptr : &it->second;
}

}  // namespace bench
}  // namespace slime
