#include "models/duorec.h"

#include "autograd/ops.h"
#include "core/contrastive.h"

namespace slime {
namespace models {

autograd::Variable DuoRec::Loss(const data::Batch& batch) {
  using autograd::Add;
  using autograd::MulScalar;
  using autograd::Variable;
  Variable h = EncodeLast(batch.input_ids, batch.size);
  Variable rec = autograd::CrossEntropy(PredictLogits(h), batch.targets);
  SLIME_CHECK_MSG(!batch.positive_input_ids.empty(),
                  "DuoRec needs batch positives");
  // Unsupervised dropout view + supervised same-target view.
  Variable h_unsup = EncodeLast(batch.input_ids, batch.size);
  Variable h_sup = EncodeLast(batch.positive_input_ids, batch.size);
  Variable cl = core::InfoNceLoss(h_unsup, h_sup, config_.cl_temperature);
  return Add(rec, MulScalar(cl, config_.cl_weight));
}

}  // namespace models
}  // namespace slime
