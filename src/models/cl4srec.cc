#include "models/cl4srec.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "core/contrastive.h"

namespace slime {
namespace models {
namespace augment {

std::vector<int64_t> Crop(const std::vector<int64_t>& seq, double eta,
                          Rng* rng) {
  const int64_t n = static_cast<int64_t>(seq.size());
  if (n <= 1) return seq;
  const int64_t keep = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(eta * static_cast<double>(n))));
  const int64_t start = rng->UniformInt(0, n - keep);
  return std::vector<int64_t>(seq.begin() + start, seq.begin() + start + keep);
}

std::vector<int64_t> Mask(const std::vector<int64_t>& seq, double gamma,
                          Rng* rng) {
  std::vector<int64_t> out = seq;
  for (auto& v : out) {
    if (rng->Bernoulli(gamma)) v = 0;
  }
  return out;
}

std::vector<int64_t> Reorder(const std::vector<int64_t>& seq, double beta,
                             Rng* rng) {
  const int64_t n = static_cast<int64_t>(seq.size());
  if (n <= 1) return seq;
  const int64_t len = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(beta * static_cast<double>(n))));
  const int64_t start = rng->UniformInt(0, n - len);
  std::vector<int64_t> out = seq;
  // Fisher-Yates over the window.
  for (int64_t i = len - 1; i > 0; --i) {
    const int64_t j = rng->Uniform(i + 1);
    std::swap(out[start + i], out[start + j]);
  }
  return out;
}

}  // namespace augment

std::vector<int64_t> Cl4SRec::Augment(const std::vector<int64_t>& seq) {
  switch (rng_.Uniform(3)) {
    case 0:
      return augment::Crop(seq, 0.6, &rng_);
    case 1:
      return augment::Mask(seq, 0.3, &rng_);
    default:
      return augment::Reorder(seq, 0.6, &rng_);
  }
}

autograd::Variable Cl4SRec::EncodeAugmented(
    const std::vector<std::vector<int64_t>>& raw) {
  const int64_t n = config_.max_len;
  std::vector<int64_t> ids;
  ids.reserve(raw.size() * n);
  for (const auto& seq : raw) {
    const std::vector<int64_t> padded = data::PadTruncate(Augment(seq), n);
    ids.insert(ids.end(), padded.begin(), padded.end());
  }
  return EncodeLast(ids, static_cast<int64_t>(raw.size()));
}

autograd::Variable Cl4SRec::Loss(const data::Batch& batch) {
  using autograd::Add;
  using autograd::MulScalar;
  using autograd::Variable;
  Variable h = EncodeLast(batch.input_ids, batch.size);
  Variable rec = autograd::CrossEntropy(PredictLogits(h), batch.targets);
  Variable v1 = EncodeAugmented(batch.raw_prefixes);
  Variable v2 = EncodeAugmented(batch.raw_prefixes);
  Variable cl = core::InfoNceLoss(v1, v2, config_.cl_temperature);
  return Add(rec, MulScalar(cl, config_.cl_weight));
}

}  // namespace models
}  // namespace slime
