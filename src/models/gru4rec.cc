#include "models/gru4rec.h"

#include "autograd/ops.h"

namespace slime {
namespace models {

Gru4Rec::Gru4Rec(const ModelConfig& config) : SequentialRecommender(config) {
  const int64_t d = config.hidden_dim;
  item_emb_ = RegisterModule(
      "item_emb",
      std::make_shared<nn::Embedding>(config.num_items + 1, d, &rng_));
  emb_dropout_ = RegisterModule(
      "emb_dropout", std::make_shared<nn::Dropout>(config.emb_dropout));
  gru_ = RegisterModule("gru", std::make_shared<nn::Gru>(d, d, &rng_));
}

autograd::Variable Gru4Rec::EncodeLast(const std::vector<int64_t>& input_ids,
                                       int64_t batch_size) {
  autograd::Variable e =
      item_emb_->Forward(input_ids, {batch_size, config_.max_len});
  e = emb_dropout_->Forward(e, &rng_);
  return gru_->ForwardLast(e);
}

autograd::Variable Gru4Rec::Loss(const data::Batch& batch) {
  autograd::Variable h = EncodeLast(batch.input_ids, batch.size);
  autograd::Variable logits = autograd::MatMulTransB(h, item_emb_->weight());
  return autograd::CrossEntropy(logits, batch.targets);
}

Tensor Gru4Rec::ScoreAll(const data::Batch& batch) {
  autograd::Variable h = EncodeLast(batch.input_ids, batch.size);
  return autograd::MatMulTransB(h, item_emb_->weight()).value();
}

}  // namespace models
}  // namespace slime
