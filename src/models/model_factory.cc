#include "models/model_factory.h"

#include "models/bert4rec.h"
#include "models/bpr_mf.h"
#include "models/caser.h"
#include "models/cl4srec.h"
#include "models/contrast_vae.h"
#include "models/coserec.h"
#include "models/duorec.h"
#include "models/fmlp_rec.h"
#include "models/gru4rec.h"
#include "models/most_pop.h"
#include "models/sasrec.h"

namespace slime {
namespace models {

std::vector<std::string> AllModelNames() {
  return {"BPR-MF",   "GRU4Rec", "Caser",       "SASRec",
          "BERT4Rec", "FMLP-Rec", "CL4SRec",    "ContrastVAE",
          "CoSeRec",  "DuoRec",  "SLIME4Rec"};
}

std::unique_ptr<SequentialRecommender> CreateModel(
    const std::string& name, const ModelConfig& config,
    const core::FilterMixerOptions& slime_options) {
  if (name == "BPR-MF") return std::make_unique<BprMf>(config);
  // Extra (not part of the paper's Table II): popularity sanity floor.
  if (name == "MostPop") return std::make_unique<MostPop>(config);
  if (name == "GRU4Rec") return std::make_unique<Gru4Rec>(config);
  if (name == "Caser") return std::make_unique<Caser>(config);
  if (name == "SASRec") return std::make_unique<SasRec>(config);
  if (name == "BERT4Rec") return std::make_unique<Bert4Rec>(config);
  if (name == "FMLP-Rec") return std::make_unique<FmlpRec>(config);
  if (name == "CL4SRec") return std::make_unique<Cl4SRec>(config);
  if (name == "ContrastVAE") return std::make_unique<ContrastVae>(config);
  if (name == "CoSeRec") return std::make_unique<CoSeRec>(config);
  if (name == "DuoRec") return std::make_unique<DuoRec>(config);
  if (name == "SLIME4Rec") {
    core::Slime4RecConfig sc;
    static_cast<ModelConfig&>(sc) = config;
    sc.mixer = slime_options;
    sc.use_contrastive = true;
    return std::make_unique<core::Slime4Rec>(sc);
  }
  SLIME_CHECK_MSG(false, "unknown model name: " << name);
  return nullptr;
}

}  // namespace models
}  // namespace slime
