#ifndef SLIME4REC_MODELS_GRU4REC_H_
#define SLIME4REC_MODELS_GRU4REC_H_

#include <memory>
#include <string>

#include "models/recommender.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/gru.h"

namespace slime {
namespace models {

/// GRU4Rec (Hidasi et al. / Jannach & Ludewig): item embeddings fed through
/// a GRU; the final hidden state represents the user and scores items via
/// the tied embedding matrix.
class Gru4Rec : public SequentialRecommender {
 public:
  explicit Gru4Rec(const ModelConfig& config);

  autograd::Variable Loss(const data::Batch& batch) override;
  Tensor ScoreAll(const data::Batch& batch) override;
  std::string name() const override { return "GRU4Rec"; }

 private:
  autograd::Variable EncodeLast(const std::vector<int64_t>& input_ids,
                                int64_t batch_size);

  std::shared_ptr<nn::Embedding> item_emb_;
  std::shared_ptr<nn::Dropout> emb_dropout_;
  std::shared_ptr<nn::Gru> gru_;
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_GRU4REC_H_
