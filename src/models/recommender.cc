#include "models/recommender.h"

// The interface is header-only; this translation unit anchors the vtable.

namespace slime {
namespace models {}  // namespace models
}  // namespace slime
