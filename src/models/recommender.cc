#include "models/recommender.h"

#include "common/macros.h"

namespace slime {
namespace models {

ModelUseGuard::ModelUseGuard(SequentialRecommender* model, const char* what)
    : model_(model) {
  SLIME_CHECK(model != nullptr);
  const char* expected = nullptr;
  const bool acquired =
      model_->active_use().compare_exchange_strong(expected, what);
  SLIME_CHECK_MSG(acquired, "concurrent model use: cannot start "
                                << what << " while " << expected
                                << " is in progress on the same model");
}

ModelUseGuard::~ModelUseGuard() {
  model_->active_use().store(nullptr, std::memory_order_release);
}

}  // namespace models
}  // namespace slime
