#ifndef SLIME4REC_MODELS_CL4SREC_H_
#define SLIME4REC_MODELS_CL4SREC_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "models/sasrec.h"

namespace slime {
namespace models {

/// Sequence-level data augmentations of CL4SRec (Xie et al., ICDE'22).
namespace augment {

/// Keeps a random contiguous sub-sequence of relative length `eta`.
std::vector<int64_t> Crop(const std::vector<int64_t>& seq, double eta,
                          Rng* rng);

/// Replaces a random `gamma` fraction of items with the padding id 0.
std::vector<int64_t> Mask(const std::vector<int64_t>& seq, double gamma,
                          Rng* rng);

/// Shuffles a random contiguous sub-sequence of relative length `beta`.
std::vector<int64_t> Reorder(const std::vector<int64_t>& seq, double beta,
                             Rng* rng);

}  // namespace augment

/// CL4SRec: SASRec plus an InfoNCE objective between two data-augmented
/// views (crop / mask / reorder, one picked at random per view).
class Cl4SRec : public SasRec {
 public:
  explicit Cl4SRec(const ModelConfig& config) : SasRec(config) {}

  autograd::Variable Loss(const data::Batch& batch) override;
  std::string name() const override { return "CL4SRec"; }

 protected:
  /// Applies one of the augmentation operators chosen uniformly.
  virtual std::vector<int64_t> Augment(const std::vector<int64_t>& seq);

  /// Encodes a list of raw (unpadded) sequences after augmentation.
  autograd::Variable EncodeAugmented(
      const std::vector<std::vector<int64_t>>& raw);
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_CL4SREC_H_
