#include "models/most_pop.h"

#include "autograd/variable.h"

namespace slime {
namespace models {

MostPop::MostPop(const ModelConfig& config)
    : SequentialRecommender(config),
      popularity_(config.num_items + 1, 0.0f) {}

void MostPop::Prepare(const data::SplitDataset& split) {
  popularity_.assign(config_.num_items + 1, 0.0f);
  for (const auto& region : split.train_region()) {
    for (int64_t item : region) {
      popularity_[item] += 1.0f;
    }
  }
  popularity_[0] = 0.0f;
}

int64_t MostPop::Frequency(int64_t item) const {
  if (item < 1 || item >= static_cast<int64_t>(popularity_.size())) return 0;
  return static_cast<int64_t>(popularity_[item]);
}

autograd::Variable MostPop::Loss(const data::Batch& batch) {
  // Nothing to learn; a constant zero keeps the trainer loop happy.
  (void)batch;
  return autograd::Constant(Tensor::Scalar(0.0f));
}

Tensor MostPop::ScoreAll(const data::Batch& batch) {
  Tensor scores({batch.size, config_.num_items + 1});
  float* p = scores.data();
  for (int64_t i = 0; i < batch.size; ++i) {
    std::copy(popularity_.begin(), popularity_.end(),
              p + i * (config_.num_items + 1));
  }
  return scores;
}

}  // namespace models
}  // namespace slime
