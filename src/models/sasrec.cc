#include "models/sasrec.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace slime {
namespace models {

SasRec::SasRec(const ModelConfig& config) : SequentialRecommender(config) {
  const int64_t d = config.hidden_dim;
  const int64_t n = config.max_len;
  item_emb_ = RegisterModule(
      "item_emb",
      std::make_shared<nn::Embedding>(config.num_items + 1, d, &rng_));
  pos_emb_ = RegisterParameter(
      "pos_emb", autograd::Param(nn::NormalInit({n, d}, &rng_, 0.02f)));
  emb_norm_ = RegisterModule("emb_norm", std::make_shared<nn::LayerNorm>(d));
  emb_dropout_ = RegisterModule(
      "emb_dropout", std::make_shared<nn::Dropout>(config.emb_dropout));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    Block b;
    b.attn = RegisterModule(
        "attn" + std::to_string(l),
        std::make_shared<nn::MultiHeadSelfAttention>(d, config.num_heads,
                                                     config.dropout, &rng_));
    b.attn_norm = RegisterModule("attn_norm" + std::to_string(l),
                                 std::make_shared<nn::LayerNorm>(d));
    b.ffn = RegisterModule(
        "ffn" + std::to_string(l),
        std::make_shared<nn::FeedForward>(d, config.dropout, &rng_));
    b.ffn_norm = RegisterModule("ffn_norm" + std::to_string(l),
                                std::make_shared<nn::LayerNorm>(d));
    blocks_.push_back(std::move(b));
  }
}

Tensor SasRec::PaddingMask(const std::vector<int64_t>& input_ids,
                           int64_t batch_size) const {
  const int64_t n = config_.max_len;
  Tensor mask({batch_size, n});
  float* p = mask.data();
  for (int64_t i = 0; i < batch_size * n; ++i) {
    p[i] = input_ids[i] == 0 ? -1e9f : 0.0f;
  }
  return mask;
}

autograd::Variable SasRec::Encode(const std::vector<int64_t>& input_ids,
                                  int64_t batch_size) {
  using autograd::Add;
  using autograd::Variable;
  const int64_t n = config_.max_len;
  SLIME_CHECK_EQ(static_cast<int64_t>(input_ids.size()), batch_size * n);
  Variable e = item_emb_->Forward(input_ids, {batch_size, n});
  e = Add(e, pos_emb_);
  e = emb_norm_->Forward(e);
  e = emb_dropout_->Forward(e, &rng_);
  const Tensor padding = PaddingMask(input_ids, batch_size);
  Variable h = e;
  for (const auto& b : blocks_) {
    Variable a = b.attn->Forward(h, /*causal=*/true, padding, &rng_);
    h = b.attn_norm->Forward(Add(h, a));
    Variable f = b.ffn->Forward(h, &rng_);
    h = b.ffn_norm->Forward(Add(h, f));
  }
  return h;
}

autograd::Variable SasRec::EncodeLast(const std::vector<int64_t>& input_ids,
                                      int64_t batch_size) {
  using autograd::Reshape;
  using autograd::Slice;
  const int64_t n = config_.max_len;
  autograd::Variable h = Encode(input_ids, batch_size);
  return Reshape(Slice(h, 1, n - 1, n), {batch_size, config_.hidden_dim});
}

autograd::Variable SasRec::PredictLogits(const autograd::Variable& h) const {
  return autograd::MatMulTransB(h, item_emb_->weight());
}

autograd::Variable SasRec::PerPositionLoss(const data::Batch& batch) {
  using autograd::Reshape;
  const int64_t n = config_.max_len;
  // Position t predicts the item at t+1; the final position predicts the
  // held-out target. Padding positions contribute nothing.
  constexpr int64_t kIgnore = -100;
  std::vector<int64_t> labels(batch.size * n, kIgnore);
  for (int64_t i = 0; i < batch.size; ++i) {
    for (int64_t t = 0; t + 1 < n; ++t) {
      // Supervise only positions with real context: a padding position
      // "predicting" the first real item has nothing to condition on.
      if (batch.input_ids[i * n + t] == 0) continue;
      const int64_t next = batch.input_ids[i * n + t + 1];
      if (next != 0) labels[i * n + t] = next;
    }
    labels[i * n + n - 1] = batch.targets[i];
  }
  autograd::Variable h = Encode(batch.input_ids, batch.size);
  autograd::Variable logits = autograd::MatMulTransB(
      Reshape(h, {batch.size * n, config_.hidden_dim}),
      item_emb_->weight());
  return autograd::CrossEntropy(logits, labels, kIgnore);
}

autograd::Variable SasRec::Loss(const data::Batch& batch) {
  if (config_.per_position_loss) return PerPositionLoss(batch);
  autograd::Variable h = EncodeLast(batch.input_ids, batch.size);
  return autograd::CrossEntropy(PredictLogits(h), batch.targets);
}

Tensor SasRec::ScoreAll(const data::Batch& batch) {
  autograd::Variable h = EncodeLast(batch.input_ids, batch.size);
  return PredictLogits(h).value();
}

}  // namespace models
}  // namespace slime
