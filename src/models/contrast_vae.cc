#include "models/contrast_vae.h"

#include "autograd/ops.h"
#include "core/contrastive.h"

namespace slime {
namespace models {

ContrastVae::ContrastVae(const ModelConfig& config) : SasRec(config) {
  mu_head_ = RegisterModule(
      "mu_head",
      std::make_shared<nn::Linear>(config.hidden_dim, config.hidden_dim,
                                   &rng_));
  logvar_head_ = RegisterModule(
      "logvar_head",
      std::make_shared<nn::Linear>(config.hidden_dim, config.hidden_dim,
                                   &rng_));
}

autograd::Variable ContrastVae::SampleLatent(
    const autograd::Variable& mu, const autograd::Variable& logvar) {
  using autograd::Add;
  using autograd::Exp;
  using autograd::Mul;
  using autograd::MulConst;
  using autograd::MulScalar;
  autograd::Variable std_dev = Exp(MulScalar(logvar, 0.5f));
  const Tensor eps = Tensor::Randn(mu.value().shape(), &rng_, 1.0f);
  return Add(mu, MulConst(std_dev, eps));
}

autograd::Variable ContrastVae::Loss(const data::Batch& batch) {
  using autograd::Add;
  using autograd::AddScalar;
  using autograd::CrossEntropy;
  using autograd::Exp;
  using autograd::Mean;
  using autograd::Mul;
  using autograd::MulScalar;
  using autograd::Neg;
  using autograd::Sub;
  using autograd::Variable;
  Variable h = EncodeLast(batch.input_ids, batch.size);
  Variable mu = mu_head_->Forward(h);
  Variable logvar = logvar_head_->Forward(h);
  // Two variationally augmented views.
  Variable z1 = SampleLatent(mu, logvar);
  Variable z2 = SampleLatent(mu, logvar);
  Variable rec1 = CrossEntropy(PredictLogits(z1), batch.targets);
  Variable rec2 = CrossEntropy(PredictLogits(z2), batch.targets);
  Variable rec = MulScalar(Add(rec1, rec2), 0.5f);
  // KL(q || N(0, I)) = -0.5 * mean(1 + logvar - mu^2 - exp(logvar)).
  Variable kl = MulScalar(
      Neg(Mean(Sub(AddScalar(logvar, 1.0f), Add(Mul(mu, mu), Exp(logvar))))),
      0.5f);
  Variable cl = core::InfoNceLoss(z1, z2, config_.cl_temperature);
  return Add(rec, Add(MulScalar(kl, kl_weight_),
                      MulScalar(cl, config_.cl_weight)));
}

Tensor ContrastVae::ScoreAll(const data::Batch& batch) {
  // Deterministic inference: score with the posterior mean.
  autograd::Variable h = EncodeLast(batch.input_ids, batch.size);
  autograd::Variable mu = mu_head_->Forward(h);
  return PredictLogits(mu).value();
}

}  // namespace models
}  // namespace slime
