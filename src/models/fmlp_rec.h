#ifndef SLIME4REC_MODELS_FMLP_REC_H_
#define SLIME4REC_MODELS_FMLP_REC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/filter_mixer.h"
#include "models/recommender.h"
#include "nn/embedding.h"

namespace slime {
namespace models {

/// FMLP-Rec (Zhou et al., WWW'22): the all-MLP frequency baseline. Each
/// block multiplies the full spectrum by one global learnable filter (no
/// frequency windows, no static branch — the alpha = 1 degenerate case of
/// SLIME4Rec's mixer, as the paper notes below Eq. 20) followed by the
/// point-wise FFN with standard residual connections.
class FmlpRec : public SequentialRecommender {
 public:
  explicit FmlpRec(const ModelConfig& config);

  autograd::Variable Loss(const data::Batch& batch) override;
  Tensor ScoreAll(const data::Batch& batch) override;
  std::string name() const override { return "FMLP-Rec"; }

  autograd::Variable EncodeLast(const std::vector<int64_t>& input_ids,
                                int64_t batch_size);

 private:
  std::shared_ptr<nn::Embedding> item_emb_;
  autograd::Variable pos_emb_;
  std::shared_ptr<nn::LayerNorm> emb_norm_;
  std::shared_ptr<nn::Dropout> emb_dropout_;
  struct Block {
    std::shared_ptr<core::FilterMixerLayer> filter;
    std::shared_ptr<nn::FeedForward> ffn;
    std::shared_ptr<nn::LayerNorm> ffn_norm;
  };
  std::vector<Block> blocks_;
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_FMLP_REC_H_
