#ifndef SLIME4REC_MODELS_BPR_MF_H_
#define SLIME4REC_MODELS_BPR_MF_H_

#include <memory>
#include <string>

#include "models/recommender.h"
#include "nn/embedding.h"

namespace slime {
namespace models {

/// BPR-MF (Rendle et al., 2012): non-sequential matrix factorisation
/// trained with the pairwise Bayesian Personalised Ranking loss
///   -log sigmoid(x_u . (v_pos - v_neg)),
/// with one uniformly sampled negative per positive. The paper's weakest
/// baseline; it ignores all sequential structure.
class BprMf : public SequentialRecommender {
 public:
  explicit BprMf(const ModelConfig& config);

  autograd::Variable Loss(const data::Batch& batch) override;
  Tensor ScoreAll(const data::Batch& batch) override;
  std::string name() const override { return "BPR-MF"; }

 private:
  std::shared_ptr<nn::Embedding> user_emb_;
  std::shared_ptr<nn::Embedding> item_emb_;
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_BPR_MF_H_
