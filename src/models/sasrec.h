#ifndef SLIME4REC_MODELS_SASREC_H_
#define SLIME4REC_MODELS_SASREC_H_

#include <memory>
#include <string>
#include <vector>

#include "models/recommender.h"
#include "nn/attention.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/feed_forward.h"
#include "nn/layer_norm.h"

namespace slime {
namespace models {

/// SASRec (Kang & McAuley, ICDM'18): causal multi-head self-attention
/// encoder trained with next-item cross-entropy at the last position,
/// scoring through the tied item-embedding matrix. Also the backbone that
/// CL4SRec, CoSeRec, DuoRec and ContrastVAE subclass.
class SasRec : public SequentialRecommender {
 public:
  explicit SasRec(const ModelConfig& config);

  autograd::Variable Loss(const data::Batch& batch) override;
  Tensor ScoreAll(const data::Batch& batch) override;
  std::string name() const override { return "SASRec"; }

  /// Encoder: embedding + L causal attention blocks; (B, N, d).
  autograd::Variable Encode(const std::vector<int64_t>& input_ids,
                            int64_t batch_size);

  /// Last-position representation (B, d).
  autograd::Variable EncodeLast(const std::vector<int64_t>& input_ids,
                                int64_t batch_size);

  /// Tied-embedding logits (B, num_items + 1).
  autograd::Variable PredictLogits(const autograd::Variable& h) const;

  /// Cross-entropy over every valid position of the batch (the original
  /// SASRec objective); used when config.per_position_loss is set.
  autograd::Variable PerPositionLoss(const data::Batch& batch);

 protected:
  /// Additive key-padding mask (B, N): 0 for real items, -1e9 for pads.
  Tensor PaddingMask(const std::vector<int64_t>& input_ids,
                     int64_t batch_size) const;

  std::shared_ptr<nn::Embedding> item_emb_;
  autograd::Variable pos_emb_;
  std::shared_ptr<nn::LayerNorm> emb_norm_;
  std::shared_ptr<nn::Dropout> emb_dropout_;
  struct Block {
    std::shared_ptr<nn::MultiHeadSelfAttention> attn;
    std::shared_ptr<nn::LayerNorm> attn_norm;
    std::shared_ptr<nn::FeedForward> ffn;
    std::shared_ptr<nn::LayerNorm> ffn_norm;
  };
  std::vector<Block> blocks_;
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_SASREC_H_
