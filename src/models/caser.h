#ifndef SLIME4REC_MODELS_CASER_H_
#define SLIME4REC_MODELS_CASER_H_

#include <memory>
#include <string>

#include "models/recommender.h"
#include "nn/conv.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace slime {
namespace models {

/// Caser (Tang & Wang, WSDM'18): treats the embedded sequence as an
/// "image" and applies horizontal convolutions (union-level patterns,
/// max-pooled over time) and vertical convolutions (point-level weighted
/// sums), concatenated with a user embedding and projected to the scoring
/// space.
class Caser : public SequentialRecommender {
 public:
  explicit Caser(const ModelConfig& config);

  autograd::Variable Loss(const data::Batch& batch) override;
  Tensor ScoreAll(const data::Batch& batch) override;
  std::string name() const override { return "Caser"; }

 private:
  autograd::Variable EncodeLast(const data::Batch& batch);

  std::shared_ptr<nn::Embedding> item_emb_;
  std::shared_ptr<nn::Embedding> user_emb_;
  std::shared_ptr<nn::Dropout> dropout_;
  std::shared_ptr<nn::HorizontalConvBank> horizontal_;
  std::shared_ptr<nn::VerticalConv> vertical_;
  std::shared_ptr<nn::Linear> fc_;       // conv features -> d
  std::shared_ptr<nn::Linear> out_;      // [z ; user] -> d
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_CASER_H_
