#ifndef SLIME4REC_MODELS_RECOMMENDER_H_
#define SLIME4REC_MODELS_RECOMMENDER_H_

#include <atomic>
#include <string>

#include "autograd/variable.h"
#include "data/batcher.h"
#include "nn/module.h"

namespace slime {
namespace models {

/// Hyper-parameters shared by every sequential model in the zoo. Slime4Rec
/// extends this with its filter options (core/slime4rec.h).
struct ModelConfig {
  int64_t num_items = 0;   // real items; ids 1..num_items, 0 = padding
  int64_t num_users = 0;   // needed by BPR-MF and Caser
  int64_t max_len = 32;    // N, the truncation length (Eq. 1)
  int64_t hidden_dim = 32;  // d
  int64_t num_layers = 2;   // L
  int64_t num_heads = 2;    // attention heads (SASRec family)
  float dropout = 0.2f;
  float emb_dropout = 0.2f;
  /// Contrastive-learning strength lambda (Eq. 36) and InfoNCE temperature.
  float cl_weight = 0.1f;
  float cl_temperature = 0.5f;
  /// Train with cross-entropy at every sequence position (SASRec's
  /// original sequence-to-sequence objective) instead of the last position
  /// only. Only valid for causal encoders: the filter mixer (and FMLP) mix
  /// the whole sequence in the frequency domain, so a per-position loss
  /// would leak each label into its own input representation.
  bool per_position_loss = false;
  uint64_t seed = 7;
};

/// Common interface of the eleven models in Table II. Training code builds
/// batches, calls Loss() (which constructs an autograd graph using the
/// model's internal RNG for dropout/augmentation), backpropagates, and
/// steps an optimizer over Parameters(). Evaluation calls ScoreAll() in
/// eval mode.
class SequentialRecommender : public nn::Module {
 public:
  explicit SequentialRecommender(const ModelConfig& config)
      : config_(config), rng_(config.seed) {}

  /// The training objective for one batch (a scalar Variable).
  virtual autograd::Variable Loss(const data::Batch& batch) = 0;

  /// Scores every item for each sequence in the batch:
  /// (B, num_items + 1), column 0 being the padding pseudo-item.
  virtual Tensor ScoreAll(const data::Batch& batch) = 0;

  virtual std::string name() const = 0;

  /// Hook invoked by the trainer before the first epoch with the full
  /// training split; models that precompute dataset-level structures
  /// (e.g. CoSeRec's item-correlation table) override this.
  virtual void Prepare(const data::SplitDataset& split) { (void)split; }

  /// Whether Loss() consumes batch.positive_input_ids (DuoRec-style
  /// supervised contrastive positives); the trainer asks this to decide
  /// whether the batcher must materialise positives.
  virtual bool needs_positives() const { return false; }

  const ModelConfig& config() const { return config_; }
  Rng* rng() { return &rng_; }

  /// Concurrent-use detector (see ModelUseGuard). Models are stateful
  /// during both training (autograd graphs, RNG draws) and inference
  /// (SetTraining toggles, RNG for augmentation-based models), so no two
  /// guarded activities may overlap on one instance — in particular a
  /// RecommendationService call racing a Trainer::Fit on the same model.
  /// Best-effort: two activities starting in the same instant may both
  /// pass, but any sustained overlap (the realistic bug) is caught. Two
  /// cheap atomic ops per guarded call, so it stays on in release builds,
  /// matching the SLIME_CHECK philosophy.
  std::atomic<const char*>& active_use() { return active_use_; }

 protected:
  ModelConfig config_;
  Rng rng_;

 private:
  std::atomic<const char*> active_use_{nullptr};
};

/// RAII scope marking a model as exclusively in use for `what` ("training",
/// "serving"); aborts via SLIME_CHECK if the model is already inside
/// another guarded scope. Taken by Trainer::Fit around the whole run and by
/// RecommendationService around each model interaction.
class ModelUseGuard {
 public:
  ModelUseGuard(SequentialRecommender* model, const char* what);
  ~ModelUseGuard();
  ModelUseGuard(const ModelUseGuard&) = delete;
  ModelUseGuard& operator=(const ModelUseGuard&) = delete;

 private:
  SequentialRecommender* model_;
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_RECOMMENDER_H_
