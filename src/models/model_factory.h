#ifndef SLIME4REC_MODELS_MODEL_FACTORY_H_
#define SLIME4REC_MODELS_MODEL_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/slime4rec.h"
#include "models/recommender.h"

namespace slime {
namespace models {

/// Names of the eleven models of Table II, in the paper's column order.
std::vector<std::string> AllModelNames();

/// Instantiates a model by its Table II name ("BPR-MF", "GRU4Rec",
/// "Caser", "SASRec", "BERT4Rec", "FMLP-Rec", "CL4SRec", "ContrastVAE",
/// "CoSeRec", "DuoRec", "SLIME4Rec"). For SLIME4Rec, `slime_options`
/// configures the filter mixer; it is ignored for every other model.
std::unique_ptr<SequentialRecommender> CreateModel(
    const std::string& name, const ModelConfig& config,
    const core::FilterMixerOptions& slime_options = {});

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_MODEL_FACTORY_H_
