#ifndef SLIME4REC_MODELS_COSEREC_H_
#define SLIME4REC_MODELS_COSEREC_H_

#include <string>
#include <vector>

#include "models/cl4srec.h"

namespace slime {
namespace models {

/// CoSeRec (Liu et al., 2021): CL4SRec with two additional *informative*
/// augmentations that use item correlations learned from the training
/// data — Substitute (swap an item for its most co-occurring peer) and
/// Insert (inject a correlated item next to an anchor). The correlation
/// table is a co-occurrence count over training sequences within a small
/// window, fitted in Prepare().
class CoSeRec : public Cl4SRec {
 public:
  explicit CoSeRec(const ModelConfig& config) : Cl4SRec(config) {}

  std::string name() const override { return "CoSeRec"; }

  void Prepare(const data::SplitDataset& split) override;

  /// Most-correlated item of `item` (0 when unknown). Exposed for tests.
  int64_t MostCorrelated(int64_t item) const;

 protected:
  std::vector<int64_t> Augment(const std::vector<int64_t>& seq) override;

  std::vector<int64_t> Substitute(const std::vector<int64_t>& seq);
  std::vector<int64_t> Insert(const std::vector<int64_t>& seq);

 private:
  /// correlated_[v] = the item most frequently co-occurring with v within
  /// a +/-2 window in training sequences (0 = none observed).
  std::vector<int64_t> correlated_;
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_COSEREC_H_
