#ifndef SLIME4REC_MODELS_BERT4REC_H_
#define SLIME4REC_MODELS_BERT4REC_H_

#include <memory>
#include <string>
#include <vector>

#include "models/recommender.h"
#include "nn/attention.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/feed_forward.h"
#include "nn/layer_norm.h"

namespace slime {
namespace models {

/// BERT4Rec (Sun et al., CIKM'19): bidirectional self-attention trained
/// with the Cloze (masked item) objective. Item id num_items+1 is the
/// [MASK] token. Inference appends [MASK] after the sequence and predicts
/// at that position.
class Bert4Rec : public SequentialRecommender {
 public:
  explicit Bert4Rec(const ModelConfig& config);

  autograd::Variable Loss(const data::Batch& batch) override;
  Tensor ScoreAll(const data::Batch& batch) override;
  std::string name() const override { return "BERT4Rec"; }

 private:
  autograd::Variable Encode(const std::vector<int64_t>& input_ids,
                            int64_t batch_size);

  int64_t mask_token() const { return config_.num_items + 1; }

  float mask_prob_ = 0.3f;
  std::shared_ptr<nn::Embedding> item_emb_;  // vocab = num_items + 2
  autograd::Variable pos_emb_;
  std::shared_ptr<nn::LayerNorm> emb_norm_;
  std::shared_ptr<nn::Dropout> emb_dropout_;
  struct Block {
    std::shared_ptr<nn::MultiHeadSelfAttention> attn;
    std::shared_ptr<nn::LayerNorm> attn_norm;
    std::shared_ptr<nn::FeedForward> ffn;
    std::shared_ptr<nn::LayerNorm> ffn_norm;
  };
  std::vector<Block> blocks_;
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_BERT4REC_H_
