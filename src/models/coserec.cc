#include "models/coserec.h"

#include <unordered_map>

namespace slime {
namespace models {

void CoSeRec::Prepare(const data::SplitDataset& split) {
  const int64_t v = config_.num_items;
  std::vector<std::unordered_map<int64_t, int64_t>> counts(v + 1);
  constexpr int64_t kWindow = 2;
  for (const auto& seq : split.train_region()) {
    const int64_t n = static_cast<int64_t>(seq.size());
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j <= std::min(n - 1, i + kWindow); ++j) {
        if (seq[i] == seq[j]) continue;
        ++counts[seq[i]][seq[j]];
        ++counts[seq[j]][seq[i]];
      }
    }
  }
  correlated_.assign(v + 1, 0);
  for (int64_t item = 1; item <= v; ++item) {
    int64_t best = 0;
    int64_t best_count = 0;
    for (const auto& [peer, c] : counts[item]) {
      if (c > best_count || (c == best_count && peer < best)) {
        best = peer;
        best_count = c;
      }
    }
    correlated_[item] = best;
  }
}

int64_t CoSeRec::MostCorrelated(int64_t item) const {
  if (correlated_.empty() || item < 1 ||
      item >= static_cast<int64_t>(correlated_.size())) {
    return 0;
  }
  return correlated_[item];
}

std::vector<int64_t> CoSeRec::Substitute(const std::vector<int64_t>& seq) {
  std::vector<int64_t> out = seq;
  if (out.empty()) return out;
  const int64_t pos = rng_.Uniform(out.size());
  const int64_t peer = MostCorrelated(out[pos]);
  if (peer != 0) out[pos] = peer;
  return out;
}

std::vector<int64_t> CoSeRec::Insert(const std::vector<int64_t>& seq) {
  std::vector<int64_t> out = seq;
  if (out.empty()) return out;
  const int64_t pos = rng_.Uniform(out.size());
  const int64_t peer = MostCorrelated(out[pos]);
  if (peer != 0) {
    out.insert(out.begin() + pos + 1, peer);
  }
  return out;
}

std::vector<int64_t> CoSeRec::Augment(const std::vector<int64_t>& seq) {
  // Five operators: the CL4SRec trio plus the correlation-informed pair.
  switch (rng_.Uniform(5)) {
    case 0:
      return augment::Crop(seq, 0.6, &rng_);
    case 1:
      return augment::Mask(seq, 0.3, &rng_);
    case 2:
      return augment::Reorder(seq, 0.6, &rng_);
    case 3:
      return Substitute(seq);
    default:
      return Insert(seq);
  }
}

}  // namespace models
}  // namespace slime
