#ifndef SLIME4REC_MODELS_CONTRAST_VAE_H_
#define SLIME4REC_MODELS_CONTRAST_VAE_H_

#include <memory>
#include <string>

#include "models/sasrec.h"
#include "nn/linear.h"

namespace slime {
namespace models {

/// ContrastVAE (Wang et al., CIKM'22), simplified to its load-bearing
/// parts: a SASRec encoder feeding Gaussian posterior heads
/// (mu, log-variance), reparameterised latent user representations, an
/// ELBO objective (reconstruction cross-entropy + KL to the standard
/// normal), and a contrastive term between two sampled latents of the same
/// sequence (variational augmentation).
class ContrastVae : public SasRec {
 public:
  explicit ContrastVae(const ModelConfig& config);

  autograd::Variable Loss(const data::Batch& batch) override;
  Tensor ScoreAll(const data::Batch& batch) override;
  std::string name() const override { return "ContrastVAE"; }

 private:
  /// Samples z = mu + exp(0.5 * logvar) . eps with fresh Gaussian noise.
  autograd::Variable SampleLatent(const autograd::Variable& mu,
                                  const autograd::Variable& logvar);

  float kl_weight_ = 0.01f;
  std::shared_ptr<nn::Linear> mu_head_;
  std::shared_ptr<nn::Linear> logvar_head_;
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_CONTRAST_VAE_H_
