#include "models/fmlp_rec.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace slime {
namespace models {

FmlpRec::FmlpRec(const ModelConfig& config) : SequentialRecommender(config) {
  SLIME_CHECK_MSG(!config.per_position_loss,
                  "FMLP-Rec's global filter is non-causal; per-position "
                  "training would leak labels");
  const int64_t d = config.hidden_dim;
  const int64_t n = config.max_len;
  item_emb_ = RegisterModule(
      "item_emb",
      std::make_shared<nn::Embedding>(config.num_items + 1, d, &rng_));
  pos_emb_ = RegisterParameter(
      "pos_emb", autograd::Param(nn::NormalInit({n, d}, &rng_, 0.02f)));
  emb_norm_ = RegisterModule("emb_norm", std::make_shared<nn::LayerNorm>(d));
  emb_dropout_ = RegisterModule(
      "emb_dropout", std::make_shared<nn::Dropout>(config.emb_dropout));
  // Global filter = the filter mixer with alpha = 1, full spectrum, DFS
  // only.
  core::FilterMixerOptions options;
  options.alpha = 1.0;
  options.use_dynamic = true;
  options.use_static = false;
  options.full_spectrum = true;
  for (int64_t l = 0; l < config.num_layers; ++l) {
    Block b;
    b.filter = RegisterModule(
        "filter" + std::to_string(l),
        std::make_shared<core::FilterMixerLayer>(n, d, config.num_layers, l,
                                                 options, config.dropout,
                                                 &rng_));
    b.ffn = RegisterModule(
        "ffn" + std::to_string(l),
        std::make_shared<nn::FeedForward>(d, config.dropout, &rng_));
    b.ffn_norm = RegisterModule("ffn_norm" + std::to_string(l),
                                std::make_shared<nn::LayerNorm>(d));
    blocks_.push_back(std::move(b));
  }
}

autograd::Variable FmlpRec::EncodeLast(const std::vector<int64_t>& input_ids,
                                       int64_t batch_size) {
  using autograd::Add;
  using autograd::Reshape;
  using autograd::Slice;
  using autograd::Variable;
  const int64_t n = config_.max_len;
  Variable e = item_emb_->Forward(input_ids, {batch_size, n});
  e = Add(e, pos_emb_);
  e = emb_norm_->Forward(e);
  e = emb_dropout_->Forward(e, &rng_);
  Variable h = e;
  for (const auto& b : blocks_) {
    Variable filtered = b.filter->Forward(h, &rng_);  // includes residual+LN
    Variable f = b.ffn->Forward(filtered, &rng_);
    h = b.ffn_norm->Forward(Add(filtered, f));
  }
  return Reshape(Slice(h, 1, n - 1, n), {batch_size, config_.hidden_dim});
}

autograd::Variable FmlpRec::Loss(const data::Batch& batch) {
  autograd::Variable h = EncodeLast(batch.input_ids, batch.size);
  autograd::Variable logits = autograd::MatMulTransB(h, item_emb_->weight());
  return autograd::CrossEntropy(logits, batch.targets);
}

Tensor FmlpRec::ScoreAll(const data::Batch& batch) {
  autograd::Variable h = EncodeLast(batch.input_ids, batch.size);
  return autograd::MatMulTransB(h, item_emb_->weight()).value();
}

}  // namespace models
}  // namespace slime
