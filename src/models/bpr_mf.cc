#include "models/bpr_mf.h"

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace models {

BprMf::BprMf(const ModelConfig& config) : SequentialRecommender(config) {
  SLIME_CHECK_GT(config.num_users, 0);
  user_emb_ = RegisterModule(
      "user_emb", std::make_shared<nn::Embedding>(config.num_users,
                                                  config.hidden_dim, &rng_));
  item_emb_ = RegisterModule(
      "item_emb", std::make_shared<nn::Embedding>(config.num_items + 1,
                                                  config.hidden_dim, &rng_));
}

autograd::Variable BprMf::Loss(const data::Batch& batch) {
  using autograd::AddScalar;
  using autograd::Log;
  using autograd::Mean;
  using autograd::Mul;
  using autograd::Neg;
  using autograd::Sigmoid;
  using autograd::Sub;
  using autograd::SumAxis;
  using autograd::Variable;
  // One uniformly sampled negative per positive (avoiding the positive).
  std::vector<int64_t> negatives(batch.size);
  for (int64_t i = 0; i < batch.size; ++i) {
    int64_t neg = rng_.UniformInt(1, config_.num_items);
    while (neg == batch.targets[i]) {
      neg = rng_.UniformInt(1, config_.num_items);
    }
    negatives[i] = neg;
  }
  Variable u = user_emb_->Forward(batch.user_ids, {batch.size});   // (B,d)
  Variable p = item_emb_->Forward(batch.targets, {batch.size});    // (B,d)
  Variable n = item_emb_->Forward(negatives, {batch.size});        // (B,d)
  Variable diff = SumAxis(Mul(u, Sub(p, n)), -1, false);           // (B)
  // -mean log sigmoid(diff); the epsilon guards log(0) for float32.
  return Neg(Mean(Log(AddScalar(Sigmoid(diff), 1e-10f))));
}

Tensor BprMf::ScoreAll(const data::Batch& batch) {
  autograd::Variable u = user_emb_->Forward(batch.user_ids, {batch.size});
  return ops::MatMulTransB(u.value(), item_emb_->weight().value());
}

}  // namespace models
}  // namespace slime
