#include "models/caser.h"

#include "autograd/ops.h"

namespace slime {
namespace models {

Caser::Caser(const ModelConfig& config) : SequentialRecommender(config) {
  SLIME_CHECK_GT(config.num_users, 0);
  const int64_t d = config.hidden_dim;
  item_emb_ = RegisterModule(
      "item_emb",
      std::make_shared<nn::Embedding>(config.num_items + 1, d, &rng_));
  user_emb_ = RegisterModule(
      "user_emb", std::make_shared<nn::Embedding>(config.num_users, d, &rng_));
  dropout_ =
      RegisterModule("dropout", std::make_shared<nn::Dropout>(config.dropout));
  // Window sizes {2,3,4} with d/4 filters each, 2 vertical filters: small
  // scaled-down variant of the original (16, 4).
  const int64_t fh = std::max<int64_t>(4, d / 4);
  horizontal_ = RegisterModule(
      "horizontal",
      std::make_shared<nn::HorizontalConvBank>(
          d, std::vector<int64_t>{2, 3, 4}, fh, &rng_));
  const int64_t fv = 2;
  vertical_ = RegisterModule(
      "vertical", std::make_shared<nn::VerticalConv>(config.max_len, fv,
                                                     &rng_));
  fc_ = RegisterModule(
      "fc", std::make_shared<nn::Linear>(
                horizontal_->output_dim() + vertical_->output_dim(d), d,
                &rng_));
  out_ = RegisterModule("out", std::make_shared<nn::Linear>(2 * d, d, &rng_));
}

autograd::Variable Caser::EncodeLast(const data::Batch& batch) {
  using autograd::Concat;
  using autograd::Relu;
  using autograd::Variable;
  Variable e =
      item_emb_->Forward(batch.input_ids, {batch.size, config_.max_len});
  e = dropout_->Forward(e, &rng_);
  Variable h = horizontal_->Forward(e);                    // (B, Fh)
  Variable v = vertical_->Forward(e);                      // (B, Fv*d)
  Variable z = Relu(fc_->Forward(Concat({h, v}, 1)));      // (B, d)
  z = dropout_->Forward(z, &rng_);
  Variable u = user_emb_->Forward(batch.user_ids, {batch.size});  // (B, d)
  return out_->Forward(Concat({z, u}, 1));                 // (B, d)
}

autograd::Variable Caser::Loss(const data::Batch& batch) {
  autograd::Variable h = EncodeLast(batch);
  autograd::Variable logits = autograd::MatMulTransB(h, item_emb_->weight());
  return autograd::CrossEntropy(logits, batch.targets);
}

Tensor Caser::ScoreAll(const data::Batch& batch) {
  autograd::Variable h = EncodeLast(batch);
  return autograd::MatMulTransB(h, item_emb_->weight()).value();
}

}  // namespace models
}  // namespace slime
