#ifndef SLIME4REC_MODELS_DUOREC_H_
#define SLIME4REC_MODELS_DUOREC_H_

#include <string>

#include "models/sasrec.h"

namespace slime {
namespace models {

/// DuoRec (Qiu et al., WSDM'22), the paper's strongest baseline: SASRec
/// trained with next-item cross-entropy plus a contrastive regulariser
/// combining an *unsupervised* model-level view (the same sequence passed
/// through the encoder again, differing only by dropout) and a
/// *supervised* semantic view (another training sequence with the same
/// target item), with in-batch negatives. SLIME4Rec adopts exactly this
/// objective on top of its filter-mixer encoder.
class DuoRec : public SasRec {
 public:
  explicit DuoRec(const ModelConfig& config) : SasRec(config) {}

  autograd::Variable Loss(const data::Batch& batch) override;
  std::string name() const override { return "DuoRec"; }
  bool needs_positives() const override { return true; }
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_DUOREC_H_
