#include "models/bert4rec.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace slime {
namespace models {

Bert4Rec::Bert4Rec(const ModelConfig& config)
    : SequentialRecommender(config) {
  const int64_t d = config.hidden_dim;
  const int64_t n = config.max_len;
  // Vocabulary: 0 pad, 1..num_items real, num_items+1 [MASK].
  item_emb_ = RegisterModule(
      "item_emb",
      std::make_shared<nn::Embedding>(config.num_items + 2, d, &rng_));
  pos_emb_ = RegisterParameter(
      "pos_emb", autograd::Param(nn::NormalInit({n, d}, &rng_, 0.02f)));
  emb_norm_ = RegisterModule("emb_norm", std::make_shared<nn::LayerNorm>(d));
  emb_dropout_ = RegisterModule(
      "emb_dropout", std::make_shared<nn::Dropout>(config.emb_dropout));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    Block b;
    b.attn = RegisterModule(
        "attn" + std::to_string(l),
        std::make_shared<nn::MultiHeadSelfAttention>(d, config.num_heads,
                                                     config.dropout, &rng_));
    b.attn_norm = RegisterModule("attn_norm" + std::to_string(l),
                                 std::make_shared<nn::LayerNorm>(d));
    b.ffn = RegisterModule(
        "ffn" + std::to_string(l),
        std::make_shared<nn::FeedForward>(d, config.dropout, &rng_));
    b.ffn_norm = RegisterModule("ffn_norm" + std::to_string(l),
                                std::make_shared<nn::LayerNorm>(d));
    blocks_.push_back(std::move(b));
  }
}

autograd::Variable Bert4Rec::Encode(const std::vector<int64_t>& input_ids,
                                    int64_t batch_size) {
  using autograd::Add;
  using autograd::Variable;
  const int64_t n = config_.max_len;
  Variable e = item_emb_->Forward(input_ids, {batch_size, n});
  e = Add(e, pos_emb_);
  e = emb_norm_->Forward(e);
  e = emb_dropout_->Forward(e, &rng_);
  Tensor padding({batch_size, n});
  for (int64_t i = 0; i < batch_size * n; ++i) {
    padding.data()[i] = input_ids[i] == 0 ? -1e9f : 0.0f;
  }
  Variable h = e;
  for (const auto& b : blocks_) {
    // Bidirectional: causal = false.
    Variable a = b.attn->Forward(h, /*causal=*/false, padding, &rng_);
    h = b.attn_norm->Forward(Add(h, a));
    Variable f = b.ffn->Forward(h, &rng_);
    h = b.ffn_norm->Forward(Add(h, f));
  }
  return h;
}

autograd::Variable Bert4Rec::Loss(const data::Batch& batch) {
  using autograd::CrossEntropy;
  using autograd::Reshape;
  using autograd::Variable;
  const int64_t n = config_.max_len;
  constexpr int64_t kIgnore = -100;
  // Cloze training over the full sequence (prefix + target item): mask a
  // random subset of the real positions, always including the final one so
  // the objective stays aligned with next-item evaluation.
  std::vector<int64_t> masked(batch.size * n, 0);
  std::vector<int64_t> labels(batch.size * n, kIgnore);
  for (int64_t i = 0; i < batch.size; ++i) {
    std::vector<int64_t> full = batch.raw_prefixes[i];
    full.push_back(batch.targets[i]);
    const std::vector<int64_t> padded = data::PadTruncate(full, n);
    for (int64_t t = 0; t < n; ++t) {
      const int64_t id = padded[t];
      const int64_t idx = i * n + t;
      if (id == 0) continue;
      const bool is_last = t == n - 1;
      if (is_last || rng_.Bernoulli(mask_prob_)) {
        masked[idx] = mask_token();
        labels[idx] = id;
      } else {
        masked[idx] = id;
      }
    }
  }
  Variable h = Encode(masked, batch.size);  // (B, N, d)
  Variable logits = autograd::MatMulTransB(
      Reshape(h, {batch.size * n, config_.hidden_dim}),
      item_emb_->weight());  // (B*N, V+2)
  return CrossEntropy(logits, labels, kIgnore);
}

Tensor Bert4Rec::ScoreAll(const data::Batch& batch) {
  const int64_t n = config_.max_len;
  // Append [MASK] to each sequence and predict at the final position.
  std::vector<int64_t> masked(batch.size * n, 0);
  for (int64_t i = 0; i < batch.size; ++i) {
    std::vector<int64_t> input = batch.raw_prefixes[i];
    input.push_back(mask_token());
    const std::vector<int64_t> padded = data::PadTruncate(input, n);
    for (int64_t t = 0; t < n; ++t) masked[i * n + t] = padded[t];
  }
  autograd::Variable h = Encode(masked, batch.size);
  autograd::Variable last = autograd::Reshape(
      autograd::Slice(h, 1, n - 1, n), {batch.size, config_.hidden_dim});
  const Tensor full =
      autograd::MatMulTransB(last, item_emb_->weight()).value();
  // Drop the [MASK] column: return (B, num_items + 1).
  Tensor out({batch.size, config_.num_items + 1});
  for (int64_t i = 0; i < batch.size; ++i) {
    const float* src = full.data() + i * (config_.num_items + 2);
    float* dst = out.data() + i * (config_.num_items + 1);
    std::copy(src, src + config_.num_items + 1, dst);
  }
  return out;
}

}  // namespace models
}  // namespace slime
