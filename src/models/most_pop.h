#ifndef SLIME4REC_MODELS_MOST_POP_H_
#define SLIME4REC_MODELS_MOST_POP_H_

#include <string>
#include <vector>

#include "models/recommender.h"

namespace slime {
namespace models {

/// Most-Popular: a parameter-free reference that scores every item by its
/// training-set frequency. Not part of the paper's Table II (we keep
/// AllModelNames() at the paper's eleven), but an indispensable sanity
/// floor — any sequential model that cannot beat popularity has learned
/// nothing.
class MostPop : public SequentialRecommender {
 public:
  explicit MostPop(const ModelConfig& config);

  void Prepare(const data::SplitDataset& split) override;

  autograd::Variable Loss(const data::Batch& batch) override;
  Tensor ScoreAll(const data::Batch& batch) override;
  std::string name() const override { return "MostPop"; }

  /// Training-region frequency of `item` (0 before Prepare()).
  int64_t Frequency(int64_t item) const;

 private:
  std::vector<float> popularity_;  // (num_items + 1)
};

}  // namespace models
}  // namespace slime

#endif  // SLIME4REC_MODELS_MOST_POP_H_
