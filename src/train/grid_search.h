#ifndef SLIME4REC_TRAIN_GRID_SEARCH_H_
#define SLIME4REC_TRAIN_GRID_SEARCH_H_

#include <functional>
#include <string>
#include <vector>

#include "core/slime4rec.h"
#include "data/dataset.h"
#include "metrics/ranking.h"
#include "models/recommender.h"
#include "train/trainer.h"

namespace slime {
namespace train {

/// One point of a hyper-parameter grid: a label for reporting plus a
/// factory that builds the candidate model.
struct GridPoint {
  std::string label;
  std::function<std::unique_ptr<models::SequentialRecommender>()> factory;
};

/// Result of a grid search.
struct GridSearchResult {
  /// Index of the winning grid point (highest validation NDCG@10, the
  /// paper's model-selection criterion).
  size_t best_index = 0;
  std::string best_label;
  /// Test metrics of the winner at its best-validation epoch.
  metrics::RankingMetrics best_test;
  /// Validation NDCG@10 of every candidate, in grid order.
  std::vector<double> valid_ndcg10;
};

/// Trains every candidate with the same TrainConfig and picks the best by
/// validation NDCG@10 — the "all these parameters are tuned on the
/// validation set" protocol of Sec. IV-D. Deterministic given the configs'
/// seeds.
GridSearchResult GridSearch(const std::vector<GridPoint>& grid,
                            const data::SplitDataset& split,
                            const TrainConfig& train_config,
                            bool verbose = false);

/// Convenience: builds a SLIME4Rec alpha grid over `alphas` from a base
/// configuration.
std::vector<GridPoint> SlimeAlphaGrid(const core::Slime4RecConfig& base,
                                      const std::vector<double>& alphas);

}  // namespace train
}  // namespace slime

#endif  // SLIME4REC_TRAIN_GRID_SEARCH_H_
