#ifndef SLIME4REC_TRAIN_TRAINER_H_
#define SLIME4REC_TRAIN_TRAINER_H_

#include <vector>

#include "common/status.h"
#include "data/batcher.h"
#include "data/dataset.h"
#include "metrics/ranking.h"
#include "models/recommender.h"
#include "train/config.h"

namespace slime {
namespace train {

/// Outcome of a training run.
struct TrainResult {
  /// Test-set metrics at the best-validation epoch.
  metrics::RankingMetrics test;
  /// Best validation metrics observed.
  metrics::RankingMetrics valid;
  int64_t best_epoch = 0;
  int64_t epochs_run = 0;
  double final_train_loss = 0.0;
  /// Divergence rollbacks consumed (0 for a healthy run).
  int64_t rollbacks = 0;
};

/// Evaluates `model` (switched to eval mode) with the full-ranking
/// leave-one-out protocol on the validation (`test = false`) or test split.
metrics::RankingMetrics Evaluate(models::SequentialRecommender* model,
                                 const data::SplitDataset& split, bool test,
                                 int64_t batch_size = 256);

/// Fixed canary request set for serving validation (ModelServer hot
/// reload): the training-region histories of the `k` users with the
/// longest training regions, ties broken by lower user id. Deterministic
/// for a given split — the same canaries gate every reload, so a
/// validation pass/fail is reproducible. Long histories are chosen
/// deliberately: they exercise the truncation path and every position of
/// the model's input window.
std::vector<std::vector<int64_t>> ExportCanarySet(
    const data::SplitDataset& split, int64_t k);

/// Orchestrates training: shuffled mini-batches, Adam, gradient clipping,
/// per-epoch validation, early stopping with best-parameter restore, and a
/// final test evaluation. The same trainer drives all eleven models.
///
/// Fault tolerance (see TrainConfig): with `checkpoint_dir` set, a full
/// TrainState snapshot is written crash-safely after qualifying epochs and
/// a killed run resumed via `resume_from` replays the remaining epochs
/// bit-for-bit. A non-finite loss or gradient triggers a rollback to the
/// last completed epoch with the learning rate halved; after
/// `max_rollbacks` failures Fit returns Status::Aborted. Snapshot I/O
/// errors are returned, never swallowed.
class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  Result<TrainResult> Fit(models::SequentialRecommender* model,
                          const data::SplitDataset& split);

  const TrainConfig& config() const { return config_; }

 private:
  TrainConfig config_;
};

}  // namespace train
}  // namespace slime

#endif  // SLIME4REC_TRAIN_TRAINER_H_
