#ifndef SLIME4REC_TRAIN_CONFIG_H_
#define SLIME4REC_TRAIN_CONFIG_H_

#include <cstdint>
#include <string>

namespace slime {

namespace io {
class Env;
}  // namespace io

namespace obs {
class TrainingTelemetry;
}  // namespace obs

namespace serving {
class Clock;
}  // namespace serving

namespace train {

/// Training-loop hyper-parameters (paper Sec. IV-D: Adam, lr 1e-3, early
/// stopping on the validation metric) plus the fault-tolerance knobs
/// (snapshots, resume, divergence rollback).
struct TrainConfig {
  int64_t max_epochs = 40;
  int64_t batch_size = 128;
  float lr = 1e-3f;
  /// Linear warmup over the first `warmup_epochs` epochs (0 disables).
  int64_t warmup_epochs = 0;
  /// Multiplies the learning rate by this factor every epoch after warmup
  /// (1.0 disables decay).
  float lr_decay = 1.0f;
  /// Stop after this many epochs without validation NDCG@10 improvement;
  /// the best-validation parameters are restored before the test pass.
  int64_t patience = 4;
  /// Cap on (prefix -> next) training instances per user (most recent
  /// kept); 0 = all.
  int64_t max_prefixes_per_user = 4;
  double grad_clip_norm = 5.0;
  bool verbose = false;
  uint64_t seed = 97;

  // --- Fault tolerance ---------------------------------------------------

  /// Directory for crash-safe training snapshots and the best-model
  /// checkpoint; empty disables on-disk checkpointing (the in-memory
  /// divergence rollback still works). The directory must already exist.
  std::string checkpoint_dir;
  /// Write the rolling snapshot every N completed epochs (snapshots are
  /// additionally written whenever validation improves).
  int64_t checkpoint_every = 1;
  /// Resume a killed run: path to a snapshot file or to a checkpoint
  /// directory written by a previous run. Empty starts fresh. The model,
  /// split and config must match the original run; a resumed run replays
  /// the remaining epochs bit-for-bit.
  std::string resume_from;
  /// Divergence guard: on a non-finite loss or gradient the trainer rolls
  /// back to the last completed epoch with the learning rate halved, at
  /// most this many times before giving up with Status::Aborted.
  int64_t max_rollbacks = 2;
  /// Filesystem seam for snapshot I/O; nullptr = io::Env::Default().
  /// Tests inject faults through this.
  io::Env* env = nullptr;

  // --- Observability -----------------------------------------------------

  /// Structured training telemetry sink (resume/epoch/rollback records,
  /// optional JSONL persistence). nullptr: the trainer uses a private
  /// in-memory sink that echoes the classic console lines when `verbose`.
  /// When set, the sink's echo setting controls console output and
  /// `verbose` is ignored — the CLI passes an echoing sink.
  obs::TrainingTelemetry* telemetry = nullptr;
  /// Clock for epoch wall-time measurement; nullptr =
  /// serving::Clock::Default(). Tests pass a FakeClock for exact wall
  /// times in telemetry records.
  serving::Clock* clock = nullptr;

  /// Reads SLIME_BENCH_SCALE (default 1.0) used by the bench harness to
  /// shrink or grow experiments.
  static double BenchScale();
};

}  // namespace train
}  // namespace slime

#endif  // SLIME4REC_TRAIN_CONFIG_H_
