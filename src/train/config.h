#ifndef SLIME4REC_TRAIN_CONFIG_H_
#define SLIME4REC_TRAIN_CONFIG_H_

#include <cstdint>
#include <string>

namespace slime {
namespace train {

/// Training-loop hyper-parameters (paper Sec. IV-D: Adam, lr 1e-3, early
/// stopping on the validation metric).
struct TrainConfig {
  int64_t max_epochs = 40;
  int64_t batch_size = 128;
  float lr = 1e-3f;
  /// Linear warmup over the first `warmup_epochs` epochs (0 disables).
  int64_t warmup_epochs = 0;
  /// Multiplies the learning rate by this factor every epoch after warmup
  /// (1.0 disables decay).
  float lr_decay = 1.0f;
  /// Stop after this many epochs without validation NDCG@10 improvement;
  /// the best-validation parameters are restored before the test pass.
  int64_t patience = 4;
  /// Cap on (prefix -> next) training instances per user (most recent
  /// kept); 0 = all.
  int64_t max_prefixes_per_user = 4;
  double grad_clip_norm = 5.0;
  bool verbose = false;
  uint64_t seed = 97;

  /// Reads SLIME_BENCH_SCALE (default 1.0) used by the bench harness to
  /// shrink or grow experiments.
  static double BenchScale();
};

}  // namespace train
}  // namespace slime

#endif  // SLIME4REC_TRAIN_CONFIG_H_
