#ifndef SLIME4REC_TRAIN_TRAIN_STATE_H_
#define SLIME4REC_TRAIN_TRAIN_STATE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "io/env.h"
#include "metrics/ranking.h"
#include "tensor/tensor.h"

namespace slime {
namespace train {

/// Everything Trainer::Fit carries across epoch boundaries, captured at the
/// end of a completed epoch. Restoring a TrainState and continuing produces
/// the same remaining trajectory bit-for-bit as the uninterrupted run: model
/// parameters, Adam moments and step, both RNG streams, the batcher's
/// shuffle order, the early-stopping trackers and the best-parameter
/// snapshot are all included, so nothing is left to re-derivation.
///
/// Serialised inside the crash-safe envelope of io/serializer.h under the
/// magic "SLT1" (payload layout versioned independently of the model
/// checkpoint format).
struct TrainState {
  /// Last fully completed epoch (1-based).
  int64_t epoch = 0;
  /// Base learning rate the schedule multiplies; halved on each divergence
  /// rollback, so a resumed run keeps the reduced rate.
  float base_lr = 0.0f;
  /// Divergence rollbacks consumed so far.
  int64_t rollbacks = 0;

  // Early-stopping / best-model trackers.
  double best_valid = -1.0;
  int64_t best_epoch = 0;
  int64_t since_best = 0;
  double final_train_loss = 0.0;
  metrics::RankingMetrics best_metrics;

  // RNG streams: the trainer's batch/shuffle generator and the model's
  // internal generator (dropout, augmentation).
  RngState batch_rng;
  RngState model_rng;
  /// TrainBatcher visit order (shuffled in place across epochs).
  std::vector<int64_t> batch_order;

  /// Model parameters by qualified name (Module::NamedParameters order).
  std::vector<std::pair<std::string, Tensor>> params;

  // Adam state, aligned with Module::Parameters() order.
  int64_t adam_step = 0;
  std::vector<Tensor> adam_m;
  std::vector<Tensor> adam_v;

  /// Best-validation parameter snapshot (Parameters() order); what the
  /// trainer restores before the final test pass.
  std::vector<Tensor> best_params;
};

/// Writes `state` to `path` crash-safely (temp file + CRC verify + atomic
/// rename); a failed save leaves any previous snapshot at `path` intact.
Status SaveTrainState(const TrainState& state, const std::string& path,
                      io::Env* env = nullptr);

/// Reads a snapshot written by SaveTrainState. Truncation, bad magic and
/// bit flips surface as Status::Corruption; a missing file as IOError.
Result<TrainState> LoadTrainState(const std::string& path,
                                  io::Env* env = nullptr);

/// Canonical snapshot location inside a checkpoint directory.
std::string SnapshotPath(const std::string& checkpoint_dir);

/// Canonical best-model checkpoint location inside a checkpoint directory
/// (a plain model checkpoint, loadable by io::LoadCheckpoint for serving).
std::string BestModelPath(const std::string& checkpoint_dir);

/// Resolves a --resume argument: a directory maps to its SnapshotPath, a
/// file path is returned as-is.
std::string ResolveResumePath(const std::string& resume_from,
                              io::Env* env = nullptr);

}  // namespace train
}  // namespace slime

#endif  // SLIME4REC_TRAIN_TRAIN_STATE_H_
