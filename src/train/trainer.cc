#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "optim/adam.h"

namespace slime {
namespace train {

metrics::RankingMetrics Evaluate(models::SequentialRecommender* model,
                                 const data::SplitDataset& split, bool test,
                                 int64_t batch_size) {
  const bool was_training = model->training();
  model->SetTraining(false);
  metrics::RankingAccumulator acc;
  for (const data::Batch& batch : data::MakeEvalBatches(
           split, test, batch_size, model->config().max_len)) {
    const Tensor scores = model->ScoreAll(batch);
    acc.Add(scores, batch.targets);
  }
  model->SetTraining(was_training);
  return metrics::RankingMetrics::From(acc);
}

TrainResult Trainer::Fit(models::SequentialRecommender* model,
                         const data::SplitDataset& split) {
  model->Prepare(split);
  Rng batch_rng(config_.seed);
  data::TrainBatcher batcher(&split, config_.batch_size,
                             model->config().max_len,
                             model->needs_positives(), &batch_rng);
  optim::Adam optimizer(model->Parameters(), {.lr = config_.lr});

  TrainResult result;
  double best_valid = -1.0;
  int64_t since_best = 0;
  // Snapshot of the best-validation parameters (deep copies).
  std::vector<Tensor> best_params;

  for (int64_t epoch = 1; epoch <= config_.max_epochs; ++epoch) {
    // Per-epoch learning-rate schedule: linear warmup then exponential
    // decay.
    float lr = config_.lr;
    if (config_.warmup_epochs > 0 && epoch <= config_.warmup_epochs) {
      lr *= static_cast<float>(epoch) /
            static_cast<float>(config_.warmup_epochs);
    } else if (config_.lr_decay != 1.0f) {
      const int64_t decay_epochs =
          epoch - std::max<int64_t>(config_.warmup_epochs, 0) - 1;
      if (decay_epochs > 0) {
        lr *= std::pow(config_.lr_decay, static_cast<float>(decay_epochs));
      }
    }
    optimizer.set_lr(lr);
    model->SetTraining(true);
    double loss_sum = 0.0;
    int64_t loss_count = 0;
    for (const data::Batch& batch : batcher.Epoch()) {
      autograd::Variable loss = model->Loss(batch);
      loss_sum += loss.value()[0];
      ++loss_count;
      loss.Backward();
      if (config_.grad_clip_norm > 0.0) {
        optimizer.ClipGradNorm(config_.grad_clip_norm);
      }
      optimizer.Step();
    }
    result.final_train_loss = loss_count ? loss_sum / loss_count : 0.0;
    result.epochs_run = epoch;

    const metrics::RankingMetrics valid = Evaluate(model, split, false);
    if (config_.verbose) {
      std::printf("[%s] epoch %2lld loss %.4f valid NDCG@10 %.4f\n",
                  model->name().c_str(), static_cast<long long>(epoch),
                  result.final_train_loss, valid.ndcg10);
    }
    if (valid.ndcg10 > best_valid) {
      best_valid = valid.ndcg10;
      result.valid = valid;
      result.best_epoch = epoch;
      since_best = 0;
      best_params.clear();
      for (const auto& p : model->Parameters()) {
        best_params.push_back(p.value().Clone());
      }
    } else if (++since_best >= config_.patience) {
      break;
    }
  }

  // Restore the best-validation parameters before the test pass.
  if (!best_params.empty()) {
    auto params = model->Parameters();
    SLIME_CHECK_EQ(params.size(), best_params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value() = best_params[i];
    }
  }
  result.test = Evaluate(model, split, true);
  return result;
}

}  // namespace train
}  // namespace slime
