#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "io/checkpoint.h"
#include "io/env.h"
#include "observability/telemetry.h"
#include "optim/adam.h"
#include "serving/clock.h"
#include "tensor/tensor_ops.h"
#include "train/train_state.h"

namespace slime {
namespace train {
namespace {

bool GradsFinite(const std::vector<autograd::Variable>& params) {
  for (const auto& p : params) {
    if (p.has_grad() && !ops::AllFinite(p.grad())) return false;
  }
  return true;
}

std::vector<Tensor> CloneAll(const std::vector<Tensor>& tensors) {
  std::vector<Tensor> out;
  out.reserve(tensors.size());
  for (const Tensor& t : tensors) out.push_back(t.Clone());
  return out;
}

}  // namespace

metrics::RankingMetrics Evaluate(models::SequentialRecommender* model,
                                 const data::SplitDataset& split, bool test,
                                 int64_t batch_size) {
  const bool was_training = model->training();
  model->SetTraining(false);
  metrics::RankingAccumulator acc;
  for (const data::Batch& batch : data::MakeEvalBatches(
           split, test, batch_size, model->config().max_len)) {
    const Tensor scores = model->ScoreAll(batch);
    acc.Add(scores, batch.targets);
  }
  model->SetTraining(was_training);
  return metrics::RankingMetrics::From(acc);
}

std::vector<std::vector<int64_t>> ExportCanarySet(
    const data::SplitDataset& split, int64_t k) {
  std::vector<int64_t> users(split.num_users());
  for (int64_t u = 0; u < split.num_users(); ++u) users[u] = u;
  std::sort(users.begin(), users.end(), [&](int64_t a, int64_t b) {
    const size_t la = split.train_region()[a].size();
    const size_t lb = split.train_region()[b].size();
    return la > lb || (la == lb && a < b);
  });
  const int64_t take = std::min<int64_t>(k, split.num_users());
  std::vector<std::vector<int64_t>> canaries;
  canaries.reserve(take);
  for (int64_t i = 0; i < take; ++i) {
    canaries.push_back(split.train_region()[users[i]]);
  }
  return canaries;
}

Result<TrainResult> Trainer::Fit(models::SequentialRecommender* model,
                                 const data::SplitDataset& split) {
  // Exclusive-use scope for the whole run: a serving call racing this
  // training loop on the same model is a data race, caught here instead of
  // corrupting parameters mid-epoch.
  models::ModelUseGuard use(model, "training");
  io::Env* env = config_.env != nullptr ? config_.env : io::Env::Default();
  serving::Clock* clock =
      config_.clock != nullptr ? config_.clock : serving::Clock::Default();
  // Structured telemetry replaces the old bare printf lines: every record
  // goes to the sink (which echoes the identical console text when asked)
  // so training progress is machine-readable without changing stdout.
  obs::TrainingTelemetry local_telemetry(config_.verbose);
  obs::TrainingTelemetry* telemetry = config_.telemetry != nullptr
                                          ? config_.telemetry
                                          : &local_telemetry;
  model->Prepare(split);
  Rng batch_rng(config_.seed);
  data::TrainBatcher batcher(&split, config_.batch_size,
                             model->config().max_len,
                             model->needs_positives(), &batch_rng);
  optim::Adam optimizer(model->Parameters(), {.lr = config_.lr});

  TrainResult result;
  double best_valid = -1.0;
  int64_t since_best = 0;
  // Snapshot of the best-validation parameters (deep copies).
  std::vector<Tensor> best_params;
  float base_lr = config_.lr;
  int64_t rollbacks = 0;
  int64_t start_epoch = 1;

  // Captures everything the loop carries across epochs into a TrainState
  // (all tensors deep-copied, so the snapshot stays frozen while training
  // keeps mutating the live model).
  const auto capture = [&](int64_t epoch) {
    TrainState s;
    s.epoch = epoch;
    s.base_lr = base_lr;
    s.rollbacks = rollbacks;
    s.best_valid = best_valid;
    s.best_epoch = result.best_epoch;
    s.since_best = since_best;
    s.final_train_loss = result.final_train_loss;
    s.best_metrics = result.valid;
    s.batch_rng = batch_rng.state();
    s.model_rng = model->rng()->state();
    s.batch_order = batcher.order();
    for (const auto& [name, variable] : model->NamedParameters()) {
      s.params.emplace_back(name, variable.value().Clone());
    }
    s.adam_step = optimizer.step_count();
    s.adam_m = CloneAll(optimizer.first_moments());
    s.adam_v = CloneAll(optimizer.second_moments());
    s.best_params = CloneAll(best_params);
    return s;
  };

  // Restores a captured TrainState into the live model/optimizer/RNGs and
  // the loop trackers. Validates names/shapes so a snapshot from a
  // different model or split is rejected, not silently half-applied.
  const auto apply = [&](const TrainState& s) -> Status {
    auto named = model->NamedParameters();
    std::map<std::string, autograd::Variable*> by_name;
    for (auto& [name, variable] : named) by_name[name] = &variable;
    if (s.params.size() != by_name.size()) {
      return Status::InvalidArgument(
          "train state has " + std::to_string(s.params.size()) +
          " parameters, model has " + std::to_string(by_name.size()));
    }
    for (const auto& [name, tensor] : s.params) {
      const auto it = by_name.find(name);
      if (it == by_name.end()) {
        return Status::InvalidArgument("model has no parameter '" + name +
                                       "'");
      }
      if (it->second->value().shape() != tensor.shape()) {
        return Status::InvalidArgument(
            "shape mismatch for '" + name + "': train state " +
            tensor.ShapeString() + " vs model " +
            it->second->value().ShapeString());
      }
    }
    const auto model_params = model->Parameters();
    if (!s.best_params.empty() &&
        s.best_params.size() != model_params.size()) {
      return Status::InvalidArgument(
          "train state best-parameter count " +
          std::to_string(s.best_params.size()) + " does not match model (" +
          std::to_string(model_params.size()) + ")");
    }
    SLIME_RETURN_IF_ERROR(optimizer.RestoreState(
        s.adam_step, CloneAll(s.adam_m), CloneAll(s.adam_v)));
    SLIME_RETURN_IF_ERROR(batcher.RestoreOrder(s.batch_order));
    for (const auto& [name, tensor] : s.params) {
      by_name[name]->mutable_value() = tensor.Clone();
    }
    batch_rng.set_state(s.batch_rng);
    model->rng()->set_state(s.model_rng);
    best_params = CloneAll(s.best_params);
    best_valid = s.best_valid;
    since_best = s.since_best;
    base_lr = s.base_lr;
    rollbacks = s.rollbacks;
    result.best_epoch = s.best_epoch;
    result.valid = s.best_metrics;
    result.final_train_loss = s.final_train_loss;
    result.epochs_run = s.epoch;
    result.rollbacks = s.rollbacks;
    return Status::OK();
  };

  // Last-good state for divergence rollback: the initial state before the
  // first epoch, then the end of every completed epoch.
  TrainState last_good;
  if (!config_.resume_from.empty()) {
    const std::string path = ResolveResumePath(config_.resume_from, env);
    Result<TrainState> loaded = LoadTrainState(path, env);
    if (!loaded.ok()) return loaded.status();
    last_good = std::move(loaded).value();
    SLIME_RETURN_IF_ERROR(apply(last_good));
    start_epoch = last_good.epoch + 1;
    telemetry->OnResume({model->name(), path, last_good.epoch,
                         last_good.best_valid});
  } else {
    last_good = capture(0);
  }

  for (int64_t epoch = start_epoch; epoch <= config_.max_epochs; ++epoch) {
    const int64_t epoch_start_nanos = clock->NowNanos();
    // Per-epoch learning-rate schedule: linear warmup then exponential
    // decay, on top of the (rollback-halvable) base rate.
    float lr = base_lr;
    if (config_.warmup_epochs > 0 && epoch <= config_.warmup_epochs) {
      lr *= static_cast<float>(epoch) /
            static_cast<float>(config_.warmup_epochs);
    } else if (config_.lr_decay != 1.0f) {
      const int64_t decay_epochs =
          epoch - std::max<int64_t>(config_.warmup_epochs, 0) - 1;
      if (decay_epochs > 0) {
        lr *= std::pow(config_.lr_decay, static_cast<float>(decay_epochs));
      }
    }
    optimizer.set_lr(lr);
    model->SetTraining(true);
    double loss_sum = 0.0;
    int64_t loss_count = 0;
    double max_grad_norm = 0.0;
    bool diverged = false;
    for (const data::Batch& batch : batcher.Epoch()) {
      autograd::Variable loss = model->Loss(batch);
      const double loss_value = loss.value()[0];
      if (!std::isfinite(loss_value)) {
        diverged = true;
        break;
      }
      loss_sum += loss_value;
      ++loss_count;
      loss.Backward();
      if (!GradsFinite(optimizer.params())) {
        diverged = true;
        break;
      }
      if (config_.grad_clip_norm > 0.0) {
        // Pre-clip norm feeds both the clip and the epoch telemetry (the
        // max over batches is the divergence-adjacent signal to watch).
        const double grad_norm = optimizer.GradNorm();
        max_grad_norm = std::max(max_grad_norm, grad_norm);
        optimizer.ClipGradNorm(config_.grad_clip_norm, grad_norm);
      }
      optimizer.Step();
    }

    if (diverged) {
      if (rollbacks >= config_.max_rollbacks) {
        return Status::Aborted(
            "training diverged (non-finite loss or gradient) at epoch " +
            std::to_string(epoch) + " after " + std::to_string(rollbacks) +
            " rollback(s); giving up");
      }
      const int64_t next_rollbacks = rollbacks + 1;
      const float next_base_lr = base_lr * 0.5f;
      telemetry->OnRollback({model->name(), epoch, last_good.epoch, base_lr,
                             next_base_lr, next_rollbacks,
                             config_.max_rollbacks});
      SLIME_RETURN_IF_ERROR(apply(last_good));
      // The rollback itself consumes budget and halves the rate; those two
      // survive the restore.
      rollbacks = next_rollbacks;
      base_lr = next_base_lr;
      result.rollbacks = rollbacks;
      // An aborted step may have left partial gradients accumulated.
      optimizer.ZeroGrad();
      epoch = last_good.epoch;  // loop increment resumes at the next epoch
      continue;
    }

    result.final_train_loss = loss_count ? loss_sum / loss_count : 0.0;
    result.epochs_run = epoch;
    result.rollbacks = rollbacks;

    const metrics::RankingMetrics valid = Evaluate(model, split, false);
    const bool improved = valid.ndcg10 > best_valid;
    {
      obs::EpochRecord record;
      record.model = model->name();
      record.epoch = epoch;
      record.loss = result.final_train_loss;
      record.lr = lr;
      record.grad_norm = max_grad_norm;
      record.batches = loss_count;
      record.valid = valid;
      record.improved = improved;
      record.wall_nanos = clock->NowNanos() - epoch_start_nanos;
      telemetry->OnEpoch(record);
    }
    if (improved) {
      best_valid = valid.ndcg10;
      result.valid = valid;
      result.best_epoch = epoch;
      since_best = 0;
      best_params.clear();
      for (const auto& p : model->Parameters()) {
        best_params.push_back(p.value().Clone());
      }
    } else {
      ++since_best;
    }

    last_good = capture(epoch);
    if (!config_.checkpoint_dir.empty() &&
        (improved || (config_.checkpoint_every > 0 &&
                      epoch % config_.checkpoint_every == 0))) {
      SLIME_RETURN_IF_ERROR(SaveTrainState(
          last_good, SnapshotPath(config_.checkpoint_dir), env));
      if (improved) {
        SLIME_RETURN_IF_ERROR(io::SaveCheckpoint(
            *model, BestModelPath(config_.checkpoint_dir), env));
      }
    }

    if (!improved && since_best >= config_.patience) break;
  }

  // Restore the best-validation parameters before the test pass.
  if (!best_params.empty()) {
    auto params = model->Parameters();
    SLIME_CHECK_EQ(params.size(), best_params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value() = best_params[i];
    }
  }
  result.test = Evaluate(model, split, true);
  telemetry->OnFitSummary({model->name(), result.epochs_run,
                           result.best_epoch, result.rollbacks,
                           result.final_train_loss, result.test});
  return result;
}

}  // namespace train
}  // namespace slime
