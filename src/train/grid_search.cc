#include "train/grid_search.h"

#include <cstdio>

#include "common/string_util.h"

namespace slime {
namespace train {

GridSearchResult GridSearch(const std::vector<GridPoint>& grid,
                            const data::SplitDataset& split,
                            const TrainConfig& train_config, bool verbose) {
  SLIME_CHECK(!grid.empty());
  GridSearchResult result;
  double best_valid = -1.0;
  for (size_t i = 0; i < grid.size(); ++i) {
    auto model = grid[i].factory();
    SLIME_CHECK(model != nullptr);
    Trainer trainer(train_config);
    const TrainResult r = trainer.Fit(model.get(), split).value();
    result.valid_ndcg10.push_back(r.valid.ndcg10);
    if (verbose) {
      std::printf("[grid] %-24s valid NDCG@10 %s  test NDCG@10 %s\n",
                  grid[i].label.c_str(), FormatFloat(r.valid.ndcg10, 4).c_str(),
                  FormatFloat(r.test.ndcg10, 4).c_str());
    }
    if (r.valid.ndcg10 > best_valid) {
      best_valid = r.valid.ndcg10;
      result.best_index = i;
      result.best_label = grid[i].label;
      result.best_test = r.test;
    }
  }
  return result;
}

std::vector<GridPoint> SlimeAlphaGrid(const core::Slime4RecConfig& base,
                                      const std::vector<double>& alphas) {
  std::vector<GridPoint> grid;
  for (const double alpha : alphas) {
    core::Slime4RecConfig config = base;
    config.mixer.alpha = alpha;
    grid.push_back(
        {"alpha=" + FormatFloat(alpha, 2), [config]() {
           return std::unique_ptr<models::SequentialRecommender>(
               new core::Slime4Rec(config));
         }});
  }
  return grid;
}

}  // namespace train
}  // namespace slime
