#include "train/config.h"

#include <cstdlib>

namespace slime {
namespace train {

double TrainConfig::BenchScale() {
  const char* env = std::getenv("SLIME_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

}  // namespace train
}  // namespace slime
