#include "train/train_state.h"

#include "io/serializer.h"

namespace slime {
namespace train {
namespace {

constexpr std::string_view kMagic = "SLT1";
constexpr uint32_t kPayloadVersion = 1;

void PutRngState(io::BinaryWriter* w, const RngState& st) {
  for (uint64_t s : st.s) w->PutU64(s);
  w->PutU8(st.have_cached_gaussian ? 1 : 0);
  w->PutF32(st.cached_gaussian);
}

bool GetRngState(io::BinaryReader* r, RngState* st) {
  for (auto& s : st->s) {
    if (!r->GetU64(&s)) return false;
  }
  uint8_t flag = 0;
  if (!r->GetU8(&flag) || !r->GetF32(&st->cached_gaussian)) return false;
  st->have_cached_gaussian = flag != 0;
  return true;
}

void PutMetrics(io::BinaryWriter* w, const metrics::RankingMetrics& m) {
  w->PutF64(m.hr5);
  w->PutF64(m.hr10);
  w->PutF64(m.ndcg5);
  w->PutF64(m.ndcg10);
  w->PutF64(m.mrr);
}

bool GetMetrics(io::BinaryReader* r, metrics::RankingMetrics* m) {
  return r->GetF64(&m->hr5) && r->GetF64(&m->hr10) && r->GetF64(&m->ndcg5) &&
         r->GetF64(&m->ndcg10) && r->GetF64(&m->mrr);
}

void PutTensorList(io::BinaryWriter* w, const std::vector<Tensor>& list) {
  w->PutU64(list.size());
  for (const Tensor& t : list) w->PutTensor(t);
}

bool GetTensorList(io::BinaryReader* r, std::vector<Tensor>* list,
                   uint64_t max_count = 1u << 20) {
  uint64_t count = 0;
  if (!r->GetU64(&count) || count > max_count) return false;
  list->resize(count);
  for (auto& t : *list) {
    if (!r->GetTensor(&t)) return false;
  }
  return true;
}

}  // namespace

Status SaveTrainState(const TrainState& state, const std::string& path,
                      io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  io::BinaryWriter w;
  w.PutU32(kPayloadVersion);
  w.PutI64(state.epoch);
  w.PutF32(state.base_lr);
  w.PutI64(state.rollbacks);
  w.PutF64(state.best_valid);
  w.PutI64(state.best_epoch);
  w.PutI64(state.since_best);
  w.PutF64(state.final_train_loss);
  PutMetrics(&w, state.best_metrics);
  PutRngState(&w, state.batch_rng);
  PutRngState(&w, state.model_rng);
  w.PutU64(state.batch_order.size());
  for (int64_t idx : state.batch_order) w.PutI64(idx);
  w.PutU64(state.params.size());
  for (const auto& [name, tensor] : state.params) {
    w.PutString(name);
    w.PutTensor(tensor);
  }
  w.PutI64(state.adam_step);
  PutTensorList(&w, state.adam_m);
  PutTensorList(&w, state.adam_v);
  PutTensorList(&w, state.best_params);
  return io::WriteEnvelope(env, path, kMagic, w.buffer());
}

Result<TrainState> LoadTrainState(const std::string& path, io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  Result<std::string> payload = io::ReadEnvelope(env, path, kMagic);
  if (!payload.ok()) return payload.status();
  io::BinaryReader r(payload.value());
  const auto corrupt = [&path](const std::string& what) {
    return Status::Corruption("train state " + path + ": truncated or bad " +
                              what);
  };
  uint32_t version = 0;
  if (!r.GetU32(&version)) return corrupt("version");
  if (version != kPayloadVersion) {
    return Status::InvalidArgument(
        "train state " + path + " has payload version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kPayloadVersion));
  }
  TrainState s;
  if (!r.GetI64(&s.epoch) || !r.GetF32(&s.base_lr) ||
      !r.GetI64(&s.rollbacks) || !r.GetF64(&s.best_valid) ||
      !r.GetI64(&s.best_epoch) || !r.GetI64(&s.since_best) ||
      !r.GetF64(&s.final_train_loss)) {
    return corrupt("scalar header");
  }
  if (!GetMetrics(&r, &s.best_metrics)) return corrupt("metrics");
  if (!GetRngState(&r, &s.batch_rng) || !GetRngState(&r, &s.model_rng)) {
    return corrupt("rng state");
  }
  uint64_t order_size = 0;
  if (!r.GetU64(&order_size) || order_size > (uint64_t{1} << 32)) {
    return corrupt("batch order size");
  }
  s.batch_order.resize(order_size);
  for (auto& idx : s.batch_order) {
    if (!r.GetI64(&idx)) return corrupt("batch order");
  }
  uint64_t param_count = 0;
  if (!r.GetU64(&param_count) || param_count > (uint64_t{1} << 20)) {
    return corrupt("parameter count");
  }
  s.params.resize(param_count);
  for (auto& [name, tensor] : s.params) {
    if (!r.GetString(&name, /*max_len=*/4096) || !r.GetTensor(&tensor)) {
      return corrupt("parameter entry");
    }
  }
  if (!r.GetI64(&s.adam_step)) return corrupt("adam step");
  if (!GetTensorList(&r, &s.adam_m) || !GetTensorList(&r, &s.adam_v)) {
    return corrupt("adam moments");
  }
  if (!GetTensorList(&r, &s.best_params)) return corrupt("best parameters");
  if (!r.AtEnd()) {
    return Status::Corruption("train state " + path + " has " +
                              std::to_string(r.remaining()) +
                              " trailing bytes");
  }
  return s;
}

std::string SnapshotPath(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/train_state.slt";
}

std::string BestModelPath(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/best_model.ckpt";
}

std::string ResolveResumePath(const std::string& resume_from, io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  // A plain file (e.g. an explicit snapshot path) is used as-is; anything
  // else is treated as a checkpoint directory.
  if (env->FileExists(resume_from)) return resume_from;
  return SnapshotPath(resume_from);
}

}  // namespace train
}  // namespace slime
