#include "compute/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace slime {
namespace compute {
namespace {

std::mutex& BackendMutex() {
  static std::mutex mu;
  return mu;
}

std::string& ActiveNameLocked() {
  static std::string name = "scalar";
  return name;
}

std::atomic<bool> g_env_applied{false};

bool EnvDisablesAvx2() {
  const char* v = std::getenv("SLIME_DISABLE_AVX2");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

}  // namespace

bool SimdBackendCompiled() { return internal::SimdCompiledFlag(); }

bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  if (EnvDisablesAvx2()) return false;
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

std::string CpuFeatureString() {
  std::string out;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports requires a literal argument, hence the macro.
#define SLIME_APPEND_FEATURE(name)         \
  do {                                     \
    if (__builtin_cpu_supports(name)) {    \
      if (!out.empty()) out += ' ';        \
      out += name;                         \
    }                                      \
  } while (0)
  SLIME_APPEND_FEATURE("sse2");
  SLIME_APPEND_FEATURE("avx");
  SLIME_APPEND_FEATURE("avx2");
  SLIME_APPEND_FEATURE("fma");
  SLIME_APPEND_FEATURE("avx512f");
#undef SLIME_APPEND_FEATURE
#endif
  return out.empty() ? "none" : out;
}

std::vector<std::string> AvailableKernelBackends() {
  std::vector<std::string> names;
  if (SimdBackendCompiled() && CpuSupportsAvx2Fma()) names.push_back("simd");
  names.push_back("scalar");
  return names;
}

Result<std::string> ParseKernelBackend(const std::string& text) {
  if (text == "auto" || text == "scalar" || text == "simd") return text;
  return Status::InvalidArgument("unknown kernel backend '" + text +
                                 "' (valid: auto, scalar, simd)");
}

Result<std::string> SetKernelBackend(const std::string& name) {
  Result<std::string> parsed = ParseKernelBackend(name);
  if (!parsed.ok()) return parsed;
  std::string resolved = parsed.value();
  if (resolved == "auto") {
    resolved =
        (SimdBackendCompiled() && CpuSupportsAvx2Fma()) ? "simd" : "scalar";
  } else if (resolved == "simd") {
    if (!SimdBackendCompiled()) {
      return Status::Unavailable(
          "kernel backend 'simd' is not compiled into this binary "
          "(built with SLIME_SIMD=OFF or for a non-x86-64 target)");
    }
    if (!CpuSupportsAvx2Fma()) {
      return Status::Unavailable(
          "kernel backend 'simd' needs avx2+fma; host CPU reports: " +
          CpuFeatureString());
    }
  }
  std::lock_guard<std::mutex> lock(BackendMutex());
  // SetDispatch marks the env var consumed, so an explicit choice here is
  // never overridden later.
  SetDispatch(resolved == "simd" ? internal::SimdKernelTable()
                                 : KernelTable{});
  ActiveNameLocked() = resolved;
  return resolved;
}

std::string ActiveKernelBackend() {
  EnsureKernelBackendEnvApplied();
  std::lock_guard<std::mutex> lock(BackendMutex());
  return ActiveNameLocked();
}

int KernelBackendId(const std::string& name) {
  if (name == "scalar") return 0;
  if (name == "simd") return 1;
  return -1;
}

void EnsureKernelBackendEnvApplied() {
  if (g_env_applied.load(std::memory_order_acquire)) return;
  // Claim the env var before acting so SetKernelBackend below doesn't
  // recurse through SetDispatch -> MarkKernelBackendEnvApplied.
  if (g_env_applied.exchange(true, std::memory_order_acq_rel)) return;
  const char* v = std::getenv("SLIME_KERNEL_BACKEND");
  if (v == nullptr || v[0] == '\0') return;
  const Result<std::string> applied = SetKernelBackend(v);
  if (!applied.ok()) {
    std::fprintf(stderr,
                 "warning: SLIME_KERNEL_BACKEND ignored, using scalar: %s\n",
                 applied.status().message().c_str());
  }
}

void MarkKernelBackendEnvApplied() {
  g_env_applied.store(true, std::memory_order_release);
}

}  // namespace compute
}  // namespace slime
