#include "compute/kernels.h"

#include <algorithm>
#include <cmath>

#include "compute/backend.h"
#include "compute/thread_pool.h"

namespace slime {
namespace compute {
namespace {

/// Rows [lo, hi) of C(m,n) += A(m,k) @ B(k,n), i-k-j order (unit-stride
/// inner loop over both B's row and C's row, which GCC auto-vectorises).
void MatMulRows(const float* a, const float* b, float* c, int64_t k,
                int64_t n, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Rows [lo, hi) of C(m,n) = A(m,k) @ B(n,k)^T: dot products with the j-loop
/// blocked by four so four accumulators stream through one pass over a row.
void MatMulTransBRows(const float* a, const float* b, float* c, int64_t k,
                      int64_t n, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float a0 = 0.0f;
      float a1 = 0.0f;
      float a2 = 0.0f;
      float a3 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        a0 += av * b0[kk];
        a1 += av * b1[kk];
        a2 += av * b2[kk];
        a3 += av * b3[kk];
      }
      crow[j] = a0;
      crow[j + 1] = a1;
      crow[j + 2] = a2;
      crow[j + 3] = a3;
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

/// Columns [jlo, jhi) of C(m,n) += A(k,m)^T @ B(k,n). The outer k loop is
/// kept so each C element accumulates in ascending-k order (bit-identical to
/// the serial kernel); the column split gives disjoint writes.
void MatMulTransACols(const float* a, const float* b, float* c, int64_t k,
                      int64_t m, int64_t n, int64_t jlo, int64_t jhi) {
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = jlo; j < jhi; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void MatMulKernel(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) {
  ParallelFor(0, m, GrainForWork(2 * k * n), [=](int64_t lo, int64_t hi) {
    MatMulRows(a, b, c, k, n, lo, hi);
  });
}

void MatMulTransAKernel(const float* a, const float* b, float* c, int64_t k,
                        int64_t m, int64_t n) {
  ParallelFor(0, n, GrainForWork(2 * k * m), [=](int64_t lo, int64_t hi) {
    MatMulTransACols(a, b, c, k, m, n, lo, hi);
  });
}

void MatMulTransBKernel(const float* a, const float* b, float* c, int64_t m,
                        int64_t k, int64_t n) {
  ParallelFor(0, m, GrainForWork(2 * k * n), [=](int64_t lo, int64_t hi) {
    MatMulTransBRows(a, b, c, k, n, lo, hi);
  });
}

void BatchMatMulKernel(const float* a, const float* b, float* c,
                       int64_t batch, int64_t m, int64_t k, int64_t n) {
  // Chunk over the flattened batch x row space so one big item still
  // splits; a chunk crossing an item boundary handles each span in turn.
  ParallelFor(0, batch * m, GrainForWork(2 * k * n),
              [=](int64_t lo, int64_t hi) {
                while (lo < hi) {
                  const int64_t bi = lo / m;
                  const int64_t row0 = lo - bi * m;
                  const int64_t rows = std::min(hi - lo, m - row0);
                  MatMulRows(a + bi * m * k, b + bi * k * n, c + bi * m * n,
                             k, n, row0, row0 + rows);
                  lo += rows;
                }
              });
}

void BatchMatMulTransBKernel(const float* a, const float* b, float* c,
                             int64_t batch, int64_t m, int64_t k,
                             int64_t n) {
  ParallelFor(0, batch * m, GrainForWork(2 * k * n),
              [=](int64_t lo, int64_t hi) {
                while (lo < hi) {
                  const int64_t bi = lo / m;
                  const int64_t row0 = lo - bi * m;
                  const int64_t rows = std::min(hi - lo, m - row0);
                  MatMulTransBRows(a + bi * m * k, b + bi * n * k,
                                   c + bi * m * n, k, n, row0, row0 + rows);
                  lo += rows;
                }
              });
}

void BatchMatMulTransAKernel(const float* a, const float* b, float* c,
                             int64_t batch, int64_t k, int64_t m,
                             int64_t n) {
  // The column-parallel kernel writes all rows of one output item, so the
  // deterministic split here is per batch item.
  ParallelFor(0, batch, GrainForWork(2 * k * m * n),
              [=](int64_t lo, int64_t hi) {
                for (int64_t bi = lo; bi < hi; ++bi) {
                  MatMulTransACols(a + bi * k * m, b + bi * k * n,
                                   c + bi * m * n, k, m, n, 0, n);
                }
              });
}

void ComplexMulKernel(const float* ar, const float* ai, const float* br,
                      const float* bi, float* out_re, float* out_im,
                      int64_t repeats, int64_t block) {
  ParallelFor(0, repeats * block, kElementwiseGrain,
              [=](int64_t lo, int64_t hi) {
                int64_t j = lo % block;
                for (int64_t f = lo; f < hi; ++f) {
                  const float xr = ar[f];
                  const float xi = ai[f];
                  const float wr = br[j];
                  const float wi = bi[j];
                  out_re[f] = xr * wr - xi * wi;
                  out_im[f] = xr * wi + xi * wr;
                  if (++j == block) j = 0;
                }
              });
}

double SumKernel(const float* p, int64_t n) {
  return ParallelSum(0, n, kReductionGrain, [=](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) acc += p[i];
    return acc;
  });
}

double DotKernel(const float* a, const float* b, int64_t n) {
  return ParallelSum(0, n, kReductionGrain, [=](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) acc += double(a[i]) * b[i];
    return acc;
  });
}

bool AllFiniteKernel(const float* p, int64_t n) {
  return ParallelAll(0, n, kReductionGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      if (!std::isfinite(p[i])) return false;
    }
    return true;
  });
}

void SoftmaxRowsKernel(const float* x, float* y, int64_t rows, int64_t d) {
  ParallelFor(0, rows, GrainForWork(4 * d), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* in = x + r * d;
      float* out = y + r * d;
      float mx = in[0];
      for (int64_t i = 1; i < d; ++i) mx = std::max(mx, in[i]);
      double z = 0.0;
      for (int64_t i = 0; i < d; ++i) {
        out[i] = std::exp(in[i] - mx);
        z += out[i];
      }
      const float invz = static_cast<float>(1.0 / z);
      for (int64_t i = 0; i < d; ++i) out[i] *= invz;
    }
  });
}

void SoftmaxRowsBwdKernel(const float* y, const float* g, float* dx,
                          int64_t rows, int64_t d) {
  ParallelFor(0, rows, GrainForWork(4 * d), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* yr = y + r * d;
      const float* gr = g + r * d;
      float* dr = dx + r * d;
      double dot = 0.0;
      for (int64_t i = 0; i < d; ++i) dot += double(gr[i]) * yr[i];
      for (int64_t i = 0; i < d; ++i)
        dr[i] = yr[i] * (gr[i] - static_cast<float>(dot));
    }
  });
}

void GeluKernel(const float* x, float* y, int64_t n) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i)
      y[i] = 0.5f * x[i] * (1.0f + std::erf(x[i] * 0.70710678118654752f));
  });
}

void GeluBwdKernel(const float* x, const float* g, float* dx, int64_t n) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float cdf =
          0.5f * (1.0f + std::erf(x[i] * 0.70710678118654752f));
      const float pdf = 0.3989422804014327f * std::exp(-0.5f * x[i] * x[i]);
      dx[i] = g[i] * (cdf + x[i] * pdf);
    }
  });
}

void LayerNormKernel(const float* x, const float* gamma, const float* beta,
                     float* y, float* xhat, float* inv_std, int64_t rows,
                     int64_t d, float eps) {
  ParallelFor(0, rows, GrainForWork(6 * d), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* in = x + r * d;
      double mean = 0.0;
      for (int64_t i = 0; i < d; ++i) mean += in[i];
      mean /= d;
      double var = 0.0;
      for (int64_t i = 0; i < d; ++i) {
        const double c = in[i] - mean;
        var += c * c;
      }
      var /= d;
      const float is = static_cast<float>(1.0 / std::sqrt(var + eps));
      inv_std[r] = is;
      float* hr = xhat + r * d;
      float* yr = y + r * d;
      for (int64_t i = 0; i < d; ++i) {
        hr[i] = (in[i] - static_cast<float>(mean)) * is;
        yr[i] = hr[i] * gamma[i] + beta[i];
      }
    }
  });
}

void LayerNormBwdKernel(const float* g, const float* xhat,
                        const float* inv_std, const float* gamma, float* dx,
                        int64_t rows, int64_t d) {
  ParallelFor(0, rows, GrainForWork(8 * d), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* gr = g + r * d;
      const float* hr = xhat + r * d;
      float* dr = dx + r * d;
      // a_i = g_i * gamma_i; dx = inv_std * (a - mean(a)
      // - xhat * mean(a * xhat)).
      double ma = 0.0;
      double mah = 0.0;
      for (int64_t i = 0; i < d; ++i) {
        const double a = double(gr[i]) * gamma[i];
        ma += a;
        mah += a * hr[i];
      }
      ma /= d;
      mah /= d;
      for (int64_t i = 0; i < d; ++i) {
        const double a = double(gr[i]) * gamma[i];
        dr[i] =
            inv_std[r] * static_cast<float>(a - ma - double(hr[i]) * mah);
      }
    }
  });
}

void LayerNormParamBwdKernel(const float* g, const float* xhat, float* dgamma,
                             float* dbeta, int64_t rows, int64_t d) {
  if (dgamma != nullptr) {
    ParallelFor(0, d, GrainForWork(4 * rows), [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i)
        for (int64_t r = 0; r < rows; ++r) {
          dgamma[i] += g[r * d + i] * xhat[r * d + i];
          dbeta[i] += g[r * d + i];
        }
    });
  } else {
    ParallelFor(0, d, GrainForWork(2 * rows), [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i)
        for (int64_t r = 0; r < rows; ++r) dbeta[i] += g[r * d + i];
    });
  }
}

void AdamStepKernel(float* w, float* m, float* v, const float* g, int64_t n,
                    const AdamStepParams& p) {
  const float b1 = p.beta1;
  const float b2 = p.beta2;
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t j = lo; j < hi; ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      const float mhat = m[j] / p.bias_corr1;
      const float vhat = v[j] / p.bias_corr2;
      float update = mhat / (std::sqrt(vhat) + p.eps);
      if (p.weight_decay > 0.0f) update += p.weight_decay * w[j];
      w[j] -= p.lr * update;
    }
  });
}

void GatherRowsKernel(const float* w, const int64_t* ids, float* out,
                      int64_t nids, int64_t d) {
  ParallelFor(0, nids, GrainForWork(d), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int64_t id = ids[i];
      std::copy(w + id * d, w + (id + 1) * d, out + i * d);
    }
  });
}

void ScatterAddRowsKernel(const float* g, const int64_t* ids, float* acc,
                          int64_t nids, int64_t d) {
  // Serial by contract (see kernels.h): duplicate ids hit the same row.
  for (int64_t i = 0; i < nids; ++i) {
    float* dst = acc + ids[i] * d;
    const float* src = g + i * d;
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
}

void AxpyKernel(float* out, const float* a, float scale, int64_t n) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[i] += a[i] * scale;
  });
}

void ScaleKernel(float* p, float scale, int64_t n) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) p[i] *= scale;
  });
}

void AddKernel(const float* a, const float* b, float* out, int64_t n) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[i] = a[i] + b[i];
  });
}

namespace {

KernelTable& ActiveTable() {
  static KernelTable table;  // default-initialised to the kernels above
  return table;
}

}  // namespace

const KernelTable& Dispatch() {
  // First use honours SLIME_KERNEL_BACKEND unless the backend was already
  // chosen explicitly (cheap atomic check after the first call).
  EnsureKernelBackendEnvApplied();
  return ActiveTable();
}

KernelTable SetDispatch(const KernelTable& table) {
  MarkKernelBackendEnvApplied();
  KernelTable previous = ActiveTable();
  ActiveTable() = table;
  return previous;
}

}  // namespace compute
}  // namespace slime
