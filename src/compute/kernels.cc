#include "compute/kernels.h"

#include <algorithm>
#include <cmath>

#include "compute/thread_pool.h"

namespace slime {
namespace compute {
namespace {

/// Rows [lo, hi) of C(m,n) += A(m,k) @ B(k,n), i-k-j order (unit-stride
/// inner loop over both B's row and C's row, which GCC auto-vectorises).
void MatMulRows(const float* a, const float* b, float* c, int64_t k,
                int64_t n, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Rows [lo, hi) of C(m,n) = A(m,k) @ B(n,k)^T: dot products with the j-loop
/// blocked by four so four accumulators stream through one pass over a row.
void MatMulTransBRows(const float* a, const float* b, float* c, int64_t k,
                      int64_t n, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float a0 = 0.0f;
      float a1 = 0.0f;
      float a2 = 0.0f;
      float a3 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        a0 += av * b0[kk];
        a1 += av * b1[kk];
        a2 += av * b2[kk];
        a3 += av * b3[kk];
      }
      crow[j] = a0;
      crow[j + 1] = a1;
      crow[j + 2] = a2;
      crow[j + 3] = a3;
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

/// Columns [jlo, jhi) of C(m,n) += A(k,m)^T @ B(k,n). The outer k loop is
/// kept so each C element accumulates in ascending-k order (bit-identical to
/// the serial kernel); the column split gives disjoint writes.
void MatMulTransACols(const float* a, const float* b, float* c, int64_t k,
                      int64_t m, int64_t n, int64_t jlo, int64_t jhi) {
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = jlo; j < jhi; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void MatMulKernel(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n) {
  ParallelFor(0, m, GrainForWork(2 * k * n), [=](int64_t lo, int64_t hi) {
    MatMulRows(a, b, c, k, n, lo, hi);
  });
}

void MatMulTransAKernel(const float* a, const float* b, float* c, int64_t k,
                        int64_t m, int64_t n) {
  ParallelFor(0, n, GrainForWork(2 * k * m), [=](int64_t lo, int64_t hi) {
    MatMulTransACols(a, b, c, k, m, n, lo, hi);
  });
}

void MatMulTransBKernel(const float* a, const float* b, float* c, int64_t m,
                        int64_t k, int64_t n) {
  ParallelFor(0, m, GrainForWork(2 * k * n), [=](int64_t lo, int64_t hi) {
    MatMulTransBRows(a, b, c, k, n, lo, hi);
  });
}

void BatchMatMulKernel(const float* a, const float* b, float* c,
                       int64_t batch, int64_t m, int64_t k, int64_t n) {
  // Chunk over the flattened batch x row space so one big item still
  // splits; a chunk crossing an item boundary handles each span in turn.
  ParallelFor(0, batch * m, GrainForWork(2 * k * n),
              [=](int64_t lo, int64_t hi) {
                while (lo < hi) {
                  const int64_t bi = lo / m;
                  const int64_t row0 = lo - bi * m;
                  const int64_t rows = std::min(hi - lo, m - row0);
                  MatMulRows(a + bi * m * k, b + bi * k * n, c + bi * m * n,
                             k, n, row0, row0 + rows);
                  lo += rows;
                }
              });
}

void BatchMatMulTransBKernel(const float* a, const float* b, float* c,
                             int64_t batch, int64_t m, int64_t k,
                             int64_t n) {
  ParallelFor(0, batch * m, GrainForWork(2 * k * n),
              [=](int64_t lo, int64_t hi) {
                while (lo < hi) {
                  const int64_t bi = lo / m;
                  const int64_t row0 = lo - bi * m;
                  const int64_t rows = std::min(hi - lo, m - row0);
                  MatMulTransBRows(a + bi * m * k, b + bi * n * k,
                                   c + bi * m * n, k, n, row0, row0 + rows);
                  lo += rows;
                }
              });
}

void BatchMatMulTransAKernel(const float* a, const float* b, float* c,
                             int64_t batch, int64_t k, int64_t m,
                             int64_t n) {
  // The column-parallel kernel writes all rows of one output item, so the
  // deterministic split here is per batch item.
  ParallelFor(0, batch, GrainForWork(2 * k * m * n),
              [=](int64_t lo, int64_t hi) {
                for (int64_t bi = lo; bi < hi; ++bi) {
                  MatMulTransACols(a + bi * k * m, b + bi * k * n,
                                   c + bi * m * n, k, m, n, 0, n);
                }
              });
}

void ComplexMulKernel(const float* ar, const float* ai, const float* br,
                      const float* bi, float* out_re, float* out_im,
                      int64_t repeats, int64_t block) {
  ParallelFor(0, repeats * block, kElementwiseGrain,
              [=](int64_t lo, int64_t hi) {
                int64_t j = lo % block;
                for (int64_t f = lo; f < hi; ++f) {
                  const float xr = ar[f];
                  const float xi = ai[f];
                  const float wr = br[j];
                  const float wi = bi[j];
                  out_re[f] = xr * wr - xi * wi;
                  out_im[f] = xr * wi + xi * wr;
                  if (++j == block) j = 0;
                }
              });
}

double SumKernel(const float* p, int64_t n) {
  return ParallelSum(0, n, kReductionGrain, [=](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) acc += p[i];
    return acc;
  });
}

double DotKernel(const float* a, const float* b, int64_t n) {
  return ParallelSum(0, n, kReductionGrain, [=](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) acc += double(a[i]) * b[i];
    return acc;
  });
}

bool AllFiniteKernel(const float* p, int64_t n) {
  return ParallelAll(0, n, kReductionGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      if (!std::isfinite(p[i])) return false;
    }
    return true;
  });
}

namespace {

KernelTable& ActiveTable() {
  static KernelTable table;  // default-initialised to the kernels above
  return table;
}

}  // namespace

const KernelTable& Dispatch() { return ActiveTable(); }

KernelTable SetDispatch(const KernelTable& table) {
  KernelTable previous = ActiveTable();
  ActiveTable() = table;
  return previous;
}

}  // namespace compute
}  // namespace slime
