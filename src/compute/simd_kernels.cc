// AVX2/FMA kernel tier behind the Dispatch() registry (see backend.h and
// docs/KERNELS.md). Compiled into every x86-64 build with SLIME_SIMD=ON but
// only *selected* at runtime on CPUs reporting avx2+fma: the intrinsics live
// in per-function __attribute__((target(...))) bodies, so the translation
// unit itself builds for the baseline ISA and nothing leaks into other TUs.
//
// Determinism contract: every kernel's work split is derived from the
// problem shape alone (never the thread count), and where a kernel departs
// from the scalar tier's decomposition — plain matmul parallelises over
// 16-column tiles of C instead of rows — each output element is still
// computed entirely within one work unit in a fixed accumulation order, so
// within this backend results are bit-identical at any thread count. Across
// backends results
// differ in the last ulp (FMA contracts mul+add into one rounding), which is
// why cross-backend equivalence is gated by gradcheck/ranking agreement, not
// CRC. Reductions (sum/dot/all_finite) and the transcendental rowwise
// kernels (softmax/GELU/LayerNorm) reuse the scalar implementations: their
// cost is dominated by exp/erf calls, and sharing them keeps loss curves
// identical between backends up to matmul ulp drift.

#include "compute/backend.h"
#include "compute/kernels.h"
#include "compute/thread_pool.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#if defined(__x86_64__) && defined(SLIME_SIMD_ENABLED)
#define SLIME_SIMD_COMPILED 1
#include <immintrin.h>
#else
#define SLIME_SIMD_COMPILED 0
#endif

namespace slime {
namespace compute {
namespace internal {

#if SLIME_SIMD_COMPILED

#define SLIME_TARGET_AVX2 __attribute__((target("avx2,fma")))

namespace {

/// Horizontal sum of an 8-lane accumulator in a fixed lane order, so the
/// result does not depend on anything but the register contents.
SLIME_TARGET_AVX2 inline float HSum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

/// One 16-column tile of C(m,n) += A(m,k) @ B(k,n), covering all m rows.
/// The tile's B strip is first packed into a contiguous 32-byte-aligned
/// scratch buffer — a pure layout change: the packed values and the FMA
/// sequence are identical to reading B in place, so numerics are
/// unaffected — which turns the strided walk over B into a one-off cost
/// amortised over all rows, and lets the hot loop stream the pack
/// sequentially with aligned loads. A 4x16 register microkernel holds C in
/// 8 accumulators across the whole k loop (2 pack loads and 8 FMAs per k
/// step); a 1x16 kernel covers the row remainder. Every C element
/// accumulates in ascending-k order. Unlike the scalar tier there is no
/// zero-skip on A: fma(0, b, acc) only differs when b is non-finite, and
/// dropping the branch keeps the FMA pipeline full.
SLIME_TARGET_AVX2 void MatMulColTile16Simd(const float* a, const float* b,
                                           float* c, int64_t m, int64_t k,
                                           int64_t n, int64_t j) {
  // Per-worker scratch for the packed strip; ParallelFor workers never
  // share it. Reused across calls to avoid per-matmul allocation churn.
  static thread_local std::vector<float> pack_storage;
  pack_storage.resize(static_cast<size_t>(16 * k) + 8);
  float* pack = pack_storage.data();
  pack += (32 - reinterpret_cast<uintptr_t>(pack) % 32) % 32 / sizeof(float);
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* bp = b + kk * n + j;
    _mm256_store_ps(pack + kk * 16, _mm256_loadu_ps(bp));
    _mm256_store_ps(pack + kk * 16 + 8, _mm256_loadu_ps(bp + 8));
  }
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n + j;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    __m256 r00 = _mm256_loadu_ps(c0);
    __m256 r01 = _mm256_loadu_ps(c0 + 8);
    __m256 r10 = _mm256_loadu_ps(c1);
    __m256 r11 = _mm256_loadu_ps(c1 + 8);
    __m256 r20 = _mm256_loadu_ps(c2);
    __m256 r21 = _mm256_loadu_ps(c2 + 8);
    __m256 r30 = _mm256_loadu_ps(c3);
    __m256 r31 = _mm256_loadu_ps(c3 + 8);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float* bp = pack + kk * 16;
      const __m256 b0 = _mm256_load_ps(bp);
      const __m256 b1 = _mm256_load_ps(bp + 8);
      __m256 v = _mm256_set1_ps(a0[kk]);
      r00 = _mm256_fmadd_ps(v, b0, r00);
      r01 = _mm256_fmadd_ps(v, b1, r01);
      v = _mm256_set1_ps(a1[kk]);
      r10 = _mm256_fmadd_ps(v, b0, r10);
      r11 = _mm256_fmadd_ps(v, b1, r11);
      v = _mm256_set1_ps(a2[kk]);
      r20 = _mm256_fmadd_ps(v, b0, r20);
      r21 = _mm256_fmadd_ps(v, b1, r21);
      v = _mm256_set1_ps(a3[kk]);
      r30 = _mm256_fmadd_ps(v, b0, r30);
      r31 = _mm256_fmadd_ps(v, b1, r31);
    }
    _mm256_storeu_ps(c0, r00);
    _mm256_storeu_ps(c0 + 8, r01);
    _mm256_storeu_ps(c1, r10);
    _mm256_storeu_ps(c1 + 8, r11);
    _mm256_storeu_ps(c2, r20);
    _mm256_storeu_ps(c2 + 8, r21);
    _mm256_storeu_ps(c3, r30);
    _mm256_storeu_ps(c3 + 8, r31);
  }
  for (; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n + j;
    __m256 acc0 = _mm256_loadu_ps(crow);
    __m256 acc1 = _mm256_loadu_ps(crow + 8);
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 vav = _mm256_set1_ps(arow[kk]);
      const float* bp = pack + kk * 16;
      acc0 = _mm256_fmadd_ps(vav, _mm256_load_ps(bp), acc0);
      acc1 = _mm256_fmadd_ps(vav, _mm256_load_ps(bp + 8), acc1);
    }
    _mm256_storeu_ps(crow, acc0);
    _mm256_storeu_ps(crow + 8, acc1);
  }
}

/// Tail columns [j0, n) — fewer than 16 — of C(m,n) += A(m,k) @ B(k,n) for
/// rows [lo, hi): an 8-wide strip if one fits, then scalar columns, every
/// element ascending-k.
SLIME_TARGET_AVX2 void MatMulColTailSimd(const float* a, const float* b,
                                         float* c, int64_t k, int64_t n,
                                         int64_t j0, int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int64_t j = j0;
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]),
                              _mm256_loadu_ps(b + kk * n + j), acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    for (; j < n; ++j) {
      float acc = crow[j];
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * n + j];
      crow[j] = acc;
    }
  }
}

/// Rows [lo, hi) of C(m,n) = A(m,k) @ B(n,k)^T: four independent 8-lane FMA
/// chains per output element (breaks the FMA latency chain), combined and
/// horizontal-summed in a fixed order, scalar k tail.
SLIME_TARGET_AVX2 void MatMulTransBRowsSimd(const float* a, const float* b,
                                            float* c, int64_t k, int64_t n,
                                            int64_t lo, int64_t hi) {
  for (int64_t i = lo; i < hi; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      int64_t kk = 0;
      for (; kk + 32 <= k; kk += 32) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                               _mm256_loadu_ps(brow + kk), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk + 8),
                               _mm256_loadu_ps(brow + kk + 8), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk + 16),
                               _mm256_loadu_ps(brow + kk + 16), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk + 24),
                               _mm256_loadu_ps(brow + kk + 24), acc3);
      }
      for (; kk + 8 <= k; kk += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                               _mm256_loadu_ps(brow + kk), acc0);
      }
      float sum = HSum8(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                      _mm256_add_ps(acc2, acc3)));
      for (; kk < k; ++kk) sum += arow[kk] * brow[kk];
      crow[j] = sum;
    }
  }
}

/// Columns [jlo, jhi) of C(m,n) += A(k,m)^T @ B(k,n). Outer k loop kept so
/// each element still accumulates in ascending-k order; the j vectorisation
/// only widens the disjoint column writes.
SLIME_TARGET_AVX2 void MatMulTransAColsSimd(const float* a, const float* b,
                                            float* c, int64_t k, int64_t m,
                                            int64_t n, int64_t jlo,
                                            int64_t jhi) {
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      const __m256 vav = _mm256_set1_ps(av);
      int64_t j = jlo;
      for (; j + 8 <= jhi; j += 8) {
        const __m256 vc = _mm256_loadu_ps(crow + j);
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j), vc));
      }
      for (; j < jhi; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Chunk [lo, hi) of the suffix-broadcast complex multiply. The vector body
/// only engages while a full 8-lane span stays inside one b-block repeat;
/// boundary elements take the scalar path, so chunk composition (fixed by
/// the grain, not the thread count) fully determines each element's path.
SLIME_TARGET_AVX2 void ComplexMulChunkSimd(const float* ar, const float* ai,
                                           const float* br, const float* bi,
                                           float* out_re, float* out_im,
                                           int64_t block, int64_t lo,
                                           int64_t hi) {
  int64_t j = lo % block;
  int64_t f = lo;
  while (f < hi) {
    if (j + 8 <= block && f + 8 <= hi) {
      const __m256 xr = _mm256_loadu_ps(ar + f);
      const __m256 xi = _mm256_loadu_ps(ai + f);
      const __m256 wr = _mm256_loadu_ps(br + j);
      const __m256 wi = _mm256_loadu_ps(bi + j);
      _mm256_storeu_ps(out_re + f,
                       _mm256_fmsub_ps(xr, wr, _mm256_mul_ps(xi, wi)));
      _mm256_storeu_ps(out_im + f,
                       _mm256_fmadd_ps(xr, wi, _mm256_mul_ps(xi, wr)));
      f += 8;
      j += 8;
      if (j == block) j = 0;
    } else {
      out_re[f] = ar[f] * br[j] - ai[f] * bi[j];
      out_im[f] = ar[f] * bi[j] + ai[f] * br[j];
      ++f;
      if (++j == block) j = 0;
    }
  }
}

SLIME_TARGET_AVX2 void AxpyChunkSimd(float* out, const float* a, float scale,
                                     int64_t lo, int64_t hi) {
  const __m256 vs = _mm256_set1_ps(scale);
  int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_fmadd_ps(_mm256_loadu_ps(a + i), vs,
                                              _mm256_loadu_ps(out + i)));
  }
  for (; i < hi; ++i) out[i] += a[i] * scale;
}

SLIME_TARGET_AVX2 void ScaleChunkSimd(float* p, float scale, int64_t lo,
                                      int64_t hi) {
  const __m256 vs = _mm256_set1_ps(scale);
  int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(p + i, _mm256_mul_ps(_mm256_loadu_ps(p + i), vs));
  }
  for (; i < hi; ++i) p[i] *= scale;
}

SLIME_TARGET_AVX2 void AddChunkSimd(const float* a, const float* b,
                                    float* out, int64_t lo, int64_t hi) {
  int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < hi; ++i) out[i] = a[i] + b[i];
}

SLIME_TARGET_AVX2 void AdamChunkSimd(float* w, float* m, float* v,
                                     const float* g, const AdamStepParams& p,
                                     int64_t lo, int64_t hi) {
  const __m256 vb1 = _mm256_set1_ps(p.beta1);
  const __m256 vb2 = _mm256_set1_ps(p.beta2);
  const __m256 vc1 = _mm256_set1_ps(1.0f - p.beta1);
  const __m256 vc2 = _mm256_set1_ps(1.0f - p.beta2);
  const __m256 vbc1 = _mm256_set1_ps(p.bias_corr1);
  const __m256 vbc2 = _mm256_set1_ps(p.bias_corr2);
  const __m256 veps = _mm256_set1_ps(p.eps);
  const __m256 vlr = _mm256_set1_ps(p.lr);
  const __m256 vwd = _mm256_set1_ps(p.weight_decay);
  const bool decay = p.weight_decay > 0.0f;
  int64_t j = lo;
  for (; j + 8 <= hi; j += 8) {
    const __m256 vg = _mm256_loadu_ps(g + j);
    __m256 vm = _mm256_loadu_ps(m + j);
    __m256 vv = _mm256_loadu_ps(v + j);
    vm = _mm256_fmadd_ps(vb1, vm, _mm256_mul_ps(vc1, vg));
    vv = _mm256_fmadd_ps(vb2, vv, _mm256_mul_ps(vc2, _mm256_mul_ps(vg, vg)));
    _mm256_storeu_ps(m + j, vm);
    _mm256_storeu_ps(v + j, vv);
    const __m256 mhat = _mm256_div_ps(vm, vbc1);
    const __m256 vhat = _mm256_div_ps(vv, vbc2);
    __m256 update =
        _mm256_div_ps(mhat, _mm256_add_ps(_mm256_sqrt_ps(vhat), veps));
    __m256 vw = _mm256_loadu_ps(w + j);
    if (decay) update = _mm256_fmadd_ps(vwd, vw, update);
    vw = _mm256_fnmadd_ps(vlr, update, vw);
    _mm256_storeu_ps(w + j, vw);
  }
  for (; j < hi; ++j) {
    m[j] = p.beta1 * m[j] + (1.0f - p.beta1) * g[j];
    v[j] = p.beta2 * v[j] + (1.0f - p.beta2) * g[j] * g[j];
    const float mhat = m[j] / p.bias_corr1;
    const float vhat = v[j] / p.bias_corr2;
    float update = mhat / (std::sqrt(vhat) + p.eps);
    if (decay) update += p.weight_decay * w[j];
    w[j] -= p.lr * update;
  }
}

// ---- KernelTable entry points: same grains and chunk layout as the scalar
// tier (kernels.cc), so the split is identical and only the per-chunk body
// changes.

/// Unlike the scalar tier, plain matmul parallelises over 16-column tiles
/// of C rather than rows: each C element is computed entirely within one
/// tile in ascending-k order, so the tile split cannot affect results at
/// any thread count, and the per-tile B pack is amortised over all m rows.
void SimdMatMulKernel(const float* a, const float* b, float* c, int64_t m,
                      int64_t k, int64_t n) {
  const int64_t tiles = n / 16;
  if (tiles > 0) {
    ParallelFor(0, tiles, GrainForWork(2 * k * m * 16),
                [=](int64_t lo, int64_t hi) {
                  for (int64_t t = lo; t < hi; ++t) {
                    MatMulColTile16Simd(a, b, c, m, k, n, t * 16);
                  }
                });
  }
  if (tiles * 16 < n) {
    ParallelFor(0, m, GrainForWork(2 * k * (n - tiles * 16)),
                [=](int64_t lo, int64_t hi) {
                  MatMulColTailSimd(a, b, c, k, n, tiles * 16, lo, hi);
                });
  }
}

void SimdMatMulTransAKernel(const float* a, const float* b, float* c,
                            int64_t k, int64_t m, int64_t n) {
  ParallelFor(0, n, GrainForWork(2 * k * m), [=](int64_t lo, int64_t hi) {
    MatMulTransAColsSimd(a, b, c, k, m, n, lo, hi);
  });
}

void SimdMatMulTransBKernel(const float* a, const float* b, float* c,
                            int64_t m, int64_t k, int64_t n) {
  ParallelFor(0, m, GrainForWork(2 * k * n), [=](int64_t lo, int64_t hi) {
    MatMulTransBRowsSimd(a, b, c, k, n, lo, hi);
  });
}

void SimdBatchMatMulKernel(const float* a, const float* b, float* c,
                           int64_t batch, int64_t m, int64_t k, int64_t n) {
  const int64_t tiles = n / 16;
  if (tiles > 0) {
    // Flattened batch x tile index; each unit is one column tile of one
    // batch member, so any split yields identical results.
    ParallelFor(0, batch * tiles, GrainForWork(2 * k * m * 16),
                [=](int64_t lo, int64_t hi) {
                  for (int64_t idx = lo; idx < hi; ++idx) {
                    const int64_t bi = idx / tiles;
                    const int64_t t = idx - bi * tiles;
                    MatMulColTile16Simd(a + bi * m * k, b + bi * k * n,
                                        c + bi * m * n, m, k, n, t * 16);
                  }
                });
  }
  if (tiles * 16 < n) {
    ParallelFor(0, batch * m, GrainForWork(2 * k * (n - tiles * 16)),
                [=](int64_t lo, int64_t hi) {
                  while (lo < hi) {
                    const int64_t bi = lo / m;
                    const int64_t row0 = lo - bi * m;
                    const int64_t rows = std::min(hi - lo, m - row0);
                    MatMulColTailSimd(a + bi * m * k, b + bi * k * n,
                                      c + bi * m * n, k, n, tiles * 16, row0,
                                      row0 + rows);
                    lo += rows;
                  }
                });
  }
}

void SimdBatchMatMulTransBKernel(const float* a, const float* b, float* c,
                                 int64_t batch, int64_t m, int64_t k,
                                 int64_t n) {
  ParallelFor(0, batch * m, GrainForWork(2 * k * n),
              [=](int64_t lo, int64_t hi) {
                while (lo < hi) {
                  const int64_t bi = lo / m;
                  const int64_t row0 = lo - bi * m;
                  const int64_t rows = std::min(hi - lo, m - row0);
                  MatMulTransBRowsSimd(a + bi * m * k, b + bi * n * k,
                                       c + bi * m * n, k, n, row0,
                                       row0 + rows);
                  lo += rows;
                }
              });
}

void SimdBatchMatMulTransAKernel(const float* a, const float* b, float* c,
                                 int64_t batch, int64_t k, int64_t m,
                                 int64_t n) {
  ParallelFor(0, batch, GrainForWork(2 * k * m * n),
              [=](int64_t lo, int64_t hi) {
                for (int64_t bi = lo; bi < hi; ++bi) {
                  MatMulTransAColsSimd(a + bi * k * m, b + bi * k * n,
                                       c + bi * m * n, k, m, n, 0, n);
                }
              });
}

void SimdComplexMulKernel(const float* ar, const float* ai, const float* br,
                          const float* bi, float* out_re, float* out_im,
                          int64_t repeats, int64_t block) {
  ParallelFor(0, repeats * block, kElementwiseGrain,
              [=](int64_t lo, int64_t hi) {
                ComplexMulChunkSimd(ar, ai, br, bi, out_re, out_im, block, lo,
                                    hi);
              });
}

void SimdAxpyKernel(float* out, const float* a, float scale, int64_t n) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    AxpyChunkSimd(out, a, scale, lo, hi);
  });
}

void SimdScaleKernel(float* p, float scale, int64_t n) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    ScaleChunkSimd(p, scale, lo, hi);
  });
}

void SimdAddKernel(const float* a, const float* b, float* out, int64_t n) {
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    AddChunkSimd(a, b, out, lo, hi);
  });
}

void SimdAdamStepKernel(float* w, float* m, float* v, const float* g,
                        int64_t n, const AdamStepParams& p) {
  ParallelFor(0, n, kElementwiseGrain, [=, &p](int64_t lo, int64_t hi) {
    AdamChunkSimd(w, m, v, g, p, lo, hi);
  });
}

}  // namespace

KernelTable SimdKernelTable() {
  KernelTable t;  // starts as the scalar tier; override the vectorised ops
  t.matmul = &SimdMatMulKernel;
  t.matmul_trans_a = &SimdMatMulTransAKernel;
  t.matmul_trans_b = &SimdMatMulTransBKernel;
  t.batch_matmul = &SimdBatchMatMulKernel;
  t.batch_matmul_trans_a = &SimdBatchMatMulTransAKernel;
  t.batch_matmul_trans_b = &SimdBatchMatMulTransBKernel;
  t.complex_mul = &SimdComplexMulKernel;
  t.adam_step = &SimdAdamStepKernel;
  t.axpy = &SimdAxpyKernel;
  t.scale = &SimdScaleKernel;
  t.add = &SimdAddKernel;
  return t;
}

bool SimdCompiledFlag() { return true; }

#else  // !SLIME_SIMD_COMPILED

KernelTable SimdKernelTable() { return KernelTable{}; }

bool SimdCompiledFlag() { return false; }

#endif  // SLIME_SIMD_COMPILED

}  // namespace internal
}  // namespace compute
}  // namespace slime
