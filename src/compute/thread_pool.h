#ifndef SLIME4REC_COMPUTE_THREAD_POOL_H_
#define SLIME4REC_COMPUTE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace slime {

namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace compute {

/// A fixed-size pool of worker threads executing chunked loops. The caller
/// thread always participates, so a pool configured for T threads uses T-1
/// workers; `threads == 1` means fully inline execution with no pool at all.
///
/// Scheduling is dynamic (workers pull chunk indices from an atomic
/// counter), but **work decomposition is static**: callers split a loop into
/// a chunk list that depends only on the problem size and grain, never on
/// the thread count. Each chunk writes disjoint outputs (or produces an
/// index-addressed partial), so results are bit-identical for every thread
/// count — which thread runs a chunk cannot matter.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining thread).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `chunk_fn(c)` for every c in [0, num_chunks) across the workers
  /// and the calling thread; returns when all chunks completed. Must not be
  /// called from inside a pool worker (use InParallelRegion() to detect).
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& chunk_fn);

 private:
  /// Per-invocation shared state. Workers hold a shared_ptr so a slow
  /// worker draining the tail of job N can never touch job N+1's counters.
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t total = 0;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
  };

  void WorkerMain();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::shared_ptr<Job> job_;   // guarded by mu_
  uint64_t job_generation_ = 0;  // guarded by mu_
  bool shutdown_ = false;        // guarded by mu_
};

/// True while executing inside a pool worker; nested parallel constructs
/// detect this and degrade to inline serial execution.
bool InParallelRegion();

/// max(1, std::thread::hardware_concurrency()).
int HardwareThreads();

/// Largest accepted configured thread count. Far above any sensible CPU
/// fan-out; the cap exists so a typo ("10000000") fails with a clear error
/// instead of exhausting the machine spawning threads.
inline constexpr int kMaxThreadCount = 512;

/// Strictly parses a thread-count string from untrusted configuration (the
/// --threads flag, the SLIME_NUM_THREADS environment variable): an integer
/// in [1, kMaxThreadCount], no trailing junk. Empty, non-numeric, zero,
/// negative and absurdly large inputs all return InvalidArgument with the
/// offending text in the message.
Result<int> ParseThreadCount(const std::string& text);

/// The currently configured thread count. Initialised on first use from
/// the SLIME_NUM_THREADS environment variable when it parses cleanly (see
/// ParseThreadCount; an invalid value is reported on stderr and ignored),
/// else from HardwareThreads().
int NumThreads();

/// Reconfigures the global pool. `threads <= 0` selects HardwareThreads();
/// positive values must be <= kMaxThreadCount (checked). Not thread-safe
/// against concurrently running kernels; call between parallel regions
/// (startup, test setup, CLI flag handling).
void SetNumThreads(int threads);

/// RAII thread-count override for embedders: saves the current setting,
/// applies `threads`, restores on destruction.
class ComputeContext {
 public:
  explicit ComputeContext(int threads);
  ~ComputeContext();
  ComputeContext(const ComputeContext&) = delete;
  ComputeContext& operator=(const ComputeContext&) = delete;

 private:
  int saved_;
};

/// Deterministic blocked loop over [begin, end): the range is split into
/// ceil(range / grain) chunks of `grain` consecutive indices (the last chunk
/// may be short) and `body(lo, hi)` runs once per chunk. Chunk boundaries
/// depend only on the range and grain — never on the thread count — and each
/// body invocation is the exact serial loop it would be single-threaded, so
/// disjoint per-index writes are bit-identical for every thread count.
/// Runs inline when the pool is size 1, the range fits one chunk, or the
/// caller is already inside a parallel region.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t lo, int64_t hi)>& body);

/// Deterministic sum reduction: per-chunk partials (same fixed chunking as
/// ParallelFor) are combined **in chunk index order** on the calling thread,
/// so the result is bit-identical for every thread count.
double ParallelSum(int64_t begin, int64_t end, int64_t grain,
                   const std::function<double(int64_t lo, int64_t hi)>&
                       chunk_sum);

/// Deterministic conjunction: true iff every chunk predicate is true
/// (logical AND is order-independent, chunking matches ParallelFor).
bool ParallelAll(int64_t begin, int64_t end, int64_t grain,
                 const std::function<bool(int64_t lo, int64_t hi)>&
                     chunk_all);

/// Default grain sizes (elements per chunk). Chosen so chunk setup overhead
/// stays well under 1% of chunk work on scalar CPU code.
inline constexpr int64_t kElementwiseGrain = 1 << 14;
inline constexpr int64_t kReductionGrain = 1 << 15;

/// Rows (or other outer units) per chunk for a loop whose per-unit cost is
/// `work_per_unit` scalar flops: targets ~32K flops per chunk. Depends only
/// on the workload shape, keeping the decomposition deterministic.
int64_t GrainForWork(int64_t work_per_unit);

/// Points the compute layer's instrumentation at `registry` (counters
/// "compute.regions" / "compute.inline_regions" / "compute.chunks" and the
/// "compute.region_nanos" histogram of per-region wall time). nullptr (the
/// default) detaches all handles — the hot path then pays one predictable
/// branch per region. Region wall times come from the steady clock, so
/// they are NOT deterministic; never fold them into determinism
/// signatures (the counters are fine — chunk decomposition is fixed).
/// Like SetNumThreads, not thread-safe against running kernels; call
/// between parallel regions.
void SetMetricsRegistry(obs::MetricsRegistry* registry);

}  // namespace compute
}  // namespace slime

#endif  // SLIME4REC_COMPUTE_THREAD_POOL_H_
