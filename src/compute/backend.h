#ifndef SLIME4REC_COMPUTE_BACKEND_H_
#define SLIME4REC_COMPUTE_BACKEND_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "compute/kernels.h"

namespace slime {
namespace compute {

/// Named kernel-backend tiers behind the Dispatch() registry (kernels.h).
///
/// Two tiers ship today:
///   - "scalar": the portable blocked ParallelFor kernels. Always available.
///   - "simd":   AVX2/FMA implementations of the matmul family, ComplexMul
///               and the elementwise primitives, selected at runtime only on
///               CPUs that report both features. Compiled in when the build
///               enables SLIME_SIMD on x86-64; falls back to scalar
///               otherwise.
///
/// Correctness contract (docs/KERNELS.md): every backend is bit-identical
/// across thread counts *within* itself; *across* backends only
/// gradcheck/ranking agreement is promised, because FMA contraction rounds
/// differently from separate multiply+add.
///
/// Selection order: explicit SetKernelBackend / SetDispatch wins; otherwise
/// the SLIME_KERNEL_BACKEND environment variable ("auto", "scalar", "simd")
/// is read on first Dispatch(); otherwise the default table ("scalar") is
/// used. "auto" resolves to "simd" when compiled in and the host CPU
/// supports it, else "scalar".

/// True when the simd backend was compiled into this binary (x86-64 build
/// with SLIME_SIMD=ON). Says nothing about the host CPU.
bool SimdBackendCompiled();

/// Runtime CPU feature check for the simd tier (cpuid via
/// __builtin_cpu_supports). The SLIME_DISABLE_AVX2=1 environment variable
/// forces false — an operational kill switch that also lets tests exercise
/// the non-AVX2 fallback path on any host.
bool CpuSupportsAvx2Fma();

/// Detected CPU features relevant to kernel selection, space-separated
/// (e.g. "avx2 fma avx512f"), or "none". For logs and bench host stanzas.
std::string CpuFeatureString();

/// Backend names selectable on this host right now, in preference order
/// (e.g. {"simd", "scalar"} on an AVX2/FMA host, {"scalar"} elsewhere).
std::vector<std::string> AvailableKernelBackends();

/// Strict validation of an untrusted backend name ("auto", "scalar",
/// "simd"); returns the canonical name or InvalidArgument naming the
/// offending text and the valid set. Does not check host availability.
Result<std::string> ParseKernelBackend(const std::string& text);

/// Installs the named backend's kernel table ("auto" resolves per host).
/// Returns the resolved concrete name ("scalar" or "simd"), or
/// InvalidArgument for unknown names, or Unavailable when the backend is not
/// compiled in / the host CPU lacks the features. Not thread-safe against
/// running kernels.
Result<std::string> SetKernelBackend(const std::string& name);

/// Name of the backend whose table SetKernelBackend installed last
/// ("scalar" until then, after env resolution). A raw SetDispatch() swap
/// does not change this name.
std::string ActiveKernelBackend();

/// Small stable id for metrics gauges: scalar=0, simd=1, anything else -1.
int KernelBackendId(const std::string& name);

/// Applies SLIME_KERNEL_BACKEND on the first call (no-op afterwards, and a
/// no-op forever once MarkKernelBackendEnvApplied ran). Invalid or
/// unavailable values fall back to scalar with a warning on stderr rather
/// than aborting startup. Called from Dispatch().
void EnsureKernelBackendEnvApplied();

/// Marks the env var as consumed so a later Dispatch() never overrides an
/// explicit SetDispatch()/SetKernelBackend() choice.
void MarkKernelBackendEnvApplied();

namespace internal {

/// Defined in simd_kernels.cc; returns the AVX2/FMA table when the simd tier
/// is compiled in, the default (scalar) table otherwise. Callers must gate
/// on SimdBackendCompiled() + CpuSupportsAvx2Fma().
KernelTable SimdKernelTable();

/// Compile-time availability flag, defined next to the table so the two
/// can't drift.
bool SimdCompiledFlag();

}  // namespace internal

}  // namespace compute
}  // namespace slime

#endif  // SLIME4REC_COMPUTE_BACKEND_H_
