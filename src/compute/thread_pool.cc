#include "compute/thread_pool.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/macros.h"
#include "observability/metrics.h"

namespace slime {
namespace compute {
namespace {

thread_local bool t_in_parallel_region = false;

/// Cached handles into the registry installed by SetMetricsRegistry; all
/// detached (single-branch no-ops) until one is installed.
struct ComputeMetrics {
  obs::Counter regions;
  obs::Counter inline_regions;
  obs::Counter chunks;
  obs::Histogram region_nanos;
};

ComputeMetrics& GetComputeMetrics() {
  static ComputeMetrics metrics;
  return metrics;
}

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sets the region flag for the duration of a chunk batch.
class RegionGuard {
 public:
  RegionGuard() { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = false; }
};

}  // namespace

bool InParallelRegion() { return t_in_parallel_region; }

ThreadPool::ThreadPool(int threads) {
  SLIME_CHECK_GE(threads, 1);
  workers_.reserve(threads - 1);
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerMain() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk,
                    [&] { return shutdown_ || job_generation_ != seen; });
      if (shutdown_) return;
      seen = job_generation_;
      job = job_;
    }
    if (!job) continue;
    RegionGuard guard;
    for (;;) {
      const int64_t c = job->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job->total) break;
      (*job->fn)(c);
      if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job->total) {
        std::lock_guard<std::mutex> lk(mu_);
        cv_done_.notify_all();
      }
    }
  }
}

void ThreadPool::Run(int64_t num_chunks,
                     const std::function<void(int64_t)>& chunk_fn) {
  SLIME_CHECK(!InParallelRegion());
  if (num_chunks <= 0) return;
  auto job = std::make_shared<Job>();
  job->fn = &chunk_fn;
  job->total = num_chunks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = job;
    ++job_generation_;
  }
  cv_work_.notify_all();
  // The caller participates; a caller-run chunk that is the last to finish
  // satisfies the wait predicate directly, no self-notify needed.
  for (;;) {
    const int64_t c = job->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->total) break;
    chunk_fn(c);
    job->done.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] {
    return job->done.load(std::memory_order_acquire) == job->total;
  });
  job_.reset();
}

namespace {

/// Global pool configuration. The pool is created lazily so that embedders
/// calling SetNumThreads before any kernel never pay for a default pool.
struct PoolState {
  std::mutex mu;
  int threads = 0;  // 0 = not yet initialised
  std::unique_ptr<ThreadPool> pool;
};

PoolState& GetPoolState() {
  static PoolState state;
  return state;
}

int EnvOrHardwareThreads() {
  if (const char* env = std::getenv("SLIME_NUM_THREADS")) {
    const Result<int> parsed = ParseThreadCount(env);
    if (parsed.ok()) return parsed.value();
    std::fprintf(stderr,
                 "warning: ignoring SLIME_NUM_THREADS=\"%s\" (%s); using %d "
                 "hardware thread(s)\n",
                 env, parsed.status().message().c_str(), HardwareThreads());
  }
  return HardwareThreads();
}

/// Returns the pool to run on, or nullptr for inline execution.
ThreadPool* ActivePool() {
  PoolState& s = GetPoolState();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.threads == 0) s.threads = EnvOrHardwareThreads();
  if (s.threads == 1) return nullptr;
  if (!s.pool || s.pool->threads() != s.threads) {
    s.pool.reset();  // join old workers before spawning replacements
    s.pool = std::make_unique<ThreadPool>(s.threads);
  }
  return s.pool.get();
}

}  // namespace

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hc));
}

int NumThreads() {
  PoolState& s = GetPoolState();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.threads == 0) s.threads = EnvOrHardwareThreads();
  return s.threads;
}

void SetNumThreads(int threads) {
  SLIME_CHECK_LE(threads, kMaxThreadCount);
  PoolState& s = GetPoolState();
  std::lock_guard<std::mutex> lk(s.mu);
  s.threads = threads <= 0 ? HardwareThreads() : threads;
  if (s.pool && s.pool->threads() != s.threads) s.pool.reset();
}

Result<int> ParseThreadCount(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("thread count is empty");
  }
  // strtol silently skips leading whitespace; configuration values should
  // be exact, so reject it up front.
  if (std::isspace(static_cast<unsigned char>(text[0]))) {
    return Status::InvalidArgument("thread count \"" + text +
                                   "\" is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("thread count \"" + text +
                                   "\" is not an integer");
  }
  // On ERANGE strtol clamps to LONG_MIN/LONG_MAX, which the two range
  // checks below classify correctly, so errno needs no separate branch.
  if (v < 1) {
    return Status::InvalidArgument("thread count must be >= 1, got \"" +
                                   text + "\"");
  }
  if (v > kMaxThreadCount) {
    return Status::InvalidArgument(
        "thread count \"" + text + "\" exceeds the maximum of " +
        std::to_string(kMaxThreadCount));
  }
  return static_cast<int>(v);
}

ComputeContext::ComputeContext(int threads) : saved_(NumThreads()) {
  SetNumThreads(threads);
}

ComputeContext::~ComputeContext() { SetNumThreads(saved_); }

int64_t GrainForWork(int64_t work_per_unit) {
  constexpr int64_t kTargetFlopsPerChunk = 32 * 1024;
  return std::max<int64_t>(
      1, kTargetFlopsPerChunk / std::max<int64_t>(1, work_per_unit));
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t num_chunks = (range + grain - 1) / grain;
  auto chunk_fn = [&](int64_t c) {
    const int64_t lo = begin + c * grain;
    body(lo, std::min(end, lo + grain));
  };
  ThreadPool* pool =
      (num_chunks == 1 || InParallelRegion()) ? nullptr : ActivePool();
  // One counter bump per region (never per chunk — this is the hottest
  // loop in the library) and a clock read only when a histogram is live.
  ComputeMetrics& cm = GetComputeMetrics();
  const bool timed = cm.region_nanos.attached();
  const int64_t t0 = timed ? SteadyNowNanos() : 0;
  cm.regions.Increment();
  cm.chunks.Increment(num_chunks);
  if (pool == nullptr) {
    cm.inline_regions.Increment();
    for (int64_t c = 0; c < num_chunks; ++c) chunk_fn(c);
  } else {
    pool->Run(num_chunks, chunk_fn);
  }
  if (timed) cm.region_nanos.Observe(SteadyNowNanos() - t0);
}

void SetMetricsRegistry(obs::MetricsRegistry* registry) {
  ComputeMetrics& cm = GetComputeMetrics();
  if (registry == nullptr) {
    cm = ComputeMetrics();  // all handles detached again
    return;
  }
  cm.regions = registry->counter("compute.regions");
  cm.inline_regions = registry->counter("compute.inline_regions");
  cm.chunks = registry->counter("compute.chunks");
  cm.region_nanos = registry->histogram("compute.region_nanos");
}

double ParallelSum(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<double(int64_t, int64_t)>& chunk_sum) {
  const int64_t range = end - begin;
  if (range <= 0) return 0.0;
  grain = std::max<int64_t>(1, grain);
  const int64_t num_chunks = (range + grain - 1) / grain;
  std::vector<double> partials(num_chunks, 0.0);
  ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
    partials[(lo - begin) / grain] = chunk_sum(lo, hi);
  });
  // Index-order combination keeps the result independent of thread count.
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

bool ParallelAll(int64_t begin, int64_t end, int64_t grain,
                 const std::function<bool(int64_t, int64_t)>& chunk_all) {
  const int64_t range = end - begin;
  if (range <= 0) return true;
  grain = std::max<int64_t>(1, grain);
  const int64_t num_chunks = (range + grain - 1) / grain;
  std::vector<char> oks(num_chunks, 1);
  ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
    oks[(lo - begin) / grain] = chunk_all(lo, hi) ? 1 : 0;
  });
  for (char ok : oks) {
    if (!ok) return false;
  }
  return true;
}

}  // namespace compute
}  // namespace slime
