#ifndef SLIME4REC_COMPUTE_KERNELS_H_
#define SLIME4REC_COMPUTE_KERNELS_H_

#include <cstdint>

namespace slime {
namespace compute {

/// Raw compute kernels over contiguous row-major float buffers. These are
/// the default implementations behind the Dispatch() registry: blocked over
/// a fixed, thread-count-independent work split via ParallelFor, so every
/// kernel is bit-identical at any thread count (see thread_pool.h).
///
/// Output buffers of the matmul family must be zero-initialised by the
/// caller (Tensor construction zero-fills).

/// C(m,n) += A(m,k) @ B(k,n). Parallel over row blocks.
void MatMulKernel(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n);

/// C(m,n) += A(k,m)^T @ B(k,n). Parallel over column blocks so the
/// k-ascending accumulation order per output element is preserved.
void MatMulTransAKernel(const float* a, const float* b, float* c, int64_t k,
                        int64_t m, int64_t n);

/// C(m,n) = A(m,k) @ B(n,k)^T. Parallel over row blocks; 4-way blocked dot
/// products inside.
void MatMulTransBKernel(const float* a, const float* b, float* c, int64_t m,
                        int64_t k, int64_t n);

/// Batched variants over (batch, ...) operands; parallel across the
/// batch x row product so small-batch/large-matrix shapes still split.
void BatchMatMulKernel(const float* a, const float* b, float* c,
                       int64_t batch, int64_t m, int64_t k, int64_t n);
void BatchMatMulTransAKernel(const float* a, const float* b, float* c,
                             int64_t batch, int64_t k, int64_t m, int64_t n);
void BatchMatMulTransBKernel(const float* a, const float* b, float* c,
                             int64_t batch, int64_t m, int64_t k, int64_t n);

/// Elementwise complex multiply with suffix broadcast of b:
///   out[r*block + i] = a[r*block + i] * b[i]   (complex),
/// i.e. (ar + i*ai)(br + i*bi) laid out as separate re/im planes. `repeats`
/// is a.numel / block; pass repeats == 1 for same-shape operands.
void ComplexMulKernel(const float* ar, const float* ai, const float* br,
                      const float* bi, float* out_re, float* out_im,
                      int64_t repeats, int64_t block);

/// Sum of n floats in a double accumulator; fixed-chunk partials combined in
/// index order (kReductionGrain), deterministic for any thread count.
double SumKernel(const float* p, int64_t n);

/// Dot product of two length-n buffers, same reduction scheme as SumKernel.
double DotKernel(const float* a, const float* b, int64_t n);

/// True iff every element is finite. Order-independent conjunction.
bool AllFiniteKernel(const float* p, int64_t n);

/// The kernel registry: a table of entry points the tensor/autograd/fft
/// layers route through. Alternative backends (different blocking, SIMD
/// intrinsics, an accelerator offload) register a table; everything above
/// the seam is oblivious. New ops must be added here rather than open-coded
/// in a layer (see CONTRIBUTING.md).
struct KernelTable {
  decltype(&MatMulKernel) matmul = &MatMulKernel;
  decltype(&MatMulTransAKernel) matmul_trans_a = &MatMulTransAKernel;
  decltype(&MatMulTransBKernel) matmul_trans_b = &MatMulTransBKernel;
  decltype(&BatchMatMulKernel) batch_matmul = &BatchMatMulKernel;
  decltype(&BatchMatMulTransAKernel) batch_matmul_trans_a =
      &BatchMatMulTransAKernel;
  decltype(&BatchMatMulTransBKernel) batch_matmul_trans_b =
      &BatchMatMulTransBKernel;
  decltype(&ComplexMulKernel) complex_mul = &ComplexMulKernel;
  decltype(&SumKernel) sum = &SumKernel;
  decltype(&DotKernel) dot = &DotKernel;
  decltype(&AllFiniteKernel) all_finite = &AllFiniteKernel;
};

/// Active kernel table. Defaults to the blocked ParallelFor implementations
/// above.
const KernelTable& Dispatch();

/// Swaps the active table (e.g. to install an instrumented or experimental
/// backend); returns the previous table so callers can restore it. Not
/// thread-safe against running kernels.
KernelTable SetDispatch(const KernelTable& table);

}  // namespace compute
}  // namespace slime

#endif  // SLIME4REC_COMPUTE_KERNELS_H_
