#ifndef SLIME4REC_COMPUTE_KERNELS_H_
#define SLIME4REC_COMPUTE_KERNELS_H_

#include <cstdint>

namespace slime {
namespace compute {

/// Raw compute kernels over contiguous row-major float buffers. These are
/// the default implementations behind the Dispatch() registry: blocked over
/// a fixed, thread-count-independent work split via ParallelFor, so every
/// kernel is bit-identical at any thread count (see thread_pool.h).
///
/// Output buffers of the matmul family must be zero-initialised by the
/// caller (Tensor construction zero-fills).

/// C(m,n) += A(m,k) @ B(k,n). Parallel over row blocks.
void MatMulKernel(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n);

/// C(m,n) += A(k,m)^T @ B(k,n). Parallel over column blocks so the
/// k-ascending accumulation order per output element is preserved.
void MatMulTransAKernel(const float* a, const float* b, float* c, int64_t k,
                        int64_t m, int64_t n);

/// C(m,n) = A(m,k) @ B(n,k)^T. Parallel over row blocks; 4-way blocked dot
/// products inside.
void MatMulTransBKernel(const float* a, const float* b, float* c, int64_t m,
                        int64_t k, int64_t n);

/// Batched variants over (batch, ...) operands; parallel across the
/// batch x row product so small-batch/large-matrix shapes still split.
void BatchMatMulKernel(const float* a, const float* b, float* c,
                       int64_t batch, int64_t m, int64_t k, int64_t n);
void BatchMatMulTransAKernel(const float* a, const float* b, float* c,
                             int64_t batch, int64_t k, int64_t m, int64_t n);
void BatchMatMulTransBKernel(const float* a, const float* b, float* c,
                             int64_t batch, int64_t m, int64_t k, int64_t n);

/// Elementwise complex multiply with suffix broadcast of b:
///   out[r*block + i] = a[r*block + i] * b[i]   (complex),
/// i.e. (ar + i*ai)(br + i*bi) laid out as separate re/im planes. `repeats`
/// is a.numel / block; pass repeats == 1 for same-shape operands.
void ComplexMulKernel(const float* ar, const float* ai, const float* br,
                      const float* bi, float* out_re, float* out_im,
                      int64_t repeats, int64_t block);

/// Sum of n floats in a double accumulator; fixed-chunk partials combined in
/// index order (kReductionGrain), deterministic for any thread count.
double SumKernel(const float* p, int64_t n);

/// Dot product of two length-n buffers, same reduction scheme as SumKernel.
double DotKernel(const float* a, const float* b, int64_t n);

/// True iff every element is finite. Order-independent conjunction.
bool AllFiniteKernel(const float* p, int64_t n);

/// Row-wise softmax over the last dim: y[r] = softmax(x[r]) for `rows` rows
/// of width `d`. Stable (max-subtracted), double partition-sum accumulator.
void SoftmaxRowsKernel(const float* x, float* y, int64_t rows, int64_t d);

/// Softmax backward from the cached output: dx[r] = y[r] * (g[r] - <g[r],
/// y[r]>) per row, dot in a double accumulator.
void SoftmaxRowsBwdKernel(const float* y, const float* g, float* dx,
                          int64_t rows, int64_t d);

/// Exact-erf GELU: y = 0.5 x (1 + erf(x / sqrt(2))).
void GeluKernel(const float* x, float* y, int64_t n);

/// GELU backward from the input: dx = g * (Phi(x) + x phi(x)).
void GeluBwdKernel(const float* x, const float* g, float* dx, int64_t n);

/// LayerNorm forward over `rows` rows of width `d`, caching the normalised
/// input `xhat` (rows x d) and per-row `inv_std` for the backward pass.
/// Mean/variance accumulate in double.
void LayerNormKernel(const float* x, const float* gamma, const float* beta,
                     float* y, float* xhat, float* inv_std, int64_t rows,
                     int64_t d, float eps);

/// LayerNorm input gradient: dx = inv_std * (a - mean(a) - xhat *
/// mean(a * xhat)) with a = g * gamma, row means in double.
void LayerNormBwdKernel(const float* g, const float* xhat,
                        const float* inv_std, const float* gamma, float* dx,
                        int64_t rows, int64_t d);

/// LayerNorm parameter gradients, accumulated *into* dgamma/dbeta.
/// Column-parallel: each column sums its rows in ascending order, matching
/// the serial row-major walk bit for bit. Pass dgamma == nullptr to compute
/// dbeta only.
void LayerNormParamBwdKernel(const float* g, const float* xhat, float* dgamma,
                             float* dbeta, int64_t rows, int64_t d);

/// Hyperparameters for one Adam update, bias corrections precomputed by the
/// caller (bias_corr = 1 - beta^t).
struct AdamStepParams {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float bias_corr1 = 1.0f;
  float bias_corr2 = 1.0f;
  float lr = 1e-3f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// One fused Adam update over n elements: moments m/v and weights w updated
/// in place from gradient g. Fully elementwise.
void AdamStepKernel(float* w, float* m, float* v, const float* g, int64_t n,
                    const AdamStepParams& p);

/// Embedding gather: out[i] = w[ids[i]] for nids rows of width d. Ids must be
/// pre-validated by the caller (kernels don't bounds-check).
void GatherRowsKernel(const float* w, const int64_t* ids, float* out,
                      int64_t nids, int64_t d);

/// Embedding scatter-add: acc[ids[i]] += g[i]. Serial in every backend:
/// duplicate ids accumulate into the same row, so a row split would race and
/// atomics would break bit-identity.
void ScatterAddRowsKernel(const float* g, const int64_t* ids, float* acc,
                          int64_t nids, int64_t d);

/// out[i] += a[i] * scale.
void AxpyKernel(float* out, const float* a, float scale, int64_t n);

/// p[i] *= scale.
void ScaleKernel(float* p, float scale, int64_t n);

/// out[i] = a[i] + b[i].
void AddKernel(const float* a, const float* b, float* out, int64_t n);

/// The kernel registry: a table of entry points the tensor/autograd/fft
/// layers route through. Alternative backends (different blocking, SIMD
/// intrinsics, an accelerator offload) register a table; everything above
/// the seam is oblivious. New ops must be added here rather than open-coded
/// in a layer (see CONTRIBUTING.md).
struct KernelTable {
  decltype(&MatMulKernel) matmul = &MatMulKernel;
  decltype(&MatMulTransAKernel) matmul_trans_a = &MatMulTransAKernel;
  decltype(&MatMulTransBKernel) matmul_trans_b = &MatMulTransBKernel;
  decltype(&BatchMatMulKernel) batch_matmul = &BatchMatMulKernel;
  decltype(&BatchMatMulTransAKernel) batch_matmul_trans_a =
      &BatchMatMulTransAKernel;
  decltype(&BatchMatMulTransBKernel) batch_matmul_trans_b =
      &BatchMatMulTransBKernel;
  decltype(&ComplexMulKernel) complex_mul = &ComplexMulKernel;
  decltype(&SumKernel) sum = &SumKernel;
  decltype(&DotKernel) dot = &DotKernel;
  decltype(&AllFiniteKernel) all_finite = &AllFiniteKernel;
  decltype(&SoftmaxRowsKernel) softmax_rows = &SoftmaxRowsKernel;
  decltype(&SoftmaxRowsBwdKernel) softmax_rows_bwd = &SoftmaxRowsBwdKernel;
  decltype(&GeluKernel) gelu = &GeluKernel;
  decltype(&GeluBwdKernel) gelu_bwd = &GeluBwdKernel;
  decltype(&LayerNormKernel) layer_norm = &LayerNormKernel;
  decltype(&LayerNormBwdKernel) layer_norm_bwd = &LayerNormBwdKernel;
  decltype(&LayerNormParamBwdKernel) layer_norm_param_bwd =
      &LayerNormParamBwdKernel;
  decltype(&AdamStepKernel) adam_step = &AdamStepKernel;
  decltype(&GatherRowsKernel) gather_rows = &GatherRowsKernel;
  decltype(&ScatterAddRowsKernel) scatter_add_rows = &ScatterAddRowsKernel;
  decltype(&AxpyKernel) axpy = &AxpyKernel;
  decltype(&ScaleKernel) scale = &ScaleKernel;
  decltype(&AddKernel) add = &AddKernel;
};

/// Active kernel table. Defaults to the blocked ParallelFor implementations
/// above (the `scalar` backend). On first use, honours the
/// SLIME_KERNEL_BACKEND environment variable unless SetDispatch /
/// SetKernelBackend was called first (see backend.h).
const KernelTable& Dispatch();

/// Swaps the active table (e.g. to install an instrumented or experimental
/// backend); returns the previous table so callers can restore it. Not
/// thread-safe against running kernels. Marks the backend as explicitly
/// chosen, so SLIME_KERNEL_BACKEND never overrides it afterwards; the
/// ActiveKernelBackend() name is only tracked by SetKernelBackend.
KernelTable SetDispatch(const KernelTable& table);

}  // namespace compute
}  // namespace slime

#endif  // SLIME4REC_COMPUTE_KERNELS_H_
