#include "tensor/tensor.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace slime {

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t s : shape) {
    SLIME_CHECK_GE(s, 0);
    n *= s;
  }
  return n;
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), numel_(ShapeNumel(shape_)) {
  data_ = std::make_shared<std::vector<float>>(numel_, 0.0f);
}

Tensor Tensor::Scalar(float v) {
  Tensor t{std::vector<int64_t>{}};
  (*t.data_)[0] = v;
  return t;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float v) {
  Tensor t(std::move(shape));
  t.Fill(v);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          const std::vector<float>& values) {
  Tensor t(std::move(shape));
  SLIME_CHECK_EQ(t.numel(), static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng->Gaussian() * stddev;
  return t;
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                           float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i)
    p[i] = lo + (hi - lo) * rng->UniformFloat();
  return t;
}

int64_t Tensor::size(int64_t i) const {
  const int64_t d = dim();
  if (i < 0) i += d;
  SLIME_CHECK(i >= 0 && i < d);
  return shape_[i];
}

float& Tensor::At(std::initializer_list<int64_t> idx) {
  SLIME_CHECK_EQ(static_cast<int64_t>(idx.size()), dim());
  int64_t flat = 0;
  int64_t i = 0;
  for (int64_t v : idx) {
    SLIME_CHECK(v >= 0 && v < shape_[i]);
    flat = flat * shape_[i] + v;
    ++i;
  }
  return data()[flat];
}

float Tensor::At(std::initializer_list<int64_t> idx) const {
  return const_cast<Tensor*>(this)->At(idx);
}

Tensor Tensor::Reshape(std::vector<int64_t> shape) const {
  SLIME_CHECK(defined());
  int64_t known = 1;
  int64_t infer_pos = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      SLIME_CHECK_MSG(infer_pos == -1, "more than one -1 in reshape");
      infer_pos = static_cast<int64_t>(i);
    } else {
      SLIME_CHECK_GE(shape[i], 0);
      known *= shape[i];
    }
  }
  if (infer_pos >= 0) {
    SLIME_CHECK_MSG(known > 0 && numel_ % known == 0,
                    "cannot infer reshape extent for " << ShapeString()
                                                       << " -> "
                                                       << ShapeToString(shape));
    shape[infer_pos] = numel_ / known;
  }
  SLIME_CHECK_MSG(ShapeNumel(shape) == numel_,
                  "reshape numel mismatch: " << ShapeString() << " -> "
                                             << ShapeToString(shape));
  Tensor t;
  t.data_ = data_;
  t.offset_ = offset_;
  t.numel_ = numel_;
  t.shape_ = std::move(shape);
  return t;
}

Tensor Tensor::Clone() const {
  SLIME_CHECK(defined());
  Tensor t(shape_);
  std::copy(data(), data() + numel_, t.data());
  return t;
}

void Tensor::Fill(float v) {
  SLIME_CHECK(defined());
  std::fill(data(), data() + numel_, v);
}

std::string Tensor::ShapeString() const { return ShapeToString(shape_); }

std::vector<float> Tensor::ToVector() const {
  SLIME_CHECK(defined());
  return std::vector<float>(data(), data() + numel_);
}

}  // namespace slime
