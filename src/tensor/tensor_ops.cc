#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

namespace slime {
namespace ops {
namespace {

/// Strides for a contiguous row-major tensor of `shape`, padded on the left
/// to `rank` entries; broadcast (size-1) dimensions get stride 0 so a single
/// indexing loop handles all broadcasting.
std::vector<int64_t> BroadcastStrides(const std::vector<int64_t>& shape,
                                      size_t rank) {
  std::vector<int64_t> strides(rank, 0);
  int64_t s = 1;
  const size_t pad = rank - shape.size();
  for (size_t i = shape.size(); i-- > 0;) {
    strides[pad + i] = (shape[i] == 1) ? 0 : s;
    s *= shape[i];
  }
  return strides;
}

}  // namespace

std::vector<int64_t> BroadcastShape(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b) {
  const size_t rank = std::max(a.size(), b.size());
  std::vector<int64_t> out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db =
        i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    SLIME_CHECK_MSG(da == db || da == 1 || db == 1,
                    "incompatible broadcast: " << ShapeToString(a) << " vs "
                                               << ShapeToString(b));
    out[i] = std::max(da, db);
  }
  return out;
}

namespace {

/// Generic broadcast binary kernel, templated so the functor inlines into
/// the per-element loop (a function pointer here shows up as ~20% of
/// training time under gprof).
template <typename F>
Tensor BinaryOpT(const Tensor& a, const Tensor& b, F f) {
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
    return out;
  }
  const std::vector<int64_t> out_shape = BroadcastShape(a.shape(), b.shape());
  // Fast path: b broadcasts as a repeated trailing block of a (bias adds,
  // (B,N,d) + (N,d), (B,M,d) * (M,d) filters, ...).
  if (out_shape == a.shape() && a.numel() % std::max<int64_t>(b.numel(), 1) == 0) {
    const size_t rank = a.shape().size();
    const size_t brank = b.shape().size();
    bool suffix = brank <= rank;
    if (suffix) {
      for (size_t i = 0; i < brank; ++i) {
        if (b.shape()[i] != a.shape()[rank - brank + i]) {
          suffix = false;
          break;
        }
      }
    }
    if (suffix) {
      Tensor out(a.shape());
      const int64_t block = b.numel();
      const int64_t repeats = a.numel() / block;
      const float* pa = a.data();
      const float* pb = b.data();
      float* po = out.data();
      for (int64_t r = 0; r < repeats; ++r) {
        const float* ar = pa + r * block;
        float* orow = po + r * block;
        for (int64_t i = 0; i < block; ++i) orow[i] = f(ar[i], pb[i]);
      }
      return out;
    }
  }
  // Fast path: equal rank, b differs from a only by a size-1 trailing dim
  // (row-normalisation patterns like (B,d) op (B,1)).
  if (out_shape == a.shape() && b.shape().size() == a.shape().size() &&
      b.shape().back() == 1) {
    bool column = true;
    for (size_t i = 0; i + 1 < a.shape().size(); ++i) {
      column = column && a.shape()[i] == b.shape()[i];
    }
    if (column) {
      Tensor out(a.shape());
      const int64_t cols = a.shape().back();
      const int64_t rows = a.numel() / cols;
      const float* pa = a.data();
      const float* pb = b.data();
      float* po = out.data();
      for (int64_t r = 0; r < rows; ++r) {
        const float bv = pb[r];
        const float* ar = pa + r * cols;
        float* orow = po + r * cols;
        for (int64_t i = 0; i < cols; ++i) orow[i] = f(ar[i], bv);
      }
      return out;
    }
  }
  Tensor out(out_shape);
  const size_t rank = out_shape.size();
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), rank);
  const std::vector<int64_t> sb = BroadcastStrides(b.shape(), rank);
  std::vector<int64_t> idx(rank, 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  int64_t off_a = 0;
  int64_t off_b = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = f(pa[off_a], pb[off_b]);
    // Odometer increment of the multi-index, updating both offsets.
    for (size_t d = rank; d-- > 0;) {
      ++idx[d];
      off_a += sa[d];
      off_b += sb[d];
      if (idx[d] < out_shape[d]) break;
      off_a -= sa[d] * out_shape[d];
      off_b -= sb[d] * out_shape[d];
      idx[d] = 0;
    }
  }
  return out;
}

}  // namespace

Tensor BinaryOp(const Tensor& a, const Tensor& b, float (*f)(float, float)) {
  return BinaryOpT(a, b, f);
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOpT(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOpT(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOpT(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOpT(a, b, [](float x, float y) { return x / y; });
}

void AddInPlace(Tensor* out, const Tensor& a) {
  SLIME_CHECK(out->SameShape(a));
  float* po = out->data();
  const float* pa = a.data();
  const int64_t n = out->numel();
  for (int64_t i = 0; i < n; ++i) po[i] += pa[i];
}

void AxpyInPlace(Tensor* out, const Tensor& a, float scale) {
  SLIME_CHECK(out->SameShape(a));
  float* po = out->data();
  const float* pa = a.data();
  const int64_t n = out->numel();
  for (int64_t i = 0; i < n; ++i) po[i] += pa[i] * scale;
}

void ScaleInPlace(Tensor* out, float scale) {
  float* po = out->data();
  const int64_t n = out->numel();
  for (int64_t i = 0; i < n; ++i) po[i] *= scale;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = f(pa[i]);
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + s;
  return out;
}
Tensor MulScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] * s;
  return out;
}

Tensor ReduceTo(const Tensor& t, const std::vector<int64_t>& target_shape) {
  if (t.shape() == target_shape) return t.Clone();
  // Verify compatibility (target broadcasts to t's shape).
  SLIME_CHECK(BroadcastShape(t.shape(), target_shape) == t.shape());
  // Fast path: target is a trailing block of t (bias/filter/positional
  // gradients) -> sum over the leading repeats.
  {
    const size_t rank = t.shape().size();
    const size_t trank = target_shape.size();
    bool suffix = trank <= rank && ShapeNumel(target_shape) > 0;
    if (suffix) {
      for (size_t i = 0; i < trank; ++i) {
        if (target_shape[i] != t.shape()[rank - trank + i]) {
          suffix = false;
          break;
        }
      }
    }
    if (suffix) {
      Tensor out(target_shape);
      const int64_t block = out.numel();
      const int64_t repeats = t.numel() / block;
      const float* pt = t.data();
      float* po = out.data();
      for (int64_t r = 0; r < repeats; ++r) {
        const float* row = pt + r * block;
        for (int64_t i = 0; i < block; ++i) po[i] += row[i];
      }
      return out;
    }
  }
  // Fast path: equal rank and only the trailing dim collapses to 1 (row
  // norms, (B,d) -> (B,1)).
  if (target_shape.size() == t.shape().size()) {
    bool trailing_only = target_shape.back() == 1;
    for (size_t i = 0; trailing_only && i + 1 < target_shape.size(); ++i) {
      trailing_only = target_shape[i] == t.shape()[i];
    }
    if (trailing_only) {
      Tensor out(target_shape);
      const int64_t cols = t.shape().back();
      const int64_t rows = t.numel() / cols;
      const float* pt = t.data();
      float* po = out.data();
      for (int64_t r = 0; r < rows; ++r) {
        float acc = 0.0f;
        const float* row = pt + r * cols;
        for (int64_t i = 0; i < cols; ++i) acc += row[i];
        po[r] = acc;
      }
      return out;
    }
  }
  Tensor out(target_shape);
  const size_t rank = t.shape().size();
  const std::vector<int64_t> st = BroadcastStrides(target_shape, rank);
  const std::vector<int64_t>& shape = t.shape();
  std::vector<int64_t> idx(rank, 0);
  const float* pt = t.data();
  float* po = out.data();
  const int64_t n = t.numel();
  int64_t off = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[off] += pt[flat];
    for (size_t d = rank; d-- > 0;) {
      ++idx[d];
      off += st[d];
      if (idx[d] < shape[d]) break;
      off -= st[d] * shape[d];
      idx[d] = 0;
    }
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  SLIME_CHECK_EQ(a.dim(), 2);
  SLIME_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  SLIME_CHECK_EQ(b.size(0), k);
  const int64_t n = b.size(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j order: unit-stride inner loop over both B's row and C's row,
  // which GCC auto-vectorises.
  for (int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  SLIME_CHECK_EQ(a.dim(), 2);
  SLIME_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  SLIME_CHECK_EQ(b.size(1), k);
  const int64_t n = b.size(0);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Both operands are traversed along contiguous rows: dot products, with
  // the j-loop blocked by four so four accumulators stream through one pass
  // over a's row.
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = pb + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float a0 = 0.0f;
      float a1 = 0.0f;
      float a2 = 0.0f;
      float a3 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        a0 += av * b0[kk];
        a1 += av * b1[kk];
        a2 += av * b2[kk];
        a3 += av * b3[kk];
      }
      crow[j] = a0;
      crow[j + 1] = a1;
      crow[j + 2] = a2;
      crow[j + 3] = a3;
    }
    for (; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  SLIME_CHECK_EQ(a.dim(), 2);
  SLIME_CHECK_EQ(b.dim(), 2);
  const int64_t k = a.size(0);
  const int64_t m = a.size(1);
  SLIME_CHECK_EQ(b.size(0), k);
  const int64_t n = b.size(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

namespace {

/// Raw kernels over pre-zeroed output rows; used by the batched products to
/// avoid materialising per-batch slices.
void MatMulRaw(const float* a, const float* b, float* c, int64_t m,
               int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransBRaw(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

void MatMulTransARaw(const float* a, const float* b, float* c, int64_t k,
                     int64_t m, int64_t n) {
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  SLIME_CHECK_EQ(a.dim(), 3);
  SLIME_CHECK_EQ(b.dim(), 3);
  SLIME_CHECK_EQ(a.size(0), b.size(0));
  const int64_t batch = a.size(0);
  const int64_t m = a.size(1);
  const int64_t k = a.size(2);
  SLIME_CHECK_EQ(b.size(1), k);
  const int64_t n = b.size(2);
  Tensor c({batch, m, n});
  for (int64_t i = 0; i < batch; ++i) {
    MatMulRaw(a.data() + i * m * k, b.data() + i * k * n,
              c.data() + i * m * n, m, k, n);
  }
  return c;
}

Tensor BatchMatMulTransB(const Tensor& a, const Tensor& b) {
  SLIME_CHECK_EQ(a.dim(), 3);
  SLIME_CHECK_EQ(b.dim(), 3);
  SLIME_CHECK_EQ(a.size(0), b.size(0));
  const int64_t batch = a.size(0);
  const int64_t m = a.size(1);
  const int64_t k = a.size(2);
  SLIME_CHECK_EQ(b.size(2), k);
  const int64_t n = b.size(1);
  Tensor c({batch, m, n});
  for (int64_t i = 0; i < batch; ++i) {
    MatMulTransBRaw(a.data() + i * m * k, b.data() + i * n * k,
                    c.data() + i * m * n, m, k, n);
  }
  return c;
}

Tensor BatchMatMulTransA(const Tensor& a, const Tensor& b) {
  SLIME_CHECK_EQ(a.dim(), 3);
  SLIME_CHECK_EQ(b.dim(), 3);
  SLIME_CHECK_EQ(a.size(0), b.size(0));
  const int64_t batch = a.size(0);
  const int64_t k = a.size(1);
  const int64_t m = a.size(2);
  SLIME_CHECK_EQ(b.size(1), k);
  const int64_t n = b.size(2);
  Tensor c({batch, m, n});
  for (int64_t i = 0; i < batch; ++i) {
    MatMulTransARaw(a.data() + i * k * m, b.data() + i * k * n,
                    c.data() + i * m * n, k, m, n);
  }
  return c;
}

Tensor TransposeLastTwo(const Tensor& a) {
  SLIME_CHECK_GE(a.dim(), 2);
  std::vector<int64_t> shape = a.shape();
  std::swap(shape[shape.size() - 1], shape[shape.size() - 2]);
  Tensor out(shape);
  const int64_t rows = a.size(-2);
  const int64_t cols = a.size(-1);
  const int64_t mat = rows * cols;
  const int64_t batch = a.numel() / mat;
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t bidx = 0; bidx < batch; ++bidx) {
    const float* src = pa + bidx * mat;
    float* dst = po + bidx * mat;
    for (int64_t r = 0; r < rows; ++r)
      for (int64_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
  }
  return out;
}

float SumAll(const Tensor& a) {
  const float* p = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += p[i];
  return static_cast<float>(acc);
}

Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim) {
  const int64_t rank = a.dim();
  if (axis < 0) axis += rank;
  SLIME_CHECK(axis >= 0 && axis < rank);
  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= a.size(i);
  for (int64_t i = axis + 1; i < rank; ++i) inner *= a.size(i);
  const int64_t extent = a.size(axis);
  std::vector<int64_t> out_shape;
  for (int64_t i = 0; i < rank; ++i) {
    if (i == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.size(i));
    }
  }
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o)
    for (int64_t e = 0; e < extent; ++e) {
      const float* src = pa + (o * extent + e) * inner;
      float* dst = po + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  return out;
}

float MaxAll(const Tensor& a) {
  SLIME_CHECK_GT(a.numel(), 0);
  const float* p = a.data();
  float m = p[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = std::max(m, p[i]);
  return m;
}

double Dot(const Tensor& a, const Tensor& b) {
  SLIME_CHECK_EQ(a.numel(), b.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += double(pa[i]) * pb[i];
  return acc;
}

double Norm(const Tensor& a) { return std::sqrt(Dot(a, a)); }

}  // namespace ops
}  // namespace slime
