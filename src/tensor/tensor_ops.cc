#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "compute/kernels.h"
#include "compute/thread_pool.h"

namespace slime {
namespace ops {
namespace {

using compute::Dispatch;
using compute::GrainForWork;
using compute::kElementwiseGrain;
using compute::kReductionGrain;
using compute::ParallelFor;

/// Strides for a contiguous row-major tensor of `shape`, padded on the left
/// to `rank` entries; broadcast (size-1) dimensions get stride 0 so a single
/// indexing loop handles all broadcasting.
std::vector<int64_t> BroadcastStrides(const std::vector<int64_t>& shape,
                                      size_t rank) {
  std::vector<int64_t> strides(rank, 0);
  int64_t s = 1;
  const size_t pad = rank - shape.size();
  for (size_t i = shape.size(); i-- > 0;) {
    strides[pad + i] = (shape[i] == 1) ? 0 : s;
    s *= shape[i];
  }
  return strides;
}

/// Shape guards for the matmul family. SLIME_CHECK is active in every build
/// type (see common/macros.h), so inner-dimension mismatches and rank errors
/// fail loudly with both shapes in release binaries too.
void CheckRank2(const Tensor& a, const Tensor& b, const char* op) {
  SLIME_CHECK_MSG(a.dim() == 2 && b.dim() == 2,
                  op << " expects rank-2 operands, got "
                     << ShapeToString(a.shape()) << " and "
                     << ShapeToString(b.shape()));
}

void CheckRank3(const Tensor& a, const Tensor& b, const char* op) {
  SLIME_CHECK_MSG(a.dim() == 3 && b.dim() == 3,
                  op << " expects rank-3 operands, got "
                     << ShapeToString(a.shape()) << " and "
                     << ShapeToString(b.shape()));
  SLIME_CHECK_MSG(a.size(0) == b.size(0),
                  op << " batch mismatch: " << ShapeToString(a.shape())
                     << " vs " << ShapeToString(b.shape()));
}

void CheckInnerDim(int64_t ka, int64_t kb, const Tensor& a, const Tensor& b,
                   const char* op) {
  SLIME_CHECK_MSG(ka == kb, op << " inner dimension mismatch: "
                               << ShapeToString(a.shape()) << " vs "
                               << ShapeToString(b.shape()));
}

}  // namespace

std::vector<int64_t> BroadcastShape(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b) {
  const size_t rank = std::max(a.size(), b.size());
  std::vector<int64_t> out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db =
        i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    SLIME_CHECK_MSG(da == db || da == 1 || db == 1,
                    "incompatible broadcast: " << ShapeToString(a) << " vs "
                                               << ShapeToString(b));
    out[i] = std::max(da, db);
  }
  return out;
}

namespace {

/// Generic broadcast binary kernel, templated so the functor inlines into
/// the per-element loop (a function pointer here shows up as ~20% of
/// training time under gprof). Each fast path is parallelised with a fixed
/// work split; every output element is produced by exactly one chunk with
/// unchanged arithmetic, so results are thread-count independent.
template <typename F>
Tensor BinaryOpT(const Tensor& a, const Tensor& b, F f) {
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    ParallelFor(0, a.numel(), kElementwiseGrain,
                [&](int64_t lo, int64_t hi) {
                  for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
                });
    return out;
  }
  const std::vector<int64_t> out_shape = BroadcastShape(a.shape(), b.shape());
  // Fast path: b broadcasts as a repeated trailing block of a (bias adds,
  // (B,N,d) + (N,d), (B,M,d) * (M,d) filters, ...).
  if (out_shape == a.shape() && a.numel() % std::max<int64_t>(b.numel(), 1) == 0) {
    const size_t rank = a.shape().size();
    const size_t brank = b.shape().size();
    bool suffix = brank <= rank;
    if (suffix) {
      for (size_t i = 0; i < brank; ++i) {
        if (b.shape()[i] != a.shape()[rank - brank + i]) {
          suffix = false;
          break;
        }
      }
    }
    if (suffix) {
      Tensor out(a.shape());
      const int64_t block = b.numel();
      const int64_t repeats = a.numel() / block;
      const float* pa = a.data();
      const float* pb = b.data();
      float* po = out.data();
      ParallelFor(0, repeats, GrainForWork(block),
                  [&](int64_t lo, int64_t hi) {
                    for (int64_t r = lo; r < hi; ++r) {
                      const float* ar = pa + r * block;
                      float* orow = po + r * block;
                      for (int64_t i = 0; i < block; ++i)
                        orow[i] = f(ar[i], pb[i]);
                    }
                  });
      return out;
    }
  }
  // Fast path: equal rank, b differs from a only by a size-1 trailing dim
  // (row-normalisation patterns like (B,d) op (B,1)).
  if (out_shape == a.shape() && b.shape().size() == a.shape().size() &&
      b.shape().back() == 1) {
    bool column = true;
    for (size_t i = 0; i + 1 < a.shape().size(); ++i) {
      column = column && a.shape()[i] == b.shape()[i];
    }
    if (column) {
      Tensor out(a.shape());
      const int64_t cols = a.shape().back();
      const int64_t rows = a.numel() / cols;
      const float* pa = a.data();
      const float* pb = b.data();
      float* po = out.data();
      ParallelFor(0, rows, GrainForWork(cols), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float bv = pb[r];
          const float* ar = pa + r * cols;
          float* orow = po + r * cols;
          for (int64_t i = 0; i < cols; ++i) orow[i] = f(ar[i], bv);
        }
      });
      return out;
    }
  }
  // General odometer walk: rare (mid-tensor broadcasts); stays serial.
  Tensor out(out_shape);
  const size_t rank = out_shape.size();
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), rank);
  const std::vector<int64_t> sb = BroadcastStrides(b.shape(), rank);
  std::vector<int64_t> idx(rank, 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.numel();
  int64_t off_a = 0;
  int64_t off_b = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = f(pa[off_a], pb[off_b]);
    // Odometer increment of the multi-index, updating both offsets.
    for (size_t d = rank; d-- > 0;) {
      ++idx[d];
      off_a += sa[d];
      off_b += sb[d];
      if (idx[d] < out_shape[d]) break;
      off_a -= sa[d] * out_shape[d];
      off_b -= sb[d] * out_shape[d];
      idx[d] = 0;
    }
  }
  return out;
}

}  // namespace

Tensor BinaryOp(const Tensor& a, const Tensor& b, float (*f)(float, float)) {
  return BinaryOpT(a, b, f);
}

Tensor Add(const Tensor& a, const Tensor& b) {
  // Same-shape adds are a kernel-table entry (backends vectorise them); the
  // broadcast paths stay on the templated walker.
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    Dispatch().add(a.data(), b.data(), out.data(), a.numel());
    return out;
  }
  return BinaryOpT(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOpT(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOpT(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOpT(a, b, [](float x, float y) { return x / y; });
}

void AddInPlace(Tensor* out, const Tensor& a) {
  SLIME_CHECK(out->SameShape(a));
  Dispatch().axpy(out->data(), a.data(), 1.0f, out->numel());
}

void AxpyInPlace(Tensor* out, const Tensor& a, float scale) {
  SLIME_CHECK(out->SameShape(a));
  Dispatch().axpy(out->data(), a.data(), scale, out->numel());
}

void ScaleInPlace(Tensor* out, float scale) {
  Dispatch().scale(out->data(), scale, out->numel());
}

Tensor Map(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i]);
  });
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] + s;
  });
  return out;
}
Tensor MulScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, a.numel(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] * s;
  });
  return out;
}

Tensor ReduceTo(const Tensor& t, const std::vector<int64_t>& target_shape) {
  if (t.shape() == target_shape) return t.Clone();
  // Verify compatibility (target broadcasts to t's shape).
  SLIME_CHECK(BroadcastShape(t.shape(), target_shape) == t.shape());
  // Fast path: target is a trailing block of t (bias/filter/positional
  // gradients) -> sum over the leading repeats. Each output element
  // accumulates its repeats in ascending order whether traversed row-major
  // (serial) or column-chunked (parallel), so both walks are bit-identical.
  {
    const size_t rank = t.shape().size();
    const size_t trank = target_shape.size();
    bool suffix = trank <= rank && ShapeNumel(target_shape) > 0;
    if (suffix) {
      for (size_t i = 0; i < trank; ++i) {
        if (target_shape[i] != t.shape()[rank - trank + i]) {
          suffix = false;
          break;
        }
      }
    }
    if (suffix) {
      Tensor out(target_shape);
      const int64_t block = out.numel();
      const int64_t repeats = t.numel() / block;
      const float* pt = t.data();
      float* po = out.data();
      if (compute::NumThreads() == 1 || block < 256) {
        for (int64_t r = 0; r < repeats; ++r) {
          const float* row = pt + r * block;
          for (int64_t i = 0; i < block; ++i) po[i] += row[i];
        }
      } else {
        ParallelFor(0, block, GrainForWork(repeats),
                    [&](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) {
                        float acc = po[i];
                        for (int64_t r = 0; r < repeats; ++r)
                          acc += pt[r * block + i];
                        po[i] = acc;
                      }
                    });
      }
      return out;
    }
  }
  // Fast path: equal rank and only the trailing dim collapses to 1 (row
  // norms, (B,d) -> (B,1)).
  if (target_shape.size() == t.shape().size()) {
    bool trailing_only = target_shape.back() == 1;
    for (size_t i = 0; trailing_only && i + 1 < target_shape.size(); ++i) {
      trailing_only = target_shape[i] == t.shape()[i];
    }
    if (trailing_only) {
      Tensor out(target_shape);
      const int64_t cols = t.shape().back();
      const int64_t rows = t.numel() / cols;
      const float* pt = t.data();
      float* po = out.data();
      ParallelFor(0, rows, GrainForWork(cols), [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          float acc = 0.0f;
          const float* row = pt + r * cols;
          for (int64_t i = 0; i < cols; ++i) acc += row[i];
          po[r] = acc;
        }
      });
      return out;
    }
  }
  // General scatter-accumulate walk: output offsets repeat, so this stays
  // serial (rare shape combinations only).
  Tensor out(target_shape);
  const size_t rank = t.shape().size();
  const std::vector<int64_t> st = BroadcastStrides(target_shape, rank);
  const std::vector<int64_t>& shape = t.shape();
  std::vector<int64_t> idx(rank, 0);
  const float* pt = t.data();
  float* po = out.data();
  const int64_t n = t.numel();
  int64_t off = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[off] += pt[flat];
    for (size_t d = rank; d-- > 0;) {
      ++idx[d];
      off += st[d];
      if (idx[d] < shape[d]) break;
      off -= st[d] * shape[d];
      idx[d] = 0;
    }
  }
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CheckRank2(a, b, "MatMul");
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  CheckInnerDim(k, b.size(0), a, b, "MatMul");
  const int64_t n = b.size(1);
  Tensor c({m, n});
  Dispatch().matmul(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  CheckRank2(a, b, "MatMulTransB");
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  CheckInnerDim(k, b.size(1), a, b, "MatMulTransB");
  const int64_t n = b.size(0);
  Tensor c({m, n});
  Dispatch().matmul_trans_b(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  CheckRank2(a, b, "MatMulTransA");
  const int64_t k = a.size(0);
  const int64_t m = a.size(1);
  CheckInnerDim(k, b.size(0), a, b, "MatMulTransA");
  const int64_t n = b.size(1);
  Tensor c({m, n});
  Dispatch().matmul_trans_a(a.data(), b.data(), c.data(), k, m, n);
  return c;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  CheckRank3(a, b, "BatchMatMul");
  const int64_t batch = a.size(0);
  const int64_t m = a.size(1);
  const int64_t k = a.size(2);
  CheckInnerDim(k, b.size(1), a, b, "BatchMatMul");
  const int64_t n = b.size(2);
  Tensor c({batch, m, n});
  Dispatch().batch_matmul(a.data(), b.data(), c.data(), batch, m, k, n);
  return c;
}

Tensor BatchMatMulTransB(const Tensor& a, const Tensor& b) {
  CheckRank3(a, b, "BatchMatMulTransB");
  const int64_t batch = a.size(0);
  const int64_t m = a.size(1);
  const int64_t k = a.size(2);
  CheckInnerDim(k, b.size(2), a, b, "BatchMatMulTransB");
  const int64_t n = b.size(1);
  Tensor c({batch, m, n});
  Dispatch().batch_matmul_trans_b(a.data(), b.data(), c.data(), batch, m, k,
                                  n);
  return c;
}

Tensor BatchMatMulTransA(const Tensor& a, const Tensor& b) {
  CheckRank3(a, b, "BatchMatMulTransA");
  const int64_t batch = a.size(0);
  const int64_t k = a.size(1);
  const int64_t m = a.size(2);
  CheckInnerDim(k, b.size(1), a, b, "BatchMatMulTransA");
  const int64_t n = b.size(2);
  Tensor c({batch, m, n});
  Dispatch().batch_matmul_trans_a(a.data(), b.data(), c.data(), batch, k, m,
                                  n);
  return c;
}

Tensor TransposeLastTwo(const Tensor& a) {
  SLIME_CHECK_MSG(a.dim() >= 2, "TransposeLastTwo needs rank >= 2, got "
                                    << ShapeToString(a.shape()));
  std::vector<int64_t> shape = a.shape();
  std::swap(shape[shape.size() - 1], shape[shape.size() - 2]);
  Tensor out(shape);
  const int64_t rows = a.size(-2);
  const int64_t cols = a.size(-1);
  const int64_t mat = rows * cols;
  const int64_t batch = a.numel() / mat;
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, batch, GrainForWork(mat), [&](int64_t lo, int64_t hi) {
    for (int64_t bidx = lo; bidx < hi; ++bidx) {
      const float* src = pa + bidx * mat;
      float* dst = po + bidx * mat;
      for (int64_t r = 0; r < rows; ++r)
        for (int64_t c = 0; c < cols; ++c)
          dst[c * rows + r] = src[r * cols + c];
    }
  });
  return out;
}

float SumAll(const Tensor& a) {
  return static_cast<float>(Dispatch().sum(a.data(), a.numel()));
}

Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim) {
  const int64_t rank = a.dim();
  if (axis < 0) axis += rank;
  SLIME_CHECK_MSG(axis >= 0 && axis < rank,
                  "SumAxis axis out of range for "
                      << ShapeToString(a.shape()));
  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= a.size(i);
  for (int64_t i = axis + 1; i < rank; ++i) inner *= a.size(i);
  const int64_t extent = a.size(axis);
  std::vector<int64_t> out_shape;
  for (int64_t i = 0; i < rank; ++i) {
    if (i == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.size(i));
    }
  }
  Tensor out(out_shape);
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, outer, GrainForWork(extent * inner),
              [&](int64_t lo, int64_t hi) {
                for (int64_t o = lo; o < hi; ++o)
                  for (int64_t e = 0; e < extent; ++e) {
                    const float* src = pa + (o * extent + e) * inner;
                    float* dst = po + o * inner;
                    for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
                  }
              });
  return out;
}

float MaxAll(const Tensor& a) {
  SLIME_CHECK_GT(a.numel(), 0);
  const float* p = a.data();
  const int64_t n = a.numel();
  // Max is associative and commutative, so chunked partials combined in
  // index order equal the serial scan exactly.
  const int64_t grain = kReductionGrain;
  const int64_t chunks = (n + grain - 1) / grain;
  std::vector<float> partials(chunks, p[0]);
  ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
    float m = p[lo];
    for (int64_t i = lo + 1; i < hi; ++i) m = std::max(m, p[i]);
    partials[lo / grain] = m;
  });
  float m = partials[0];
  for (float v : partials) m = std::max(m, v);
  return m;
}

double Dot(const Tensor& a, const Tensor& b) {
  SLIME_CHECK_EQ(a.numel(), b.numel());
  return Dispatch().dot(a.data(), b.data(), a.numel());
}

double Norm(const Tensor& a) { return std::sqrt(Dot(a, a)); }

bool AllFinite(const Tensor& a) {
  return Dispatch().all_finite(a.data(), a.numel());
}

}  // namespace ops
}  // namespace slime
