#ifndef SLIME4REC_TENSOR_TENSOR_H_
#define SLIME4REC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace slime {

/// A dense, contiguous, row-major float32 tensor with value semantics and a
/// shared underlying buffer (copying a Tensor aliases its storage; use
/// Clone() for a deep copy). This is the storage substrate for the autograd
/// layer; it performs no differentiation itself.
///
/// Shapes use int64_t extents. A rank-0 tensor (shape {}) holds one scalar.
class Tensor {
 public:
  /// An undefined tensor; defined() is false, every accessor checks.
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Rank-0 scalar.
  static Tensor Scalar(float v);

  /// Zeros/ones/constant of the given shape.
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float v);

  /// Tensor wrapping a copy of `values`; numel must match the shape.
  static Tensor FromVector(std::vector<int64_t> shape,
                           const std::vector<float>& values);

  /// Gaussian(0, stddev) initialised tensor.
  static Tensor Randn(std::vector<int64_t> shape, Rng* rng,
                      float stddev = 1.0f);

  /// Uniform [lo, hi) initialised tensor.
  static Tensor RandUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                            float hi);

  bool defined() const { return data_ != nullptr; }

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }

  /// Extent of dimension `i`; negative `i` counts from the end.
  int64_t size(int64_t i) const;

  int64_t numel() const { return numel_; }

  float* data() {
    SLIME_CHECK(defined());
    return data_->data() + offset_;
  }
  const float* data() const {
    SLIME_CHECK(defined());
    return data_->data() + offset_;
  }

  float& operator[](int64_t flat) {
    SLIME_CHECK(flat >= 0 && flat < numel_);
    return data()[flat];
  }
  float operator[](int64_t flat) const {
    SLIME_CHECK(flat >= 0 && flat < numel_);
    return data()[flat];
  }

  /// Multi-dimensional element access (rank must match index count).
  float& At(std::initializer_list<int64_t> idx);
  float At(std::initializer_list<int64_t> idx) const;

  /// Returns a tensor viewing the same buffer with a new shape. One extent
  /// may be -1 and is inferred. numel must be preserved.
  Tensor Reshape(std::vector<int64_t> shape) const;

  /// Deep copy.
  Tensor Clone() const;

  /// Sets every element.
  void Fill(float v);
  void Zero() { Fill(0.0f); }

  /// True if shapes are identical.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Whether this and `other` view the same buffer.
  bool SharesStorage(const Tensor& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

  /// "[2, 3, 4]" style rendering for diagnostics.
  std::string ShapeString() const;

  /// Flattens to std::vector for tests.
  std::vector<float> ToVector() const;

 private:
  std::shared_ptr<std::vector<float>> data_;
  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
  int64_t offset_ = 0;
};

/// Product of extents; checks non-negativity.
int64_t ShapeNumel(const std::vector<int64_t>& shape);

/// Renders a shape like "[2, 3]".
std::string ShapeToString(const std::vector<int64_t>& shape);

}  // namespace slime

#endif  // SLIME4REC_TENSOR_TENSOR_H_
