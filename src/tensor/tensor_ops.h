#ifndef SLIME4REC_TENSOR_TENSOR_OPS_H_
#define SLIME4REC_TENSOR_TENSOR_OPS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace slime {
namespace ops {

/// Raw (non-differentiable) tensor kernels. The autograd layer composes
/// these into differentiable operations; optimizers and data code use them
/// directly.
///
/// Binary operations broadcast with NumPy right-aligned semantics: shapes
/// are aligned at the trailing dimension, and each extent must either match
/// or be 1.

/// Broadcast result shape of `a` and `b`; checks compatibility.
std::vector<int64_t> BroadcastShape(const std::vector<int64_t>& a,
                                    const std::vector<int64_t>& b);

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// Generic broadcast binary op; `f(a_elem, b_elem)`.
Tensor BinaryOp(const Tensor& a, const Tensor& b, float (*f)(float, float));

/// out += a (shapes must match exactly).
void AddInPlace(Tensor* out, const Tensor& a);

/// out += a * scale (shapes must match exactly).
void AxpyInPlace(Tensor* out, const Tensor& a, float scale);

/// out *= scale.
void ScaleInPlace(Tensor* out, float scale);

/// Elementwise map into a fresh tensor.
Tensor Map(const Tensor& a, const std::function<float(float)>& f);

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

/// Sums `t` down to `target_shape` (which must be broadcast-compatible with
/// t's shape); used to reduce gradients of broadcast operands.
Tensor ReduceTo(const Tensor& t, const std::vector<int64_t>& target_shape);

/// C = A @ B for 2-D A (m,k) and B (k,n).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A @ B^T for 2-D A (m,k) and B (n,k); avoids materialising B^T.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// C = A^T @ B for 2-D A (k,m) and B (k,n).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);

/// Batched C_b = A_b @ B_b for 3-D A (B,m,k), B (B,k,n).
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

/// Batched C_b = A_b @ B_b^T for 3-D A (B,m,k), B (B,n,k).
Tensor BatchMatMulTransB(const Tensor& a, const Tensor& b);

/// Batched C_b = A_b^T @ B_b for 3-D A (B,k,m), B (B,k,n).
Tensor BatchMatMulTransA(const Tensor& a, const Tensor& b);

/// Swaps the last two dimensions (rank >= 2).
Tensor TransposeLastTwo(const Tensor& a);

/// Sum of all elements.
float SumAll(const Tensor& a);

/// Sum along `axis` (negative ok); keepdim retains a size-1 extent.
Tensor SumAxis(const Tensor& a, int64_t axis, bool keepdim);

/// Max element value.
float MaxAll(const Tensor& a);

/// Dot product of two same-numel tensors (flattened).
double Dot(const Tensor& a, const Tensor& b);

/// L2 norm of all elements.
double Norm(const Tensor& a);

/// True iff every element is finite (no NaN/Inf).
bool AllFinite(const Tensor& a);

}  // namespace ops
}  // namespace slime

#endif  // SLIME4REC_TENSOR_TENSOR_OPS_H_
