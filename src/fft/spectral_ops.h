#ifndef SLIME4REC_FFT_SPECTRAL_OPS_H_
#define SLIME4REC_FFT_SPECTRAL_OPS_H_

#include "autograd/variable.h"

namespace slime {
namespace fft {

/// A complex tensor in the frequency domain, stored as separate real and
/// imaginary Variables of identical shape (B, M, d).
struct SpectralPair {
  autograd::Variable re;
  autograd::Variable im;
};

/// Which implementation the differentiable Rfft/Irfft ops route through.
/// Both are the same linear operators; they differ in rounding only. The
/// packed path does roughly half the butterfly work (see VerticalRfftPlan).
enum class RfftPath {
  kPacked,       ///< half-spectrum real-input fast path (the default)
  kFullComplex,  ///< full-length complex reference plan (the oracle)
};

/// The path new Rfft/Irfft ops will take. Each op captures the active path
/// at forward time, so its backward always matches its forward.
RfftPath ActiveRfftPath();

/// Selects the path and returns the previous one. Like SetNumThreads, not
/// thread-safe against concurrently running ops; intended for tests and the
/// cross-path agreement gates (see docs/KERNELS.md).
RfftPath SetRfftPath(RfftPath path);

/// RAII path override for tests: applies `path`, restores on destruction.
class RfftPathGuard {
 public:
  explicit RfftPathGuard(RfftPath path) : saved_(SetRfftPath(path)) {}
  ~RfftPathGuard() { SetRfftPath(saved_); }
  RfftPathGuard(const RfftPathGuard&) = delete;
  RfftPathGuard& operator=(const RfftPathGuard&) = delete;

 private:
  RfftPath saved_;
};

/// Differentiable real FFT along axis 1 (the sequence axis) of a (B, N, d)
/// tensor, matching Eq. (12) of the paper: each of the B*d length-N series
/// is transformed independently. Returns (B, M, d) real/imag parts with
/// M = RfftBins(N). Backward uses the exact adjoint operators of fft.h,
/// riding the same path (packed or reference) as the forward did.
SpectralPair Rfft(const autograd::Variable& x);

/// Differentiable inverse real FFT along axis 1: (B, M, d) spectrum back to
/// a (B, n, d) time-domain tensor (Eq. 27). `n` must satisfy
/// RfftBins(n) == M.
autograd::Variable Irfft(const SpectralPair& spectrum, int64_t n);

/// Complex elementwise product of two spectra (the filtering operation of
/// Eqs. 14/21/25): (a.re + i*a.im) * (b.re + i*b.im), built from
/// differentiable real ops.
SpectralPair ComplexMul(const SpectralPair& a, const SpectralPair& b);

/// Scales both components by a constant real mask (broadcastable), used for
/// the indicator windows sigma(omega).
SpectralPair MaskSpectrum(const SpectralPair& a, const Tensor& mask);

/// (1 - gamma) * a + gamma * b, the DFS/SFS mixing of Eq. (26).
SpectralPair MixSpectra(const SpectralPair& a, const SpectralPair& b,
                        float gamma);

}  // namespace fft
}  // namespace slime

#endif  // SLIME4REC_FFT_SPECTRAL_OPS_H_
