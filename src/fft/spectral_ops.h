#ifndef SLIME4REC_FFT_SPECTRAL_OPS_H_
#define SLIME4REC_FFT_SPECTRAL_OPS_H_

#include "autograd/variable.h"

namespace slime {
namespace fft {

/// A complex tensor in the frequency domain, stored as separate real and
/// imaginary Variables of identical shape (B, M, d).
struct SpectralPair {
  autograd::Variable re;
  autograd::Variable im;
};

/// Differentiable real FFT along axis 1 (the sequence axis) of a (B, N, d)
/// tensor, matching Eq. (12) of the paper: each of the B*d length-N series
/// is transformed independently. Returns (B, M, d) real/imag parts with
/// M = RfftBins(N). Backward uses the exact adjoint operators of fft.h.
SpectralPair Rfft(const autograd::Variable& x);

/// Differentiable inverse real FFT along axis 1: (B, M, d) spectrum back to
/// a (B, n, d) time-domain tensor (Eq. 27). `n` must satisfy
/// RfftBins(n) == M.
autograd::Variable Irfft(const SpectralPair& spectrum, int64_t n);

/// Complex elementwise product of two spectra (the filtering operation of
/// Eqs. 14/21/25): (a.re + i*a.im) * (b.re + i*b.im), built from
/// differentiable real ops.
SpectralPair ComplexMul(const SpectralPair& a, const SpectralPair& b);

/// Scales both components by a constant real mask (broadcastable), used for
/// the indicator windows sigma(omega).
SpectralPair MaskSpectrum(const SpectralPair& a, const Tensor& mask);

/// (1 - gamma) * a + gamma * b, the DFS/SFS mixing of Eq. (26).
SpectralPair MixSpectra(const SpectralPair& a, const SpectralPair& b,
                        float gamma);

}  // namespace fft
}  // namespace slime

#endif  // SLIME4REC_FFT_SPECTRAL_OPS_H_
