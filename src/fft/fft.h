#ifndef SLIME4REC_FFT_FFT_H_
#define SLIME4REC_FFT_FFT_H_

#include <complex>
#include <cstdint>
#include <vector>

namespace slime {
namespace fft {

/// Number of independent rFFT bins for a real signal of length n:
/// floor(n/2) + 1. (The paper's Eq. 13 writes ceil(N/2)+1, which equals this
/// for even N; for odd N the paper's formula over-counts by one bin, and
/// torch.fft.rfft — used by the authors' code — produces floor(n/2)+1, so we
/// follow the standard definition. See DESIGN.md.)
int64_t RfftBins(int64_t n);

/// In-place unnormalised complex DFT of length data.size().
///   forward:  X_k = sum_n x_n e^{-2*pi*i*n*k/N}
///   inverse:  X_n = sum_k x_k e^{+2*pi*i*n*k/N}   (NO 1/N factor)
/// Uses iterative radix-2 Cooley-Tukey when N is a power of two and
/// Bluestein's chirp-z algorithm otherwise, so any length is O(N log N).
void Fft(std::vector<std::complex<double>>* data, bool inverse);

/// Naive O(N^2) reference DFT with identical conventions; used by tests.
void NaiveDft(const std::vector<std::complex<double>>& in,
              std::vector<std::complex<double>>* out, bool inverse);

/// Real-to-complex forward transform: out_re/out_im receive RfftBins(n)
/// values of X_k = sum_n x_n e^{-2*pi*i*n*k/N}.
void RfftForward(const float* x, int64_t n, float* out_re, float* out_im);

/// Adjoint (transpose) of RfftForward viewed as a real-linear map
/// R^n -> R^{2M}: given cotangents (g_re, g_im) produces the cotangent on x.
/// This is the exact backward operator for the autograd Rfft op.
void RfftAdjoint(const float* g_re, const float* g_im, int64_t n, float* g_x);

/// Complex-to-real inverse transform of a half spectrum: treats
/// (re, im)[0..M) as the non-negative-frequency bins of a conjugate-
/// symmetric length-n spectrum (mirroring bins 1..; the given values of the
/// DC and, for even n, Nyquist bins are used as-is) and emits
/// x_n = Re( (1/N) * sum_k X~_k e^{+2*pi*i*n*k/N} ).
void IrfftForward(const float* re, const float* im, int64_t n, float* x);

/// Adjoint of IrfftForward: given the cotangent on x (length n), produces
/// cotangents on (re, im) (length M each). Exact backward operator for the
/// autograd Irfft op.
void IrfftAdjoint(const float* g_x, int64_t n, float* g_re, float* g_im);

/// A "vertical" (channel-parallel) complex FFT plan: transforms d
/// independent length-n series stored column-wise in row-major (n, d)
/// buffers. Each butterfly operates on contiguous rows of d floats, which
/// the compiler vectorises — this is the throughput path used by the
/// spectral autograd ops (the scalar functions above remain as the
/// reference implementation; tests check they agree).
///
/// Power-of-two sizes run iterative radix-2 directly; other sizes run a
/// vertical Bluestein transform over an internal power-of-two plan.
/// Conventions match Fft(): forward is e^{-i...}, inverse is unnormalised.
class VerticalFftPlan {
 public:
  explicit VerticalFftPlan(int64_t n);
  ~VerticalFftPlan();
  VerticalFftPlan(const VerticalFftPlan&) = delete;
  VerticalFftPlan& operator=(const VerticalFftPlan&) = delete;

  int64_t n() const { return n_; }

  /// In-place transform of the (n, d) complex buffer pair.
  void Transform(float* re, float* im, int64_t d, bool inverse) const;

 private:
  void TransformPow2(float* re, float* im, int64_t d, bool inverse) const;
  void TransformBluestein(float* re, float* im, int64_t d,
                          bool inverse) const;

  int64_t n_;
  bool pow2_;
  // Radix-2 tables (pow2 path and the inner plan of the Bluestein path).
  std::vector<int64_t> bitrev_;
  std::vector<float> tw_re_;  // e^{-2 pi i j / n}, j in [0, n/2)
  std::vector<float> tw_im_;
  // Bluestein tables.
  int64_t padded_ = 0;
  std::vector<float> chirp_re_;  // e^{-i pi j^2 / n}, j in [0, n)
  std::vector<float> chirp_im_;
  std::vector<float> bfft_re_;  // forward FFT of the chirp kernel b
  std::vector<float> bfft_im_;
  VerticalFftPlan* inner_ = nullptr;
};

/// Returns a process-cached plan for length n.
const VerticalFftPlan& GetVerticalPlan(int64_t n);

}  // namespace fft
}  // namespace slime

#endif  // SLIME4REC_FFT_FFT_H_
