#ifndef SLIME4REC_FFT_FFT_H_
#define SLIME4REC_FFT_FFT_H_

#include <complex>
#include <cstdint>
#include <vector>

namespace slime {
namespace fft {

/// Number of independent rFFT bins for a real signal of length n:
/// floor(n/2) + 1. (The paper's Eq. 13 writes ceil(N/2)+1, which equals this
/// for even N; for odd N the paper's formula over-counts by one bin, and
/// torch.fft.rfft — used by the authors' code — produces floor(n/2)+1, so we
/// follow the standard definition. See DESIGN.md.)
int64_t RfftBins(int64_t n);

/// In-place unnormalised complex DFT of length data.size().
///   forward:  X_k = sum_n x_n e^{-2*pi*i*n*k/N}
///   inverse:  X_n = sum_k x_k e^{+2*pi*i*n*k/N}   (NO 1/N factor)
/// Uses iterative radix-2 Cooley-Tukey when N is a power of two and
/// Bluestein's chirp-z algorithm otherwise, so any length is O(N log N).
void Fft(std::vector<std::complex<double>>* data, bool inverse);

/// Naive O(N^2) reference DFT with identical conventions; used by tests.
void NaiveDft(const std::vector<std::complex<double>>& in,
              std::vector<std::complex<double>>* out, bool inverse);

/// Real-to-complex forward transform: out_re/out_im receive RfftBins(n)
/// values of X_k = sum_n x_n e^{-2*pi*i*n*k/N}.
void RfftForward(const float* x, int64_t n, float* out_re, float* out_im);

/// Adjoint (transpose) of RfftForward viewed as a real-linear map
/// R^n -> R^{2M}: given cotangents (g_re, g_im) produces the cotangent on x.
/// This is the exact backward operator for the autograd Rfft op.
void RfftAdjoint(const float* g_re, const float* g_im, int64_t n, float* g_x);

/// Complex-to-real inverse transform of a half spectrum: treats
/// (re, im)[0..M) as the non-negative-frequency bins of a conjugate-
/// symmetric length-n spectrum (mirroring bins 1..; the given values of the
/// DC and, for even n, Nyquist bins are used as-is) and emits
/// x_n = Re( (1/N) * sum_k X~_k e^{+2*pi*i*n*k/N} ).
void IrfftForward(const float* re, const float* im, int64_t n, float* x);

/// Adjoint of IrfftForward: given the cotangent on x (length n), produces
/// cotangents on (re, im) (length M each). Exact backward operator for the
/// autograd Irfft op.
void IrfftAdjoint(const float* g_x, int64_t n, float* g_re, float* g_im);

/// A "vertical" (channel-parallel) complex FFT plan: transforms d
/// independent length-n series stored column-wise in row-major (n, d)
/// buffers. Each butterfly operates on contiguous rows of d floats, which
/// the compiler vectorises — this is the throughput path used by the
/// spectral autograd ops (the scalar functions above remain as the
/// reference implementation; tests check they agree).
///
/// Power-of-two sizes run iterative radix-2 directly; other sizes run a
/// vertical Bluestein transform over an internal power-of-two plan.
/// Conventions match Fft(): forward is e^{-i...}, inverse is unnormalised.
class VerticalFftPlan {
 public:
  explicit VerticalFftPlan(int64_t n);
  ~VerticalFftPlan();
  VerticalFftPlan(const VerticalFftPlan&) = delete;
  VerticalFftPlan& operator=(const VerticalFftPlan&) = delete;

  int64_t n() const { return n_; }

  /// In-place transform of the (n, d) complex buffer pair.
  void Transform(float* re, float* im, int64_t d, bool inverse) const;

 private:
  void TransformPow2(float* re, float* im, int64_t d, bool inverse) const;
  void TransformBluestein(float* re, float* im, int64_t d,
                          bool inverse) const;

  int64_t n_;
  bool pow2_;
  // Radix-2 tables (pow2 path and the inner plan of the Bluestein path).
  std::vector<int64_t> bitrev_;
  std::vector<float> tw_re_;  // e^{-2 pi i j / n}, j in [0, n/2)
  std::vector<float> tw_im_;
  // Bluestein tables.
  int64_t padded_ = 0;
  std::vector<float> chirp_re_;  // e^{-i pi j^2 / n}, j in [0, n)
  std::vector<float> chirp_im_;
  std::vector<float> bfft_re_;  // forward FFT of the chirp kernel b
  std::vector<float> bfft_im_;
  VerticalFftPlan* inner_ = nullptr;
};

/// A real-input "vertical" transform plan: the half-spectrum fast path for
/// the filter mixer's FFT -> ComplexMul -> iFFT hot loop. Computes the
/// forward rfft of an (n, d) real block into (m, d) half-spectrum planes
/// (m = RfftBins(n)) and the matching half-spectrum inverse, doing roughly
/// half the butterfly work of the full complex VerticalFftPlan:
///
/// - even n packs adjacent time samples z_j = x_{2j} + i*x_{2j+1} through a
///   length-n/2 complex transform and recombines X_k = E_k + w^k O_k from
///   the even/odd sub-spectra via conjugate symmetry (the classic packed
///   real-FFT trick; see docs/MATH_NOTES.md section 8);
/// - odd n > 1 runs a real-input Bluestein variant: adjacent *columns* are
///   packed z = col_{2p} + i*col_{2p+1} through the full-length complex
///   (Bluestein) plan and the two interleaved half spectra are separated
///   with X1_k = (Z_k + conj(Z_{n-k}))/2, X2_k = (Z_k - conj(Z_{n-k}))/(2i),
///   halving the number of transformed columns.
///
/// Neither direction materialises the mirrored bins k >= m of any single
/// column's spectrum. Conventions match the scalar reference ops:
/// Forward == RfftForward per column; Inverse with scale = 1/n ==
/// IrfftForward per column (the DC and, for even n, Nyquist imaginary
/// inputs are ignored, exactly like the full-spectrum operator). The exact
/// adjoints of both directions are linear-time rescalings of these same two
/// entry points (MATH_NOTES.md section 8), so autograd backward passes ride
/// the fast path too.
class VerticalRfftPlan {
 public:
  explicit VerticalRfftPlan(int64_t n);
  ~VerticalRfftPlan();
  VerticalRfftPlan(const VerticalRfftPlan&) = delete;
  VerticalRfftPlan& operator=(const VerticalRfftPlan&) = delete;

  int64_t n() const { return n_; }
  int64_t bins() const { return m_; }

  /// Forward rfft of the (n, d) real row-major block `x` into the (m, d)
  /// half-spectrum planes. `x` is left untouched; outputs must not alias it.
  void Forward(const float* x, int64_t d, float* out_re, float* out_im) const;

  /// Half-spectrum inverse: (m, d) planes -> (n, d) real block, with every
  /// output multiplied by `scale` (pass 1.0f/n for irfft, 1.0f for the
  /// unnormalised conjugate-symmetric inverse used by the Rfft adjoint).
  /// The imaginary parts of the DC and (even n) Nyquist rows are ignored,
  /// matching IrfftForward. `x` must not alias the inputs.
  void Inverse(const float* re, const float* im, int64_t d, float* x,
               float scale) const;

  /// Rough flop count per transformed column, for grain planning
  /// (compute::GrainForWork). Depends only on n.
  int64_t CostPerColumn() const;

 private:
  int64_t n_;
  int64_t m_;
  bool even_;
  // Even path: length-n/2 complex plan + recombination twiddles
  // w_k = e^{-2 pi i k / n}, k in [0, n/2].
  VerticalFftPlan* half_ = nullptr;
  std::vector<float> w_re_;
  std::vector<float> w_im_;
  // Odd path: full-length complex (Bluestein) plan fed packed column pairs.
  VerticalFftPlan* full_ = nullptr;
};

/// Returns a process-cached plan for length n. The cache is shared by all
/// threads (plans are immutable after construction and Transform is const).
const VerticalFftPlan& GetVerticalPlan(int64_t n);

/// Process-cached real-input plan for length n; same sharing contract.
const VerticalRfftPlan& GetVerticalRfftPlan(int64_t n);

/// Rough flop count per column of GetVerticalPlan(n), for grain planning.
int64_t VerticalPlanCostPerColumn(int64_t n);

}  // namespace fft
}  // namespace slime

#endif  // SLIME4REC_FFT_FFT_H_
