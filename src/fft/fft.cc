#include "fft/fft.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "common/macros.h"

namespace slime {
namespace fft {
namespace {

constexpr double kPi = 3.14159265358979323846;

bool IsPowerOfTwo(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

int64_t NextPowerOfTwo(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Iterative radix-2 Cooley-Tukey, in place, for power-of-two sizes.
/// sign = -1 for the forward transform, +1 for the (unnormalised) inverse.
void Radix2(std::vector<std::complex<double>>* data, int sign) {
  const size_t n = data->size();
  auto& a = *data;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * kPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein chirp-z transform: forward DFT of arbitrary length via a
/// power-of-two circular convolution.
void Bluestein(std::vector<std::complex<double>>* data) {
  const int64_t n = static_cast<int64_t>(data->size());
  const int64_t m = NextPowerOfTwo(2 * n - 1);
  // Chirp w_j = e^{-i*pi*j^2/n}; exponent taken mod 2n to stay accurate for
  // large j^2.
  std::vector<std::complex<double>> chirp(n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t e = static_cast<int64_t>(
        (static_cast<unsigned long long>(j) * j) % (2ull * n));
    const double ang = -kPi * static_cast<double>(e) / static_cast<double>(n);
    chirp[j] = std::complex<double>(std::cos(ang), std::sin(ang));
  }
  std::vector<std::complex<double>> a(m, {0.0, 0.0});
  std::vector<std::complex<double>> b(m, {0.0, 0.0});
  for (int64_t j = 0; j < n; ++j) a[j] = (*data)[j] * chirp[j];
  b[0] = std::conj(chirp[0]);
  for (int64_t j = 1; j < n; ++j) {
    b[j] = std::conj(chirp[j]);
    b[m - j] = b[j];  // b is symmetric: b[-j] == b[j].
  }
  Radix2(&a, -1);
  Radix2(&b, -1);
  for (int64_t j = 0; j < m; ++j) a[j] *= b[j];
  Radix2(&a, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (int64_t k = 0; k < n; ++k) (*data)[k] = a[k] * inv_m * chirp[k];
}

}  // namespace

int64_t RfftBins(int64_t n) {
  SLIME_CHECK_GT(n, 0);
  return n / 2 + 1;
}

void Fft(std::vector<std::complex<double>>* data, bool inverse) {
  const int64_t n = static_cast<int64_t>(data->size());
  if (n <= 1) return;
  if (inverse) {
    // Unnormalised inverse = conj(forward(conj(x))).
    for (auto& c : *data) c = std::conj(c);
    Fft(data, false);
    for (auto& c : *data) c = std::conj(c);
    return;
  }
  if (IsPowerOfTwo(n)) {
    Radix2(data, -1);
  } else {
    Bluestein(data);
  }
}

void NaiveDft(const std::vector<std::complex<double>>& in,
              std::vector<std::complex<double>>* out, bool inverse) {
  const int64_t n = static_cast<int64_t>(in.size());
  out->assign(n, {0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (int64_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (int64_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * kPi * static_cast<double>(j) *
                         static_cast<double>(k) / static_cast<double>(n);
      acc += in[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    (*out)[k] = acc;
  }
}

namespace {

/// Reusable per-thread scratch to avoid allocating a complex buffer for
/// every one of the B*d series transformed per layer.
std::vector<std::complex<double>>& Scratch(int64_t n) {
  static thread_local std::vector<std::complex<double>> buf;
  buf.assign(n, {0.0, 0.0});
  return buf;
}

}  // namespace

void RfftForward(const float* x, int64_t n, float* out_re, float* out_im) {
  const int64_t m = RfftBins(n);
  std::vector<std::complex<double>>& buf = Scratch(n);
  for (int64_t i = 0; i < n; ++i) buf[i] = {static_cast<double>(x[i]), 0.0};
  Fft(&buf, false);
  for (int64_t k = 0; k < m; ++k) {
    out_re[k] = static_cast<float>(buf[k].real());
    out_im[k] = static_cast<float>(buf[k].imag());
  }
}

void RfftAdjoint(const float* g_re, const float* g_im, int64_t n,
                 float* g_x) {
  const int64_t m = RfftBins(n);
  // Adjoint of "take the first m bins of a forward DFT of a real signal":
  // g_x = Re( IDFT_unnormalised( zero-pad(g_re + i*g_im) ) ).
  std::vector<std::complex<double>>& buf = Scratch(n);
  for (int64_t k = 0; k < m; ++k)
    buf[k] = {static_cast<double>(g_re[k]), static_cast<double>(g_im[k])};
  Fft(&buf, true);
  for (int64_t i = 0; i < n; ++i) g_x[i] = static_cast<float>(buf[i].real());
}

void IrfftForward(const float* re, const float* im, int64_t n, float* x) {
  const int64_t m = RfftBins(n);
  std::vector<std::complex<double>>& buf = Scratch(n);
  for (int64_t k = 0; k < m; ++k)
    buf[k] = {static_cast<double>(re[k]), static_cast<double>(im[k])};
  // Conjugate-symmetric extension: bins 1..ceil(n/2)-1 mirror to n-k. For
  // even n the Nyquist bin (k = n/2 = m-1) maps to itself and is used as-is.
  for (int64_t k = 1; k < (n + 1) / 2; ++k) buf[n - k] = std::conj(buf[k]);
  Fft(&buf, true);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int64_t i = 0; i < n; ++i)
    x[i] = static_cast<float>(buf[i].real() * inv_n);
}

void IrfftAdjoint(const float* g_x, int64_t n, float* g_re, float* g_im) {
  const int64_t m = RfftBins(n);
  // G = (1/n) * DFT_forward(g_x); mirrored bins receive contributions from
  // both k and n-k: g_re_k = Re(G_k) + Re(G_{n-k}), g_im_k = Im(G_k) -
  // Im(G_{n-k}). Non-mirrored bins (DC; Nyquist for even n) use G_k alone.
  std::vector<std::complex<double>>& buf = Scratch(n);
  for (int64_t i = 0; i < n; ++i) buf[i] = {static_cast<double>(g_x[i]), 0.0};
  Fft(&buf, false);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int64_t k = 0; k < m; ++k) {
    double gr = buf[k].real();
    double gi = buf[k].imag();
    const bool mirrored = (k >= 1 && k < (n + 1) / 2);
    if (mirrored) {
      gr += buf[n - k].real();
      gi -= buf[n - k].imag();
    }
    g_re[k] = static_cast<float>(gr * inv_n);
    g_im[k] = static_cast<float>(gi * inv_n);
  }
}

VerticalFftPlan::VerticalFftPlan(int64_t n) : n_(n) {
  SLIME_CHECK_GE(n, 1);
  pow2_ = (n & (n - 1)) == 0;
  if (pow2_) {
    bitrev_.resize(n);
    for (int64_t i = 1, j = 0; i < n; ++i) {
      int64_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = j;
    }
    tw_re_.resize(std::max<int64_t>(1, n / 2));
    tw_im_.resize(std::max<int64_t>(1, n / 2));
    for (int64_t j = 0; j < n / 2; ++j) {
      const double ang = -2.0 * kPi * static_cast<double>(j) /
                         static_cast<double>(n);
      tw_re_[j] = static_cast<float>(std::cos(ang));
      tw_im_[j] = static_cast<float>(std::sin(ang));
    }
    return;
  }
  // Bluestein: pad to a power of two >= 2n - 1 with an inner pow2 plan.
  padded_ = NextPowerOfTwo(2 * n - 1);
  inner_ = new VerticalFftPlan(padded_);
  chirp_re_.resize(n);
  chirp_im_.resize(n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t e = static_cast<int64_t>(
        (static_cast<unsigned long long>(j) * j) % (2ull * n));
    const double ang = -kPi * static_cast<double>(e) / static_cast<double>(n);
    chirp_re_[j] = static_cast<float>(std::cos(ang));
    chirp_im_[j] = static_cast<float>(std::sin(ang));
  }
  // b_j = conj(chirp_j) wrapped symmetrically; precompute its forward FFT
  // (d = 1 column through the inner plan).
  std::vector<float> bre(padded_, 0.0f);
  std::vector<float> bim(padded_, 0.0f);
  bre[0] = chirp_re_[0];
  bim[0] = -chirp_im_[0];
  for (int64_t j = 1; j < n; ++j) {
    bre[j] = chirp_re_[j];
    bim[j] = -chirp_im_[j];
    bre[padded_ - j] = bre[j];
    bim[padded_ - j] = bim[j];
  }
  inner_->Transform(bre.data(), bim.data(), 1, /*inverse=*/false);
  bfft_re_ = std::move(bre);
  bfft_im_ = std::move(bim);
}

VerticalFftPlan::~VerticalFftPlan() { delete inner_; }

void VerticalFftPlan::TransformPow2(float* re, float* im, int64_t d,
                                    bool inverse) const {
  const int64_t n = n_;
  // Bit-reversal permutation of rows.
  for (int64_t i = 1; i < n; ++i) {
    const int64_t j = bitrev_[i];
    if (i < j) {
      std::swap_ranges(re + i * d, re + (i + 1) * d, re + j * d);
      std::swap_ranges(im + i * d, im + (i + 1) * d, im + j * d);
    }
  }
  const float isign = inverse ? -1.0f : 1.0f;  // conjugate twiddles
  for (int64_t len = 2; len <= n; len <<= 1) {
    const int64_t half = len / 2;
    const int64_t stride = n / len;
    for (int64_t base = 0; base < n; base += len) {
      for (int64_t j = 0; j < half; ++j) {
        const float wr = tw_re_[j * stride];
        const float wi = isign * tw_im_[j * stride];
        float* ur = re + (base + j) * d;
        float* ui = im + (base + j) * d;
        float* vr = re + (base + j + half) * d;
        float* vi = im + (base + j + half) * d;
        for (int64_t f = 0; f < d; ++f) {
          const float tr = vr[f] * wr - vi[f] * wi;
          const float ti = vr[f] * wi + vi[f] * wr;
          vr[f] = ur[f] - tr;
          vi[f] = ui[f] - ti;
          ur[f] += tr;
          ui[f] += ti;
        }
      }
    }
  }
}

void VerticalFftPlan::TransformBluestein(float* re, float* im, int64_t d,
                                         bool inverse) const {
  const int64_t n = n_;
  const int64_t m = padded_;
  // inverse(x) = conj(forward(conj(x))): conjugate the data around the
  // forward pipeline (the chirp/kernel constants stay untouched).
  if (inverse) {
    for (int64_t i = 0; i < n * d; ++i) im[i] = -im[i];
  }
  static thread_local std::vector<float> are;
  static thread_local std::vector<float> aim;
  are.assign(m * d, 0.0f);
  aim.assign(m * d, 0.0f);
  for (int64_t j = 0; j < n; ++j) {
    const float cr = chirp_re_[j];
    const float ci = chirp_im_[j];
    const float* xr = re + j * d;
    const float* xi = im + j * d;
    float* ar = are.data() + j * d;
    float* ai = aim.data() + j * d;
    for (int64_t f = 0; f < d; ++f) {
      ar[f] = xr[f] * cr - xi[f] * ci;
      ai[f] = xr[f] * ci + xi[f] * cr;
    }
  }
  inner_->TransformPow2(are.data(), aim.data(), d, false);
  // Row-wise multiply by the precomputed kernel spectrum.
  for (int64_t j = 0; j < m; ++j) {
    const float br = bfft_re_[j];
    const float bi = bfft_im_[j];
    float* ar = are.data() + j * d;
    float* ai = aim.data() + j * d;
    for (int64_t f = 0; f < d; ++f) {
      const float vr = ar[f];
      const float vi = ai[f];
      ar[f] = vr * br - vi * bi;
      ai[f] = vr * bi + vi * br;
    }
  }
  inner_->TransformPow2(are.data(), aim.data(), d, true);
  const float inv_m = 1.0f / static_cast<float>(m);
  const float osign = inverse ? -1.0f : 1.0f;  // output conjugation
  for (int64_t k = 0; k < n; ++k) {
    const float cr = chirp_re_[k];
    const float ci = chirp_im_[k];
    const float* ar = are.data() + k * d;
    const float* ai = aim.data() + k * d;
    float* xr = re + k * d;
    float* xi = im + k * d;
    for (int64_t f = 0; f < d; ++f) {
      const float vr = ar[f] * inv_m;
      const float vi = ai[f] * inv_m;
      xr[f] = vr * cr - vi * ci;
      xi[f] = osign * (vr * ci + vi * cr);
    }
  }
}

void VerticalFftPlan::Transform(float* re, float* im, int64_t d,
                                bool inverse) const {
  if (n_ <= 1) return;
  if (pow2_) {
    TransformPow2(re, im, d, inverse);
  } else {
    TransformBluestein(re, im, d, inverse);
  }
}

const VerticalFftPlan& GetVerticalPlan(int64_t n) {
  static thread_local std::map<int64_t, std::unique_ptr<VerticalFftPlan>>*
      plans = new std::map<int64_t, std::unique_ptr<VerticalFftPlan>>();
  auto it = plans->find(n);
  if (it == plans->end()) {
    it = plans->emplace(n, std::make_unique<VerticalFftPlan>(n)).first;
  }
  return *it->second;
}

}  // namespace fft
}  // namespace slime
