#include "fft/fft.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "common/macros.h"

namespace slime {
namespace fft {
namespace {

constexpr double kPi = 3.14159265358979323846;

bool IsPowerOfTwo(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

int64_t NextPowerOfTwo(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Iterative radix-2 Cooley-Tukey, in place, for power-of-two sizes.
/// sign = -1 for the forward transform, +1 for the (unnormalised) inverse.
void Radix2(std::vector<std::complex<double>>* data, int sign) {
  const size_t n = data->size();
  auto& a = *data;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * kPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein chirp-z transform: forward DFT of arbitrary length via a
/// power-of-two circular convolution.
void Bluestein(std::vector<std::complex<double>>* data) {
  const int64_t n = static_cast<int64_t>(data->size());
  const int64_t m = NextPowerOfTwo(2 * n - 1);
  // Chirp w_j = e^{-i*pi*j^2/n}; exponent taken mod 2n to stay accurate for
  // large j^2.
  std::vector<std::complex<double>> chirp(n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t e = static_cast<int64_t>(
        (static_cast<unsigned long long>(j) * j) % (2ull * n));
    const double ang = -kPi * static_cast<double>(e) / static_cast<double>(n);
    chirp[j] = std::complex<double>(std::cos(ang), std::sin(ang));
  }
  std::vector<std::complex<double>> a(m, {0.0, 0.0});
  std::vector<std::complex<double>> b(m, {0.0, 0.0});
  for (int64_t j = 0; j < n; ++j) a[j] = (*data)[j] * chirp[j];
  b[0] = std::conj(chirp[0]);
  for (int64_t j = 1; j < n; ++j) {
    b[j] = std::conj(chirp[j]);
    b[m - j] = b[j];  // b is symmetric: b[-j] == b[j].
  }
  Radix2(&a, -1);
  Radix2(&b, -1);
  for (int64_t j = 0; j < m; ++j) a[j] *= b[j];
  Radix2(&a, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (int64_t k = 0; k < n; ++k) (*data)[k] = a[k] * inv_m * chirp[k];
}

}  // namespace

int64_t RfftBins(int64_t n) {
  SLIME_CHECK_GT(n, 0);
  return n / 2 + 1;
}

void Fft(std::vector<std::complex<double>>* data, bool inverse) {
  const int64_t n = static_cast<int64_t>(data->size());
  if (n <= 1) return;
  if (inverse) {
    // Unnormalised inverse = conj(forward(conj(x))).
    for (auto& c : *data) c = std::conj(c);
    Fft(data, false);
    for (auto& c : *data) c = std::conj(c);
    return;
  }
  if (IsPowerOfTwo(n)) {
    Radix2(data, -1);
  } else {
    Bluestein(data);
  }
}

void NaiveDft(const std::vector<std::complex<double>>& in,
              std::vector<std::complex<double>>* out, bool inverse) {
  const int64_t n = static_cast<int64_t>(in.size());
  out->assign(n, {0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (int64_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (int64_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * kPi * static_cast<double>(j) *
                         static_cast<double>(k) / static_cast<double>(n);
      acc += in[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    (*out)[k] = acc;
  }
}

namespace {

/// Reusable per-thread scratch to avoid allocating a complex buffer for
/// every one of the B*d series transformed per layer. Returned storage has
/// size exactly n (Fft() transforms the whole vector) but existing entries
/// are NOT re-zeroed: each caller overwrites every entry it reads
/// (RfftAdjoint zeroes its own padding tail explicitly).
std::vector<std::complex<double>>& Scratch(int64_t n) {
  static thread_local std::vector<std::complex<double>> buf;
  buf.resize(n);
  return buf;
}

}  // namespace

void RfftForward(const float* x, int64_t n, float* out_re, float* out_im) {
  const int64_t m = RfftBins(n);
  std::vector<std::complex<double>>& buf = Scratch(n);
  for (int64_t i = 0; i < n; ++i) buf[i] = {static_cast<double>(x[i]), 0.0};
  Fft(&buf, false);
  for (int64_t k = 0; k < m; ++k) {
    out_re[k] = static_cast<float>(buf[k].real());
    out_im[k] = static_cast<float>(buf[k].imag());
  }
}

void RfftAdjoint(const float* g_re, const float* g_im, int64_t n,
                 float* g_x) {
  const int64_t m = RfftBins(n);
  // Adjoint of "take the first m bins of a forward DFT of a real signal":
  // g_x = Re( IDFT_unnormalised( zero-pad(g_re + i*g_im) ) ).
  std::vector<std::complex<double>>& buf = Scratch(n);
  for (int64_t k = 0; k < m; ++k)
    buf[k] = {static_cast<double>(g_re[k]), static_cast<double>(g_im[k])};
  for (int64_t k = m; k < n; ++k) buf[k] = {0.0, 0.0};  // zero-pad to n
  Fft(&buf, true);
  for (int64_t i = 0; i < n; ++i) g_x[i] = static_cast<float>(buf[i].real());
}

void IrfftForward(const float* re, const float* im, int64_t n, float* x) {
  const int64_t m = RfftBins(n);
  std::vector<std::complex<double>>& buf = Scratch(n);
  for (int64_t k = 0; k < m; ++k)
    buf[k] = {static_cast<double>(re[k]), static_cast<double>(im[k])};
  // Conjugate-symmetric extension: bins 1..ceil(n/2)-1 mirror to n-k. For
  // even n the Nyquist bin (k = n/2 = m-1) maps to itself and is used as-is.
  for (int64_t k = 1; k < (n + 1) / 2; ++k) buf[n - k] = std::conj(buf[k]);
  Fft(&buf, true);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int64_t i = 0; i < n; ++i)
    x[i] = static_cast<float>(buf[i].real() * inv_n);
}

void IrfftAdjoint(const float* g_x, int64_t n, float* g_re, float* g_im) {
  const int64_t m = RfftBins(n);
  // G = (1/n) * DFT_forward(g_x); mirrored bins receive contributions from
  // both k and n-k: g_re_k = Re(G_k) + Re(G_{n-k}), g_im_k = Im(G_k) -
  // Im(G_{n-k}). Non-mirrored bins (DC; Nyquist for even n) use G_k alone.
  std::vector<std::complex<double>>& buf = Scratch(n);
  for (int64_t i = 0; i < n; ++i) buf[i] = {static_cast<double>(g_x[i]), 0.0};
  Fft(&buf, false);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int64_t k = 0; k < m; ++k) {
    double gr = buf[k].real();
    double gi = buf[k].imag();
    const bool mirrored = (k >= 1 && k < (n + 1) / 2);
    if (mirrored) {
      gr += buf[n - k].real();
      gi -= buf[n - k].imag();
    }
    g_re[k] = static_cast<float>(gr * inv_n);
    g_im[k] = static_cast<float>(gi * inv_n);
  }
}

VerticalFftPlan::VerticalFftPlan(int64_t n) : n_(n) {
  SLIME_CHECK_GE(n, 1);
  pow2_ = (n & (n - 1)) == 0;
  if (pow2_) {
    bitrev_.resize(n);
    for (int64_t i = 1, j = 0; i < n; ++i) {
      int64_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = j;
    }
    tw_re_.resize(std::max<int64_t>(1, n / 2));
    tw_im_.resize(std::max<int64_t>(1, n / 2));
    for (int64_t j = 0; j < n / 2; ++j) {
      const double ang = -2.0 * kPi * static_cast<double>(j) /
                         static_cast<double>(n);
      tw_re_[j] = static_cast<float>(std::cos(ang));
      tw_im_[j] = static_cast<float>(std::sin(ang));
    }
    return;
  }
  // Bluestein: pad to a power of two >= 2n - 1 with an inner pow2 plan.
  padded_ = NextPowerOfTwo(2 * n - 1);
  inner_ = new VerticalFftPlan(padded_);
  chirp_re_.resize(n);
  chirp_im_.resize(n);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t e = static_cast<int64_t>(
        (static_cast<unsigned long long>(j) * j) % (2ull * n));
    const double ang = -kPi * static_cast<double>(e) / static_cast<double>(n);
    chirp_re_[j] = static_cast<float>(std::cos(ang));
    chirp_im_[j] = static_cast<float>(std::sin(ang));
  }
  // b_j = conj(chirp_j) wrapped symmetrically; precompute its forward FFT
  // (d = 1 column through the inner plan).
  std::vector<float> bre(padded_, 0.0f);
  std::vector<float> bim(padded_, 0.0f);
  bre[0] = chirp_re_[0];
  bim[0] = -chirp_im_[0];
  for (int64_t j = 1; j < n; ++j) {
    bre[j] = chirp_re_[j];
    bim[j] = -chirp_im_[j];
    bre[padded_ - j] = bre[j];
    bim[padded_ - j] = bim[j];
  }
  inner_->Transform(bre.data(), bim.data(), 1, /*inverse=*/false);
  bfft_re_ = std::move(bre);
  bfft_im_ = std::move(bim);
}

VerticalFftPlan::~VerticalFftPlan() { delete inner_; }

void VerticalFftPlan::TransformPow2(float* re, float* im, int64_t d,
                                    bool inverse) const {
  const int64_t n = n_;
  // Bit-reversal permutation of rows.
  for (int64_t i = 1; i < n; ++i) {
    const int64_t j = bitrev_[i];
    if (i < j) {
      std::swap_ranges(re + i * d, re + (i + 1) * d, re + j * d);
      std::swap_ranges(im + i * d, im + (i + 1) * d, im + j * d);
    }
  }
  const float isign = inverse ? -1.0f : 1.0f;  // conjugate twiddles
  for (int64_t len = 2; len <= n; len <<= 1) {
    const int64_t half = len / 2;
    const int64_t stride = n / len;
    for (int64_t base = 0; base < n; base += len) {
      for (int64_t j = 0; j < half; ++j) {
        const float wr = tw_re_[j * stride];
        const float wi = isign * tw_im_[j * stride];
        float* ur = re + (base + j) * d;
        float* ui = im + (base + j) * d;
        float* vr = re + (base + j + half) * d;
        float* vi = im + (base + j + half) * d;
        for (int64_t f = 0; f < d; ++f) {
          const float tr = vr[f] * wr - vi[f] * wi;
          const float ti = vr[f] * wi + vi[f] * wr;
          vr[f] = ur[f] - tr;
          vi[f] = ui[f] - ti;
          ur[f] += tr;
          ui[f] += ti;
        }
      }
    }
  }
}

void VerticalFftPlan::TransformBluestein(float* re, float* im, int64_t d,
                                         bool inverse) const {
  const int64_t n = n_;
  const int64_t m = padded_;
  // inverse(x) = conj(forward(conj(x))): conjugate the data around the
  // forward pipeline (the chirp/kernel constants stay untouched).
  if (inverse) {
    for (int64_t i = 0; i < n * d; ++i) im[i] = -im[i];
  }
  static thread_local std::vector<float> are;
  static thread_local std::vector<float> aim;
  are.assign(m * d, 0.0f);
  aim.assign(m * d, 0.0f);
  for (int64_t j = 0; j < n; ++j) {
    const float cr = chirp_re_[j];
    const float ci = chirp_im_[j];
    const float* xr = re + j * d;
    const float* xi = im + j * d;
    float* ar = are.data() + j * d;
    float* ai = aim.data() + j * d;
    for (int64_t f = 0; f < d; ++f) {
      ar[f] = xr[f] * cr - xi[f] * ci;
      ai[f] = xr[f] * ci + xi[f] * cr;
    }
  }
  inner_->TransformPow2(are.data(), aim.data(), d, false);
  // Row-wise multiply by the precomputed kernel spectrum.
  for (int64_t j = 0; j < m; ++j) {
    const float br = bfft_re_[j];
    const float bi = bfft_im_[j];
    float* ar = are.data() + j * d;
    float* ai = aim.data() + j * d;
    for (int64_t f = 0; f < d; ++f) {
      const float vr = ar[f];
      const float vi = ai[f];
      ar[f] = vr * br - vi * bi;
      ai[f] = vr * bi + vi * br;
    }
  }
  inner_->TransformPow2(are.data(), aim.data(), d, true);
  const float inv_m = 1.0f / static_cast<float>(m);
  const float osign = inverse ? -1.0f : 1.0f;  // output conjugation
  for (int64_t k = 0; k < n; ++k) {
    const float cr = chirp_re_[k];
    const float ci = chirp_im_[k];
    const float* ar = are.data() + k * d;
    const float* ai = aim.data() + k * d;
    float* xr = re + k * d;
    float* xi = im + k * d;
    for (int64_t f = 0; f < d; ++f) {
      const float vr = ar[f] * inv_m;
      const float vi = ai[f] * inv_m;
      xr[f] = vr * cr - vi * ci;
      xi[f] = osign * (vr * ci + vi * cr);
    }
  }
}

void VerticalFftPlan::Transform(float* re, float* im, int64_t d,
                                bool inverse) const {
  if (n_ <= 1) return;
  if (pow2_) {
    TransformPow2(re, im, d, inverse);
  } else {
    TransformBluestein(re, im, d, inverse);
  }
}

// ---------------------------------------------------------------------------
// VerticalRfftPlan: the half-spectrum real-input fast path.
// ---------------------------------------------------------------------------

namespace {

/// Per-thread packed planes for the real-input transforms. Grow-only and
/// fully overwritten before every transform, so no zero-fill is needed.
/// Distinct from TransformBluestein's scratch, which may be live in the same
/// call stack when the inner complex plan is a Bluestein plan.
struct PackedScratch {
  std::vector<float> re;
  std::vector<float> im;
  void Ensure(int64_t size) {
    if (static_cast<int64_t>(re.size()) < size) {
      re.resize(size);
      im.resize(size);
    }
  }
};

PackedScratch& GetPackedScratch() {
  static thread_local PackedScratch s;
  return s;
}

}  // namespace

VerticalRfftPlan::VerticalRfftPlan(int64_t n) : n_(n), m_(RfftBins(n)) {
  SLIME_CHECK_GE(n, 1);
  even_ = (n % 2 == 0);
  if (n == 1) return;  // trivial: X_0 = x_0
  if (even_) {
    const int64_t h = n / 2;
    half_ = new VerticalFftPlan(h);
    // Recombination twiddles w_k = e^{-2 pi i k / n}, k = 0..h. Computed in
    // double so w_0 = (1, 0) exactly (keeps the DC bin's imaginary part an
    // exact zero, like the full-spectrum reference).
    w_re_.resize(h + 1);
    w_im_.resize(h + 1);
    for (int64_t k = 0; k <= h; ++k) {
      const double ang = -2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
      w_re_[k] = static_cast<float>(std::cos(ang));
      w_im_[k] = static_cast<float>(std::sin(ang));
    }
  } else {
    // Odd n > 1 is never a power of two, so this is the Bluestein plan; the
    // real-input saving comes from packing column pairs through it.
    full_ = new VerticalFftPlan(n);
  }
}

VerticalRfftPlan::~VerticalRfftPlan() {
  delete half_;
  delete full_;
}

void VerticalRfftPlan::Forward(const float* x, int64_t d, float* out_re,
                               float* out_im) const {
  if (n_ == 1) {
    std::copy(x, x + d, out_re);
    std::fill(out_im, out_im + d, 0.0f);
    return;
  }
  PackedScratch& s = GetPackedScratch();
  if (even_) {
    const int64_t h = n_ / 2;
    s.Ensure(h * d);
    float* zr = s.re.data();
    float* zi = s.im.data();
    // Pack adjacent time samples: z_j = x_{2j} + i * x_{2j+1}.
    for (int64_t j = 0; j < h; ++j) {
      std::copy(x + (2 * j) * d, x + (2 * j + 1) * d, zr + j * d);
      std::copy(x + (2 * j + 1) * d, x + (2 * j + 2) * d, zi + j * d);
    }
    half_->Transform(zr, zi, d, /*inverse=*/false);
    // Recombine: E_k = (Z_k + conj(Z_{h-k}))/2, O_k = (Z_k - conj(Z_{h-k}))
    // / (2i), X_k = E_k + w^k O_k. One ascending pass writing each output
    // row once: sequential store streams beat the load savings of
    // mirror-pair processing on store-bound hosts (rows k and h-k both
    // reload, but loads are cheap next to scattered stores).
    {
      // k = 0 and k = h both read only Z_0; their imaginary parts are
      // exactly zero (real input), so write them as such.
      const float* SLIME_RESTRICT ar = zr;
      const float* SLIME_RESTRICT ai = zi;
      float* SLIME_RESTRICT dc_r = out_re;
      float* SLIME_RESTRICT ny_r = out_re + h * d;
      float* SLIME_RESTRICT dc_i = out_im;
      float* SLIME_RESTRICT ny_i = out_im + h * d;
      for (int64_t f = 0; f < d; ++f) {
        dc_r[f] = ar[f] + ai[f];
        ny_r[f] = ar[f] - ai[f];
        dc_i[f] = 0.0f;
        ny_i[f] = 0.0f;
      }
    }
    for (int64_t k = 1; k < h; ++k) {
      const float wr = w_re_[k];
      const float wi = w_im_[k];
      const float* SLIME_RESTRICT ar = zr + k * d;
      const float* SLIME_RESTRICT ai = zi + k * d;
      const float* SLIME_RESTRICT br = zr + (h - k) * d;
      const float* SLIME_RESTRICT bi = zi + (h - k) * d;
      float* SLIME_RESTRICT xr = out_re + k * d;
      float* SLIME_RESTRICT xi = out_im + k * d;
      // With sr = ar + br, dr = ar - br, si = ai + bi, di = ai - bi:
      // X_k = ((sr + wr*si + wi*dr)/2, (di - wr*dr + wi*si)/2).
      for (int64_t f = 0; f < d; ++f) {
        const float sr = ar[f] + br[f];
        const float dr = ar[f] - br[f];
        const float si = ai[f] + bi[f];
        const float di = ai[f] - bi[f];
        xr[f] = 0.5f * (sr + wr * si + wi * dr);
        xi[f] = 0.5f * (di - wr * dr + wi * si);
      }
    }
    return;
  }
  // Odd path: pack adjacent columns z = col_{2p} + i * col_{2p+1} and run
  // the full-length Bluestein plan once over ceil(d/2) columns.
  const int64_t dp = (d + 1) / 2;
  s.Ensure(n_ * dp);
  float* zr = s.re.data();
  float* zi = s.im.data();
  for (int64_t j = 0; j < n_; ++j) {
    const float* row = x + j * d;
    float* r = zr + j * dp;
    float* i = zi + j * dp;
    for (int64_t p = 0; p < dp; ++p) {
      r[p] = row[2 * p];
      i[p] = (2 * p + 1 < d) ? row[2 * p + 1] : 0.0f;
    }
  }
  full_->Transform(zr, zi, dp, /*inverse=*/false);
  // Separate the two interleaved real spectra from the packed transform:
  // X1_k = (Z_k + conj(Z_{n-k}))/2, X2_k = (Z_k - conj(Z_{n-k}))/(2i).
  for (int64_t k = 0; k < m_; ++k) {
    const int64_t krev = (n_ - k) % n_;
    const float* ar = zr + k * dp;
    const float* ai = zi + k * dp;
    const float* br = zr + krev * dp;
    const float* bi = zi + krev * dp;
    float* xr = out_re + k * d;
    float* xi = out_im + k * d;
    for (int64_t p = 0; p < dp; ++p) {
      const float x1r = 0.5f * (ar[p] + br[p]);
      const float x1i = 0.5f * (ai[p] - bi[p]);
      xr[2 * p] = x1r;
      xi[2 * p] = x1i;
      if (2 * p + 1 < d) {
        xr[2 * p + 1] = 0.5f * (ai[p] + bi[p]);
        xi[2 * p + 1] = 0.5f * (br[p] - ar[p]);
      }
    }
  }
}

void VerticalRfftPlan::Inverse(const float* re, const float* im, int64_t d,
                               float* x, float scale) const {
  if (n_ == 1) {
    for (int64_t f = 0; f < d; ++f) x[f] = re[f] * scale;
    return;
  }
  PackedScratch& s = GetPackedScratch();
  if (even_) {
    const int64_t h = n_ / 2;
    s.Ensure(h * d);
    float* zr = s.re.data();
    float* zi = s.im.data();
    // Build the packed spectrum Z_k = E'_k + i O'_k with
    //   E'_k = X~_k + X~_{k+h},  O'_k = (X~_k - X~_{k+h}) * conj(w_k),
    // where X~ is the conjugate-symmetric extension (DC / Nyquist imaginary
    // parts ignored). Row 0 is the only row touching DC and Nyquist:
    // Z_0 = (re_0 + re_h) + i (re_0 - re_h).
    {
      const float* r0 = re;
      const float* rn = re + h * d;
      for (int64_t f = 0; f < d; ++f) {
        zr[f] = r0[f] + rn[f];
        zi[f] = r0[f] - rn[f];
      }
    }
    // One ascending pass writing each packed row once (sequential store
    // streams; see the forward recombination note).
    for (int64_t k = 1; k < h; ++k) {
      const float wr = w_re_[k];
      const float wi = w_im_[k];
      const float* SLIME_RESTRICT ar = re + k * d;        // X_k
      const float* SLIME_RESTRICT ai = im + k * d;
      const float* SLIME_RESTRICT br = re + (h - k) * d;  // X_{h-k};
      const float* SLIME_RESTRICT bi = im + (h - k) * d;  // X~_{k+h} = conj
      float* SLIME_RESTRICT r = zr + k * d;
      float* SLIME_RESTRICT i = zi + k * d;
      for (int64_t f = 0; f < d; ++f) {
        const float dr = ar[f] - br[f];
        const float di = ai[f] + bi[f];
        // O' = (dr, di) * (wr, -wi)
        const float opr = dr * wr + di * wi;
        const float opi = di * wr - dr * wi;
        r[f] = (ar[f] + br[f]) - opi;
        i[f] = (ai[f] - bi[f]) + opr;
      }
    }
    half_->Transform(zr, zi, d, /*inverse=*/true);
    // Unpack: x_{2j} = Re z_j, x_{2j+1} = Im z_j (times scale).
    for (int64_t j = 0; j < h; ++j) {
      const float* SLIME_RESTRICT r = zr + j * d;
      const float* SLIME_RESTRICT i = zi + j * d;
      float* SLIME_RESTRICT even_row = x + (2 * j) * d;
      float* SLIME_RESTRICT odd_row = x + (2 * j + 1) * d;
      for (int64_t f = 0; f < d; ++f) {
        even_row[f] = r[f] * scale;
        odd_row[f] = i[f] * scale;
      }
    }
    return;
  }
  // Odd path: reconstruct the packed pair spectrum Z~ = X~1 + i X~2 for
  // column pairs and invert once through the full-length plan. The mirrored
  // rows k >= m are filled from the stored bins of *both* packed columns, so
  // per column this still reads only the half spectrum.
  const int64_t dp = (d + 1) / 2;
  s.Ensure(n_ * dp);
  float* zr = s.re.data();
  float* zi = s.im.data();
  {
    // Row 0 (DC): imaginary inputs ignored.
    const float* row = re;
    float* r = zr;
    float* i = zi;
    for (int64_t p = 0; p < dp; ++p) {
      r[p] = row[2 * p];
      i[p] = (2 * p + 1 < d) ? row[2 * p + 1] : 0.0f;
    }
  }
  for (int64_t k = 1; k < n_; ++k) {
    const bool stored = k < m_;
    const int64_t src = stored ? k : n_ - k;
    const float* r1 = re + src * d;
    const float* i1 = im + src * d;
    float* r = zr + k * dp;
    float* i = zi + k * dp;
    const float sgn = stored ? 1.0f : -1.0f;  // conjugate for mirrored rows
    for (int64_t p = 0; p < dp; ++p) {
      const float x1r = r1[2 * p];
      const float x1i = sgn * i1[2 * p];
      const float x2r = (2 * p + 1 < d) ? r1[2 * p + 1] : 0.0f;
      const float x2i = (2 * p + 1 < d) ? sgn * i1[2 * p + 1] : 0.0f;
      // Z~ = X~1 + i X~2
      r[p] = x1r - x2i;
      i[p] = x1i + x2r;
    }
  }
  full_->Transform(zr, zi, dp, /*inverse=*/true);
  for (int64_t j = 0; j < n_; ++j) {
    const float* r = zr + j * dp;
    const float* i = zi + j * dp;
    float* row = x + j * d;
    for (int64_t p = 0; p < dp; ++p) {
      row[2 * p] = r[p] * scale;
      if (2 * p + 1 < d) row[2 * p + 1] = i[p] * scale;
    }
  }
}

int64_t VerticalPlanCostPerColumn(int64_t n) {
  if (n <= 1) return 1;
  if (IsPowerOfTwo(n)) {
    int64_t log2n = 0;
    for (int64_t v = n; v > 1; v >>= 1) ++log2n;
    return 5 * n * log2n;
  }
  // Bluestein: chirp pre/post multiplies plus two padded pow2 transforms
  // and the kernel multiply.
  const int64_t p = NextPowerOfTwo(2 * n - 1);
  return 12 * n + 6 * p + 2 * VerticalPlanCostPerColumn(p);
}

int64_t VerticalRfftPlan::CostPerColumn() const {
  if (n_ == 1) return 1;
  if (even_) return VerticalPlanCostPerColumn(n_ / 2) + 10 * m_;
  // Column pairs share one full-length transform.
  return VerticalPlanCostPerColumn(n_) / 2 + 10 * m_;
}

// ---------------------------------------------------------------------------
// Plan caches. One process-wide mutex-guarded cache per plan kind: plans are
// immutable after construction and Transform/Forward/Inverse are const and
// use per-thread scratch, so a single instance is safe to share across every
// pool and backward thread. (The old per-thread caches rebuilt identical
// twiddle/chirp tables once per calling thread per length.) Both maps are
// deliberately leaked so worker threads may still use plans during static
// destruction at shutdown.
// ---------------------------------------------------------------------------

const VerticalFftPlan& GetVerticalPlan(int64_t n) {
  static std::mutex* mu = new std::mutex;
  static std::map<int64_t, std::unique_ptr<VerticalFftPlan>>* plans =
      new std::map<int64_t, std::unique_ptr<VerticalFftPlan>>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = plans->find(n);
  if (it == plans->end()) {
    it = plans->emplace(n, std::make_unique<VerticalFftPlan>(n)).first;
  }
  return *it->second;
}

const VerticalRfftPlan& GetVerticalRfftPlan(int64_t n) {
  static std::mutex* mu = new std::mutex;
  static std::map<int64_t, std::unique_ptr<VerticalRfftPlan>>* plans =
      new std::map<int64_t, std::unique_ptr<VerticalRfftPlan>>();
  std::lock_guard<std::mutex> lock(*mu);
  auto it = plans->find(n);
  if (it == plans->end()) {
    it = plans->emplace(n, std::make_unique<VerticalRfftPlan>(n)).first;
  }
  return *it->second;
}

}  // namespace fft
}  // namespace slime
