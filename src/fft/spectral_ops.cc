#include "fft/spectral_ops.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "autograd/ops.h"
#include "compute/kernels.h"
#include "compute/thread_pool.h"
#include "fft/fft.h"
#include "tensor/tensor_ops.h"

namespace slime {
namespace fft {
namespace {

using autograd::AccumulateGrad;
using autograd::MakeOpVariable;
using autograd::Variable;
using compute::GrainForWork;
using compute::ParallelFor;

std::atomic<int> g_rfft_path{static_cast<int>(RfftPath::kPacked)};

/// Per-thread scratch pair for the vertical transforms. Grow-only and never
/// zero-filled here: every user overwrites exactly the entries the
/// downstream transform reads (the old blanket Reset() zeroed 2*n*d floats
/// per batch item even though e.g. the reference rfft forward rewrites the
/// whole real plane and only needs the imaginary plane cleared).
struct Scratch2D {
  std::vector<float> re;
  std::vector<float> im;
  void Ensure(int64_t size) {
    if (static_cast<int64_t>(re.size()) < size) {
      re.resize(size);
      im.resize(size);
    }
  }
};

Scratch2D& GetScratch() {
  static thread_local Scratch2D s;
  return s;
}

/// Grain for the per-batch-item loops: batches tiny transforms into one
/// chunk, keeps big ones at one item per chunk. Depends only on (path, n,
/// d), so the decomposition stays thread-count-invariant.
int64_t BatchGrain(RfftPath path, int64_t n, int64_t d) {
  const int64_t per_column = path == RfftPath::kPacked
                                 ? GetVerticalRfftPlan(n).CostPerColumn()
                                 : VerticalPlanCostPerColumn(n);
  return GrainForWork(per_column * d);
}

}  // namespace

RfftPath ActiveRfftPath() {
  return static_cast<RfftPath>(g_rfft_path.load(std::memory_order_relaxed));
}

RfftPath SetRfftPath(RfftPath path) {
  return static_cast<RfftPath>(g_rfft_path.exchange(
      static_cast<int>(path), std::memory_order_relaxed));
}

SpectralPair Rfft(const Variable& x) {
  const Tensor& xt = x.value();
  SLIME_CHECK_EQ(xt.dim(), 3);
  const int64_t b = xt.size(0);
  const int64_t n = xt.size(1);
  const int64_t d = xt.size(2);
  const int64_t m = RfftBins(n);
  const RfftPath path = ActiveRfftPath();
  const int64_t grain = BatchGrain(path, n, d);
  Tensor re({b, m, d});
  Tensor im({b, m, d});
  // Every batch item is an independent transform into a disjoint output
  // slice; the per-thread scratch makes chunks self-contained.
  if (path == RfftPath::kPacked) {
    const VerticalRfftPlan& plan = GetVerticalRfftPlan(n);
    ParallelFor(0, b, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t bi = lo; bi < hi; ++bi) {
        plan.Forward(xt.data() + bi * n * d, d, re.data() + bi * m * d,
                     im.data() + bi * m * d);
      }
    });
  } else {
    const VerticalFftPlan& plan = GetVerticalPlan(n);
    ParallelFor(0, b, grain, [&](int64_t lo, int64_t hi) {
      Scratch2D& s = GetScratch();
      s.Ensure(n * d);
      for (int64_t bi = lo; bi < hi; ++bi) {
        std::copy(xt.data() + bi * n * d, xt.data() + (bi + 1) * n * d,
                  s.re.data());
        std::fill(s.im.data(), s.im.data() + n * d, 0.0f);
        plan.Transform(s.re.data(), s.im.data(), d, /*inverse=*/false);
        std::copy(s.re.data(), s.re.data() + m * d, re.data() + bi * m * d);
        std::copy(s.im.data(), s.im.data() + m * d, im.data() + bi * m * d);
      }
    });
  }
  auto xn = x.node();
  // The two outputs are independent linear functions of x; each backward
  // applies the adjoint with the other component's cotangent set to zero:
  // g_x = Re(IDFT_unnormalised(zero-pad(g))). On the packed path this is
  // the half-spectrum identity of MATH_NOTES.md section 8: halve the
  // mirrored cotangent bins (drop the DC/Nyquist imaginary parts) and run
  // the unnormalised half-spectrum inverse — no full complex plan anywhere.
  auto make_backward = [xn, b, n, d, m, path, grain](bool imag_component) {
    return [xn, b, n, d, m, path, grain, imag_component](const Tensor& g) {
      Tensor dx({b, n, d});
      if (path == RfftPath::kPacked) {
        const VerticalRfftPlan& plan = GetVerticalRfftPlan(n);
        ParallelFor(0, b, grain, [&](int64_t lo, int64_t hi) {
          Scratch2D& s = GetScratch();
          s.Ensure(m * d);
          float* fill = imag_component ? s.im.data() : s.re.data();
          float* zero = imag_component ? s.re.data() : s.im.data();
          std::fill(zero, zero + m * d, 0.0f);
          for (int64_t bi = lo; bi < hi; ++bi) {
            const float* gsrc = g.data() + bi * m * d;
            for (int64_t k = 0; k < m; ++k) {
              const bool mirrored = (k >= 1 && k < (n + 1) / 2);
              const float scale = mirrored ? 0.5f : 1.0f;
              const float* src = gsrc + k * d;
              float* dst = fill + k * d;
              for (int64_t f = 0; f < d; ++f) dst[f] = src[f] * scale;
            }
            plan.Inverse(s.re.data(), s.im.data(), d,
                         dx.data() + bi * n * d, /*scale=*/1.0f);
          }
        });
      } else {
        const VerticalFftPlan& plan = GetVerticalPlan(n);
        ParallelFor(0, b, grain, [&](int64_t lo, int64_t hi) {
          Scratch2D& s = GetScratch();
          s.Ensure(n * d);
          float* dst = imag_component ? s.im.data() : s.re.data();
          float* other = imag_component ? s.re.data() : s.im.data();
          for (int64_t bi = lo; bi < hi; ++bi) {
            std::copy(g.data() + bi * m * d, g.data() + (bi + 1) * m * d,
                      dst);
            std::fill(dst + m * d, dst + n * d, 0.0f);  // zero-pad to n
            std::fill(other, other + n * d, 0.0f);
            plan.Transform(s.re.data(), s.im.data(), d, /*inverse=*/true);
            std::copy(s.re.data(), s.re.data() + n * d,
                      dx.data() + bi * n * d);
          }
        });
      }
      AccumulateGrad(xn, dx);
    };
  };
  Variable vre = MakeOpVariable(std::move(re), {xn}, make_backward(false));
  Variable vim = MakeOpVariable(std::move(im), {xn}, make_backward(true));
  return {vre, vim};
}

Variable Irfft(const SpectralPair& spectrum, int64_t n) {
  const Tensor& re = spectrum.re.value();
  const Tensor& im = spectrum.im.value();
  SLIME_CHECK(re.shape() == im.shape());
  SLIME_CHECK_EQ(re.dim(), 3);
  const int64_t b = re.size(0);
  const int64_t m = re.size(1);
  const int64_t d = re.size(2);
  SLIME_CHECK_EQ(RfftBins(n), m);
  const RfftPath path = ActiveRfftPath();
  const int64_t grain = BatchGrain(path, n, d);
  const float inv_n = 1.0f / static_cast<float>(n);
  Tensor x({b, n, d});
  if (path == RfftPath::kPacked) {
    const VerticalRfftPlan& plan = GetVerticalRfftPlan(n);
    ParallelFor(0, b, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t bi = lo; bi < hi; ++bi) {
        plan.Inverse(re.data() + bi * m * d, im.data() + bi * m * d, d,
                     x.data() + bi * n * d, inv_n);
      }
    });
  } else {
    const VerticalFftPlan& plan = GetVerticalPlan(n);
    ParallelFor(0, b, grain, [&](int64_t lo, int64_t hi) {
      Scratch2D& s = GetScratch();
      s.Ensure(n * d);
      for (int64_t bi = lo; bi < hi; ++bi) {
        std::copy(re.data() + bi * m * d, re.data() + (bi + 1) * m * d,
                  s.re.data());
        std::copy(im.data() + bi * m * d, im.data() + (bi + 1) * m * d,
                  s.im.data());
        // Conjugate-symmetric extension (bins 1..ceil(n/2)-1 mirror to
        // n-k); together the copied and mirrored rows cover all n rows, so
        // no zero-fill is needed.
        for (int64_t k = 1; k < (n + 1) / 2; ++k) {
          const float* src_re = s.re.data() + k * d;
          const float* src_im = s.im.data() + k * d;
          float* dst_re = s.re.data() + (n - k) * d;
          float* dst_im = s.im.data() + (n - k) * d;
          for (int64_t f = 0; f < d; ++f) {
            dst_re[f] = src_re[f];
            dst_im[f] = -src_im[f];
          }
        }
        plan.Transform(s.re.data(), s.im.data(), d, /*inverse=*/true);
        float* out = x.data() + bi * n * d;
        for (int64_t i = 0; i < n * d; ++i) out[i] = s.re[i] * inv_n;
      }
    });
  }
  auto rn = spectrum.re.node();
  auto in_ = spectrum.im.node();
  return MakeOpVariable(
      std::move(x), {rn, in_},
      [rn, in_, b, n, d, m, path, grain](const Tensor& g) {
        // Adjoint: G = (1/n) DFT(g); mirrored bins add Re(G_{n-k}) and
        // subtract Im(G_{n-k}). For real g that collapses to doubling the
        // mirrored bins of the forward rfft of g (MATH_NOTES.md section 8),
        // so the packed path is "rfft, then rescale rows".
        const float inv_n2 = 1.0f / static_cast<float>(n);
        Tensor dre({b, m, d});
        Tensor dim({b, m, d});
        if (path == RfftPath::kPacked) {
          const VerticalRfftPlan& plan = GetVerticalRfftPlan(n);
          ParallelFor(0, b, grain, [&](int64_t lo, int64_t hi) {
            for (int64_t bi = lo; bi < hi; ++bi) {
              float* out_r = dre.data() + bi * m * d;
              float* out_i = dim.data() + bi * m * d;
              plan.Forward(g.data() + bi * n * d, d, out_r, out_i);
              for (int64_t k = 0; k < m; ++k) {
                const bool mirrored = (k >= 1 && k < (n + 1) / 2);
                const float scale = mirrored ? 2.0f * inv_n2 : inv_n2;
                float* r = out_r + k * d;
                float* i = out_i + k * d;
                for (int64_t f = 0; f < d; ++f) {
                  r[f] *= scale;
                  // The forward never reads the DC/Nyquist imaginary
                  // inputs, so their cotangents are exactly zero.
                  i[f] = mirrored ? i[f] * scale : 0.0f;
                }
              }
            }
          });
        } else {
          const VerticalFftPlan& plan = GetVerticalPlan(n);
          ParallelFor(0, b, grain, [&](int64_t lo, int64_t hi) {
            Scratch2D& s = GetScratch();
            s.Ensure(n * d);
            for (int64_t bi = lo; bi < hi; ++bi) {
              std::copy(g.data() + bi * n * d, g.data() + (bi + 1) * n * d,
                        s.re.data());
              std::fill(s.im.data(), s.im.data() + n * d, 0.0f);
              plan.Transform(s.re.data(), s.im.data(), d,
                             /*inverse=*/false);
              for (int64_t k = 0; k < m; ++k) {
                const bool mirrored = (k >= 1 && k < (n + 1) / 2);
                const float* gr = s.re.data() + k * d;
                const float* gi = s.im.data() + k * d;
                const float* mr =
                    mirrored ? s.re.data() + (n - k) * d : nullptr;
                const float* mi =
                    mirrored ? s.im.data() + (n - k) * d : nullptr;
                float* out_r = dre.data() + (bi * m + k) * d;
                float* out_i = dim.data() + (bi * m + k) * d;
                for (int64_t f = 0; f < d; ++f) {
                  float r = gr[f];
                  float i = gi[f];
                  if (mirrored) {
                    r += mr[f];
                    i -= mi[f];
                  }
                  out_r[f] = r * inv_n2;
                  out_i[f] = i * inv_n2;
                }
              }
            }
          });
        }
        AccumulateGrad(rn, dre);
        AccumulateGrad(in_, dim);
      });
}

namespace {

/// True if `bsh` equals the trailing dims of `ash` (so b tiles a as a
/// repeated suffix block).
bool IsSuffixShape(const std::vector<int64_t>& ash,
                   const std::vector<int64_t>& bsh) {
  if (bsh.size() > ash.size()) return false;
  const size_t off = ash.size() - bsh.size();
  for (size_t i = 0; i < bsh.size(); ++i) {
    if (bsh[i] != ash[off + i]) return false;
  }
  return true;
}

/// Backward of one output component of the fused complex product. For the
/// real output (g = g_re): d_ar = g*br, d_ai = -g*bi, d_br = sum_r g*ar,
/// d_bi = -sum_r g*ai. For the imaginary output (g = g_im): d_ar = g*bi,
/// d_ai = g*br, d_bi = sum_r g*ar, d_br = sum_r g*ai. Both reduce to the
/// same kernel with swapped/negated b-plane roles, so `sign` (-1 for the
/// real component's imaginary-plane terms) and a swap flag cover both.
struct ComplexMulGrads {
  std::shared_ptr<autograd::Node> arn, ain, brn, bin;
  Tensor ar, ai, br, bi;  // forward operand values (shared storage)
  int64_t repeats = 0;
  int64_t block = 0;

  void Apply(const Tensor& g, bool imag_component) const {
    const float* pg = g.data();
    const float* par = ar.data();
    const float* pai = ai.data();
    const float* pbr = br.data();
    const float* pbi = bi.data();
    const int64_t n = repeats * block;
    // a-side gradients: elementwise with b broadcast over the suffix block.
    const bool need_ar = arn && arn->requires_grad;
    const bool need_ai = ain && ain->requires_grad;
    if (need_ar || need_ai) {
      Tensor dar(need_ar ? ar.shape() : std::vector<int64_t>{0});
      Tensor dai(need_ai ? ai.shape() : std::vector<int64_t>{0});
      float* pdar = need_ar ? dar.data() : nullptr;
      float* pdai = need_ai ? dai.data() : nullptr;
      ParallelFor(0, n, compute::kElementwiseGrain,
                  [&](int64_t lo, int64_t hi) {
                    int64_t j = lo % block;
                    for (int64_t f = lo; f < hi; ++f) {
                      const float gv = pg[f];
                      if (imag_component) {
                        if (pdar) pdar[f] = gv * pbi[j];
                        if (pdai) pdai[f] = gv * pbr[j];
                      } else {
                        if (pdar) pdar[f] = gv * pbr[j];
                        if (pdai) pdai[f] = -(gv * pbi[j]);
                      }
                      if (++j == block) j = 0;
                    }
                  });
      if (need_ar) AccumulateGrad(arn, dar);
      if (need_ai) AccumulateGrad(ain, dai);
    }
    // b-side gradients: reduce over the repeats, column-parallel with the
    // repeat index ascending per column (bit-identical to the serial
    // row-major reduction of the unfused ops::ReduceTo path).
    const bool need_br = brn && brn->requires_grad;
    const bool need_bi = bin && bin->requires_grad;
    if (need_br || need_bi) {
      Tensor dbr(need_br ? br.shape() : std::vector<int64_t>{0});
      Tensor dbi(need_bi ? bi.shape() : std::vector<int64_t>{0});
      float* pdbr = need_br ? dbr.data() : nullptr;
      float* pdbi = need_bi ? dbi.data() : nullptr;
      ParallelFor(0, block, GrainForWork(4 * repeats),
                  [&](int64_t lo, int64_t hi) {
                    for (int64_t j = lo; j < hi; ++j) {
                      float acc_r = 0.0f;
                      float acc_i = 0.0f;
                      for (int64_t r = 0; r < repeats; ++r) {
                        const float gv = pg[r * block + j];
                        acc_r += gv * par[r * block + j];
                        acc_i += gv * pai[r * block + j];
                      }
                      if (imag_component) {
                        if (pdbi) pdbi[j] = acc_r;
                        if (pdbr) pdbr[j] = acc_i;
                      } else {
                        if (pdbr) pdbr[j] = acc_r;
                        if (pdbi) pdbi[j] = -acc_i;
                      }
                    }
                  });
      if (need_br) AccumulateGrad(brn, dbr);
      if (need_bi) AccumulateGrad(bin, dbi);
    }
  }
};

}  // namespace

SpectralPair ComplexMul(const SpectralPair& a, const SpectralPair& b) {
  const Tensor& art = a.re.value();
  const Tensor& ait = a.im.value();
  const Tensor& brt = b.re.value();
  const Tensor& bit = b.im.value();
  SLIME_CHECK(art.shape() == ait.shape());
  SLIME_CHECK(brt.shape() == bit.shape());
  // Fused kernel path: same shape or b a repeated suffix block of a (the
  // learnable-filter case (B,M,d) * (M,d)). Anything else falls back to the
  // unfused composition below.
  if (IsSuffixShape(art.shape(), brt.shape()) && brt.numel() > 0) {
    const int64_t block = brt.numel();
    const int64_t repeats = art.numel() / block;
    Tensor re(art.shape());
    Tensor im(art.shape());
    compute::Dispatch().complex_mul(art.data(), ait.data(), brt.data(),
                                    bit.data(), re.data(), im.data(),
                                    repeats, block);
    ComplexMulGrads grads{a.re.node(), a.im.node(), b.re.node(),
                          b.im.node(), art,         ait,
                          brt,         bit,         repeats,
                          block};
    std::vector<std::shared_ptr<autograd::Node>> parents{
        grads.arn, grads.ain, grads.brn, grads.bin};
    Variable vre = MakeOpVariable(
        std::move(re), parents,
        [grads](const Tensor& g) { grads.Apply(g, /*imag_component=*/false); });
    Variable vim = MakeOpVariable(
        std::move(im), parents,
        [grads](const Tensor& g) { grads.Apply(g, /*imag_component=*/true); });
    return {vre, vim};
  }
  using autograd::Add;
  using autograd::Mul;
  using autograd::Sub;
  // (ar + i*ai)(br + i*bi) = (ar*br - ai*bi) + i*(ar*bi + ai*br).
  Variable re = Sub(Mul(a.re, b.re), Mul(a.im, b.im));
  Variable im = Add(Mul(a.re, b.im), Mul(a.im, b.re));
  return {re, im};
}

SpectralPair MaskSpectrum(const SpectralPair& a, const Tensor& mask) {
  return {autograd::MulConst(a.re, mask), autograd::MulConst(a.im, mask)};
}

SpectralPair MixSpectra(const SpectralPair& a, const SpectralPair& b,
                        float gamma) {
  using autograd::Add;
  using autograd::MulScalar;
  return {Add(MulScalar(a.re, 1.0f - gamma), MulScalar(b.re, gamma)),
          Add(MulScalar(a.im, 1.0f - gamma), MulScalar(b.im, gamma))};
}

}  // namespace fft
}  // namespace slime
