#ifndef SLIME4REC_STATE_WAL_H_
#define SLIME4REC_STATE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/env.h"

namespace slime {
namespace state {

/// One recovered write-ahead-log record: a monotone sequence number plus an
/// opaque payload (the state store encodes append events into it).
struct WalRecord {
  uint64_t seq = 0;
  std::string payload;
};

/// Exact loss accounting from a recovery scan. `bytes_truncated > 0` means
/// the file ended in a torn or corrupt frame: everything after the last
/// valid frame is dropped, and the caller decides whether those bytes were
/// ever acknowledged (they must not have been, if the sync barrier was
/// honoured).
struct WalScanReport {
  int64_t records = 0;          // valid records recovered
  uint64_t last_seq = 0;        // seq of the last valid record (0 if none)
  int64_t valid_bytes = 0;      // length of the valid prefix
  int64_t bytes_truncated = 0;  // torn/corrupt tail bytes dropped
  bool torn = false;            // true when bytes_truncated > 0
  /// OK for a clean scan; Corruption describing the first bad frame when
  /// the tail was truncated. Never blocks recovery — the typed status is
  /// the audit trail, the truncation is the repair.
  Status tail_status = Status::OK();
};

/// Append-only crash-safe log over the io::Env seam.
///
/// Frame layout (little-endian), one frame per record:
///
///   crc32   u32   over the following length + seq + payload bytes
///   length  u32   payload size in bytes
///   seq     u64   monotone record sequence number (gap = corruption)
///   payload length bytes
///
/// The CRC leads the frame so a torn tail — any prefix of a frame — is
/// detected no matter where the tear lands: either the header is short, the
/// payload is short, or the CRC does not match. Scanning stops at the first
/// invalid frame; nothing after it can be trusted (appends are ordered, so
/// a corrupt frame means the write stream died there).
class WriteAheadLog {
 public:
  /// Payloads larger than this fail the append and any frame claiming more
  /// is treated as corrupt during a scan (guards recovery against
  /// interpreting garbage as a huge allocation).
  static constexpr uint32_t kMaxPayload = 1u << 24;
  /// Bytes of frame overhead per record (crc + length + seq).
  static constexpr size_t kFrameHeader = 16;

  WriteAheadLog(std::string path, io::Env* env)
      : path_(std::move(path)), env_(env) {}

  /// Frames and appends one record. Buffered: the record is durable only
  /// after the next successful Sync().
  Status Append(uint64_t seq, std::string_view payload);

  /// Durability barrier over everything appended so far.
  Status Sync();

  /// Truncates the log to empty (used after a durable snapshot has absorbed
  /// every record) and syncs the truncation.
  Status Reset();

  /// Serialises one frame; exposed so tests can compute exact frame sizes
  /// for byte-offset crash sweeps.
  static std::string EncodeFrame(uint64_t seq, std::string_view payload);

  /// Scans `path` from the start, returning every valid record in order.
  /// A missing file is an empty log. The scan never fails on a torn or
  /// corrupt tail — it truncates at the last valid frame and reports the
  /// exact loss in `report` (see WalScanReport); only a read error from the
  /// env itself surfaces as a non-OK Result.
  static Result<std::vector<WalRecord>> Scan(io::Env* env,
                                             const std::string& path,
                                             WalScanReport* report);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  io::Env* env_;
};

}  // namespace state
}  // namespace slime

#endif  // SLIME4REC_STATE_WAL_H_
