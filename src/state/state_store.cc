#include "state/state_store.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>

#include "common/crc32.h"
#include "io/atomic_write.h"
#include "io/serializer.h"

namespace slime {
namespace state {

namespace {

/// Snapshot envelope magic: "SLIME state v2" (v2 added the per-user
/// anti-entropy digest; a v1 snapshot fails typed rather than decoding
/// into a store with silently-zero digests).
constexpr std::string_view kSnapshotMagic = "SST2";

}  // namespace

// Explicit byte order keeps the digest identical across platforms (and
// identical to what a remote replica computes over the same stream).
uint32_t ExtendItemDigest(uint32_t crc, const int64_t* items, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bits = static_cast<uint64_t>(items[i]);
    unsigned char bytes[8];
    for (int k = 0; k < 8; ++k) {
      bytes[k] = static_cast<unsigned char>(bits >> (8 * k));
    }
    crc = ExtendCrc32(crc, bytes, sizeof(bytes));
  }
  return crc;
}

namespace {

/// Creates `dir` and any missing parents (POSIX mkdir; EEXIST is fine).
Status EnsureDir(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("state store dir must not be empty");
  }
  std::string prefix;
  prefix.reserve(dir.size());
  for (size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      prefix += dir[i];
      continue;
    }
    if (i < dir.size()) prefix += '/';
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("cannot create state dir " + prefix);
    }
  }
  struct ::stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("state dir " + dir + " is not a directory");
  }
  return Status::OK();
}

}  // namespace

Result<SyncMode> ParseSyncMode(const std::string& name) {
  if (name == "always") return SyncMode::kAlways;
  if (name == "group") return SyncMode::kGroup;
  if (name == "none") return SyncMode::kNone;
  return Status::InvalidArgument("unknown state sync mode '" + name +
                                 "' (valid: always, group, none)");
}

const char* SyncModeName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kAlways:
      return "always";
    case SyncMode::kGroup:
      return "group";
    case SyncMode::kNone:
      return "none";
  }
  return "unknown";
}

StateStore::StateStore(const StateStoreOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : io::Env::Default()),
      wal_(options.dir + "/state.wal", env_) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    appends_ = m.counter("state.appends");
    events_ = m.counter("state.events");
    syncs_ = m.counter("state.syncs");
    sync_failures_ = m.counter("state.sync_failures");
    compactions_ = m.counter("state.compactions");
    compaction_failures_ = m.counter("state.compaction_failures");
    recovered_records_ = m.counter("state.recovered_records");
    truncated_bytes_ = m.counter("state.truncated_bytes");
    torn_tails_ = m.counter("state.torn_tails");
    users_gauge_ = m.gauge("state.users");
    wal_records_gauge_ = m.gauge("state.wal_records");
    last_seq_gauge_ = m.gauge("state.last_seq");
  }
}

Result<std::unique_ptr<StateStore>> StateStore::Open(
    const StateStoreOptions& options) {
  SLIME_RETURN_IF_ERROR(EnsureDir(options.dir));
  if (options.sync == SyncMode::kGroup && options.group_commit_every < 1) {
    return Status::InvalidArgument("group_commit_every must be >= 1");
  }
  std::unique_ptr<StateStore> store(new StateStore(options));
  std::lock_guard<std::mutex> lock(store->mu_);
  SLIME_RETURN_IF_ERROR(store->RecoverLocked());
  return store;
}

Status StateStore::Reload() {
  std::lock_guard<std::mutex> lock(mu_);
  return RecoverLocked();
}

std::string StateStore::EncodeEvent(uint64_t user_id,
                                    const std::vector<int64_t>& items) {
  io::BinaryWriter w;
  w.PutU64(user_id);
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (int64_t item : items) w.PutI64(item);
  return std::string(w.buffer());
}

void StateStore::ApplyLocked(uint64_t user_id, const int64_t* items,
                             size_t n) {
  UserState& user = users_[user_id];
  // Digest before trimming: it covers the full append stream, so it keeps
  // advancing even when the retained history window drops old items.
  user.items_total += static_cast<uint64_t>(n);
  user.crc = ExtendItemDigest(user.crc, items, n);
  user.items.insert(user.items.end(), items, items + n);
  if (options_.max_history_per_user > 0 &&
      static_cast<int64_t>(user.items.size()) >
          options_.max_history_per_user) {
    const size_t drop =
        user.items.size() -
        static_cast<size_t>(options_.max_history_per_user);
    user.items.erase(user.items.begin(),
                     user.items.begin() + static_cast<int64_t>(drop));
  }
  ++user.version;
}

Status StateStore::ApplyEventLocked(std::string_view payload, uint64_t seq) {
  io::BinaryReader r(payload);
  uint64_t user_id = 0;
  uint32_t count = 0;
  if (!r.GetU64(&user_id) || !r.GetU32(&count) ||
      static_cast<size_t>(count) * sizeof(int64_t) != r.remaining()) {
    return Status::Corruption("undecodable WAL event at seq " +
                              std::to_string(seq));
  }
  std::vector<int64_t> items(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.GetI64(&items[i])) {
      return Status::Corruption("undecodable WAL event at seq " +
                                std::to_string(seq));
    }
  }
  ApplyLocked(user_id, items.data(), items.size());
  return Status::OK();
}

std::string StateStore::EncodeSnapshotLocked() const {
  io::BinaryWriter w;
  w.PutU64(last_seq_);
  w.PutU64(static_cast<uint64_t>(users_.size()));
  // std::map iteration is sorted by user id: snapshot bytes are a pure
  // function of the state, which is what makes chaos double-runs
  // byte-identical.
  for (const auto& [user_id, user] : users_) {
    w.PutU64(user_id);
    w.PutI64(user.version);
    // The digest must ride in the snapshot: after a trim it cannot be
    // recomputed from the retained items, and recovery must reproduce it
    // exactly for cross-replica comparison to stay sound.
    w.PutU64(user.items_total);
    w.PutU32(user.crc);
    w.PutU32(static_cast<uint32_t>(user.items.size()));
    for (int64_t item : user.items) w.PutI64(item);
  }
  return std::string(w.buffer());
}

Status StateStore::DecodeSnapshotLocked(std::string_view payload) {
  io::BinaryReader r(payload);
  uint64_t snap_seq = 0;
  uint64_t num_users = 0;
  if (!r.GetU64(&snap_seq) || !r.GetU64(&num_users)) {
    return Status::Corruption("truncated state snapshot header");
  }
  std::map<uint64_t, UserState> users;
  uint64_t prev_user = 0;
  for (uint64_t u = 0; u < num_users; ++u) {
    uint64_t user_id = 0;
    UserState user;
    uint32_t count = 0;
    if (!r.GetU64(&user_id) || !r.GetI64(&user.version) ||
        !r.GetU64(&user.items_total) || !r.GetU32(&user.crc) ||
        !r.GetU32(&count) ||
        static_cast<size_t>(count) * sizeof(int64_t) > r.remaining()) {
      return Status::Corruption("truncated state snapshot at user " +
                                std::to_string(u));
    }
    if (user.items_total < count) {
      return Status::Corruption("state snapshot digest under-counts user " +
                                std::to_string(user_id));
    }
    if (u > 0 && user_id <= prev_user) {
      return Status::Corruption("state snapshot users out of order");
    }
    prev_user = user_id;
    user.items.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!r.GetI64(&user.items[i])) {
        return Status::Corruption("truncated state snapshot at user " +
                                  std::to_string(u));
      }
    }
    users.emplace(user_id, std::move(user));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in state snapshot");
  }
  users_ = std::move(users);
  snapshot_seq_ = snap_seq;
  last_seq_ = snap_seq;
  return Status::OK();
}

Status StateStore::RecoverLocked() {
  users_.clear();
  last_seq_ = 0;
  snapshot_seq_ = 0;
  wal_records_ = 0;
  unsynced_records_ = 0;
  recovery_ = RecoveryReport();

  obs::TraceBuilder trace;
  if (options_.tracer != nullptr) {
    trace = options_.tracer->StartTrace("state.open");
  }

  // 1. Snapshot, if any. Corruption here is gated: serving from
  // silently-drifted state is worse than refusing to start.
  const std::string snap = snapshot_path();
  if (env_->FileExists(snap)) {
    obs::TraceSpan span(trace, "snapshot");
    Result<std::string> payload = io::ReadEnvelope(env_, snap, kSnapshotMagic);
    if (!payload.ok()) {
      trace.Finish();
      return Status::Corruption("state snapshot " + snap +
                                " unreadable: " +
                                payload.status().message());
    }
    Status st = DecodeSnapshotLocked(payload.value());
    if (!st.ok()) {
      trace.Finish();
      return st;
    }
    recovery_.snapshot_loaded = true;
    recovery_.snapshot_seq = snapshot_seq_;
  }

  // 2. WAL tail replay. A torn/corrupt tail truncates at the last valid
  // frame (typed + accounted, never fatal); records the snapshot already
  // covers are skipped (a crash between snapshot rename and WAL reset
  // leaves them behind — replaying them would double-apply).
  obs::TraceSpan span(trace, "replay");
  WalScanReport scan;
  Result<std::vector<WalRecord>> records =
      WriteAheadLog::Scan(env_, wal_path(), &scan);
  if (!records.ok()) {
    trace.Finish();
    return records.status();
  }
  int64_t applied = 0;
  size_t valid = 0;  // records whose frames stay in the rewritten WAL
  Status tail = scan.tail_status;
  int64_t truncated = scan.bytes_truncated;
  for (const WalRecord& rec : records.value()) {
    if (rec.seq <= snapshot_seq_) {
      ++valid;
      continue;
    }
    Status st = ApplyEventLocked(rec.payload, rec.seq);
    if (!st.ok()) {
      // A CRC-valid but undecodable frame: treat it and everything after
      // as the corrupt tail (appends are ordered; nothing later can be
      // trusted either).
      for (size_t i = valid; i < records.value().size(); ++i) {
        truncated += static_cast<int64_t>(WriteAheadLog::kFrameHeader +
                                          records.value()[i].payload.size());
      }
      if (tail.ok()) tail = st;
      break;
    }
    ++valid;
    ++applied;
    last_seq_ = rec.seq;
    ++wal_records_;
  }
  const bool torn = truncated > 0;
  if (torn) {
    // Repair: rewrite the WAL as exactly its valid prefix (EncodeFrame is
    // canonical, so this reproduces the original bytes) so the next append
    // extends a clean log instead of a torn one.
    std::string prefix;
    for (size_t i = 0; i < valid; ++i) {
      const WalRecord& rec = records.value()[i];
      prefix += WriteAheadLog::EncodeFrame(rec.seq, rec.payload);
    }
    Status st = io::AtomicWriteFile(env_, wal_path(), prefix,
                                    /*sync_after=*/true);
    if (!st.ok()) {
      trace.Finish();
      return st;
    }
  }

  recovery_.wal_records_replayed = applied;
  recovery_.wal_bytes_truncated = truncated;
  recovery_.wal_torn = torn;
  recovery_.tail_status = tail;
  recovery_.users = static_cast<int64_t>(users_.size());

  recovered_records_.Increment(applied);
  truncated_bytes_.Increment(truncated);
  if (torn) torn_tails_.Increment();
  users_gauge_.Set(static_cast<int64_t>(users_.size()));
  wal_records_gauge_.Set(wal_records_);
  last_seq_gauge_.Set(static_cast<int64_t>(last_seq_));
  trace.Finish();
  return Status::OK();
}

Status StateStore::SyncLocked() {
  if (unsynced_records_ == 0) return Status::OK();
  Status st = wal_.Sync();
  if (!st.ok()) {
    sync_failures_.Increment();
    return st;
  }
  unsynced_records_ = 0;
  syncs_.Increment();
  return Status::OK();
}

Result<AppendAck> StateStore::Append(uint64_t user_id,
                                     const std::vector<int64_t>& items) {
  if (items.empty()) {
    return Status::InvalidArgument("append requires at least one item");
  }
  std::lock_guard<std::mutex> lock(mu_);
  obs::TraceBuilder trace;
  if (options_.tracer != nullptr) {
    trace = options_.tracer->StartTrace("state.append");
  }
  const uint64_t seq = last_seq_ + 1;
  const std::string payload = EncodeEvent(user_id, items);
  {
    obs::TraceSpan span(trace, "wal");
    Status st = wal_.Append(seq, payload);
    if (!st.ok()) {
      trace.Finish();
      return st;
    }
  }
  last_seq_ = seq;
  ++wal_records_;
  ++unsynced_records_;

  bool durable = false;
  if (options_.sync == SyncMode::kAlways ||
      (options_.sync == SyncMode::kGroup &&
       unsynced_records_ >= options_.group_commit_every)) {
    obs::TraceSpan span(trace, "sync");
    Status st = SyncLocked();
    if (!st.ok()) {
      // The barrier never ran, so the event must not be acknowledged. Its
      // bytes sit in the WAL unapplied; the next compaction's snapshot_seq
      // covers and thereby expunges it (see docs/STATE.md).
      trace.Finish();
      return st;
    }
    durable = true;
  }

  ApplyLocked(user_id, items.data(), items.size());
  appends_.Increment();
  events_.Increment(static_cast<int64_t>(items.size()));
  users_gauge_.Set(static_cast<int64_t>(users_.size()));
  wal_records_gauge_.Set(wal_records_);
  last_seq_gauge_.Set(static_cast<int64_t>(last_seq_));

  AppendAck ack;
  ack.seq = seq;
  ack.durable = durable;
  ack.version = users_[user_id].version;

  if (options_.snapshot_every_records > 0 &&
      wal_records_ >= options_.snapshot_every_records) {
    // Auto-compaction failure does not fail the append — the event is
    // already in the WAL; the store just keeps a longer log and retries at
    // the next threshold.
    obs::TraceSpan span(trace, "compact");
    (void)CompactLocked();
  }
  trace.Finish();
  return ack;
}

Status StateStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status StateStore::CompactLocked() {
  // Stage → verify → rename → fsync via the shared AtomicWriteFile
  // protocol. Only once the snapshot is durable may the WAL be truncated:
  // a crash before the rename keeps the old snapshot + full WAL, a crash
  // after it keeps the new snapshot + a stale WAL whose records replay as
  // no-ops (seq <= snapshot_seq).
  const std::string payload = EncodeSnapshotLocked();
  Status st = io::WriteEnvelope(env_, snapshot_path(), kSnapshotMagic,
                                payload, /*sync_after=*/true);
  if (!st.ok()) {
    compaction_failures_.Increment();
    return st;
  }
  snapshot_seq_ = last_seq_;
  st = wal_.Reset();
  if (!st.ok()) {
    // Snapshot is durable; the stale WAL is harmless (replay skips it).
    compaction_failures_.Increment();
    return st;
  }
  wal_records_ = 0;
  unsynced_records_ = 0;
  compactions_.Increment();
  wal_records_gauge_.Set(wal_records_);
  return Status::OK();
}

Status StateStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  obs::TraceBuilder trace;
  if (options_.tracer != nullptr) {
    trace = options_.tracer->StartTrace("state.compact");
  }
  Status st;
  {
    obs::TraceSpan span(trace, "snapshot");
    st = CompactLocked();
  }
  trace.Finish();
  return st;
}

std::vector<int64_t> StateStore::History(uint64_t user_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user_id);
  if (it == users_.end()) return {};
  return it->second.items;
}

std::vector<int64_t> StateStore::TailItems(uint64_t user_id,
                                           uint64_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user_id);
  if (it == users_.end()) return {};
  const std::vector<int64_t>& items = it->second.items;
  const size_t take = std::min(static_cast<size_t>(n), items.size());
  return std::vector<int64_t>(items.end() - static_cast<int64_t>(take),
                              items.end());
}

UserDigest StateStore::Digest(uint64_t user_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  UserDigest d;
  d.user_id = user_id;
  auto it = users_.find(user_id);
  if (it == users_.end()) return d;
  d.items_total = it->second.items_total;
  d.crc = it->second.crc;
  return d;
}

std::vector<UserDigest> StateStore::EnumerateDigests(
    const std::function<bool(uint64_t user_id)>& filter) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<UserDigest> out;
  // std::map iteration: ascending user id, so the enumeration (like the
  // snapshot) is a pure function of the state.
  for (const auto& [user_id, user] : users_) {
    if (filter && !filter(user_id)) continue;
    UserDigest d;
    d.user_id = user_id;
    d.items_total = user.items_total;
    d.crc = user.crc;
    out.push_back(d);
  }
  return out;
}

int64_t StateStore::UserVersion(uint64_t user_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user_id);
  if (it == users_.end()) return 0;
  return it->second.version;
}

int64_t StateStore::num_users() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(users_.size());
}

uint64_t StateStore::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

int64_t StateStore::wal_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_records_;
}

}  // namespace state
}  // namespace slime
