#include "state/wal.h"

#include <cstring>

#include "common/crc32.h"

namespace slime {
namespace state {

namespace {

template <typename T>
void AppendPod(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

std::string WriteAheadLog::EncodeFrame(uint64_t seq,
                                       std::string_view payload) {
  std::string body;
  body.reserve(sizeof(uint32_t) + sizeof(uint64_t) + payload.size());
  AppendPod(&body, static_cast<uint32_t>(payload.size()));
  AppendPod(&body, seq);
  body.append(payload);
  const uint32_t crc = Crc32(body);
  std::string frame;
  frame.reserve(sizeof(crc) + body.size());
  AppendPod(&frame, crc);
  frame.append(body);
  return frame;
}

Status WriteAheadLog::Append(uint64_t seq, std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument(
        "WAL payload too large: " + std::to_string(payload.size()) +
        " bytes (max " + std::to_string(kMaxPayload) + ")");
  }
  return env_->AppendFile(path_, EncodeFrame(seq, payload));
}

Status WriteAheadLog::Sync() { return env_->SyncFile(path_); }

Status WriteAheadLog::Reset() {
  SLIME_RETURN_IF_ERROR(env_->WriteFile(path_, std::string_view()));
  return env_->SyncFile(path_);
}

Result<std::vector<WalRecord>> WriteAheadLog::Scan(io::Env* env,
                                                   const std::string& path,
                                                   WalScanReport* report) {
  *report = WalScanReport();
  std::vector<WalRecord> records;
  if (!env->FileExists(path)) {
    return records;  // a log never written is an empty log
  }
  Result<std::string> file = env->ReadFile(path);
  if (!file.ok()) return file.status();
  const std::string& bytes = file.value();

  size_t pos = 0;
  Status bad = Status::OK();
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < kFrameHeader) {
      bad = Status::Corruption("torn WAL frame header at offset " +
                               std::to_string(pos) + ": " +
                               std::to_string(remaining) + " of " +
                               std::to_string(kFrameHeader) + " bytes");
      break;
    }
    const char* p = bytes.data() + pos;
    const uint32_t stored_crc = ReadPod<uint32_t>(p);
    const uint32_t length = ReadPod<uint32_t>(p + 4);
    const uint64_t seq = ReadPod<uint64_t>(p + 8);
    if (length > kMaxPayload) {
      bad = Status::Corruption("corrupt WAL frame at offset " +
                               std::to_string(pos) + ": claimed payload " +
                               std::to_string(length) + " bytes exceeds max");
      break;
    }
    if (remaining - kFrameHeader < length) {
      bad = Status::Corruption(
          "torn WAL payload at offset " + std::to_string(pos) + ": frame " +
          "claims " + std::to_string(length) + " bytes, " +
          std::to_string(remaining - kFrameHeader) + " present");
      break;
    }
    const uint32_t actual_crc = Crc32(p + 4, kFrameHeader - 4 + length);
    if (stored_crc != actual_crc) {
      bad = Status::Corruption("WAL CRC mismatch at offset " +
                               std::to_string(pos) + " (seq " +
                               std::to_string(seq) + "): stored " +
                               std::to_string(stored_crc) + ", computed " +
                               std::to_string(actual_crc));
      break;
    }
    if (!records.empty() && seq != records.back().seq + 1) {
      // Appends are strictly ordered; a gap or repeat means the frame
      // boundary resynchronised on garbage that happened to checksum.
      bad = Status::Corruption("WAL sequence break at offset " +
                               std::to_string(pos) + ": seq " +
                               std::to_string(seq) + " after " +
                               std::to_string(records.back().seq));
      break;
    }
    WalRecord rec;
    rec.seq = seq;
    rec.payload.assign(p + kFrameHeader, length);
    records.push_back(std::move(rec));
    pos += kFrameHeader + length;
  }

  report->records = static_cast<int64_t>(records.size());
  report->last_seq = records.empty() ? 0 : records.back().seq;
  report->valid_bytes = static_cast<int64_t>(pos);
  report->bytes_truncated = static_cast<int64_t>(bytes.size() - pos);
  report->torn = report->bytes_truncated > 0;
  report->tail_status = bad;
  return records;
}

}  // namespace state
}  // namespace slime
