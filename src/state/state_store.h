#ifndef SLIME4REC_STATE_STATE_STORE_H_
#define SLIME4REC_STATE_STATE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/env.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "state/wal.h"

namespace slime {
namespace state {

/// When an Append is acknowledged as durable.
enum class SyncMode {
  /// Sync barrier after every append: an OK Append survives a kill.
  kAlways,
  /// Group commit: appends buffer and the barrier runs every
  /// `group_commit_every` records (or at an explicit Sync()/Compact()).
  /// Amortises fsync cost; an unsynced tail can be lost to a kill, and the
  /// ack says so (`AppendAck::durable == false`).
  kGroup,
  /// Never sync; durability is whatever the OS page cache delivers. For
  /// benchmarks and tests only.
  kNone,
};

Result<SyncMode> ParseSyncMode(const std::string& name);
const char* SyncModeName(SyncMode mode);

struct StateStoreOptions {
  /// Directory holding the store's two files, created if missing:
  /// `<dir>/state.wal` and `<dir>/state.snapshot`.
  std::string dir;
  SyncMode sync = SyncMode::kGroup;
  /// Group-commit width for SyncMode::kGroup.
  int64_t group_commit_every = 8;
  /// Compact (snapshot + WAL truncate) automatically once the WAL holds
  /// this many records; 0 disables auto-compaction (explicit Compact()
  /// only).
  int64_t snapshot_every_records = 1024;
  /// Per-user history cap: oldest events beyond it are dropped on apply.
  /// Keeps memory and snapshot size bounded under unbounded streams; the
  /// slide-filter model only ever reads a bounded window anyway.
  int64_t max_history_per_user = 4096;
  io::Env* env = nullptr;                  // nullptr = Env::Default()
  obs::MetricsRegistry* metrics = nullptr;  // nullptr = no metrics
  obs::Tracer* tracer = nullptr;            // nullptr = no spans
};

/// Receipt for one Append.
struct AppendAck {
  uint64_t seq = 0;      // WAL sequence number covering this append
  bool durable = false;  // true iff a sync barrier covering it has run
  int64_t version = 0;   // the user's state version after applying it
  /// Replicas that durably accepted the write. A single StateStore always
  /// reports 1; the cluster tier overwrites it with the fleet-level count
  /// so callers can see an under-replicated (but still acked) append.
  int64_t replica_acks = 1;
};

/// Cross-replica comparable digest of one user's append stream.
///
/// `items_total` counts every item ever applied to the user (monotone —
/// history trimming does not decrease it) and `crc` is a rolling CRC-32
/// extended with each item's little-endian bytes in append order. Two
/// stores that applied the same events for a user agree on both fields
/// even though their WAL layouts, sync schedules, compaction points, and
/// local sequence numbers differ — which is exactly why replica-local
/// `last_seq` is *not* part of the digest. Equal digests mean equal
/// histories (up to CRC collision); a smaller `items_total` with a
/// matching stream prefix means the store is behind by a suffix that
/// anti-entropy repair can transfer (docs/STATE.md "Anti-entropy").
/// Extends a rolling digest CRC with `n` items' little-endian bytes — the
/// exact step the store applies per appended item. Exposed so repair can
/// verify, *before* appending, that a candidate suffix really extends a
/// behind replica's stream to the ahead replica's digest.
uint32_t ExtendItemDigest(uint32_t crc, const int64_t* items, size_t n);

struct UserDigest {
  uint64_t user_id = 0;
  uint64_t items_total = 0;
  uint32_t crc = 0;

  bool operator==(const UserDigest& o) const {
    return user_id == o.user_id && items_total == o.items_total &&
           crc == o.crc;
  }
  bool operator!=(const UserDigest& o) const { return !(*this == o); }
};

/// What recovery found, with exact loss accounting. Recovered state is
/// always a prefix of what was appended: `tail_status` is non-OK exactly
/// when a torn or corrupt WAL tail was truncated, and `wal_bytes_truncated`
/// says how many bytes were dropped. An event covered by a durable ack can
/// never land in the truncated tail (the barrier ran after its bytes).
struct RecoveryReport {
  bool snapshot_loaded = false;
  uint64_t snapshot_seq = 0;       // WAL seq the snapshot covers
  int64_t wal_records_replayed = 0;
  int64_t wal_bytes_truncated = 0;
  bool wal_torn = false;
  Status tail_status = Status::OK();
  int64_t users = 0;  // distinct users after recovery
};

/// Event-sourced per-user interaction state: an in-memory map of user id →
/// chronological item history, made crash-safe by a CRC-framed write-ahead
/// log and periodically folded into an atomic snapshot (stage → verify →
/// rename → fsync, the SLM2 checkpoint protocol via io::AtomicWriteFile;
/// the WAL is truncated only after the snapshot is durable).
///
/// Durability contract:
///  - An Append acked with `durable == true` survives a process kill at any
///    later byte: recovery replays snapshot + WAL tail and must produce it.
///  - A kill mid-append leaves a torn frame; recovery truncates at the last
///    valid frame, reports a typed Corruption with exact byte accounting in
///    the RecoveryReport, and never silently drops anything else.
///  - A corrupt snapshot fails Open with a typed Corruption (gated, not
///    best-effort): serving must not start from silently-drifted state
///    (the BERT4Rec replicability lesson).
///
/// Determinism: recovery is a pure function of the bytes on disk, and
/// snapshot bytes are a pure function of the state (users serialised in
/// sorted order), so double-runs are byte-identical — the chaos harness
/// asserts this.
///
/// Thread-safe; all operations take one internal mutex (appends are
/// disk-bound, contention is not the bottleneck at this tier).
class StateStore {
 public:
  /// Opens (creating the directory if needed) and recovers. Fails with a
  /// typed Status on a corrupt snapshot or an unreadable/unwritable dir; a
  /// torn WAL tail does NOT fail — it is truncated and reported via
  /// `recovery()`.
  static Result<std::unique_ptr<StateStore>> Open(
      const StateStoreOptions& options);

  /// Appends one event batch for `user_id` (at least one item). The ack's
  /// `durable` flag reflects whether the sync barrier covering it has run
  /// (per SyncMode). A failed sync barrier fails the Append: the caller
  /// must not treat the event as accepted.
  Result<AppendAck> Append(uint64_t user_id,
                           const std::vector<int64_t>& items);

  /// Explicit group-commit barrier: after an OK return, every prior append
  /// is durable.
  Status Sync();

  /// Folds current state into a durable snapshot, then truncates the WAL.
  /// A crash anywhere in between is safe: the WAL is only reset after the
  /// snapshot is fsynced, and replay skips records the snapshot already
  /// covers.
  Status Compact();

  /// Re-runs recovery from disk, discarding in-memory state. Used by the
  /// cluster tier when a shard process "restarts" (RestoreShard): the
  /// revived shard holds exactly what it had made durable.
  Status Reload();

  /// Chronological item history for `user_id` (empty if unknown).
  std::vector<int64_t> History(uint64_t user_id) const;
  /// The last `n` retained items of `user_id`'s history (all of them when
  /// fewer are retained). Repair transfers exactly such a suffix.
  std::vector<int64_t> TailItems(uint64_t user_id, uint64_t n) const;
  /// The user's digest (zero digest for an unknown user). Maintained
  /// incrementally on apply, persisted in the snapshot, reproduced exactly
  /// by recovery.
  UserDigest Digest(uint64_t user_id) const;
  /// Digests of every user `filter` accepts (all users when null), in
  /// ascending user-id order. The cluster tier passes a segment-membership
  /// predicate so two replicas compare one ring segment by exchanging
  /// O(users-in-segment) digests instead of shipping histories.
  std::vector<UserDigest> EnumerateDigests(
      const std::function<bool(uint64_t user_id)>& filter = nullptr) const;
  /// Monotone per-user version, bumped on every applied append; 0 for an
  /// unknown user. Cache entries keyed on it are invalidated by appends.
  int64_t UserVersion(uint64_t user_id) const;

  int64_t num_users() const;
  uint64_t last_seq() const;
  int64_t wal_records() const;
  const RecoveryReport& recovery() const { return recovery_; }
  const StateStoreOptions& options() const { return options_; }

  std::string wal_path() const { return options_.dir + "/state.wal"; }
  std::string snapshot_path() const {
    return options_.dir + "/state.snapshot";
  }

 private:
  explicit StateStore(const StateStoreOptions& options);

  struct UserState {
    std::vector<int64_t> items;
    int64_t version = 0;
    uint64_t items_total = 0;  // items ever applied (monotone across trims)
    uint32_t crc = 0;          // rolling CRC-32 over the full item stream
  };

  Status RecoverLocked();
  Status CompactLocked();
  Status SyncLocked();
  void ApplyLocked(uint64_t user_id, const int64_t* items, size_t n);
  std::string EncodeSnapshotLocked() const;
  Status DecodeSnapshotLocked(std::string_view payload);
  static std::string EncodeEvent(uint64_t user_id,
                                 const std::vector<int64_t>& items);
  Status ApplyEventLocked(std::string_view payload, uint64_t seq);

  StateStoreOptions options_;
  io::Env* env_;
  WriteAheadLog wal_;
  RecoveryReport recovery_;

  mutable std::mutex mu_;
  // std::map: deterministic iteration order makes snapshot bytes a pure
  // function of the state.
  std::map<uint64_t, UserState> users_;
  uint64_t last_seq_ = 0;        // highest WAL seq written
  uint64_t snapshot_seq_ = 0;    // WAL seq the on-disk snapshot covers
  int64_t wal_records_ = 0;      // records in the WAL since last compaction
  int64_t unsynced_records_ = 0;  // appended but not yet behind a barrier

  obs::Counter appends_;
  obs::Counter events_;
  obs::Counter syncs_;
  obs::Counter sync_failures_;
  obs::Counter compactions_;
  obs::Counter compaction_failures_;
  obs::Counter recovered_records_;
  obs::Counter truncated_bytes_;
  obs::Counter torn_tails_;
  obs::Gauge users_gauge_;
  obs::Gauge wal_records_gauge_;
  obs::Gauge last_seq_gauge_;
};

}  // namespace state
}  // namespace slime

#endif  // SLIME4REC_STATE_STATE_STORE_H_
