#ifndef SLIME4REC_NN_EMBEDDING_H_
#define SLIME4REC_NN_EMBEDDING_H_

#include <vector>

#include "nn/module.h"

namespace slime {
namespace nn {

/// Lookup table of `vocab` embeddings of size `dim`. Row 0 conventionally
/// holds the padding item; callers that want a frozen zero pad row should
/// simply never feed gradients into it (padding positions are masked before
/// the loss in this codebase, matching the reference implementations).
class Embedding : public Module {
 public:
  Embedding(int64_t vocab, int64_t dim, Rng* rng, float init_stddev = 0.02f);

  /// Gathers rows for `ids`, returning shape out_shape + [dim].
  autograd::Variable Forward(const std::vector<int64_t>& ids,
                             std::vector<int64_t> out_shape) const;

  const autograd::Variable& weight() const { return weight_; }
  int64_t vocab() const { return vocab_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t vocab_;
  int64_t dim_;
  autograd::Variable weight_;
};

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_EMBEDDING_H_
