#include "nn/gru.h"

#include <vector>

#include "autograd/ops.h"

namespace slime {
namespace nn {

Gru::Gru(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_x_ = RegisterModule(
      "w_x", std::make_shared<Linear>(input_dim, 2 * hidden_dim, rng));
  w_h_ = RegisterModule(
      "w_h",
      std::make_shared<Linear>(hidden_dim, 2 * hidden_dim, rng,
                               /*use_bias=*/false));
  w_c_x_ = RegisterModule(
      "w_c_x", std::make_shared<Linear>(input_dim, hidden_dim, rng));
  w_c_h_ = RegisterModule(
      "w_c_h", std::make_shared<Linear>(hidden_dim, hidden_dim, rng,
                                        /*use_bias=*/false));
}

autograd::Variable Gru::Step(const autograd::Variable& xt,
                             const autograd::Variable& h_prev) const {
  using autograd::Add;
  using autograd::Mul;
  using autograd::Sigmoid;
  using autograd::Slice;
  using autograd::Sub;
  using autograd::Tanh;
  using autograd::Variable;
  // Gates z and r from the stacked projection.
  Variable gates = Sigmoid(Add(w_x_->Forward(xt), w_h_->Forward(h_prev)));
  Variable z = Slice(gates, 1, 0, hidden_dim_);
  Variable r = Slice(gates, 1, hidden_dim_, 2 * hidden_dim_);
  Variable c =
      Tanh(Add(w_c_x_->Forward(xt), w_c_h_->Forward(Mul(r, h_prev))));
  // h = (1 - z) . h_prev + z . c = h_prev + z . (c - h_prev).
  return Add(h_prev, Mul(z, Sub(c, h_prev)));
}

autograd::Variable Gru::Forward(const autograd::Variable& x) const {
  using autograd::Concat;
  using autograd::Reshape;
  using autograd::Slice;
  using autograd::Variable;
  const int64_t b = x.size(0);
  const int64_t n = x.size(1);
  SLIME_CHECK_EQ(x.size(2), input_dim_);
  Variable h = autograd::Constant(Tensor::Zeros({b, hidden_dim_}));
  std::vector<Variable> states;
  states.reserve(n);
  for (int64_t t = 0; t < n; ++t) {
    Variable xt = Reshape(Slice(x, 1, t, t + 1), {b, input_dim_});
    h = Step(xt, h);
    states.push_back(Reshape(h, {b, 1, hidden_dim_}));
  }
  return Concat(states, 1);
}

autograd::Variable Gru::ForwardLast(const autograd::Variable& x) const {
  using autograd::Reshape;
  using autograd::Slice;
  const int64_t b = x.size(0);
  const int64_t n = x.size(1);
  autograd::Variable all = Forward(x);
  return Reshape(Slice(all, 1, n - 1, n), {b, hidden_dim_});
}

}  // namespace nn
}  // namespace slime
