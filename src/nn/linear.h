#ifndef SLIME4REC_NN_LINEAR_H_
#define SLIME4REC_NN_LINEAR_H_

#include "nn/module.h"

namespace slime {
namespace nn {

/// Affine map y = x W + b with W (in_features, out_features). Accepts 2-D
/// (rows, in) or 3-D (B, N, in) inputs; 3-D inputs are flattened over the
/// leading dimensions.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  autograd::Variable Forward(const autograd::Variable& x) const;

  const autograd::Variable& weight() const { return weight_; }
  const autograd::Variable& bias() const { return bias_; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool use_bias_;
  autograd::Variable weight_;
  autograd::Variable bias_;
};

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_LINEAR_H_
