#ifndef SLIME4REC_NN_ATTENTION_H_
#define SLIME4REC_NN_ATTENTION_H_

#include <memory>

#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace slime {
namespace nn {

/// Multi-head scaled dot-product self-attention over (B, N, d) inputs, the
/// encoder core of the SASRec family of baselines. `causal` selects the
/// unidirectional mask (SASRec) vs. full bidirectional attention
/// (BERT4Rec). An additive `key padding` mask is built from the batch's
/// padding positions by the caller and passed in as a (B, N) 0/-inf tensor
/// (undefined Tensor to disable).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, float dropout,
                         Rng* rng);

  /// x: (B, N, d); key_padding: undefined or (B, N) additive mask applied to
  /// attention logits for every query position.
  autograd::Variable Forward(const autograd::Variable& x, bool causal,
                             const Tensor& key_padding, Rng* rng) const;

  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::shared_ptr<Linear> w_q_;
  std::shared_ptr<Linear> w_k_;
  std::shared_ptr<Linear> w_v_;
  std::shared_ptr<Linear> w_o_;
  std::shared_ptr<Dropout> attn_dropout_;
  std::shared_ptr<Dropout> out_dropout_;
};

/// Builds the additive causal mask (N, N): 0 on/below the diagonal, -1e9
/// above (future positions).
Tensor CausalMask(int64_t n);

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_ATTENTION_H_
