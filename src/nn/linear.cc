#include "nn/linear.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace slime {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias) {
  weight_ = RegisterParameter(
      "weight",
      autograd::Param(XavierUniform({in_features, out_features}, rng)));
  if (use_bias_) {
    bias_ = RegisterParameter(
        "bias", autograd::Param(Tensor::Zeros({out_features})));
  }
}

autograd::Variable Linear::Forward(const autograd::Variable& x) const {
  using autograd::Add;
  using autograd::MatMul;
  using autograd::Reshape;
  const auto& shape = x.shape();
  SLIME_CHECK_GE(shape.size(), 2u);
  SLIME_CHECK_EQ(shape.back(), in_features_);
  autograd::Variable flat = x;
  const bool need_reshape = shape.size() != 2;
  if (need_reshape) flat = Reshape(x, {-1, in_features_});
  autograd::Variable y = MatMul(flat, weight_);
  if (use_bias_) y = Add(y, bias_);
  if (need_reshape) {
    std::vector<int64_t> out_shape(shape.begin(), shape.end() - 1);
    out_shape.push_back(out_features_);
    y = Reshape(y, out_shape);
  }
  return y;
}

}  // namespace nn
}  // namespace slime
