#ifndef SLIME4REC_NN_GRU_H_
#define SLIME4REC_NN_GRU_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace slime {
namespace nn {

/// Single-layer gated recurrent unit over (B, N, d) input sequences,
/// the encoder of GRU4Rec. Gate equations:
///   z_t = sigmoid(x_t W_z + h_{t-1} U_z + b_z)
///   r_t = sigmoid(x_t W_r + h_{t-1} U_r + b_r)
///   c_t = tanh(x_t W_c + (r_t . h_{t-1}) U_c + b_c)
///   h_t = (1 - z_t) . h_{t-1} + z_t . c_t
class Gru : public Module {
 public:
  Gru(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// Runs the recurrence; returns all hidden states stacked as (B, N, h).
  autograd::Variable Forward(const autograd::Variable& x) const;

  /// Convenience: returns only the final hidden state (B, h).
  autograd::Variable ForwardLast(const autograd::Variable& x) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  autograd::Variable Step(const autograd::Variable& xt,
                          const autograd::Variable& h_prev) const;

  int64_t input_dim_;
  int64_t hidden_dim_;
  // w_x_/w_h_ produce the stacked [z | r] gates (width 2h); the candidate
  // projections are separate because the recurrent term uses r . h_{t-1}.
  std::shared_ptr<Linear> w_x_;
  std::shared_ptr<Linear> w_h_;
  std::shared_ptr<Linear> w_c_x_;
  std::shared_ptr<Linear> w_c_h_;
};

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_GRU_H_
