#ifndef SLIME4REC_NN_INIT_H_
#define SLIME4REC_NN_INIT_H_

#include <vector>

#include "tensor/tensor.h"

namespace slime {
namespace nn {

/// Xavier/Glorot uniform initialisation: U(-a, a) with
/// a = sqrt(6 / (fan_in + fan_out)) for a 2-D weight (fan_in, fan_out).
/// Higher-rank tensors treat the first extent as fan_out-style rows and the
/// product of the rest as fan_in.
Tensor XavierUniform(std::vector<int64_t> shape, Rng* rng);

/// Truncated-free normal initialisation N(0, stddev), the default for
/// embedding tables in the SASRec/FMLP-Rec family (stddev 0.02).
Tensor NormalInit(std::vector<int64_t> shape, Rng* rng, float stddev = 0.02f);

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_INIT_H_
