#ifndef SLIME4REC_NN_CONV_H_
#define SLIME4REC_NN_CONV_H_

#include <vector>

#include "nn/module.h"

namespace slime {
namespace nn {

/// Caser's horizontal convolution bank: for each window size
/// h in `window_sizes` a set of `filters_per_size` filters of shape (h, d)
/// slides over the sequence; outputs are max-pooled over time and
/// concatenated into (B, len(window_sizes) * filters_per_size).
class HorizontalConvBank : public Module {
 public:
  HorizontalConvBank(int64_t dim, std::vector<int64_t> window_sizes,
                     int64_t filters_per_size, Rng* rng);

  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t output_dim() const {
    return static_cast<int64_t>(window_sizes_.size()) * filters_per_size_;
  }

 private:
  std::vector<int64_t> window_sizes_;
  int64_t filters_per_size_;
  std::vector<autograd::Variable> weights_;  // one (F, h, d) per window size
  std::vector<autograd::Variable> biases_;   // one (F) per window size
};

/// Caser's vertical convolution: `num_filters` learnable length-N weight
/// rows, each taking a weighted sum of the sequence positions per embedding
/// dimension: (B, N, d) -> (B, num_filters * d).
class VerticalConv : public Module {
 public:
  VerticalConv(int64_t seq_len, int64_t num_filters, Rng* rng);

  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t output_dim(int64_t dim) const { return num_filters_ * dim; }

 private:
  int64_t seq_len_;
  int64_t num_filters_;
  autograd::Variable weight_;  // (num_filters, seq_len)
};

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_CONV_H_
