#ifndef SLIME4REC_NN_DROPOUT_H_
#define SLIME4REC_NN_DROPOUT_H_

#include "nn/module.h"

namespace slime {
namespace nn {

/// Inverted dropout layer; active only while the module is in training
/// mode. The caller supplies the RNG so whole-model runs stay reproducible.
class Dropout : public Module {
 public:
  explicit Dropout(float p) : p_(p) {}

  autograd::Variable Forward(const autograd::Variable& x, Rng* rng) const;

  float p() const { return p_; }

 private:
  float p_;
};

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_DROPOUT_H_
