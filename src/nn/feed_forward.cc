#include "nn/feed_forward.h"

#include "autograd/ops.h"

namespace slime {
namespace nn {

FeedForward::FeedForward(int64_t dim, float dropout, Rng* rng,
                         int64_t hidden_multiplier) {
  const int64_t hidden = dim * hidden_multiplier;
  w1_ = RegisterModule("w1", std::make_shared<Linear>(dim, hidden, rng));
  w2_ = RegisterModule("w2", std::make_shared<Linear>(hidden, dim, rng));
  inner_dropout_ =
      RegisterModule("inner_dropout", std::make_shared<Dropout>(dropout));
  out_dropout_ =
      RegisterModule("out_dropout", std::make_shared<Dropout>(dropout));
}

autograd::Variable FeedForward::Forward(const autograd::Variable& x,
                                        Rng* rng) const {
  autograd::Variable h = autograd::Gelu(w1_->Forward(x));
  h = inner_dropout_->Forward(h, rng);
  h = w2_->Forward(h);
  return out_dropout_->Forward(h, rng);
}

}  // namespace nn
}  // namespace slime
