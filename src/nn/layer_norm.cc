#include "nn/layer_norm.h"

#include "autograd/ops.h"

namespace slime {
namespace nn {

LayerNorm::LayerNorm(int64_t dim, float eps) : eps_(eps) {
  gamma_ = RegisterParameter("gamma", autograd::Param(Tensor::Ones({dim})));
  beta_ = RegisterParameter("beta", autograd::Param(Tensor::Zeros({dim})));
}

autograd::Variable LayerNorm::Forward(const autograd::Variable& x) const {
  return autograd::LayerNorm(x, gamma_, beta_, eps_);
}

}  // namespace nn
}  // namespace slime
