#include "nn/conv.h"

#include <string>

#include "autograd/ops.h"
#include "nn/init.h"

namespace slime {
namespace nn {

HorizontalConvBank::HorizontalConvBank(int64_t dim,
                                       std::vector<int64_t> window_sizes,
                                       int64_t filters_per_size, Rng* rng)
    : window_sizes_(std::move(window_sizes)),
      filters_per_size_(filters_per_size) {
  for (size_t i = 0; i < window_sizes_.size(); ++i) {
    const int64_t h = window_sizes_[i];
    std::string wname = "w";
    wname += std::to_string(h);
    std::string bname = "b";
    bname += std::to_string(h);
    weights_.push_back(RegisterParameter(
        std::move(wname),
        autograd::Param(XavierUniform({filters_per_size_, h, dim}, rng))));
    biases_.push_back(RegisterParameter(
        std::move(bname),
        autograd::Param(Tensor::Zeros({filters_per_size_}))));
  }
}

autograd::Variable HorizontalConvBank::Forward(
    const autograd::Variable& x) const {
  using autograd::Concat;
  using autograd::HorizontalConv;
  using autograd::MaxPoolAxis1;
  using autograd::Relu;
  using autograd::Variable;
  std::vector<Variable> pooled;
  pooled.reserve(weights_.size());
  for (size_t i = 0; i < weights_.size(); ++i) {
    Variable conv = Relu(HorizontalConv(x, weights_[i], biases_[i]));
    pooled.push_back(MaxPoolAxis1(conv));  // (B, F)
  }
  return pooled.size() == 1 ? pooled[0] : Concat(pooled, 1);
}

VerticalConv::VerticalConv(int64_t seq_len, int64_t num_filters, Rng* rng)
    : seq_len_(seq_len), num_filters_(num_filters) {
  weight_ = RegisterParameter(
      "weight", autograd::Param(XavierUniform({num_filters, seq_len}, rng)));
}

autograd::Variable VerticalConv::Forward(const autograd::Variable& x) const {
  using autograd::BroadcastMatMul;
  using autograd::Reshape;
  SLIME_CHECK_EQ(x.size(1), seq_len_);
  const int64_t b = x.size(0);
  const int64_t d = x.size(2);
  // (num_filters, N) @ (B, N, d) -> (B, num_filters, d) -> flatten.
  autograd::Variable y = BroadcastMatMul(weight_, x);
  return Reshape(y, {b, num_filters_ * d});
}

}  // namespace nn
}  // namespace slime
