#ifndef SLIME4REC_NN_LAYER_NORM_H_
#define SLIME4REC_NN_LAYER_NORM_H_

#include "nn/module.h"

namespace slime {
namespace nn {

/// Layer normalisation over the last dimension with learnable gain/bias,
/// eps 1e-12 to match the reference implementations of the SASRec family.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-12f);

  autograd::Variable Forward(const autograd::Variable& x) const;

 private:
  float eps_;
  autograd::Variable gamma_;
  autograd::Variable beta_;
};

}  // namespace nn
}  // namespace slime

#endif  // SLIME4REC_NN_LAYER_NORM_H_
